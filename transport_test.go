package xstream_test

// Transport equivalence: the update shuffle is an exchangeable seam
// (core.UpdateTransport), so routing it through the channel-backed
// loopback worker exchange — per-destination framing, out-of-order
// partition arrival, backpressure: the concurrency shape of a network
// exchange — must not change any result. The matrix mirrors the engine
// equivalence suites: builtin vs loopback × mem/disk × selective on/off,
// with BFS and WCC bit-exact at 3 threads (min-lattice fixpoints are
// unique) and PageRank bit-exact at Threads=1 (float sums fold in a
// deterministic order single-threaded). The chaos cases then prove the
// loopback's seeded fault schedule is either fully absorbed (retryable
// drops, duplicates → bit-identical results) or surfaced as the typed
// exchange errors — never as wrong results.

import (
	"errors"
	"fmt"
	"testing"

	xstream "repro"
	"repro/internal/transport"
	"repro/internal/xstreamtest"
)

// transportCase is one (engine, selective) combination; each runs twice,
// builtin and loopback.
type transportCase struct {
	name      string
	mem       bool
	selective bool
}

func transportCases() []transportCase {
	return []transportCase{
		{"mem/dense", true, false},
		{"mem/selective", true, true},
		{"disk/dense", false, false},
		{"disk/selective", false, true},
	}
}

// loopbackFactory returns a MemConfig/DiskConfig.Exchange factory over a
// loopback with the given fault schedule, recording the instances it
// builds so tests can interrogate the injected fault count.
func loopbackFactory(opts transport.Options, made *[]*transport.Loopback) func(k int) xstream.Exchange {
	return func(k int) xstream.Exchange {
		lb := transport.NewLoopback(k, opts)
		if made != nil {
			*made = append(*made, lb)
		}
		return lb
	}
}

// runTransport executes prog on the case's engine, with the builtin
// transport when exchange is nil. Partitions are forced so the test-size
// graphs still shuffle across a real partition fan-out.
func runTransport[V, M any](t *testing.T, c transportCase, threads int, exchange func(k int) xstream.Exchange, src xstream.EdgeSource, prog xstream.Program[V, M]) ([]V, xstream.Stats) {
	t.Helper()
	if c.mem {
		cfg := xstreamtest.MemConfig()
		cfg.Threads, cfg.Partitions, cfg.TileEdges = threads, 16, 128
		cfg.Selective, cfg.Exchange = c.selective, exchange
		res, err := xstream.RunMemory(src, prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		return res.Vertices, res.Stats
	}
	cfg := xstreamtest.DiskConfig("transport-equiv")
	cfg.Threads, cfg.TileEdges = threads, 128
	cfg.Selective, cfg.Exchange = c.selective, exchange
	res, err := xstream.RunDisk(src, prog, cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	return res.Vertices, res.Stats
}

// checkTransportStats asserts the transport's own traffic accounting made
// it into the run's Stats on both implementations.
func checkTransportStats(t *testing.T, name string, builtin, loopback xstream.Stats) {
	t.Helper()
	for _, s := range []struct {
		which string
		st    xstream.Stats
	}{{"builtin", builtin}, {"loopback", loopback}} {
		if s.st.TransportBatches == 0 || s.st.TransportBytes == 0 {
			t.Fatalf("%s/%s: transport reported no traffic: %d batches, %d bytes",
				name, s.which, s.st.TransportBatches, s.st.TransportBytes)
		}
	}
}

// TestTransportEquivalenceBFS: min-lattice traversal, bit-exact across
// the full matrix at 3 threads.
func TestTransportEquivalenceBFS(t *testing.T) {
	src := xstreamtest.RMAT(10, 81)
	const root = 3
	for _, c := range transportCases() {
		t.Run(c.name, func(t *testing.T) {
			want, ws := runTransport(t, c, 3, nil, src, xstream.NewBFS(root))
			got, gs := runTransport(t, c, 3, loopbackFactory(transport.Options{}, nil), src, xstream.NewBFS(root))
			checkTransportStats(t, c.name, ws, gs)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d: %+v, want %+v", v, got[v], want[v])
				}
			}
		})
	}
}

// TestTransportEquivalenceWCC: all-active label propagation over min,
// bit-exact across the matrix at 3 threads.
func TestTransportEquivalenceWCC(t *testing.T) {
	src := xstreamtest.RMATUndirected(10, 82)
	for _, c := range transportCases() {
		t.Run(c.name, func(t *testing.T) {
			want, ws := runTransport(t, c, 3, nil, src, xstream.NewWCC())
			got, gs := runTransport(t, c, 3, loopbackFactory(transport.Options{}, nil), src, xstream.NewWCC())
			checkTransportStats(t, c.name, ws, gs)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d: %+v, want %+v", v, got[v], want[v])
				}
			}
		})
	}
}

// TestTransportEquivalencePageRank: float sums at Threads=1, where both
// transports deliver each partition's update stream in the same order —
// the loopback run must match the builtin bit-for-bit.
func TestTransportEquivalencePageRank(t *testing.T) {
	src := xstreamtest.RMAT(10, 83)
	for _, c := range transportCases() {
		if c.selective {
			continue // PageRank is dense; selective adds nothing here
		}
		t.Run(c.name, func(t *testing.T) {
			want, ws := runTransport(t, c, 1, nil, src, xstream.NewPageRank(5))
			got, gs := runTransport(t, c, 1, loopbackFactory(transport.Options{}, nil), src, xstream.NewPageRank(5))
			checkTransportStats(t, c.name, ws, gs)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d: %+v, want %+v (bitwise)", v, got[v], want[v])
				}
			}
		})
	}
}

// TestChaosTransportLoopback: the seeded repo-root chaos case for the
// update transport. Under a schedule of retryable drops and duplicated
// frames, both engines complete every workload bit-identically to their
// fault-free loopback runs — the send retry layer and the sequence
// deduplication absorb every injected fault, which the schedule's own
// counter proves actually fired.
func TestChaosTransportLoopback(t *testing.T) {
	seed := chaosSeed(t)
	src := xstreamtest.RMATUndirected(10, 84)
	faultOpts := transport.Options{Seed: seed, DropErr: 0.02, Duplicate: 0.02}
	for _, c := range transportCases() {
		t.Run(c.name, func(t *testing.T) {
			want, _ := runTransport(t, c, 3, loopbackFactory(transport.Options{}, nil), src, xstream.NewWCC())
			var made []*transport.Loopback
			got, _ := runTransport(t, c, 3, loopbackFactory(faultOpts, &made), src, xstream.NewWCC())
			var faults int64
			for _, lb := range made {
				faults += lb.Faults()
			}
			if faults == 0 {
				t.Fatalf("seed %d: fault schedule never fired", seed)
			}
			wl, gl := xstream.WCCLabels(want), xstream.WCCLabels(got)
			a := make([]uint32, len(wl))
			b := make([]uint32, len(gl))
			for v := range wl {
				a[v], b[v] = uint32(wl[v]), uint32(gl[v])
			}
			xstreamtest.AssertBitIdentical(t, b, a, fmt.Sprintf("seed %d (%d faults)", seed, faults))
		})
	}
}

// TestChaosTransportTypedErrors: unabsorbable loopback faults surface as
// the typed exchange errors — silent loss as ErrExchangeLost, torn frames
// as ErrExchangeCorrupt — never as wrong results.
func TestChaosTransportTypedErrors(t *testing.T) {
	seed := chaosSeed(t)
	src := xstreamtest.RMATUndirected(10, 85)
	kinds := []struct {
		name string
		opts transport.Options
		want error
	}{
		{"silent-loss", transport.Options{Seed: seed, SilentDrop: 0.05, MaxFaults: 4}, xstream.ErrExchangeLost},
		{"torn-frame", transport.Options{Seed: seed, Torn: 0.05, MaxFaults: 4}, xstream.ErrExchangeCorrupt},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			cfg := xstreamtest.MemConfig()
			cfg.Partitions = 16
			var made []*transport.Loopback
			cfg.Exchange = loopbackFactory(k.opts, &made)
			_, err := xstream.RunMemory(src, xstream.NewWCC(), cfg)
			if err == nil {
				t.Fatalf("seed %d: %s did not surface as an error", seed, k.name)
			}
			if !errors.Is(err, k.want) {
				t.Fatalf("seed %d: %s surfaced as %v, want %v", seed, k.name, err, k.want)
			}
			var faults int64
			for _, lb := range made {
				faults += lb.Faults()
			}
			if faults == 0 {
				t.Fatalf("seed %d: error reported with no injected fault", seed)
			}
		})
	}
}
