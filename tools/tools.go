//go:build tools

// Package tools pins the CI tool dependencies — staticcheck (whose
// honnef.co/go/tools v0.6.1 module is the 2025.1.1 release) and
// govulncheck — via blank imports, the standard tools.go idiom. The
// build tag keeps the file out of every real build; the imports exist
// only so `go mod tidy` retains the versions and CI installs exactly
// what this module's go.mod names:
//
//	cd tools && go mod tidy
//	go install honnef.co/go/tools/cmd/staticcheck golang.org/x/vuln/cmd/govulncheck
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
