// Nested tool-dependency module: pins the lint/analysis binaries CI
// installs (staticcheck, govulncheck) without adding their module graphs
// to the library's own go.mod. Excluded from the root module's ./...
// patterns; CI materializes go.sum with `go mod tidy` before installing.
module repro/tools

go 1.24

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1
)
