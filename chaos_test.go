package xstream_test

// Chaos equivalence: the fault-tolerance contract of the out-of-core
// engine, driven end to end through the public API. Three properties, one
// per test:
//
//   - transient faults (reported errors, short reads, torn-and-reported
//     writes) are absorbed by the retry layer and the run completes
//     bit-identically to a fault-free run;
//   - silent corruption (bit flips on read, torn writes that report
//     success) surfaces as ErrCorrupted, never as a wrong result;
//   - a run killed mid-stream resumes from its last completed iteration's
//     checkpoint and still produces bit-identical results, without
//     re-executing the iterations it resumed past.
//
// The fault schedule is seeded: regular CI replays one fixed schedule,
// the nightly job randomizes XSTREAM_CHAOS_SEED so the suite walks new
// schedules over time. A failure always logs the seed that produced it.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"
	"time"

	xstream "repro"
	"repro/internal/xstreamtest"
)

// chaosSeed is the fault-schedule seed: XSTREAM_CHAOS_SEED when set (the
// nightly job randomizes it), a fixed default otherwise.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	if s := os.Getenv("XSTREAM_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("XSTREAM_CHAOS_SEED %q: %v", s, err)
		}
		t.Logf("chaos seed %d (from XSTREAM_CHAOS_SEED)", v)
		return v
	}
	return 1
}

// chaosGraph is one undirected scale-free graph all three workloads share —
// large enough that a run issues hundreds of device operations, so the
// probabilistic fault schedules below fire under any seed.
func chaosGraph() xstream.EdgeSource {
	return xstreamtest.RMATUndirected(11, 77)
}

var chaosAlgos = []string{"bfs", "wcc", "pagerank"}

// runChaosAlgo executes one workload out of core and canonicalizes the
// result to raw bits, so every equivalence check below is an exact bit
// comparison — float ranks included.
//
// PageRank runs on one worker: rank mass folds in shuffle-arrival order,
// which concurrent scatter threads make timing-dependent at the ulp level
// (the engine's documented benign nondeterminism), so bit-identity is only
// a guarantee single-threaded. BFS and WCC are integer min-lattices —
// order-insensitive — and keep the concurrent path under chaos.
func runChaosAlgo(algo string, src xstream.EdgeSource, cfg xstream.DiskConfig) ([]uint32, xstream.Stats, error) {
	if algo == "pagerank" {
		cfg.Threads = 1
	}
	switch algo {
	case "bfs":
		res, err := xstream.RunDisk(src, xstream.NewBFS(3), cfg)
		if err != nil {
			return nil, xstream.Stats{}, err
		}
		levels := xstream.BFSLevels(res.Vertices)
		out := make([]uint32, len(levels))
		for i, v := range levels {
			out[i] = uint32(v)
		}
		return out, res.Stats, nil
	case "wcc":
		res, err := xstream.RunDisk(src, xstream.NewWCC(), cfg)
		if err != nil {
			return nil, xstream.Stats{}, err
		}
		labels := xstream.WCCLabels(res.Vertices)
		out := make([]uint32, len(labels))
		for i, v := range labels {
			out[i] = uint32(v)
		}
		return out, res.Stats, nil
	case "pagerank":
		res, err := xstream.RunDisk(src, xstream.NewPageRank(5), cfg)
		if err != nil {
			return nil, xstream.Stats{}, err
		}
		ranks := xstream.PageRankValues(res.Vertices)
		out := make([]uint32, len(ranks))
		for i, v := range ranks {
			out[i] = math.Float32bits(v)
		}
		return out, res.Stats, nil
	}
	panic("unknown chaos algorithm " + algo)
}

func chaosConfig(dev xstream.Device, selective, compress bool) xstream.DiskConfig {
	cfg := xstreamtest.DiskConfigOn(dev)
	cfg.Selective, cfg.CompressTiles = selective, compress
	return cfg
}

// TestChaosTransientEquivalence: under a schedule of reported transient
// faults — read errors, torn-and-reported writes, truncate errors, legal
// short reads — a retry-wrapped device completes every workload with
// results bit-identical to a fault-free run, and the Stats prove both that
// faults actually fired and that the retry layer absorbed them.
func TestChaosTransientEquivalence(t *testing.T) {
	seed := chaosSeed(t)
	src := chaosGraph()
	variants := []struct {
		name                string
		selective, compress bool
	}{
		{"raw", false, false},
		{"selective-compressed", true, true},
	}
	for _, algo := range chaosAlgos {
		for _, v := range variants {
			t.Run(algo+"/"+v.name, func(t *testing.T) {
				clean := chaosConfig(xstream.NewSimDevice(xstream.SimSSD("chaos-clean", 2, 0)), v.selective, v.compress)
				want, _, err := runChaosAlgo(algo, src, clean)
				if err != nil {
					t.Fatalf("fault-free run: %v", err)
				}

				faulty := xstream.NewFaultyDevice(
					xstream.NewSimDevice(xstream.SimSSD("chaos", 2, 0)),
					xstream.FaultyOptions{
						Seed: seed, ReadErr: 0.08, WriteErr: 0.08,
						TruncateErr: 0.08, ShortRead: 0.15, MaxFaults: 2000,
					})
				cfg := chaosConfig(
					xstream.NewRetryDevice(faulty, xstream.RetryOptions{
						MaxAttempts: 40, Seed: seed, Sleep: func(time.Duration) {},
					}), v.selective, v.compress)
				got, stats, err := runChaosAlgo(algo, src, cfg)
				if err != nil {
					t.Fatalf("seed %d: run failed despite retry: %v", seed, err)
				}
				if n := faulty.(xstream.FaultInjector).Faults(); n == 0 {
					t.Fatal("fault schedule never fired")
				}
				if stats.IORetries == 0 {
					t.Fatal("Stats.IORetries = 0: retry layer absorbed nothing")
				}
				if stats.BytesChecksummed == 0 {
					t.Fatal("Stats.BytesChecksummed = 0: read-path verification was not active")
				}
				if stats.ChecksumFailures != 0 {
					t.Fatalf("%d checksum failures from transient-only faults", stats.ChecksumFailures)
				}
				xstreamtest.AssertBitIdentical(t, got, want, fmt.Sprintf("seed %d", seed))
			})
		}
	}
}

// TestChaosCorruptionDetected: under silent corruption — bit flips on the
// read path, torn writes that report success — a run either fails with
// ErrCorrupted or returns results bit-identical to a fault-free run.
// A wrong result is the one forbidden outcome; there is no retry wrapper
// here, so nothing can heal what the checksums must catch.
func TestChaosCorruptionDetected(t *testing.T) {
	seed := chaosSeed(t)
	src := chaosGraph()
	kinds := []struct {
		name string
		opts func(s int64) xstream.FaultyOptions
	}{
		{"corrupt-read", func(s int64) xstream.FaultyOptions {
			return xstream.FaultyOptions{Seed: s, CorruptRead: 0.25, MaxFaults: 3}
		}},
		{"torn-write", func(s int64) xstream.FaultyOptions {
			return xstream.FaultyOptions{Seed: s, TornWrite: 0.25, MaxFaults: 3}
		}},
	}
	for _, algo := range chaosAlgos {
		clean := chaosConfig(xstream.NewSimDevice(xstream.SimSSD("chaos-clean", 2, 0)), false, false)
		want, _, err := runChaosAlgo(algo, src, clean)
		if err != nil {
			t.Fatalf("%s: fault-free run: %v", algo, err)
		}
		for _, k := range kinds {
			t.Run(algo+"/"+k.name, func(t *testing.T) {
				fired, detected := 0, 0
				for i := 0; i < 6; i++ {
					s := seed + int64(i)*1001
					faulty := xstream.NewFaultyDevice(
						xstream.NewSimDevice(xstream.SimSSD("chaos", 2, 0)), k.opts(s))
					got, _, err := runChaosAlgo(algo, src, chaosConfig(faulty, false, false))
					n := faulty.(xstream.FaultInjector).Faults()
					if n > 0 {
						fired++
					}
					if err != nil {
						if !errors.Is(err, xstream.ErrCorrupted) {
							t.Fatalf("seed %d: corruption surfaced as %v, want ErrCorrupted", s, err)
						}
						if n == 0 {
							t.Fatalf("seed %d: ErrCorrupted reported with no injected fault", s)
						}
						detected++
						continue
					}
					// The run returned results: they must be exactly right. An
					// injected corruption that changed any bit of the output is
					// the failure the checksum layer exists to prevent.
					xstreamtest.AssertBitIdentical(t, got, want, fmt.Sprintf("seed %d: corruption reached the result", s))
				}
				if fired == 0 {
					t.Fatal("fault schedule never fired across any seed")
				}
				if detected == 0 {
					t.Fatal("no run surfaced ErrCorrupted: schedule too weak to prove detection")
				}
			})
		}
	}
}

// TestChaosResumeAfterFault: a run killed mid-stream (every device
// operation fails past a budget) leaves its iteration checkpoints behind;
// restarting with the same prefix resumes past the completed iterations —
// Stats.ResumedIterations proves they were restored, not re-executed — and
// the final results are bit-identical to an uninterrupted run.
func TestChaosResumeAfterFault(t *testing.T) {
	src := chaosGraph()
	for _, algo := range []string{"pagerank", "bfs"} {
		t.Run(algo, func(t *testing.T) {
			selective := algo == "bfs"
			mk := func(dev xstream.Device, prefix string) xstream.DiskConfig {
				cfg := chaosConfig(dev, selective, false)
				cfg.Checkpoint = true
				cfg.Prefix = prefix
				return cfg
			}
			cleanDev := xstream.NewSimDevice(xstream.SimSSD("chaos-clean", 2, 0))
			want, cleanStats, err := runChaosAlgo(algo, src, mk(cleanDev, "clean-"))
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			ds := cleanDev.Stats()
			totalOps := ds.Reads + ds.Writes

			// Kill the run at several points of its op budget until one crash
			// lands after the first checkpoint; the checkpoints survive on the
			// inner device, which the resume then runs against directly.
			inner := xstream.NewSimDevice(xstream.SimSSD("chaos", 2, 0))
			for attempt, frac := range []float64{0.6, 0.45, 0.75, 0.3, 0.9, 0.2} {
				prefix := fmt.Sprintf("crash%d-", attempt)
				budget := int64(float64(totalOps) * frac)
				if budget < 1 {
					budget = 1
				}
				faulty := xstream.NewFaultyDevice(inner, xstream.FaultyOptions{FailAfterOps: budget})
				if _, _, err := runChaosAlgo(algo, src, mk(faulty, prefix)); err == nil {
					continue // budget outlasted the whole run: not a crash
				}
				got, stats, err := runChaosAlgo(algo, src, mk(inner, prefix))
				if err != nil {
					t.Fatalf("resume after crash at %d ops: %v", budget, err)
				}
				if stats.ResumedIterations == 0 {
					continue // crashed before the first checkpoint completed
				}
				if stats.Iterations != cleanStats.Iterations {
					t.Fatalf("resumed run spans %d iterations, fault-free run %d",
						stats.Iterations, cleanStats.Iterations)
				}
				if executed := stats.Iterations - stats.ResumedIterations; executed >= stats.Iterations {
					t.Fatalf("resume executed all %d iterations despite claiming to restore %d",
						stats.Iterations, stats.ResumedIterations)
				}
				xstreamtest.AssertBitIdentical(t, got, want, fmt.Sprintf("resume from iteration %d", stats.ResumedIterations))
				t.Logf("crash after %d of %d ops: resumed at iteration %d of %d, bit-identical",
					budget, totalOps, stats.ResumedIterations, stats.Iterations)
				return
			}
			t.Fatal("no crash window produced a resumable checkpoint")
		})
	}
}
