// Command xstream runs a graph algorithm over an edge list with either
// engine — the CLI face of the library.
//
// Usage:
//
//	xstream -algo wcc -rmat 20 -undirected            # in-memory on a generated graph
//	xstream -algo pagerank -input g.xsedge            # in-memory on a binary edge file
//	xstream -algo bfs -root 5 -input g.xsedge \
//	        -engine disk -dir /mnt/fast/xs -budget 8g # out of core on real files
//	xstream -algo sssp -engine disk -device sim-ssd   # out of core on the simulated SSD
//	xstream -algo pagerank -rmat 18 -partitioner 2ps \
//	        -save-permutation g.xsperm                # pay the clustering pass once...
//	xstream -algo wcc -rmat 18 -load-permutation g.xsperm  # ...replay it later
//	xstream -algo pagerank -rmat 18 -partitioner 2psv \
//	        -replicate 256                            # volume-balanced + hub mirrors
//	xstream -algo pagerank -rmat 18 -combine=false    # disable update pre-aggregation
//	xstream -algo bfs -rmat 18 -selective=false       # stream densely even with a frontier
//	xstream -algo pagerank -rmat 18 -trace-out t.json # span trace for Perfetto/chrome://tracing
//	xstream -algo pagerank -rmat 18 -cpuprofile cpu.out -memprofile mem.out  # go tool pprof
//
// Algorithms are dispatched through the registry in internal/algorithms —
// the same table cmd/xserve serves jobs from — and executed as type-erased
// jobs (the shared-pass path; a solo CLI run is a shared pass of one). On
// the disk engine -budget still sizes partitions and stream buffers by the
// §3.4 rule, but vertex state and updates stay in memory (the shared-pass
// bypass; use the library's RunDisk for vertex spilling). It prints the
// execution Stats (iterations, partitions, wasted edges, phase times) and
// an algorithm-specific summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	xstream "repro"
	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/memengine"
	"repro/internal/obs"
)

func main() {
	var (
		algo       = flag.String("algo", "wcc", "algorithm: "+strings.Join(algorithms.Names(), "|"))
		input      = flag.String("input", "", "binary edge file to process")
		rmat       = flag.Int("rmat", 0, "generate an RMAT graph of this scale instead of -input")
		edgeFactor = flag.Int("ef", 16, "RMAT edge factor")
		seed       = flag.Int64("seed", 1, "RMAT seed")
		undirected = flag.Bool("undirected", false, "generate undirected RMAT")
		root       = flag.Uint("root", 0, "root vertex for bfs/sssp")
		iters      = flag.Int("iters", 5, "iterations for pagerank/bp/als")
		users      = flag.Int64("users", 0, "user count for als (bipartite split)")
		engine     = flag.String("engine", "mem", "engine: mem|disk")
		device     = flag.String("device", "os", "disk engine device: os|sim-ssd|sim-hdd")
		dir        = flag.String("dir", os.TempDir(), "directory for -device os")
		budget     = flag.String("budget", "256m", "disk engine memory budget (e.g. 8g)")
		ioUnit     = flag.String("iounit", "1m", "disk engine I/O unit (e.g. 16m)")
		threads    = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		partition  = flag.String("partitioner", "range", "partitioning policy: range|2ps|2psv (2psv = volume-balanced packing, pair with -replicate)")
		replicate  = flag.Int("replicate", 0, "mirror up to N high-in-degree vertices so their cross-partition updates collapse to per-partition syncs (0 = off; needs an algorithm with a combiner)")
		combine    = flag.Bool("combine", true, "pre-aggregate the update stream when the algorithm has a combiner")
		selective  = flag.Bool("selective", true, "skip inactive partitions and edge tiles when the algorithm has a frontier (bfs/sssp/wcc)")
		compress   = flag.Bool("compress-tiles", false, "disk engine: store partition edge files as delta-varint compressed tiles (bit-identical results, fewer physical bytes read)")
		savePerm   = flag.String("save-permutation", "", "save the partitioner's vertex relabeling to this file after planning")
		loadPerm   = flag.String("load-permutation", "", "replay a saved vertex relabeling instead of running the partitioner")
		checkpoint = flag.Bool("checkpoint", false, "disk engine: persist a checksummed snapshot after each iteration; a rerun over the same directory resumes from the last completed iteration")
		ioRetries  = flag.Int("io-retries", 3, "disk engine: retry transient device errors up to N times with jittered backoff (0 = fail fast)")
		verify     = flag.Bool("verify-checksums", true, "disk engine: verify the CRC32C frames of on-disk artifacts on read; a mismatch fails the run with a corruption error instead of computing on bad data")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of the run to this file (load in Perfetto or chrome://tracing)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile after the run to this file (go tool pprof)")
	)
	flag.Parse()

	var partitioner xstream.Partitioner
	switch *partition {
	case "range":
		partitioner = xstream.NewRangePartitioner()
	case "2ps":
		partitioner = xstream.New2PSPartitioner()
	case "2psv":
		partitioner = xstream.New2PSVolumePartitioner()
	default:
		fatal("unknown -partitioner %q", *partition)
	}
	if *replicate > 0 {
		partitioner = xstream.NewReplicatingPartitioner(partitioner, xstream.ReplicationConfig{MaxMirrors: *replicate})
	}
	// A saved permutation replaces the partitioning pass entirely; saving
	// wraps the chosen partitioner so the pass is paid once per dataset.
	if *loadPerm != "" {
		if *savePerm != "" {
			fatal("-save-permutation and -load-permutation are mutually exclusive")
		}
		dev, name, err := fileDevice(*loadPerm)
		if err != nil {
			fatal("device: %v", err)
		}
		partitioner, err = xstream.LoadPartitioner(dev, name)
		if err != nil {
			fatal("load permutation: %v", err)
		}
		// A loaded file replays its persisted mirror set; an explicit
		// -replicate re-selects hubs on top of the replayed relabeling.
		if *replicate > 0 {
			partitioner = xstream.NewReplicatingPartitioner(partitioner, xstream.ReplicationConfig{MaxMirrors: *replicate})
		}
	} else if *savePerm != "" {
		dev, name, err := fileDevice(*savePerm)
		if err != nil {
			fatal("device: %v", err)
		}
		partitioner = xstream.SavingPartitioner(partitioner, dev, name)
	}

	spec, ok := algorithms.ByName(*algo)
	if !ok {
		fatal("unknown -algo %q (have %s)", *algo, strings.Join(algorithms.Names(), "|"))
	}
	inst, err := spec.New(algorithms.Params{
		Root: core.VertexID(*root), Iters: *iters, Users: *users,
	})
	if err != nil {
		fatal("-algo %s: %v", *algo, err)
	}

	src := loadInput(*input, *rmat, *edgeFactor, *seed, *undirected)
	fmt.Fprintf(os.Stderr, "xstream: %d vertices, %d edge records\n", src.NumVertices(), src.NumEdges())
	if spec.Symmetrize {
		src = xstream.Symmetrize(src)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	var tracer *obs.Recorder
	if *traceOut != "" {
		tracer = obs.NewRecorder()
	}

	var out *core.JobResult
	switch *engine {
	case "mem":
		memCfg := xstream.MemConfig{
			Threads: *threads, Partitioner: partitioner, NoCombine: !*combine, Selective: *selective,
		}
		if tracer != nil {
			memCfg.Tracer = tracer
		}
		out, err = memengine.RunJob(context.Background(), src, inst.Job, memCfg)
	case "disk":
		var dev xstream.Device
		switch *device {
		case "os":
			dev, err = xstream.NewOSDevice("scratch", *dir)
			if err != nil {
				fatal("device: %v", err)
			}
		case "sim-ssd":
			dev = xstream.NewSimDevice(xstream.SimSSD("ssd", 2, 1.0))
		case "sim-hdd":
			dev = xstream.NewSimDevice(xstream.SimHDD("hdd", 2, 1.0))
		default:
			fatal("unknown -device %q", *device)
		}
		if *ioRetries > 0 {
			// MaxAttempts counts the first try; -io-retries counts only the
			// re-issues, so N retries is N+1 attempts.
			dev = xstream.NewRetryDevice(dev, xstream.RetryOptions{MaxAttempts: *ioRetries + 1})
		}
		diskCfg := xstream.DiskConfig{
			Device:        dev,
			MemoryBudget:  parseBytes(*budget),
			IOUnit:        int(parseBytes(*ioUnit)),
			Threads:       *threads,
			Partitioner:   partitioner,
			NoCombine:     !*combine,
			Selective:     *selective,
			CompressTiles: *compress,
			NoVerify:      !*verify,
			Checkpoint:    *checkpoint,
		}
		if tracer != nil {
			diskCfg.Tracer = tracer
		}
		out, err = diskengine.RunJob(context.Background(), src, inst.Job, diskCfg)
	default:
		fatal("unknown -engine %q", *engine)
	}
	if err != nil {
		fatal("%v", err)
	}
	if tracer != nil {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fatal("-trace-out: %v", ferr)
		}
		events := tracer.Events()
		if werr := obs.WriteChromeTrace(f, events); werr != nil {
			fatal("-trace-out: %v", werr)
		}
		if cerr := f.Close(); cerr != nil {
			fatal("-trace-out: %v", cerr)
		}
		fmt.Fprintf(os.Stderr, "xstream: wrote %d spans to %s\n", len(events), *traceOut)
	}
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			fatal("-memprofile: %v", ferr)
		}
		runtime.GC()
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			fatal("-memprofile: %v", werr)
		}
		if cerr := f.Close(); cerr != nil {
			fatal("-memprofile: %v", cerr)
		}
	}

	stats := out.Stats
	fmt.Println(stats.String())
	if stats.UpdatesSent > 0 {
		fmt.Printf("partitioner %s: %.1f%% of updates crossed partitions\n",
			stats.Partitioner, 100*stats.CrossFraction())
	}
	if stats.UpdatesCombined > 0 {
		fmt.Printf("combiner: %d of %d updates pre-aggregated (%.1f%%), %d-byte update stream\n",
			stats.UpdatesCombined, stats.UpdatesSent, 100*stats.CombinedFraction(), stats.UpdateBytes)
	}
	if stats.MirroredVertices > 0 {
		fmt.Printf("replication: %d mirrored vertices, %d master-mirror sync updates\n",
			stats.MirroredVertices, stats.MirrorSyncUpdates)
	}
	if stats.EdgesSkipped > 0 {
		fmt.Printf("selective: %d of %d edges skipped (%.1f%%), %d partitions + %d tiles elided\n",
			stats.EdgesSkipped, stats.EdgesStreamed+stats.EdgesSkipped,
			100*stats.SkippedFraction(), stats.PartitionsSkipped, stats.TilesSkipped)
	}
	if stats.CompressedRatio > 0 {
		fmt.Printf("compressed tiles: %d bytes read for %d logical (%.1f%% saved), %d tiles delta-coded, layout at %.2f of raw\n",
			stats.BytesRead, stats.BytesReadLogical,
			100*(1-float64(stats.BytesRead)/float64(stats.BytesReadLogical)),
			stats.TilesCompressed, stats.CompressedRatio)
	}
	fmt.Println(inst.Summarize(out.Vertices))
	if inst.EvalEdges != nil {
		if edges, err := xstream.Materialize(src); err == nil {
			fmt.Println(inst.EvalEdges(out.Vertices, edges))
		}
	}
}

func loadInput(input string, rmat, ef int, seed int64, undirected bool) xstream.EdgeSource {
	switch {
	case rmat > 0:
		return xstream.RMAT(xstream.RMATConfig{Scale: rmat, EdgeFactor: ef, Seed: seed, Undirected: undirected})
	case input != "":
		dev, name, err := fileDevice(input)
		if err != nil {
			fatal("device: %v", err)
		}
		src, err := xstream.OpenEdgeFile(dev, name)
		if err != nil {
			fatal("open: %v", err)
		}
		return src
	default:
		fatal("need -input FILE or -rmat SCALE")
		return nil
	}
}

// fileDevice splits a path into an OS device over its directory plus the
// file name on it — shared by -input and the permutation flags.
func fileDevice(path string) (xstream.Device, string, error) {
	dir, name := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	dev, err := xstream.NewOSDevice("file", dir)
	return dev, name, err
}

func parseBytes(s string) int64 {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, strings.TrimSuffix(s, "g")
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		fatal("bad byte size %q", s)
	}
	return v * mult
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "xstream: "+format+"\n", args...)
	os.Exit(1)
}
