// Command xstream runs a graph algorithm over an edge list with either
// engine — the CLI face of the library.
//
// Usage:
//
//	xstream -algo wcc -rmat 20 -undirected            # in-memory on a generated graph
//	xstream -algo pagerank -input g.xsedge            # in-memory on a binary edge file
//	xstream -algo bfs -root 5 -input g.xsedge \
//	        -engine disk -dir /mnt/fast/xs -budget 8g # out of core on real files
//	xstream -algo sssp -engine disk -device sim-ssd   # out of core on the simulated SSD
//	xstream -algo pagerank -rmat 18 -partitioner 2ps \
//	        -save-permutation g.xsperm                # pay the clustering pass once...
//	xstream -algo wcc -rmat 18 -load-permutation g.xsperm  # ...replay it later
//	xstream -algo pagerank -rmat 18 -combine=false    # disable update pre-aggregation
//	xstream -algo bfs -rmat 18 -selective=false       # stream densely even with a frontier
//
// It prints the execution Stats (iterations, partitions, wasted edges,
// phase times) and an algorithm-specific summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	xstream "repro"
)

func main() {
	var (
		algo       = flag.String("algo", "wcc", "algorithm: wcc|scc|bfs|sssp|pagerank|spmv|mis|mcst|conductance|bp|als|hyperanf")
		input      = flag.String("input", "", "binary edge file to process")
		rmat       = flag.Int("rmat", 0, "generate an RMAT graph of this scale instead of -input")
		edgeFactor = flag.Int("ef", 16, "RMAT edge factor")
		seed       = flag.Int64("seed", 1, "RMAT seed")
		undirected = flag.Bool("undirected", false, "generate undirected RMAT")
		root       = flag.Uint("root", 0, "root vertex for bfs/sssp")
		iters      = flag.Int("iters", 5, "iterations for pagerank/bp/als")
		users      = flag.Int64("users", 0, "user count for als (bipartite split)")
		engine     = flag.String("engine", "mem", "engine: mem|disk")
		device     = flag.String("device", "os", "disk engine device: os|sim-ssd|sim-hdd")
		dir        = flag.String("dir", os.TempDir(), "directory for -device os")
		budget     = flag.String("budget", "256m", "disk engine memory budget (e.g. 8g)")
		ioUnit     = flag.String("iounit", "1m", "disk engine I/O unit (e.g. 16m)")
		threads    = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		partition  = flag.String("partitioner", "range", "partitioning policy: range|2ps")
		combine    = flag.Bool("combine", true, "pre-aggregate the update stream when the algorithm has a combiner")
		selective  = flag.Bool("selective", true, "skip inactive partitions and edge tiles when the algorithm has a frontier (bfs/sssp/wcc)")
		savePerm   = flag.String("save-permutation", "", "save the partitioner's vertex relabeling to this file after planning")
		loadPerm   = flag.String("load-permutation", "", "replay a saved vertex relabeling instead of running the partitioner")
	)
	flag.Parse()

	var partitioner xstream.Partitioner
	switch *partition {
	case "range":
		partitioner = xstream.NewRangePartitioner()
	case "2ps":
		partitioner = xstream.New2PSPartitioner()
	default:
		fatal("unknown -partitioner %q", *partition)
	}
	// A saved permutation replaces the partitioning pass entirely; saving
	// wraps the chosen partitioner so the pass is paid once per dataset.
	if *loadPerm != "" {
		if *savePerm != "" {
			fatal("-save-permutation and -load-permutation are mutually exclusive")
		}
		dev, name, err := fileDevice(*loadPerm)
		if err != nil {
			fatal("device: %v", err)
		}
		partitioner, err = xstream.LoadPartitioner(dev, name)
		if err != nil {
			fatal("load permutation: %v", err)
		}
	} else if *savePerm != "" {
		dev, name, err := fileDevice(*savePerm)
		if err != nil {
			fatal("device: %v", err)
		}
		partitioner = xstream.SavingPartitioner(partitioner, dev, name)
	}

	src := loadInput(*input, *rmat, *edgeFactor, *seed, *undirected)
	fmt.Fprintf(os.Stderr, "xstream: %d vertices, %d edge records\n", src.NumVertices(), src.NumEdges())

	var diskCfg xstream.DiskConfig
	if *engine == "disk" {
		var dev xstream.Device
		var err error
		switch *device {
		case "os":
			dev, err = xstream.NewOSDevice("scratch", *dir)
		case "sim-ssd":
			dev = xstream.NewSimDevice(xstream.SimSSD("ssd", 2, 1.0))
		case "sim-hdd":
			dev = xstream.NewSimDevice(xstream.SimHDD("hdd", 2, 1.0))
		default:
			fatal("unknown -device %q", *device)
		}
		if err != nil {
			fatal("device: %v", err)
		}
		diskCfg = xstream.DiskConfig{
			Device:       dev,
			MemoryBudget: parseBytes(*budget),
			IOUnit:       int(parseBytes(*ioUnit)),
			Threads:      *threads,
			Partitioner:  partitioner,
			NoCombine:    !*combine,
			Selective:    *selective,
		}
	}
	memCfg := xstream.MemConfig{
		Threads: *threads, Partitioner: partitioner, NoCombine: !*combine, Selective: *selective,
	}

	switch *algo {
	case "wcc":
		runAlgo(src, xstream.NewWCC(), *engine, memCfg, diskCfg, func(v []xstream.WCCState, s xstream.Stats) {
			counts := map[xstream.VertexID]int{}
			for _, st := range v {
				counts[st.Label]++
			}
			largest := 0
			for _, c := range counts {
				if c > largest {
					largest = c
				}
			}
			fmt.Printf("components: %d (largest %d vertices)\n", len(counts), largest)
		})
	case "scc":
		runAlgo(src, xstream.NewSCC(), *engine, memCfg, diskCfg, func(v []xstream.SCCState, s xstream.Stats) {
			comps := map[uint32]bool{}
			for _, st := range v {
				comps[st.SCCID] = true
			}
			fmt.Printf("strongly connected components: %d\n", len(comps))
		})
	case "bfs":
		runAlgo(src, xstream.NewBFS(xstream.VertexID(*root)), *engine, memCfg, diskCfg, func(v []xstream.BFSState, s xstream.Stats) {
			reached, maxd := 0, int32(0)
			for _, st := range v {
				if st.Dist >= 0 {
					reached++
					if st.Dist > maxd {
						maxd = st.Dist
					}
				}
			}
			fmt.Printf("reached %d vertices, max depth %d\n", reached, maxd)
		})
	case "sssp":
		runAlgo(src, xstream.NewSSSP(xstream.VertexID(*root)), *engine, memCfg, diskCfg, func(v []xstream.SSSPState, s xstream.Stats) {
			reached := 0
			for _, st := range v {
				if st.Dist < 1e38 {
					reached++
				}
			}
			fmt.Printf("reached %d vertices\n", reached)
		})
	case "pagerank":
		runAlgo(src, xstream.NewPageRank(*iters), *engine, memCfg, diskCfg, func(v []xstream.PRState, s xstream.Stats) {
			type vr struct {
				id xstream.VertexID
				r  float32
			}
			top := make([]vr, 0, len(v))
			for i, st := range v {
				top = append(top, vr{xstream.VertexID(i), st.Rank})
			}
			sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
			n := 5
			if len(top) < n {
				n = len(top)
			}
			fmt.Printf("top ranks: ")
			for _, t := range top[:n] {
				fmt.Printf("v%d=%.2f ", t.id, t.r)
			}
			fmt.Println()
		})
	case "spmv":
		runAlgo(src, xstream.NewSpMV(), *engine, memCfg, diskCfg, func(v []xstream.SpMVState, s xstream.Stats) {
			var sum float64
			for _, st := range v {
				sum += float64(st.Y)
			}
			fmt.Printf("sum(y) = %.3f\n", sum)
		})
	case "mis":
		runAlgo(src, xstream.NewMIS(), *engine, memCfg, diskCfg, func(v []xstream.MISState, s xstream.Stats) {
			in := 0
			for _, st := range v {
				if st.Status == xstream.MISIn {
					in++
				}
			}
			fmt.Printf("independent set size: %d\n", in)
		})
	case "mcst":
		prog := xstream.NewMCST()
		runAlgo(src, prog, *engine, memCfg, diskCfg, func(v []xstream.MCSTState, s xstream.Stats) {
			fmt.Printf("spanning forest: %d edges, total weight %.3f\n", len(prog.Edges), prog.TotalWeight)
		})
	case "conductance":
		prog := xstream.NewConductance(nil)
		runAlgo(src, prog, *engine, memCfg, diskCfg, func(v []xstream.CondState, s xstream.Stats) {
			fmt.Printf("conductance of odd-ID subset: %.4f (cut %d, vol %d/%d)\n",
				prog.Phi, prog.CutEdges, prog.VolS, prog.VolT)
		})
	case "bp":
		runAlgo(src, xstream.NewBP(*iters), *engine, memCfg, diskCfg, func(v []xstream.BPState, s xstream.Stats) {
			var mean float64
			for _, st := range v {
				mean += float64(st.B1)
			}
			fmt.Printf("mean belief(state 1): %.4f\n", mean/float64(len(v)))
		})
	case "als":
		if *users == 0 {
			fatal("als needs -users (bipartite split)")
		}
		runAlgo(src, xstream.NewALS(*users, *iters), *engine, memCfg, diskCfg, func(v []xstream.ALSState, s xstream.Stats) {
			edges, err := xstream.Materialize(src)
			if err == nil {
				fmt.Printf("training RMSE: %.4f\n", xstream.ALSRMSE(v, edges, xstream.VertexID(*users)))
			}
		})
	case "hyperanf":
		prog := xstream.NewHyperANF()
		runAlgo(xstream.Symmetrize(src), prog, *engine, memCfg, diskCfg, func(v []xstream.ANFState, s xstream.Stats) {
			fmt.Printf("steps to cover: %d, effective diameter (0.9): %d\n",
				prog.Steps(), prog.EffectiveDiameter(0.9))
		})
	default:
		fatal("unknown -algo %q", *algo)
	}
}

// runAlgo dispatches to the selected engine and prints Stats.
func runAlgo[V, M any](src xstream.EdgeSource, prog xstream.Program[V, M],
	engine string, memCfg xstream.MemConfig, diskCfg xstream.DiskConfig,
	summarize func([]V, xstream.Stats)) {
	var verts []V
	var stats xstream.Stats
	switch engine {
	case "mem":
		res, err := xstream.RunMemory(src, prog, memCfg)
		if err != nil {
			fatal("%v", err)
		}
		verts, stats = res.Vertices, res.Stats
	case "disk":
		res, err := xstream.RunDisk(src, prog, diskCfg)
		if err != nil {
			fatal("%v", err)
		}
		verts, stats = res.Vertices, res.Stats
	default:
		fatal("unknown -engine %q", engine)
	}
	fmt.Println(stats.String())
	if stats.UpdatesSent > 0 {
		fmt.Printf("partitioner %s: %.1f%% of updates crossed partitions\n",
			stats.Partitioner, 100*stats.CrossFraction())
	}
	if stats.UpdatesCombined > 0 {
		fmt.Printf("combiner: %d of %d updates pre-aggregated (%.1f%%), %d-byte update stream\n",
			stats.UpdatesCombined, stats.UpdatesSent, 100*stats.CombinedFraction(), stats.UpdateBytes)
	}
	if stats.EdgesSkipped > 0 {
		fmt.Printf("selective: %d of %d edges skipped (%.1f%%), %d partitions + %d tiles elided\n",
			stats.EdgesSkipped, stats.EdgesStreamed+stats.EdgesSkipped,
			100*stats.SkippedFraction(), stats.PartitionsSkipped, stats.TilesSkipped)
	}
	summarize(verts, stats)
}

func loadInput(input string, rmat, ef int, seed int64, undirected bool) xstream.EdgeSource {
	switch {
	case rmat > 0:
		return xstream.RMAT(xstream.RMATConfig{Scale: rmat, EdgeFactor: ef, Seed: seed, Undirected: undirected})
	case input != "":
		dev, name, err := fileDevice(input)
		if err != nil {
			fatal("device: %v", err)
		}
		src, err := xstream.OpenEdgeFile(dev, name)
		if err != nil {
			fatal("open: %v", err)
		}
		return src
	default:
		fatal("need -input FILE or -rmat SCALE")
		return nil
	}
}

// fileDevice splits a path into an OS device over its directory plus the
// file name on it — shared by -input and the permutation flags.
func fileDevice(path string) (xstream.Device, string, error) {
	dir, name := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	dev, err := xstream.NewOSDevice("file", dir)
	return dev, name, err
}

func parseBytes(s string) int64 {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, strings.TrimSuffix(s, "g")
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		fatal("bad byte size %q", s)
	}
	return v * mult
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "xstream: "+format+"\n", args...)
	os.Exit(1)
}
