// Command doclint enforces the repo's documentation contract: every
// exported package-level symbol — functions, methods, types, constants and
// variables — must carry a doc comment (the revive/golint "exported"
// rule, self-contained so CI needs no extra toolchain). It walks the Go
// packages under the given roots, skips test files, vendored trees and
// testdata, and exits non-zero listing every exported symbol whose doc
// comment is missing.
//
// Usage:
//
//	doclint [root ...]     # default root is "."
//
// A doc comment on a grouped declaration (const/var block, or a spec
// listing several names) covers the whole group, matching standard Go
// conventions.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var bad []string
	for _, root := range roots {
		problems, err := lintTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		bad = append(bad, problems...)
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		for _, p := range bad {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d exported symbols missing doc comments\n", len(bad))
		os.Exit(1)
	}
}

// lintTree walks every non-test Go file under root and collects missing
// doc comments.
func lintTree(root string) ([]string, error) {
	var bad []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		bad = append(bad, lintFile(fset, f)...)
		return nil
	})
	return bad, err
}

// lintFile reports the exported declarations of one parsed file that lack
// doc comments.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var bad []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		bad = append(bad, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			kind := "function"
			name := d.Name.Name
			if d.Recv != nil {
				// Methods count only when the receiver type is exported
				// too; a method on an unexported type is not part of the
				// package API surface.
				recv := receiverName(d.Recv)
				if recv == "" || !ast.IsExported(recv) {
					continue
				}
				kind = "method"
				name = recv + "." + name
			}
			report(d.Pos(), kind, name)
		case *ast.GenDecl:
			lintGenDecl(d, report)
		}
	}
	return bad
}

// lintGenDecl checks a const/var/type declaration: a doc comment on the
// grouped declaration or on the individual spec satisfies the rule.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := ""
	switch d.Tok {
	case token.TYPE:
		kind = "type"
	case token.CONST:
		kind = "const"
	case token.VAR:
		kind = "var"
	default:
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
				report(s.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && d.Doc == nil && s.Doc == nil {
					report(n.Pos(), kind, n.Name)
					break // one report per spec is enough
				}
			}
		}
	}
}

// receiverName extracts the receiver's type name, unwrapping pointers and
// generic instantiations.
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
