// Command rmat generates RMAT, grid, uniform and bipartite graphs as
// X-Stream binary edge files or text edge lists.
//
// Usage:
//
//	rmat -scale 20 -out graph.xsedge          # RMAT scale 20 binary file
//	rmat -scale 16 -undirected -text          # text edge list to stdout
//	rmat -grid 512                            # 512x512 grid
//	rmat -bipartite 60000x4000 -ratings 1e6   # ratings graph
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	xstream "repro"
)

func main() {
	var (
		scale      = flag.Int("scale", 0, "RMAT scale (2^scale vertices)")
		edgeFactor = flag.Int("ef", 16, "RMAT edge factor (edges per vertex)")
		seed       = flag.Int64("seed", 1, "generator seed")
		undirected = flag.Bool("undirected", false, "store each edge in both directions")
		grid       = flag.Int("grid", 0, "generate a side x side grid instead")
		bipartite  = flag.String("bipartite", "", "generate a bipartite UxI ratings graph, e.g. 60000x4000")
		ratings    = flag.Float64("ratings", 1e6, "rating count for -bipartite")
		out        = flag.String("out", "", "binary edge file to write (directory of the file becomes the device)")
		text       = flag.Bool("text", false, "write text edge list to stdout instead")
	)
	flag.Parse()

	var src xstream.EdgeSource
	switch {
	case *grid > 0:
		src = xstream.GridGraph(*grid, *grid, *seed)
	case *bipartite != "":
		parts := strings.SplitN(*bipartite, "x", 2)
		if len(parts) != 2 {
			fatal("bad -bipartite %q, want UxI", *bipartite)
		}
		u, err1 := strconv.Atoi(parts[0])
		i, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			fatal("bad -bipartite %q: %v %v", *bipartite, err1, err2)
		}
		src = xstream.BipartiteGraph(u, i, int64(*ratings), *seed)
	case *scale > 0:
		src = xstream.RMAT(xstream.RMATConfig{
			Scale: *scale, EdgeFactor: *edgeFactor, Seed: *seed, Undirected: *undirected,
		})
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "rmat: %d vertices, %d edge records\n", src.NumVertices(), src.NumEdges())

	switch {
	case *text:
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		err := src.Edges(func(batch []xstream.Edge) error {
			return xstream.WriteTextEdges(w, batch)
		})
		if err != nil {
			fatal("write: %v", err)
		}
	case *out != "":
		dir := filepath.Dir(*out)
		dev, err := xstream.NewOSDevice("out", dir)
		if err != nil {
			fatal("device: %v", err)
		}
		if err := xstream.WriteEdgeFile(dev, filepath.Base(*out), src); err != nil {
			fatal("write: %v", err)
		}
		fmt.Fprintf(os.Stderr, "rmat: wrote %s\n", *out)
	default:
		fatal("need -out FILE or -text")
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rmat: "+format+"\n", args...)
	os.Exit(1)
}
