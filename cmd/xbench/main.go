// Command xbench regenerates the tables and figures of the X-Stream paper's
// evaluation section (§5).
//
// Usage:
//
//	xbench -list                 # show available experiments
//	xbench -run fig12a           # run one experiment
//	xbench -run fig14,fig15      # run several
//	xbench -all                  # run everything
//	xbench -all -quick           # smoke-test scale
//
// Results print as aligned text tables with the paper's reference values in
// the notes; EXPERIMENTS.md records a full run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		runIDs    = flag.String("run", "", "comma-separated experiment ids to run")
		all       = flag.Bool("all", false, "run every experiment")
		quick     = flag.Bool("quick", false, "shrink workloads to smoke-test size")
		threads   = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		timeScale = flag.Float64("timescale", 0, "simulated-device pacing (0 = per-figure default, 1.0 = real time)")
	)
	flag.Parse()

	if *list {
		for _, r := range bench.Runners() {
			fmt.Printf("  %-10s %s\n", r.ID, r.Title)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		for _, r := range bench.Runners() {
			ids = append(ids, r.ID)
		}
	case *runIDs != "":
		ids = strings.Split(*runIDs, ",")
	default:
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.Config{Quick: *quick, Threads: *threads, TimeScale: *timeScale}
	failed := 0
	for _, id := range ids {
		r, ok := bench.Get(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "xbench: unknown experiment %q (use -list)\n", id)
			failed++
			continue
		}
		start := time.Now()
		tab, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xbench: %s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("  [%s completed in %s]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
