// Command xbench regenerates the tables and figures of the X-Stream paper's
// evaluation section (§5).
//
// Usage:
//
//	xbench -list                 # show available experiments
//	xbench -run fig12a           # run one experiment
//	xbench -run fig14,fig15      # run several
//	xbench -all                  # run everything
//	xbench -all -quick           # smoke-test scale
//	xbench -run figcombine -quick -json BENCH_ci.json  # machine-readable, for CI
//
// Results print as aligned text tables with the paper's reference values in
// the notes; EXPERIMENTS.md records a full run. With -json, each
// experiment's deterministic work metrics (record counts, stream bytes,
// cross fractions — never wall time) are also written to a report file that
// cmd/benchgate diffs against a checked-in baseline to catch perf
// regressions in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

// jsonReport is the machine-readable output of a run, consumed by
// cmd/benchgate.
type jsonReport struct {
	GoVersion string       `json:"go_version"`
	Quick     bool         `json:"quick"`
	Threads   int          `json:"threads"`
	Results   []jsonResult `json:"results"`
}

type jsonResult struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Seconds float64            `json:"seconds"` // recorded for trajectory, never gated
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		runIDs    = flag.String("run", "", "comma-separated experiment ids to run")
		all       = flag.Bool("all", false, "run every experiment")
		quick     = flag.Bool("quick", false, "shrink workloads to smoke-test size")
		threads   = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		timeScale = flag.Float64("timescale", 0, "simulated-device pacing (0 = per-figure default, 1.0 = real time)")
		jsonOut   = flag.String("json", "", "write a machine-readable report to this file (for cmd/benchgate)")
	)
	flag.Parse()

	if *list {
		for _, r := range bench.Runners() {
			fmt.Printf("  %-10s %s\n", r.ID, r.Title)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		for _, r := range bench.Runners() {
			ids = append(ids, r.ID)
		}
	case *runIDs != "":
		ids = strings.Split(*runIDs, ",")
	default:
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.Config{Quick: *quick, Threads: *threads, TimeScale: *timeScale}
	report := jsonReport{GoVersion: runtime.Version(), Quick: *quick, Threads: *threads}
	failed := 0
	for _, id := range ids {
		r, ok := bench.Get(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "xbench: unknown experiment %q (use -list)\n", id)
			failed++
			continue
		}
		start := time.Now()
		tab, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xbench: %s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		elapsed := time.Since(start)
		tab.Fprint(os.Stdout)
		fmt.Printf("  [%s completed in %s]\n\n", r.ID, elapsed.Round(time.Millisecond))
		report.Results = append(report.Results, jsonResult{
			ID: tab.ID, Title: tab.Title, Seconds: elapsed.Seconds(), Metrics: tab.Metrics,
		})
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "xbench: encode report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "xbench: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
