// Command xserve is the graph-analytics serving layer: an HTTP API over
// the dataset registry (internal/dataset) and job scheduler
// (internal/jobs). Datasets are ingested once at startup — parse/generate,
// optional 2PS clustering with a persisted permutation, and (with a
// device) the out-of-core pre-processing shuffle — and then served to any
// number of jobs, with same-dataset jobs batched into shared passes so N
// concurrent queries pay for one edge stream instead of N.
//
// Usage:
//
//	xserve -addr :8080 -dataset social=rmat:18:16:1 \
//	       -dataset roads=file:/data/usa.xsedge:undirected
//	xserve -dataset g=rmat:16 -partitioner 2ps -device os -dir /mnt/fast/xs
//	xserve -dataset g=rmat:18 -partitioner 2psv -replicate 256  # volume-balanced + mirrors
//
// Dataset specs are name=rmat:scale[:edgefactor[:seed]][:undirected] or
// name=file:path[:undirected]; mark a spec undirected when the edge list
// already stores both directions (required for hyperanf jobs).
//
// API (all JSON):
//
//	POST   /jobs             {"dataset":..,"algo":..,"engine":"mem"|"disk","params":{..},
//	                          "tenant":..,"priority":..}  (503 + Retry-After when over quota)
//	GET    /jobs             list
//	GET    /jobs/{id}        status
//	GET    /jobs/{id}/result result payload + stats (?cursor=&limit= pages vertex vectors)
//	GET    /jobs/{id}/trace  Chrome trace-event JSON of a done job's run (Perfetto-loadable)
//	DELETE /jobs/{id}        cancel
//	GET    /datasets         registered datasets
//	GET    /metrics          scheduler counters (batching, result cache, dataset residency)
//	GET    /metrics.prom     the same counters plus latency histograms, Prometheus text format
//	GET    /healthz          liveness probe
//	GET    /buildinfo        Go build metadata of the binary
//
// Identical repeated jobs are served from the scheduler's result cache
// (-result-cache) with zero edges streamed; -memory-cap bounds resident
// prepared-engine memory with LRU eviction; -tenant-quotas limits each
// tenant's queued and running jobs. Logs are structured (log/slog) on
// stderr; -log-format json switches them to JSON lines. -pprof-addr
// serves net/http/pprof on a separate listener, kept off the API port so
// profiling endpoints are never exposed to API clients by accident. On
// SIGINT/SIGTERM xserve stops accepting connections, drains in-flight
// requests (-drain-timeout), shuts the scheduler down, and closes the
// registry so device spill files are removed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // -pprof-addr listener; registers on DefaultServeMux only
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	xstream "repro"
	"repro/internal/dataset"
	"repro/internal/jobs"
)

// datasetSpecs collects repeated -dataset flags.
type datasetSpecs []string

func (d *datasetSpecs) String() string     { return strings.Join(*d, ",") }
func (d *datasetSpecs) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var specs datasetSpecs
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		partition = flag.String("partitioner", "range", "partitioning policy for all datasets: range|2ps|2psv")
		replicate = flag.Int("replicate", 0, "mirror up to N high-in-degree vertices per dataset (0 = off)")
		device    = flag.String("device", "none", "out-of-core device: none|os|sim-ssd|sim-hdd")
		dir       = flag.String("dir", os.TempDir(), "directory for -device os")
		threads   = flag.Int("threads", 0, "worker threads per engine (0 = GOMAXPROCS)")
		budget    = flag.String("budget", "1g", "scheduler memory budget for co-scheduled jobs (e.g. 4g)")
		maxBatch  = flag.Int("max-batch", 16, "max jobs per shared pass")
		workers   = flag.Int("workers", 2, "concurrent batch runners")
		retention = flag.Int("retention", 256, "finished jobs kept for result retrieval")
		memCap    = flag.String("memory-cap", "0", "resident prepared-engine memory cap with LRU eviction (e.g. 8g, 0 = unbounded)")
		resCache  = flag.String("result-cache", "256m", "result cache capacity (e.g. 64m, 0 = disabled)")
		quotas    = flag.String("tenant-quotas", "", `per-tenant job quotas: "R,Q[;name=R,Q;...]" (R max running, Q max queued, 0 = unlimited)`)
		drain     = flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight HTTP requests on shutdown")
		compress  = flag.Bool("compress-tiles", false, "store out-of-core partition edge files as delta-varint compressed tiles (bit-identical results, fewer physical bytes read)")
		ioRetries = flag.Int("io-retries", 3, "retry transient device errors up to N times with jittered backoff (0 = fail fast)")
		attempts  = flag.Int("job-attempts", 2, "times a job may enter a batch before a transient or corruption failure becomes terminal (1 = no retry)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
		logFormat = flag.String("log-format", "text", "structured log encoding on stderr: text|json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	)
	flag.Var(&specs, "dataset", "dataset spec name=rmat:scale[:ef[:seed]][:undirected] or name=file:path[:undirected] (repeatable)")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fatal("%v", err)
	}
	slog.SetDefault(logger)

	if len(specs) == 0 {
		fatal("need at least one -dataset spec")
	}
	var dev xstream.Device
	switch *device {
	case "none":
	case "os":
		if dev, err = xstream.NewOSDevice("xserve", *dir); err != nil {
			fatal("device: %v", err)
		}
	case "sim-ssd":
		dev = xstream.NewSimDevice(xstream.SimSSD("ssd", 2, 0))
	case "sim-hdd":
		dev = xstream.NewSimDevice(xstream.SimHDD("hdd", 2, 0))
	default:
		fatal("unknown -device %q", *device)
	}
	if dev != nil && *ioRetries > 0 {
		// N retries is N+1 attempts: MaxAttempts counts the first try.
		dev = xstream.NewRetryDevice(dev, xstream.RetryOptions{MaxAttempts: *ioRetries + 1})
	}

	defaultQuota, tenantQuotas, err := parseQuotas(*quotas)
	if err != nil {
		fatal("-tenant-quotas: %v", err)
	}

	reg := dataset.NewRegistry()
	defer reg.Close()
	if capBytes := parseBytes(*memCap); capBytes > 0 {
		reg.SetMemoryCap(capBytes)
	}
	for _, spec := range specs {
		name, src, undirected, err := parseDataset(spec)
		if err != nil {
			fatal("-dataset %q: %v", spec, err)
		}
		_, err = reg.Add(name, src, dataset.Options{
			Partitioner:   *partition,
			Replicate:     *replicate,
			Undirected:    undirected,
			Threads:       *threads,
			Device:        dev,
			CompressTiles: *compress,
		})
		if err != nil {
			fatal("%v", err)
		}
		slog.Info("dataset registered", "dataset", name,
			"vertices", src.NumVertices(), "edges", src.NumEdges())
	}

	cacheBytes := parseBytes(*resCache)
	if cacheBytes <= 0 {
		cacheBytes = -1 // Config: negative disables, zero means default.
	}
	maxAttempts := *attempts
	if maxAttempts <= 1 {
		maxAttempts = -1 // Config: negative means one attempt, no retry.
	}
	sched := jobs.New(reg, jobs.Config{
		MemoryBudget:     parseBytes(*budget),
		MaxBatch:         *maxBatch,
		Workers:          *workers,
		Retention:        *retention,
		ResultCacheBytes: cacheBytes,
		MaxAttempts:      maxAttempts,
		DefaultQuota:     defaultQuota,
		TenantQuotas:     tenantQuotas,
		Logger:           logger,
	})
	defer sched.Close()

	// The pprof listener is separate from the API listener on purpose:
	// profiling handlers stay reachable while the API drains, and an API
	// client can never hit them by path-guessing.
	if *pprofAddr != "" {
		go func() {
			slog.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				slog.Error("pprof listener failed", "addr", *pprofAddr, "err", err)
			}
		}()
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting, let
	// in-flight requests finish, close the scheduler (cancels queued
	// jobs, waits for running batches), and let the deferred registry
	// Close remove device spill files. ListenAndServe alone would take
	// the process down mid-batch and leak the spill directory.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: jobs.NewHandler(sched)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	slog.Info("listening", "addr", *addr)

	select {
	case err := <-errc:
		fatal("%v", err)
	case <-ctx.Done():
		stop()
		slog.Info("shutting down", "drain_timeout", drain.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			slog.Warn("drain incomplete", "err", err)
		}
	}
}

// newLogger builds the process logger from the -log-format and -log-level
// flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q", format)
	}
}

// parseQuotas parses the -tenant-quotas grammar: an optional leading
// "R,Q" default, then semicolon-separated "name=R,Q" overrides.
func parseQuotas(s string) (def jobs.Quota, perTenant map[string]jobs.Quota, err error) {
	parseRQ := func(v string) (jobs.Quota, error) {
		rs, qs, ok := strings.Cut(v, ",")
		if !ok {
			return jobs.Quota{}, fmt.Errorf("want R,Q in %q", v)
		}
		r, err1 := strconv.Atoi(strings.TrimSpace(rs))
		q, err2 := strconv.Atoi(strings.TrimSpace(qs))
		if err1 != nil || err2 != nil || r < 0 || q < 0 {
			return jobs.Quota{}, fmt.Errorf("want non-negative R,Q in %q", v)
		}
		return jobs.Quota{MaxRunning: r, MaxQueued: q}, nil
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rq, named := strings.Cut(part, "=")
		if !named {
			if def, err = parseRQ(part); err != nil {
				return jobs.Quota{}, nil, err
			}
			continue
		}
		q, err := parseRQ(rq)
		if err != nil {
			return jobs.Quota{}, nil, err
		}
		if perTenant == nil {
			perTenant = map[string]jobs.Quota{}
		}
		perTenant[strings.TrimSpace(name)] = q
	}
	return def, perTenant, nil
}

// parseDataset parses one name=kind:args spec.
func parseDataset(spec string) (name string, src xstream.EdgeSource, undirected bool, err error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" || rest == "" {
		return "", nil, false, fmt.Errorf("want name=rmat:... or name=file:...")
	}
	parts := strings.Split(rest, ":")
	if parts[len(parts)-1] == "undirected" {
		undirected = true
		parts = parts[:len(parts)-1]
	}
	switch parts[0] {
	case "rmat":
		if len(parts) < 2 || len(parts) > 4 {
			return "", nil, false, fmt.Errorf("want rmat:scale[:ef[:seed]]")
		}
		scale, err := strconv.Atoi(parts[1])
		if err != nil {
			return "", nil, false, fmt.Errorf("bad scale %q", parts[1])
		}
		ef, seed := 16, int64(1)
		if len(parts) > 2 {
			if ef, err = strconv.Atoi(parts[2]); err != nil {
				return "", nil, false, fmt.Errorf("bad edge factor %q", parts[2])
			}
		}
		if len(parts) > 3 {
			if seed, err = strconv.ParseInt(parts[3], 10, 64); err != nil {
				return "", nil, false, fmt.Errorf("bad seed %q", parts[3])
			}
		}
		src = xstream.RMAT(xstream.RMATConfig{Scale: scale, EdgeFactor: ef, Seed: seed, Undirected: undirected})
	case "file":
		if len(parts) != 2 {
			return "", nil, false, fmt.Errorf("want file:path")
		}
		fdir, fname := filepath.Split(parts[1])
		if fdir == "" {
			fdir = "."
		}
		fdev, err := xstream.NewOSDevice("input", fdir)
		if err != nil {
			return "", nil, false, err
		}
		if src, err = xstream.OpenEdgeFile(fdev, fname); err != nil {
			return "", nil, false, err
		}
	default:
		return "", nil, false, fmt.Errorf("unknown kind %q", parts[0])
	}
	return name, src, undirected, nil
}

func parseBytes(s string) int64 {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, strings.TrimSuffix(s, "g")
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		fatal("bad byte size %q", s)
	}
	return v * mult
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "xserve: "+format+"\n", args...)
	os.Exit(1)
}
