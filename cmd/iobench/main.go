// Command iobench runs the storage and memory microbenchmarks behind the
// paper's §5.1 (Figures 8, 9 and 11): memory bandwidth vs thread count,
// simulated-device bandwidth vs request size, and the sequential-vs-random
// access table.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "shorter measurement intervals")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := bench.Config{Quick: *quick, Threads: *threads}
	for _, id := range []string{"fig08", "fig09", "fig11"} {
		r, ok := bench.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "iobench: missing runner %s\n", id)
			os.Exit(1)
		}
		tab, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iobench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
	}
}
