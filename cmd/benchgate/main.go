// Command benchgate is the perf-regression gate of the CI pipeline: it
// diffs a fresh cmd/xbench -json report against a checked-in baseline and
// fails (exit 1) when any shared metric moved beyond the threshold — in
// either direction.
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_ci.json -threshold 0.20
//	benchgate -baseline BENCH_baseline.json -current BENCH_ci.json -update
//
// Metrics are, by convention, deterministic work measures where lower is
// better — update-stream bytes, record counts, cross-partition fractions.
// Wall-clock seconds appear in the reports for trend tracking but are
// never gated: CI runner noise would make a time gate flap. The threshold
// exists to absorb the one benign nondeterminism the work metrics have
// (which records share a shuffle slice, and therefore fold together,
// varies slightly run to run), not timing jitter.
//
// The gate is direction-aware. A metric above baseline by more than the
// threshold is a regression. A metric *below* baseline by more than the
// threshold also fails: the baseline is stale, and leaving it in place
// would hand the slack to the next real regression (a metric improved 40%
// then regressed 35% would still read "GOOD"). Either failure names the
// fix — rerun with -update, which rewrites the baseline file from the
// current report and exits clean.
//
// Exit status: 0 clean (small improvements are reported, not failed), 1
// on regression or stale baseline, 2 on usage or I/O errors. A metric
// present only in the current report is fine (new experiments start
// gating on the next baseline refresh); a metric that disappeared is a
// warning, since a silently dropped metric would otherwise disable its
// gate forever.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// runList is every experiment the CI bench-smoke job runs; the regen hint
// printed on failure must stay in lockstep with .github/workflows/ci.yml.
const runList = "figchecksum,figcombine,figcompress,figfrontier,figlocality,figobs,figshare"

type report struct {
	Results []struct {
		ID      string             `json:"id"`
		Seconds float64            `json:"seconds"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"results"`
}

func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	flat := map[string]float64{}
	for _, res := range r.Results {
		for k, v := range res.Metrics {
			flat[res.ID+"."+k] = v
		}
	}
	return flat, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "checked-in baseline report")
		currentPath  = flag.String("current", "BENCH_ci.json", "freshly generated report")
		threshold    = flag.Float64("threshold", 0.20, "allowed relative change before a metric counts as regressed (above) or stale (below)")
		update       = flag.Bool("update", false, "rewrite the baseline from the current report and exit clean")
	)
	flag.Parse()

	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if *update {
		if len(current) == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: refusing to install %s as baseline: it has no metrics\n", *currentPath)
			os.Exit(2)
		}
		raw, err := os.ReadFile(*currentPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: baseline %s refreshed from %s (%d metrics)\n", *baselinePath, *currentPath, len(current))
		return
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(baseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: baseline %s has no metrics\n", *baselinePath)
		os.Exit(2)
	}

	keys := make([]string, 0, len(baseline))
	for k := range baseline {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressed, stale, improved, missing, compared := 0, 0, 0, 0, 0
	for _, k := range keys {
		base := baseline[k]
		cur, ok := current[k]
		if !ok {
			fmt.Printf("WARN  %-55s missing from current report\n", k)
			missing++
			continue
		}
		compared++
		switch {
		case base == 0:
			// A zero baseline cannot express a relative threshold; any
			// nonzero growth on a zero-cost metric is a regression.
			if cur > 0 {
				fmt.Printf("FAIL  %-55s %0.4g -> %0.4g (baseline was zero)\n", k, base, cur)
				regressed++
			}
		case cur > base*(1+*threshold):
			fmt.Printf("FAIL  %-55s %0.4g -> %0.4g (+%.1f%% > +%.0f%% allowed)\n",
				k, base, cur, 100*(cur/base-1), 100**threshold)
			regressed++
		case cur < base*(1-*threshold):
			fmt.Printf("STALE %-55s %0.4g -> %0.4g (%.1f%% — improvement exceeds threshold)\n",
				k, base, cur, 100*(cur/base-1))
			stale++
		case cur < base:
			fmt.Printf("GOOD  %-55s %0.4g -> %0.4g (%.1f%%)\n", k, base, cur, 100*(cur/base-1))
			improved++
		}
	}

	fmt.Printf("benchgate: %d metrics compared, %d regressed, %d stale, %d improved, %d missing (threshold ±%.0f%%)\n",
		compared, regressed, stale, improved, missing, 100**threshold)
	if compared == 0 {
		// Nothing overlapped: a renamed experiment or metric key would
		// otherwise turn the gate off silently and leave CI green forever.
		fmt.Fprintln(os.Stderr, "benchgate: no baseline metric appears in the current report — refresh BENCH_baseline.json after renaming experiments or metrics")
		os.Exit(2)
	}
	if regressed > 0 {
		fmt.Println("benchgate: perf regression detected — if intentional, refresh the baseline with:")
		fmt.Println("  go run ./cmd/xbench -run " + runList + " -quick -threads 2 -json BENCH_ci.json")
		fmt.Println("  go run ./cmd/benchgate -baseline BENCH_baseline.json -current BENCH_ci.json -update")
		os.Exit(1)
	}
	if stale > 0 {
		fmt.Println("benchgate: metrics improved past the threshold — the baseline is stale and would mask an equal-sized future regression; refresh it with:")
		fmt.Println("  go run ./cmd/xbench -run " + runList + " -quick -threads 2 -json BENCH_ci.json")
		fmt.Println("  go run ./cmd/benchgate -baseline BENCH_baseline.json -current BENCH_ci.json -update")
		os.Exit(1)
	}
}
