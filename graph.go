package xstream

import (
	"io"

	"repro/internal/graphgen"
	"repro/internal/graphio"
	"repro/internal/storage"
)

// RMATConfig configures the RMAT scale-free graph generator (Graph500
// parameters a=0.57, b=0.19, c=0.19, d=0.05).
type RMATConfig = graphgen.RMATConfig

// RMAT returns a deterministic, re-streamable RMAT edge source.
func RMAT(cfg RMATConfig) EdgeSource { return graphgen.RMAT(cfg) }

// GridGraph returns a rows×cols lattice stored in both directions — a
// high-diameter workload (diameter rows+cols-2).
func GridGraph(rows, cols int, seed int64) EdgeSource { return graphgen.Grid(rows, cols, seed) }

// BipartiteGraph returns a random user–item ratings graph with edges in
// both directions, for ALS-style programs.
func BipartiteGraph(users, items int, ratings, seed int64) EdgeSource {
	return graphgen.Bipartite(users, items, ratings, seed)
}

// UniformGraph returns a uniform random graph.
func UniformGraph(n, m, seed int64, undirected bool) EdgeSource {
	return graphgen.Uniform(n, m, seed, undirected)
}

// ChainGraph returns a path graph stored in both directions — the worst
// case for scatter-gather iteration counts (diameter n-1).
func ChainGraph(n, seed int64) EdgeSource { return graphgen.Chain(n, seed) }

// CliqueChain returns cliques chained by single bridge edges, stored
// undirected: a high-diameter graph with community structure, the designed
// stress case for frontier-aware selective streaming (MemConfig/
// DiskConfig.Selective) and its composition with the 2PS partitioner.
func CliqueChain(cliques, cliqueSize int, seed int64) EdgeSource {
	return graphgen.CliqueChain(cliques, cliqueSize, seed)
}

// WriteEdgeFile streams src into a binary edge file on dev (unordered
// records; X-Stream's native input format).
func WriteEdgeFile(dev Device, name string, src EdgeSource) error {
	return graphio.WriteEdges(dev, name, src)
}

// OpenEdgeFile opens a binary edge file as a re-streamable EdgeSource.
func OpenEdgeFile(dev Device, name string) (EdgeSource, error) {
	return graphio.OpenEdges(dev, name)
}

// ParseTextEdges parses "src dst [weight]" lines ('#' comments); edges
// without weights get deterministic pseudo-random weights in [0,1).
func ParseTextEdges(r io.Reader) ([]Edge, int64, error) { return graphio.ParseText(r) }

// WriteTextEdges writes edges in the text format.
func WriteTextEdges(w io.Writer, edges []Edge) error { return graphio.WriteText(w, edges) }

// Storage devices.
type (
	// Device is a storage device holding the out-of-core engine's
	// partition files.
	Device = storage.Device
	// DeviceStats snapshots device activity counters.
	DeviceStats = storage.Stats
	// SimParams is the cost model of a simulated device.
	SimParams = storage.SimParams
)

// Fault tolerance. Every on-disk artifact the engines read back is framed
// with a CRC32C recorded at write time; a mismatch surfaces as
// ErrCorrupted, never as a wrong result. Transient device failures are
// absorbed by the retry wrapper; chaos tests drive both paths with the
// deterministic fault injector.
type (
	// RetryOptions tunes NewRetryDevice's bounded exponential backoff.
	RetryOptions = storage.RetryOptions
	// FaultyOptions is NewFaultyDevice's deterministic fault schedule.
	FaultyOptions = storage.FaultyOptions
	// FaultInjector is implemented by NewFaultyDevice's Device so chaos
	// tests can assert the schedule actually fired.
	FaultInjector = storage.FaultInjector
)

// ErrCorrupted is wrapped by every checksum or framing failure on an
// on-disk artifact (edge tiles, update streams, spilled vertex windows,
// permutation files, checkpoints). Test with errors.Is.
var ErrCorrupted = storage.ErrCorrupted

// NewRetryDevice wraps a Device so transient failures of positional file
// operations are retried with jittered exponential backoff; retry counts
// surface through DeviceStats.Retries and Stats.IORetries. Corruption and
// permanent errors fail fast — corruption must go to the rebuild path.
func NewRetryDevice(inner Device, opts RetryOptions) Device { return storage.NewRetry(inner, opts) }

// NewFaultyDevice wraps a Device with deterministic, seedable fault
// injection (reported transient errors, short reads, torn writes, silent
// read corruption) for failure testing. The returned Device also
// implements FaultInjector.
func NewFaultyDevice(inner Device, opts FaultyOptions) Device { return storage.NewFaulty(inner, opts) }

// NewOSDevice returns a Device backed by real files under dir.
func NewOSDevice(name, dir string) (Device, error) { return storage.NewOS(name, dir) }

// NewSimDevice returns a simulated Device with the given cost model;
// useful for reproducing the paper's SSD/HDD experiments without the
// hardware.
func NewSimDevice(p SimParams) Device { return storage.NewSim(p) }

// SimSSD returns the cost model of the paper's RAID-0 PCIe SSD pair
// (disks members, timeScale 0 disables real-time pacing).
func SimSSD(name string, disks int, timeScale float64) SimParams {
	return storage.SSDParams(name, disks, timeScale)
}

// SimHDD returns the cost model of the paper's RAID-0 magnetic disk pair.
func SimHDD(name string, disks int, timeScale float64) SimParams {
	return storage.HDDParams(name, disks, timeScale)
}
