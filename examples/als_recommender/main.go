// ALS recommender: factorize a Netflix-like bipartite ratings graph with
// alternating least squares (the paper's collaborative-filtering
// benchmark) and use the latent factors to score unseen user/item pairs.
package main

import (
	"fmt"
	"log"

	xstream "repro"
)

func main() {
	const (
		users   = 20000
		items   = 1000
		ratings = 400000
	)
	g := xstream.BipartiteGraph(users, items, ratings, 123)
	fmt.Printf("ratings graph: %d users, %d items, %d ratings\n", users, items, ratings)

	prog := xstream.NewALS(users, 5)
	res, err := xstream.RunMemory(g, prog, xstream.MemConfig{})
	if err != nil {
		log.Fatal(err)
	}

	edges, err := xstream.Materialize(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training RMSE after 5 alternations: %.4f (ratings live in [0.2, 1.0])\n",
		xstream.ALSRMSE(res.Vertices, edges, users))

	// Score a few user/item pairs: the model predicts high for pairs
	// similar to observed ratings.
	fmt.Println("\nsample predictions (user, item -> predicted rating):")
	for _, pair := range [][2]int{{0, 0}, {1, 3}, {17, 42}, {100, 999}} {
		u := xstream.VertexID(pair[0])
		i := xstream.VertexID(users + pair[1])
		var dot float64
		for k := range res.Vertices[u].F {
			dot += float64(res.Vertices[u].F[k]) * float64(res.Vertices[i].F[k])
		}
		fmt.Printf("  user %-6d item %-5d -> %.3f\n", pair[0], pair[1], dot)
	}

	s := res.Stats
	fmt.Printf("\nvertex footprint is ~%d bytes (factors + normal-equation accumulators)\n", 324)
	fmt.Printf("engine: %d iterations (2 per alternation), %v total\n", s.Iterations, s.TotalTime.Round(1e6))
}
