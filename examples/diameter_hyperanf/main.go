// HyperANF diameter probe (the paper's Figure 13 diagnostic): estimate a
// graph's neighbourhood function with per-vertex HyperLogLog counters and
// read off how many steps it takes to cover the graph — the paper's way of
// explaining why some graphs (DIMACS roads, yahoo-web) are pathological
// for edge-centric streaming.
package main

import (
	"fmt"
	"log"

	xstream "repro"
)

func probe(name string, g xstream.EdgeSource) {
	prog := xstream.NewHyperANF()
	res, err := xstream.RunMemory(g, prog, xstream.MemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	nf := prog.NF[len(prog.NF)-1]
	fmt.Printf("%-22s %8d vertices  steps=%-4d effective-diameter(0.9)=%-4d N(∞)≈%.3g\n",
		name, g.NumVertices(), prog.Steps(), prog.EffectiveDiameter(0.9), nf)
	_ = res
}

func main() {
	fmt.Println("HyperANF: steps to cover ≈ diameter; compare a scale-free graph with a road-like grid")

	// A scale-free social-network-like graph: tiny diameter.
	probe("rmat (scale-free)", xstream.RMAT(xstream.RMATConfig{
		Scale: 15, EdgeFactor: 16, Seed: 5, Undirected: true,
	}))

	// A directed web-like graph, symmetrized the way the paper does
	// (the neighbourhood function is defined on the undirected version).
	probe("rmat (symmetrized)", xstream.Symmetrize(xstream.RMAT(xstream.RMATConfig{
		Scale: 15, EdgeFactor: 8, Seed: 6,
	})))

	// A road-network-like grid: diameter ~ 2·side. Every scatter-gather
	// iteration advances the frontier one hop, so this shape is X-Stream's
	// worst case (paper §5.3).
	probe("grid 72x72 (road-like)", xstream.GridGraph(72, 72, 7))
}
