// Streaming ingest (the paper's Figure 17 scenario): edges arrive in
// batches, and after each batch the weakly connected components are
// recomputed on the accumulated graph.
//
// Because X-Stream consumes unordered edge lists, ingesting a batch is
// just an append — no re-sorting of the existing graph. Recomputation cost
// grows with the accumulated size but stays far below systems that must
// maintain a sorted index.
package main

import (
	"fmt"
	"log"

	xstream "repro"
)

func main() {
	full := xstream.RMAT(xstream.RMATConfig{Scale: 17, EdgeFactor: 16, Seed: 99, Undirected: true})
	edges, err := xstream.Materialize(full)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: %d edges arriving in 8 batches\n\n", len(edges))

	dev := xstream.NewSimDevice(xstream.SimSSD("ssd", 2, 0.1))
	const batches = 8
	per := (len(edges) + batches - 1) / batches

	fmt.Printf("%-7s %-18s %-12s %-12s %s\n", "batch", "accumulated edges", "components", "recompute", "iterations")
	for b := 1; b <= batches; b++ {
		n := b * per
		if n > len(edges) {
			n = len(edges)
		}
		acc := xstream.NewSliceSource(edges[:n], full.NumVertices())
		res, err := xstream.RunDisk(acc, xstream.NewWCC(), xstream.DiskConfig{
			Device: dev,
			IOUnit: 512 << 10,
			Prefix: fmt.Sprintf("batch%02d-", b),
		})
		if err != nil {
			log.Fatal(err)
		}
		comps := map[xstream.VertexID]bool{}
		for _, v := range res.Vertices {
			comps[v.Label] = true
		}
		s := res.Stats
		fmt.Printf("%-7d %-18d %-12d %-12v %d\n",
			b, n, len(comps), (s.TotalTime - s.PreprocessTime).Round(1e6), s.Iterations)
	}
}
