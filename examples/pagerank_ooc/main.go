// Out-of-core PageRank: run a twitter-like graph through the disk engine
// on a simulated SSD pair (calibrated to the paper's testbed), showing how
// streaming partitions, the memory budget and the I/O unit interact.
//
// Swap NewSimDevice for NewOSDevice to run against real files.
package main

import (
	"fmt"
	"log"
	"sort"

	xstream "repro"
)

func main() {
	// A directed scale-free graph: 2^19 vertices, 8.4M edges (a scaled
	// stand-in for the paper's Twitter graph).
	g := xstream.RMAT(xstream.RMATConfig{Scale: 19, EdgeFactor: 16, Seed: 7})
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// The paper's RAID-0 PCIe SSD pair, paced at 10% of real time so the
	// example finishes quickly while keeping the I/O patterns honest.
	dev := xstream.NewSimDevice(xstream.SimSSD("ssd", 2, 0.1))

	res, err := xstream.RunDisk(g, xstream.NewPageRank(5), xstream.DiskConfig{
		Device:       dev,
		MemoryBudget: 6 << 20, // deliberately tight: forces real partitioning
		IOUnit:       128 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	ranks := xstream.PageRankValues(res.Vertices)
	type vr struct {
		id   xstream.VertexID
		rank float32
	}
	top := make([]vr, 0, len(ranks))
	for i, r := range ranks {
		top = append(top, vr{xstream.VertexID(i), r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("top 5 vertices by rank:")
	for _, t := range top[:5] {
		fmt.Printf("  v%-8d %.2f\n", t.id, t.rank)
	}

	s := res.Stats
	fmt.Printf("\n%d streaming partitions, preprocess (edge partitioning, no sort!) %v\n",
		s.Partitions, s.PreprocessTime.Round(1e6))
	fmt.Printf("total %v: scatter %v, gather %v\n",
		s.TotalTime.Round(1e6), s.ScatterTime.Round(1e6), s.GatherTime.Round(1e6))
	fmt.Printf("device traffic: %d MB read, %d MB written\n",
		s.BytesRead>>20, s.BytesWritten>>20)

	ds := dev.Stats()
	fmt.Printf("device requests: %d reads (%d sequential), %d writes (%d sequential)\n",
		ds.Reads, ds.SeqReads, ds.Writes, ds.SeqWrites)
}
