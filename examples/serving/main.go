// Serving example: run the graph-analytics server in-process, submit a
// burst of concurrent jobs against one dataset over HTTP, and watch the
// scheduler batch them into shared passes — N PageRank queries paying for
// one edge stream. This is the library view of what cmd/xserve does as a
// standalone binary.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/dataset"
	"repro/internal/graphgen"
	"repro/internal/jobs"
)

func main() {
	// Ingest one dataset: parsed/generated once, shared by every job.
	reg := dataset.NewRegistry()
	defer reg.Close()
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 14, EdgeFactor: 8, Seed: 7, Undirected: true})
	if _, err := reg.Add("social", src, dataset.Options{Undirected: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset social: %d vertices, %d edge records\n", src.NumVertices(), src.NumEdges())

	// The scheduler batches same-dataset jobs into shared passes under a
	// memory budget; the handler is the same API cmd/xserve exposes.
	sched := jobs.New(reg, jobs.Config{MemoryBudget: 1 << 30, Workers: 1})
	defer sched.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, jobs.NewHandler(sched)) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// Pause dispatch while a burst of queries arrives, exactly like jobs
	// piling up behind a running pass on a busy server; on Resume the
	// scheduler takes them all in one shared pass.
	sched.Pause()
	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, submit(base, `{"dataset":"social","algo":"pagerank","params":{"iters":5}}`))
	}
	ids = append(ids, submit(base, `{"dataset":"social","algo":"bfs","params":{"root":1}}`))
	sched.Resume()

	for _, id := range ids {
		info := wait(base, id)
		fmt.Printf("%s %-8s %-8s batch=%d  %s\n",
			id, info["algo"], info["status"], int(info["batch_size"].(float64)), info["summary"])
	}

	var m jobs.Metrics
	getJSON(base+"/metrics", &m)
	fmt.Printf("\n%d jobs in %d shared passes: %d edge records streamed, %d reads saved by sharing (%.0f%%)\n",
		m.Completed, m.Batches, m.EdgesStreamed, m.EdgesShared,
		100*float64(m.EdgesShared)/float64(m.EdgesStreamed+m.EdgesShared))
}

func submit(base, body string) string {
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if out["id"] == "" {
		log.Fatalf("submit failed: %v", out)
	}
	return out["id"]
}

func wait(base, id string) map[string]any {
	for {
		var info map[string]any
		getJSON(base+"/jobs/"+id, &info)
		switch info["status"] {
		case "done", "failed", "canceled":
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
