// Quickstart: generate a scale-free graph, find its weakly connected
// components with the in-memory engine, and print the execution profile.
//
// This is the 30-second tour of the library: no sorting, no index — the
// engine computes directly on an unordered edge list.
package main

import (
	"fmt"
	"log"

	xstream "repro"
)

func main() {
	// An RMAT graph with Graph500 parameters: 2^18 vertices, ~4M directed
	// edge records (each undirected edge stored both ways).
	g := xstream.RMAT(xstream.RMATConfig{
		Scale:      18,
		EdgeFactor: 16,
		Seed:       42,
		Undirected: true,
	})
	fmt.Printf("graph: %d vertices, %d edge records\n", g.NumVertices(), g.NumEdges())

	res, err := xstream.RunMemory(g, xstream.NewWCC(), xstream.MemConfig{})
	if err != nil {
		log.Fatal(err)
	}

	labels := xstream.WCCLabels(res.Vertices)
	sizes := map[xstream.VertexID]int{}
	for _, l := range labels {
		sizes[l]++
	}
	largest := 0
	for _, n := range sizes {
		if n > largest {
			largest = n
		}
	}
	fmt.Printf("components: %d, largest: %d vertices (%.1f%%)\n",
		len(sizes), largest, 100*float64(largest)/float64(len(labels)))

	s := res.Stats
	fmt.Printf("engine: %d iterations over %d partitions in %v\n",
		s.Iterations, s.Partitions, s.TotalTime.Round(1e6))
	fmt.Printf("streamed %d edges, sent %d updates, wasted %.0f%% of streamed edges\n",
		s.EdgesStreamed, s.UpdatesSent, 100*s.WastedFraction())
}
