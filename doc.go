// Package xstream is a Go implementation of X-Stream, the edge-centric
// scatter-gather graph processing system of Roy, Mihailovic and Zwaenepoel
// (SOSP 2013).
//
// X-Stream processes graphs — in memory or out of core — by streaming a
// completely unordered edge list instead of sorting it and random-accessing
// it through an index. Computation state lives in the vertices; every
// iteration streams all edges (scatter, producing updates addressed to
// destination vertices), shuffles the updates to the streaming partition
// owning their destination, and streams them back in (gather). Because
// sequential bandwidth beats random-access bandwidth on every storage
// medium — roughly 500x on magnetic disk, 30x on SSD and 2-5x on RAM — this
// trade wins whenever the graph's diameter is modest, and it removes
// pre-processing entirely: X-Stream computes directly on raw edge lists.
//
// # Quick start
//
//	edges := xstream.RMAT(xstream.RMATConfig{Scale: 20, EdgeFactor: 16, Seed: 1, Undirected: true})
//	wcc := xstream.NewWCC()
//	res, err := xstream.RunMemory(edges, wcc, xstream.MemConfig{})
//	if err != nil { ... }
//	labels := xstream.WCCLabels(res.Vertices)
//
// For graphs larger than memory, run the same program out of core:
//
//	dev, _ := xstream.NewOSDevice("scratch", "/mnt/fast/xstream")
//	res, err := xstream.RunDisk(edges, wcc, xstream.DiskConfig{
//		Device:       dev,
//		MemoryBudget: 8 << 30,
//		IOUnit:       16 << 20,
//	})
//
// # Writing algorithms
//
// An algorithm is a Program[V, M]: V is the per-vertex state and M the
// update value, both fixed-size pointer-free types (they are streamed to
// storage as raw records). Implement Init (initial vertex state), Scatter
// (edge in, optional update out — reading only the source vertex), and
// Gather (apply an update to its destination vertex). Optional interfaces
// add per-iteration hooks (IterationStarter), custom termination and
// cross-vertex aggregation (PhasedProgram), and iterations over the
// transposed edge list (DirectedProgram). The eleven algorithms from the
// paper's evaluation ship ready-made; see NewWCC, NewBFS, NewSSSP,
// NewPageRank, NewSpMV, NewConductance, NewMIS, NewMCST, NewSCC, NewALS,
// NewBP and NewHyperANF.
//
// # Partitioners and the relabeling contract
//
// The paper fixes streaming partitions as equal contiguous vertex-ID
// ranges, which makes cross-partition update traffic a hostage of the
// input's vertex ordering. Both engines therefore accept a Partitioner in
// their Config (nil = NewRangePartitioner, the paper's fixed split).
// New2PSPartitioner is a locality-aware alternative in the style of 2PS
// ("2PS: High-Quality Edge Partitioning with Two-Phase Streaming",
// Mayer et al.): one
// streaming pass grows degree-weighted vertex clusters under a volume
// cap, a second phase packs the clusters into the K partitions and emits
// a vertex relabeling permutation. Partitions stay contiguous ranges, so
// the engines' sequential vertex access is untouched; the edge stream is
// rewritten through the permutation during pre-processing and results are
// mapped back before they are returned, so callers always see input IDs.
//
// 2PS beats range when the graph has community structure the input
// ordering ignores (web/social crawls delivered in arbitrary or shuffled
// order); it cannot help on inputs whose ordering is already
// locality-aware (a freshly generated R-MAT is close) and costs two extra
// streaming passes of pre-processing. The figlocality experiment in
// internal/bench quantifies the trade.
//
// Two refinements compose with any policy. NewReplicatingPartitioner
// mirrors high-in-degree hub vertices (HDRF/HEP style): each scattering
// partition absorbs hub-addressed updates into a partition-local
// accumulator merged by the program's Combiner and flushes one sync
// update per iteration, collapsing a hub's cross-partition update flood
// to at most K-1 records (programs without a Combiner fall back to the
// plain path). New2PSVolumePartitioner switches 2PS's packing to
// HEP-style volume balance — partitions even in degree sum, not vertex
// count — which spreads the dense core and is therefore meant to be
// paired with replication; figlocality's "2psv+rep" row shows the
// composition carrying about half of range's cross-partition traffic
// while plain 2PS manages 0.85x.
//
// Programs parameterized by vertex IDs (a BFS root) implement
// VertexMapper to translate their parameters into execution ID space;
// programs whose state stores vertex IDs (WCC labels) implement
// StateRemapper so reported state references input IDs. See
// internal/core's documentation of both interfaces.
//
// # Update combining
//
// The update stream dominates X-Stream's cost model: updates are produced
// per edge, shuffled to their destination partition, and — out of core —
// written to and re-read from the update files (§3.2). A program whose
// update values form a commutative semigroup opts into pre-aggregation by
// implementing Combiner (Combine(a, b) must be commutative and
// associative): thread-private combining buffers then absorb
// same-destination updates at scatter time before they reach the shared
// stream, and a per-partition fold after the shuffle merges the survivors,
// so the gather phase streams — and the out-of-core engine writes — far
// fewer records. PageRank, SpMV (sum), SSSP, BFS, WCC (min) and HyperANF
// (sketch union) opt in; Conductance does not, because its Gather counts
// arriving updates rather than reducing their values. Combining composes
// with any Partitioner and with VertexMapper/StateRemapper untouched: it
// operates on execution-space destination IDs after the relabeling, and
// never changes which updates exist logically — only how many records
// carry them. Set MemConfig/DiskConfig.NoCombine (or cmd/xstream's
// -combine=false) to disable it per run; the equivalence suite runs every
// combining algorithm both ways to prove results are identical, and the
// figcombine experiment measures the update-stream volume saved (~80-90%
// for PageRank on RMAT graphs).
//
// # Selective streaming
//
// Streaming every edge every iteration is X-Stream's deliberate trade, and
// its worst case is a traversal on a high-diameter graph: the frontier
// advances one hop per iteration while the engine re-reads the entire edge
// list (§5.3; Stats.WastedEdges). A program whose Scatter is a no-op for
// vertices that received no update last iteration opts into selective
// scheduling by implementing FrontierProgram (BFS, SSSP and WCC do; dense
// programs like PageRank must not). With MemConfig/DiskConfig.Selective
// set, the engines maintain an active-vertex frontier across iterations
// and skip the edge chunks of partitions with no active source — the
// out-of-core engine skips the edge-file reads outright — and, inside
// partially active partitions, skip fixed-size edge tiles whose source
// summary (indexed during the pre-processing shuffle) misses the frontier.
// Skips are pure elision, so results are bit-identical either way (the
// equivalence suite proves it across engines and partitioners); Stats
// reports EdgesSkipped, PartitionsSkipped and TilesSkipped. Selective
// scheduling composes with the 2PS partitioner, which packs communities —
// and therefore frontiers — into fewer partitions, making skips more
// likely; the figfrontier experiment measures both effects (a ~20x
// edge-stream and edge-byte reduction for BFS on a clique chain).
//
// # Shared-pass execution and the serving layer
//
// X-Stream's cost model says the sequential edge stream is the dominant,
// fixed cost of a computation — which means a server running N concurrent
// jobs over the same dataset should pay that cost once per pass, not once
// per job. NewJob type-erases any Program; RunManyMemory and RunManyDisk
// drive a whole ProgramSet from one edge stream per iteration (each
// streamed chunk is scattered for every subscribing job; per-job frontiers
// skip partitions and tiles no job needs; jobs drop out as they converge),
// with Stats.CoJobs and Stats.EdgesShared proving the amortization. The
// job-independent half of a run is cached per dataset: PrepareMemory and
// PrepareDisk return immutable handles holding the partitioning plan, any
// 2PS clustering permutation, the shuffled edge chunks (in memory) or
// pre-processed partition edge files plus tile index (out of core), shared
// by every subsequent pass. ctx cancelation is honored between iterations
// and chunks — as it is by RunMemory/RunDisk via Config.Context.
//
// On top of this sit internal/dataset (a named registry of ingested
// graphs), internal/jobs (a scheduler with memory-budget admission
// control, same-dataset batching into shared passes, per-job status and
// cancelation, and result retention), and cmd/xserve (the HTTP API:
// POST /jobs, GET /jobs/{id}, GET /jobs/{id}/result, GET /datasets,
// GET /metrics). The figshare experiment shows K co-scheduled PageRank
// jobs streaming ~1/K the edge records — and reading ~1/K the bytes out
// of core — of K sequential runs; see examples/serving for the library
// view.
//
// # Reproducing the paper
//
// The cmd/xbench binary regenerates every table and figure of the paper's
// evaluation section on simulated storage devices calibrated to the
// paper's own measurements; see DESIGN.md and EXPERIMENTS.md.
package xstream
