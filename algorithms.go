package xstream

import "repro/internal/algorithms"

// Algorithm state types, re-exported so callers can inspect results.
type (
	// WCCState is weakly-connected-components vertex state.
	WCCState = algorithms.WCCState
	// BFSState is breadth-first-search vertex state.
	BFSState = algorithms.BFSState
	// SSSPState is shortest-paths vertex state.
	SSSPState = algorithms.SSSPState
	// SpMVState holds an input and output vector element.
	SpMVState = algorithms.SpMVState
	// PRState is PageRank vertex state.
	PRState = algorithms.PRState
	// CondState is conductance vertex state.
	CondState = algorithms.CondState
	// MISState is maximal-independent-set vertex state.
	MISState = algorithms.MISState
	// MCSTState is spanning-tree vertex state.
	MCSTState = algorithms.MCSTState
	// MSTEdge is an edge selected into the spanning forest.
	MSTEdge = algorithms.MSTEdge
	// SCCState is strongly-connected-components vertex state.
	SCCState = algorithms.SCCState
	// ALSState is alternating-least-squares vertex state.
	ALSState = algorithms.ALSState
	// BPState is belief-propagation vertex state.
	BPState = algorithms.BPState
	// ANFState is HyperANF vertex state.
	ANFState = algorithms.ANFState
)

// NewWCC returns weakly connected components by min-label propagation.
// Run it on an undirected edge list; read results with WCCLabels.
func NewWCC() *algorithms.WCC { return algorithms.NewWCC() }

// WCCLabels extracts each vertex's component label (the smallest vertex
// ID in its component).
func WCCLabels(verts []WCCState) []VertexID { return algorithms.Labels(verts) }

// NewBFS returns breadth-first search from root; read levels with
// BFSLevels.
func NewBFS(root VertexID) *algorithms.BFS { return algorithms.NewBFS(root) }

// BFSLevels extracts per-vertex hop distances (-1 = unreachable).
func BFSLevels(verts []BFSState) []int32 { return algorithms.Levels(verts) }

// NewSSSP returns Bellman–Ford single-source shortest paths from root;
// read distances with SSSPDistances.
func NewSSSP(root VertexID) *algorithms.SSSP { return algorithms.NewSSSP(root) }

// SSSPDistances extracts per-vertex distances (+Inf = unreachable).
func SSSPDistances(verts []SSSPState) []float32 { return algorithms.Distances(verts) }

// NewSpMV returns a one-pass sparse matrix–vector multiply.
func NewSpMV() *algorithms.SpMV { return algorithms.NewSpMV() }

// NewPageRank returns damped PageRank (d = 0.85) running the given number
// of rank iterations; read ranks with PageRankValues.
func NewPageRank(iters int) *algorithms.PageRank { return algorithms.NewPageRank(iters) }

// PageRankValues extracts per-vertex ranks.
func PageRankValues(verts []PRState) []float32 { return algorithms.Ranks(verts) }

// NewConductance measures the conductance of the vertex subset defined by
// inS (nil = odd IDs). Results are on the returned program after the run.
func NewConductance(inS func(VertexID) bool) *algorithms.Conductance {
	return algorithms.NewConductance(inS)
}

// NewMIS returns Luby's maximal independent set; read membership with
// MISInSet. Run it on an undirected edge list.
func NewMIS() *algorithms.MIS { return algorithms.NewMIS() }

// MISInSet extracts set membership.
func MISInSet(verts []MISState) []bool { return algorithms.InSet(verts) }

// NewMCST returns a GHS-style minimum cost spanning forest; the chosen
// edges and total weight are on the returned program after the run. Run it
// on an undirected edge list.
func NewMCST() *algorithms.MCST { return algorithms.NewMCST() }

// NewSCC returns strongly connected components for a directed graph; read
// assignments with SCCComponents.
func NewSCC() *algorithms.SCC { return algorithms.NewSCC() }

// SCCComponents extracts per-vertex component IDs.
func SCCComponents(verts []SCCState) []uint32 { return algorithms.ComponentIDs(verts) }

// NewALS returns alternating least squares over a bipartite ratings graph
// whose users occupy vertex IDs [0, users); iters is the number of full
// user/item alternations.
func NewALS(users int64, iters int) *algorithms.ALS { return algorithms.NewALS(users, iters) }

// ALSRMSE evaluates a trained ALS model against a rating edge list.
func ALSRMSE(verts []ALSState, edges []Edge, users VertexID) float64 {
	return algorithms.RMSE(verts, edges, users)
}

// NewBP returns two-state loopy belief propagation for iters iterations.
func NewBP(iters int) *algorithms.BP { return algorithms.NewBP(iters) }

// NewHyperANF returns the HyperANF neighbourhood-function estimator; after
// the run, Steps() is the number of iterations needed to cover the graph
// (≈ diameter). Run it on an undirected (Symmetrize) edge list.
func NewHyperANF() *algorithms.HyperANF { return algorithms.NewHyperANF() }

// NoSCC marks vertices the SCC program has not assigned (never present
// after a completed run).
const NoSCC = algorithms.NoSCC

// Inf32 is the distance SSSP assigns to unreached vertices.
var Inf32 = algorithms.Inf32

// MIS vertex status values (MISState.Status).
const (
	MISUndecided = algorithms.MISUndecided
	MISIn        = algorithms.MISIn
	MISOut       = algorithms.MISOut
)
