package xstream_test

import (
	"context"
	"fmt"
	"testing"

	xstream "repro"
	"repro/internal/xstreamtest"
)

// Per-iteration profile parity: Stats.Iters must slice the cumulative
// counters exactly — the work-side fields of a run's iterations sum to the
// cumulative Stats fields, the I/O-side fields sum to at most them (out-of-
// loop I/O like the pre-processing shuffle belongs to the run), and the
// number of entries matches the executed iteration count. These invariants
// are what the serving layer's trace synthesis and the figobs bench build
// on, so they are pinned here for every execution path: solo typed runs,
// RunJob, and shared RunMany passes on both engines.

// iterSums accumulates Stats.Iters field-by-field.
type iterSums struct {
	edgesStreamed, edgesSkipped, partsSkipped, tilesSkipped                int64
	updatesSent, updatesCombined, crossUpdates, mirrorUpdates              int64
	updateBytes                                                            int64
	bytesRead, bytesReadLogical, bytesWritten, bytesChecksummed, ioRetries int64
}

func sumIters(iters []xstream.IterStats) iterSums {
	var s iterSums
	for i := range iters {
		it := &iters[i]
		s.edgesStreamed += it.EdgesStreamed
		s.edgesSkipped += it.EdgesSkipped
		s.partsSkipped += it.PartitionsSkipped
		s.tilesSkipped += it.TilesSkipped
		s.updatesSent += it.UpdatesSent
		s.updatesCombined += it.UpdatesCombined
		s.crossUpdates += it.CrossPartitionUpdates
		s.mirrorUpdates += it.MirrorSyncUpdates
		s.updateBytes += it.UpdateBytes
		s.bytesRead += it.BytesRead
		s.bytesReadLogical += it.BytesReadLogical
		s.bytesWritten += it.BytesWritten
		s.bytesChecksummed += it.BytesChecksummed
		s.ioRetries += it.IORetries
	}
	return s
}

// assertIterParity checks the sum invariants of one run's Stats.
// exactUpdates is false for pass-level stats of shared passes, whose
// update counters are folded in from the per-job stats after the loop and
// therefore appear only in the jobs' own Iters.
func assertIterParity(t *testing.T, name string, st xstream.Stats, exactUpdates bool) {
	t.Helper()
	executed := st.Iterations - st.ResumedIterations
	if len(st.Iters) != executed {
		t.Fatalf("%s: %d Iters entries for %d executed iterations (%d total - %d resumed)",
			name, len(st.Iters), executed, st.Iterations, st.ResumedIterations)
	}
	for i := range st.Iters {
		if want := st.ResumedIterations + i; st.Iters[i].Iter != want {
			t.Errorf("%s: Iters[%d].Iter = %d, want %d", name, i, st.Iters[i].Iter, want)
		}
	}
	s := sumIters(st.Iters)
	exact := []struct {
		field string
		sum   int64
		total int64
	}{
		{"EdgesStreamed", s.edgesStreamed, st.EdgesStreamed},
		{"EdgesSkipped", s.edgesSkipped, st.EdgesSkipped},
		{"PartitionsSkipped", s.partsSkipped, st.PartitionsSkipped},
		{"TilesSkipped", s.tilesSkipped, st.TilesSkipped},
	}
	updates := []struct {
		field string
		sum   int64
		total int64
	}{
		{"UpdatesSent", s.updatesSent, st.UpdatesSent},
		{"UpdatesCombined", s.updatesCombined, st.UpdatesCombined},
		{"CrossPartitionUpdates", s.crossUpdates, st.CrossPartitionUpdates},
		{"MirrorSyncUpdates", s.mirrorUpdates, st.MirrorSyncUpdates},
		{"UpdateBytes", s.updateBytes, st.UpdateBytes},
	}
	if exactUpdates {
		exact = append(exact, updates...)
	} else {
		for _, u := range updates {
			if u.sum > u.total {
				t.Errorf("%s: sum(Iters.%s) = %d exceeds cumulative %d", name, u.field, u.sum, u.total)
			}
		}
	}
	for _, e := range exact {
		if e.sum != e.total {
			t.Errorf("%s: sum(Iters.%s) = %d, want cumulative %d", name, e.field, e.sum, e.total)
		}
	}
	atMost := []struct {
		field string
		sum   int64
		total int64
	}{
		{"BytesRead", s.bytesRead, st.BytesRead},
		{"BytesReadLogical", s.bytesReadLogical, st.BytesReadLogical},
		{"BytesWritten", s.bytesWritten, st.BytesWritten},
		{"BytesChecksummed", s.bytesChecksummed, st.BytesChecksummed},
		{"IORetries", s.ioRetries, st.IORetries},
	}
	for _, e := range atMost {
		if e.sum > e.total {
			t.Errorf("%s: sum(Iters.%s) = %d exceeds cumulative %d", name, e.field, e.sum, e.total)
		}
		if e.sum < 0 {
			t.Errorf("%s: sum(Iters.%s) = %d is negative", name, e.field, e.sum)
		}
	}
}

// TestIterStatsSoloRuns checks the invariants on the typed solo engines,
// with and without selective streaming (BFS exercises skips; PageRank a
// fixed iteration count).
func TestIterStatsSoloRuns(t *testing.T) {
	src := xstreamtest.RMAT(10, 31)
	memCfg := xstreamtest.MemConfig()
	memCfg.Partitions = 8

	res, err := xstream.RunMemory(src, xstream.NewPageRank(5), memCfg)
	if err != nil {
		t.Fatal(err)
	}
	assertIterParity(t, "mem/pagerank", res.Stats, true)
	if res.Stats.Iterations == 0 || len(res.Stats.Iters) == 0 {
		t.Fatal("mem/pagerank: no iterations profiled")
	}

	bres, err := xstream.RunMemory(src, xstream.NewBFS(3), memCfg)
	if err != nil {
		t.Fatal(err)
	}
	assertIterParity(t, "mem/bfs", bres.Stats, true)

	diskCfg := xstreamtest.DiskConfig("iterstats")
	dres, err := xstream.RunDisk(src, xstream.NewBFS(3), diskCfg)
	if err != nil {
		t.Fatal(err)
	}
	assertIterParity(t, "disk/bfs", dres.Stats, true)
	// The disk engine must attribute real device reads to iterations.
	if sums := sumIters(dres.Stats.Iters); sums.bytesRead == 0 {
		t.Error("disk/bfs: no per-iteration device reads attributed")
	}
}

// TestIterStatsSharedPass checks the invariants on RunMany for both
// engines: the pass-level stats carry the shared-stream counters per
// iteration, each job's stats its own work counters.
func TestIterStatsSharedPass(t *testing.T) {
	src := xstreamtest.RMAT(10, 32)
	set := xstream.ProgramSet{
		xstream.NewJob(xstream.NewPageRank(4)),
		xstream.NewJob(xstream.NewBFS(1)),
	}
	memCfg := xstreamtest.MemConfig()
	memCfg.Threads, memCfg.Partitions = 2, 8
	results, pass, err := xstream.RunManyMemory(context.Background(), src, set, memCfg)
	if err != nil {
		t.Fatal(err)
	}
	assertIterParity(t, "runmany/mem/pass", pass, false)
	for i, r := range results {
		assertIterParity(t, fmt.Sprintf("runmany/mem/job%d", i), r.Stats, true)
	}

	set = xstream.ProgramSet{
		xstream.NewJob(xstream.NewPageRank(4)),
		xstream.NewJob(xstream.NewBFS(1)),
	}
	diskCfg := xstreamtest.DiskConfig("iterstats2")
	diskCfg.Threads = 2
	dresults, dpass, err := xstream.RunManyDisk(context.Background(), src, set, diskCfg)
	if err != nil {
		t.Fatal(err)
	}
	assertIterParity(t, "runmany/disk/pass", dpass, false)
	for i, r := range dresults {
		assertIterParity(t, fmt.Sprintf("runmany/disk/job%d", i), r.Stats, true)
	}
}
