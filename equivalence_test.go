package xstream_test

import (
	"math"
	"testing"

	xstream "repro"
	"repro/internal/refalgo"
)

// Cross-engine equivalence: for every partitioner, the in-memory engine,
// the out-of-core engine and the textbook reference implementations must
// agree — after the engines have mapped relabeled results back to input
// IDs — on PageRank, BFS and WCC.

// equivCase is one (engine, partitioner) combination under test.
type equivCase struct {
	name string
	mem  bool
	part xstream.Partitioner
}

func equivCases() []equivCase {
	return []equivCase{
		{"mem/range", true, xstream.NewRangePartitioner()},
		{"mem/2ps", true, xstream.New2PSPartitioner()},
		{"disk/range", false, xstream.NewRangePartitioner()},
		{"disk/2ps", false, xstream.New2PSPartitioner()},
	}
}

// runEquiv executes prog on the case's engine with its partitioner.
func runEquiv[V, M any](t *testing.T, c equivCase, src xstream.EdgeSource, prog xstream.Program[V, M]) []V {
	t.Helper()
	if c.mem {
		res, err := xstream.RunMemory(src, prog, xstream.MemConfig{Threads: 3, Partitioner: c.part})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		return res.Vertices
	}
	dev := xstream.NewSimDevice(xstream.SimSSD("equiv", 2, 0))
	res, err := xstream.RunDisk(src, prog, xstream.DiskConfig{
		Device: dev, Threads: 3, IOUnit: 32 << 10, Partitions: 8, Partitioner: c.part,
	})
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	return res.Vertices
}

func TestEquivalenceBFS(t *testing.T) {
	src := xstream.RMAT(xstream.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 21})
	edges, err := xstream.Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	const root = 3
	want := refalgo.BFSLevels(src.NumVertices(), edges, root)
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			got := xstream.BFSLevels(runEquiv(t, c, src, xstream.NewBFS(root)))
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d: level %d, want %d", v, got[v], want[v])
				}
			}
		})
	}
}

func TestEquivalencePageRank(t *testing.T) {
	src := xstream.RMAT(xstream.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 22})
	edges, err := xstream.Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 5
	want := refalgo.PageRank(src.NumVertices(), edges, iters)
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			got := xstream.PageRankValues(runEquiv(t, c, src, xstream.NewPageRank(iters)))
			for v := range want {
				diff := math.Abs(float64(got[v]) - want[v])
				if diff > 1e-3*(1+math.Abs(want[v])) {
					t.Fatalf("vertex %d: rank %g, want %g", v, got[v], want[v])
				}
			}
		})
	}
}

func TestEquivalenceWCC(t *testing.T) {
	src := xstream.RMAT(xstream.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 23, Undirected: true})
	edges, err := xstream.Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.Components(src.NumVertices(), edges)
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			got := xstream.WCCLabels(runEquiv(t, c, src, xstream.NewWCC()))
			// Labels are representatives: under a relabeling partitioner
			// the representative may be any member of the component, so
			// compare the component *partitions* canonically: same label
			// within an engine ⇔ same reference component, and the label
			// must itself belong to the component it names.
			repOf := map[xstream.VertexID]xstream.VertexID{} // got label -> ref component
			for v := range got {
				ref := want[v]
				if seen, ok := repOf[got[v]]; ok {
					if seen != ref {
						t.Fatalf("label %d spans reference components %d and %d", got[v], seen, ref)
					}
				} else {
					repOf[got[v]] = ref
				}
				if want[got[v]] != ref {
					t.Fatalf("vertex %d: label %d is not a member of its component", v, got[v])
				}
			}
			// Conversely, one reference component never splits across got
			// labels.
			labelOf := map[xstream.VertexID]xstream.VertexID{}
			for v := range got {
				if seen, ok := labelOf[want[v]]; ok {
					if seen != got[v] {
						t.Fatalf("reference component %d split into labels %d and %d", want[v], seen, got[v])
					}
				} else {
					labelOf[want[v]] = got[v]
				}
			}
		})
	}
}

// TestEquivalenceSSSP rides along: root translation through VertexMapper
// is the same machinery BFS uses, but with float distances.
func TestEquivalenceSSSP(t *testing.T) {
	src := xstream.RMAT(xstream.RMATConfig{Scale: 9, EdgeFactor: 8, Seed: 24})
	edges, err := xstream.Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	const root = 7
	want := refalgo.Dijkstra(src.NumVertices(), edges, root)
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			got := xstream.SSSPDistances(runEquiv(t, c, src, xstream.NewSSSP(root)))
			for v := range want {
				if math.IsInf(want[v], 1) {
					if got[v] != float32(math.Inf(1)) {
						t.Fatalf("vertex %d: reached at %g, want unreachable", v, got[v])
					}
					continue
				}
				if math.Abs(float64(got[v])-want[v]) > 1e-4*(1+want[v]) {
					t.Fatalf("vertex %d: dist %g, want %g", v, got[v], want[v])
				}
			}
		})
	}
}

// TestPartitionerIndependentSeeding: programs that seed per-vertex state
// from the vertex ID (SpMV's x vector, Conductance's subset, MCST's
// forest) must seed from *input* IDs, so range and 2ps runs agree.
func TestPartitionerIndependentSeeding(t *testing.T) {
	src := xstream.RMAT(xstream.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 26, Undirected: true})
	t.Run("spmv", func(t *testing.T) {
		var want []xstream.SpMVState
		for _, c := range equivCases()[:2] { // mem/range, mem/2ps
			got := runEquiv(t, c, src, xstream.NewSpMV())
			if want == nil {
				want = got
				continue
			}
			for v := range want {
				if math.Abs(float64(got[v].Y-want[v].Y)) > 1e-3*(1+math.Abs(float64(want[v].Y))) {
					t.Fatalf("%s: vertex %d: y %g, want %g", c.name, v, got[v].Y, want[v].Y)
				}
			}
		}
	})
	t.Run("conductance", func(t *testing.T) {
		var phi float64
		for i, c := range equivCases()[:2] {
			prog := xstream.NewConductance(nil)
			runEquiv(t, c, src, prog)
			if i == 0 {
				phi = prog.Phi
				continue
			}
			if math.Abs(prog.Phi-phi) > 1e-9 {
				t.Fatalf("%s: phi %g, want %g", c.name, prog.Phi, phi)
			}
		}
	})
	t.Run("mcst", func(t *testing.T) {
		var weight float64
		var n int64
		for i, c := range equivCases()[:2] {
			prog := xstream.NewMCST()
			runEquiv(t, c, src, prog)
			if i == 0 {
				weight, n = prog.TotalWeight, src.NumVertices()
				continue
			}
			if math.Abs(prog.TotalWeight-weight) > 1e-6*(1+weight) {
				t.Fatalf("%s: forest weight %g, want %g", c.name, prog.TotalWeight, weight)
			}
			for _, e := range prog.Edges {
				if int64(e.A) >= n || int64(e.B) >= n {
					t.Fatalf("%s: forest edge (%d,%d) outside input ID space", c.name, e.A, e.B)
				}
			}
		}
	})
}

// TestRelabeledRootOutOfRange: a nonsensical root must degrade the same
// way under both partitioners (all-unreached) instead of panicking in the
// relabel translation.
func TestRelabeledRootOutOfRange(t *testing.T) {
	src := xstream.RMAT(xstream.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 27})
	badRoot := xstream.VertexID(src.NumVertices() + 999)
	for _, c := range equivCases()[:2] {
		levels := xstream.BFSLevels(runEquiv(t, c, src, xstream.NewBFS(badRoot)))
		for v, l := range levels {
			if l != -1 {
				t.Fatalf("%s: vertex %d reached at level %d from out-of-range root", c.name, v, l)
			}
		}
	}
}

// TestDeterminism2PS: identical runs with the 2PS partitioner must be
// bit-identical — the assignment and the engine are both deterministic.
func TestDeterminism2PS(t *testing.T) {
	src := xstream.RMAT(xstream.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 25, Undirected: true})
	var want []xstream.WCCState
	for run := 0; run < 3; run++ {
		res, err := xstream.RunMemory(src, xstream.NewWCC(), xstream.MemConfig{
			Threads: 4, Partitioner: xstream.New2PSPartitioner(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res.Vertices
			continue
		}
		for v := range want {
			if res.Vertices[v] != want[v] {
				t.Fatalf("run %d: vertex %d: %+v vs %+v", run, v, res.Vertices[v], want[v])
			}
		}
	}
}
