package xstream_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	xstream "repro"
	"repro/internal/refalgo"
	"repro/internal/xstreamtest"
)

// Cross-engine equivalence: for every partitioner, every engine, and with
// the update combiner both enabled and disabled, the engines and the
// textbook reference implementations must agree — after the engines have
// mapped relabeled results back to input IDs — on PageRank, BFS, WCC and
// SSSP. Running each algorithm across all eight combinations is what
// proves the Combiner contract: pre-aggregating the update stream never
// changes gather results.

// equivCase is one (engine, partitioner, combining) combination under test.
type equivCase struct {
	name      string
	mem       bool
	part      xstream.Partitioner
	noCombine bool
}

func equivCases() []equivCase {
	return []equivCase{
		{"mem/range", true, xstream.NewRangePartitioner(), false},
		{"mem/2ps", true, xstream.New2PSPartitioner(), false},
		{"disk/range", false, xstream.NewRangePartitioner(), false},
		{"disk/2ps", false, xstream.New2PSPartitioner(), false},
		{"mem/range/nocombine", true, xstream.NewRangePartitioner(), true},
		{"mem/2ps/nocombine", true, xstream.New2PSPartitioner(), true},
		{"disk/range/nocombine", false, xstream.NewRangePartitioner(), true},
		{"disk/2ps/nocombine", false, xstream.New2PSPartitioner(), true},
	}
}

// runEquiv executes prog on the case's engine with its partitioner.
func runEquiv[V, M any](t *testing.T, c equivCase, src xstream.EdgeSource, prog xstream.Program[V, M]) []V {
	t.Helper()
	res, stats := runEquivStats(t, c, src, prog)
	if !c.noCombine {
		if _, ok := prog.(xstream.Combiner[M]); ok && stats.UpdatesSent > 0 && stats.UpdatesCombined == 0 {
			t.Fatalf("%s: combiner enabled for %s but nothing was combined", c.name, stats.Algorithm)
		}
	} else if stats.UpdatesCombined != 0 {
		t.Fatalf("%s: NoCombine run still combined %d updates", c.name, stats.UpdatesCombined)
	}
	return res
}

func runEquivStats[V, M any](t *testing.T, c equivCase, src xstream.EdgeSource, prog xstream.Program[V, M]) ([]V, xstream.Stats) {
	t.Helper()
	if c.mem {
		cfg := xstreamtest.MemConfig()
		cfg.Partitioner, cfg.NoCombine = c.part, c.noCombine
		res, err := xstream.RunMemory(src, prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		return res.Vertices, res.Stats
	}
	cfg := xstreamtest.DiskConfig("equiv")
	cfg.Partitioner, cfg.NoCombine = c.part, c.noCombine
	res, err := xstream.RunDisk(src, prog, cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	return res.Vertices, res.Stats
}

func TestEquivalenceBFS(t *testing.T) {
	src := xstreamtest.RMAT(10, 21)
	edges := xstreamtest.Materialize(t, src)
	const root = 3
	want := refalgo.BFSLevels(src.NumVertices(), edges, root)
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			got := xstream.BFSLevels(runEquiv(t, c, src, xstream.NewBFS(root)))
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d: level %d, want %d", v, got[v], want[v])
				}
			}
		})
	}
}

func TestEquivalencePageRank(t *testing.T) {
	src := xstreamtest.RMAT(10, 22)
	edges := xstreamtest.Materialize(t, src)
	const iters = 5
	want := refalgo.PageRank(src.NumVertices(), edges, iters)
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			got := xstream.PageRankValues(runEquiv(t, c, src, xstream.NewPageRank(iters)))
			for v := range want {
				diff := math.Abs(float64(got[v]) - want[v])
				if diff > 1e-3*(1+math.Abs(want[v])) {
					t.Fatalf("vertex %d: rank %g, want %g", v, got[v], want[v])
				}
			}
		})
	}
}

func TestEquivalenceWCC(t *testing.T) {
	src := xstreamtest.RMATUndirected(10, 23)
	edges := xstreamtest.Materialize(t, src)
	want := refalgo.Components(src.NumVertices(), edges)
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			got := xstream.WCCLabels(runEquiv(t, c, src, xstream.NewWCC()))
			// Labels are representatives: under a relabeling partitioner
			// the representative may be any member of the component, so
			// compare the component *partitions* canonically.
			if err := xstreamtest.SameComponents(got, want); err != nil {
				t.Fatalf("%v", err)
			}
		})
	}
}

// TestEquivalenceSSSP rides along: root translation through VertexMapper
// is the same machinery BFS uses, but with float distances.
func TestEquivalenceSSSP(t *testing.T) {
	src := xstreamtest.RMAT(9, 24)
	edges := xstreamtest.Materialize(t, src)
	const root = 7
	want := refalgo.Dijkstra(src.NumVertices(), edges, root)
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			got := xstream.SSSPDistances(runEquiv(t, c, src, xstream.NewSSSP(root)))
			for v := range want {
				if math.IsInf(want[v], 1) {
					if got[v] != float32(math.Inf(1)) {
						t.Fatalf("vertex %d: reached at %g, want unreachable", v, got[v])
					}
					continue
				}
				if math.Abs(float64(got[v])-want[v]) > 1e-4*(1+want[v]) {
					t.Fatalf("vertex %d: dist %g, want %g", v, got[v], want[v])
				}
			}
		})
	}
}

// TestPartitionerIndependentSeeding: programs that seed per-vertex state
// from the vertex ID (SpMV's x vector, Conductance's subset, MCST's
// forest) must seed from *input* IDs, so range and 2ps runs agree.
func TestPartitionerIndependentSeeding(t *testing.T) {
	src := xstreamtest.RMATUndirected(10, 26)
	t.Run("spmv", func(t *testing.T) {
		var want []xstream.SpMVState
		for _, c := range equivCases()[:2] { // mem/range, mem/2ps
			got := runEquiv(t, c, src, xstream.NewSpMV())
			if want == nil {
				want = got
				continue
			}
			for v := range want {
				if math.Abs(float64(got[v].Y-want[v].Y)) > 1e-3*(1+math.Abs(float64(want[v].Y))) {
					t.Fatalf("%s: vertex %d: y %g, want %g", c.name, v, got[v].Y, want[v].Y)
				}
			}
		}
	})
	t.Run("conductance", func(t *testing.T) {
		var phi float64
		for i, c := range equivCases()[:2] {
			prog := xstream.NewConductance(nil)
			runEquiv(t, c, src, prog)
			if i == 0 {
				phi = prog.Phi
				continue
			}
			if math.Abs(prog.Phi-phi) > 1e-9 {
				t.Fatalf("%s: phi %g, want %g", c.name, prog.Phi, phi)
			}
		}
	})
	t.Run("mcst", func(t *testing.T) {
		var weight float64
		var n int64
		for i, c := range equivCases()[:2] {
			prog := xstream.NewMCST()
			runEquiv(t, c, src, prog)
			if i == 0 {
				weight, n = prog.TotalWeight, src.NumVertices()
				continue
			}
			if math.Abs(prog.TotalWeight-weight) > 1e-6*(1+weight) {
				t.Fatalf("%s: forest weight %g, want %g", c.name, prog.TotalWeight, weight)
			}
			for _, e := range prog.Edges {
				if int64(e.A) >= n || int64(e.B) >= n {
					t.Fatalf("%s: forest edge (%d,%d) outside input ID space", c.name, e.A, e.B)
				}
			}
		}
	})
}

// TestRelabeledRootOutOfRange: a nonsensical root must degrade the same
// way under both partitioners (all-unreached) instead of panicking in the
// relabel translation.
func TestRelabeledRootOutOfRange(t *testing.T) {
	src := xstreamtest.RMAT(8, 27)
	badRoot := xstream.VertexID(src.NumVertices() + 999)
	for _, c := range equivCases()[:2] {
		levels := xstream.BFSLevels(runEquiv(t, c, src, xstream.NewBFS(badRoot)))
		for v, l := range levels {
			if l != -1 {
				t.Fatalf("%s: vertex %d reached at level %d from out-of-range root", c.name, v, l)
			}
		}
	}
}

// TestDeterminism2PS: identical runs with the 2PS partitioner must be
// bit-identical — the assignment and the engine are both deterministic.
func TestDeterminism2PS(t *testing.T) {
	src := xstreamtest.RMATUndirected(10, 25)
	var want []xstream.WCCState
	for run := 0; run < 3; run++ {
		res, err := xstream.RunMemory(src, xstream.NewWCC(), xstream.MemConfig{
			Threads: 4, Partitioner: xstream.New2PSPartitioner(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res.Vertices
			continue
		}
		for v := range want {
			if res.Vertices[v] != want[v] {
				t.Fatalf("run %d: vertex %d: %+v vs %+v", run, v, res.Vertices[v], want[v])
			}
		}
	}
}

// TestCombinerParitySpMV: the sum semigroup over float32. Combining
// changes the order float additions reduce in, so parity is checked within
// the same relative tolerance the PageRank equivalence test uses.
func TestCombinerParitySpMV(t *testing.T) {
	src := xstreamtest.RMAT(10, 28)
	var want []xstream.SpMVState
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			got := runEquiv(t, c, src, xstream.NewSpMV())
			if want == nil {
				want = got
				return
			}
			for v := range want {
				diff := math.Abs(float64(got[v].Y - want[v].Y))
				if diff > 1e-3*(1+math.Abs(float64(want[v].Y))) {
					t.Fatalf("vertex %d: y %g, want %g", v, got[v].Y, want[v].Y)
				}
			}
		})
	}
}

// TestCombinerParityHyperANF: sketch union is idempotent as well as
// commutative and associative, so combined runs must be bit-identical to
// uncombined ones — the strictest parity the suite can ask for.
func TestCombinerParityHyperANF(t *testing.T) {
	src := xstream.Symmetrize(xstreamtest.RMAT(9, 29))
	var want []xstream.ANFState
	for _, c := range equivCases() {
		t.Run(c.name, func(t *testing.T) {
			got := runEquiv(t, c, src, xstream.NewHyperANF())
			if want == nil {
				want = got
				return
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d: sketch state diverged", v)
				}
			}
		})
	}
}

// TestCombineGroupingInvariance is the property behind the Combiner
// contract: for a random multiset of updates to one destination, gathering
// them one at a time must leave the vertex in the same state as gathering
// any random grouping of them pre-reduced through Combine, in any order.
// The sum semigroup is exercised with dyadic values small enough that
// float32 addition is exact, so even it can be compared bit-for-bit.
func TestCombineGroupingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(77))

	// group partitions vals into random contiguous-free groups, reduces
	// each through combine (in random internal order), and returns the
	// group values shuffled.
	group := func(vals []float32, combine func(a, b float32) float32) []float32 {
		var groups [][]float32
		for _, v := range vals {
			if len(groups) > 0 && rng.Intn(2) == 0 {
				g := rng.Intn(len(groups))
				groups[g] = append(groups[g], v)
			} else {
				groups = append(groups, []float32{v})
			}
		}
		out := make([]float32, 0, len(groups))
		for _, g := range groups {
			rng.Shuffle(len(g), func(i, j int) { g[i], g[j] = g[j], g[i] })
			acc := g[0]
			for _, v := range g[1:] {
				acc = combine(acc, v)
			}
			out = append(out, acc)
		}
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}

	t.Run("sum/pagerank", func(t *testing.T) {
		prog := xstream.NewPageRank(1)
		prog.StartIteration(1) // rank-accumulation path
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(30)
			vals := make([]float32, n)
			for i := range vals {
				vals[i] = float32(rng.Intn(512)) / 16 // dyadic: exact addition
			}
			var direct, grouped xstream.PRState
			for _, v := range vals {
				prog.Gather(0, &direct, v)
			}
			for _, v := range group(vals, prog.Combine) {
				prog.Gather(0, &grouped, v)
			}
			if direct != grouped {
				t.Fatalf("trial %d: direct %+v, grouped %+v", trial, direct, grouped)
			}
		}
	})

	t.Run("min/sssp", func(t *testing.T) {
		prog := xstream.NewSSSP(0)
		prog.StartIteration(0)
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(30)
			vals := make([]float32, n)
			for i := range vals {
				vals[i] = rng.Float32() * 100
			}
			direct := xstream.SSSPState{Dist: xstream.Inf32, Updated: -1}
			grouped := direct
			for _, v := range vals {
				prog.Gather(1, &direct, v)
			}
			for _, v := range group(vals, prog.Combine) {
				prog.Gather(1, &grouped, v)
			}
			if direct != grouped {
				t.Fatalf("trial %d: direct %+v, grouped %+v", trial, direct, grouped)
			}
		}
	})

	t.Run("min/wcc", func(t *testing.T) {
		prog := xstream.NewWCC()
		prog.StartIteration(0)
		combine := func(a, b float32) float32 {
			return float32(prog.Combine(xstream.VertexID(a), xstream.VertexID(b)))
		}
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(30)
			vals := make([]float32, n)
			for i := range vals {
				vals[i] = float32(rng.Intn(1 << 20)) // vertex labels, exact in float32
			}
			var direct, grouped xstream.WCCState
			prog.Init(1<<21, &direct)
			prog.Init(1<<21, &grouped)
			for _, v := range vals {
				prog.Gather(0, &direct, xstream.VertexID(v))
			}
			for _, v := range group(vals, combine) {
				prog.Gather(0, &grouped, xstream.VertexID(v))
			}
			if direct != grouped {
				t.Fatalf("trial %d: direct %+v, grouped %+v", trial, direct, grouped)
			}
		}
	})
}

// ---- selective (frontier-aware) streaming equivalence ----

// selectiveCase is one (engine, partitioner, selective) combination. The
// full matrix — both engines x both partitioners x selective on/off — run
// over every frontier algorithm is what proves the FrontierProgram
// contract: skipping partitions and tiles whose sources are inactive never
// changes a result.
type selectiveCase struct {
	name      string
	mem       bool
	part      func() xstream.Partitioner
	selective bool
}

func selectiveCases() []selectiveCase {
	var out []selectiveCase
	for _, mem := range []bool{true, false} {
		for _, part := range []struct {
			name string
			mk   func() xstream.Partitioner
		}{
			{"range", xstream.NewRangePartitioner},
			{"2ps", xstream.New2PSPartitioner},
		} {
			for _, sel := range []bool{false, true} {
				eng := "disk"
				if mem {
					eng = "mem"
				}
				mode := "dense"
				if sel {
					mode = "selective"
				}
				out = append(out, selectiveCase{
					name:      eng + "/" + part.name + "/" + mode,
					mem:       mem,
					part:      part.mk,
					selective: sel,
				})
			}
		}
	}
	return out
}

// runSelective executes prog on the case's engine, returning states and
// stats.
func runSelective[V, M any](t *testing.T, c selectiveCase, src xstream.EdgeSource, prog xstream.Program[V, M]) ([]V, xstream.Stats) {
	t.Helper()
	if c.mem {
		// Partitions forced: the auto-sizer picks K=1 on test-size graphs,
		// which would leave the partition-skip path unexercised.
		cfg := xstreamtest.MemConfig()
		cfg.Partitions, cfg.Partitioner, cfg.Selective, cfg.TileEdges = 16, c.part(), c.selective, 128
		res, err := xstream.RunMemory(src, prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		return res.Vertices, res.Stats
	}
	cfg := xstreamtest.DiskConfig("sel-equiv")
	cfg.Partitioner, cfg.Selective, cfg.TileEdges = c.part(), c.selective, 128
	res, err := xstream.RunDisk(src, prog, cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	return res.Vertices, res.Stats
}

// checkSelectiveStats asserts the workload bookkeeping: selective runs must
// reconcile exactly to the dense edge workload and actually skip something
// on these inputs; dense runs must report no skips. denseStreamed is 0 when
// the paired dense subtest was filtered out (go test -run of a single
// selective case), in which case the reconciliation is skipped rather than
// compared against a value that never ran.
func checkSelectiveStats(t *testing.T, c selectiveCase, s xstream.Stats, denseStreamed int64) {
	t.Helper()
	if !c.selective {
		if s.EdgesSkipped != 0 || s.PartitionsSkipped != 0 || s.TilesSkipped != 0 {
			t.Fatalf("%s: dense run reported skips: %+v", c.name, s)
		}
		return
	}
	if denseStreamed > 0 && s.EdgesStreamed+s.EdgesSkipped != denseStreamed {
		t.Fatalf("%s: streamed %d + skipped %d != dense %d",
			c.name, s.EdgesStreamed, s.EdgesSkipped, denseStreamed)
	}
	if s.EdgesSkipped == 0 {
		t.Fatalf("%s: selective run skipped nothing", c.name)
	}
}

// TestSelectiveEquivalenceBFS: the flagship frontier algorithm on the
// flagship input — a high-diameter clique chain — plus a scale-free graph,
// against the reference implementation.
func TestSelectiveEquivalenceBFS(t *testing.T) {
	for _, g := range []struct {
		name string
		src  xstream.EdgeSource
	}{
		{"clique-chain", xstream.CliqueChain(48, 8, 51)},
		{"rmat", xstreamtest.RMAT(10, 52)},
	} {
		edges := xstreamtest.Materialize(t, g.src)
		const root = 2
		want := refalgo.BFSLevels(g.src.NumVertices(), edges, root)
		var denseStreamed int64
		for _, c := range selectiveCases() {
			t.Run(g.name+"/"+c.name, func(t *testing.T) {
				verts, stats := runSelective(t, c, g.src, xstream.NewBFS(root))
				got := xstream.BFSLevels(verts)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("vertex %d: level %d, want %d", v, got[v], want[v])
					}
				}
				if !c.selective {
					denseStreamed = stats.EdgesStreamed
				}
				checkSelectiveStats(t, c, stats, denseStreamed)
			})
		}
	}
}

// TestSelectiveEquivalenceSSSP: float distances through the same matrix.
func TestSelectiveEquivalenceSSSP(t *testing.T) {
	src := xstreamtest.RMAT(9, 53)
	edges := xstreamtest.Materialize(t, src)
	const root = 5
	want := refalgo.Dijkstra(src.NumVertices(), edges, root)
	var denseStreamed int64
	for _, c := range selectiveCases() {
		t.Run(c.name, func(t *testing.T) {
			verts, stats := runSelective(t, c, src, xstream.NewSSSP(root))
			got := xstream.SSSPDistances(verts)
			for v := range want {
				if math.IsInf(want[v], 1) {
					if got[v] != float32(math.Inf(1)) {
						t.Fatalf("vertex %d: reached at %g, want unreachable", v, got[v])
					}
					continue
				}
				if math.Abs(float64(got[v])-want[v]) > 1e-4*(1+want[v]) {
					t.Fatalf("vertex %d: dist %g, want %g", v, got[v], want[v])
				}
			}
			if !c.selective {
				denseStreamed = stats.EdgesStreamed
			}
			checkSelectiveStats(t, c, stats, denseStreamed)
		})
	}
}

// TestSelectiveEquivalenceWCC: all-active start converging to a narrow
// tail; labels are compared canonically as in TestEquivalenceWCC.
func TestSelectiveEquivalenceWCC(t *testing.T) {
	src := xstream.CliqueChain(32, 8, 54)
	edges := xstreamtest.Materialize(t, src)
	want := refalgo.Components(src.NumVertices(), edges)
	var denseStreamed int64
	for _, c := range selectiveCases() {
		t.Run(c.name, func(t *testing.T) {
			verts, stats := runSelective(t, c, src, xstream.NewWCC())
			got := xstream.WCCLabels(verts)
			if err := xstreamtest.SameComponents(got, want); err != nil {
				t.Fatalf("%v", err)
			}
			if !c.selective {
				denseStreamed = stats.EdgesStreamed
			}
			checkSelectiveStats(t, c, stats, denseStreamed)
		})
	}
}

// TestSelectiveBitParity: within one engine+partitioner, selective on and
// off must agree bit-for-bit — stronger than reference equality, and the
// most direct statement of "skips are pure elision".
func TestSelectiveBitParity(t *testing.T) {
	src := xstream.CliqueChain(40, 8, 55)
	cases := selectiveCases()
	for i := 0; i < len(cases); i += 2 {
		dense, sel := cases[i], cases[i+1]
		if dense.selective || !sel.selective || dense.mem != sel.mem {
			t.Fatalf("selectiveCases() no longer pairs dense/selective adjacently: %s / %s", dense.name, sel.name)
		}
		t.Run(sel.name, func(t *testing.T) {
			dv, _ := runSelective(t, dense, src, xstream.NewBFS(0))
			sv, _ := runSelective(t, sel, src, xstream.NewBFS(0))
			for v := range dv {
				if dv[v] != sv[v] {
					t.Fatalf("vertex %d: dense %+v, selective %+v", v, dv[v], sv[v])
				}
			}
		})
	}
}

// ---- compressed edge tiles equivalence ----

// compressCase is one (partitioner, selective) combination run twice on
// the disk engine — raw tiles and delta-compressed tiles. Compression is
// a storage-layer change below the reader, so every pair must agree
// bit-for-bit; the matrix across partitioners (delta coding leans on the
// 2PS relabeling, but must also hold for range) and selective on/off
// (planned segments interact with tile skipping) is what proves decode
// placement never leaks into results.
type compressCase struct {
	name      string
	part      func() xstream.Partitioner
	selective bool
}

func compressCases() []compressCase {
	var out []compressCase
	for _, part := range []struct {
		name string
		mk   func() xstream.Partitioner
	}{
		{"range", xstream.NewRangePartitioner},
		{"2ps", xstream.New2PSPartitioner},
	} {
		for _, sel := range []bool{false, true} {
			mode := "dense"
			if sel {
				mode = "selective"
			}
			out = append(out, compressCase{
				name:      part.name + "/" + mode,
				part:      part.mk,
				selective: sel,
			})
		}
	}
	return out
}

// runCompress executes prog out of core with raw or compressed tiles.
func runCompress[V, M any](t *testing.T, c compressCase, threads int, compress bool, src xstream.EdgeSource, prog xstream.Program[V, M]) ([]V, xstream.Stats) {
	t.Helper()
	cfg := xstreamtest.DiskConfig("cmp-equiv")
	cfg.Threads, cfg.Partitioner = threads, c.part()
	cfg.Selective, cfg.TileEdges, cfg.CompressTiles = c.selective, 128, compress
	res, err := xstream.RunDisk(src, prog, cfg)
	if err != nil {
		t.Fatalf("%s (compress=%v): %v", c.name, compress, err)
	}
	return res.Vertices, res.Stats
}

// checkCompressStats asserts the codec bookkeeping for one raw/compressed
// pair: the compressed run must actually delta-code tiles and read fewer
// physical bytes, while its logical volume matches the raw run's reads
// exactly — the byte-level statement that both runs streamed the same
// records.
func checkCompressStats(t *testing.T, c compressCase, raw, cmp xstream.Stats) {
	t.Helper()
	if raw.TilesCompressed != 0 || raw.CompressedRatio != 0 {
		t.Fatalf("%s: raw run reports compression: %d tiles, ratio %v", c.name, raw.TilesCompressed, raw.CompressedRatio)
	}
	if raw.BytesReadLogical != raw.BytesRead {
		t.Fatalf("%s: raw run logical %d != physical %d", c.name, raw.BytesReadLogical, raw.BytesRead)
	}
	if cmp.TilesCompressed == 0 {
		t.Fatalf("%s: compressed run delta-coded no tiles", c.name)
	}
	if cmp.CompressedRatio <= 0 || cmp.CompressedRatio >= 1 {
		t.Fatalf("%s: compressed ratio %v outside (0, 1)", c.name, cmp.CompressedRatio)
	}
	if cmp.BytesRead >= raw.BytesRead {
		t.Fatalf("%s: compressed run read %d physical bytes, raw read %d", c.name, cmp.BytesRead, raw.BytesRead)
	}
	if cmp.BytesReadLogical != raw.BytesReadLogical {
		t.Fatalf("%s: compressed run logical volume %d, raw run's %d", c.name, cmp.BytesReadLogical, raw.BytesReadLogical)
	}
}

// TestCompressedTilesEquivalenceBFS: frontier algorithm over min — bit
// parity at Threads 3 across the full matrix.
func TestCompressedTilesEquivalenceBFS(t *testing.T) {
	src := xstreamtest.RMAT(10, 71)
	for _, c := range compressCases() {
		t.Run(c.name, func(t *testing.T) {
			raw, rs := runCompress(t, c, 3, false, src, xstream.NewBFS(3))
			cmp, cs := runCompress(t, c, 3, true, src, xstream.NewBFS(3))
			checkCompressStats(t, c, rs, cs)
			for v := range raw {
				if raw[v] != cmp[v] {
					t.Fatalf("vertex %d: raw %+v, compressed %+v", v, raw[v], cmp[v])
				}
			}
		})
	}
}

// TestCompressedTilesEquivalenceWCC: all-active label propagation, bit
// parity at Threads 3 (integer min is reduction-order independent).
func TestCompressedTilesEquivalenceWCC(t *testing.T) {
	src := xstreamtest.RMATUndirected(10, 72)
	for _, c := range compressCases() {
		t.Run(c.name, func(t *testing.T) {
			raw, rs := runCompress(t, c, 3, false, src, xstream.NewWCC())
			cmp, cs := runCompress(t, c, 3, true, src, xstream.NewWCC())
			checkCompressStats(t, c, rs, cs)
			for v := range raw {
				if raw[v] != cmp[v] {
					t.Fatalf("vertex %d: raw %+v, compressed %+v", v, raw[v], cmp[v])
				}
			}
		})
	}
}

// TestCompressedTilesEquivalencePageRank: float sums at Threads 1, where
// the record order the decoder reproduces is the accumulation order —
// compression must be bit-exact. (At Threads>1 chunk boundaries differ
// between the raw and tile readers, legitimately regrouping additions.)
func TestCompressedTilesEquivalencePageRank(t *testing.T) {
	src := xstreamtest.RMAT(10, 73)
	for _, c := range compressCases() {
		t.Run(c.name, func(t *testing.T) {
			raw, rs := runCompress(t, c, 1, false, src, xstream.NewPageRank(5))
			cmp, cs := runCompress(t, c, 1, true, src, xstream.NewPageRank(5))
			checkCompressStats(t, c, rs, cs)
			for v := range raw {
				if raw[v] != cmp[v] {
					t.Fatalf("vertex %d: raw %+v, compressed %+v", v, raw[v], cmp[v])
				}
			}
		})
	}
}

// ---- vertex replication (mirror) equivalence ----

// repCase is one (engine, partitioner, replication) combination. The full
// matrix — both engines x partitioners (range, 2ps, volume-balanced 2psv)
// x replication on/off — proves the mirror contract: absorbing
// hub-addressed updates into partition-local accumulators merged by the
// program's Combiner and flushing one sync per partition never changes a
// min-lattice result bit-for-bit, and sum-based programs agree within
// reduction-order tolerance.
type repCase struct {
	name      string
	mem       bool
	part      func() xstream.Partitioner
	replicate bool
}

func repCases() []repCase {
	var out []repCase
	for _, mem := range []bool{true, false} {
		for _, part := range []struct {
			name string
			mk   func() xstream.Partitioner
		}{
			{"range", xstream.NewRangePartitioner},
			{"2ps", xstream.New2PSPartitioner},
			{"2psv", xstream.New2PSVolumePartitioner},
		} {
			for _, rep := range []bool{false, true} {
				eng := "disk"
				if mem {
					eng = "mem"
				}
				mode := "plain"
				if rep {
					mode = "mirrored"
				}
				out = append(out, repCase{
					name:      eng + "/" + part.name + "/" + mode,
					mem:       mem,
					part:      part.mk,
					replicate: rep,
				})
			}
		}
	}
	return out
}

// runRep executes prog on the case's engine with threads workers,
// returning states and stats. Partitions are forced to 8 on both engines:
// the mem auto-sizer picks K=1 on test-size graphs, and K=1 disables
// replication outright.
func runRep[V, M any](t *testing.T, c repCase, threads int, src xstream.EdgeSource, prog xstream.Program[V, M]) ([]V, xstream.Stats) {
	t.Helper()
	part := c.part()
	if c.replicate {
		part = xstream.NewReplicatingPartitioner(part, xstream.ReplicationConfig{})
	}
	if c.mem {
		cfg := xstreamtest.MemConfig()
		cfg.Threads, cfg.Partitions, cfg.Partitioner = threads, 8, part
		res, err := xstream.RunMemory(src, prog, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		return res.Vertices, res.Stats
	}
	cfg := xstreamtest.DiskConfig("rep-equiv")
	cfg.Threads, cfg.Partitioner = threads, part
	res, err := xstream.RunDisk(src, prog, cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	return res.Vertices, res.Stats
}

// checkRepStats asserts the replication bookkeeping: mirrored runs on a
// scale-free input must actually mirror and sync; plain runs must not.
func checkRepStats(t *testing.T, c repCase, s xstream.Stats) {
	t.Helper()
	if !c.replicate {
		if s.MirroredVertices != 0 || s.MirrorSyncUpdates != 0 {
			t.Fatalf("%s: plain run reported mirrors: %d vertices, %d syncs", c.name, s.MirroredVertices, s.MirrorSyncUpdates)
		}
		return
	}
	if s.MirroredVertices == 0 {
		t.Fatalf("%s: replicated run mirrored nothing", c.name)
	}
	if s.MirrorSyncUpdates == 0 {
		t.Fatalf("%s: replicated run flushed no sync updates", c.name)
	}
}

// TestReplicationEquivalenceBFS: min-lattice, so every case must be
// bit-exact against the reference.
func TestReplicationEquivalenceBFS(t *testing.T) {
	src := xstreamtest.RMAT(10, 61)
	edges := xstreamtest.Materialize(t, src)
	const root = 3
	want := refalgo.BFSLevels(src.NumVertices(), edges, root)
	for _, c := range repCases() {
		t.Run(c.name, func(t *testing.T) {
			verts, stats := runRep(t, c, 3, src, xstream.NewBFS(root))
			checkRepStats(t, c, stats)
			got := xstream.BFSLevels(verts)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("vertex %d: level %d, want %d", v, got[v], want[v])
				}
			}
		})
	}
}

// TestReplicationEquivalenceSSSP: float min is exact (no rounding), so
// mirrored runs must be bit-exact too.
func TestReplicationEquivalenceSSSP(t *testing.T) {
	src := xstreamtest.RMAT(10, 62)
	edges := xstreamtest.Materialize(t, src)
	const root = 1
	want := refalgo.Dijkstra(src.NumVertices(), edges, root)
	for _, c := range repCases() {
		t.Run(c.name, func(t *testing.T) {
			verts, stats := runRep(t, c, 3, src, xstream.NewSSSP(root))
			checkRepStats(t, c, stats)
			got := xstream.SSSPDistances(verts)
			for v := range want {
				diff := math.Abs(float64(got[v]) - want[v])
				if diff > 1e-4*(1+math.Abs(want[v])) {
					t.Fatalf("vertex %d: dist %g, want %g", v, got[v], want[v])
				}
			}
		})
	}
}

// TestReplicationEquivalenceWCC: label propagation over min — component
// membership must match the reference partition exactly.
func TestReplicationEquivalenceWCC(t *testing.T) {
	src := xstreamtest.RMATUndirected(10, 63)
	edges := xstreamtest.Materialize(t, src)
	want := refalgo.Components(src.NumVertices(), edges)
	for _, c := range repCases() {
		t.Run(c.name, func(t *testing.T) {
			verts, stats := runRep(t, c, 3, src, xstream.NewWCC())
			checkRepStats(t, c, stats)
			got := xstream.WCCLabels(verts)
			if err := xstreamtest.SameComponents(got, want); err != nil {
				t.Fatalf("%v", err)
			}
		})
	}
}

// TestReplicationParityPageRank: sum-based, so mirror merging regroups
// float additions. At Threads=1 every case must agree with the reference
// (and its own unmirrored twin) within reduction-order tolerance.
func TestReplicationParityPageRank(t *testing.T) {
	src := xstreamtest.RMAT(10, 64)
	edges := xstreamtest.Materialize(t, src)
	const iters = 5
	want := refalgo.PageRank(src.NumVertices(), edges, iters)
	plain := map[string][]float32{}
	for _, c := range repCases() {
		t.Run(c.name, func(t *testing.T) {
			verts, stats := runRep(t, c, 1, src, xstream.NewPageRank(iters))
			checkRepStats(t, c, stats)
			got := xstream.PageRankValues(verts)
			for v := range want {
				diff := math.Abs(float64(got[v]) - want[v])
				if diff > 1e-3*(1+math.Abs(want[v])) {
					t.Fatalf("vertex %d: rank %g, want %g", v, got[v], want[v])
				}
			}
			// Mirrored vs plain twin: same engine+partitioner, tighter bar.
			key := c.name[:strings.LastIndex(c.name, "/")]
			if !c.replicate {
				plain[key] = got
				return
			}
			twin := plain[key]
			if twin == nil {
				return // twin filtered out by -run
			}
			for v := range got {
				diff := math.Abs(float64(got[v]) - float64(twin[v]))
				if diff > 1e-4*(1+math.Abs(float64(twin[v]))) {
					t.Fatalf("vertex %d: mirrored rank %g vs plain %g", v, got[v], twin[v])
				}
			}
		})
	}
}

// TestReplicationFallbackNoCombine: a program stripped of its Combiner
// (NoCombine) cannot merge mirror accumulators, so a replicating
// assignment must fall back to the plain update path — no mirrors, no
// syncs, identical results.
func TestReplicationFallbackNoCombine(t *testing.T) {
	src := xstreamtest.RMAT(10, 65)
	part := xstream.NewReplicatingPartitioner(xstream.New2PSVolumePartitioner(), xstream.ReplicationConfig{})
	const root = 3
	base, err := xstream.RunMemory(src, xstream.NewBFS(root), xstream.MemConfig{
		Threads: 2, Partitions: 8, Partitioner: xstream.New2PSVolumePartitioner(), NoCombine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := xstream.RunMemory(src, xstream.NewBFS(root), xstream.MemConfig{
		Threads: 2, Partitions: 8, Partitioner: part, NoCombine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MirroredVertices != 0 || res.Stats.MirrorSyncUpdates != 0 {
		t.Fatalf("NoCombine run still mirrored: %d vertices, %d syncs",
			res.Stats.MirroredVertices, res.Stats.MirrorSyncUpdates)
	}
	a, b := xstream.BFSLevels(base.Vertices), xstream.BFSLevels(res.Vertices)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("vertex %d: %d vs %d", v, b[v], a[v])
		}
	}
}
