package xstream

import (
	"context"

	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphio"
	"repro/internal/memengine"
	"repro/internal/partition2ps"
)

// Core model types, re-exported from the engine packages.
type (
	// VertexID identifies a vertex (32-bit, enough for 4.2B vertices).
	VertexID = core.VertexID
	// Edge is a directed weighted edge.
	Edge = core.Edge
	// Update is a value produced by scatter, addressed to a vertex.
	Update[M any] = core.Update[M]
	// EdgeSource is a re-streamable unordered edge list.
	EdgeSource = core.EdgeSource
	// Program is an edge-centric scatter-gather computation.
	Program[V, M any] = core.Program[V, M]
	// PhasedProgram adds per-iteration aggregation and termination.
	PhasedProgram[V, M any] = core.PhasedProgram[V, M]
	// Combiner marks programs whose update values form a commutative
	// semigroup, letting the engines pre-aggregate the update stream
	// (thread-private combining buffers at scatter time plus a
	// per-partition fold after the shuffle). Disable per run with
	// MemConfig/DiskConfig.NoCombine.
	Combiner[M any] = core.Combiner[M]
	// FrontierProgram marks programs whose Scatter is a no-op for
	// vertices that received no update last iteration, letting engines
	// with MemConfig/DiskConfig.Selective skip inactive partitions and
	// edge tiles (the out-of-core engine skips the file reads outright).
	// BFS, SSSP and WCC opt in; results are identical either way.
	FrontierProgram[V any] = core.FrontierProgram[V]
	// DirectedProgram selects forward or transposed streaming per
	// iteration.
	DirectedProgram = core.DirectedProgram
	// IterationStarter is notified before each scatter phase.
	IterationStarter = core.IterationStarter
	// VertexView streams all vertex state through phase hooks.
	VertexView[V any] = core.VertexView[V]
	// Direction selects the streamed edge list orientation.
	Direction = core.Direction
	// Stats is the execution profile of one run.
	Stats = core.Stats
	// IterStats is one iteration's slice of a run's Stats.
	IterStats = core.IterStats
	// Tracer receives execution spans from an engine (Config.Tracer);
	// internal/obs provides a recorder and Chrome trace-event export.
	Tracer = core.Tracer
)

// Edge list orientations.
const (
	Forward  = core.Forward
	Backward = core.Backward
)

// Engine configuration and results.
type (
	// MemConfig tunes the in-memory engine (§4 of the paper). The zero
	// value auto-sizes partitions and shuffler fanout.
	MemConfig = memengine.Config
	// DiskConfig tunes the out-of-core engine (§3 of the paper).
	DiskConfig = diskengine.Config
	// MemResult carries final vertex state and stats.
	MemResult[V any] = memengine.Result[V]
	// DiskResult carries final vertex state and stats.
	DiskResult[V any] = diskengine.Result[V]
)

// RunMemory executes prog over g with the in-memory streaming engine:
// partitions sized to the CPU cache, parallel scatter-gather with work
// stealing, multi-stage in-memory shuffle.
func RunMemory[V, M any](g EdgeSource, prog Program[V, M], cfg MemConfig) (*MemResult[V], error) {
	return memengine.Run(g, prog, cfg)
}

// RunDisk executes prog over g with the out-of-core streaming engine:
// streaming partitions on a storage device, merged scatter/shuffle with
// asynchronous prefetching I/O.
func RunDisk[V, M any](g EdgeSource, prog Program[V, M], cfg DiskConfig) (*DiskResult[V], error) {
	return diskengine.Run(g, prog, cfg)
}

// Shared-pass execution: X-Stream's sequential edge stream is the
// dominant, fixed cost of a computation, so N co-scheduled jobs over the
// same dataset can pay it once per pass instead of once per job.
type (
	// Job is a type-erased handle over one Program, created with NewJob,
	// for shared-pass execution.
	Job = core.Job
	// ProgramSet is the ordered collection of co-scheduled jobs of one
	// shared pass.
	ProgramSet = core.ProgramSet
	// JobResult is one job's outcome: its final vertex states ([]V,
	// type-erased, in input order) and its own Stats.
	JobResult = core.JobResult
	// MemPrepared caches a dataset's in-memory execution state (shuffled
	// edge chunks, transpose, tile index) across RunMany passes.
	MemPrepared = memengine.Prepared
	// DiskPrepared caches a dataset's out-of-core pre-processing
	// (partition edge files, tile index) across RunMany passes.
	DiskPrepared = diskengine.Prepared
)

// NewJob wraps prog for shared-pass execution with RunManyMemory or
// RunManyDisk. Each Job is a single computation: run it once.
func NewJob[V, M any](prog Program[V, M]) *Job { return core.NewJob(prog) }

// PrepareMemory ingests a graph once for the in-memory engine — the
// partitioning plan (including any clustering passes), the relabeled edge
// stream shuffled into partition chunks — and returns a cached handle any
// number of RunMany passes share.
func PrepareMemory(g EdgeSource, cfg MemConfig) (*MemPrepared, error) {
	return memengine.Prepare(g, cfg)
}

// PrepareDisk ingests a graph once for the out-of-core engine: the
// pre-processing shuffle into partition edge files plus the tile index,
// paid once per dataset. Close the handle to remove the files.
func PrepareDisk(g EdgeSource, cfg DiskConfig) (*DiskPrepared, error) {
	return diskengine.Prepare(g, cfg)
}

// RunManyMemory executes every job of set over g with the in-memory
// engine, sharing one edge stream per iteration. It returns per-job
// results plus the pass-level Stats (CoJobs, EdgesShared measure the
// amortization). ctx cancels between iterations and chunks; nil means
// context.Background().
func RunManyMemory(ctx context.Context, g EdgeSource, set ProgramSet, cfg MemConfig) ([]JobResult, Stats, error) {
	return memengine.RunMany(ctx, g, set, cfg)
}

// RunManyDisk executes every job of set over g out of core, sharing one
// pass over the partition edge files per iteration, so edge-file reads are
// amortized across jobs. Jobs hold vertex state and updates in memory;
// size co-scheduled sets with Job.MemoryEstimate.
func RunManyDisk(ctx context.Context, g EdgeSource, set ProgramSet, cfg DiskConfig) ([]JobResult, Stats, error) {
	return diskengine.RunMany(ctx, g, set, cfg)
}

// Update transport: engines route their scatter→gather update stream
// through a core.UpdateTransport — the builtin in-memory shuffle or the
// disk engine's update-file writeback by default, or any frame-level
// Exchange plugged in via MemConfig/DiskConfig.Exchange (the seam a
// future multi-node shard exchange slots into).
type (
	// Exchange is the frame-level worker-to-worker transport SPI: opaque
	// framed byte slices sent to destination partitions and drained back.
	// internal/transport's loopback is the in-process reference
	// implementation, with seeded fault injection for chaos testing.
	Exchange = core.Exchange
)

// Typed Exchange failure modes, distinguishable with errors.Is: transient
// send failures are retried by the engines' transport adapter; lost and
// corrupt frames fail the run rather than ever surfacing as wrong results.
var (
	// ErrExchangeTransient marks a retryable send failure.
	ErrExchangeTransient = core.ErrExchangeTransient
	// ErrExchangeLost marks frames that went missing in flight, detected
	// by the receive-side reconciliation.
	ErrExchangeLost = core.ErrExchangeLost
	// ErrExchangeCorrupt marks frames whose payload failed its checksum.
	ErrExchangeCorrupt = core.ErrExchangeCorrupt
)

// NewSliceSource wraps an in-memory edge list as an EdgeSource. If
// numVertices is 0 it is inferred as max(id)+1.
func NewSliceSource(edges []Edge, numVertices int64) EdgeSource {
	return core.NewSliceSource(edges, numVertices)
}

// Materialize reads an entire EdgeSource into memory.
func Materialize(src EdgeSource) ([]Edge, error) { return core.Materialize(src) }

// Reverse returns the transposed edge list as a streaming transformation.
func Reverse(src EdgeSource) EdgeSource { return core.Reverse(src) }

// Symmetrize returns src plus its transpose — the undirected version of a
// directed graph.
func Symmetrize(src EdgeSource) EdgeSource { return core.Symmetrize(src) }

// Partitioning policies. Engines take a Partitioner in their Config; nil
// means the paper's fixed contiguous range split.
type (
	// Partitioner decides how vertices map to streaming partitions.
	Partitioner = core.Partitioner
	// Assignment is a planned partitioning: contiguous split plus the
	// vertex relabeling that realizes it (and, optionally, a mirror set).
	Assignment = core.Assignment
	// Replication is the mirror set of an assignment: hub vertices whose
	// cross-partition updates the engines absorb into partition-local
	// accumulators and flush as per-partition sync updates.
	Replication = core.Replication
	// ReplicationConfig tunes hub selection for NewReplicatingPartitioner.
	ReplicationConfig = core.ReplicationConfig
)

// NewRangePartitioner returns the paper's fixed policy: partitions are
// contiguous ranges of the input vertex IDs.
func NewRangePartitioner() Partitioner { return core.RangePartitioner{} }

// New2PSPartitioner returns the locality-aware two-phase streaming
// partitioner: one pass learns degree-weighted vertex clusters, a second
// packs them into partitions via a relabeling permutation, cutting
// cross-partition update traffic on community-structured graphs. Results
// are still reported in input vertex IDs.
func New2PSPartitioner() Partitioner { return partition2ps.New() }

// New2PSVolumePartitioner returns the 2PS partitioner with HEP-style
// volume-balanced packing ("2psv"): partitions are evened out by degree
// sum — the work they cause — instead of vertex count. On power-law
// graphs this spreads the dense core and raises cross-edge traffic, so
// pair it with NewReplicatingPartitioner, which makes hub placement
// irrelevant to update traffic.
func New2PSVolumePartitioner() Partitioner { return partition2ps.NewVolumeBalanced() }

// NewReplicatingPartitioner wraps any Partitioner with HDRF/HEP-style hub
// selection: one extra streaming pass counts in-degrees and the vertices
// above the configured threshold are mirrored — engines absorb their
// updates into partition-local accumulators merged by the program's
// Combiner and flush one sync update per partition per iteration,
// collapsing the hubs' cross-partition update flood. Programs without a
// Combiner fall back to the unwrapped behavior.
func NewReplicatingPartitioner(inner Partitioner, cfg ReplicationConfig) Partitioner {
	return core.NewReplicatingPartitioner(inner, cfg)
}

// NewPermutationPartitioner replays a saved old->new vertex relabeling as
// a Partitioner (nil = identity), so a clustering pass persisted with
// SavingPartitioner is paid once per dataset.
func NewPermutationPartitioner(name string, relabel []VertexID) Partitioner {
	return core.NewPermutationPartitioner(name, relabel)
}

// SavingPartitioner wraps inner so the relabeling permutation it plans is
// persisted as a permutation file on dev when an engine runs; replay it
// later with LoadPartitioner.
func SavingPartitioner(inner Partitioner, dev Device, name string) Partitioner {
	return graphio.SavingPartitioner(inner, dev, name)
}

// LoadPartitioner reads a saved permutation file and returns a Partitioner
// replaying it, skipping the clustering passes entirely.
func LoadPartitioner(dev Device, name string) (Partitioner, error) {
	return graphio.LoadPartitioner(dev, name)
}
