package xstream_test

import (
	"testing"

	xstream "repro"
)

// TestPublicAPIQuickstart exercises the facade end to end the way the
// README shows it: generate, run in memory, run out of core, compare.
func TestPublicAPIQuickstart(t *testing.T) {
	g := xstream.RMAT(xstream.RMATConfig{Scale: 9, EdgeFactor: 8, Seed: 4, Undirected: true})

	mem, err := xstream.RunMemory(g, xstream.NewWCC(), xstream.MemConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels := xstream.WCCLabels(mem.Vertices)
	if len(labels) != int(g.NumVertices()) {
		t.Fatalf("labels = %d", len(labels))
	}

	dev := xstream.NewSimDevice(xstream.SimSSD("t", 2, 0))
	disk, err := xstream.RunDisk(g, xstream.NewWCC(), xstream.DiskConfig{
		Device: dev, Threads: 2, IOUnit: 32 << 10, Partitions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if disk.Vertices[i].Label != labels[i] {
			t.Fatalf("engines disagree at %d", i)
		}
	}
	if mem.Stats.Iterations == 0 || disk.Stats.BytesRead == 0 {
		t.Fatal("stats not populated")
	}
}

func TestPublicAPIFileRoundTrip(t *testing.T) {
	dev := xstream.NewSimDevice(xstream.SimSSD("t", 1, 0))
	g := xstream.GridGraph(8, 8, 1)
	if err := xstream.WriteEdgeFile(dev, "grid", g); err != nil {
		t.Fatal(err)
	}
	fs, err := xstream.OpenEdgeFile(dev, "grid")
	if err != nil {
		t.Fatal(err)
	}
	res, err := xstream.RunMemory(fs, xstream.NewBFS(0), xstream.MemConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	levels := xstream.BFSLevels(res.Vertices)
	if levels[63] != 14 { // opposite grid corner: 7+7 hops
		t.Fatalf("corner level = %d, want 14", levels[63])
	}
}

// userProgram checks that a downstream user can implement Program against
// the public aliases only: count in-degrees.
type userProgram struct{}

func (userProgram) Name() string                                     { return "user-degree" }
func (userProgram) Init(id xstream.VertexID, v *int32)               { *v = 0 }
func (userProgram) Scatter(e xstream.Edge, src *int32) (int32, bool) { return 1, true }
func (userProgram) Gather(dst xstream.VertexID, v *int32, m int32)   { *v += m }
func (userProgram) EndIteration(iter int, sent int64, view xstream.VertexView[int32]) bool {
	return true
}

func TestUserDefinedProgram(t *testing.T) {
	edges := []xstream.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 2, Dst: 1, Weight: 1}}
	src := xstream.NewSliceSource(edges, 3)
	res, err := xstream.RunMemory(src, userProgram{}, xstream.MemConfig{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vertices[1] != 2 {
		t.Fatalf("in-degree = %d", res.Vertices[1])
	}
}
