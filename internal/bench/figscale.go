package bench

import (
	"fmt"
	"runtime"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
	"repro/internal/memengine"
	"repro/internal/storage"
)

func init() {
	register("fig14", "Strong scaling with thread count (paper Figure 14)", runFig14)
	register("fig15", "I/O device parallelism (paper Figure 15)", runFig15)
	register("fig16", "Runtime vs graph scale across media (paper Figure 16)", runFig16)
	register("fig17", "WCC recomputation while ingesting edges (paper Figure 17)", runFig17)
}

// scalingAlgos are the four workloads the scaling figures share.
func scalingAlgos() []struct {
	name string
	run  func(src core.EdgeSource, cfg Config, mods ...func(*memengine.Config)) (core.Stats, error)
} {
	return []struct {
		name string
		run  func(src core.EdgeSource, cfg Config, mods ...func(*memengine.Config)) (core.Stats, error)
	}{
		{"WCC", func(src core.EdgeSource, cfg Config, mods ...func(*memengine.Config)) (core.Stats, error) {
			return runMem(src, algorithms.NewWCC(), cfg, mods...)
		}},
		{"Pagerank", func(src core.EdgeSource, cfg Config, mods ...func(*memengine.Config)) (core.Stats, error) {
			return runMem(src, algorithms.NewPageRank(5), cfg, mods...)
		}},
		{"BFS", func(src core.EdgeSource, cfg Config, mods ...func(*memengine.Config)) (core.Stats, error) {
			return runMem(src, algorithms.NewBFS(0), cfg, mods...)
		}},
		{"SpMV", func(src core.EdgeSource, cfg Config, mods ...func(*memengine.Config)) (core.Stats, error) {
			return runMem(src, algorithms.NewSpMV(), cfg, mods...)
		}},
	}
}

func runFig14(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scale := cfg.pick(17, 12)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 1, Undirected: true})
	t := &Table{
		ID:      "fig14",
		Title:   fmt.Sprintf("strong scaling, RMAT scale %d (%d edges)", scale, src.NumEdges()),
		Columns: []string{"threads", "WCC", "Pagerank", "BFS", "SpMV"},
	}
	maxThreads := runtime.GOMAXPROCS(0)
	for th := 1; th <= maxThreads; th *= 2 {
		row := []string{fmt.Sprintf("%d", th)}
		c := cfg
		c.Threads = th
		for _, a := range scalingAlgos() {
			s, err := a.run(src, c)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(s.TotalTime))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: near-linear improvement 1..16 threads on a 32-core machine; this machine exposes "+
			fmt.Sprintf("%d", maxThreads)+" hardware threads",
	)
	return t, nil
}

func runFig15(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ts := cfg.timeScale(1.0)
	scale := cfg.pick(16, 11)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 2, Undirected: true})

	t := &Table{
		ID:      "fig15",
		Title:   fmt.Sprintf("runtime normalized to one disk (RMAT scale %d)", scale),
		Columns: []string{"medium:algorithm", "one disk", "indep. disks", "RAID-0"},
	}

	type devParams struct {
		name string
		mk   func(n string, disks int) storage.Device
	}
	media := []devParams{
		{"HDD", func(n string, d int) storage.Device { return storage.NewSim(storage.HDDParams(n, d, ts)) }},
		{"SSD", func(n string, d int) storage.Device { return storage.NewSim(storage.SSDParams(n, d, ts)) }},
	}
	// Requests must exceed the 512K RAID stripe to engage both members —
	// the same reason the paper uses 16 MB I/O units (§5.1).
	mods := func(upd storage.Device) func(*diskengine.Config) {
		return func(c *diskengine.Config) {
			c.UpdateDevice = upd
			c.NoUpdateBypass = true
			c.IOUnit = 4 << 20
		}
	}
	algos := []struct {
		name string
		run  func(dev, upd storage.Device) (core.Stats, error)
	}{
		{"SpMV", func(dev, upd storage.Device) (core.Stats, error) {
			return runDisk(src, algorithms.NewSpMV(), dev, cfg, mods(upd))
		}},
		{"WCC", func(dev, upd storage.Device) (core.Stats, error) {
			return runDisk(src, algorithms.NewWCC(), dev, cfg, mods(upd))
		}},
		{"Pagerank", func(dev, upd storage.Device) (core.Stats, error) {
			return runDisk(src, algorithms.NewPageRank(5), dev, cfg, mods(upd))
		}},
		{"BFS", func(dev, upd storage.Device) (core.Stats, error) {
			return runDisk(src, algorithms.NewBFS(0), dev, cfg, mods(upd))
		}},
	}

	for _, m := range media {
		for _, a := range algos {
			// one disk: single member, edges+updates together
			one := m.mk("one", 1)
			sOne, err := a.run(one, one)
			if err != nil {
				return nil, err
			}
			// independent disks: single members, updates on the second
			ed := m.mk("edges", 1)
			ud := m.mk("updates", 1)
			sInd, err := a.run(ed, ud)
			if err != nil {
				return nil, err
			}
			// RAID-0 pair
			raid := m.mk("raid", 2)
			sRaid, err := a.run(raid, raid)
			if err != nil {
				return nil, err
			}
			base := sOne.TotalTime.Seconds()
			t.Rows = append(t.Rows, []string{
				m.name + ":" + a.name,
				"1.00",
				fmt.Sprintf("%.2f", sInd.TotalTime.Seconds()/base),
				fmt.Sprintf("%.2f", sRaid.TotalTime.Seconds()/base),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper: independent disks cut runtime up to 30%, RAID-0 to 50-60% of one disk",
		fmt.Sprintf("device pacing TimeScale=%.2f; update bypass disabled so updates actually hit the devices", ts),
	)
	return t, nil
}

func runFig16(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ts := cfg.timeScale(0.5)
	lo, hi := 12, 18
	memLimit, ssdLimit := 14, 16
	if cfg.Quick {
		lo, hi = 10, 13
		memLimit, ssdLimit = 11, 12
	}
	t := &Table{
		ID:      "fig16",
		Title:   "runtime vs scale as the graph moves across media",
		Columns: []string{"scale", "edges", "medium", "WCC", "SpMV"},
	}
	for scale := lo; scale <= hi; scale++ {
		src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 3, Undirected: true})
		medium := "mem"
		if scale > ssdLimit {
			medium = "disk"
		} else if scale > memLimit {
			medium = "ssd"
		}
		var wcc, spmv core.Stats
		var err error
		switch medium {
		case "mem":
			if wcc, err = runMem(src, algorithms.NewWCC(), cfg); err != nil {
				return nil, err
			}
			if spmv, err = runMem(src, algorithms.NewSpMV(), cfg); err != nil {
				return nil, err
			}
		case "ssd":
			if wcc, err = runDisk(src, algorithms.NewWCC(), ssdDev("f16w", ts), cfg); err != nil {
				return nil, err
			}
			if spmv, err = runDisk(src, algorithms.NewSpMV(), ssdDev("f16s", ts), cfg); err != nil {
				return nil, err
			}
		case "disk":
			if wcc, err = runDisk(src, algorithms.NewWCC(), hddDev("f16w", ts), cfg); err != nil {
				return nil, err
			}
			if spmv, err = runDisk(src, algorithms.NewSpMV(), hddDev("f16s", ts), cfg); err != nil {
				return nil, err
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", scale),
			fmt.Sprintf("%d", src.NumEdges()),
			medium,
			fmtDur(wcc.TotalTime),
			fmtDur(spmv.TotalTime),
		})
	}
	t.Notes = append(t.Notes,
		"paper Figure 16: runtime doubles with each scale within a medium, with 'bumps' at the mem→ssd and ssd→disk transitions",
	)
	return t, nil
}

func runFig17(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ts := cfg.timeScale(0.5)
	scale := cfg.pick(17, 12)
	full := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 4, Undirected: true})
	edges, err := core.Materialize(full)
	if err != nil {
		return nil, err
	}
	const batches = 8
	t := &Table{
		ID:      "fig17",
		Title:   fmt.Sprintf("WCC recomputation time while ingesting %d batches (twitter-like stream)", batches),
		Columns: []string{"batch", "accumulated edges", "recompute time"},
	}
	dev := ssdDev("f17", ts)
	per := (len(edges) + batches - 1) / batches
	for b := 1; b <= batches; b++ {
		n := b * per
		if n > len(edges) {
			n = len(edges)
		}
		src := core.NewSliceSource(edges[:n], full.NumVertices())
		s, err := runDisk(src, algorithms.NewWCC(), dev, cfg, func(c *diskengine.Config) {
			c.Prefix = fmt.Sprintf("b%02d-", b)
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%d", n),
			fmtDur(s.TotalTime - s.PreprocessTime),
		})
	}
	t.Notes = append(t.Notes,
		"paper Figure 17: recomputation grows with the accumulated graph but stays far below a cold full run, because X-Stream ingests unordered edges with no pre-processing",
		"deviation: the paper appends each batch to existing partition files; this harness re-partitions per batch and reports the recompute (non-preprocessing) time",
	)
	return t, nil
}
