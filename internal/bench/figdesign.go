package bench

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
	"repro/internal/memengine"
)

func init() {
	register("fig24", "Effect of the number of partitions (paper Figure 24)", runFig24)
	register("fig25", "Effect of multi-stage shuffling (paper Figure 25)", runFig25)
	register("ablations", "Ablations of X-Stream design decisions (DESIGN.md §4)", runAblations)
}

func runFig24(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	// Scale 19 puts the vertex footprint (~15 MB) well beyond the 2 MB
	// cache at K=1, so the left side of the paper's U-shape is visible.
	scale := cfg.pick(19, 12)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 10, Undirected: true})
	t := &Table{
		ID:      "fig24",
		Title:   fmt.Sprintf("processing time vs partition count (RMAT scale %d)", scale),
		Columns: []string{"partitions", "WCC", "Pagerank", "BFS", "SpMV"},
	}
	maxK := cfg.pick(1<<14, 1<<10)
	for k := 1; k <= maxK; k *= 8 {
		row := []string{fmt.Sprintf("%d", k)}
		for _, a := range scalingAlgos() {
			s, err := a.run(src, cfg, func(c *memengine.Config) { c.Partitions = k })
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(s.TotalTime))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper Figure 24: flat across a broad middle range, rising when partitions are too few (vertex sets spill out of cache) or too many (shuffle overhead, random access)",
	)
	return t, nil
}

func runFig25(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scale := cfg.pick(17, 12)
	k := cfg.pick(4096, 256)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 11, Undirected: true})
	t := &Table{
		ID:      "fig25",
		Title:   fmt.Sprintf("shuffle stages at %d partitions, normalized to one stage", k),
		Columns: []string{"stages", "fanout", "WCC", "Pagerank", "BFS", "SpMV"},
	}
	// fanout = k^(1/stages), rounded to powers of two by construction.
	fanouts := map[int]int{1: k, 2: 0, 3: 0, 4: 0}
	f2 := 1
	for f2*f2 < k {
		f2 *= 2
	}
	fanouts[2] = f2
	f3 := 1
	for f3*f3*f3 < k {
		f3 *= 2
	}
	fanouts[3] = f3
	f4 := 1
	for f4*f4*f4*f4 < k {
		f4 *= 2
	}
	if f4 < 2 {
		f4 = 2
	}
	fanouts[4] = f4

	var base []float64
	for stages := 1; stages <= 4; stages++ {
		fanout := fanouts[stages]
		row := []string{fmt.Sprintf("%d", stages), fmt.Sprintf("%d", fanout)}
		var times []float64
		for _, a := range scalingAlgos() {
			s, err := a.run(src, cfg, func(c *memengine.Config) {
				c.Partitions = k
				c.Fanout = fanout
			})
			if err != nil {
				return nil, err
			}
			times = append(times, s.TotalTime.Seconds())
		}
		if stages == 1 {
			base = times
		}
		for i, v := range times {
			row = append(row, fmt.Sprintf("%.2f", v/base[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper Figure 25: one stage is sub-optimal at high partition counts (cache-line thrash); too many stages add copying; the sweet spot is 2-3 stages",
	)
	return t, nil
}

func runAblations(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "ablations",
		Title:   "design-decision ablations",
		Columns: []string{"ablation", "with", "without", "effect"},
	}
	ts := cfg.timeScale(1.0)
	scale := cfg.pick(15, 11)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 12, Undirected: true})

	// 1. Prefetching (double-buffered async I/O, §3.3).
	on, err := runDisk(src, algorithms.NewWCC(), hddDev("pf-on", ts), cfg, func(c *diskengine.Config) {
		c.NoUpdateBypass = true
	})
	if err != nil {
		return nil, err
	}
	off, err := runDisk(src, algorithms.NewWCC(), hddDev("pf-off", ts), cfg, func(c *diskengine.Config) {
		c.NoUpdateBypass = true
		c.NoPrefetch = true
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"prefetch distance 1 (§3.3)",
		fmtDur(on.TotalTime), fmtDur(off.TotalTime),
		fmt.Sprintf("%.2fx", off.TotalTime.Seconds()/on.TotalTime.Seconds()),
	})

	// 2. Update-buffer bypass (§3.2): measured by device write volume.
	// The stream buffer must be able to hold one scatter's updates for
	// the bypass to engage, so give it a generous I/O unit.
	byp, err := runDisk(src, algorithms.NewSpMV(), ssdDev("byp-on", 0), cfg, func(c *diskengine.Config) {
		c.IOUnit = 16 << 20
	})
	if err != nil {
		return nil, err
	}
	nobyp, err := runDisk(src, algorithms.NewSpMV(), ssdDev("byp-off", 0), cfg, func(c *diskengine.Config) {
		c.IOUnit = 16 << 20
		c.NoUpdateBypass = true
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"update bypass (§3.2), bytes written",
		fmt.Sprintf("%dMB", byp.BytesWritten>>20),
		fmt.Sprintf("%dMB", nobyp.BytesWritten>>20),
		fmt.Sprintf("%.2fx traffic", float64(nobyp.BytesWritten)/float64(byp.BytesWritten)),
	})

	// 3. Work stealing (§4.1) under partition skew.
	steal, err := runMem(src, algorithms.NewPageRank(5), cfg, func(c *memengine.Config) {
		c.Partitions = 64
	})
	if err != nil {
		return nil, err
	}
	static, err := runMem(src, algorithms.NewPageRank(5), cfg, func(c *memengine.Config) {
		c.Partitions = 64
		c.NoWorkStealing = true
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"work stealing (§4.1), skewed partitions",
		fmtDur(steal.TotalTime), fmtDur(static.TotalTime),
		fmt.Sprintf("%.2fx", static.TotalTime.Seconds()/steal.TotalTime.Seconds()),
	})
	t.Notes = append(t.Notes,
		"'with' is the paper's design; 'without' disables it; effect > 1.0x means the design decision pays off on this machine/workload",
	)
	return t, nil
}
