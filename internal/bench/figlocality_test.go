package bench

import (
	"fmt"
	"testing"
)

// TestFigLocalityReplication pins the replication tentpole's acceptance
// criterion: the replication-aware volume-balanced row ("2psv+rep") must
// carry strictly less cross-partition update traffic than 0.85x the range
// baseline — the bar the plain 2PS row set — and strictly less than plain
// 2PS itself, on both input orderings. Quick scale keeps the test fast;
// hub skew only grows with graph scale, so full scale does better.
func TestFigLocalityReplication(t *testing.T) {
	tab, err := runFigLocality(Config{Quick: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range []string{"rmat", "rmat-shuffled"} {
		get := func(variant string) float64 {
			v, ok := tab.Metrics[fmt.Sprintf("pagerank_%s_%s_cross_fraction", input, variant)]
			if !ok {
				t.Fatalf("%s: missing %s cross-fraction metric", input, variant)
			}
			return v
		}
		rng, twops, rep := get("range"), get("2ps"), get("2psv+rep")
		if rep >= 0.85*rng {
			t.Fatalf("%s: 2psv+rep cross fraction %.4f not below 0.85x range (%.4f)", input, rep, 0.85*rng)
		}
		if rep >= twops {
			t.Fatalf("%s: 2psv+rep cross fraction %.4f not below plain 2PS (%.4f)", input, rep, twops)
		}
		t.Logf("%s: range %.3f, 2ps %.3f, 2psv+rep %.3f (%.2fx of range)", input, rng, twops, rep, rep/rng)
	}
}
