package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/algorithms"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graphgen"
)

func init() {
	register("fig18", "Sorting vs streaming, one thread (paper Figure 18)", runFig18)
	register("fig19", "In-memory BFS vs optimized baselines (paper Figure 19)", runFig19)
	register("fig20", "Ligra comparison incl. pre-processing (paper Figure 20)", runFig20)
	register("fig21", "Memory reference profile for BFS (paper Figure 21)", runFig21)
}

func runFig18(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	lo, hi := cfg.pick(14, 10), cfg.pick(17, 12)
	t := &Table{
		ID:      "fig18",
		Title:   "single-threaded: sorting the edge list vs computing on it unsorted",
		Columns: []string{"scale", "quicksort", "counting sort", "WCC", "Pagerank", "BFS", "SpMV"},
	}
	one := cfg
	one.Threads = 1
	for scale := lo; scale <= hi; scale++ {
		src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 5, Undirected: true})
		edges, err := core.Materialize(src)
		if err != nil {
			return nil, err
		}
		n := src.NumVertices()

		t0 := time.Now()
		tmp := make([]core.Edge, len(edges))
		copy(tmp, edges)
		sort.Slice(tmp, func(i, j int) bool { return tmp[i].Src < tmp[j].Src })
		qs := time.Since(t0)

		t1 := time.Now()
		baseline.BuildCountingSort(n, edges)
		cs := time.Since(t1)

		row := []string{fmt.Sprintf("%d", scale), fmtDur(qs), fmtDur(cs)}
		for _, a := range scalingAlgos() {
			s, err := a.run(src, one)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(s.TotalTime))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper Figure 18: sorting scales worse than streaming; at the largest scale X-Stream finishes every benchmark before either sort completes",
	)
	return t, nil
}

func runFig19(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scale := cfg.pick(17, 12)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 8, Seed: 6, Undirected: true})
	edges, err := core.Materialize(src)
	if err != nil {
		return nil, err
	}
	n := src.NumVertices()
	g := baseline.BuildCountingSort(n, edges)
	gt := baseline.Transpose(n, edges)

	t := &Table{
		ID:      "fig19",
		Title:   fmt.Sprintf("BFS on a scale-free graph (%d vertices / %d edges)", n, len(edges)),
		Columns: []string{"threads", "local queue", "hybrid", "X-Stream"},
	}
	for th := 1; th <= runtime.GOMAXPROCS(0); th *= 2 {
		t0 := time.Now()
		baseline.LocalQueueBFS(g, 0, th)
		lq := time.Since(t0)

		t1 := time.Now()
		baseline.HybridBFS(g, gt, 0, th)
		hy := time.Since(t1)

		c := cfg
		c.Threads = th
		s, err := runMem(src, algorithms.NewBFS(0), c)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", th), fmtDur(lq), fmtDur(hy), fmtDur(s.TotalTime),
		})
	}
	t.Notes = append(t.Notes,
		"paper Figure 19: X-Stream beats both optimized random-access BFS variants at every thread count, with the gap narrowing as threads close the sequential/random bandwidth gap (baselines here exclude their index build; X-Stream includes its full setup)",
	)
	return t, nil
}

func runFig20(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scale := cfg.pick(17, 12)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 7})
	edges, err := core.Materialize(src)
	if err != nil {
		return nil, err
	}
	n := src.NumVertices()

	t := &Table{
		ID:      "fig20",
		Title:   "Ligra-like engine vs X-Stream on a twitter-like graph",
		Columns: []string{"algorithm", "threads", "Ligra (s)", "X-Stream (s)", "Ligra-pre (s)"},
	}
	for th := 1; th <= runtime.GOMAXPROCS(0); th *= 2 {
		l := baseline.NewLigra(n, edges, th)

		t0 := time.Now()
		l.BFS(0)
		lb := time.Since(t0)
		c := cfg
		c.Threads = th
		sb, err := runMem(src, algorithms.NewBFS(0), c)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"BFS", fmt.Sprintf("%d", th),
			fmt.Sprintf("%.2f", lb.Seconds()),
			fmt.Sprintf("%.2f", sb.TotalTime.Seconds()),
			fmt.Sprintf("%.2f", l.PreprocessTime.Seconds()),
		})

		t1 := time.Now()
		l.PageRank(5)
		lp := time.Since(t1)
		sp, err := runMem(src, algorithms.NewPageRank(5), c)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"Pagerank", fmt.Sprintf("%d", th),
			fmt.Sprintf("%.2f", lp.Seconds()),
			fmt.Sprintf("%.2f", sp.TotalTime.Seconds()),
			fmt.Sprintf("%.2f", l.PreprocessTime.Seconds()),
		})
	}
	t.Notes = append(t.Notes,
		"paper Figure 20: Ligra's BFS proper is 10-20x faster but its pre-processing (sort + transpose for direction reversal) dominates end-to-end time; for Pagerank X-Stream wins outright",
	)
	return t, nil
}

func runFig21(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scale := cfg.pick(16, 12)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 8, Undirected: true})
	edges, err := core.Materialize(src)
	if err != nil {
		return nil, err
	}
	n := src.NumVertices()
	g := baseline.BuildCountingSort(n, edges)
	gt := baseline.Transpose(n, edges)

	t := &Table{
		ID:    "fig21",
		Title: "memory reference profile, BFS (substitute for the paper's PMU IPC numbers)",
		Columns: []string{"system", "runtime", "random refs", "sequential refs",
			"ns/edge-touch"},
	}

	s, err := runMem(src, algorithms.NewBFS(0), cfg)
	if err != nil {
		return nil, err
	}
	touchesX := s.RandomRefs + s.SequentialRefs
	t.Rows = append(t.Rows, []string{
		"X-Stream",
		fmtDur(s.TotalTime),
		fmt.Sprintf("%d", s.RandomRefs),
		fmt.Sprintf("%d", s.SequentialRefs),
		fmt.Sprintf("%.1f", float64(s.TotalTime.Nanoseconds())/float64(touchesX)),
	})

	t0 := time.Now()
	baseline.LocalQueueBFS(g, 0, cfg.Threads)
	lq := time.Since(t0)
	// The index-based traversal touches each edge once, randomly.
	t.Rows = append(t.Rows, []string{
		"local queue [33-style]",
		fmtDur(lq),
		fmt.Sprintf("%d", len(edges)),
		"0",
		fmt.Sprintf("%.1f", float64(lq.Nanoseconds())/float64(len(edges))),
	})

	t1 := time.Now()
	baseline.HybridBFS(g, gt, 0, cfg.Threads)
	hy := time.Since(t1)
	t.Rows = append(t.Rows, []string{
		"hybrid [Ligra-style]",
		fmtDur(hy),
		fmt.Sprintf("~%d", len(edges)),
		"0",
		fmt.Sprintf("%.1f", float64(hy.Nanoseconds())/float64(len(edges))),
	})

	t.Notes = append(t.Notes,
		"substitution: Go cannot read PMU counters (paper reports IPC 1.3-1.39 for X-Stream vs 0.47-0.75); instead we report the measurable halves of the same claim — X-Stream touches more data overall but mostly sequentially, so each touch is cheaper (lower ns/edge-touch)",
	)
	return t, nil
}
