package bench

import "testing"

// TestFigTransportExchangeable pins the transport tentpole's acceptance
// criterion: the runner itself asserts that the loopback exchange matches
// the builtin transports bit-for-bit and leaves every engine-side work
// metric unchanged, so a passing run is a correctness witness. The test
// checks the gated metrics exist, are sane, and are run-deterministic —
// the property the BENCH_baseline gate depends on.
func TestFigTransportExchangeable(t *testing.T) {
	tab, err := runFigTransport(Config{Quick: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		v, ok := tab.Metrics[name]
		if !ok {
			t.Fatalf("missing metric %s", name)
		}
		return v
	}
	for _, m := range []string{
		"wcc_mem_updates_sent_builtin", "wcc_mem_transport_batches_builtin",
		"wcc_mem_transport_bytes_builtin", "bfs_disk_updates_sent_builtin",
		"bfs_disk_transport_batches_builtin", "bfs_disk_transport_bytes_builtin",
	} {
		if v := get(m); v <= 0 {
			t.Fatalf("%s = %v, want > 0", m, v)
		}
	}

	// The pinned transport counters must be deterministic across runs, or
	// the baseline gate would flap.
	tab2, err := runFigTransport(Config{Quick: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for m, v := range tab.Metrics {
		if v2 := tab2.Metrics[m]; v != v2 {
			t.Errorf("%s not deterministic: %v then %v", m, v, v2)
		}
	}
}
