package bench

import (
	"fmt"
	"testing"
)

// TestFigCombineReduction pins the experiment's headline claim (and the
// PR's acceptance criterion): with the combiner enabled, the update-stream
// volume shrinks by at least 25% for PageRank on an RMAT graph, on both
// engines. Quick scale keeps the test fast; the fold's merge rate only
// improves at full scale, where partitions hold more duplicate
// destinations per shuffled buffer.
func TestFigCombineReduction(t *testing.T) {
	tab, err := runFigCombine(Config{Quick: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"mem", "disk"} {
		on := tab.Metrics[fmt.Sprintf("pagerank_%s_update_bytes_on", engine)]
		off := tab.Metrics[fmt.Sprintf("pagerank_%s_update_bytes_off", engine)]
		if off <= 0 {
			t.Fatalf("%s: missing baseline volume", engine)
		}
		if on > 0.75*off {
			t.Fatalf("%s: combined update stream %.0f bytes, want <= 75%% of %.0f", engine, on, off)
		}
	}
	// Combining must never change how many updates scatter produces.
	for _, r := range tab.Rows {
		if len(r) < 4 || r[3] == "0" {
			t.Fatalf("row %v: no updates recorded", r)
		}
	}
}
