package bench

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
	"repro/internal/graphio"
	"repro/internal/memengine"
	"repro/internal/partition2ps"
)

// figfrontier quantifies what frontier-aware selective streaming buys on
// X-Stream's worst case: a traversal over a high-diameter graph, where the
// paper's stream-everything design re-reads the whole edge list once per
// frontier hop (§5.3) and almost all of it is wasted. The workload is BFS
// over a clique-chain — hundreds of iterations, frontier never wider than
// a couple of cliques — run with selective scheduling off and on, on both
// engines. The headline metrics are EdgesStreamed (and, out of core,
// BytesRead: a skipped partition's edge file is never read), which must
// drop multi-x; EdgesSkipped/PartitionsSkipped/TilesSkipped decompose the
// elision. A second input shuffles the vertex IDs and re-runs the
// in-memory engine under range vs 2PS partitioning: the locality
// partitioner re-packs cliques into contiguous ranges, concentrating the
// frontier into fewer partitions and making skips more likely — the
// composition of PR 1's partitioner layer with this PR's scheduler. All
// metrics are deterministic work measures, gated by cmd/benchgate.
func init() {
	register("figfrontier", "Frontier-aware selective streaming: BFS skips on a high-diameter graph", runFigFrontier)
}

func runFigFrontier(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cliques := cfg.pick(384, 48)
	cliqueSize := cfg.pick(16, 8)
	memParts := cfg.pick(64, 16)
	diskParts := 16
	tile := cfg.pick(2048, 64)

	chain := graphgen.CliqueChain(cliques, cliqueSize, 11)
	shuffled := graphio.Relabeled(chain, randomPerm(chain.NumVertices(), 11))

	t := &Table{
		ID: "figfrontier",
		Title: fmt.Sprintf("Selective streaming, clique-chain %d x %d (diameter ~%d), K=%d",
			cliques, cliqueSize, 2*cliques, memParts),
		Columns: []string{"graph", "engine", "partitioner", "selective", "iters",
			"streamed", "skipped", "parts-skipped", "tiles-skipped", "bytes-read", "total"},
	}

	addRow := func(graph string, s core.Stats, selective bool) {
		mode := "off"
		if selective {
			mode = "on"
		}
		t.Rows = append(t.Rows, []string{
			graph, s.Engine, s.Partitioner, mode,
			fmt.Sprintf("%d", s.Iterations),
			fmt.Sprintf("%d", s.EdgesStreamed),
			fmt.Sprintf("%d", s.EdgesSkipped),
			fmt.Sprintf("%d", s.PartitionsSkipped),
			fmt.Sprintf("%d", s.TilesSkipped),
			fmt.Sprintf("%d", s.BytesRead),
			fmtDur(s.TotalTime),
		})
	}

	// In-memory and out-of-core engines, selective off vs on.
	streamedBy := map[string]float64{}
	for _, selective := range []bool{false, true} {
		sel := selective
		mode := "off"
		if sel {
			mode = "on"
		}
		ms, err := runMem(chain, algorithms.NewBFS(0), cfg, func(mc *memengine.Config) {
			mc.Partitions = memParts
			mc.Selective = sel
			mc.TileEdges = tile
		})
		if err != nil {
			return nil, fmt.Errorf("mem selective=%v: %w", sel, err)
		}
		addRow("chain", ms, sel)
		t.SetMetric("bfs_mem_edges_streamed_"+mode, float64(ms.EdgesStreamed))
		streamedBy["mem_"+mode] = float64(ms.EdgesStreamed)

		ds, err := runDisk(chain, algorithms.NewBFS(0), ssdDev("frontier", 0), cfg, func(dc *diskengine.Config) {
			dc.Partitions = diskParts
			dc.Selective = sel
			dc.TileEdges = tile
			dc.IOUnit = 32 << 10
		})
		if err != nil {
			return nil, fmt.Errorf("disk selective=%v: %w", sel, err)
		}
		addRow("chain", ds, sel)
		t.SetMetric("bfs_disk_edges_streamed_"+mode, float64(ds.EdgesStreamed))
		t.SetMetric("bfs_disk_bytes_read_"+mode, float64(ds.BytesRead))
		streamedBy["disk_"+mode] = float64(ds.EdgesStreamed)
		streamedBy["diskbytes_"+mode] = float64(ds.BytesRead)
	}
	for _, eng := range []string{"mem", "disk"} {
		if off := streamedBy[eng+"_off"]; off > 0 {
			on := streamedBy[eng+"_on"]
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: selective streams %.2fx fewer edges (%.0f -> %.0f)", eng, off/on, off, on))
		}
	}
	if off := streamedBy["diskbytes_off"]; off > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"disk: selective reads %.2fx fewer bytes (%.0f -> %.0f)",
			off/streamedBy["diskbytes_on"], off, streamedBy["diskbytes_on"]))
	}

	// Composition with the locality partitioner: on a shuffled input the
	// range split scatters every clique across partitions (frontiers touch
	// many), while 2PS re-clusters them so selective skips recover.
	shufBy := map[string]float64{}
	for _, v := range []struct {
		name string
		part core.Partitioner
	}{
		{"range", core.RangePartitioner{}},
		{"2ps", partition2ps.New()},
	} {
		s, err := runMem(shuffled, algorithms.NewBFS(0), cfg, func(mc *memengine.Config) {
			mc.Partitions = memParts
			mc.Partitioner = v.part
			mc.Selective = true
			mc.TileEdges = tile
		})
		if err != nil {
			return nil, fmt.Errorf("shuffled/%s: %w", v.name, err)
		}
		addRow("chain-shuffled", s, true)
		t.SetMetric("bfs_shuffled_mem_edges_streamed_"+v.name, float64(s.EdgesStreamed))
		shufBy[v.name] = float64(s.EdgesStreamed)
	}
	if r := shufBy["range"]; r > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"shuffled input: 2PS-packed frontiers stream %.2fx the edges of range (%.0f vs %.0f)",
			shufBy["2ps"]/r, shufBy["2ps"], r))
	}
	return t, nil
}
