package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/iomodel"
	"repro/internal/membench"
	"repro/internal/storage"
)

func init() {
	register("fig08", "Memory bandwidth vs. thread count (paper Figure 8)", runFig08)
	register("fig09", "Device bandwidth vs. request size (paper Figure 9)", runFig09)
	register("fig10", "Datasets and their stand-ins (paper Figure 10)", runFig10)
	register("fig11", "Sequential vs. random access bandwidth (paper Figure 11)", runFig11)
	register("fig26", "I/O-model cost bounds (paper Figure 26)", runFig26)
}

func runFig08(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	buf := 64 << 20
	dur := 300 * time.Millisecond
	if cfg.Quick {
		buf = 16 << 20
		dur = 60 * time.Millisecond
	}
	t := &Table{
		ID:      "fig08",
		Title:   "memory bandwidth vs threads (GB/s)",
		Columns: []string{"threads", "read GB/s", "write GB/s"},
	}
	max := runtime.GOMAXPROCS(0)
	for th := 1; th <= max; th++ {
		r := membench.SequentialRead(th, buf, dur)
		w := membench.SequentialWrite(th, buf, dur)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", th),
			fmt.Sprintf("%.1f", r.BPS/1e9),
			fmt.Sprintf("%.1f", w.BPS/1e9),
		})
	}
	t.Notes = append(t.Notes,
		"paper: saturates ~25 GB/s read at 16 cores on a 32-core Opteron; here the curve is bounded by this machine's cores",
	)
	return t, nil
}

func runFig09(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig09",
		Title:   "simulated device bandwidth vs request size (MB/s)",
		Columns: []string{"request", "ssd read", "ssd write", "hdd read", "hdd write"},
	}
	ssd := storage.NewSim(storage.SSDParams("ssd", 2, 0)).(storage.CostModel)
	hdd := storage.NewSim(storage.HDDParams("hdd", 2, 0)).(storage.CostModel)
	bw := func(m storage.CostModel, n int, write bool) string {
		c := m.Cost(0, n, write, true)
		return fmtMBps(float64(n) / c.Seconds())
	}
	for _, n := range []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20} {
		t.Rows = append(t.Rows, []string{
			fmtBytes(n),
			bw(ssd, n, false), bw(ssd, n, true),
			bw(hdd, n, false), bw(hdd, n, true),
		})
	}
	t.Notes = append(t.Notes,
		"model calibrated to the paper's fio measurements: saturation by 16M requests, RAID-0 kick-in past the 512K stripe",
		"paper peaks: ssd 667/576 MB/s, hdd 328/316 MB/s",
	)
	return t, nil
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dk", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func runFig10(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "datasets (stand-ins for the paper's real-world graphs)",
		Columns: []string{"name", "stands in for", "vertices", "edges", "type"},
	}
	all := append(memDatasets(cfg), oocDatasets(cfg)...)
	all = append(all, netflixLike(cfg))
	for _, d := range all {
		t.Rows = append(t.Rows, []string{
			d.Name, d.StandInFor,
			fmt.Sprintf("%d", d.Source.NumVertices()),
			fmt.Sprintf("%d", d.Source.NumEdges()),
			d.Kind,
		})
	}
	t.Notes = append(t.Notes,
		"real datasets (Twitter 1.4B edges, yahoo-web 6.6B, ...) are not redistributable; RMAT/grid/bipartite stand-ins preserve the structural property each experiment depends on (see DESIGN.md)",
	)
	return t, nil
}

func runFig11(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	buf := 64 << 20
	dur := 300 * time.Millisecond
	if cfg.Quick {
		buf = 16 << 20
		dur = 60 * time.Millisecond
	}
	t := &Table{
		ID:      "fig11",
		Title:   "sequential vs random access (MB/s)",
		Columns: []string{"medium", "rand read", "seq read", "rand write", "seq write"},
	}
	addRAM := func(threads int) {
		rr := membench.RandomRead(threads, buf, dur)
		sr := membench.SequentialRead(threads, buf, dur)
		rw := membench.RandomWrite(threads, buf, dur)
		sw := membench.SequentialWrite(threads, buf, dur)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("RAM (%d core)", threads),
			fmtMBps(rr.BPS), fmtMBps(sr.BPS), fmtMBps(rw.BPS), fmtMBps(sw.BPS),
		})
	}
	addRAM(1)
	if n := runtime.GOMAXPROCS(0); n > 1 {
		addRAM(n)
	}
	addSim := func(name string, p storage.SimParams) {
		m := storage.NewSim(p).(storage.CostModel)
		bw := func(n int, write, seq bool) string {
			return fmtMBps(float64(n) / m.Cost(0, n, write, seq).Seconds())
		}
		t.Rows = append(t.Rows, []string{
			name,
			bw(4<<10, false, false), bw(16<<20, false, true),
			bw(4<<10, true, false), bw(16<<20, true, true),
		})
	}
	addSim("SSD (sim)", storage.SSDParams("s", 2, 0))
	addSim("HDD (sim)", storage.HDDParams("h", 2, 0))
	t.Notes = append(t.Notes,
		"paper Figure 11: RAM(1) 567/2605/1057/2248, RAM(16) 14198/25658/10044/13384, SSD 22.5/667/48.6/576, disk 0.6/328/2/316",
		"RAM rows measured on this machine; SSD/HDD rows from the calibrated device model",
	)
	return t, nil
}

func runFig26(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "fig26",
		Title: "I/O-model bounds, numeric instantiation",
		Columns: []string{"approach", "partitions", "pre-processing I/Os",
			"one iteration I/Os", "all iterations I/Os"},
	}
	// A billion-edge graph in words: |V|=64M, |E|=1G, M=128M, B=1K, D=16.
	p := iomodel.Params{V: 64 << 20, E: 1 << 30, U: 1 << 30, M: 1 << 27, B: 1 << 10, D: 16}
	if cfg.Quick {
		p = iomodel.Params{V: 1 << 20, E: 16 << 20, U: 16 << 20, M: 1 << 22, B: 1 << 10, D: 16}
	}
	t.Rows = append(t.Rows,
		[]string{"X-Stream", fmt.Sprintf("%d", iomodel.XStreamPartitions(p)), "none",
			fmt.Sprintf("%.3g", iomodel.XStreamOneIter(p)),
			fmt.Sprintf("%.3g", iomodel.XStreamTotal(p))},
		[]string{"Graphchi", fmt.Sprintf("%d", iomodel.GraphChiShards(p)), "sorting",
			fmt.Sprintf("%.3g", iomodel.GraphChiOneIter(p)),
			fmt.Sprintf("%.3g", iomodel.GraphChiTotal(p))},
		[]string{"Sort+random access", "-",
			fmt.Sprintf("%.3g", iomodel.SortPreprocess(p)),
			"-",
			fmt.Sprintf("%.3g", iomodel.SortTotal(p))},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("params: |V|=%d |E|=%d M=%d B=%d D=%d (words)", p.V, p.E, p.M, p.B, p.D),
		"formulas from paper Figure 26: X-Stream needs no pre-processing, fewer partitions than Graphchi shards, and beats sorting when D is modest",
	)
	return t, nil
}
