// Package bench regenerates every table and figure of the paper's
// evaluation (§5). Each experiment is a registered Runner producing a
// Table; cmd/xbench prints them and EXPERIMENTS.md records the outcomes
// next to the paper's numbers.
//
// Absolute numbers differ from the paper's (different CPU, simulated
// devices, scaled-down graphs); what each runner is built to reproduce is
// the *shape*: who wins, by roughly what factor, and where behaviour
// changes.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
	"repro/internal/memengine"
	"repro/internal/storage"
)

// Config tunes experiment scale.
type Config struct {
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
	// Quick shrinks workloads to smoke-test size.
	Quick bool
	// TimeScale paces simulated devices for the I/O-bound figures
	// (0 = per-figure default). 1.0 is real time.
	TimeScale float64
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	return c
}

func (c Config) timeScale(def float64) float64 {
	if c.TimeScale > 0 {
		return c.TimeScale
	}
	if c.Quick {
		return def / 4
	}
	return def
}

// pick returns full unless Quick.
func (c Config) pick(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Table is one regenerated figure or table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Metrics are machine-readable outcomes for the perf-regression CI
	// gate (cmd/xbench -json / cmd/benchgate). By convention every metric
	// is a deterministic work measure where lower is better — record
	// counts, stream bytes, cross fractions — never wall-clock time,
	// which CI runners make too noisy to gate on.
	Metrics map[string]float64
}

// SetMetric records one gateable metric, allocating the map on first use.
func (t *Table) SetMetric(name string, v float64) {
	if t.Metrics == nil {
		t.Metrics = map[string]float64{}
	}
	t.Metrics[name] = v
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner regenerates one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Table, error)
}

var registry []Runner

func register(id, title string, run func(cfg Config) (*Table, error)) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// Runners returns all registered experiments in figure order.
func Runners() []Runner {
	out := make([]Runner, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the runner with the given ID.
func Get(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// ---- shared run helpers ----

// runMem executes a program on the in-memory engine.
func runMem[V, M any](src core.EdgeSource, p core.Program[V, M], cfg Config, mods ...func(*memengine.Config)) (core.Stats, error) {
	mc := memengine.Config{Threads: cfg.Threads}
	for _, m := range mods {
		m(&mc)
	}
	res, err := memengine.Run(src, p, mc)
	if err != nil {
		return core.Stats{}, err
	}
	return res.Stats, nil
}

// runDisk executes a program on the out-of-core engine over dev.
func runDisk[V, M any](src core.EdgeSource, p core.Program[V, M], dev storage.Device, cfg Config, mods ...func(*diskengine.Config)) (core.Stats, error) {
	dc := diskengine.Config{
		Device:  dev,
		Threads: cfg.Threads,
		IOUnit:  256 << 10,
	}
	for _, m := range mods {
		m(&dc)
	}
	res, err := diskengine.Run(src, p, dc)
	if err != nil {
		return core.Stats{}, err
	}
	return res.Stats, nil
}

// fmtDur formats a duration the way the paper's tables do.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%dh %dm %ds", int(d.Hours()), int(d.Minutes())%60, int(d.Seconds())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm %ds", int(d.Minutes()), int(d.Seconds())%60)
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
}

func fmtMBps(bps float64) string { return fmt.Sprintf("%.0f", bps/1e6) }

// ---- shared workloads ----

// memDatasets returns the in-memory stand-ins at benchmark scale.
func memDatasets(cfg Config) []graphgen.Dataset {
	s := cfg.pick(16, 11)
	grid := cfg.pick(320, 48)
	return []graphgen.Dataset{
		{Name: "amazon-like", StandInFor: "amazon0601", Kind: "directed",
			Source: graphgen.RMAT(graphgen.RMATConfig{Scale: s - 2, EdgeFactor: 8, Seed: 42})},
		{Name: "patents-like", StandInFor: "cit-Patents", Kind: "directed",
			Source: graphgen.RMAT(graphgen.RMATConfig{Scale: s, EdgeFactor: 4, Seed: 43})},
		{Name: "livejournal-like", StandInFor: "soc-livejournal", Kind: "directed",
			Source: graphgen.RMAT(graphgen.RMATConfig{Scale: s, EdgeFactor: 16, Seed: 44})},
		{Name: "dimacs-like", StandInFor: "dimacs-usa", Kind: "undirected",
			Source: graphgen.Grid(grid, grid, 45)},
	}
}

// oocDatasets returns the out-of-core stand-ins at benchmark scale.
func oocDatasets(cfg Config) []graphgen.Dataset {
	s := cfg.pick(18, 12)
	return []graphgen.Dataset{
		{Name: "twitter-like", StandInFor: "Twitter", Kind: "directed",
			Source: graphgen.RMAT(graphgen.RMATConfig{Scale: s, EdgeFactor: 16, Seed: 46})},
		{Name: "friendster-like", StandInFor: "Friendster", Kind: "undirected",
			Source: graphgen.RMAT(graphgen.RMATConfig{Scale: s - 1, EdgeFactor: 16, Seed: 47, Undirected: true})},
	}
}

// netflixLike returns the bipartite stand-in at benchmark scale.
func netflixLike(cfg Config) graphgen.Dataset {
	users := cfg.pick(60000, 2000)
	items := cfg.pick(4000, 200)
	ratings := int64(cfg.pick(1_000_000, 20_000))
	return graphgen.Dataset{Name: "netflix-like", StandInFor: "Netflix", Kind: "bipartite",
		Source: graphgen.Bipartite(users, items, ratings, 49)}
}

// ssdDev and hddDev build fresh calibrated simulated devices.
func ssdDev(name string, scale float64) storage.Device {
	return storage.NewSim(storage.SSDParams(name, 2, scale))
}

func hddDev(name string, scale float64) storage.Device {
	return storage.NewSim(storage.HDDParams(name, 2, scale))
}
