package bench

import "testing"

// TestFigObsTracingIsFree pins the observability tentpole's acceptance
// criterion: the runner itself asserts that traced and untraced runs agree
// on every deterministic work metric and that per-iteration profiles sum
// exactly, so a passing run is a correctness witness. The test checks the
// gated metrics exist and are sane.
func TestFigObsTracingIsFree(t *testing.T) {
	tab, err := runFigObs(Config{Quick: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		v, ok := tab.Metrics[name]
		if !ok {
			t.Fatalf("missing metric %s", name)
		}
		return v
	}
	if v := get("pagerank_mem_edges_streamed_untraced"); v <= 0 {
		t.Fatalf("pagerank streamed %v edges", v)
	}
	if v := get("pagerank_mem_trace_spans"); v <= 0 {
		t.Fatalf("pagerank traced run recorded %v spans", v)
	}
	if v := get("bfs_disk_bytes_read_untraced"); v <= 0 {
		t.Fatalf("bfs read %v bytes", v)
	}
	if v := get("bfs_disk_trace_spans"); v <= 0 {
		t.Fatalf("bfs traced run recorded %v spans", v)
	}
	// Selective BFS must skip something, or the per-iteration slices of the
	// skip counters are trivially zero and gate nothing.
	if v := get("bfs_disk_edges_skipped_untraced"); v <= 0 {
		t.Fatalf("selective bfs skipped %v edges", v)
	}

	// Span-stream determinism: a second traced run of the same workload
	// must record exactly the same number of spans.
	tab2, err := runFigObs(Config{Quick: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"pagerank_mem_trace_spans", "bfs_disk_trace_spans"} {
		if tab.Metrics[m] != tab2.Metrics[m] {
			t.Errorf("%s not deterministic: %v then %v", m, tab.Metrics[m], tab2.Metrics[m])
		}
	}
}
