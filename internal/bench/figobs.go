package bench

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
	"repro/internal/memengine"
	"repro/internal/obs"
)

// figobs prices the observability layer in work metrics: per-iteration
// profiling (Stats.Iters) is always on, and span tracing (core.Tracer) is
// an optional hook. Both must be free where it matters — the engines'
// deterministic work metrics. The workloads are dense PageRank on the
// in-memory engine and selective BFS on the out-of-core engine, each run
// untraced and traced.
//
// Three claims, each gated:
//   - tracing is work-free: the untraced and traced runs agree on every
//     deterministic work metric (asserted field-by-field via reflection —
//     a new Stats counter is covered automatically), and the untraced
//     numbers are pinned so the per-iteration bookkeeping itself cannot
//     drift the engines;
//   - the per-iteration profile is exact: each run's Iters work counters
//     sum to the cumulative Stats fields (asserted);
//   - the span stream is deterministic: a fixed workload emits a fixed
//     number of spans, pinned as a metric so tracer coverage cannot
//     silently shrink (or explode) with engine changes.
func init() {
	register("figobs", "Observability overhead: tracing changes no work metric, per-iteration profiles sum exactly", runFigObs)
}

// workMetrics flattens every deterministic numeric counter of a Stats via
// reflection — int/int64/float64 fields, excluding durations (wall time is
// never gated) and the Iters profile itself.
func workMetrics(s core.Stats) map[string]float64 {
	out := map[string]float64{}
	v := reflect.ValueOf(s)
	t := v.Type()
	durType := reflect.TypeOf(time.Duration(0))
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type == durType {
			continue
		}
		fv := v.Field(i)
		switch fv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			out[f.Name] = float64(fv.Int())
		case reflect.Float32, reflect.Float64:
			out[f.Name] = fv.Float()
		}
	}
	return out
}

// diffWorkMetrics returns the names of counters on which a and b disagree.
func diffWorkMetrics(a, b core.Stats) []string {
	am, bm := workMetrics(a), workMetrics(b)
	var diff []string
	for name, av := range am {
		if bv := bm[name]; av != bv {
			diff = append(diff, fmt.Sprintf("%s (%v vs %v)", name, av, bv))
		}
	}
	return diff
}

// checkIterSums asserts the exact-sum invariant of the per-iteration
// profile for the counters figobs gates.
func checkIterSums(name string, s core.Stats) error {
	if len(s.Iters) != s.Iterations-s.ResumedIterations {
		return fmt.Errorf("%s: %d Iters entries for %d executed iterations",
			name, len(s.Iters), s.Iterations-s.ResumedIterations)
	}
	var edges, skipped, sent int64
	for i := range s.Iters {
		edges += s.Iters[i].EdgesStreamed
		skipped += s.Iters[i].EdgesSkipped
		sent += s.Iters[i].UpdatesSent
	}
	if edges != s.EdgesStreamed || skipped != s.EdgesSkipped || sent != s.UpdatesSent {
		return fmt.Errorf("%s: per-iteration sums (edges %d, skipped %d, updates %d) disagree with cumulative (%d, %d, %d)",
			name, edges, skipped, sent, s.EdgesStreamed, s.EdgesSkipped, s.UpdatesSent)
	}
	return nil
}

func runFigObs(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scale := cfg.pick(14, 10)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 97})

	t := &Table{
		ID: "figobs",
		Title: fmt.Sprintf("Observability overhead in work metrics, RMAT scale %d",
			scale),
		Columns: []string{"workload", "tracing", "iters", "edges-streamed",
			"updates-sent", "bytes-read", "spans", "total"},
	}
	addRow := func(workload, tracing string, s core.Stats, spans int) {
		t.Rows = append(t.Rows, []string{
			workload, tracing,
			fmt.Sprintf("%d", s.Iterations),
			fmt.Sprintf("%d", s.EdgesStreamed),
			fmt.Sprintf("%d", s.UpdatesSent),
			fmt.Sprintf("%d", s.BytesRead),
			fmt.Sprintf("%d", spans),
			fmtDur(s.TotalTime),
		})
	}

	// Dense PageRank, in-memory: untraced vs traced.
	prOff, err := runMem(src, algorithms.NewPageRank(5), cfg,
		func(mc *memengine.Config) { mc.Partitions = 16 })
	if err != nil {
		return nil, fmt.Errorf("pagerank untraced: %w", err)
	}
	addRow("pagerank/mem", "off", prOff, 0)
	rec := obs.NewRecorder()
	prOn, err := runMem(src, algorithms.NewPageRank(5), cfg,
		func(mc *memengine.Config) { mc.Partitions = 16; mc.Tracer = rec })
	if err != nil {
		return nil, fmt.Errorf("pagerank traced: %w", err)
	}
	addRow("pagerank/mem", "on", prOn, rec.Len())
	if diff := diffWorkMetrics(prOff, prOn); len(diff) > 0 {
		return nil, fmt.Errorf("pagerank: tracing changed work metrics: %v", diff)
	}
	if err := checkIterSums("pagerank untraced", prOff); err != nil {
		return nil, err
	}
	if err := checkIterSums("pagerank traced", prOn); err != nil {
		return nil, err
	}
	if rec.Len() == 0 {
		return nil, fmt.Errorf("pagerank: traced run recorded no spans")
	}
	t.SetMetric("pagerank_mem_edges_streamed_untraced", float64(prOff.EdgesStreamed))
	t.SetMetric("pagerank_mem_updates_sent_untraced", float64(prOff.UpdatesSent))
	t.SetMetric("pagerank_mem_trace_spans", float64(rec.Len()))

	// Selective BFS, out of core: the frontier varies work per iteration,
	// so the per-iteration slices are non-trivial, and skipped partitions
	// must not emit phantom spans.
	mkDisk := func(tr core.Tracer) func(*diskengine.Config) {
		return func(dc *diskengine.Config) {
			dc.IOUnit = 32 << 10
			dc.Partitions = 16
			dc.Selective = true
			dc.Tracer = tr
		}
	}
	bfsOff, err := runDisk(src, algorithms.NewBFS(0), ssdDev("obs-off", 0), cfg, mkDisk(nil))
	if err != nil {
		return nil, fmt.Errorf("bfs untraced: %w", err)
	}
	addRow("bfs/disk", "off", bfsOff, 0)
	drec := obs.NewRecorder()
	bfsOn, err := runDisk(src, algorithms.NewBFS(0), ssdDev("obs-on", 0), cfg, mkDisk(drec))
	if err != nil {
		return nil, fmt.Errorf("bfs traced: %w", err)
	}
	addRow("bfs/disk", "on", bfsOn, drec.Len())
	if diff := diffWorkMetrics(bfsOff, bfsOn); len(diff) > 0 {
		return nil, fmt.Errorf("bfs: tracing changed work metrics: %v", diff)
	}
	if err := checkIterSums("bfs untraced", bfsOff); err != nil {
		return nil, err
	}
	if err := checkIterSums("bfs traced", bfsOn); err != nil {
		return nil, err
	}
	t.SetMetric("bfs_disk_bytes_read_untraced", float64(bfsOff.BytesRead))
	t.SetMetric("bfs_disk_edges_skipped_untraced", float64(bfsOff.EdgesSkipped))
	t.SetMetric("bfs_disk_trace_spans", float64(drec.Len()))

	t.Notes = append(t.Notes, fmt.Sprintf(
		"tracing recorded %d spans (pagerank/mem) and %d spans (bfs/disk) while every deterministic work metric stayed bit-identical to the untraced runs",
		rec.Len(), drec.Len()))
	return t, nil
}
