package bench

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graphgen"
	"repro/internal/membench"
	"repro/internal/storage"
	"time"
)

func init() {
	register("fig12a", "Algorithm runtimes across datasets and media (paper Figure 12a)", runFig12a)
	register("fig12b", "WCC iterations, streaming ratio, wasted edges (paper Figure 12b)", runFig12b)
	register("fig13", "HyperANF steps to cover the graph (paper Figure 13)", runFig13)
}

// algoColumn is one column of Figure 12a: a name and a runner for each
// engine. Algorithms needing symmetric inputs get them via Symmetrize.
type algoColumn struct {
	name string
	mem  func(d graphgen.Dataset, cfg Config) (core.Stats, error)
	disk func(d graphgen.Dataset, dev storage.Device, cfg Config) (core.Stats, error)
}

// sym returns an undirected view of directed datasets.
func sym(d graphgen.Dataset) core.EdgeSource {
	if d.Kind == "directed" {
		return core.Symmetrize(d.Source)
	}
	return d.Source
}

func algoColumns() []algoColumn {
	mk := func(memRun func(d graphgen.Dataset, cfg Config) (core.Stats, error),
		diskRun func(d graphgen.Dataset, dev storage.Device, cfg Config) (core.Stats, error),
		name string) algoColumn {
		return algoColumn{name: name, mem: memRun, disk: diskRun}
	}
	return []algoColumn{
		mk(func(d graphgen.Dataset, cfg Config) (core.Stats, error) {
			return runMem(sym(d), algorithms.NewWCC(), cfg)
		}, func(d graphgen.Dataset, dev storage.Device, cfg Config) (core.Stats, error) {
			return runDisk(sym(d), algorithms.NewWCC(), dev, cfg)
		}, "WCC"),
		mk(func(d graphgen.Dataset, cfg Config) (core.Stats, error) {
			return runMem(d.Source, algorithms.NewSCC(), cfg)
		}, func(d graphgen.Dataset, dev storage.Device, cfg Config) (core.Stats, error) {
			return runDisk(d.Source, algorithms.NewSCC(), dev, cfg)
		}, "SCC"),
		mk(func(d graphgen.Dataset, cfg Config) (core.Stats, error) {
			return runMem(sym(d), algorithms.NewSSSP(0), cfg)
		}, func(d graphgen.Dataset, dev storage.Device, cfg Config) (core.Stats, error) {
			return runDisk(sym(d), algorithms.NewSSSP(0), dev, cfg)
		}, "SSSP"),
		mk(func(d graphgen.Dataset, cfg Config) (core.Stats, error) {
			return runMem(sym(d), algorithms.NewMCST(), cfg)
		}, func(d graphgen.Dataset, dev storage.Device, cfg Config) (core.Stats, error) {
			return runDisk(sym(d), algorithms.NewMCST(), dev, cfg)
		}, "MCST"),
		mk(func(d graphgen.Dataset, cfg Config) (core.Stats, error) {
			return runMem(sym(d), algorithms.NewMIS(), cfg)
		}, func(d graphgen.Dataset, dev storage.Device, cfg Config) (core.Stats, error) {
			return runDisk(sym(d), algorithms.NewMIS(), dev, cfg)
		}, "MIS"),
		mk(func(d graphgen.Dataset, cfg Config) (core.Stats, error) {
			return runMem(d.Source, algorithms.NewConductance(nil), cfg)
		}, func(d graphgen.Dataset, dev storage.Device, cfg Config) (core.Stats, error) {
			return runDisk(d.Source, algorithms.NewConductance(nil), dev, cfg)
		}, "Cond."),
		mk(func(d graphgen.Dataset, cfg Config) (core.Stats, error) {
			return runMem(d.Source, algorithms.NewSpMV(), cfg)
		}, func(d graphgen.Dataset, dev storage.Device, cfg Config) (core.Stats, error) {
			return runDisk(d.Source, algorithms.NewSpMV(), dev, cfg)
		}, "SpMV"),
		mk(func(d graphgen.Dataset, cfg Config) (core.Stats, error) {
			return runMem(d.Source, algorithms.NewPageRank(5), cfg)
		}, func(d graphgen.Dataset, dev storage.Device, cfg Config) (core.Stats, error) {
			return runDisk(d.Source, algorithms.NewPageRank(5), dev, cfg)
		}, "Pagerank"),
		mk(func(d graphgen.Dataset, cfg Config) (core.Stats, error) {
			return runMem(d.Source, algorithms.NewBP(5), cfg)
		}, func(d graphgen.Dataset, dev storage.Device, cfg Config) (core.Stats, error) {
			return runDisk(d.Source, algorithms.NewBP(5), dev, cfg)
		}, "BP"),
	}
}

func runFig12a(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cols := algoColumns()
	t := &Table{
		ID:      "fig12a",
		Title:   "runtimes per algorithm, dataset and medium",
		Columns: append([]string{"medium/dataset"}, colNames(cols)...),
	}

	for _, d := range memDatasets(cfg) {
		row := []string{"mem/" + d.Name}
		for _, c := range cols {
			s, err := c.mem(d, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", c.name, d.Name, err)
			}
			row = append(row, fmtDur(s.TotalTime))
		}
		t.Rows = append(t.Rows, row)
	}

	ts := cfg.timeScale(0.2)
	for _, mediumDev := range []struct {
		medium string
		mk     func(string) storage.Device
	}{
		{"ssd", func(n string) storage.Device { return ssdDev(n, ts) }},
		{"disk", func(n string) storage.Device { return hddDev(n, ts) }},
	} {
		for _, d := range oocDatasets(cfg) {
			row := []string{mediumDev.medium + "/" + d.Name}
			for _, c := range cols {
				dev := mediumDev.mk(mediumDev.medium + d.Name + c.name)
				s, err := c.disk(d, dev, cfg)
				if err != nil {
					return nil, fmt.Errorf("%s on %s/%s: %w", c.name, mediumDev.medium, d.Name, err)
				}
				row = append(row, fmtDur(s.TotalTime))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"shape to match the paper: traversals on the high-diameter dimacs-like grid are 1-3 orders slower than on same-size scale-free graphs; ssd rows ≈ half of disk rows; Cond/SpMV cheapest, SCC/MIS/SSSP dearest",
		fmt.Sprintf("device pacing: TimeScale=%.2f of real time", ts),
	)
	return t, nil
}

func colNames(cols []algoColumn) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.name
	}
	return out
}

func runFig12b(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig12b",
		Title:   "WCC: iterations, runtime/streaming-time ratio, wasted edges",
		Columns: []string{"dataset", "medium", "# iters", "ratio", "wasted %"},
	}
	memBW := membench.SequentialRead(cfg.Threads, 32<<20, 150*time.Millisecond).BPS
	for _, d := range memDatasets(cfg) {
		s, err := runMem(sym(d), algorithms.NewWCC(), cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d.Name, "mem",
			fmt.Sprintf("%d", s.Iterations),
			fmt.Sprintf("%.2f", s.Ratio(memBW)),
			fmt.Sprintf("%.0f", 100*s.WastedFraction()),
		})
	}
	ts := cfg.timeScale(1.0)
	for _, d := range oocDatasets(cfg) {
		dev := ssdDev("f12b"+d.Name, ts)
		s, err := runDisk(sym(d), algorithms.NewWCC(), dev, cfg)
		if err != nil {
			return nil, err
		}
		// Out of core the relevant streaming floor is the device: bytes
		// moved at the device's sequential bandwidth (scaled like the
		// device itself is).
		devBW := 667e6 * ts
		ratio := float64(s.TotalTime) / (float64(s.BytesRead+s.BytesWritten) / devBW * float64(time.Second))
		t.Rows = append(t.Rows, []string{
			d.Name, "ssd",
			fmt.Sprintf("%d", s.Iterations),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%.0f", 100*s.WastedFraction()),
		})
	}
	t.Notes = append(t.Notes,
		"paper: dimacs needs thousands of iterations (6263); in-memory ratios 1.9-2.6; out-of-core ratios ~1.0; wasted edges 50-98%",
	)
	return t, nil
}

func runFig13(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig13",
		Title:   "HyperANF steps to cover the graph (≈ diameter)",
		Columns: []string{"graph", "# steps", "paper analogue"},
	}
	grid := cfg.pick(96, 32)
	sets := []struct {
		name     string
		src      core.EdgeSource
		analogue string
	}{
		{"amazon-like", core.Symmetrize(graphgen.RMAT(graphgen.RMATConfig{Scale: cfg.pick(14, 10), EdgeFactor: 8, Seed: 42})), "amazon0601: 19"},
		{"patents-like", core.Symmetrize(graphgen.RMAT(graphgen.RMATConfig{Scale: cfg.pick(15, 10), EdgeFactor: 4, Seed: 43})), "cit-Patents: 20"},
		{"livejournal-like", core.Symmetrize(graphgen.RMAT(graphgen.RMATConfig{Scale: cfg.pick(15, 10), EdgeFactor: 16, Seed: 44})), "soc-livejournal: 15"},
		{fmt.Sprintf("dimacs-like (%dx%d grid)", grid, grid), graphgen.Grid(grid, grid, 45), "dimacs-usa: 8122"},
	}
	for _, s := range sets {
		prog := algorithms.NewHyperANF()
		if _, err := runMem(s.src, prog, cfg); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{s.name, fmt.Sprintf("%d", prog.Steps()), s.analogue})
	}
	t.Notes = append(t.Notes,
		"shape: scale-free stand-ins finish in a handful of steps; the grid needs hundreds — the structural diagnosis behind the Figure 12 traversal pathology",
	)
	return t, nil
}
