package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/algorithms"
)

// TestAllRunnersQuick executes every registered experiment at smoke-test
// scale: the full integration test of engines, algorithms, baselines and
// devices working together.
func TestAllRunnersQuick(t *testing.T) {
	cfg := Config{Quick: true, Threads: 2}
	for _, r := range Runners() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			start := time.Now()
			tab, err := r.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", r.ID)
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s row %d: %d cells, %d columns", r.ID, i, len(row), len(tab.Columns))
				}
			}
			var buf bytes.Buffer
			tab.Fprint(&buf)
			if !strings.Contains(buf.String(), tab.ID) {
				t.Fatalf("%s: render missing ID", r.ID)
			}
			t.Logf("%s ok in %v (%d rows)", r.ID, time.Since(start).Round(time.Millisecond), len(tab.Rows))
		})
	}
}

func TestRegistryShape(t *testing.T) {
	want := []string{
		"ablations", "fig08", "fig09", "fig10", "fig11", "fig12a", "fig12b",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "fig26",
		"figchecksum", "figcombine", "figcompress", "figfrontier",
		"figlocality", "figobs", "figshare", "figtransport",
	}
	got := Runners()
	if len(got) != len(want) {
		t.Fatalf("registry has %d runners, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.ID != want[i] {
			t.Fatalf("runner %d = %s, want %s", i, r.ID, want[i])
		}
	}
	if _, ok := Get("fig12a"); !ok {
		t.Fatal("Get(fig12a) failed")
	}
	if _, ok := Get("nonsense"); ok {
		t.Fatal("Get(nonsense) succeeded")
	}
}

func TestFig12aShape(t *testing.T) {
	// The central applicability claim behind Figures 12 and 13: traversal
	// algorithms on the high-diameter grid need 1-2 orders of magnitude
	// more scatter-gather iterations than on a same-size scale-free
	// graph, because each iteration advances the frontier a single hop.
	// Iteration counts are deterministic, so assert on those.
	cfg := Config{Quick: true, Threads: 2}
	var gridIters, ljIters int
	for _, d := range memDatasets(cfg) {
		if !strings.Contains(d.Name, "dimacs") && !strings.Contains(d.Name, "livejournal") {
			continue
		}
		s, err := runMem(sym(d), algorithms.NewWCC(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(d.Name, "dimacs") {
			gridIters = s.Iterations
		} else {
			ljIters = s.Iterations
		}
	}
	if gridIters == 0 || ljIters == 0 {
		t.Fatal("missing datasets")
	}
	if gridIters < 5*ljIters {
		t.Fatalf("traversal pathology not reproduced: grid %d iters vs lj %d iters", gridIters, ljIters)
	}
}
