package bench

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
)

// figchecksum prices the fault-tolerance layer in work metrics: read-path
// CRC32C verification of every on-disk artifact, and per-iteration
// checkpointing of vertex state. The workload is dense PageRank (every
// byte of every edge file re-read each iteration — the worst case for
// verification coverage) plus selective BFS over compressed tiles (the
// per-tile CRC path) over an RMAT graph on the simulated SSD.
//
// Three claims, each one a gated metric:
//   - verification is I/O-free: the checksums ride inside frames already
//     written, so the verified and NoVerify runs must read *identical*
//     physical bytes (asserted, and the verified coverage is pinned as
//     bytes-checksummed — a drop means part of the read path silently
//     stopped being verified);
//   - verification is result-free: verified and unverified vertex states
//     compare bit-for-bit;
//   - checkpointing costs only its snapshots: the write overhead is
//     pinned so checkpoint volume can't grow unnoticed.
//
// All metrics are deterministic work measures, gated by cmd/benchgate;
// wall time appears only for trend tracking.
func init() {
	register("figchecksum", "Checksummed artifacts and checkpoints: verification coverage and write overhead", runFigChecksum)
}

// figChecksumRun is one out-of-core run at figchecksum's fixed layout.
func figChecksumRun[V, M any](cfg Config, src core.EdgeSource, prog core.Program[V, M], mod func(*diskengine.Config)) (*diskengine.Result[V], error) {
	dc := diskengine.Config{
		Device:     ssdDev("checksum", 0),
		Threads:    cfg.Threads,
		IOUnit:     32 << 10,
		Partitions: 16,
	}
	mod(&dc)
	return diskengine.Run(src, prog, dc)
}

func runFigChecksum(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scale := cfg.pick(16, 12)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 83})

	t := &Table{
		ID: "figchecksum",
		Title: fmt.Sprintf("Checksummed artifacts and checkpoints, RMAT scale %d, K=16",
			scale),
		Columns: []string{"algorithm", "verify", "checkpoint", "iters",
			"bytes-read", "bytes-checksummed", "bytes-written", "total"},
	}

	addRow := func(algo string, s core.Stats, verify, ckpt bool) {
		onOff := func(b bool) string {
			if b {
				return "on"
			}
			return "off"
		}
		t.Rows = append(t.Rows, []string{
			algo, onOff(verify), onOff(ckpt),
			fmt.Sprintf("%d", s.Iterations),
			fmt.Sprintf("%d", s.BytesRead),
			fmt.Sprintf("%d", s.BytesChecksummed),
			fmt.Sprintf("%d", s.BytesWritten),
			fmtDur(s.TotalTime),
		})
	}

	// PageRank, verified (default) vs NoVerify: same physical reads, same
	// bits out, and the verified run's coverage is the headline metric.
	var prStats [2]core.Stats
	var prVerts [2][]algorithms.PRState
	for i, noVerify := range []bool{false, true} {
		res, err := figChecksumRun(cfg, src, algorithms.NewPageRank(5),
			func(dc *diskengine.Config) { dc.NoVerify = noVerify })
		if err != nil {
			return nil, fmt.Errorf("pagerank noverify=%v: %w", noVerify, err)
		}
		prStats[i] = res.Stats
		prVerts[i] = res.Vertices
		addRow("pagerank", res.Stats, !noVerify, false)
	}
	if prStats[0].ChecksumFailures != 0 {
		return nil, fmt.Errorf("pagerank: %d checksum failures on a healthy device", prStats[0].ChecksumFailures)
	}
	if prStats[0].BytesChecksummed == 0 {
		return nil, fmt.Errorf("pagerank: verified run checksummed nothing — read-path verification inactive")
	}
	if prStats[1].BytesChecksummed != 0 {
		return nil, fmt.Errorf("pagerank: NoVerify run still checksummed %d bytes", prStats[1].BytesChecksummed)
	}
	if prStats[0].BytesRead != prStats[1].BytesRead {
		return nil, fmt.Errorf("pagerank: verification changed physical reads (%d verified vs %d unverified) — checksums must ride inline",
			prStats[0].BytesRead, prStats[1].BytesRead)
	}
	for v := range prVerts[0] {
		if prVerts[0][v] != prVerts[1][v] {
			return nil, fmt.Errorf("pagerank vertex %d: verified %+v, unverified %+v — not bit-identical",
				v, prVerts[0][v], prVerts[1][v])
		}
	}
	t.SetMetric("pagerank_disk_bytes_read", float64(prStats[0].BytesRead))
	t.SetMetric("pagerank_disk_bytes_checksummed", float64(prStats[0].BytesChecksummed))

	// PageRank with checkpoints: the write overhead is exactly the
	// snapshot volume, pinned so it can't silently grow.
	ckptRes, err := figChecksumRun(cfg, src, algorithms.NewPageRank(5),
		func(dc *diskengine.Config) { dc.Checkpoint = true })
	if err != nil {
		return nil, fmt.Errorf("pagerank checkpoint: %w", err)
	}
	addRow("pagerank", ckptRes.Stats, true, true)
	overhead := ckptRes.Stats.BytesWritten - prStats[0].BytesWritten
	if overhead <= 0 {
		return nil, fmt.Errorf("pagerank: checkpointed run wrote %d bytes vs %d without — no snapshot volume recorded",
			ckptRes.Stats.BytesWritten, prStats[0].BytesWritten)
	}
	t.SetMetric("pagerank_checkpoint_bytes_written_overhead", float64(overhead))

	// Selective BFS over compressed tiles: the per-tile CRC path, where
	// verification covers the *encoded* bytes the planner actually reads.
	bfsRes, err := figChecksumRun(cfg, src, algorithms.NewBFS(0),
		func(dc *diskengine.Config) { dc.Selective = true; dc.CompressTiles = true })
	if err != nil {
		return nil, fmt.Errorf("bfs selective compressed: %w", err)
	}
	addRow("bfs", bfsRes.Stats, true, false)
	if bfsRes.Stats.BytesChecksummed == 0 {
		return nil, fmt.Errorf("bfs: compressed-tile run checksummed nothing")
	}
	t.SetMetric("bfs_selective_disk_bytes_checksummed", float64(bfsRes.Stats.BytesChecksummed))

	if r := float64(prStats[0].BytesRead); r > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"pagerank: verification covered %.0f%% of physical reads at zero extra I/O; checkpoints added %d written bytes (%.1f%% of the run's writes)",
			100*float64(prStats[0].BytesChecksummed)/r, overhead,
			100*float64(overhead)/float64(ckptRes.Stats.BytesWritten)))
	}
	return t, nil
}
