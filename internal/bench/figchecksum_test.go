package bench

import "testing"

// TestFigChecksumCoverage pins the fault-tolerance tentpole's acceptance
// criterion: on the dense PageRank rows read-path verification must cover
// every physical byte read (the edge and update streams are both framed,
// so anything less means a read path escaped the checksum layer), and
// checkpointing must record a positive but minority write overhead. The
// runner itself already asserts the zero-extra-I/O and bit-identity
// properties, so a passing run is also a correctness witness.
func TestFigChecksumCoverage(t *testing.T) {
	tab, err := runFigChecksum(Config{Quick: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		v, ok := tab.Metrics[name]
		if !ok {
			t.Fatalf("missing metric %s", name)
		}
		return v
	}
	read := get("pagerank_disk_bytes_read")
	checked := get("pagerank_disk_bytes_checksummed")
	if read <= 0 {
		t.Fatalf("pagerank read %v bytes", read)
	}
	if checked < read {
		t.Fatalf("verification covered %.0f of %.0f physical bytes read — a read path escaped the checksum layer",
			checked, read)
	}
	overhead := get("pagerank_checkpoint_bytes_written_overhead")
	if overhead <= 0 {
		t.Fatalf("checkpoint write overhead %v, want positive", overhead)
	}
	t.Logf("pagerank: %.0f bytes read, %.0f verified, %.0f checkpoint bytes written",
		read, checked, overhead)
	if v := get("bfs_selective_disk_bytes_checksummed"); v <= 0 {
		t.Fatalf("selective bfs over compressed tiles checksummed %v bytes", v)
	}
}
