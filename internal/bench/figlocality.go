package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graphgen"
	"repro/internal/graphio"
	"repro/internal/memengine"
	"repro/internal/partition2ps"
)

// figlocality quantifies what the partitioner layer buys: the fraction of
// updates that must cross streaming partitions in the shuffle (pure
// shuffle traffic) and the end-to-end time, for the paper's fixed range
// split versus the 2PS-style streaming clusterer of internal/partition2ps
// — plus the replication-aware composition: 2PS with HEP-style
// volume-balanced packing ("2psv") wrapped in hub replication ("+rep"),
// where high-in-degree vertices are mirrored so their cross-partition
// update flood collapses to per-partition syncs. The "2psv" row alone
// shows the cost of balancing volume on a power-law graph (the dense core
// gets spread, cross traffic rises); the "2psv+rep" row shows mirrors
// paying for it several times over.
//
// Two inputs expose the two regimes. "rmat" is the generator's native
// ordering, where the recursive quadrant construction already gives range
// partitioning considerable accidental locality — the partitioner's
// worst case. "rmat-shuffled" is the same graph under a random vertex
// permutation, the adversarial ordering §3 warns about (X-Stream never
// sorts, so it inherits whatever ordering the input arrives in); here
// range partitioning collapses to ~(1-1/K) cross traffic while 2PS
// recovers the structure.
func init() {
	register("figlocality", "Cross-partition update traffic: range vs 2PS vs replication-aware 2psv", runFigLocality)
}

func runFigLocality(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scale := cfg.pick(18, 10)
	parts := cfg.pick(64, 8)
	prIters := 5

	base := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 7})
	inputs := []struct {
		name string
		src  core.EdgeSource
	}{
		{"rmat", base},
		{"rmat-shuffled", graphio.Relabeled(base, randomPerm(base.NumVertices(), 7))},
	}

	t := &Table{
		ID:    "figlocality",
		Title: fmt.Sprintf("Locality-aware partitioning, RMAT scale %d, K=%d (in-memory engine)", scale, parts),
		Columns: []string{"graph", "algorithm", "partitioner", "cross-updates",
			"mirrors", "syncs", "combined", "update-bytes", "preproc", "scatter+shuffle", "total"},
	}

	type variant struct {
		name string
		part core.Partitioner
	}
	variants := []variant{
		{"range", core.RangePartitioner{}},
		{"2ps", partition2ps.New()},
		{"2psv", partition2ps.NewVolumeBalanced()},
		{"2psv+rep", core.NewReplicatingPartitioner(partition2ps.NewVolumeBalanced(), core.ReplicationConfig{})},
	}
	crossBy := map[string]float64{}

	for _, in := range inputs {
		for _, v := range variants {
			mod := func(mc *memengine.Config) {
				mc.Partitions = parts
				mc.Partitioner = v.part
			}
			prs, err := runMem(in.src, algorithms.NewPageRank(prIters), cfg, mod)
			if err != nil {
				return nil, fmt.Errorf("%s/%s pagerank: %w", in.name, v.name, err)
			}
			bfs, err := runMem(in.src, algorithms.NewBFS(0), cfg, mod)
			if err != nil {
				return nil, fmt.Errorf("%s/%s bfs: %w", in.name, v.name, err)
			}
			for algo, s := range map[string]core.Stats{"PageRank": prs, "BFS": bfs} {
				t.Rows = append(t.Rows, []string{
					in.name, algo, v.name,
					fmt.Sprintf("%.1f%%", 100*s.CrossFraction()),
					fmt.Sprintf("%d", s.MirroredVertices),
					fmt.Sprintf("%d", s.MirrorSyncUpdates),
					fmt.Sprintf("%.1f%%", 100*s.CombinedFraction()),
					fmt.Sprintf("%d", s.UpdateBytes),
					fmtDur(s.PreprocessTime),
					fmtDur(s.ScatterTime + s.ShuffleTime),
					fmtDur(s.TotalTime),
				})
			}
			crossBy[in.name+"/"+v.name] = prs.CrossFraction()
			t.SetMetric(fmt.Sprintf("pagerank_%s_%s_cross_fraction", in.name, v.name), prs.CrossFraction())
		}
		rng := crossBy[in.name+"/range"]
		ratio := func(v string) float64 {
			if rng > 0 {
				return crossBy[in.name+"/"+v] / rng
			}
			return 0
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: 2PS carries %.2fx the cross-partition traffic of range (%.1f%% vs %.1f%%)",
			in.name, ratio("2ps"), 100*crossBy[in.name+"/2ps"], 100*rng))
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: replication-aware 2psv+rep carries %.2fx (%.1f%%) — volume-balanced partitions AND less shuffle traffic than plain 2PS (%.2fx)",
			in.name, ratio("2psv+rep"), 100*crossBy[in.name+"/2psv+rep"], ratio("2ps")))
	}
	sortRows(t)
	return t, nil
}

// randomPerm builds a deterministic random vertex permutation — the
// adversarial input ordering.
func randomPerm(n int64, seed int64) []core.VertexID {
	perm := make([]core.VertexID, n)
	for i := range perm {
		perm[i] = core.VertexID(i)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// sortRows orders rows by (graph, algorithm, partitioner) for a stable
// table regardless of map iteration order.
func sortRows(t *Table) {
	rows := t.Rows
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rowLess(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func rowLess(a, b []string) bool {
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
