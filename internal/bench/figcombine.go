package bench

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
	"repro/internal/memengine"
)

// figcombine quantifies what the update-combining layer buys: the update
// stream is X-Stream's dominant cost (§3.2 — generated per edge, shuffled,
// gathered; written to and re-read from storage out of core), and a
// program whose updates form a semigroup (core.Combiner) lets the engines
// pre-aggregate it in two places — thread-private combining buffers at
// scatter time and a per-partition fold after the shuffle, the latter also
// shrinking the update files the out-of-core engine writes.
//
// PageRank (sum) and SSSP (min) cover the two canonical semigroups; both
// engines run each with the combiner on and off, and the table reports the
// post-combining update-stream volume next to the uncombined one. The
// equivalence suite at the repo root proves results are unchanged.
func init() {
	register("figcombine", "Update-stream pre-aggregation: combiner on vs off", runFigCombine)
}

func runFigCombine(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scale := cfg.pick(16, 10)
	parts := cfg.pick(64, 8)
	prIters := 5

	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 7})
	t := &Table{
		ID:    "figcombine",
		Title: fmt.Sprintf("Update combining, RMAT scale %d, K=%d", scale, parts),
		Columns: []string{"algorithm", "engine", "combine", "updates", "combined",
			"update-bytes", "cross-updates", "total"},
	}

	type run struct {
		algo   string
		engine string
		prog   func() any // new program per run: state is per-run
	}
	runs := []run{
		{"pagerank", "mem", func() any { return algorithms.NewPageRank(prIters) }},
		{"pagerank", "disk", func() any { return algorithms.NewPageRank(prIters) }},
		{"sssp", "mem", func() any { return algorithms.NewSSSP(0) }},
		{"sssp", "disk", func() any { return algorithms.NewSSSP(0) }},
	}

	volumes := map[string]float64{}
	for _, r := range runs {
		for _, combineOn := range []bool{false, true} {
			var s core.Stats
			var err error
			switch prog := r.prog().(type) {
			case *algorithms.PageRank:
				s, err = runCombineCase(src, prog, r.engine, parts, combineOn, cfg)
			case *algorithms.SSSP:
				s, err = runCombineCase(src, prog, r.engine, parts, combineOn, cfg)
			}
			if err != nil {
				return nil, fmt.Errorf("%s/%s combine=%v: %w", r.algo, r.engine, combineOn, err)
			}
			mode := "off"
			if combineOn {
				mode = "on"
			}
			key := fmt.Sprintf("%s_%s_update_bytes_%s", r.algo, r.engine, mode)
			t.SetMetric(key, float64(s.UpdateBytes))
			t.SetMetric(fmt.Sprintf("%s_%s_updates_sent", r.algo, r.engine), float64(s.UpdatesSent))
			if combineOn {
				t.SetMetric(fmt.Sprintf("%s_%s_cross_fraction", r.algo, r.engine), s.CrossFraction())
			}
			volumes[key] = float64(s.UpdateBytes)
			t.Rows = append(t.Rows, []string{
				r.algo, r.engine, mode,
				fmt.Sprintf("%d", s.UpdatesSent),
				fmt.Sprintf("%d", s.UpdatesCombined),
				fmt.Sprintf("%d", s.UpdateBytes),
				fmt.Sprintf("%.1f%%", 100*s.CrossFraction()),
				fmtDur(s.TotalTime),
			})
		}
		on := volumes[fmt.Sprintf("%s_%s_update_bytes_on", r.algo, r.engine)]
		off := volumes[fmt.Sprintf("%s_%s_update_bytes_off", r.algo, r.engine)]
		if off > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s/%s: combiner shrinks the update stream to %.2fx (%.1f%% saved)",
				r.algo, r.engine, on/off, 100*(1-on/off)))
		}
	}
	return t, nil
}

// runCombineCase executes prog on the requested engine with combining
// toggled.
func runCombineCase[V, M any](src core.EdgeSource, prog core.Program[V, M],
	engine string, parts int, combineOn bool, cfg Config) (core.Stats, error) {
	if engine == "mem" {
		return runMem(src, prog, cfg, func(mc *memengine.Config) {
			mc.Partitions = parts
			mc.NoCombine = !combineOn
		})
	}
	return runDisk(src, prog, ssdDev("combine", 0), cfg, func(dc *diskengine.Config) {
		dc.Partitions = pickDiskParts(parts)
		dc.NoCombine = !combineOn
		dc.IOUnit = 128 << 10
	})
}

// pickDiskParts keeps the out-of-core partition count modest: the disk
// engine's single-stage shuffle targets small K (§3.4).
func pickDiskParts(memParts int) int {
	if memParts > 16 {
		return 16
	}
	return memParts
}
