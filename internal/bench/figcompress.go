package bench

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
	"repro/internal/partition2ps"
)

// figcompress quantifies what the delta-varint tile codec buys the
// out-of-core engine: the edge stream dominates X-Stream's I/O volume
// (§5.2 — every scatter re-reads the full edge list), so shrinking edge
// files at rest cuts physical reads on every iteration. The workload is
// PageRank (dense, every tile read every pass) and selective BFS
// (compression composing with tile skipping) over an RMAT graph under the
// 2PS layout, whose source-contiguous tiles are what the delta coder
// exploits; each algorithm runs once on raw tiles and once compressed.
// The headline metrics are the physical BytesRead pair — the compressed
// run must land well under the raw one while BytesReadLogical stays
// identical (the byte-level witness that both runs streamed the same
// records; the BFS rows additionally compare vertex states bit-for-bit).
// All metrics are deterministic work measures, gated by cmd/benchgate.
func init() {
	register("figcompress", "Compressed edge tiles: physical vs logical bytes out of core", runFigCompress)
}

// figCompressRun is one out-of-core run at figcompress's fixed layout.
func figCompressRun[V, M any](cfg Config, src core.EdgeSource, prog core.Program[V, M], selective, compress bool) (*diskengine.Result[V], error) {
	return diskengine.Run(src, prog, diskengine.Config{
		Device:        ssdDev("compress", 0),
		Threads:       cfg.Threads,
		IOUnit:        32 << 10,
		Partitions:    16,
		Partitioner:   partition2ps.New(),
		Selective:     selective,
		CompressTiles: compress,
	})
}

func runFigCompress(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scale := cfg.pick(16, 12)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 81})

	t := &Table{
		ID: "figcompress",
		Title: fmt.Sprintf("Delta-compressed edge tiles, RMAT scale %d (2PS layout), K=16",
			scale),
		Columns: []string{"algorithm", "selective", "tiles", "iters",
			"bytes-read", "bytes-logical", "tiles-delta", "layout-ratio", "total"},
	}

	addRow := func(algo string, selective bool, s core.Stats, compress bool) {
		sel, tilesCol, ratio := "off", "raw", "-"
		if selective {
			sel = "on"
		}
		if compress {
			tilesCol = "compressed"
			ratio = fmt.Sprintf("%.2f", s.CompressedRatio)
		}
		t.Rows = append(t.Rows, []string{
			algo, sel, tilesCol,
			fmt.Sprintf("%d", s.Iterations),
			fmt.Sprintf("%d", s.BytesRead),
			fmt.Sprintf("%d", s.BytesReadLogical),
			fmt.Sprintf("%d", s.TilesCompressed),
			ratio,
			fmtDur(s.TotalTime),
		})
	}

	// PageRank: dense scatter, every tile read on every iteration — the
	// pure storage-layer comparison.
	var prStats [2]core.Stats
	for i, compress := range []bool{false, true} {
		res, err := figCompressRun(cfg, src, algorithms.NewPageRank(5), false, compress)
		if err != nil {
			return nil, fmt.Errorf("pagerank compress=%v: %w", compress, err)
		}
		prStats[i] = res.Stats
		addRow("pagerank", false, res.Stats, compress)
	}
	if prStats[1].BytesReadLogical != prStats[0].BytesReadLogical {
		return nil, fmt.Errorf("pagerank: compressed logical volume %d != raw %d — streams diverged",
			prStats[1].BytesReadLogical, prStats[0].BytesReadLogical)
	}
	t.SetMetric("pagerank_disk_bytes_read_uncompressed", float64(prStats[0].BytesRead))
	t.SetMetric("pagerank_disk_bytes_read_compressed", float64(prStats[1].BytesRead))
	t.SetMetric("pagerank_disk_compressed_ratio", prStats[1].CompressedRatio)

	// Selective BFS: compression beneath the tile-skipping planner, with
	// the decoded vertex states compared bit-for-bit (integer min lattice,
	// so thread count cannot excuse a mismatch).
	var bfsStats [2]core.Stats
	var bfsVerts [2][]algorithms.BFSState
	for i, compress := range []bool{false, true} {
		res, err := figCompressRun(cfg, src, algorithms.NewBFS(0), true, compress)
		if err != nil {
			return nil, fmt.Errorf("bfs compress=%v: %w", compress, err)
		}
		bfsStats[i] = res.Stats
		bfsVerts[i] = res.Vertices
		addRow("bfs", true, res.Stats, compress)
	}
	for v := range bfsVerts[0] {
		if bfsVerts[0][v] != bfsVerts[1][v] {
			return nil, fmt.Errorf("bfs vertex %d: raw %+v, compressed %+v — not bit-identical",
				v, bfsVerts[0][v], bfsVerts[1][v])
		}
	}
	t.SetMetric("bfs_selective_disk_bytes_read_uncompressed", float64(bfsStats[0].BytesRead))
	t.SetMetric("bfs_selective_disk_bytes_read_compressed", float64(bfsStats[1].BytesRead))
	t.SetMetric("bfs_selective_disk_compressed_ratio", bfsStats[1].CompressedRatio)

	for _, a := range []struct {
		name string
		s    [2]core.Stats
	}{{"pagerank", prStats}, {"bfs+selective", bfsStats}} {
		if raw := float64(a.s[0].BytesRead); raw > 0 {
			cmp := float64(a.s[1].BytesRead)
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: compressed tiles read %.1f%% fewer physical bytes (%.0f -> %.0f), layout at %.2f of raw",
				a.name, 100*(1-cmp/raw), raw, cmp, a.s[1].CompressedRatio))
		}
	}
	return t, nil
}
