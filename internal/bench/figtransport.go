package bench

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
	"repro/internal/memengine"
	"repro/internal/transport"
)

// figtransport prices the update-transport seam (core.UpdateTransport):
// the engines' update shuffle is an exchangeable interface, and swapping
// the builtin transports for the channel-backed loopback worker exchange
// must change no result and no engine-side work metric. The workloads are
// all-active WCC on the in-memory engine and selective BFS on the
// out-of-core engine, each run with the builtin transport and the
// loopback.
//
// Three claims, each gated:
//   - the extraction is free: the builtin runs' work metrics — including
//     the transport's own traffic counters — are pinned as metrics, so
//     the refactored engines cannot drift from the pre-refactor numbers
//     (every other experiment's pinned update/stream metrics double as
//     the same gate across its own workloads);
//   - transports are exchangeable: the loopback runs agree bit-for-bit
//     with the builtin runs on every vertex state;
//   - the seam is clean: engine-side work metrics (edges streamed and
//     skipped, updates sent, iterations) are identical across transports
//     — only transport-internal accounting may differ.
func init() {
	register("figtransport", "Update-transport seam: loopback exchange is result- and work-identical to the builtin shuffle paths", runFigTransport)
}

// engineMetrics is the transport-independent work subset of a Stats: the
// fields that measure what the engine did, not how the transport moved it.
func engineMetrics(s core.Stats) map[string]int64 {
	return map[string]int64{
		"Iterations":        int64(s.Iterations),
		"EdgesStreamed":     s.EdgesStreamed,
		"EdgesSkipped":      s.EdgesSkipped,
		"PartitionsSkipped": s.PartitionsSkipped,
		"TilesSkipped":      s.TilesSkipped,
		"UpdatesSent":       s.UpdatesSent,
	}
}

// diffEngineMetrics returns the engine-side counters two runs disagree on.
func diffEngineMetrics(a, b core.Stats) []string {
	am, bm := engineMetrics(a), engineMetrics(b)
	var diff []string
	for name, av := range am {
		if bv := bm[name]; av != bv {
			diff = append(diff, fmt.Sprintf("%s (%d vs %d)", name, av, bv))
		}
	}
	return diff
}

func loopbackExchange(k int) core.Exchange {
	return transport.NewLoopback(k, transport.Options{})
}

func runFigTransport(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scale := cfg.pick(14, 10)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 16, Seed: 98, Undirected: true})

	t := &Table{
		ID: "figtransport",
		Title: fmt.Sprintf("Update-transport exchangeability in work metrics, RMAT scale %d",
			scale),
		Columns: []string{"workload", "transport", "iters", "updates-sent",
			"batches", "bytes", "total"},
	}
	addRow := func(workload, tp string, s core.Stats) {
		t.Rows = append(t.Rows, []string{
			workload, tp,
			fmt.Sprintf("%d", s.Iterations),
			fmt.Sprintf("%d", s.UpdatesSent),
			fmt.Sprintf("%d", s.TransportBatches),
			fmt.Sprintf("%d", s.TransportBytes),
			fmtDur(s.TotalTime),
		})
	}

	// All-active WCC, in-memory: builtin shuffle vs loopback exchange.
	wccBuiltin, err := memengine.Run(src, algorithms.NewWCC(), memengine.Config{Threads: cfg.Threads, Partitions: 16})
	if err != nil {
		return nil, fmt.Errorf("wcc builtin: %w", err)
	}
	addRow("wcc/mem", "builtin", wccBuiltin.Stats)
	wccLoop, err := memengine.Run(src, algorithms.NewWCC(), memengine.Config{Threads: cfg.Threads, Partitions: 16, Exchange: loopbackExchange})
	if err != nil {
		return nil, fmt.Errorf("wcc loopback: %w", err)
	}
	addRow("wcc/mem", "loopback", wccLoop.Stats)
	for v := range wccBuiltin.Vertices {
		if wccBuiltin.Vertices[v] != wccLoop.Vertices[v] {
			return nil, fmt.Errorf("wcc: vertex %d diverged across transports", v)
		}
	}
	if diff := diffEngineMetrics(wccBuiltin.Stats, wccLoop.Stats); len(diff) > 0 {
		return nil, fmt.Errorf("wcc: transport swap changed engine work: %v", diff)
	}
	if wccBuiltin.Stats.TransportBatches == 0 || wccLoop.Stats.TransportBatches == 0 {
		return nil, fmt.Errorf("wcc: a transport reported no batches (builtin %d, loopback %d)",
			wccBuiltin.Stats.TransportBatches, wccLoop.Stats.TransportBatches)
	}
	t.SetMetric("wcc_mem_updates_sent_builtin", float64(wccBuiltin.Stats.UpdatesSent))
	t.SetMetric("wcc_mem_transport_batches_builtin", float64(wccBuiltin.Stats.TransportBatches))
	t.SetMetric("wcc_mem_transport_bytes_builtin", float64(wccBuiltin.Stats.TransportBytes))

	// Selective BFS, out of core: update-file writeback vs loopback. The
	// frontier varies the per-iteration update volume, so the transport
	// counters track a non-trivial shape.
	diskCfg := func(name string, ex func(int) core.Exchange) diskengine.Config {
		return diskengine.Config{
			Device: ssdDev(name, 0), Threads: cfg.Threads,
			IOUnit: 32 << 10, Partitions: 16, Selective: true, Exchange: ex,
		}
	}
	bfsBuiltin, err := diskengine.Run(src, algorithms.NewBFS(0), diskCfg("transport-builtin", nil))
	if err != nil {
		return nil, fmt.Errorf("bfs builtin: %w", err)
	}
	addRow("bfs/disk", "builtin", bfsBuiltin.Stats)
	bfsLoop, err := diskengine.Run(src, algorithms.NewBFS(0), diskCfg("transport-loopback", loopbackExchange))
	if err != nil {
		return nil, fmt.Errorf("bfs loopback: %w", err)
	}
	addRow("bfs/disk", "loopback", bfsLoop.Stats)
	for v := range bfsBuiltin.Vertices {
		if bfsBuiltin.Vertices[v] != bfsLoop.Vertices[v] {
			return nil, fmt.Errorf("bfs: vertex %d diverged across transports", v)
		}
	}
	if diff := diffEngineMetrics(bfsBuiltin.Stats, bfsLoop.Stats); len(diff) > 0 {
		return nil, fmt.Errorf("bfs: transport swap changed engine work: %v", diff)
	}
	if bfsBuiltin.Stats.TransportBatches == 0 || bfsLoop.Stats.TransportBatches == 0 {
		return nil, fmt.Errorf("bfs: a transport reported no batches (builtin %d, loopback %d)",
			bfsBuiltin.Stats.TransportBatches, bfsLoop.Stats.TransportBatches)
	}
	t.SetMetric("bfs_disk_updates_sent_builtin", float64(bfsBuiltin.Stats.UpdatesSent))
	t.SetMetric("bfs_disk_transport_batches_builtin", float64(bfsBuiltin.Stats.TransportBatches))
	t.SetMetric("bfs_disk_transport_bytes_builtin", float64(bfsBuiltin.Stats.TransportBytes))

	t.Notes = append(t.Notes, fmt.Sprintf(
		"loopback exchange matched the builtin transports bit-for-bit on every vertex while engine work metrics stayed identical (wcc %d updates, bfs %d updates)",
		wccBuiltin.Stats.UpdatesSent, bfsBuiltin.Stats.UpdatesSent))
	return t, nil
}
