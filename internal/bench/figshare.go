package bench

import (
	"context"
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
	"repro/internal/jobs"
	"repro/internal/memengine"
)

// figshare measures the serving layer's core bet: X-Stream's sequential
// edge stream is the dominant, fixed cost of a computation, so K
// co-scheduled jobs on one dataset should pay it once per pass instead of
// once per job. The workload is K identical PageRank jobs over one RMAT
// graph, run two ways against the same prepared dataset handle: "seq", K
// independent single-job passes (what a server without batching does), and
// "shared", one RunMany pass driving all K. The headline metrics are the
// edge records streamed — shared must be ~1/K of seq on both engines — and,
// out of core, the device bytes read, since each edge-file chunk is read
// once and scattered for every job. A warmup pass first builds the lazily
// shared transpose (PageRank's degree-counting iteration streams it), so
// both modes measure steady-state serving cost. All metrics are
// deterministic work measures, gated by cmd/benchgate.
func init() {
	register("figshare", "Shared-pass multi-job execution: K PageRank jobs, one edge stream", runFigShare)
}

func runFigShare(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	scale := cfg.pick(15, 10)
	k := cfg.pick(8, 4)
	const iters = 5
	ctx := context.Background()
	src := rmatDataset(scale)

	t := &Table{
		ID:      "figshare",
		Title:   fmt.Sprintf("Shared-pass execution, RMAT scale %d, %d co-scheduled PageRank jobs", scale, k),
		Columns: []string{"engine", "mode", "jobs", "streamed", "shared", "bytes-read", "total"},
	}
	newSet := func(n int) core.ProgramSet {
		set := make(core.ProgramSet, n)
		for i := range set {
			set[i] = core.NewJob[algorithms.PRState, float32](algorithms.NewPageRank(iters))
		}
		return set
	}
	addRow := func(engine, mode string, jobs int, streamed, shared, bytesRead int64, total string) {
		t.Rows = append(t.Rows, []string{
			engine, mode, fmt.Sprintf("%d", jobs),
			fmt.Sprintf("%d", streamed), fmt.Sprintf("%d", shared),
			fmt.Sprintf("%d", bytesRead), total,
		})
	}

	// In-memory engine over one prepared handle, as the dataset registry
	// serves it.
	mp, err := memengine.Prepare(src, memengine.Config{Threads: cfg.Threads})
	if err != nil {
		return nil, err
	}
	if _, _, err := mp.RunMany(ctx, newSet(1)); err != nil { // warmup: build the transpose
		return nil, err
	}
	var memSeq int64
	var memSeqTime string
	for i := 0; i < k; i++ {
		_, pass, err := mp.RunMany(ctx, newSet(1))
		if err != nil {
			return nil, fmt.Errorf("mem seq %d: %w", i, err)
		}
		memSeq += pass.EdgesStreamed
		memSeqTime = fmtDur(pass.TotalTime)
	}
	addRow("memory", "sequential", k, memSeq, 0, 0, memSeqTime+"/job")
	_, memPass, err := mp.RunMany(ctx, newSet(k))
	if err != nil {
		return nil, fmt.Errorf("mem shared: %w", err)
	}
	addRow("memory", "shared", k, memPass.EdgesStreamed, memPass.EdgesShared, 0, fmtDur(memPass.TotalTime))
	t.SetMetric("pagerank_mem_edges_streamed_seq", float64(memSeq))
	t.SetMetric("pagerank_mem_edges_streamed_shared", float64(memPass.EdgesStreamed))

	// Result cache: batching amortizes the stream across co-scheduled
	// jobs; the scheduler's result cache amortizes it across *time*. K
	// identical jobs submitted one after another pay for one pass — every
	// later submission is a cache hit that streams nothing.
	reg := dataset.NewRegistry()
	defer reg.Close()
	if _, err := reg.Add("share", src, dataset.Options{Threads: cfg.Threads}); err != nil {
		return nil, err
	}
	sched := jobs.New(reg, jobs.Config{Workers: 1})
	defer sched.Close()
	for i := 0; i < k; i++ {
		id, err := sched.Submit(jobs.Request{Dataset: "share", Algo: "pagerank",
			Params: algorithms.Params{Iters: iters}})
		if err != nil {
			return nil, fmt.Errorf("cached submit %d: %w", i, err)
		}
		if _, err := sched.Wait(ctx, id); err != nil {
			return nil, fmt.Errorf("cached wait %d: %w", i, err)
		}
	}
	sm := sched.Metrics()
	addRow("memory", "cached", k, sm.EdgesStreamed, 0, 0, fmt.Sprintf("%d hits", sm.CacheHits))
	t.SetMetric("pagerank_mem_result_cache_hits", float64(sm.CacheHits))
	t.SetMetric("pagerank_mem_result_cache_misses", float64(sm.CacheMisses))

	// Out-of-core engine: edge-file reads are the shared resource.
	dp, err := diskengine.Prepare(src, diskengine.Config{
		Device: ssdDev("share", 0), Threads: cfg.Threads, IOUnit: 32 << 10, Partitions: 8,
	})
	if err != nil {
		return nil, err
	}
	defer dp.Close()
	if _, _, err := dp.RunMany(ctx, newSet(1)); err != nil { // warmup: build the transposed files
		return nil, err
	}
	var diskSeq, diskSeqRead int64
	var diskSeqTime string
	for i := 0; i < k; i++ {
		_, pass, err := dp.RunMany(ctx, newSet(1))
		if err != nil {
			return nil, fmt.Errorf("disk seq %d: %w", i, err)
		}
		diskSeq += pass.EdgesStreamed
		diskSeqRead += pass.BytesRead
		diskSeqTime = fmtDur(pass.TotalTime)
	}
	addRow("disk:sim-ssd", "sequential", k, diskSeq, 0, diskSeqRead, diskSeqTime+"/job")
	_, diskPass, err := dp.RunMany(ctx, newSet(k))
	if err != nil {
		return nil, fmt.Errorf("disk shared: %w", err)
	}
	addRow("disk:sim-ssd", "shared", k, diskPass.EdgesStreamed, diskPass.EdgesShared, diskPass.BytesRead, fmtDur(diskPass.TotalTime))
	t.SetMetric("pagerank_disk_edges_streamed_seq", float64(diskSeq))
	t.SetMetric("pagerank_disk_edges_streamed_shared", float64(diskPass.EdgesStreamed))
	t.SetMetric("pagerank_disk_bytes_read_seq", float64(diskSeqRead))
	t.SetMetric("pagerank_disk_bytes_read_shared", float64(diskPass.BytesRead))

	if memPass.EdgesStreamed > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"memory: %d shared jobs stream %.2fx fewer edge records than %d sequential runs (%d -> %d)",
			k, float64(memSeq)/float64(memPass.EdgesStreamed), k, memSeq, memPass.EdgesStreamed))
	}
	if diskPass.BytesRead > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"disk: sharing reads %.2fx fewer bytes (%d -> %d) and streams %.2fx fewer records",
			float64(diskSeqRead)/float64(diskPass.BytesRead), diskSeqRead, diskPass.BytesRead,
			float64(diskSeq)/float64(diskPass.EdgesStreamed)))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"result cache: %d identical sequential jobs computed %d pass(es), served %d from cache with zero edges streamed",
		k, sm.CacheMisses, sm.CacheHits))
	t.Notes = append(t.Notes, "paper's model: the edge stream is the fixed cost — shared passes amortize it across co-scheduled jobs (serving layer, cmd/xserve)")
	return t, nil
}

// rmatDataset is figshare's workload.
func rmatDataset(scale int) core.EdgeSource {
	return graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 8, Seed: 51})
}
