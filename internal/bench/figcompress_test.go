package bench

import "testing"

// TestFigCompressSavings pins the compression tentpole's acceptance
// criterion: on the out-of-core PageRank rows the compressed run must
// read at least 30% fewer physical bytes than the raw run (the RMAT
// delta-coded layout lands well under 0.70x of raw at every scale —
// weights are incompressible random floats, so the margin is all source
// and target coding), and the layout ratio metric must agree with the
// measured byte counts. Bit-identity of results is enforced inside the
// runner itself (logical-volume match plus the BFS vertex comparison),
// so a passing run is also a correctness witness.
func TestFigCompressSavings(t *testing.T) {
	tab, err := runFigCompress(Config{Quick: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		v, ok := tab.Metrics[name]
		if !ok {
			t.Fatalf("missing metric %s", name)
		}
		return v
	}
	raw := get("pagerank_disk_bytes_read_uncompressed")
	cmp := get("pagerank_disk_bytes_read_compressed")
	ratio := get("pagerank_disk_compressed_ratio")
	if raw <= 0 {
		t.Fatalf("raw run read %v bytes", raw)
	}
	if cmp > 0.70*raw {
		t.Fatalf("compressed run read %.0f bytes, above 0.70x of raw (%.0f) — %.1f%% saved",
			cmp, raw, 100*(1-cmp/raw))
	}
	if ratio <= 0 || ratio >= 1 {
		t.Fatalf("layout ratio %v outside (0, 1)", ratio)
	}
	t.Logf("pagerank: %.0f -> %.0f physical bytes (%.1f%% saved), layout at %.2f of raw",
		raw, cmp, 100*(1-cmp/raw), ratio)

	bfsRaw := get("bfs_selective_disk_bytes_read_uncompressed")
	bfsCmp := get("bfs_selective_disk_bytes_read_compressed")
	if bfsCmp >= bfsRaw {
		t.Fatalf("selective bfs: compressed read %.0f bytes, raw %.0f — no saving", bfsCmp, bfsRaw)
	}
	t.Logf("bfs+selective: %.0f -> %.0f physical bytes (%.1f%% saved)",
		bfsRaw, bfsCmp, 100*(1-bfsCmp/bfsRaw))
}
