package bench

import (
	"fmt"
	"time"

	"repro/internal/algorithms"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphgen"
	"repro/internal/storage"
)

func init() {
	register("fig22", "GraphChi-like engine vs X-Stream on simulated SSD (paper Figure 22)", runFig22)
	register("fig23", "Device bandwidth over time: streaming vs sliding windows (paper Figure 23)", runFig23)
}

func runFig22(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ts := cfg.timeScale(0.3)
	t := &Table{
		ID:    "fig22",
		Title: "out-of-core comparison on simulated SSD",
		Columns: []string{"workload", "XS parts", "XS pre", "XS runtime",
			"GC shards", "GC pre-sort", "GC runtime", "GC re-sort"},
	}

	type row struct {
		name   string
		src    core.EdgeSource
		xsRun  func(dev storage.Device) (core.Stats, error)
		kernel baseline.FloatKernel
	}
	twitter := graphgen.RMAT(graphgen.RMATConfig{Scale: cfg.pick(16, 11), EdgeFactor: 16, Seed: 46})
	rmatU := graphgen.RMAT(graphgen.RMATConfig{Scale: cfg.pick(16, 11), EdgeFactor: 16, Seed: 9, Undirected: true})
	netflix := netflixLike(cfg)

	rows := []row{
		{
			name: "twitter-like pagerank",
			src:  twitter,
			xsRun: func(dev storage.Device) (core.Stats, error) {
				return runDisk(twitter, algorithms.NewPageRank(5), dev, cfg)
			},
			kernel: baseline.PageRankKernel(5),
		},
		{
			name: "netflix-like ALS",
			src:  netflix.Source,
			xsRun: func(dev storage.Device) (core.Stats, error) {
				users := netflix.Source.NumVertices() - int64(cfg.pick(4000, 200))
				return runDisk(netflix.Source, algorithms.NewALS(users, 5), dev, cfg)
			},
			kernel: baseline.ALSLikeKernel(10),
		},
		{
			name: "rmat WCC",
			src:  rmatU,
			xsRun: func(dev storage.Device) (core.Stats, error) {
				return runDisk(rmatU, algorithms.NewWCC(), dev, cfg)
			},
			kernel: baseline.WCCKernel(),
		},
		{
			name: "twitter-like BP",
			src:  twitter,
			xsRun: func(dev storage.Device) (core.Stats, error) {
				return runDisk(twitter, algorithms.NewBP(5), dev, cfg)
			},
			kernel: baseline.BPKernel(5),
		},
	}

	// Same memory budget for both systems; GraphChi's shard count follows
	// from the edge volume, X-Stream's partition count from vertex state.
	for _, r := range rows {
		budget := 4 * r.src.NumEdges() * 16 / 3 / 4 // ~edge bytes / 3, shardBudget = budget/4
		xsDev := ssdDev("xs-"+r.name, ts)
		xs, err := r.xsRun(xsDev)
		if err != nil {
			return nil, fmt.Errorf("xstream %s: %w", r.name, err)
		}

		gcDev := ssdDev("gc-"+r.name, ts)
		gc, err := baseline.NewGraphChi(gcDev, r.src, budget, "f22-")
		if err != nil {
			return nil, fmt.Errorf("graphchi shard %s: %w", r.name, err)
		}
		t0 := time.Now()
		if _, err := gc.Run(r.kernel); err != nil {
			gc.Close()
			return nil, fmt.Errorf("graphchi run %s: %w", r.name, err)
		}
		gcRun := time.Since(t0)
		t.Rows = append(t.Rows, []string{
			r.name,
			fmt.Sprintf("%d", xs.Partitions),
			fmtDur(xs.PreprocessTime),
			fmtDur(xs.TotalTime - xs.PreprocessTime),
			fmt.Sprintf("%d", gc.P),
			fmtDur(gc.PreSortTime),
			fmtDur(gcRun),
			fmtDur(gc.ReSortTime),
		})
		gc.Close()
	}
	t.Notes = append(t.Notes,
		"paper Figure 22: X-Stream needs no pre-sort and fewer partitions than Graphchi needs shards; for 3 of 4 workloads X-Stream finishes before Graphchi finishes sorting; re-sort (in-memory sort by destination) is a large slice of Graphchi's runtime",
		"GraphChi ALS row uses a rank-1 factorization kernel (same I/O pattern, scalar factors); X-Stream runs the full k=8 ALS",
	)
	return t, nil
}

func runFig23(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ts := cfg.timeScale(1.0)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: cfg.pick(15, 11), EdgeFactor: 16, Seed: 46})

	t := &Table{
		ID:      "fig23",
		Title:   "read/write bandwidth over time, Pagerank (MB/s per bucket)",
		Columns: []string{"system", "t-bucket", "read MB/s", "write MB/s"},
	}

	sample := func(name string, dev storage.Device, scaleFactor float64) {
		tl := dev.Timeline()
		if len(tl) == 0 {
			return
		}
		// Aggregate into at most 12 coarse buckets.
		span := tl[len(tl)-1].At + 50*time.Millisecond
		bucket := span / 12
		if bucket <= 0 {
			bucket = 50 * time.Millisecond
		}
		agg := make(map[int64][2]int64)
		var maxB int64
		for _, p := range tl {
			b := int64(p.At / bucket)
			v := agg[b]
			v[0] += p.BytesRead
			v[1] += p.BytesWritten
			agg[b] = v
			if b > maxB {
				maxB = b
			}
		}
		for b := int64(0); b <= maxB; b++ {
			v := agg[b]
			secs := bucket.Seconds() / scaleFactor // un-scale to virtual device seconds
			t.Rows = append(t.Rows, []string{
				name,
				fmt.Sprintf("%d", b),
				fmtMBps(float64(v[0]) / secs),
				fmtMBps(float64(v[1]) / secs),
			})
		}
	}

	xsDev := ssdDev("f23-xs", ts)
	xsDev.ResetStats()
	if _, err := runDisk(src, algorithms.NewPageRank(3), xsDev, cfg, func(c *diskengine.Config) {
		c.NoUpdateBypass = true // keep update traffic on the device, as with a real big graph
	}); err != nil {
		return nil, err
	}
	sample("X-Stream", xsDev, ts)

	gcDev := ssdDev("f23-gc", ts)
	gc, err := baseline.NewGraphChi(gcDev, src, 4*src.NumEdges()*16/3/4, "f23-")
	if err != nil {
		return nil, err
	}
	defer gc.Close()
	gcDev.ResetStats()
	if _, err := gc.Run(baseline.PageRankKernel(3)); err != nil {
		return nil, err
	}
	sample("GraphChi", gcDev, ts)

	xsStats := xsDev.Stats()
	gcStats := gcDev.Stats()
	t.Notes = append(t.Notes,
		fmt.Sprintf("aggregate requests: X-Stream %d reads (%d random) / %d writes; GraphChi %d reads (%d random) / %d writes",
			xsStats.Reads, xsStats.RandomReads(), xsStats.Writes,
			gcStats.Reads, gcStats.RandomReads(), gcStats.Writes),
		"paper Figure 23: X-Stream alternates long saturated read bursts and write bursts (aggregate 416 MB/s reads); Graphchi's sliding-window accesses are bursty and fragmented (aggregate 141 MB/s)",
	)
	return t, nil
}
