package baseline

import (
	"time"

	"repro/internal/core"
)

// Ligra is a Ligra-like in-memory push–pull frontier engine (Shun &
// Blelloch [48], compared against in Figure 20). Ligra consumes a sorted,
// indexed representation — forward CSR plus the transpose for its pull
// direction — so building those structures is its pre-processing cost,
// which the paper shows dominating its end-to-end BFS time. X-Stream, by
// contrast, starts from the unordered edge list.
type Ligra struct {
	G  *CSR
	GT *CSR
	// PreprocessTime is the time spent sorting and indexing (both
	// directions, as direction reversal requires).
	PreprocessTime time.Duration
	threads        int
}

// NewLigra builds the engine's sorted indices from an unordered edge list,
// recording the pre-processing time.
func NewLigra(n int64, edges []core.Edge, threads int) *Ligra {
	if threads < 1 {
		threads = 1
	}
	t0 := time.Now()
	g := BuildQuicksort(n, edges) // Ligra's published pipeline quicksorts
	gt := Transpose(n, edges)
	return &Ligra{G: g, GT: gt, PreprocessTime: time.Since(t0), threads: threads}
}

// BFS runs direction-optimizing BFS (Ligra's flagship workload).
func (l *Ligra) BFS(root core.VertexID) []int32 {
	return HybridBFS(l.G, l.GT, root, l.threads)
}

// PageRank runs dense power iterations. PageRank's uniform communication
// gives direction reversal nothing to exploit (§5.5), so this is a plain
// pull-based sweep over in-edges.
func (l *Ligra) PageRank(iters int) []float64 {
	n := l.G.N
	rank := make([]float64, n)
	contrib := make([]float64, n)
	for i := range rank {
		rank[i] = 1
	}
	for it := 0; it < iters; it++ {
		for v := int64(0); v < n; v++ {
			if d := l.G.OutDegree(core.VertexID(v)); d > 0 {
				contrib[v] = rank[v] / float64(d)
			} else {
				contrib[v] = 0
			}
		}
		// Pull from in-edges via the transpose index.
		for v := int64(0); v < n; v++ {
			sum := 0.0
			for _, u := range l.GT.Neighbors(core.VertexID(v)) {
				sum += contrib[u]
			}
			rank[v] = 0.15 + 0.85*sum
		}
	}
	return rank
}
