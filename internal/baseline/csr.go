// Package baseline implements the systems the paper compares X-Stream
// against in §5.5:
//
//   - the classic "sort the edges, build an index, random-access through
//     it" approach (CSR built by quicksort or counting sort — Figure 18,
//     Figure 26);
//   - the optimized in-memory BFS baselines: per-core local queues
//     (Agarwal et al.) and direction-optimizing/hybrid traversal (Beamer;
//     Hong et al.) — Figure 19;
//   - a Ligra-like push–pull frontier engine with its pre-processing cost
//     charged honestly — Figure 20;
//   - a GraphChi-like out-of-core engine using source-sorted shards with
//     in-memory re-sort, parallel-sliding-window I/O and edge-value
//     write-back — Figures 22 and 23.
//
// These are reimplementations in the same runtime and toolchain as
// X-Stream, which removes the cross-toolchain caveats the paper had to
// disclose for Ligra.
package baseline

import (
	"sort"

	"repro/internal/core"
)

// CSR is a compressed-sparse-row adjacency index over a sorted edge list —
// the random-access data structure the paper's index-based baselines use.
type CSR struct {
	N       int64
	Offsets []int64 // len N+1; out-edges of v are [Offsets[v], Offsets[v+1])
	Dst     []core.VertexID
	W       []float32
}

// BuildCountingSort builds a CSR with a two-pass counting sort over the
// source vertex: O(V+E), the fastest possible index build (Figure 18's
// "counting sort" line).
func BuildCountingSort(n int64, edges []core.Edge) *CSR {
	g := &CSR{N: n, Offsets: make([]int64, n+1)}
	for _, e := range edges {
		g.Offsets[e.Src+1]++
	}
	for v := int64(0); v < n; v++ {
		g.Offsets[v+1] += g.Offsets[v]
	}
	g.Dst = make([]core.VertexID, len(edges))
	g.W = make([]float32, len(edges))
	cursor := make([]int64, n)
	for _, e := range edges {
		i := g.Offsets[e.Src] + cursor[e.Src]
		cursor[e.Src]++
		g.Dst[i] = e.Dst
		g.W[i] = e.Weight
	}
	return g
}

// BuildQuicksort builds a CSR by comparison-sorting a copy of the edge
// list by source vertex (Figure 18's "quicksort" line).
func BuildQuicksort(n int64, edges []core.Edge) *CSR {
	sorted := make([]core.Edge, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Src < sorted[j].Src })
	g := &CSR{
		N:       n,
		Offsets: make([]int64, n+1),
		Dst:     make([]core.VertexID, len(sorted)),
		W:       make([]float32, len(sorted)),
	}
	for i, e := range sorted {
		g.Offsets[e.Src+1]++
		g.Dst[i] = e.Dst
		g.W[i] = e.Weight
	}
	for v := int64(0); v < n; v++ {
		g.Offsets[v+1] += g.Offsets[v]
	}
	return g
}

// Transpose builds the CSC (in-edge index) from the edge list.
func Transpose(n int64, edges []core.Edge) *CSR {
	rev := make([]core.Edge, len(edges))
	for i, e := range edges {
		rev[i] = core.Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight}
	}
	return BuildCountingSort(n, rev)
}

// OutDegree returns the out-degree of v.
func (g *CSR) OutDegree(v core.VertexID) int64 {
	return g.Offsets[v+1] - g.Offsets[v]
}

// Neighbors returns the out-neighbour IDs of v (aliasing the index).
func (g *CSR) Neighbors(v core.VertexID) []core.VertexID {
	return g.Dst[g.Offsets[v]:g.Offsets[v+1]]
}

// WCCLabels runs vertex-centric min-label propagation over the index with
// an active-vertex worklist — the "random access through an index"
// equivalent of the X-Stream WCC program. The graph must be symmetric.
func (g *CSR) WCCLabels() []core.VertexID {
	labels := make([]core.VertexID, g.N)
	active := make([]core.VertexID, 0, g.N)
	for v := int64(0); v < g.N; v++ {
		labels[v] = core.VertexID(v)
		active = append(active, core.VertexID(v))
	}
	inNext := make([]bool, g.N)
	for len(active) > 0 {
		var next []core.VertexID
		for _, v := range active {
			l := labels[v]
			for _, u := range g.Neighbors(v) {
				if l < labels[u] {
					labels[u] = l
					if !inNext[u] {
						inNext[u] = true
						next = append(next, u)
					}
				}
			}
		}
		for _, u := range next {
			inNext[u] = false
		}
		active = next
	}
	return labels
}

// PageRank runs damped power iteration over the index (same conventions
// as the X-Stream program: rank starts at 1, d = 0.85).
func (g *CSR) PageRank(iters int) []float64 {
	rank := make([]float64, g.N)
	next := make([]float64, g.N)
	for i := range rank {
		rank[i] = 1
	}
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		for v := int64(0); v < g.N; v++ {
			deg := g.Offsets[v+1] - g.Offsets[v]
			if deg == 0 {
				continue
			}
			share := rank[v] / float64(deg)
			for _, u := range g.Dst[g.Offsets[v]:g.Offsets[v+1]] {
				next[u] += share
			}
		}
		for i := range rank {
			rank[i] = 0.15 + 0.85*next[i]
		}
	}
	return rank
}

// SpMV multiplies the weighted adjacency matrix with x through the index.
func (g *CSR) SpMV(x []float32) []float32 {
	y := make([]float32, g.N)
	for v := int64(0); v < g.N; v++ {
		xv := x[v]
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			y[g.Dst[i]] += xv * g.W[i]
		}
	}
	return y
}

// BFSLevels runs a serial frontier BFS through the index.
func (g *CSR) BFSLevels(root core.VertexID) []int32 {
	level := make([]int32, g.N)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	frontier := []core.VertexID{root}
	for len(frontier) > 0 {
		var next []core.VertexID
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if level[u] < 0 {
					level[u] = level[v] + 1
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return level
}
