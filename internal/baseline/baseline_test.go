package baseline

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graphgen"
	"repro/internal/refalgo"
	"repro/internal/storage"
)

func undirected(scale int, seed int64) (core.EdgeSource, []core.Edge) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 8, Seed: seed, Undirected: true})
	edges, _ := core.Materialize(src)
	return src, edges
}

func TestCSRBuildersAgree(t *testing.T) {
	src, edges := undirected(9, 1)
	n := src.NumVertices()
	a := BuildCountingSort(n, edges)
	b := BuildQuicksort(n, edges)
	if len(a.Dst) != len(b.Dst) {
		t.Fatal("size mismatch")
	}
	for v := int64(0); v < n; v++ {
		if a.Offsets[v] != b.Offsets[v] {
			t.Fatalf("offset %d differs", v)
		}
		// Neighbour multisets must agree (order within a vertex may vary
		// between stable counting sort and quicksort, but both sort keys
		// are equal so compare as multisets).
		na := append([]core.VertexID(nil), a.Neighbors(core.VertexID(v))...)
		nb := append([]core.VertexID(nil), b.Neighbors(core.VertexID(v))...)
		if len(na) != len(nb) {
			t.Fatalf("degree %d differs", v)
		}
		seen := make(map[core.VertexID]int)
		for _, u := range na {
			seen[u]++
		}
		for _, u := range nb {
			seen[u]--
		}
		for u, c := range seen {
			if c != 0 {
				t.Fatalf("vertex %d: neighbour %d imbalance %d", v, u, c)
			}
		}
	}
}

func TestCSRAlgorithms(t *testing.T) {
	src, edges := undirected(9, 2)
	n := src.NumVertices()
	g := BuildCountingSort(n, edges)

	wantWCC := refalgo.Components(n, edges)
	if got := g.WCCLabels(); !equalIDs(got, wantWCC) {
		t.Fatal("CSR WCC mismatch")
	}

	wantBFS := refalgo.BFSLevels(n, edges, 0)
	if got := g.BFSLevels(0); !equalLevels(got, wantBFS) {
		t.Fatal("CSR BFS mismatch")
	}

	wantPR := refalgo.PageRank(n, edges, 5)
	gotPR := g.PageRank(5)
	for v := range gotPR {
		if math.Abs(gotPR[v]-wantPR[v]) > 1e-9*(1+wantPR[v]) {
			t.Fatalf("CSR pagerank[%d] = %f want %f", v, gotPR[v], wantPR[v])
		}
	}

	x := make([]float32, n)
	for i := range x {
		x[i] = float32(i%7) / 7
	}
	gotY := g.SpMV(x)
	wantY := make([]float64, n)
	for _, e := range edges {
		wantY[e.Dst] += float64(x[e.Src]) * float64(e.Weight)
	}
	for v := range gotY {
		if math.Abs(float64(gotY[v])-wantY[v]) > 1e-2*(1+math.Abs(wantY[v])) {
			t.Fatalf("CSR spmv[%d] = %f want %f", v, gotY[v], wantY[v])
		}
	}
}

func equalIDs(a, b []core.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalLevels(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOptimizedBFSVariants(t *testing.T) {
	src, edges := undirected(10, 3)
	n := src.NumVertices()
	g := BuildCountingSort(n, edges)
	gt := Transpose(n, edges)
	want := refalgo.BFSLevels(n, edges, 0)

	for _, threads := range []int{1, 2, 4} {
		if got := LocalQueueBFS(g, 0, threads); !equalLevels(got, want) {
			t.Fatalf("LocalQueueBFS(threads=%d) mismatch", threads)
		}
		if got := HybridBFS(g, gt, 0, threads); !equalLevels(got, want) {
			t.Fatalf("HybridBFS(threads=%d) mismatch", threads)
		}
	}
}

func TestLigra(t *testing.T) {
	src, edges := undirected(9, 4)
	n := src.NumVertices()
	l := NewLigra(n, edges, 2)
	if l.PreprocessTime <= 0 {
		t.Fatal("no preprocessing time recorded")
	}
	want := refalgo.BFSLevels(n, edges, 0)
	if got := l.BFS(0); !equalLevels(got, want) {
		t.Fatal("Ligra BFS mismatch")
	}
	wantPR := refalgo.PageRank(n, edges, 5)
	gotPR := l.PageRank(5)
	for v := range gotPR {
		if math.Abs(gotPR[v]-wantPR[v]) > 1e-9*(1+wantPR[v]) {
			t.Fatalf("Ligra pagerank[%d] = %f want %f", v, gotPR[v], wantPR[v])
		}
	}
}

func TestGraphChiWCC(t *testing.T) {
	src, edges := undirected(8, 5)
	dev := storage.NewSim(storage.SSDParams("gc", 1, 0))
	gc, err := NewGraphChi(dev, src, 64<<10, "wcc-")
	if err != nil {
		t.Fatal(err)
	}
	defer gc.Close()
	if gc.P < 2 {
		t.Fatalf("expected multiple shards, got %d", gc.P)
	}
	state, err := gc.Run(WCCKernel())
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.Components(src.NumVertices(), edges)
	for v := range state {
		if core.VertexID(state[v]) != want[v] {
			t.Fatalf("vertex %d: label %f want %d", v, state[v], want[v])
		}
	}
	if gc.PreSortTime <= 0 || gc.ReSortTime <= 0 {
		t.Fatalf("sort costs not recorded: pre=%v re=%v", gc.PreSortTime, gc.ReSortTime)
	}
}

func TestGraphChiPageRankFixpoint(t *testing.T) {
	src, edges := undirected(8, 6)
	dev := storage.NewSim(storage.SSDParams("gc", 1, 0))
	gc, err := NewGraphChi(dev, src, 128<<10, "pr-")
	if err != nil {
		t.Fatal(err)
	}
	defer gc.Close()
	k := PageRankKernel(200)
	k.Converged = func(delta float64) bool { return delta < 1e-7 }
	state, err := gc.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	// The asynchronous sliding-window schedule converges to the same
	// fixpoint as synchronous power iteration.
	want := refalgo.PageRank(src.NumVertices(), edges, 100)
	for v := range state {
		if math.Abs(float64(state[v])-want[v]) > 1e-2*(1+want[v]) {
			t.Fatalf("pagerank[%d] = %f want %f", v, state[v], want[v])
		}
	}
}

func TestGraphChiFragmentedIO(t *testing.T) {
	// The defining PSW behaviour: shard count scales with edges, and the
	// engine issues many more, smaller I/O requests than a streaming scan
	// would.
	src, _ := undirected(9, 7)
	dev := storage.NewSim(storage.SSDParams("gc", 1, 0))
	gc, err := NewGraphChi(dev, src, 64<<10, "io-")
	if err != nil {
		t.Fatal(err)
	}
	defer gc.Close()
	dev.ResetStats()
	if _, err := gc.Run(PageRankKernel(2)); err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	// P reads of the memory shard + P*P window reads + P*P window writes
	// per iteration, minimum.
	minReqs := int64(gc.P) * int64(gc.P)
	if s.Reads < minReqs {
		t.Fatalf("reads = %d, want >= %d (P=%d)", s.Reads, minReqs, gc.P)
	}
	if s.RandomReads() == 0 {
		t.Fatal("PSW should issue non-sequential reads")
	}
}

func TestGraphChiSingleShard(t *testing.T) {
	src, edges := undirected(7, 8)
	dev := storage.NewSim(storage.SSDParams("gc", 1, 0))
	gc, err := NewGraphChi(dev, src, 1<<30, "one-")
	if err != nil {
		t.Fatal(err)
	}
	defer gc.Close()
	if gc.P != 1 {
		t.Fatalf("P = %d, want 1", gc.P)
	}
	state, err := gc.Run(WCCKernel())
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.Components(src.NumVertices(), edges)
	for v := range state {
		if core.VertexID(state[v]) != want[v] {
			t.Fatalf("vertex %d mismatch", v)
		}
	}
}
