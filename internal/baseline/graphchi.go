package baseline

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/pod"
	"repro/internal/storage"
)

// shardEdge is the on-disk record of the GraphChi-like engine: the edge
// plus its mutable value (GraphChi communicates through edge values that
// are written back in place each iteration).
type shardEdge struct {
	Src, Dst core.VertexID
	W        float32 // immutable input weight
	Val      float32 // mutable edge value
}

// GraphChi is a GraphChi-like out-of-core vertex-centric engine (Kyrola &
// Blelloch [37], compared against in Figures 22 and 23) built on parallel
// sliding windows:
//
//   - Pre-processing sorts the edges into P shards — shard p holds the
//     edges whose destination falls in vertex interval p, sorted by source
//     — where P is chosen so a shard's *edges* fit in memory. This is the
//     "pre-sort" cost of Figure 22, and because shards must hold edges
//     (not just vertex state, as X-Stream's partitions do) P exceeds
//     X-Stream's partition count.
//   - Each iteration executes interval by interval: the memory shard is
//     loaded and re-sorted by destination so in-edges can be enumerated
//     per vertex (the "re-sort" cost of Figure 22), the sliding window of
//     every other shard is read (P reads per interval, P² per iteration —
//     the fragmented I/O visible in Figure 23), vertices update, and
//     changed out-edge values are written back in place.
//
// Algorithms are expressed as FloatKernel: scalar vertex state, scalar
// edge values. Note the float32 label limitation for WCC-style kernels:
// exact only for graphs under 2^24 vertices, which all stand-ins satisfy.
type GraphChi struct {
	dev    storage.Device
	prefix string

	n        int64
	perIvl   int64
	P        int
	files    []storage.File
	shardLen []int64   // records per shard
	windows  [][]int64 // windows[q][p] = first record in shard q with Src >= interval p start
	outDeg   []int32

	// PreSortTime is the shard construction (sort) time; ReSortTime
	// accumulates the per-interval in-memory re-sort by destination.
	PreSortTime time.Duration
	ReSortTime  time.Duration
	// Iterations is the executed iteration count.
	Iterations int
}

// NewGraphChi shards the input onto dev. memBudget bounds the edge bytes
// of one shard (the defining GraphChi constraint).
func NewGraphChi(dev storage.Device, src core.EdgeSource, memBudget int64, prefix string) (*GraphChi, error) {
	t0 := time.Now()
	edges, err := core.Materialize(src)
	if err != nil {
		return nil, err
	}
	n := src.NumVertices()
	recSize := int64(pod.Size[shardEdge]())
	shardBudget := memBudget / 4
	if shardBudget < recSize*16 {
		shardBudget = recSize * 16
	}
	p := int((int64(len(edges))*recSize + shardBudget - 1) / shardBudget)
	if p < 1 {
		p = 1
	}
	g := &GraphChi{
		dev:    dev,
		prefix: prefix,
		n:      n,
		P:      p,
		perIvl: (n + int64(p) - 1) / int64(p),
		outDeg: make([]int32, n),
	}
	if g.perIvl < 1 {
		g.perIvl = 1
	}

	// Bucket edges by destination interval, sort each bucket by source,
	// write shard files and window offsets.
	buckets := make([][]shardEdge, p)
	for _, e := range edges {
		ivl := int(int64(e.Dst) / g.perIvl)
		buckets[ivl] = append(buckets[ivl], shardEdge{Src: e.Src, Dst: e.Dst, W: e.Weight})
		g.outDeg[e.Src]++
	}
	g.files = make([]storage.File, p)
	g.shardLen = make([]int64, p)
	g.windows = make([][]int64, p)
	for q := 0; q < p; q++ {
		b := buckets[q]
		sort.Slice(b, func(i, j int) bool { return b[i].Src < b[j].Src })
		f, err := dev.Create(fmt.Sprintf("%sshard%04d", prefix, q))
		if err != nil {
			return nil, err
		}
		if _, err := f.WriteAt(pod.AsBytes(b), 0); err != nil {
			return nil, err
		}
		g.files[q] = f
		g.shardLen[q] = int64(len(b))
		// Window offsets: first record with Src in interval >= i.
		w := make([]int64, p+1)
		idx := 0
		for i := 0; i <= p; i++ {
			bound := core.VertexID(int64(i) * g.perIvl)
			for idx < len(b) && b[idx].Src < bound {
				idx++
			}
			w[i] = int64(idx)
		}
		g.windows[q] = w
	}
	g.PreSortTime = time.Since(t0)
	return g, nil
}

// Close removes the shard files.
func (g *GraphChi) Close() {
	for q, f := range g.files {
		if f != nil {
			f.Close()
			g.dev.Remove(fmt.Sprintf("%sshard%04d", g.prefix, q))
		}
	}
}

// EdgeVal is an in-edge as seen by a vertex kernel.
type EdgeVal struct {
	Val float32 // current edge value
	W   float32 // immutable weight
}

// FloatKernel is a vertex-centric program with scalar state and scalar
// edge values.
type FloatKernel struct {
	Name string
	// Init produces the initial vertex state.
	Init func(id core.VertexID) float32
	// Apply folds the in-edge values into a new state.
	Apply func(id core.VertexID, state float32, in []EdgeVal) float32
	// Out computes the new value for the vertex's out-edges.
	Out func(id core.VertexID, state float32, outDeg int32) float32
	// Converged, if non-nil, stops when an iteration changes no state by
	// more than its tolerance; otherwise Iters bounds the run.
	Converged func(delta float64) bool
	Iters     int
}

// recSize is the shard record size.
var gcRecSize = pod.Size[shardEdge]()

// Run executes the kernel and returns the final vertex states.
func (g *GraphChi) Run(k FloatKernel) ([]float32, error) {
	state := make([]float32, g.n)
	for v := int64(0); v < g.n; v++ {
		state[v] = k.Init(core.VertexID(v))
	}
	// Seed edge values from initial states so iteration 1 sees them.
	if err := g.seedValues(k, state); err != nil {
		return nil, err
	}

	maxIters := k.Iters
	if maxIters <= 0 {
		maxIters = 1 << 20
	}
	inBuf := make([]EdgeVal, 0, 256)
	for it := 0; it < maxIters; it++ {
		var delta float64
		for p := 0; p < g.P; p++ {
			// Load the memory shard (in-edges of interval p) and re-sort
			// by destination.
			mem, err := g.readRange(p, 0, g.shardLen[p])
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			sort.Slice(mem, func(i, j int) bool { return mem[i].Dst < mem[j].Dst })
			g.ReSortTime += time.Since(t0)

			// Apply the kernel to every vertex of the interval, with its
			// (possibly empty) in-edge list.
			loV := int64(p) * g.perIvl
			hiV := loV + g.perIvl
			if hiV > g.n {
				hiV = g.n
			}
			idx := 0
			for v := loV; v < hiV; v++ {
				inBuf = inBuf[:0]
				for idx < len(mem) && int64(mem[idx].Dst) == v {
					inBuf = append(inBuf, EdgeVal{Val: mem[idx].Val, W: mem[idx].W})
					idx++
				}
				old := state[v]
				state[v] = k.Apply(core.VertexID(v), old, inBuf)
				if diff := float64(state[v]) - float64(old); diff > delta {
					delta = diff
				} else if -diff > delta {
					delta = -diff
				}
			}

			// Scatter: rewrite the out-edge values of interval p in every
			// shard's sliding window (P fragmented read+write pairs).
			for q := 0; q < g.P; q++ {
				lo, hi := g.windows[q][p], g.windows[q][p+1]
				if lo == hi {
					continue
				}
				win, err := g.readRange(q, lo, hi)
				if err != nil {
					return nil, err
				}
				for i := range win {
					win[i].Val = k.Out(win[i].Src, state[win[i].Src], g.outDeg[win[i].Src])
				}
				if _, err := g.files[q].WriteAt(pod.AsBytes(win), lo*int64(gcRecSize)); err != nil {
					return nil, err
				}
			}
		}
		g.Iterations = it + 1
		if k.Converged != nil && k.Converged(delta) {
			break
		}
	}
	return state, nil
}

// seedValues initializes all edge values from the initial vertex states.
func (g *GraphChi) seedValues(k FloatKernel, state []float32) error {
	for q := 0; q < g.P; q++ {
		recs, err := g.readRange(q, 0, g.shardLen[q])
		if err != nil {
			return err
		}
		for i := range recs {
			recs[i].Val = k.Out(recs[i].Src, state[recs[i].Src], g.outDeg[recs[i].Src])
		}
		if _, err := g.files[q].WriteAt(pod.AsBytes(recs), 0); err != nil {
			return err
		}
	}
	return nil
}

// readRange reads records [lo, hi) of shard q.
func (g *GraphChi) readRange(q int, lo, hi int64) ([]shardEdge, error) {
	recs := make([]shardEdge, hi-lo)
	if hi == lo {
		return recs, nil
	}
	raw := pod.AsBytes(recs)
	got := 0
	for got < len(raw) {
		n, err := g.files[q].ReadAt(raw[got:], lo*int64(gcRecSize)+int64(got))
		got += n
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if got != len(raw) {
		return nil, fmt.Errorf("baseline: shard %d short read: %d of %d bytes", q, got, len(raw))
	}
	return recs, nil
}

// PageRankKernel is damped PageRank with the shared conventions.
func PageRankKernel(iters int) FloatKernel {
	return FloatKernel{
		Name: "pagerank",
		Init: func(id core.VertexID) float32 { return 1 },
		Apply: func(id core.VertexID, state float32, in []EdgeVal) float32 {
			sum := float32(0)
			for _, e := range in {
				sum += e.Val
			}
			return 0.15 + 0.85*sum
		},
		Out: func(id core.VertexID, state float32, outDeg int32) float32 {
			if outDeg == 0 {
				return 0
			}
			return state / float32(outDeg)
		},
		Iters: iters,
	}
}

// WCCKernel is min-label propagation with float32 labels (exact for
// graphs under 2^24 vertices).
func WCCKernel() FloatKernel {
	return FloatKernel{
		Name: "wcc",
		Init: func(id core.VertexID) float32 { return float32(id) },
		Apply: func(id core.VertexID, state float32, in []EdgeVal) float32 {
			m := state
			for _, e := range in {
				if e.Val < m {
					m = e.Val
				}
			}
			return m
		},
		Out:       func(id core.VertexID, state float32, outDeg int32) float32 { return state },
		Converged: func(delta float64) bool { return delta == 0 },
	}
}

// BPKernel is a scalar belief-propagation-style smoothing kernel matching
// the X-Stream BP's communication pattern.
func BPKernel(iters int) FloatKernel {
	return FloatKernel{
		Name: "bp",
		Init: func(id core.VertexID) float32 {
			h := uint64(id)*0x9E3779B97F4A7C15 + 17
			h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
			return 0.3 + 0.4*float32(h>>40)/float32(1<<24)
		},
		Apply: func(id core.VertexID, state float32, in []EdgeVal) float32 {
			if len(in) == 0 {
				return state
			}
			sum := float32(0)
			for _, e := range in {
				sum += e.Val
			}
			return 0.5*state + 0.5*sum/float32(len(in))
		},
		Out:   func(id core.VertexID, state float32, outDeg int32) float32 { return 0.9*state + 0.05 },
		Iters: iters,
	}
}

// ALSLikeKernel is a rank-1 matrix factorization sweep: the same
// communication and I/O pattern as ALS with scalar factors.
func ALSLikeKernel(iters int) FloatKernel {
	return FloatKernel{
		Name: "als-like",
		Init: func(id core.VertexID) float32 {
			h := uint64(id)*0x9E3779B97F4A7C15 + 5
			h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
			return 0.1 + 0.8*float32(h>>40)/float32(1<<24)
		},
		Apply: func(id core.VertexID, state float32, in []EdgeVal) float32 {
			// Least-squares fit of scalar factor: argmin Σ (r - x·f)².
			var num, den float32
			for _, e := range in {
				num += e.W * e.Val
				den += e.Val * e.Val
			}
			if den == 0 {
				return state
			}
			return num / (den + 0.05)
		},
		Out:   func(id core.VertexID, state float32, outDeg int32) float32 { return state },
		Iters: iters,
	}
}
