package baseline

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// LocalQueueBFS is the multicore BFS of Agarwal et al. [12]: a
// level-synchronous traversal where each thread grows a private next-level
// queue (no shared-queue contention) and discovery is arbitrated with
// atomic compare-and-swap on the level array.
func LocalQueueBFS(g *CSR, root core.VertexID, threads int) []int32 {
	if threads < 1 {
		threads = 1
	}
	level := make([]int32, g.N)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	frontier := []core.VertexID{root}
	cur := int32(0)

	for len(frontier) > 0 {
		locals := make([][]core.VertexID, threads)
		var wg sync.WaitGroup
		chunk := (len(frontier) + threads - 1) / threads
		for t := 0; t < threads; t++ {
			lo, hi := t*chunk, (t+1)*chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(t, lo, hi int) {
				defer wg.Done()
				var local []core.VertexID
				for _, v := range frontier[lo:hi] {
					for _, u := range g.Neighbors(v) {
						if atomic.LoadInt32(&level[u]) < 0 &&
							atomic.CompareAndSwapInt32(&level[u], -1, cur+1) {
							local = append(local, u)
						}
					}
				}
				locals[t] = local
			}(t, lo, hi)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, l := range locals {
			frontier = append(frontier, l...)
		}
		cur++
	}
	return level
}

// HybridBFS is direction-optimizing BFS (Beamer et al. [18], the
// enhancement in Hong et al. [33] and Ligra [48]): top-down while the
// frontier is small, switching to bottom-up — scanning undiscovered
// vertices' in-edges for a discovered parent — once the frontier covers
// enough of the graph. gT is the transpose index (in-edges).
func HybridBFS(g, gT *CSR, root core.VertexID, threads int) []int32 {
	if threads < 1 {
		threads = 1
	}
	level := make([]int32, g.N)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	frontier := []core.VertexID{root}
	frontierEdges := g.OutDegree(root)
	cur := int32(0)
	// Beamer's alpha heuristic: go bottom-up when the frontier's edge
	// count exceeds remaining-edges/alpha.
	const alpha = 14
	remaining := int64(len(g.Dst))

	for len(frontier) > 0 {
		if frontierEdges*alpha > remaining {
			// Bottom-up step over all undiscovered vertices.
			nextCount := int64(0)
			var wg sync.WaitGroup
			chunk := (g.N + int64(threads) - 1) / int64(threads)
			var nextEdges atomic.Int64
			var found atomic.Int64
			for t := 0; t < threads; t++ {
				lo, hi := int64(t)*chunk, int64(t+1)*chunk
				if hi > g.N {
					hi = g.N
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(lo, hi int64) {
					defer wg.Done()
					for v := lo; v < hi; v++ {
						if atomic.LoadInt32(&level[v]) >= 0 {
							continue
						}
						for _, u := range gT.Neighbors(core.VertexID(v)) {
							if atomic.LoadInt32(&level[u]) == cur {
								atomic.StoreInt32(&level[v], cur+1)
								found.Add(1)
								nextEdges.Add(g.OutDegree(core.VertexID(v)))
								break
							}
						}
					}
				}(lo, hi)
			}
			wg.Wait()
			nextCount = found.Load()
			if nextCount == 0 {
				break
			}
			// Rebuild a sparse frontier only if it shrank again.
			frontier = frontier[:0]
			for v := int64(0); v < g.N; v++ {
				if level[v] == cur+1 {
					frontier = append(frontier, core.VertexID(v))
				}
			}
			frontierEdges = nextEdges.Load()
			cur++
			continue
		}
		// Top-down step (local queues).
		locals := make([][]core.VertexID, threads)
		var wg sync.WaitGroup
		var nextEdges atomic.Int64
		chunk := (len(frontier) + threads - 1) / threads
		for t := 0; t < threads; t++ {
			lo, hi := t*chunk, (t+1)*chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(t, lo, hi int) {
				defer wg.Done()
				var local []core.VertexID
				for _, v := range frontier[lo:hi] {
					for _, u := range g.Neighbors(v) {
						if atomic.LoadInt32(&level[u]) < 0 &&
							atomic.CompareAndSwapInt32(&level[u], -1, cur+1) {
							local = append(local, u)
							nextEdges.Add(g.OutDegree(u))
						}
					}
				}
				locals[t] = local
			}(t, lo, hi)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, l := range locals {
			frontier = append(frontier, l...)
		}
		frontierEdges = nextEdges.Load()
		cur++
	}
	return level
}
