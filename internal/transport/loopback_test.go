package transport_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/streambuf"
	"repro/internal/transport"
	"repro/internal/transport/conformance"
)

// newLoopbackTransport adapts a Loopback exchange (with the given fault
// schedule) into an UpdateTransport for the suite and the chaos tests.
func newLoopbackTransport(t *testing.T, k int, nv int64, capacity, threads int, combine bool, opts transport.Options) (core.UpdateTransport[int64], *transport.Loopback) {
	t.Helper()
	split := core.NewSplit(nv, k)
	plan, err := streambuf.NewPlan(k, k)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	var folder *streambuf.Folder[core.Update[int64]]
	if combine {
		folder = core.NewUpdateFolder(split, threads, func(a, b int64) int64 { return a + b })
	}
	key := func(u core.Update[int64]) uint32 { return split.Of(u.Dst) }
	lb := transport.NewLoopback(k, opts)
	return core.NewExchangeTransport(lb, k, capacity, plan, threads, key, folder), lb
}

// TestLoopbackConformance pins the channel-backed loopback worker
// exchange — the dress rehearsal for a network transport — to the same
// UpdateTransport contract as the two engine-native implementations.
func TestLoopbackConformance(t *testing.T) {
	conformance.Run(t, conformance.Maker{
		Name: "loopback",
		New: func(t *testing.T, k int, nv int64, capacity, threads int, combine bool) core.UpdateTransport[int64] {
			tp, _ := newLoopbackTransport(t, k, nv, capacity, threads, combine, transport.Options{})
			return tp
		},
		SingleSenderFIFO: true,
	})
}

// sendSealDrain pushes n updates through tp and returns the per-vertex
// sums, the flow, and any error from Seal or Drain.
func sendSealDrain(t *testing.T, tp core.UpdateTransport[int64], k int, nv int64, n int) (map[core.VertexID]int64, error) {
	t.Helper()
	split := core.NewSplit(nv, k)
	sums := make(map[core.VertexID]int64)
	for i := 0; i < n; i++ {
		u := core.Update[int64]{Dst: core.VertexID(int64(i*37) % nv), Val: int64(i) + 1}
		sums[u.Dst] += u.Val
		if !tp.Send(i%k, []core.Update[int64]{u}) {
			t.Fatalf("Send %d rejected", i)
		}
	}
	if _, err := tp.Seal(); err != nil {
		return nil, err
	}
	got := make(map[core.VertexID]int64)
	for p := 0; p < k; p++ {
		if err := tp.Drain(p, func(run []core.Update[int64]) error {
			for _, u := range run {
				if split.Of(u.Dst) != uint32(p) {
					t.Fatalf("vertex %d drained from partition %d", u.Dst, p)
				}
				got[u.Dst] += u.Val
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	for dst, w := range sums {
		if got[dst] != w {
			t.Fatalf("vertex %d: sum want %d, got %d", dst, w, got[dst])
		}
	}
	if len(got) != len(sums) {
		t.Fatalf("destinations: want %d, got %d", len(sums), len(got))
	}
	return got, nil
}

// TestLoopbackRetryableFaults proves the transient-loss schedule is fully
// absorbed by the send retry layer: results are exactly the fault-free
// sums, faults demonstrably fired, and the retries show up in the
// transport's own counters.
func TestLoopbackRetryableFaults(t *testing.T) {
	const k, nv, n = 4, int64(1 << 10), 4000
	tp, lb := newLoopbackTransport(t, k, nv, n, 2, false, transport.Options{
		Seed:    42,
		DropErr: 0.05,
	})
	defer tp.Close()
	if _, err := sendSealDrain(t, tp, k, nv, n); err != nil {
		t.Fatalf("run with retryable faults: %v", err)
	}
	if lb.Faults() == 0 {
		t.Fatal("fault schedule never fired")
	}
	if tc := tp.Counters(); tc.Retries == 0 {
		t.Fatal("retryable drops absorbed without any counted retry")
	}
}

// TestLoopbackDuplicateFrames proves duplicated delivery is invisible:
// sequence deduplication yields bit-identical sums.
func TestLoopbackDuplicateFrames(t *testing.T) {
	const k, nv, n = 4, int64(1 << 10), 4000
	tp, lb := newLoopbackTransport(t, k, nv, n, 2, false, transport.Options{
		Seed:      7,
		Duplicate: 0.1,
	})
	defer tp.Close()
	if _, err := sendSealDrain(t, tp, k, nv, n); err != nil {
		t.Fatalf("run with duplicated frames: %v", err)
	}
	if lb.Faults() == 0 {
		t.Fatal("fault schedule never fired")
	}
}

// TestLoopbackSilentLoss proves silently dropped frames surface as the
// typed ErrExchangeLost — never as a quietly incomplete result.
func TestLoopbackSilentLoss(t *testing.T) {
	const k, nv, n = 4, int64(1 << 10), 4000
	tp, lb := newLoopbackTransport(t, k, nv, n, 2, false, transport.Options{
		Seed:       3,
		SilentDrop: 0.02,
		MaxFaults:  4,
	})
	defer tp.Close()
	_, err := sendSealDrain(t, tp, k, nv, n)
	if err == nil {
		t.Fatal("silent frame loss did not surface as an error")
	}
	if !errors.Is(err, core.ErrExchangeLost) {
		t.Fatalf("lost frames surfaced as %v, want ErrExchangeLost", err)
	}
	if lb.Faults() == 0 {
		t.Fatal("fault schedule never fired")
	}
}

// TestLoopbackTornFrames proves corrupted frames surface as the typed
// ErrExchangeCorrupt — never as wrong updates.
func TestLoopbackTornFrames(t *testing.T) {
	const k, nv, n = 4, int64(1 << 10), 4000
	tp, lb := newLoopbackTransport(t, k, nv, n, 2, false, transport.Options{
		Seed:      9,
		Torn:      0.02,
		MaxFaults: 4,
	})
	defer tp.Close()
	_, err := sendSealDrain(t, tp, k, nv, n)
	if err == nil {
		t.Fatal("torn frames did not surface as an error")
	}
	if !errors.Is(err, core.ErrExchangeCorrupt) {
		t.Fatalf("torn frames surfaced as %v, want ErrExchangeCorrupt", err)
	}
	if lb.Faults() == 0 {
		t.Fatal("fault schedule never fired")
	}
}

// TestLoopbackDeterministicSchedule pins the splitmix64 schedule: the same
// seed over the same frame sequence injects the same fault count.
func TestLoopbackDeterministicSchedule(t *testing.T) {
	run := func() int64 {
		const k, nv, n = 4, int64(1 << 10), 4000
		tp, lb := newLoopbackTransport(t, k, nv, n, 1, false, transport.Options{
			Seed:    1234,
			DropErr: 0.05,
		})
		defer tp.Close()
		if _, err := sendSealDrain(t, tp, k, nv, n); err != nil {
			t.Fatalf("run: %v", err)
		}
		return lb.Faults()
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("fault schedule not deterministic: %d vs %d", a, b)
	}
}
