// Package conformance is the reusable contract suite every
// core.UpdateTransport implementation must pass. The three shipped
// transports — the builtin in-memory shuffle, the out-of-core update-file
// writeback and the loopback worker exchange — all run the same battery:
// delivery completeness, single-sender per-partition FIFO order, combiner
// fold equivalence, flush/close idempotence and multi-iteration reuse,
// concurrent-sender and concurrent-drain safety (meaningful under -race),
// and the transport's own traffic counters. A fourth (network) transport
// is exchangeable exactly when it passes this suite too.
package conformance

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/pod"
)

// Maker describes one UpdateTransport implementation to Run. New must
// build a transport for k partitions over nv vertices that (a) routes by
// core.NewSplit(nv, k).Of(u.Dst), (b) accepts capacity records per
// iteration through the Send/Room/Flush window protocol, and (c) when
// combine is set, folds same-destination updates with int64 addition
// (core.NewUpdateFolder over the same split). The suite owns the
// transport's lifecycle and closes it.
type Maker struct {
	// Name labels the implementation in subtest paths.
	Name string
	// New builds a fresh transport under test; see the Maker contract.
	New func(t *testing.T, k int, nv int64, capacity, threads int, combine bool) core.UpdateTransport[int64]
	// Window returns how many records fit one send window without an
	// intervening Flush, given the per-iteration capacity — what
	// uncoordinated concurrent senders may rely on. nil means the whole
	// capacity (unwindowed transports).
	Window func(capacity int) int
	// SingleSenderFIFO declares that batches sent by a single goroutine
	// drain from each partition in send order. All three shipped
	// transports guarantee this (stable counting shuffle, in-order
	// writeback windows, FIFO wires + stable shuffle); a transport that
	// does not must document the absence by setting this false, which
	// skips the ordering subtest.
	SingleSenderFIFO bool
}

// update is shorthand for the suite's record type.
type update = core.Update[int64]

// rng is a splitmix64 stream for deterministic workloads.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// genUpdates returns n updates with destinations spread over [0, nv).
func genUpdates(n int, nv int64, seed uint64) []update {
	r := rng(seed)
	out := make([]update, n)
	for i := range out {
		out[i] = update{Dst: core.VertexID(r.next() % uint64(nv)), Val: int64(i) + 1}
	}
	return out
}

// sendAll drives the engines' coordinator protocol: reserve room, flush a
// full window, split batches that exceed the window.
func sendAll(t *testing.T, tp core.UpdateTransport[int64], src int, batch []update) (sends int) {
	t.Helper()
	for len(batch) > 0 {
		room := tp.Room()
		if room == 0 {
			if err := tp.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if tp.Room() == 0 {
				t.Fatalf("Room still 0 after Flush")
			}
			continue
		}
		take := len(batch)
		if take > room {
			take = room
		}
		if !tp.Send(src, batch[:take]) {
			t.Fatalf("Send rejected %d records with room %d", take, room)
		}
		sends++
		batch = batch[take:]
	}
	return sends
}

// seal wraps Seal with the IterFlow invariant check.
func seal(t *testing.T, tp core.UpdateTransport[int64]) core.IterFlow {
	t.Helper()
	flow, err := tp.Seal()
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if flow.Appended-flow.Combined != flow.Delivered {
		t.Fatalf("IterFlow invariant violated: appended %d - combined %d != delivered %d",
			flow.Appended, flow.Combined, flow.Delivered)
	}
	return flow
}

// drainAll drains every partition sequentially, verifying each record
// landed in the partition owning its destination, and returns the records
// per partition.
func drainAll(t *testing.T, tp core.UpdateTransport[int64], split core.Split) [][]update {
	t.Helper()
	got := make([][]update, split.K)
	for p := 0; p < split.K; p++ {
		pend := tp.Pending(p)
		if err := tp.Drain(p, func(run []update) error {
			for _, u := range run {
				if split.Of(u.Dst) != uint32(p) {
					return fmt.Errorf("update for vertex %d (partition %d) drained from partition %d",
						u.Dst, split.Of(u.Dst), p)
				}
			}
			got[p] = append(got[p], run...)
			return nil
		}); err != nil {
			t.Fatalf("Drain(%d): %v", p, err)
		}
		if pend != int64(len(got[p])) {
			t.Fatalf("Pending(%d) = %d, drained %d", p, pend, len(got[p]))
		}
	}
	return got
}

// sumsByDst folds updates into per-destination sums — the semantic content
// a transport must preserve whatever it combines.
func sumsByDst(batches ...[]update) map[core.VertexID]int64 {
	m := make(map[core.VertexID]int64)
	for _, b := range batches {
		for _, u := range b {
			m[u.Dst] += u.Val
		}
	}
	return m
}

func checkSums(t *testing.T, want, got map[core.VertexID]int64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("destinations: want %d, got %d", len(want), len(got))
	}
	for dst, w := range want {
		if g, ok := got[dst]; !ok || g != w {
			t.Fatalf("vertex %d: sum want %d, got %d (present %v)", dst, w, g, ok)
		}
	}
}

// Run exercises one UpdateTransport implementation against the full
// contract. Call it from each implementation's own package test so every
// transport — present and future — is pinned to the same behavior.
func Run(t *testing.T, mk Maker) {
	window := mk.Window
	if window == nil {
		window = func(capacity int) int { return capacity }
	}
	const (
		k       = 8
		nv      = int64(1 << 12)
		threads = 4
	)
	split := core.NewSplit(nv, k)
	recSize := int64(pod.Size[update]())

	t.Run("delivery", func(t *testing.T) {
		const n = 20000
		tp := mk.New(t, k, nv, n, threads, false)
		defer tp.Close()
		ups := genUpdates(n, nv, 1)
		var sends, cross int
		for off, b := 0, 0; off < n; b++ {
			end := off + 500 + b%301
			if end > n {
				end = n
			}
			src := b % k
			for _, u := range ups[off:end] {
				if split.Of(u.Dst) != uint32(src) {
					cross++
				}
			}
			sends += sendAll(t, tp, src, ups[off:end])
			off = end
		}
		flow := seal(t, tp)
		if flow.Appended != n {
			t.Fatalf("Appended = %d, sent %d", flow.Appended, n)
		}
		if flow.Combined != 0 {
			t.Fatalf("Combined = %d without a combiner", flow.Combined)
		}
		got := drainAll(t, tp, split)
		var total int
		for _, g := range got {
			total += len(g)
		}
		if int64(total) != flow.Delivered {
			t.Fatalf("drained %d records, Delivered = %d", total, flow.Delivered)
		}
		// Exact multiset equality per partition: sort (dst, val) pairs.
		want := make([][]update, k)
		for _, u := range ups {
			p := split.Of(u.Dst)
			want[p] = append(want[p], u)
		}
		for p := 0; p < k; p++ {
			a, b := want[p], got[p]
			if len(a) != len(b) {
				t.Fatalf("partition %d: want %d records, got %d", p, len(a), len(b))
			}
			less := func(s []update) func(i, j int) bool {
				return func(i, j int) bool {
					if s[i].Dst != s[j].Dst {
						return s[i].Dst < s[j].Dst
					}
					return s[i].Val < s[j].Val
				}
			}
			sort.Slice(a, less(a))
			sort.Slice(b, less(b))
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("partition %d record %d: want %+v, got %+v", p, i, a[i], b[i])
				}
			}
		}
		if err := tp.EndIteration(); err != nil {
			t.Fatalf("EndIteration: %v", err)
		}
		for p := 0; p < k; p++ {
			if n := tp.Pending(p); n != 0 {
				t.Fatalf("Pending(%d) = %d after EndIteration", p, n)
			}
		}
		tc := tp.Counters()
		if tc.Batches != int64(sends) {
			t.Fatalf("Counters.Batches = %d, made %d sends", tc.Batches, sends)
		}
		if tc.Bytes != int64(n)*recSize {
			t.Fatalf("Counters.Bytes = %d, want %d", tc.Bytes, int64(n)*recSize)
		}
		if tc.Cross != int64(cross) {
			t.Fatalf("Counters.Cross = %d, want %d", tc.Cross, cross)
		}
	})

	t.Run("ordering", func(t *testing.T) {
		if !mk.SingleSenderFIFO {
			t.Skip("transport documents no per-partition ordering guarantee")
		}
		const n = 6000
		target := 3
		lo, hi := split.Range(target, nv)
		tp := mk.New(t, k, nv, n, threads, false)
		defer tp.Close()
		ups := make([]update, n)
		for i := range ups {
			ups[i] = update{Dst: core.VertexID(lo + int64(i)%(hi-lo)), Val: int64(i)}
		}
		for off := 0; off < n; off += 100 {
			sendAll(t, tp, target, ups[off:off+100])
		}
		seal(t, tp)
		var vals []int64
		if err := tp.Drain(target, func(run []update) error {
			for _, u := range run {
				vals = append(vals, u.Val)
			}
			return nil
		}); err != nil {
			t.Fatalf("Drain: %v", err)
		}
		if len(vals) != n {
			t.Fatalf("drained %d of %d records", len(vals), n)
		}
		for i, v := range vals {
			if v != int64(i) {
				t.Fatalf("record %d out of order: val %d (single-sender FIFO violated)", i, v)
			}
		}
	})

	t.Run("combining", func(t *testing.T) {
		const n = 20000
		tp := mk.New(t, k, nv, n, threads, true)
		defer tp.Close()
		// Concentrated destinations so the fold has duplicates to merge.
		r := rng(11)
		ups := make([]update, n)
		for i := range ups {
			ups[i] = update{Dst: core.VertexID(r.next() % 64 * uint64(nv) / 64), Val: int64(i) + 1}
		}
		for off := 0; off < n; off += 1000 {
			sendAll(t, tp, (off/1000)%k, ups[off:off+1000])
		}
		flow := seal(t, tp)
		if flow.Appended != n {
			t.Fatalf("Appended = %d, sent %d", flow.Appended, n)
		}
		got := drainAll(t, tp, split)
		var drained int64
		for _, g := range got {
			drained += int64(len(g))
		}
		if drained != flow.Delivered {
			t.Fatalf("drained %d records, Delivered = %d", drained, flow.Delivered)
		}
		all := make([]update, 0, drained)
		for _, g := range got {
			all = append(all, g...)
		}
		checkSums(t, sumsByDst(ups), sumsByDst(all))
	})

	t.Run("iterations", func(t *testing.T) {
		const n = 5000
		tp := mk.New(t, k, nv, n, threads, true)
		defer tp.Close()
		for iter := 0; iter < 3; iter++ {
			// Redundant flushes of an empty window are no-ops.
			if err := tp.Flush(); err != nil {
				t.Fatalf("iter %d: empty Flush: %v", iter, err)
			}
			ups := genUpdates(n, nv, uint64(100+iter))
			for off := 0; off < n; off += 500 {
				sendAll(t, tp, (off/500)%k, ups[off:off+500])
			}
			flow := seal(t, tp)
			if flow.Appended != n {
				t.Fatalf("iter %d: Appended = %d, sent %d", iter, flow.Appended, n)
			}
			got := drainAll(t, tp, split)
			all := make([]update, 0, n)
			for _, g := range got {
				all = append(all, g...)
			}
			checkSums(t, sumsByDst(ups), sumsByDst(all))
			if err := tp.EndIteration(); err != nil {
				t.Fatalf("iter %d: EndIteration: %v", iter, err)
			}
		}
	})

	t.Run("empty-iteration", func(t *testing.T) {
		tp := mk.New(t, k, nv, 1000, threads, false)
		defer tp.Close()
		flow := seal(t, tp)
		if flow.Appended != 0 || flow.Delivered != 0 {
			t.Fatalf("empty iteration flow = %+v", flow)
		}
		for p := 0; p < k; p++ {
			if err := tp.Drain(p, func(run []update) error {
				return fmt.Errorf("drained %d records from an empty iteration", len(run))
			}); err != nil {
				t.Fatalf("Drain(%d): %v", p, err)
			}
		}
		if err := tp.EndIteration(); err != nil {
			t.Fatalf("EndIteration: %v", err)
		}
		// The transport still works after an empty iteration.
		ups := genUpdates(500, nv, 5)
		sendAll(t, tp, 0, ups)
		if flow := seal(t, tp); flow.Appended != 500 {
			t.Fatalf("post-empty Appended = %d, want 500", flow.Appended)
		}
	})

	t.Run("concurrent-send", func(t *testing.T) {
		const capacity = 16000
		win := window(capacity)
		if win > capacity {
			win = capacity
		}
		per := win / k
		tp := mk.New(t, k, nv, capacity, threads, false)
		defer tp.Close()
		batches := make([][]update, k)
		for s := 0; s < k; s++ {
			batches[s] = genUpdates(per, nv, uint64(200+s))
		}
		var wg sync.WaitGroup
		for s := 0; s < k; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				// Uncoordinated senders within one window, as engine
				// scatter workers send within the coordinator's reserved
				// room.
				for off := 0; off < per; off += 64 {
					end := off + 64
					if end > per {
						end = per
					}
					if !tp.Send(s, batches[s][off:end]) {
						t.Errorf("sender %d: Send rejected within window", s)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		flow := seal(t, tp)
		if flow.Appended != int64(per*k) {
			t.Fatalf("Appended = %d, sent %d", flow.Appended, per*k)
		}
		got := drainAll(t, tp, split)
		all := make([]update, 0, per*k)
		for _, g := range got {
			all = append(all, g...)
		}
		checkSums(t, sumsByDst(batches...), sumsByDst(all))
	})

	t.Run("concurrent-drain", func(t *testing.T) {
		const n = 16000
		tp := mk.New(t, k, nv, n, threads, false)
		defer tp.Close()
		ups := genUpdates(n, nv, 31)
		for off := 0; off < n; off += 800 {
			sendAll(t, tp, (off/800)%k, ups[off:off+800])
		}
		flow := seal(t, tp)
		got := make([][]update, k)
		var wg sync.WaitGroup
		for p := 0; p < k; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				if err := tp.Drain(p, func(run []update) error {
					got[p] = append(got[p], run...)
					return nil
				}); err != nil {
					t.Errorf("Drain(%d): %v", p, err)
				}
			}(p)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		var total int64
		all := make([]update, 0, n)
		for _, g := range got {
			total += int64(len(g))
			all = append(all, g...)
		}
		if total != flow.Delivered {
			t.Fatalf("drained %d records concurrently, Delivered = %d", total, flow.Delivered)
		}
		checkSums(t, sumsByDst(ups), sumsByDst(all))
	})

	t.Run("drain-error", func(t *testing.T) {
		tp := mk.New(t, k, nv, 2000, threads, false)
		defer tp.Close()
		ups := genUpdates(2000, nv, 77)
		sendAll(t, tp, 0, ups)
		seal(t, tp)
		sentinel := errors.New("gather rejected the chunk")
		p := -1
		for cand := 0; cand < k; cand++ {
			if tp.Pending(cand) > 0 {
				p = cand
				break
			}
		}
		if p < 0 {
			t.Fatal("no partition has pending records")
		}
		err := tp.Drain(p, func(run []update) error { return sentinel })
		if !errors.Is(err, sentinel) {
			t.Fatalf("Drain did not propagate the callback error: %v", err)
		}
	})

	t.Run("close-idempotent", func(t *testing.T) {
		// Close mid-iteration (live send side, never sealed) and again.
		tp := mk.New(t, k, nv, 1000, threads, false)
		sendAll(t, tp, 0, genUpdates(100, nv, 9))
		if err := tp.Close(); err != nil {
			t.Fatalf("Close with a live send side: %v", err)
		}
		if err := tp.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	})
}
