// Package transport holds update-transport implementations beyond the two
// engine-native ones (core's in-memory shuffle, diskengine's update-file
// writeback). Its loopback worker transport is a channel-backed
// core.Exchange that exercises the transport API the way a network
// exchange will — per-destination framing, bounded wires with
// backpressure, asynchronous out-of-order partition arrival — plus a
// storage.NewFaulty-style seeded fault schedule (dropped, duplicated and
// torn frames) for the chaos suite, so the error taxonomy of a real
// network (retryable loss, detected loss, detected corruption) is pinned
// before any network code exists.
package transport

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// Options configures a loopback exchange. The probabilistic fields are
// per-frame probabilities in [0, 1], drawn from a deterministic splitmix64
// schedule seeded by Seed — the same seed over the same frame sequence
// injects the same faults, exactly like storage.FaultyOptions.
type Options struct {
	// WireDepth is the per-destination wire capacity in frames; a sender
	// blocks (backpressure) when a destination's wire is full. 0 means 8.
	WireDepth int
	// Seed fixes the fault schedule.
	Seed int64
	// DropErr is the probability a frame is dropped with an error wrapping
	// core.ErrExchangeTransient — the retryable loss a sender absorbs by
	// re-sending (counted in TransportCounters.Retries).
	DropErr float64
	// SilentDrop is the probability a frame is dropped while Send reports
	// success — the loss the receive-side reconciliation must detect as
	// core.ErrExchangeLost, never as a silently incomplete gather.
	SilentDrop float64
	// Duplicate is the probability a frame is delivered twice; sequence
	// deduplication must make the duplicate invisible to results.
	Duplicate float64
	// Torn is the probability a frame arrives with one payload bit flipped
	// — the corruption the frame CRC must detect as
	// core.ErrExchangeCorrupt, never as wrong updates.
	Torn float64
	// MaxFaults bounds the total number of injected faults (all kinds);
	// zero means unlimited. Chaos runs that must terminate bound this.
	MaxFaults int64
}

// Loopback is an in-process core.Exchange: k bounded wire channels (one
// per destination partition) drained by one mover goroutine each into
// per-destination mailboxes. Senders interleave across destinations and
// movers deliver asynchronously, so partitions arrive out of order with
// real backpressure — the concurrency shape of a worker-to-worker network
// exchange, without the network. It also implements the chaos harness's
// storage.FaultInjector accessor via Faults.
type Loopback struct {
	k     int
	opts  Options
	wires []chan []byte

	mu     sync.Mutex
	cond   *sync.Cond
	boxes  [][][]byte // delivered frames per destination
	enq    []int64    // frames accepted into each wire
	moved  []int64    // frames delivered into each mailbox
	closed bool

	rngState uint64
	faults   int64
}

// NewLoopback builds a loopback exchange for k destination partitions.
func NewLoopback(k int, opts Options) *Loopback {
	if opts.WireDepth <= 0 {
		opts.WireDepth = 8
	}
	l := &Loopback{
		k:     k,
		opts:  opts,
		wires: make([]chan []byte, k),
		boxes: make([][][]byte, k),
		enq:   make([]int64, k),
		moved: make([]int64, k),
	}
	l.cond = sync.NewCond(&l.mu)
	l.rngState = uint64(opts.Seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for d := 0; d < k; d++ {
		l.wires[d] = make(chan []byte, opts.WireDepth)
		go l.mover(d)
	}
	return l
}

// mover is destination d's delivery goroutine: it drains d's wire into
// d's mailbox, overlapping delivery with the senders' next frames.
func (l *Loopback) mover(d int) {
	for frame := range l.wires[d] {
		l.mu.Lock()
		l.boxes[d] = append(l.boxes[d], frame)
		l.moved[d]++
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// next advances the splitmix64 schedule. Callers hold l.mu.
func (l *Loopback) next() uint64 {
	l.rngState += 0x9e3779b97f4a7c15
	z := l.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// decide rolls the schedule against probability p and, on a hit, charges
// one fault against MaxFaults. The PRNG always advances on a non-zero p so
// the schedule stays aligned even after the fault budget is exhausted.
func (l *Loopback) decide(p float64) bool {
	if p <= 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	roll := float64(l.next()>>11) / (1 << 53)
	if roll >= p {
		return false
	}
	if l.opts.MaxFaults > 0 && l.faults >= l.opts.MaxFaults {
		return false
	}
	l.faults++
	return true
}

// intn returns a schedule-driven value in [0, n).
func (l *Loopback) intn(n int) int {
	if n <= 1 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.next() % uint64(n))
}

// Faults returns the number of faults injected so far (the
// storage.FaultInjector accessor).
func (l *Loopback) Faults() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.faults
}

// Send implements core.Exchange: the frame is copied onto destination
// dst's wire, blocking when the wire is full. The fault schedule may drop
// it with a retryable error, drop it silently, deliver it twice, or tear
// one payload bit.
func (l *Loopback) Send(dst int, frame []byte) error {
	if dst < 0 || dst >= l.k {
		return fmt.Errorf("transport: loopback send to partition %d of %d", dst, l.k)
	}
	if l.decide(l.opts.DropErr) {
		return fmt.Errorf("loopback wire %d dropped a %d-byte frame: %w", dst, len(frame), core.ErrExchangeTransient)
	}
	if l.decide(l.opts.SilentDrop) {
		return nil // lost in flight; reconciliation at Seal must notice
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	if l.decide(l.opts.Torn) && len(cp) > 0 {
		// Flip a bit in the checksummed payload region (the frame tail),
		// so the tear is always the detectable kind: a header bit could
		// alias another frame's identity instead of failing the CRC.
		const hdr = 16
		lo := hdr
		if lo >= len(cp) {
			lo = len(cp) - 1
		}
		i := l.intn((len(cp) - lo) * 8)
		cp[lo+i/8] ^= 1 << (i % 8)
	}
	n := 1
	if l.decide(l.opts.Duplicate) {
		n = 2
	}
	for ; n > 0; n-- {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return fmt.Errorf("transport: loopback send to partition %d after close", dst)
		}
		l.enq[dst]++
		l.mu.Unlock()
		l.wires[dst] <- cp
	}
	return nil
}

// Drain implements core.Exchange: it waits until every frame accepted for
// dst has been delivered by dst's mover, then streams the mailbox through
// fn in delivery order and forgets it.
func (l *Loopback) Drain(dst int, fn func(frame []byte) error) error {
	if dst < 0 || dst >= l.k {
		return fmt.Errorf("transport: loopback drain of partition %d of %d", dst, l.k)
	}
	l.mu.Lock()
	for l.moved[dst] < l.enq[dst] {
		l.cond.Wait()
	}
	frames := l.boxes[dst]
	l.boxes[dst] = nil
	l.mu.Unlock()
	for _, f := range frames {
		if err := fn(f); err != nil {
			return err
		}
	}
	return nil
}

// Close implements core.Exchange: the wires close and the movers exit.
// Idempotent.
func (l *Loopback) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	for _, w := range l.wires {
		close(w)
	}
	return nil
}
