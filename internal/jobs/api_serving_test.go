package jobs

// api_serving_test.go drives the serving features end-to-end over HTTP:
// the repeated-job result cache (zero edges streamed on the second
// request), the 503 + Retry-After overload path, and cursor pagination.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func postJob(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func getMap(t *testing.T, url, path string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return out
}

func pollDone(t *testing.T, url, id string) {
	t.Helper()
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		info := getMap(t, url, "/jobs/"+id, http.StatusOK)
		switch info["status"].(string) {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s ended as %v", id, info)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
}

// TestAPICachedRepeat: the second identical submission over HTTP is
// served from the result cache — done at submit, stats showing zero
// edges streamed, and the scheduler's global edge counter unmoved.
func TestAPICachedRepeat(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	const body = `{"dataset":"g","algo":"bfs","params":{"root":3}}`
	resp, out := postJob(t, srv.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, out)
	}
	id1 := out["id"].(string)
	pollDone(t, srv.URL, id1)
	m1 := getMap(t, srv.URL, "/metrics", http.StatusOK)
	if m1["edges_streamed"].(float64) <= 0 || m1["result_cache_misses"].(float64) != 1 {
		t.Fatalf("metrics after first run: %v", m1)
	}

	resp, out = postJob(t, srv.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d (%v)", resp.StatusCode, out)
	}
	id2 := out["id"].(string)
	info := getMap(t, srv.URL, "/jobs/"+id2, http.StatusOK)
	if info["status"].(string) != "done" || info["cached"] != true {
		t.Fatalf("resubmission not cached: %v", info)
	}
	res := getMap(t, srv.URL, "/jobs/"+id2+"/result", http.StatusOK)
	if res["cached"] != true {
		t.Fatalf("result not marked cached: %v", res)
	}
	stats := res["stats"].(map[string]any)
	if stats["EdgesStreamed"].(float64) != 0 {
		t.Fatalf("cached result streamed edges: %v", stats)
	}
	if eng := stats["Engine"].(string); !strings.HasPrefix(eng, "cache(") {
		t.Fatalf("cached result engine %q", eng)
	}
	// Payloads agree with the computed run.
	res1 := getMap(t, srv.URL, "/jobs/"+id1+"/result", http.StatusOK)
	l1 := res1["result"].(map[string]any)["levels"].([]any)
	l2 := res["result"].(map[string]any)["levels"].([]any)
	if len(l1) != len(l2) {
		t.Fatalf("payload sizes differ: %d vs %d", len(l1), len(l2))
	}
	for v := range l1 {
		if l1[v] != l2[v] {
			t.Fatalf("payloads diverge at vertex %d", v)
		}
	}
	m2 := getMap(t, srv.URL, "/metrics", http.StatusOK)
	if m2["result_cache_hits"].(float64) != 1 {
		t.Fatalf("hit not counted: %v", m2)
	}
	if m2["edges_streamed"] != m1["edges_streamed"] {
		t.Fatalf("second request streamed edges: %v -> %v", m1["edges_streamed"], m2["edges_streamed"])
	}
}

// TestAPIOverloaded503: an over-quota submission is 503 with Retry-After
// — a transient rejection, not a 400.
func TestAPIOverloaded503(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1, DefaultQuota: Quota{MaxQueued: 1}})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	s.Pause()
	resp, out := postJob(t, srv.URL, `{"dataset":"g","algo":"wcc","tenant":"a"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d (%v)", resp.StatusCode, out)
	}
	id := out["id"].(string)
	resp, out = postJob(t, srv.URL, `{"dataset":"g","algo":"bfs","tenant":"a"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-quota submit: %d, want 503 (%v)", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if out["error"] == "" {
		t.Fatalf("503 without error body: %v", out)
	}
	// Validation failures stay 400: retrying them can never succeed.
	if resp, _ := postJob(t, srv.URL, `{"dataset":"g","algo":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("validation failure: %d, want 400", resp.StatusCode)
	}
	s.Resume()
	pollDone(t, srv.URL, id)
	// With the queue drained the tenant has headroom again.
	if resp, _ := postJob(t, srv.URL, `{"dataset":"g","algo":"bfs","tenant":"a"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain submit: %d, want 202", resp.StatusCode)
	}
}

// TestAPIPagination: cursor-walking a result reassembles exactly the
// unpaginated vertex vector, scalars repeat on every page, and bad page
// parameters are 400.
func TestAPIPagination(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	resp, out := postJob(t, srv.URL, `{"dataset":"g","algo":"wcc"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%v)", resp.StatusCode, out)
	}
	id := out["id"].(string)
	pollDone(t, srv.URL, id)

	// Small results pass through whole: no page object.
	full := getMap(t, srv.URL, "/jobs/"+id+"/result", http.StatusOK)
	if _, paged := full["page"]; paged {
		t.Fatalf("unpaginated fetch grew a page object: %v", full["page"])
	}
	want := full["result"].(map[string]any)["labels"].([]any)
	if len(want) == 0 {
		t.Fatal("empty labels vector")
	}

	var got []any
	cursor, limit := 0, 100
	for page := 0; ; page++ {
		if page > len(want)/limit+1 {
			t.Fatal("cursor walk does not terminate")
		}
		res := getMap(t, srv.URL,
			"/jobs/"+id+"/result?cursor="+strconv.Itoa(cursor)+"&limit="+strconv.Itoa(limit), http.StatusOK)
		payload := res["result"].(map[string]any)
		// Scalar fields repeat on every page.
		if payload["components"] == nil {
			t.Fatalf("page %d lost scalar fields: %v", page, payload)
		}
		got = append(got, payload["labels"].([]any)...)
		pi := res["page"].(map[string]any)
		if int(pi["total"].(float64)) != len(want) || int(pi["cursor"].(float64)) != cursor {
			t.Fatalf("page info: %v (cursor %d, total %d)", pi, cursor, len(want))
		}
		next, more := pi["next_cursor"]
		if !more {
			break
		}
		cursor = int(next.(float64))
	}
	if len(got) != len(want) {
		t.Fatalf("reassembled %d entries, want %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("reassembly diverges at vertex %d: %v vs %v", v, got[v], want[v])
		}
	}

	// A cursor past the end is an empty final page, not an error.
	res := getMap(t, srv.URL, "/jobs/"+id+"/result?cursor=1000000&limit=100", http.StatusOK)
	if n := len(res["result"].(map[string]any)["labels"].([]any)); n != 0 {
		t.Fatalf("past-the-end page has %d entries", n)
	}
	if _, more := res["page"].(map[string]any)["next_cursor"]; more {
		t.Fatal("past-the-end page advertises a next cursor")
	}

	// Bad parameters are rejected before any result lookup.
	for _, q := range []string{"?cursor=-1", "?cursor=x", "?limit=0", "?limit=9999999"} {
		getMap(t, srv.URL, "/jobs/"+id+"/result"+q, http.StatusBadRequest)
	}
}
