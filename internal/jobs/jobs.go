// Package jobs is the serving layer's scheduler: it accepts algorithm jobs
// against registered datasets (internal/dataset), queues them, and executes
// them as shared passes (RunMany) so co-scheduled jobs on the same dataset
// pay for one edge stream instead of one each — X-Stream's cost model
// applied to a multi-tenant server.
//
// Scheduling policy, in order:
//
//   - Result cache: a submission whose (dataset version, engine,
//     algorithm, canonical params) matches a cached finished job
//     completes at Submit — zero edges streamed — with the cached payload
//     and a zero-work stats template. See cache.go.
//   - Tenant quotas: each tenant (Request.Tenant; empty is the shared
//     default tenant) is bounded by a Quota — submissions beyond
//     MaxQueued are rejected with an ErrOverloaded-wrapped error (the
//     HTTP layer's 503), and a tenant at MaxRunning stops being admitted
//     until its passes finish.
//   - Admission control: a job's memory footprint (core.Job.MemoryEstimate
//     over the dataset's sizes) is checked at submit — jobs above the whole
//     budget are rejected — and the combined footprint of running jobs
//     never exceeds Config.MemoryBudget; jobs wait in the queue until
//     memory frees up.
//   - Priority lanes: the seed of the next batch is the
//     highest-priority admissible queued job (Request.Priority, FIFO
//     within a lane). Lanes order draining, they do not preempt: a
//     high-priority job that does not fit the free budget does not block
//     a fitting lower-priority one.
//   - Batching: the worker runs the seed plus every other queued job on
//     the same (dataset, engine) — whatever its lane — that still fits
//     the remaining budget and its tenant's quota, up to Config.MaxBatch,
//     all in one RunMany pass. The pass pins its dataset
//     (dataset.Acquire/Release) so the registry's memory-cap eviction
//     never closes engine state under a running batch.
//   - Cancelation: a queued job cancels immediately; a running job is
//     marked and its result discarded when its pass finishes — and when
//     every job of a pass is canceled, the pass's context is canceled so
//     the engines stop between iterations and chunks.
//   - Retention: finished jobs (and their result payloads) are kept until
//     Config.Retention newer ones finish, then pruned. Pruning is
//     read-agnostic: a result that was never fetched is dropped all the
//     same, and later fetches get ErrNotFound — clients are expected to
//     collect results within the retention window (the result cache may
//     still answer a re-submission of the same request).
//
// All methods are safe for concurrent use.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Engine selects which execution engine serves a job.
type Engine string

const (
	// EngineMem is the in-memory streaming engine (the default).
	EngineMem Engine = "mem"
	// EngineDisk is the out-of-core streaming engine; the dataset must
	// have a device.
	EngineDisk Engine = "disk"
)

// Request describes one job submission.
type Request struct {
	Dataset string            `json:"dataset"`
	Algo    string            `json:"algo"`
	Engine  Engine            `json:"engine,omitempty"`
	Params  algorithms.Params `json:"params,omitempty"`
	// Tenant attributes the job for quota accounting and per-tenant
	// metrics; empty is the shared default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority selects the scheduling lane: higher lanes drain first,
	// FIFO within a lane. 0 is the default lane; negative is background.
	Priority int `json:"priority,omitempty"`
}

// Status is a job's lifecycle state.
type Status string

// The job lifecycle: queued on submission, running once a batch claims
// it, then exactly one of done, failed or canceled.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Info is a job's JSON-encodable state.
type Info struct {
	ID        string            `json:"id"`
	Dataset   string            `json:"dataset"`
	Algo      string            `json:"algo"`
	Engine    Engine            `json:"engine"`
	Params    algorithms.Params `json:"params"`
	Status    Status            `json:"status"`
	Error     string            `json:"error,omitempty"`
	Submitted time.Time         `json:"submitted"`
	Started   *time.Time        `json:"started,omitempty"`
	Finished  *time.Time        `json:"finished,omitempty"`
	// BatchSize is how many jobs shared the job's pass (0 until running).
	BatchSize int `json:"batch_size,omitempty"`
	// Summary is the algorithm's one-line result (done jobs only).
	Summary string `json:"summary,omitempty"`
	// MemoryEstimate is the admission-control footprint in bytes.
	MemoryEstimate int64 `json:"memory_estimate"`
	// Tenant and Priority echo the request's quota/lane fields.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Cached reports that the job was answered from the result cache —
	// it was done at submission, with zero edges streamed.
	Cached bool `json:"cached,omitempty"`
	// Attempts counts how many batches have claimed the job (1 for a job
	// that ran once; more when a transient or corruption failure had the
	// scheduler requeue it under Config.MaxAttempts).
	Attempts int `json:"attempts,omitempty"`
	// QueueWaitSeconds is how long the job waited between submission and
	// its (last) batch claiming it. Zero while queued and for cached
	// answers, which never queue.
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
	// RunSeconds is the wall time between the job's batch starting and the
	// job finishing (terminal jobs that ran; zero for cached answers).
	RunSeconds float64 `json:"run_seconds,omitempty"`
}

// Metrics are the scheduler's cumulative counters, served by GET /metrics.
type Metrics struct {
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Canceled    int64 `json:"canceled"`
	Batches     int64 `json:"batches"`
	BatchedJobs int64 `json:"batched_jobs"`
	// EdgesStreamed and EdgesShared aggregate pass-level stats: streamed
	// counts each edge record once per pass, shared counts the reads
	// batching avoided versus independent runs.
	EdgesStreamed int64 `json:"edges_streamed"`
	EdgesShared   int64 `json:"edges_shared"`
	BytesRead     int64 `json:"bytes_read"`
	MemoryInUse   int64 `json:"memory_in_use"`
	QueueDepth    int   `json:"queue_depth"`
	Running       int   `json:"running"`
	// QuotaRejected counts submissions refused because the tenant's
	// MaxQueued quota was full (the HTTP layer's 503s).
	QuotaRejected int64 `json:"quota_rejected"`
	// RetriedJobs counts jobs requeued after their pass failed on a
	// transient I/O error or detected corruption (Config.MaxAttempts).
	RetriedJobs int64 `json:"retried_jobs"`
	// CorruptedPasses counts passes that failed with a detected on-disk
	// corruption; each one invalidated its dataset's artifacts for a
	// rebuild. A nonzero count with zero failed jobs means every
	// corruption healed transparently.
	CorruptedPasses int64 `json:"corrupted_passes"`
	// IORetries sums pass-level transient I/O retries absorbed by the
	// storage retry layer during successful passes.
	IORetries int64 `json:"io_retries"`
	// Result-cache counters: hits answered with zero edges streamed,
	// misses that went on to compute (cacheable submissions only), the
	// bytes and entries currently cached, and entries evicted by the
	// cache's byte cap.
	CacheHits      int64 `json:"result_cache_hits"`
	CacheMisses    int64 `json:"result_cache_misses"`
	CacheBytes     int64 `json:"result_cache_bytes"`
	CacheEntries   int   `json:"result_cache_entries"`
	CacheEvictions int64 `json:"result_cache_evictions"`
	// Tenants snapshots per-tenant queue/running depth (omitted when no
	// tenant has active jobs).
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
	// Datasets mirrors the dataset registry's residency counters
	// (memory cap, resident bytes, evictions).
	Datasets dataset.Metrics `json:"datasets"`
}

// TenantMetrics is one tenant's live load in Metrics.Tenants.
type TenantMetrics struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
}

// Quota bounds one tenant's concurrent load. Zero fields are unlimited.
type Quota struct {
	// MaxRunning caps the tenant's jobs admitted into running batches.
	MaxRunning int `json:"max_running,omitempty"`
	// MaxQueued caps the tenant's waiting jobs; submissions beyond it
	// are rejected with an ErrOverloaded-wrapped error.
	MaxQueued int `json:"max_queued,omitempty"`
}

// Config tunes the scheduler. The zero value is usable.
type Config struct {
	// MemoryBudget bounds the combined MemoryEstimate of running jobs.
	// 0 means 1 GiB.
	MemoryBudget int64
	// MaxBatch caps jobs per shared pass. 0 means 16.
	MaxBatch int
	// Workers is the number of concurrent batch runners (batches of
	// different datasets proceed in parallel). 0 means 2.
	Workers int
	// Retention is how many finished jobs are kept before the oldest are
	// pruned. 0 means 256.
	Retention int
	// ResultCacheBytes caps the result cache: identical submissions
	// (dataset version, engine, algorithm, canonical params) are
	// answered from cache with zero edges streamed. 0 means 256 MiB;
	// negative disables caching.
	ResultCacheBytes int64
	// MaxAttempts is how many times a job may enter a batch before a
	// transient or corruption failure becomes terminal. Only failures
	// that storage.Classify reports transient or corrupted are retried
	// (a corrupted pass also invalidates the dataset's artifacts so the
	// retry rebuilds them); permanent errors, validation failures and
	// cancellations never retry. 0 means 2 (one retry); negative means 1
	// (no retries).
	MaxAttempts int
	// DefaultQuota applies to every tenant without a TenantQuotas entry,
	// including the empty default tenant. The zero Quota is unlimited.
	DefaultQuota Quota
	// TenantQuotas overrides DefaultQuota per tenant name.
	TenantQuotas map[string]Quota
	// Logger receives structured job-lifecycle logs (submit, batch start,
	// terminal transitions) with job, tenant, dataset@version and attempt
	// attributes. nil means slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 1 << 30
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Retention <= 0 {
		c.Retention = 256
	}
	if c.ResultCacheBytes == 0 {
		c.ResultCacheBytes = 256 << 20
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 2
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 1
	}
	return c
}

// ErrNotFound reports an unknown (or already pruned) job ID.
var ErrNotFound = errors.New("jobs: job not found")

// ErrOverloaded marks transient submit rejections — a tenant's MaxQueued
// quota is full, or the scheduler is shutting down. Clients should retry
// later; the HTTP layer maps it to 503 with a Retry-After header, keeping
// it distinct from the 400s of permanent validation failures.
var ErrOverloaded = errors.New("jobs: overloaded, retry later")

// job is the scheduler's internal record.
type job struct {
	id   string
	req  Request
	inst *algorithms.Instance
	ds   *dataset.Dataset
	est  int64

	status    Status
	err       error
	summary   string
	result    any
	stats     *core.Stats
	attempts  int
	batchSize int
	submitted time.Time
	started   time.Time
	finished  time.Time
	canceled  bool
	cached    bool
	cacheKey  string
	batchRef  *batchState
}

// batchState is one shared pass in flight.
type batchState struct {
	ctx    context.Context
	cancel context.CancelFunc
	jobs   []*job
}

// Scheduler queues, batches and executes jobs over a dataset registry.
type Scheduler struct {
	reg *dataset.Registry
	cfg Config
	log *slog.Logger

	// Serving-latency histograms, exposed by the Prometheus endpoint
	// (WriteProm): how long jobs queue, how long passes and iterations
	// run, and how many jobs share a pass.
	queueWaitHist *obs.Histogram
	runHist       *obs.Histogram
	iterHist      *obs.Histogram
	batchHist     *obs.Histogram

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*job
	jobs    map[string]*job
	done    []string
	memUse  int64
	running int
	paused  bool
	closed  bool
	metrics Metrics
	cache   *resultCache
	tenants map[string]*tenantState
	nextID  int
	wg      sync.WaitGroup
}

// tenantState is one tenant's live quota accounting.
type tenantState struct {
	queued  int
	running int
}

// New starts a scheduler over reg with Config.Workers batch runners.
func New(reg *dataset.Registry, cfg Config) *Scheduler {
	s := &Scheduler{
		reg: reg, cfg: cfg.withDefaults(),
		jobs: map[string]*job{}, tenants: map[string]*tenantState{},
		queueWaitHist: obs.NewHistogram(obs.DurationBuckets),
		runHist:       obs.NewHistogram(obs.DurationBuckets),
		iterHist:      obs.NewHistogram(obs.DurationBuckets),
		batchHist:     obs.NewHistogram(obs.SizeBuckets),
	}
	s.log = s.cfg.Logger
	if s.log == nil {
		s.log = slog.Default()
	}
	if s.cfg.ResultCacheBytes > 0 {
		s.cache = newResultCache(s.cfg.ResultCacheBytes)
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the dataset registry the scheduler serves.
func (s *Scheduler) Registry() *dataset.Registry { return s.reg }

// Submit validates and enqueues a job, returning its ID. Validation is
// synchronous: unknown datasets/algorithms, bad parameters, engine
// mismatches and over-budget jobs are rejected here with an error rather
// than producing a failed job.
func (s *Scheduler) Submit(req Request) (string, error) {
	if req.Engine == "" {
		req.Engine = EngineMem
	}
	ds, ok := s.reg.Get(req.Dataset)
	if !ok {
		return "", fmt.Errorf("unknown dataset %q", req.Dataset)
	}
	spec, ok := algorithms.ByName(req.Algo)
	if !ok {
		return "", fmt.Errorf("unknown algorithm %q", req.Algo)
	}
	if spec.Symmetrize && !ds.Undirected() {
		return "", fmt.Errorf("algorithm %s needs an undirected dataset (register the graph with both edge directions)", req.Algo)
	}
	switch req.Engine {
	case EngineMem:
	case EngineDisk:
		if !ds.HasDevice() {
			return "", fmt.Errorf("dataset %q has no device for the out-of-core engine", req.Dataset)
		}
	default:
		return "", fmt.Errorf("unknown engine %q", req.Engine)
	}
	inst, err := spec.New(req.Params)
	if err != nil {
		return "", fmt.Errorf("algorithm %s: %w", req.Algo, err)
	}
	est := inst.Job.MemoryEstimate(ds.NumVertices(), ds.NumEdges())

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", fmt.Errorf("scheduler is closed: %w", ErrOverloaded)
	}
	if est > s.cfg.MemoryBudget {
		return "", fmt.Errorf("job needs ~%d bytes of memory, above the scheduler budget of %d", est, s.cfg.MemoryBudget)
	}

	// Result cache: an identical finished job answers this one at submit,
	// with zero edges streamed — no queue, no quota charge.
	var key string
	if s.cache != nil {
		if k, ok := cacheKey(ds, req); ok {
			key = k
			if e, hit := s.cache.get(key); hit {
				s.nextID++
				now := time.Now()
				st := e.stats
				j := &job{
					id: fmt.Sprintf("j%06d", s.nextID), req: req, ds: ds, est: est,
					status: StatusDone, submitted: now, finished: now,
					summary: e.summary, result: e.payload, stats: &st, cached: true,
				}
				s.jobs[j.id] = j
				s.done = append(s.done, j.id)
				s.metrics.Submitted++
				s.metrics.Completed++
				s.metrics.CacheHits++
				s.pruneLocked()
				s.cond.Broadcast()
				s.log.Info("job served from cache", "job", j.id, "tenant", req.Tenant,
					"dataset", dsRef(ds), "algo", req.Algo, "engine", string(req.Engine))
				return j.id, nil
			}
			s.metrics.CacheMisses++
		}
	}

	// Tenant quota: reject beyond MaxQueued so a single tenant cannot
	// occupy the whole queue. Transient by design — ErrOverloaded.
	q := s.quotaFor(req.Tenant)
	ts := s.tenant(req.Tenant)
	if q.MaxQueued > 0 && ts.queued >= q.MaxQueued {
		s.metrics.QuotaRejected++
		return "", fmt.Errorf("tenant %q has %d jobs queued (quota %d): %w",
			req.Tenant, ts.queued, q.MaxQueued, ErrOverloaded)
	}

	s.nextID++
	j := &job{
		id: fmt.Sprintf("j%06d", s.nextID), req: req, inst: inst, ds: ds,
		est: est, status: StatusQueued, submitted: time.Now(), cacheKey: key,
	}
	s.jobs[j.id] = j
	s.queue = append(s.queue, j)
	ts.queued++
	s.metrics.Submitted++
	s.cond.Broadcast()
	s.log.Info("job queued", "job", j.id, "tenant", req.Tenant,
		"dataset", dsRef(ds), "algo", req.Algo, "engine", string(req.Engine),
		"priority", req.Priority)
	return j.id, nil
}

// dsRef renders a dataset@version log attribute, so log lines disambiguate
// re-registered datasets the way the result cache does.
func dsRef(ds *dataset.Dataset) string {
	return fmt.Sprintf("%s@%d", ds.Name(), ds.Version())
}

// quotaFor resolves a tenant's effective quota.
func (s *Scheduler) quotaFor(tenant string) Quota {
	if q, ok := s.cfg.TenantQuotas[tenant]; ok {
		return q
	}
	return s.cfg.DefaultQuota
}

// tenant returns (creating if needed) a tenant's accounting record.
// Caller holds s.mu.
func (s *Scheduler) tenant(name string) *tenantState {
	ts, ok := s.tenants[name]
	if !ok {
		ts = &tenantState{}
		s.tenants[name] = ts
	}
	return ts
}

// worker runs batches until the scheduler closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		b := s.nextBatch()
		if b == nil {
			return
		}
		s.runBatch(b)
	}
}

// nextBatch blocks until a batch is admissible (or the scheduler closes).
func (s *Scheduler) nextBatch() *batchState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if !s.paused {
			if b := s.admitLocked(); b != nil {
				return b
			}
		}
		s.cond.Wait()
	}
}

// admitLocked pops the next batch under the memory budget and the tenant
// quotas. The seed is the highest-priority queued job (FIFO within a
// lane) that fits the free budget and whose tenant is under MaxRunning;
// the batch then takes every other queued job — older or younger,
// whatever its lane — on the same (dataset, engine) that still fits the
// remaining budget and its own tenant's quota, up to MaxBatch. Riding
// along never delays the seed: the mates share its pass.
func (s *Scheduler) admitLocked() *batchState {
	avail := s.cfg.MemoryBudget - s.memUse
	// pending counts jobs claimed into this batch per tenant, on top of
	// already-running ones, so one batch cannot blow through MaxRunning.
	pending := map[string]int{}
	admissible := func(j *job, budget int64) bool {
		if j.est > budget {
			return false
		}
		q := s.quotaFor(j.req.Tenant)
		if q.MaxRunning > 0 {
			ts := s.tenant(j.req.Tenant)
			if ts.running+pending[j.req.Tenant] >= q.MaxRunning {
				return false
			}
		}
		return true
	}
	seed := -1
	for i, j := range s.queue {
		if !admissible(j, avail) {
			continue
		}
		if seed < 0 || j.req.Priority > s.queue[seed].req.Priority {
			seed = i
		}
	}
	if seed < 0 {
		return nil
	}
	sj := s.queue[seed]
	b := &batchState{jobs: []*job{sj}}
	sum := sj.est
	pending[sj.req.Tenant]++
	var rest []*job
	for i, j := range s.queue {
		if i == seed {
			continue
		}
		if len(b.jobs) < s.cfg.MaxBatch &&
			j.req.Dataset == sj.req.Dataset && j.req.Engine == sj.req.Engine &&
			admissible(j, avail-sum) {
			sum += j.est
			pending[j.req.Tenant]++
			b.jobs = append(b.jobs, j)
		} else {
			rest = append(rest, j)
		}
	}
	s.queue = rest
	s.memUse += sum
	s.running += len(b.jobs)
	b.ctx, b.cancel = context.WithCancel(context.Background())
	now := time.Now()
	for _, j := range b.jobs {
		j.status = StatusRunning
		j.started = now
		j.attempts++
		j.batchSize = len(b.jobs)
		j.batchRef = b
		ts := s.tenant(j.req.Tenant)
		ts.queued--
		ts.running++
		s.queueWaitHist.Observe(now.Sub(j.submitted).Seconds())
	}
	s.batchHist.Observe(float64(len(b.jobs)))
	s.metrics.Batches++
	s.metrics.BatchedJobs += int64(len(b.jobs))
	s.log.Info("batch started", "dataset", dsRef(sj.ds), "engine", string(sj.req.Engine),
		"jobs", len(b.jobs), "queue_wait_seconds", now.Sub(sj.submitted).Seconds())
	return b
}

// runBatch executes one shared pass and records every job's outcome. The
// batch's dataset is pinned for the duration so the registry's memory-cap
// eviction never closes engine state under the pass.
func (s *Scheduler) runBatch(b *batchState) {
	defer b.cancel()
	set := make(core.ProgramSet, len(b.jobs))
	for i, j := range b.jobs {
		set[i] = j.inst.Job
	}
	var results []core.JobResult
	var pass core.Stats
	var err error
	j0 := b.jobs[0]
	j0.ds.Acquire()
	switch j0.req.Engine {
	case EngineMem:
		pp, perr := j0.ds.Mem()
		if perr != nil {
			err = perr
		} else {
			results, pass, err = pp.RunMany(b.ctx, set)
		}
	case EngineDisk:
		pp, perr := j0.ds.Disk()
		if perr != nil {
			err = perr
		} else {
			results, pass, err = pp.RunMany(b.ctx, set)
		}
	}
	j0.ds.Release()

	// Fault tolerance: a pass that died on a transient device error is
	// retried wholesale, and one that detected on-disk corruption first
	// drops the dataset's artifacts (rebuilt lazily by the retry's
	// prepare) — in both cases the jobs go back to the queue until their
	// attempt budget runs out. Permanent errors and cancellations fail
	// fast. The invalidation runs before taking s.mu because it closes
	// partition files.
	retriable := false
	if err != nil {
		switch storage.Classify(err) {
		case storage.ClassTransient:
			retriable = true
		case storage.ClassCorrupted:
			retriable = true
			j0.ds.InvalidateCorrupted()
		}
	}

	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil && storage.Classify(err) == storage.ClassCorrupted {
		s.metrics.CorruptedPasses++
	}
	var sum int64
	for i, j := range b.jobs {
		sum += j.est
		j.batchRef = nil
		s.tenant(j.req.Tenant).running--
		if err != nil && retriable && !j.canceled && !s.closed && j.attempts < s.cfg.MaxAttempts {
			j.status = StatusQueued
			j.started = time.Time{}
			j.batchSize = 0
			s.queue = append(s.queue, j)
			s.tenant(j.req.Tenant).queued++
			s.metrics.RetriedJobs++
			s.log.Warn("job requeued after retriable failure", "job", j.id,
				"tenant", j.req.Tenant, "dataset", dsRef(j.ds),
				"attempt", j.attempts, "max_attempts", s.cfg.MaxAttempts, "err", err)
			continue
		}
		j.finished = now
		switch {
		case j.canceled:
			j.status = StatusCanceled
			s.metrics.Canceled++
			s.log.Info("job canceled", "job", j.id, "tenant", j.req.Tenant,
				"dataset", dsRef(j.ds), "attempt", j.attempts)
		case err != nil:
			j.status = StatusFailed
			j.err = err
			s.metrics.Failed++
			s.log.Warn("job failed", "job", j.id, "tenant", j.req.Tenant,
				"dataset", dsRef(j.ds), "attempt", j.attempts, "err", err)
		default:
			res := results[i]
			j.status = StatusDone
			j.summary = j.inst.Summarize(res.Vertices)
			j.result = j.inst.Result(res.Vertices)
			st := res.Stats
			j.stats = &st
			s.metrics.Completed++
			if s.cache != nil && j.cacheKey != "" {
				s.cache.put(&cacheEntry{
					key: j.cacheKey, payload: j.result, summary: j.summary,
					stats: cacheStats(st),
					bytes: approxBytes(j.result) + int64(len(j.cacheKey)+len(j.summary)),
				})
			}
			s.log.Info("job done", "job", j.id, "tenant", j.req.Tenant,
				"dataset", dsRef(j.ds), "attempt", j.attempts,
				"run_seconds", now.Sub(j.started).Seconds())
		}
		s.done = append(s.done, j.id)
	}
	if err == nil {
		s.metrics.EdgesStreamed += pass.EdgesStreamed
		s.metrics.EdgesShared += pass.EdgesShared
		s.metrics.BytesRead += pass.BytesRead
		s.metrics.IORetries += pass.IORetries
		s.runHist.Observe(pass.TotalTime.Seconds())
		for i := range pass.Iters {
			s.iterHist.Observe(pass.Iters[i].Time.Seconds())
		}
	}
	s.memUse -= sum
	s.running -= len(b.jobs)
	s.pruneLocked()
	s.cond.Broadcast()
}

// pruneLocked drops the oldest finished jobs beyond the retention window.
func (s *Scheduler) pruneLocked() {
	for len(s.done) > s.cfg.Retention {
		id := s.done[0]
		s.done = s.done[1:]
		delete(s.jobs, id)
	}
}

// Cancel cancels a job: a queued job immediately, a running job by marking
// it (its result is discarded when its pass finishes; when every job of
// the pass is canceled, the pass itself is stopped). Canceling a finished
// job is an error.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch j.status {
	case StatusQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i:i], s.queue[i+1:]...)
				break
			}
		}
		j.status = StatusCanceled
		j.canceled = true
		j.finished = time.Now()
		s.tenant(j.req.Tenant).queued--
		s.metrics.Canceled++
		s.done = append(s.done, j.id)
		s.pruneLocked()
		s.cond.Broadcast()
		return nil
	case StatusRunning:
		if j.canceled {
			return nil
		}
		j.canceled = true
		if b := j.batchRef; b != nil {
			all := true
			for _, peer := range b.jobs {
				if !peer.canceled {
					all = false
					break
				}
			}
			if all {
				b.cancel()
			}
		}
		return nil
	default:
		return fmt.Errorf("job %s is already %s", id, j.status)
	}
}

// infoLocked renders a job's Info.
func (s *Scheduler) infoLocked(j *job) Info {
	info := Info{
		ID: j.id, Dataset: j.req.Dataset, Algo: j.req.Algo, Engine: j.req.Engine,
		Params: j.req.Params, Status: j.status, Submitted: j.submitted,
		BatchSize: j.batchSize, Summary: j.summary, MemoryEstimate: j.est,
		Tenant: j.req.Tenant, Priority: j.req.Priority, Cached: j.cached,
		Attempts: j.attempts,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		info.Started = &t
		info.QueueWaitSeconds = j.started.Sub(j.submitted).Seconds()
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.Finished = &t
		if !j.started.IsZero() {
			info.RunSeconds = j.finished.Sub(j.started).Seconds()
		}
	}
	return info
}

// Get returns a job's Info.
func (s *Scheduler) Get(id string) (Info, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Info{}, false
	}
	return s.infoLocked(j), true
}

// List returns every retained job's Info in submission order.
func (s *Scheduler) List() []Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	// IDs are zero-padded sequence numbers: lexicographic = submission.
	sort.Strings(ids)
	out := make([]Info, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.infoLocked(s.jobs[id]))
	}
	return out
}

// Result returns a done job's payload, summary and stats. ErrNotFound for
// unknown jobs; other errors describe non-done states.
func (s *Scheduler) Result(id string) (payload any, summary string, stats *core.Stats, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, "", nil, ErrNotFound
	}
	switch j.status {
	case StatusDone:
		return j.result, j.summary, j.stats, nil
	case StatusFailed:
		return nil, "", nil, fmt.Errorf("job %s failed: %w", id, j.err)
	default:
		return nil, "", nil, fmt.Errorf("job %s is %s", id, j.status)
	}
}

// Metrics snapshots the scheduler counters, the result-cache state and
// the dataset registry's residency counters.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	m := s.metrics
	m.MemoryInUse = s.memUse
	m.QueueDepth = len(s.queue)
	m.Running = s.running
	if s.cache != nil {
		m.CacheBytes = s.cache.bytes
		m.CacheEntries = len(s.cache.entries)
		m.CacheEvictions = s.cache.evictions
	}
	for name, ts := range s.tenants {
		if ts.queued == 0 && ts.running == 0 {
			continue
		}
		if m.Tenants == nil {
			m.Tenants = map[string]TenantMetrics{}
		}
		m.Tenants[name] = TenantMetrics{Queued: ts.queued, Running: ts.running}
	}
	s.mu.Unlock()
	m.Datasets = s.reg.Metrics()
	return m
}

// Pause stops dispatching new batches (running ones finish). Submissions
// queue up — and batch together — until Resume.
func (s *Scheduler) Pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume restarts batch dispatch.
func (s *Scheduler) Resume() {
	s.mu.Lock()
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Wait blocks until the job reaches a terminal status or ctx expires.
// Every terminal transition broadcasts on the scheduler's condition
// variable, so waiters wake exactly when something finished.
func (s *Scheduler) Wait(ctx context.Context, id string) (Info, error) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		j, ok := s.jobs[id]
		if !ok {
			return Info{}, ErrNotFound
		}
		if j.status.Terminal() {
			return s.infoLocked(j), nil
		}
		if err := ctx.Err(); err != nil {
			return s.infoLocked(j), err
		}
		s.cond.Wait()
	}
}

// Close stops the workers, canceling any running passes, and waits for
// them to exit. Queued jobs are marked canceled.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	now := time.Now()
	for _, j := range s.queue {
		j.status = StatusCanceled
		j.canceled = true
		j.finished = now
		s.tenant(j.req.Tenant).queued--
		s.metrics.Canceled++
		s.done = append(s.done, j.id)
	}
	s.queue = nil
	seen := map[*batchState]bool{}
	for _, j := range s.jobs {
		if b := j.batchRef; b != nil {
			j.canceled = true
			if !seen[b] {
				seen[b] = true
				b.cancel()
			}
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
