// Package jobs is the serving layer's scheduler: it accepts algorithm jobs
// against registered datasets (internal/dataset), queues them, and executes
// them as shared passes (RunMany) so co-scheduled jobs on the same dataset
// pay for one edge stream instead of one each — X-Stream's cost model
// applied to a multi-tenant server.
//
// Scheduling policy, in order:
//
//   - Admission control: a job's memory footprint (core.Job.MemoryEstimate
//     over the dataset's sizes) is checked at submit — jobs above the whole
//     budget are rejected — and the combined footprint of running jobs
//     never exceeds Config.MemoryBudget; jobs wait in the queue until
//     memory frees up.
//   - Batching: when a worker picks the oldest admissible queued job, it
//     also takes every other queued job on the same (dataset, engine) that
//     still fits the remaining budget, up to Config.MaxBatch, and runs them
//     all in one RunMany pass.
//   - Cancelation: a queued job cancels immediately; a running job is
//     marked and its result discarded when its pass finishes — and when
//     every job of a pass is canceled, the pass's context is canceled so
//     the engines stop between iterations and chunks.
//   - Retention: finished jobs (and their result payloads) are kept until
//     Config.Retention newer ones finish, then pruned.
//
// All methods are safe for concurrent use.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dataset"
)

// Engine selects which execution engine serves a job.
type Engine string

const (
	// EngineMem is the in-memory streaming engine (the default).
	EngineMem Engine = "mem"
	// EngineDisk is the out-of-core streaming engine; the dataset must
	// have a device.
	EngineDisk Engine = "disk"
)

// Request describes one job submission.
type Request struct {
	Dataset string            `json:"dataset"`
	Algo    string            `json:"algo"`
	Engine  Engine            `json:"engine,omitempty"`
	Params  algorithms.Params `json:"params,omitempty"`
}

// Status is a job's lifecycle state.
type Status string

// The job lifecycle: queued on submission, running once a batch claims
// it, then exactly one of done, failed or canceled.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Info is a job's JSON-encodable state.
type Info struct {
	ID        string            `json:"id"`
	Dataset   string            `json:"dataset"`
	Algo      string            `json:"algo"`
	Engine    Engine            `json:"engine"`
	Params    algorithms.Params `json:"params"`
	Status    Status            `json:"status"`
	Error     string            `json:"error,omitempty"`
	Submitted time.Time         `json:"submitted"`
	Started   *time.Time        `json:"started,omitempty"`
	Finished  *time.Time        `json:"finished,omitempty"`
	// BatchSize is how many jobs shared the job's pass (0 until running).
	BatchSize int `json:"batch_size,omitempty"`
	// Summary is the algorithm's one-line result (done jobs only).
	Summary string `json:"summary,omitempty"`
	// MemoryEstimate is the admission-control footprint in bytes.
	MemoryEstimate int64 `json:"memory_estimate"`
}

// Metrics are the scheduler's cumulative counters, served by GET /metrics.
type Metrics struct {
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Canceled    int64 `json:"canceled"`
	Batches     int64 `json:"batches"`
	BatchedJobs int64 `json:"batched_jobs"`
	// EdgesStreamed and EdgesShared aggregate pass-level stats: streamed
	// counts each edge record once per pass, shared counts the reads
	// batching avoided versus independent runs.
	EdgesStreamed int64 `json:"edges_streamed"`
	EdgesShared   int64 `json:"edges_shared"`
	BytesRead     int64 `json:"bytes_read"`
	MemoryInUse   int64 `json:"memory_in_use"`
	QueueDepth    int   `json:"queue_depth"`
	Running       int   `json:"running"`
}

// Config tunes the scheduler. The zero value is usable.
type Config struct {
	// MemoryBudget bounds the combined MemoryEstimate of running jobs.
	// 0 means 1 GiB.
	MemoryBudget int64
	// MaxBatch caps jobs per shared pass. 0 means 16.
	MaxBatch int
	// Workers is the number of concurrent batch runners (batches of
	// different datasets proceed in parallel). 0 means 2.
	Workers int
	// Retention is how many finished jobs are kept before the oldest are
	// pruned. 0 means 256.
	Retention int
}

func (c Config) withDefaults() Config {
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 1 << 30
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Retention <= 0 {
		c.Retention = 256
	}
	return c
}

// ErrNotFound reports an unknown (or already pruned) job ID.
var ErrNotFound = errors.New("jobs: job not found")

// job is the scheduler's internal record.
type job struct {
	id   string
	req  Request
	inst *algorithms.Instance
	ds   *dataset.Dataset
	est  int64

	status    Status
	err       error
	summary   string
	result    any
	stats     *core.Stats
	batchSize int
	submitted time.Time
	started   time.Time
	finished  time.Time
	canceled  bool
	batchRef  *batchState
}

// batchState is one shared pass in flight.
type batchState struct {
	ctx    context.Context
	cancel context.CancelFunc
	jobs   []*job
}

// Scheduler queues, batches and executes jobs over a dataset registry.
type Scheduler struct {
	reg *dataset.Registry
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*job
	jobs    map[string]*job
	done    []string
	memUse  int64
	running int
	paused  bool
	closed  bool
	metrics Metrics
	nextID  int
	wg      sync.WaitGroup
}

// New starts a scheduler over reg with Config.Workers batch runners.
func New(reg *dataset.Registry, cfg Config) *Scheduler {
	s := &Scheduler{reg: reg, cfg: cfg.withDefaults(), jobs: map[string]*job{}}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the dataset registry the scheduler serves.
func (s *Scheduler) Registry() *dataset.Registry { return s.reg }

// Submit validates and enqueues a job, returning its ID. Validation is
// synchronous: unknown datasets/algorithms, bad parameters, engine
// mismatches and over-budget jobs are rejected here with an error rather
// than producing a failed job.
func (s *Scheduler) Submit(req Request) (string, error) {
	if req.Engine == "" {
		req.Engine = EngineMem
	}
	ds, ok := s.reg.Get(req.Dataset)
	if !ok {
		return "", fmt.Errorf("unknown dataset %q", req.Dataset)
	}
	spec, ok := algorithms.ByName(req.Algo)
	if !ok {
		return "", fmt.Errorf("unknown algorithm %q", req.Algo)
	}
	if spec.Symmetrize && !ds.Undirected() {
		return "", fmt.Errorf("algorithm %s needs an undirected dataset (register the graph with both edge directions)", req.Algo)
	}
	switch req.Engine {
	case EngineMem:
	case EngineDisk:
		if !ds.HasDevice() {
			return "", fmt.Errorf("dataset %q has no device for the out-of-core engine", req.Dataset)
		}
	default:
		return "", fmt.Errorf("unknown engine %q", req.Engine)
	}
	inst, err := spec.New(req.Params)
	if err != nil {
		return "", fmt.Errorf("algorithm %s: %w", req.Algo, err)
	}
	est := inst.Job.MemoryEstimate(ds.NumVertices(), ds.NumEdges())

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", fmt.Errorf("scheduler is closed")
	}
	if est > s.cfg.MemoryBudget {
		return "", fmt.Errorf("job needs ~%d bytes of memory, above the scheduler budget of %d", est, s.cfg.MemoryBudget)
	}
	s.nextID++
	j := &job{
		id: fmt.Sprintf("j%06d", s.nextID), req: req, inst: inst, ds: ds,
		est: est, status: StatusQueued, submitted: time.Now(),
	}
	s.jobs[j.id] = j
	s.queue = append(s.queue, j)
	s.metrics.Submitted++
	s.cond.Broadcast()
	return j.id, nil
}

// worker runs batches until the scheduler closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		b := s.nextBatch()
		if b == nil {
			return
		}
		s.runBatch(b)
	}
}

// nextBatch blocks until a batch is admissible (or the scheduler closes).
func (s *Scheduler) nextBatch() *batchState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if !s.paused {
			if b := s.admitLocked(); b != nil {
				return b
			}
		}
		s.cond.Wait()
	}
}

// admitLocked pops the next batch under the memory budget: the oldest
// queued job that fits the free budget, plus every younger queued job of
// the same (dataset, engine) that still fits, up to MaxBatch.
func (s *Scheduler) admitLocked() *batchState {
	avail := s.cfg.MemoryBudget - s.memUse
	seed := -1
	for i, j := range s.queue {
		if j.est <= avail {
			seed = i
			break
		}
	}
	if seed < 0 {
		return nil
	}
	sj := s.queue[seed]
	b := &batchState{}
	rest := s.queue[:seed:seed]
	var sum int64
	for _, j := range s.queue[seed:] {
		if len(b.jobs) < s.cfg.MaxBatch &&
			j.req.Dataset == sj.req.Dataset && j.req.Engine == sj.req.Engine &&
			sum+j.est <= avail {
			sum += j.est
			b.jobs = append(b.jobs, j)
		} else {
			rest = append(rest, j)
		}
	}
	s.queue = rest
	s.memUse += sum
	s.running += len(b.jobs)
	b.ctx, b.cancel = context.WithCancel(context.Background())
	now := time.Now()
	for _, j := range b.jobs {
		j.status = StatusRunning
		j.started = now
		j.batchSize = len(b.jobs)
		j.batchRef = b
	}
	s.metrics.Batches++
	s.metrics.BatchedJobs += int64(len(b.jobs))
	return b
}

// runBatch executes one shared pass and records every job's outcome.
func (s *Scheduler) runBatch(b *batchState) {
	defer b.cancel()
	set := make(core.ProgramSet, len(b.jobs))
	for i, j := range b.jobs {
		set[i] = j.inst.Job
	}
	var results []core.JobResult
	var pass core.Stats
	var err error
	j0 := b.jobs[0]
	switch j0.req.Engine {
	case EngineMem:
		pp, perr := j0.ds.Mem()
		if perr != nil {
			err = perr
		} else {
			results, pass, err = pp.RunMany(b.ctx, set)
		}
	case EngineDisk:
		pp, perr := j0.ds.Disk()
		if perr != nil {
			err = perr
		} else {
			results, pass, err = pp.RunMany(b.ctx, set)
		}
	}

	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum int64
	for i, j := range b.jobs {
		sum += j.est
		j.finished = now
		j.batchRef = nil
		switch {
		case j.canceled:
			j.status = StatusCanceled
			s.metrics.Canceled++
		case err != nil:
			j.status = StatusFailed
			j.err = err
			s.metrics.Failed++
		default:
			res := results[i]
			j.status = StatusDone
			j.summary = j.inst.Summarize(res.Vertices)
			j.result = j.inst.Result(res.Vertices)
			st := res.Stats
			j.stats = &st
			s.metrics.Completed++
		}
		s.done = append(s.done, j.id)
	}
	if err == nil {
		s.metrics.EdgesStreamed += pass.EdgesStreamed
		s.metrics.EdgesShared += pass.EdgesShared
		s.metrics.BytesRead += pass.BytesRead
	}
	s.memUse -= sum
	s.running -= len(b.jobs)
	s.pruneLocked()
	s.cond.Broadcast()
}

// pruneLocked drops the oldest finished jobs beyond the retention window.
func (s *Scheduler) pruneLocked() {
	for len(s.done) > s.cfg.Retention {
		id := s.done[0]
		s.done = s.done[1:]
		delete(s.jobs, id)
	}
}

// Cancel cancels a job: a queued job immediately, a running job by marking
// it (its result is discarded when its pass finishes; when every job of
// the pass is canceled, the pass itself is stopped). Canceling a finished
// job is an error.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch j.status {
	case StatusQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i:i], s.queue[i+1:]...)
				break
			}
		}
		j.status = StatusCanceled
		j.canceled = true
		j.finished = time.Now()
		s.metrics.Canceled++
		s.done = append(s.done, j.id)
		s.pruneLocked()
		s.cond.Broadcast()
		return nil
	case StatusRunning:
		if j.canceled {
			return nil
		}
		j.canceled = true
		if b := j.batchRef; b != nil {
			all := true
			for _, peer := range b.jobs {
				if !peer.canceled {
					all = false
					break
				}
			}
			if all {
				b.cancel()
			}
		}
		return nil
	default:
		return fmt.Errorf("job %s is already %s", id, j.status)
	}
}

// infoLocked renders a job's Info.
func (s *Scheduler) infoLocked(j *job) Info {
	info := Info{
		ID: j.id, Dataset: j.req.Dataset, Algo: j.req.Algo, Engine: j.req.Engine,
		Params: j.req.Params, Status: j.status, Submitted: j.submitted,
		BatchSize: j.batchSize, Summary: j.summary, MemoryEstimate: j.est,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		info.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.Finished = &t
	}
	return info
}

// Get returns a job's Info.
func (s *Scheduler) Get(id string) (Info, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Info{}, false
	}
	return s.infoLocked(j), true
}

// List returns every retained job's Info in submission order.
func (s *Scheduler) List() []Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	// IDs are zero-padded sequence numbers: lexicographic = submission.
	sort.Strings(ids)
	out := make([]Info, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.infoLocked(s.jobs[id]))
	}
	return out
}

// Result returns a done job's payload, summary and stats. ErrNotFound for
// unknown jobs; other errors describe non-done states.
func (s *Scheduler) Result(id string) (payload any, summary string, stats *core.Stats, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, "", nil, ErrNotFound
	}
	switch j.status {
	case StatusDone:
		return j.result, j.summary, j.stats, nil
	case StatusFailed:
		return nil, "", nil, fmt.Errorf("job %s failed: %w", id, j.err)
	default:
		return nil, "", nil, fmt.Errorf("job %s is %s", id, j.status)
	}
}

// Metrics snapshots the scheduler counters.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.metrics
	m.MemoryInUse = s.memUse
	m.QueueDepth = len(s.queue)
	m.Running = s.running
	return m
}

// Pause stops dispatching new batches (running ones finish). Submissions
// queue up — and batch together — until Resume.
func (s *Scheduler) Pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume restarts batch dispatch.
func (s *Scheduler) Resume() {
	s.mu.Lock()
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Wait blocks until the job reaches a terminal status or ctx expires.
// Every terminal transition broadcasts on the scheduler's condition
// variable, so waiters wake exactly when something finished.
func (s *Scheduler) Wait(ctx context.Context, id string) (Info, error) {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		j, ok := s.jobs[id]
		if !ok {
			return Info{}, ErrNotFound
		}
		if j.status.Terminal() {
			return s.infoLocked(j), nil
		}
		if err := ctx.Err(); err != nil {
			return s.infoLocked(j), err
		}
		s.cond.Wait()
	}
}

// Close stops the workers, canceling any running passes, and waits for
// them to exit. Queued jobs are marked canceled.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	now := time.Now()
	for _, j := range s.queue {
		j.status = StatusCanceled
		j.canceled = true
		j.finished = now
		s.metrics.Canceled++
		s.done = append(s.done, j.id)
	}
	s.queue = nil
	seen := map[*batchState]bool{}
	for _, j := range s.jobs {
		if b := j.batchRef; b != nil {
			j.canceled = true
			if !seen[b] {
				seen[b] = true
				b.cancel()
			}
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
