package jobs

// obs.go renders the scheduler's observability surfaces: the Prometheus
// text exposition over the same counters GET /metrics serves as JSON, plus
// the serving-latency histograms that only exist in the Prometheus form
// (JSON snapshots cannot carry bucketed distributions usefully).

import (
	"io"

	"repro/internal/obs"
)

// PromPrefix namespaces every metric of the Prometheus exposition.
const PromPrefix = "xserve"

// WriteProm renders the scheduler's metrics in the Prometheus text format:
// every Metrics field (including the nested dataset registry counters and
// per-tenant series) as gauges, then the queue-wait, run-duration,
// iteration-duration and batch-size histograms.
func (s *Scheduler) WriteProm(w io.Writer) error {
	if err := obs.WriteProm(w, PromPrefix, s.Metrics()); err != nil {
		return err
	}
	for _, h := range []struct {
		name string
		hist *obs.Histogram
	}{
		{PromPrefix + "_queue_wait_seconds", s.queueWaitHist},
		{PromPrefix + "_run_seconds", s.runHist},
		{PromPrefix + "_iteration_seconds", s.iterHist},
		{PromPrefix + "_batch_jobs", s.batchHist},
	} {
		if err := h.hist.WriteProm(w, h.name); err != nil {
			return err
		}
	}
	return nil
}
