package jobs

// api.go is the HTTP face of the scheduler — the handler cmd/xserve mounts.
//
//	POST   /jobs             submit a job            -> 202 {"id": ...}
//	GET    /jobs             list retained jobs
//	GET    /jobs/{id}        job status
//	GET    /jobs/{id}/result result payload + stats (done jobs)
//	DELETE /jobs/{id}        cancel
//	GET    /datasets         registered datasets
//	GET    /metrics          scheduler counters
//
// Everything is JSON. Validation failures are 400, unknown IDs 404,
// results of unfinished jobs 409.

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/core"
)

// NewHandler returns the serving API over s.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		id, err := s.Submit(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "job not found")
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		payload, summary, stats, err := s.Result(id)
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, "job not found")
		case err != nil:
			writeError(w, http.StatusConflict, err.Error())
		default:
			writeJSON(w, http.StatusOK, resultResponse{
				ID: id, Summary: summary, Stats: stats, Result: payload,
			})
		}
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		err := s.Cancel(id)
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, "job not found")
		case err != nil:
			writeError(w, http.StatusConflict, err.Error())
		default:
			info, _ := s.Get(id)
			writeJSON(w, http.StatusOK, info)
		}
	})

	mux.HandleFunc("GET /datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"datasets": s.Registry().List()})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})

	return mux
}

// resultResponse is the GET /jobs/{id}/result body.
type resultResponse struct {
	ID      string      `json:"id"`
	Summary string      `json:"summary"`
	Stats   *core.Stats `json:"stats,omitempty"`
	Result  any         `json:"result"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
