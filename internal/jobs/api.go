package jobs

// api.go is the HTTP face of the scheduler — the handler cmd/xserve mounts.
//
//	POST   /jobs             submit a job            -> 202 {"id": ...}
//	GET    /jobs             list retained jobs
//	GET    /jobs/{id}        job status
//	GET    /jobs/{id}/result result payload + stats (done jobs)
//	GET    /jobs/{id}/trace  Chrome trace-event JSON of a done job's run
//	DELETE /jobs/{id}        cancel
//	GET    /datasets         registered datasets
//	GET    /metrics          scheduler counters (JSON; ?format=prometheus for text)
//	GET    /metrics.prom     Prometheus text exposition (counters + histograms)
//	GET    /healthz          liveness probe
//	GET    /buildinfo        Go build metadata of the serving binary
//
// Everything is JSON. Validation failures are 400, unknown IDs 404,
// results of unfinished jobs 409. Transient rejections — tenant quota
// exceeded, scheduler shutting down — are 503 with a Retry-After header,
// so well-behaved clients back off instead of treating overload as a
// permanently bad request.
//
// Result payloads carry vertex vectors that can run to millions of
// entries, so GET /jobs/{id}/result supports cursor pagination: ?cursor=N
// windows every slice field of the payload to [N, N+limit) and the
// response's "page" object reports the window and the next cursor (absent
// on the last page). Scalar fields repeat on every page.

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"reflect"
	"runtime/debug"
	"strconv"

	"repro/internal/core"
	"repro/internal/obs"
)

// Pagination bounds for GET /jobs/{id}/result. A request without ?limit=
// gets DefaultPageLimit entries per slice; requests may raise it to
// MaxPageLimit.
const (
	DefaultPageLimit = 65536
	MaxPageLimit     = 1 << 20
)

// NewHandler returns the serving API over s.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		id, err := s.Submit(req)
		switch {
		case errors.Is(err, ErrOverloaded):
			// Transient: the tenant's queue quota is full or the scheduler
			// is draining. The same request can succeed once jobs finish.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "job not found")
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		cursor, limit, perr := pageParams(r)
		if perr != "" {
			writeError(w, http.StatusBadRequest, perr)
			return
		}
		payload, summary, stats, err := s.Result(id)
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, "job not found")
		case err != nil:
			writeError(w, http.StatusConflict, err.Error())
		default:
			info, _ := s.Get(id)
			windowed, page := paginate(payload, cursor, limit)
			writeJSON(w, http.StatusOK, resultResponse{
				ID: id, Summary: summary, Stats: stats, Result: windowed,
				Cached: info.Cached, Page: page,
			})
		}
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		err := s.Cancel(id)
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, "job not found")
		case err != nil:
			writeError(w, http.StatusConflict, err.Error())
		default:
			info, _ := s.Get(id)
			writeJSON(w, http.StatusOK, info)
		}
	})

	mux.HandleFunc("GET /jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		_, _, stats, err := s.Result(id)
		switch {
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, "job not found")
		case err != nil:
			writeError(w, http.StatusConflict, err.Error())
		case stats == nil:
			writeError(w, http.StatusConflict, "job has no recorded stats")
		default:
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".trace.json"))
			if err := obs.WriteChromeTrace(w, obs.SynthesizeTrace(stats)); err != nil {
				slog.Error("jobs: writing trace export", "job", id, "err", err)
			}
		}
	})

	mux.HandleFunc("GET /datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"datasets": s.Registry().List()})
	})

	writeProm := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", obs.PromContentType)
		if err := s.WriteProm(w); err != nil {
			slog.Error("jobs: writing prometheus exposition", "err", err)
		}
	}

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			writeProm(w)
			return
		}
		writeJSON(w, http.StatusOK, s.Metrics())
	})

	mux.HandleFunc("GET /metrics.prom", func(w http.ResponseWriter, r *http.Request) {
		writeProm(w)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /buildinfo", func(w http.ResponseWriter, r *http.Request) {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			writeError(w, http.StatusNotFound, "binary carries no build info")
			return
		}
		settings := make(map[string]string, len(bi.Settings))
		for _, kv := range bi.Settings {
			settings[kv.Key] = kv.Value
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"go_version": bi.GoVersion,
			"path":       bi.Path,
			"main":       bi.Main,
			"settings":   settings,
		})
	})

	return mux
}

// resultResponse is the GET /jobs/{id}/result body.
type resultResponse struct {
	ID      string      `json:"id"`
	Summary string      `json:"summary"`
	Stats   *core.Stats `json:"stats,omitempty"`
	Result  any         `json:"result"`
	Cached  bool        `json:"cached,omitempty"`
	Page    *pageInfo   `json:"page,omitempty"`
}

// pageInfo describes the slice window a paginated result response covers.
// NextCursor is absent on the final page.
type pageInfo struct {
	Cursor     int `json:"cursor"`
	Limit      int `json:"limit"`
	Total      int `json:"total"`
	NextCursor int `json:"next_cursor,omitempty"`
}

// pageParams parses ?cursor= and ?limit=, returning a message on invalid
// input. Both are optional.
func pageParams(r *http.Request) (cursor, limit int, errMsg string) {
	limit = DefaultPageLimit
	if v := r.URL.Query().Get("cursor"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, 0, "cursor must be a non-negative integer"
		}
		cursor = n
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > MaxPageLimit {
			return 0, 0, "limit must be in [1, " + strconv.Itoa(MaxPageLimit) + "]"
		}
		limit = n
	}
	return cursor, limit, ""
}

// paginate windows the slice fields of a map payload to [cursor,
// cursor+limit). Payloads that fit in one default window (and were not
// explicitly paged with a cursor) pass through untouched with a nil
// pageInfo; non-map payloads and maps without slices always do. Total is
// the longest slice — vertex vectors in one payload share the vertex
// count, so one cursor walks them all in lockstep.
func paginate(payload any, cursor, limit int) (any, *pageInfo) {
	m, ok := payload.(map[string]any)
	if !ok {
		return payload, nil
	}
	total := 0
	for _, v := range m {
		rv := reflect.ValueOf(v)
		if rv.Kind() == reflect.Slice && rv.Len() > total {
			total = rv.Len()
		}
	}
	if total == 0 || (cursor == 0 && total <= limit) {
		return payload, nil
	}
	out := make(map[string]any, len(m))
	for k, v := range m {
		rv := reflect.ValueOf(v)
		if rv.Kind() != reflect.Slice {
			out[k] = v
			continue
		}
		lo := min(cursor, rv.Len())
		hi := min(cursor+limit, rv.Len())
		out[k] = rv.Slice(lo, hi).Interface()
	}
	page := &pageInfo{Cursor: cursor, Limit: limit, Total: total}
	if cursor+limit < total {
		page.NextCursor = cursor + limit
	}
	return out, page
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// The status line is gone; all we can do is avoid losing the
		// evidence. Usually a client hangup mid-payload.
		slog.Error("jobs: encoding response", "type", fmt.Sprintf("%T", v), "err", err)
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
