package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestAPIEndToEnd drives the whole serving stack over HTTP: list datasets,
// submit jobs (good and bad), poll status, fetch results, cancel, read
// metrics — the workflow a client of cmd/xserve follows.
func TestAPIEndToEnd(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	getJSON := func(path string, wantCode int) map[string]any {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return out
	}

	// Datasets are listed before anything runs.
	ds := getJSON("/datasets", http.StatusOK)
	if n := len(ds["datasets"].([]any)); n != 2 {
		t.Fatalf("listed %d datasets, want 2", n)
	}

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp, out
	}

	// Bad submissions are 400 with an error body.
	for _, bad := range []string{
		`{"dataset":"nope","algo":"wcc"}`,
		`{"dataset":"g","algo":"nope"}`,
		`not json`,
	} {
		if resp, out := post(bad); resp.StatusCode != http.StatusBadRequest || out["error"] == "" {
			t.Fatalf("bad submission %q: status %d, body %v", bad, resp.StatusCode, out)
		}
	}

	// A good submission is 202 with an ID; the job completes and serves a
	// result with summary, stats and payload.
	resp, out := post(`{"dataset":"g","algo":"bfs","params":{"root":3}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%v)", resp.StatusCode, out)
	}
	id := out["id"].(string)

	var status string
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		info := getJSON("/jobs/"+id, http.StatusOK)
		status = info["status"].(string)
		if status == "done" || status == "failed" {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if status != "done" {
		t.Fatalf("job ended as %q", status)
	}
	res := getJSON("/jobs/"+id+"/result", http.StatusOK)
	if res["summary"] == "" || res["result"] == nil || res["stats"] == nil {
		t.Fatalf("result missing fields: %v", res)
	}
	payload := res["result"].(map[string]any)
	if payload["reached"].(float64) <= 0 {
		t.Fatalf("BFS reached nobody: %v", payload)
	}

	// Listing includes the finished job.
	list := getJSON("/jobs", http.StatusOK)
	if n := len(list["jobs"].([]any)); n != 1 {
		t.Fatalf("listed %d jobs, want 1", n)
	}

	// Unknown IDs are 404; results of unfinished jobs are 409.
	getJSON("/jobs/j999999", http.StatusNotFound)
	getJSON("/jobs/j999999/result", http.StatusNotFound)
	s.Pause()
	_, out = post(`{"dataset":"g","algo":"wcc"}`)
	queued := out["id"].(string)
	getJSON("/jobs/"+queued+"/result", http.StatusConflict)

	// DELETE cancels the queued job.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+queued, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", dresp.StatusCode)
	}
	s.Resume()
	info := getJSON("/jobs/"+queued, http.StatusOK)
	if info["status"].(string) != "canceled" {
		t.Fatalf("canceled job reports %q", info["status"])
	}

	// Metrics aggregate the activity.
	m := getJSON("/metrics", http.StatusOK)
	if m["submitted"].(float64) != 2 || m["completed"].(float64) != 1 || m["canceled"].(float64) != 1 {
		t.Fatalf("metrics: %v", m)
	}
	if m["edges_streamed"].(float64) <= 0 {
		t.Fatalf("no edges accounted: %v", m)
	}
}

// TestAPIBatchingVisible: co-scheduled jobs report their shared pass in
// batch_size, and the shared reads show in /metrics.
func TestAPIBatchingVisible(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	s.Pause()
	var ids []string
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"dataset":"g","algo":"pagerank","params":{"iters":%d}}`, 5)
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		ids = append(ids, out["id"].(string))
	}
	s.Resume()
	for _, id := range ids {
		info := waitDone(t, s, id)
		if info.Status != StatusDone || info.BatchSize != 3 {
			t.Fatalf("job %s: %s, batch %d", id, info.Status, info.BatchSize)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Batches != 1 || m.EdgesShared <= 0 {
		t.Fatalf("metrics: %+v", m)
	}
}
