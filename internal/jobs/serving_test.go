package jobs

// serving_test.go covers the production-serving features layered onto the
// scheduler: the result cache, per-tenant quotas, priority lanes, and the
// lifecycle edges (Wait under cancelation, cancel-while-queued races,
// fetching pruned results).

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/algorithms"
)

// TestResultCacheHit: an identical resubmission completes at Submit from
// the cache — no new edges streamed — and canonicalization folds params
// the algorithm ignores.
func TestResultCacheHit(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()

	id1, err := s.Submit(Request{Dataset: "g", Algo: "bfs", Params: algorithms.Params{Root: 3}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, id1)
	m1 := s.Metrics()
	if m1.CacheMisses != 1 || m1.CacheHits != 0 || m1.EdgesStreamed <= 0 {
		t.Fatalf("after first run: %+v", m1)
	}

	// Same canonical key: BFS ignores Iters, so a junk value still hits.
	id2, err := s.Submit(Request{Dataset: "g", Algo: "bfs", Params: algorithms.Params{Root: 3, Iters: 999}})
	if err != nil {
		t.Fatal(err)
	}
	info, ok := s.Get(id2)
	if !ok || info.Status != StatusDone || !info.Cached {
		t.Fatalf("resubmission not served from cache: %+v", info)
	}
	p1, _, _, err := s.Result(id1)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, st2, err := s.Result(id2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.EdgesStreamed != 0 || st2.BytesStreamed != 0 {
		t.Fatalf("cached result reports streaming work: %+v", st2)
	}
	if !strings.HasPrefix(st2.Engine, "cache(") {
		t.Fatalf("cached result not marked: engine %q", st2.Engine)
	}
	l1 := p1.(map[string]any)["levels"].([]int32)
	l2 := p2.(map[string]any)["levels"].([]int32)
	for v := range l1 {
		if l1[v] != l2[v] {
			t.Fatalf("cached payload diverges at vertex %d: %d vs %d", v, l1[v], l2[v])
		}
	}
	m2 := s.Metrics()
	if m2.CacheHits != 1 || m2.Completed != 2 {
		t.Fatalf("after hit: %+v", m2)
	}
	if m2.EdgesStreamed != m1.EdgesStreamed {
		t.Fatalf("cache hit streamed edges: %d -> %d", m1.EdgesStreamed, m2.EdgesStreamed)
	}
	if m2.CacheEntries < 1 || m2.CacheBytes <= 0 {
		t.Fatalf("cache accounting: %+v", m2)
	}

	// A different root is a different canonical key: miss.
	id3, err := s.Submit(Request{Dataset: "g", Algo: "bfs", Params: algorithms.Params{Root: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := s.Get(id3); info.Cached {
		t.Fatal("different params served from cache")
	}
	waitDone(t, s, id3)
	if m := s.Metrics(); m.CacheMisses != 2 {
		t.Fatalf("miss not counted: %+v", m)
	}
}

// TestResultCacheDisabled: a negative capacity turns the cache off.
func TestResultCacheDisabled(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1, ResultCacheBytes: -1})
	defer s.Close()
	id1, err := s.Submit(Request{Dataset: "g", Algo: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, id1)
	id2, err := s.Submit(Request{Dataset: "g", Algo: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, s, id2)
	if info.Cached {
		t.Fatal("disabled cache served a hit")
	}
	if m := s.Metrics(); m.CacheHits != 0 || m.CacheEntries != 0 {
		t.Fatalf("disabled cache has state: %+v", m)
	}
}

// TestQuotaMaxQueued: the per-tenant queue bound rejects with
// ErrOverloaded (the transient, retryable error) and tenants do not
// starve each other.
func TestQuotaMaxQueued(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1, DefaultQuota: Quota{MaxQueued: 2}})
	defer s.Close()
	s.Pause()
	ids := []string{}
	for _, algo := range []string{"wcc", "bfs"} {
		id, err := s.Submit(Request{Dataset: "g", Algo: algo, Tenant: "a"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := s.Submit(Request{Dataset: "g", Algo: "pagerank", Tenant: "a"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-quota submit: %v, want ErrOverloaded", err)
	}
	// A different tenant has its own allowance.
	bid, err := s.Submit(Request{Dataset: "g", Algo: "pagerank", Tenant: "b"})
	if err != nil {
		t.Fatalf("tenant b starved by tenant a's quota: %v", err)
	}
	ids = append(ids, bid)
	m := s.Metrics()
	if m.QuotaRejected != 1 || m.Tenants["a"].Queued != 2 || m.Tenants["b"].Queued != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	s.Resume()
	for _, id := range ids {
		waitDone(t, s, id)
	}
	if m := s.Metrics(); m.Tenants != nil {
		t.Fatalf("idle tenants still reported: %+v", m.Tenants)
	}
}

// TestQuotaOverride: a per-tenant entry overrides the default, and zero
// fields mean unlimited.
func TestQuotaOverride(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{
		Workers:      1,
		DefaultQuota: Quota{MaxQueued: 1},
		TenantQuotas: map[string]Quota{"vip": {}},
	})
	defer s.Close()
	s.Pause()
	ids := []string{}
	for _, algo := range []string{"wcc", "bfs", "pagerank"} {
		id, err := s.Submit(Request{Dataset: "g", Algo: algo, Tenant: "vip"})
		if err != nil {
			t.Fatalf("unlimited tenant rejected: %v", err)
		}
		ids = append(ids, id)
	}
	if _, err := s.Submit(Request{Dataset: "g", Algo: "wcc", Tenant: "basic"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Request{Dataset: "g", Algo: "bfs", Tenant: "basic"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("default quota not applied: %v", err)
	}
	s.Resume()
	for _, id := range ids {
		waitDone(t, s, id)
	}
}

// TestQuotaMaxRunning: with MaxRunning 1, a tenant's second job is not
// admitted until the first completes, even with idle workers.
func TestQuotaMaxRunning(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 2, DefaultQuota: Quota{MaxRunning: 1}})
	defer s.Close()
	s.Pause()
	// Different datasets so the two jobs can never share a batch.
	a, err := s.Submit(Request{Dataset: "g", Algo: "pagerank", Tenant: "t", Params: algorithms.Params{Iters: 512}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(Request{Dataset: "gdisk", Algo: "wcc", Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	s.Resume()
	ia := waitDone(t, s, a)
	ib := waitDone(t, s, b)
	if ia.Status != StatusDone || ib.Status != StatusDone {
		t.Fatalf("jobs: %s / %s", ia.Status, ib.Status)
	}
	// The quota serializes them: b starts only after a finished.
	if ib.Started == nil || ia.Finished == nil {
		t.Fatalf("missing timestamps: %+v / %+v", ia, ib)
	}
	if ib.Started.Before(*ia.Finished) {
		t.Fatalf("tenant ran two jobs at once under MaxRunning=1: a finished %v, b started %v",
			ia.Finished, ib.Started)
	}
}

// TestPriorityLanes: with one worker, the higher lane is seeded first
// even when a lower-priority job was submitted earlier.
func TestPriorityLanes(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()
	s.Pause()
	// Different datasets so the jobs cannot ride the same pass.
	slow, err := s.Submit(Request{Dataset: "gdisk", Algo: "pagerank", Params: algorithms.Params{Iters: 256}})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.Submit(Request{Dataset: "g", Algo: "bfs", Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.Resume()
	fi := waitDone(t, s, fast)
	si := waitDone(t, s, slow)
	if fi.Status != StatusDone || si.Status != StatusDone {
		t.Fatalf("jobs: %s / %s", fi.Status, si.Status)
	}
	if fi.Started == nil || si.Started == nil {
		t.Fatalf("missing timestamps: %+v / %+v", fi, si)
	}
	if si.Started.Before(*fi.Started) {
		t.Fatalf("lower-priority job seeded first: high started %v, low started %v",
			fi.Started, si.Started)
	}
}

// TestWaitContextCancel: Wait returns the context's error (with the
// job's current info) instead of blocking forever.
func TestWaitContextCancel(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()
	s.Pause()
	id, err := s.Submit(Request{Dataset: "g", Algo: "wcc"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	info, err := s.Wait(ctx, id)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait under deadline: %v", err)
	}
	if info.Status != StatusQueued {
		t.Fatalf("info not current at cancelation: %+v", info)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := s.Wait(ctx2, id); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait under canceled ctx: %v", err)
	}
	if _, err := s.Wait(context.Background(), "j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Wait on unknown id: %v", err)
	}
	s.Resume()
	waitDone(t, s, id)
}

// TestCancelWhileQueuedRace: concurrent cancels racing the dispatcher
// leave every job terminal and the accounting consistent. Run with
// -race in CI.
func TestCancelWhileQueuedRace(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 2, ResultCacheBytes: -1})
	defer s.Close()
	s.Pause()
	const n = 12
	ids := make([]string, n)
	for i := range ids {
		id, err := s.Submit(Request{Dataset: "g", Algo: "wcc", Tenant: "racer"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); s.Resume() }()
	for _, id := range ids[:n/2] {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			_ = s.Cancel(id) // losing the race to completion is fine
		}(id)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range ids {
		info, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if !info.Status.Terminal() {
			t.Fatalf("job %s not terminal: %s", id, info.Status)
		}
	}
	m := s.Metrics()
	if m.Completed+m.Canceled != n || m.QueueDepth != 0 || m.Running != 0 {
		t.Fatalf("metrics after drain: %+v", m)
	}
	if m.Tenants != nil {
		t.Fatalf("tenant accounting leaked: %+v", m.Tenants)
	}
}

// TestResultAfterPrune: once retention pruned a job, every lookup —
// status, result, wait — reports ErrNotFound, the documented behavior.
func TestResultAfterPrune(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1, Retention: 1})
	defer s.Close()
	id1, err := s.Submit(Request{Dataset: "g", Algo: "bfs", Params: algorithms.Params{Root: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, id1)
	id2, err := s.Submit(Request{Dataset: "g", Algo: "bfs", Params: algorithms.Params{Root: 2}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, id2)
	if _, ok := s.Get(id1); ok {
		t.Fatal("pruned job still visible")
	}
	if _, _, _, err := s.Result(id1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Result after prune: %v, want ErrNotFound", err)
	}
	if _, err := s.Wait(context.Background(), id1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Wait after prune: %v, want ErrNotFound", err)
	}
	if _, _, _, err := s.Result(id2); err != nil {
		t.Fatalf("retained job unavailable: %v", err)
	}
}
