package jobs

import (
	"context"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/dataset"
	"repro/internal/graphgen"
	"repro/internal/storage"
)

func testRegistry(t *testing.T) *dataset.Registry {
	t.Helper()
	reg := dataset.NewRegistry()
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 9, EdgeFactor: 8, Seed: 81, Undirected: true})
	if _, err := reg.Add("g", src, dataset.Options{Undirected: true, Threads: 2, MemPartitions: 16}); err != nil {
		t.Fatal(err)
	}
	disk := graphgen.RMAT(graphgen.RMATConfig{Scale: 9, EdgeFactor: 8, Seed: 82})
	dev := storage.NewSim(storage.SSDParams("jobs", 2, 0))
	if _, err := reg.Add("gdisk", disk, dataset.Options{Threads: 2, DiskPartitions: 8, IOUnit: 32 << 10, Device: dev}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// jobEstimate computes the admission footprint the scheduler will see.
func jobEstimate(t *testing.T, reg *dataset.Registry, algo string) int64 {
	t.Helper()
	ds, _ := reg.Get("g")
	spec, ok := algorithms.ByName(algo)
	if !ok {
		t.Fatalf("no %s spec", algo)
	}
	inst, err := spec.New(algorithms.Params{})
	if err != nil {
		t.Fatal(err)
	}
	return inst.Job.MemoryEstimate(ds.NumVertices(), ds.NumEdges())
}

func waitDone(t *testing.T, s *Scheduler, id string) Info {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v (status %s)", id, err, info.Status)
	}
	return info
}

func TestSubmitValidation(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{})
	defer s.Close()
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown dataset", Request{Dataset: "nope", Algo: "wcc"}},
		{"unknown algo", Request{Dataset: "g", Algo: "nope"}},
		{"unknown engine", Request{Dataset: "g", Algo: "wcc", Engine: "quantum"}},
		{"disk without device", Request{Dataset: "g", Algo: "wcc", Engine: EngineDisk}},
		{"als without users", Request{Dataset: "g", Algo: "als"}},
		{"hyperanf on directed", Request{Dataset: "gdisk", Algo: "hyperanf"}},
	}
	for _, c := range cases {
		if _, err := s.Submit(c.req); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Over-budget jobs are rejected at submit, not failed later.
	tiny := New(reg, Config{MemoryBudget: 1024})
	defer tiny.Close()
	if _, err := tiny.Submit(Request{Dataset: "g", Algo: "wcc"}); err == nil {
		t.Error("over-budget job accepted")
	}
}

// TestBatchingSameDataset: queued jobs on one dataset run as a single
// shared pass, and the pass streams the edges once for all of them.
func TestBatchingSameDataset(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()

	s.Pause()
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := s.Submit(Request{Dataset: "g", Algo: "pagerank"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.Resume()
	for _, id := range ids {
		info := waitDone(t, s, id)
		if info.Status != StatusDone {
			t.Fatalf("job %s: %s (%s)", id, info.Status, info.Error)
		}
		if info.BatchSize != 4 {
			t.Fatalf("job %s ran in a batch of %d, want 4", id, info.BatchSize)
		}
		if info.Summary == "" {
			t.Fatalf("job %s has no summary", id)
		}
	}
	m := s.Metrics()
	if m.Batches != 1 || m.BatchedJobs != 4 || m.Completed != 4 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.EdgesShared <= 0 || m.EdgesShared < 2*m.EdgesStreamed {
		t.Fatalf("4-job batch shared %d edge reads over %d streamed, want ~3x", m.EdgesShared, m.EdgesStreamed)
	}
	// All four identical jobs agree exactly.
	r0, _, _, err := s.Result(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	r1, _, _, err := s.Result(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	ranks0 := r0.(map[string]any)["ranks"].([]float32)
	ranks1 := r1.(map[string]any)["ranks"].([]float32)
	for v := range ranks0 {
		if ranks0[v] != ranks1[v] {
			t.Fatalf("co-scheduled twins disagree at vertex %d: %g vs %g", v, ranks0[v], ranks1[v])
		}
	}
}

// TestAdmissionControl: a budget that fits one job at a time serializes
// the queue into single-job batches, never exceeding the budget.
func TestAdmissionControl(t *testing.T) {
	reg := testRegistry(t)
	est := jobEstimate(t, reg, "pagerank")
	s := New(reg, Config{Workers: 2, MemoryBudget: est + est/2})
	defer s.Close()

	s.Pause()
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := s.Submit(Request{Dataset: "g", Algo: "pagerank"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.Resume()
	for _, id := range ids {
		info := waitDone(t, s, id)
		if info.Status != StatusDone {
			t.Fatalf("job %s: %s (%s)", id, info.Status, info.Error)
		}
		if info.BatchSize != 1 {
			t.Fatalf("job %s batched %d-wide under a one-job budget", id, info.BatchSize)
		}
	}
	m := s.Metrics()
	if m.Batches != 3 || m.MemoryInUse != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestMaxBatch caps the shared-pass width.
func TestMaxBatch(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1, MaxBatch: 2})
	defer s.Close()
	s.Pause()
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := s.Submit(Request{Dataset: "g", Algo: "wcc"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.Resume()
	for _, id := range ids {
		if info := waitDone(t, s, id); info.BatchSize != 2 {
			t.Fatalf("job %s: batch %d, want 2", id, info.BatchSize)
		}
	}
	if m := s.Metrics(); m.Batches != 2 {
		t.Fatalf("batches = %d, want 2", m.Batches)
	}
}

// TestBatchesSplitByDataset: jobs on different datasets (or engines) never
// share a pass.
func TestBatchesSplitByDataset(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()
	s.Pause()
	a1, _ := s.Submit(Request{Dataset: "g", Algo: "wcc"})
	b1, _ := s.Submit(Request{Dataset: "gdisk", Algo: "wcc"})
	a2, _ := s.Submit(Request{Dataset: "g", Algo: "bfs"})
	b2, _ := s.Submit(Request{Dataset: "gdisk", Algo: "bfs", Engine: EngineDisk})
	s.Resume()
	for _, id := range []string{a1, b1, a2, b2} {
		info := waitDone(t, s, id)
		if info.Status != StatusDone {
			t.Fatalf("job %s: %s (%s)", id, info.Status, info.Error)
		}
	}
	// g:{wcc,bfs} batch together; gdisk mem and gdisk disk run separately.
	ia1, _ := s.Get(a1)
	ia2, _ := s.Get(a2)
	if ia1.BatchSize != 2 || ia2.BatchSize != 2 {
		t.Fatalf("same-dataset jobs did not batch: %d/%d", ia1.BatchSize, ia2.BatchSize)
	}
	ib1, _ := s.Get(b1)
	ib2, _ := s.Get(b2)
	if ib1.BatchSize != 1 || ib2.BatchSize != 1 {
		t.Fatalf("cross-engine jobs batched: %d/%d", ib1.BatchSize, ib2.BatchSize)
	}
}

func TestCancelQueued(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()
	s.Pause()
	id, err := s.Submit(Request{Dataset: "g", Algo: "wcc"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	s.Resume()
	info, _ := s.Get(id)
	if info.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", info.Status)
	}
	if err := s.Cancel(id); err == nil {
		t.Fatal("canceling a canceled job succeeded")
	}
	if err := s.Cancel("j999999"); err != ErrNotFound {
		t.Fatalf("cancel of unknown id: %v", err)
	}
}

// TestCancelRunning: canceling every job of a running pass stops the
// engines mid-computation via the pass context.
func TestCancelRunning(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()
	// Enough iterations that the pass cannot finish before the cancel.
	id, err := s.Submit(Request{Dataset: "g", Algo: "pagerank", Params: algorithms.Params{Iters: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, _ := s.Get(id)
		if info.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (status %s)", info.Status)
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, s, id)
	if info.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", info.Status)
	}
	if _, _, _, err := s.Result(id); err == nil {
		t.Fatal("canceled job served a result")
	}
}

func TestRetention(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1, Retention: 2})
	defer s.Close()
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := s.Submit(Request{Dataset: "g", Algo: "bfs"})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, id)
		ids = append(ids, id)
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Fatal("oldest job survived the retention window")
	}
	if _, ok := s.Get(ids[3]); !ok {
		t.Fatal("newest job was pruned")
	}
	if n := len(s.List()); n != 2 {
		t.Fatalf("retained %d jobs, want 2", n)
	}
}

// TestDiskJobMatchesMem: the same algorithm served by both engines over
// equivalent datasets agrees.
func TestDiskJobMatchesMem(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{})
	defer s.Close()
	memID, err := s.Submit(Request{Dataset: "gdisk", Algo: "bfs", Engine: EngineMem})
	if err != nil {
		t.Fatal(err)
	}
	diskID, err := s.Submit(Request{Dataset: "gdisk", Algo: "bfs", Engine: EngineDisk})
	if err != nil {
		t.Fatal(err)
	}
	if info := waitDone(t, s, memID); info.Status != StatusDone {
		t.Fatalf("mem job: %s (%s)", info.Status, info.Error)
	}
	if info := waitDone(t, s, diskID); info.Status != StatusDone {
		t.Fatalf("disk job: %s (%s)", info.Status, info.Error)
	}
	rm, _, _, err := s.Result(memID)
	if err != nil {
		t.Fatal(err)
	}
	rd, _, _, err := s.Result(diskID)
	if err != nil {
		t.Fatal(err)
	}
	lm := rm.(map[string]any)["levels"].([]int32)
	ld := rd.(map[string]any)["levels"].([]int32)
	for v := range lm {
		if lm[v] != ld[v] {
			t.Fatalf("vertex %d: mem level %d, disk level %d", v, lm[v], ld[v])
		}
	}
}

// TestCorruptedDatasetRebuiltOnRetry: corrupting a partition edge file on
// the device after a successful disk run must not fail the next job — the
// pass surfaces ErrCorrupted, the scheduler invalidates the dataset's disk
// artifacts, requeues the job, and the retry rebuilds and completes with
// results identical to the pre-corruption run. The attempt count and the
// retry/corruption counters record the whole episode.
func TestCorruptedDatasetRebuiltOnRetry(t *testing.T) {
	reg := dataset.NewRegistry()
	defer reg.Close()
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 9, EdgeFactor: 8, Seed: 82})
	dev := storage.NewSim(storage.SSDParams("jobs", 2, 0))
	if _, err := reg.Add("gdisk", src, dataset.Options{Threads: 2, DiskPartitions: 8, IOUnit: 32 << 10, Device: dev}); err != nil {
		t.Fatal(err)
	}
	// Disable the result cache: the second submission must recompute so
	// the corruption is actually hit on the read path.
	s := New(reg, Config{Workers: 1, ResultCacheBytes: -1})
	defer s.Close()

	id, err := s.Submit(Request{Dataset: "gdisk", Algo: "pagerank", Engine: EngineDisk})
	if err != nil {
		t.Fatal(err)
	}
	if info := waitDone(t, s, id); info.Status != StatusDone || info.Attempts != 1 {
		t.Fatalf("clean job: status %s, attempts %d (%s)", info.Status, info.Attempts, info.Error)
	}
	r0, _, _, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	want := r0.(map[string]any)["ranks"].([]float32)

	// Flip one byte in the middle of partition 0's edge file.
	f, err := dev.Open("xserve-gdisk-ds-p0000.edges")
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	mid := f.Size() / 2
	if _, err := f.ReadAt(b, mid); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b, mid); err != nil {
		t.Fatal(err)
	}
	f.Close()

	id2, err := s.Submit(Request{Dataset: "gdisk", Algo: "pagerank", Engine: EngineDisk})
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, s, id2)
	if info.Status != StatusDone {
		t.Fatalf("retried job: %s (%s)", info.Status, info.Error)
	}
	if info.Attempts != 2 {
		t.Fatalf("retried job made %d attempts, want 2", info.Attempts)
	}
	r2, _, _, err := s.Result(id2)
	if err != nil {
		t.Fatal(err)
	}
	got := r2.(map[string]any)["ranks"].([]float32)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: rank %g after rebuild, want %g", v, got[v], want[v])
		}
	}
	m := s.Metrics()
	if m.RetriedJobs < 1 || m.CorruptedPasses < 1 {
		t.Fatalf("metrics after corruption retry: %+v", m)
	}
	if dm := reg.Metrics(); dm.CorruptionEvictions < 1 {
		t.Fatalf("dataset metrics recorded %d corruption evictions, want >= 1", dm.CorruptionEvictions)
	}
}
