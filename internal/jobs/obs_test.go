package jobs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/obs"
)

// promFieldNames walks a metrics struct type the way obs.WriteProm renders
// it, collecting every metric name the exposition must contain — including
// nested structs and map-to-label fields.
func promFieldNames(t *testing.T, prefix string, typ reflect.Type, out *[]string) {
	t.Helper()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if tag == "" || tag == "-" {
			t.Fatalf("field %s.%s has no JSON tag; the exposition would drop it", typ.Name(), f.Name)
		}
		ft := f.Type
		switch ft.Kind() {
		case reflect.Struct:
			promFieldNames(t, prefix+"_"+tag, ft, out)
		case reflect.Map:
			promFieldNames(t, prefix+"_"+strings.TrimSuffix(tag, "s"), ft.Elem(), out)
		default:
			*out = append(*out, prefix+"_"+tag)
		}
	}
}

// TestPromFieldParity pins that every JSON field of jobs.Metrics — and,
// through its nested fields, dataset.Metrics and TenantMetrics — appears in
// the Prometheus exposition. A field added to the JSON metrics without
// reaching the scrape endpoint fails here.
func TestPromFieldParity(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()

	// Park a tenant-attributed job in the queue so the Tenants map renders
	// labeled series.
	s.Pause()
	if _, err := s.Submit(Request{Dataset: "g", Algo: "wcc", Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	exposition := buf.String()

	var want []string
	promFieldNames(t, PromPrefix, reflect.TypeOf(Metrics{}), &want)
	for _, name := range want {
		if !strings.Contains(exposition, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	if !strings.Contains(exposition, `xserve_tenant_queued{tenant="acme"} 1`) {
		t.Errorf("tenant series missing or unlabeled:\n%s", exposition)
	}
	for _, hist := range []string{
		"xserve_queue_wait_seconds_bucket", "xserve_run_seconds_sum",
		"xserve_iteration_seconds_count", "xserve_batch_jobs_bucket",
	} {
		if !strings.Contains(exposition, hist) {
			t.Errorf("exposition missing histogram series %s", hist)
		}
	}
}

// TestObsEndpoints drives the observability endpoints over HTTP: liveness,
// build info, the Prometheus exposition (both spellings) and the per-job
// Chrome trace export.
func TestObsEndpoints(t *testing.T) {
	reg := testRegistry(t)
	s := New(reg, Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	get := func(path string, wantCode int) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s: status %d, want %d (%s)", path, resp.StatusCode, wantCode, body)
		}
		return resp, body
	}

	_, body := get("/healthz", http.StatusOK)
	if !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz body: %s", body)
	}

	_, body = get("/buildinfo", http.StatusOK)
	var bi map[string]any
	if err := json.Unmarshal(body, &bi); err != nil || bi["go_version"] == "" {
		t.Errorf("buildinfo body: %s (%v)", body, err)
	}

	// A completed job backs the histogram series and the trace export.
	id, err := s.Submit(Request{Dataset: "g", Algo: "pagerank", Params: algorithms.Params{Iters: 5}})
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, s, id)
	if info.Status != StatusDone {
		t.Fatalf("job ended as %s", info.Status)
	}
	if info.RunSeconds <= 0 || info.QueueWaitSeconds < 0 {
		t.Errorf("finished job's latency fields: queue_wait=%v run=%v", info.QueueWaitSeconds, info.RunSeconds)
	}

	for _, path := range []string{"/metrics.prom", "/metrics?format=prometheus"} {
		resp, body := get(path, http.StatusOK)
		if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
			t.Errorf("GET %s Content-Type = %q, want %q", path, ct, obs.PromContentType)
		}
		if !strings.Contains(string(body), "xserve_completed 1") {
			t.Errorf("GET %s missing completed counter:\n%s", path, body)
		}
		if !strings.Contains(string(body), "xserve_run_seconds_count 1") {
			t.Errorf("GET %s missing run histogram:\n%s", path, body)
		}
	}

	// JSON /metrics still answers as before.
	_, body = get("/metrics", http.StatusOK)
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil || m.Completed != 1 {
		t.Errorf("JSON metrics: %s (%v)", body, err)
	}

	// The trace export is Chrome trace-event JSON with iteration spans.
	_, body = get("/jobs/"+id+"/trace", http.StatusOK)
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	iterSpans := 0
	for _, e := range doc.TraceEvents {
		if e["name"] == "iteration" {
			iterSpans++
		}
	}
	if iterSpans == 0 {
		t.Errorf("trace export has no iteration spans: %s", body)
	}

	// Unknown jobs 404; unfinished jobs 409.
	get("/jobs/j999999/trace", http.StatusNotFound)
	s.Pause()
	queued, err := s.Submit(Request{Dataset: "g", Algo: "wcc"})
	if err != nil {
		t.Fatal(err)
	}
	get("/jobs/"+queued+"/trace", http.StatusConflict)
	s.Resume()
}
