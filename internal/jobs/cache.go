package jobs

// cache.go is the scheduler's result cache: X-Stream's shared-pass
// argument extended from one batch to the whole request stream. A batch
// amortizes the sequential edge stream across jobs that happen to be
// queued together; the cache amortizes it across *time* — a million users
// asking for the same PageRank pay one pass, and every later identical
// submission completes at Submit with zero edges streamed.
//
// Entries are keyed by (dataset name and version, engine, algorithm,
// canonical params). Canonicalization (algorithms.CanonicalParams) folds
// ignored and defaulted fields together, so {"iters":5} and {} hit the
// same entry; the dataset version keys the graph contents so a future
// mutation path invalidates by bumping it. Every registered algorithm is
// deterministic, which is what makes serving one job's payload for
// another's request sound.
//
// The cache is a byte-capped LRU. Callers synchronize (the scheduler uses
// it under its own mutex).

import (
	"container/list"
	"fmt"
	"reflect"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/dataset"
)

// cacheEntry is one finished job's reusable outcome.
type cacheEntry struct {
	key     string
	payload any
	summary string
	// stats is the zero-work template served on hits: the identity fields
	// of the computing pass with every work counter zero — a cached
	// request streams no edges and reads no bytes.
	stats core.Stats
	bytes int64
}

// resultCache is a byte-capped LRU over finished job payloads.
type resultCache struct {
	max       int64
	bytes     int64
	evictions int64
	ll        *list.List // front = most recently used
	entries   map[string]*list.Element
}

func newResultCache(max int64) *resultCache {
	return &resultCache{max: max, ll: list.New(), entries: map[string]*list.Element{}}
}

// cacheKey renders the canonical key for a request, or ok=false when the
// request cannot be canonicalized (unknown algorithm — Submit validation
// rejects it anyway).
func cacheKey(ds *dataset.Dataset, req Request) (string, bool) {
	p, ok := algorithms.CanonicalParams(req.Algo, req.Params)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s@v%d|%s|%s|r%d,i%d,u%d",
		req.Dataset, ds.Version(), req.Engine, req.Algo, p.Root, p.Iters, p.Users), true
}

// get returns the entry under key, refreshing its recency.
func (c *resultCache) get(key string) (*cacheEntry, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts (or refreshes) an entry and evicts the least recently used
// until the cache is back under its byte cap. An entry larger than the
// whole cap is not admitted.
func (c *resultCache) put(e *cacheEntry) {
	if e.bytes > c.max {
		return
	}
	if old, ok := c.entries[e.key]; ok {
		c.bytes -= old.Value.(*cacheEntry).bytes
		c.ll.Remove(old)
		delete(c.entries, e.key)
	}
	c.entries[e.key] = c.ll.PushFront(e)
	c.bytes += e.bytes
	for c.bytes > c.max {
		lru := c.ll.Back()
		if lru == nil {
			break
		}
		ev := lru.Value.(*cacheEntry)
		c.ll.Remove(lru)
		delete(c.entries, ev.key)
		c.bytes -= ev.bytes
		c.evictions++
	}
}

// cacheStats builds the zero-work stats template from the computing
// pass's stats: identity fields survive, every work counter is zeroed,
// and the engine is marked so clients can tell a cached answer from a
// streamed one.
func cacheStats(st core.Stats) core.Stats {
	return core.Stats{
		Algorithm:   st.Algorithm,
		Engine:      "cache(" + st.Engine + ")",
		Partitioner: st.Partitioner,
		Iterations:  st.Iterations,
		Partitions:  st.Partitions,
		Threads:     st.Threads,
	}
}

// approxBytes estimates the heap footprint of a JSON-encodable payload —
// maps of scalars and (mostly numeric) vertex vectors — for the cache's
// byte accounting. Slices of fixed-size elements are sized without
// iterating; only container elements recurse.
func approxBytes(v any) int64 {
	return approxValue(reflect.ValueOf(v))
}

func approxValue(rv reflect.Value) int64 {
	switch rv.Kind() {
	case reflect.Invalid:
		return 0
	case reflect.Interface, reflect.Pointer:
		if rv.IsNil() {
			return 8
		}
		return 16 + approxValue(rv.Elem())
	case reflect.Slice, reflect.Array:
		n := int64(24)
		elem := rv.Type().Elem()
		switch elem.Kind() {
		case reflect.Interface, reflect.Pointer, reflect.Slice, reflect.Map, reflect.String:
			for i := 0; i < rv.Len(); i++ {
				n += approxValue(rv.Index(i))
			}
		default:
			n += int64(rv.Len()) * int64(elem.Size())
		}
		return n
	case reflect.Map:
		n := int64(48)
		iter := rv.MapRange()
		for iter.Next() {
			n += approxValue(iter.Key()) + approxValue(iter.Value())
		}
		return n
	case reflect.String:
		return 16 + int64(rv.Len())
	default:
		return int64(rv.Type().Size())
	}
}
