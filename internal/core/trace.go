package core

import "time"

// Tracer receives execution spans from an engine run: run → iteration →
// phase (scatter/shuffle/gather) → per-partition work. Both engine
// Configs carry an optional Tracer; nil (the default) disables tracing
// at zero cost — engines only measure and emit spans when one is set,
// and a Tracer never alters any work metric, only adds timing.
//
// Spans are complete intervals: name, start time, duration, plus a small
// bag of integer args (iteration number, partition index, record
// counts). track identifies the logical timeline the span belongs to —
// 0 is the coordinator (run/iteration/phase spans); per-worker spans use
// 1+worker so parallel partition work renders on separate rows in a
// trace viewer. Implementations must be safe for concurrent use: worker
// goroutines emit partition spans in parallel.
type Tracer interface {
	// Span records one completed interval on the given track.
	Span(track int, name string, start time.Time, d time.Duration, args map[string]int64)
}

// IterStats is one iteration's slice of the cumulative Stats: the same
// deterministic work counters, restricted to a single iteration. Engines
// populate Stats.Iters unconditionally (the bookkeeping is a handful of
// subtractions per iteration), so per-iteration profiles are available
// without a Tracer.
//
// The work-side counters (edges, updates, skips) of a run's Iters sum
// exactly to the cumulative Stats fields. The I/O-side counters
// (BytesRead, BytesReadLogical, BytesWritten, BytesChecksummed,
// IORetries) sum to at most the cumulative fields: pre-processing,
// vertex materialization and other out-of-loop I/O belong to the run,
// not to any iteration.
type IterStats struct {
	// Iter is the iteration number (0-based; resumes start past 0).
	Iter int
	// Time is the iteration's wall-clock duration.
	Time time.Duration
	// ScatterTime, ShuffleTime and GatherTime split Time by phase. On
	// the out-of-core engine the shuffle is folded into the scatter
	// pass (§3 of the paper), so ShuffleTime is zero there.
	ScatterTime time.Duration
	// ShuffleTime is the in-memory shuffle share of the iteration.
	ShuffleTime time.Duration
	// GatherTime is the gather share of the iteration.
	GatherTime time.Duration

	// EdgesStreamed counts edge records read this iteration.
	EdgesStreamed int64
	// EdgesSkipped counts edge records elided by selective streaming.
	EdgesSkipped int64
	// PartitionsSkipped counts whole partitions elided this iteration.
	PartitionsSkipped int64
	// TilesSkipped counts edge tiles elided this iteration.
	TilesSkipped int64
	// UpdatesSent counts updates produced this iteration.
	UpdatesSent int64
	// UpdatesCombined counts updates merged away before gather.
	UpdatesCombined int64
	// CrossPartitionUpdates counts updates that crossed a partition.
	CrossPartitionUpdates int64
	// MirrorSyncUpdates counts master-mirror sync updates flushed.
	MirrorSyncUpdates int64
	// UpdateBytes is the post-combining update-stream volume.
	UpdateBytes int64

	// BytesRead is the physical device-read volume attributed to this
	// iteration (out-of-core engine only).
	BytesRead int64
	// BytesReadLogical is BytesRead at decoded (post-codec) size.
	BytesReadLogical int64
	// BytesWritten is the device-write volume (update files,
	// checkpoints) attributed to this iteration.
	BytesWritten int64
	// BytesChecksummed is the CRC-verified read volume this iteration.
	BytesChecksummed int64
	// IORetries counts device operations re-issued this iteration.
	IORetries int64
}

// IterMark is a snapshot of a Stats' cumulative counters at an iteration
// boundary, taken with MarkIter and consumed by PushIter.
type IterMark struct {
	at Stats
}

// MarkIter snapshots the cumulative counters at the start of an
// iteration. Pair with PushIter at the end of the iteration.
func (s *Stats) MarkIter() IterMark {
	return IterMark{at: *s}
}

// PushIter appends to s.Iters the delta of every per-iteration counter
// since the MarkIter snapshot m, labeled as iteration iter with
// wall-clock duration wall.
func (s *Stats) PushIter(iter int, m IterMark, wall time.Duration) {
	a := &m.at
	s.Iters = append(s.Iters, IterStats{
		Iter:                  iter,
		Time:                  wall,
		ScatterTime:           s.ScatterTime - a.ScatterTime,
		ShuffleTime:           s.ShuffleTime - a.ShuffleTime,
		GatherTime:            s.GatherTime - a.GatherTime,
		EdgesStreamed:         s.EdgesStreamed - a.EdgesStreamed,
		EdgesSkipped:          s.EdgesSkipped - a.EdgesSkipped,
		PartitionsSkipped:     s.PartitionsSkipped - a.PartitionsSkipped,
		TilesSkipped:          s.TilesSkipped - a.TilesSkipped,
		UpdatesSent:           s.UpdatesSent - a.UpdatesSent,
		UpdatesCombined:       s.UpdatesCombined - a.UpdatesCombined,
		CrossPartitionUpdates: s.CrossPartitionUpdates - a.CrossPartitionUpdates,
		MirrorSyncUpdates:     s.MirrorSyncUpdates - a.MirrorSyncUpdates,
		UpdateBytes:           s.UpdateBytes - a.UpdateBytes,
		BytesRead:             s.BytesRead - a.BytesRead,
		BytesReadLogical:      s.BytesReadLogical - a.BytesReadLogical,
		BytesWritten:          s.BytesWritten - a.BytesWritten,
		BytesChecksummed:      s.BytesChecksummed - a.BytesChecksummed,
		IORetries:             s.IORetries - a.IORetries,
	})
}

// GraftPassIters copies the pass-level per-iteration fields a job's own
// accounting cannot observe — scatter time and device I/O, which belong
// to the shared pass — onto the job's IterStats, index-aligned. RunJob
// (a solo pass of one job) uses it so the job's profile carries the full
// iteration picture.
func GraftPassIters(job, pass []IterStats) {
	for i := range job {
		if i >= len(pass) {
			return
		}
		job[i].Time = pass[i].Time
		job[i].ScatterTime = pass[i].ScatterTime
		job[i].BytesRead = pass[i].BytesRead
		job[i].BytesReadLogical = pass[i].BytesReadLogical
		job[i].BytesWritten = pass[i].BytesWritten
		job[i].BytesChecksummed = pass[i].BytesChecksummed
		job[i].IORetries = pass[i].IORetries
	}
}
