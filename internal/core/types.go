// Package core defines X-Stream's computation model: the edge-centric
// scatter-gather API (paper §2, Figure 2), streaming partitions and their
// sizing rules (§2.2, §2.4, §3.4), and the execution statistics the
// evaluation reports.
//
// The mutable state of a computation lives in the vertices. The input is an
// unordered set of directed edges; undirected graphs are represented as a
// pair of directed edges. Each iteration streams every edge (scatter,
// producing updates), shuffles the updates to the partition owning their
// destination vertex, and streams them back in (gather). The engines in
// internal/memengine and internal/diskengine execute this model over fast
// and slow storage respectively.
package core

import "fmt"

// VertexID identifies a vertex. 32 bits covers every graph in the paper's
// evaluation (the largest, yahoo-web, has 1.4 billion vertices) while
// keeping edges at 12 bytes.
type VertexID uint32

// Edge is a directed edge with a weight. Inputs without weights are
// assigned pseudo-random weights in [0,1) at generation/load time, exactly
// as the paper does (§5.2).
type Edge struct {
	Src, Dst VertexID
	Weight   float32
}

// Update is a value produced by scatter, addressed to a destination vertex.
// M must be a pointer-free fixed-size type (see internal/pod).
type Update[M any] struct {
	Dst VertexID
	Val M
}

// EdgeSource is a re-streamable unordered edge list. Edges may be called
// any number of times; each call streams the full edge set in batches.
// Batches alias internal buffers and are only valid within fn.
type EdgeSource interface {
	// NumVertices returns the number of vertices (max id + 1).
	NumVertices() int64
	// NumEdges returns the number of directed edge records.
	NumEdges() int64
	// Edges streams the edge list in batches.
	Edges(fn func(batch []Edge) error) error
}

// sliceSource is an in-memory EdgeSource.
type sliceSource struct {
	edges    []Edge
	vertices int64
}

// NewSliceSource wraps an in-memory edge list. If numVertices is zero it is
// computed as max(id)+1.
func NewSliceSource(edges []Edge, numVertices int64) EdgeSource {
	if numVertices == 0 {
		var max VertexID
		for _, e := range edges {
			if e.Src > max {
				max = e.Src
			}
			if e.Dst > max {
				max = e.Dst
			}
		}
		if len(edges) > 0 {
			numVertices = int64(max) + 1
		}
	}
	return &sliceSource{edges: edges, vertices: numVertices}
}

func (s *sliceSource) NumVertices() int64 { return s.vertices }
func (s *sliceSource) NumEdges() int64    { return int64(len(s.edges)) }

func (s *sliceSource) Edges(fn func([]Edge) error) error {
	const batch = 64 << 10
	for off := 0; off < len(s.edges); off += batch {
		end := off + batch
		if end > len(s.edges) {
			end = len(s.edges)
		}
		if err := fn(s.edges[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// Materialize reads an entire EdgeSource into memory.
func Materialize(src EdgeSource) ([]Edge, error) {
	out := make([]Edge, 0, src.NumEdges())
	err := src.Edges(func(b []Edge) error {
		out = append(out, b...)
		return nil
	})
	return out, err
}

// Reverse returns an EdgeSource streaming the transpose of src (every edge
// with Src and Dst swapped). Algorithms that propagate against edge
// direction (e.g. the backward phases of SCC) run iterations over the
// transposed list; producing it is a single streaming pass, never a sort.
func Reverse(src EdgeSource) EdgeSource { return &reverseSource{src} }

type reverseSource struct{ inner EdgeSource }

func (r *reverseSource) NumVertices() int64 { return r.inner.NumVertices() }
func (r *reverseSource) NumEdges() int64    { return r.inner.NumEdges() }

func (r *reverseSource) Edges(fn func([]Edge) error) error {
	buf := make([]Edge, 0, 64<<10)
	return r.inner.Edges(func(b []Edge) error {
		buf = buf[:len(b)]
		for i, e := range b {
			buf[i] = Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight}
		}
		return fn(buf)
	})
}

func (s *sliceSource) String() string {
	return fmt.Sprintf("slice(%d vertices, %d edges)", s.vertices, len(s.edges))
}

// Symmetrize returns an EdgeSource streaming src followed by its
// transpose — the "undirected version" of a directed graph that HyperANF
// and conductance-style measurements operate on (§5.3). Like Reverse, it
// is a pure streaming transformation.
func Symmetrize(src EdgeSource) EdgeSource { return &symSource{inner: src} }

type symSource struct{ inner EdgeSource }

func (s *symSource) NumVertices() int64 { return s.inner.NumVertices() }
func (s *symSource) NumEdges() int64    { return 2 * s.inner.NumEdges() }

func (s *symSource) Edges(fn func([]Edge) error) error {
	if err := s.inner.Edges(fn); err != nil {
		return err
	}
	return Reverse(s.inner).Edges(fn)
}
