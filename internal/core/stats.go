package core

import (
	"fmt"
	"time"
)

// Stats records the execution profile of one run. It backs the paper's
// Figure 12b (iterations, runtime-to-streaming ratio, wasted edges),
// Figure 20/22 (pre-processing split) and Figure 21 (memory-reference
// proxy).
type Stats struct {
	Algorithm   string
	Engine      string // "memory", "ssd", "disk", ...
	Partitioner string // "range", "2ps", ...
	Iterations  int
	Partitions  int
	Threads     int

	// Streaming volume.
	EdgesStreamed int64 // edge records read across all scatter phases
	UpdatesSent   int64 // updates produced across all scatter phases
	WastedEdges   int64 // edges streamed that produced no update
	// CrossPartitionUpdates counts updates whose destination lies outside
	// the partition that produced them — the shuffle traffic a
	// locality-aware partitioner exists to reduce. Counted before any
	// combining, so it is comparable across combiner on/off runs. With
	// vertex replication active, updates absorbed into a partition-local
	// mirror never cross; the per-partition sync updates that replace
	// them are counted here when the hub's master partition differs.
	CrossPartitionUpdates int64
	// UpdatesCombined counts update records merged away by the program's
	// Combiner before gather: at scatter time in thread-private combining
	// buffers, in partition-local mirror accumulators, and in the
	// per-partition fold after the shuffle.
	UpdatesCombined int64

	// Vertex replication (mirrors for high-degree vertices, planned by a
	// core.ReplicatingPartitioner and honored for Combiner programs).
	// MirroredVertices is the size of the run's active mirror set — zero
	// when replication was planned but the program has no Combiner (the
	// fallback) or none was planned. MirrorSyncUpdates counts the
	// master-mirror sync updates flushed into the shuffle: each replaces
	// the (usually much larger) set of hub-addressed updates a scattering
	// partition absorbed locally.
	MirroredVertices  int
	MirrorSyncUpdates int64

	// Selective streaming (frontier-aware scheduling, Config.Selective in
	// either engine, programs implementing FrontierProgram). EdgesSkipped
	// counts edge records never streamed because no source in their
	// partition or tile was active; PartitionsSkipped and TilesSkipped
	// record the granularity of those skips (a skipped partition's tiles
	// are not separately counted). On the out-of-core engine a skipped
	// partition's edge file — or a skipped tile's byte range — is never
	// read, so BytesRead drops correspondingly. All three are deterministic
	// work measures, gateable by cmd/benchgate independent of wall time.
	EdgesSkipped      int64
	PartitionsSkipped int64
	TilesSkipped      int64

	// Shared-pass execution (RunMany in either engine). CoJobs is the
	// number of jobs that shared this pass's edge stream (1 for a solo
	// run). On pass-level stats, EdgesStreamed counts each edge record
	// streamed once however many jobs consumed it, and EdgesShared is the
	// edge-record reads the sharing avoided versus independent runs:
	// the sum of per-job EdgesStreamed minus the pass's EdgesStreamed.
	// Both are deterministic work measures, gateable by cmd/benchgate
	// (see the figshare experiment).
	CoJobs      int
	EdgesShared int64

	// Time split.
	TotalTime      time.Duration
	PreprocessTime time.Duration // initial partitioning of the input edge list
	ScatterTime    time.Duration
	ShuffleTime    time.Duration
	GatherTime     time.Duration

	// Iters is the per-iteration profile: one IterStats entry per
	// executed iteration, in execution order (a checkpoint resume
	// restores no entries for the skipped iterations, so
	// len(Iters) == Iterations - ResumedIterations). See IterStats for
	// how the entries sum to the cumulative fields.
	Iters []IterStats

	// Data volume in bytes, for computing the streaming-time lower bound.
	BytesStreamed int64 // records moved through stream buffers
	BytesRead     int64 // device reads (out-of-core only)
	BytesWritten  int64 // device writes (out-of-core only)
	// BytesReadLogical is BytesRead with edge-file reads counted at their
	// decoded size: with compressed edge tiles (DiskConfig.CompressTiles)
	// the device moves fewer physical bytes than the scatter consumes, and
	// the gap between the two is exactly what the codec saved. Equal to
	// BytesRead when tiles are stored raw.
	BytesReadLogical int64
	// TilesCompressed counts edge tiles stored delta-encoded (as opposed
	// to the codec's raw fallback) across the partitioned edge files, and
	// CompressedRatio is the physical/logical byte ratio of that on-disk
	// layout (0 when compression is off; lower is better). Both describe
	// the layout as written, so they are deterministic and gateable.
	TilesCompressed int64
	CompressedRatio float64
	// UpdateBytes is the post-combining volume of the update stream: the
	// bytes of update records the gather phase streams (in-memory engine)
	// or that are appended to the update files / bypass buffer
	// (out-of-core engine). With no Combiner this equals
	// UpdatesSent × sizeof(update); the figcombine experiment reports how
	// far below that a Combiner pushes it.
	UpdateBytes int64

	// Fault tolerance (retry layer, checksummed artifacts, checkpoints).
	// IORetries counts device operations the storage retry layer
	// re-issued after a transient failure during this run. BytesChecksummed
	// is the volume of on-disk data CRC-verified on the read path (edge
	// tiles, update streams, spilled vertex windows) — a deterministic
	// work measure the figchecksum experiment gates. ChecksumFailures
	// counts verifications that failed; a failure always surfaces as
	// storage.ErrCorrupted (or a transparent rebuild at the dataset
	// layer), never as a result, so any run that returns results has
	// consumed only verified bytes. ResumedIterations is the number of
	// leading iterations a checkpoint resume skipped: iterations
	// [0, ResumedIterations) were restored from the snapshot, and
	// Iterations - ResumedIterations were actually executed.
	IORetries         int64
	BytesChecksummed  int64
	ChecksumFailures  int64
	ResumedIterations int

	// RandomRefs counts random accesses to vertex state (one per
	// scattered edge + one per gathered update); SequentialRefs counts
	// records touched sequentially. Together they are the Figure 21
	// memory-reference proxy.
	RandomRefs     int64
	SequentialRefs int64

	// Update-transport traffic, reported by the run's UpdateTransport
	// itself (see core/transport.go) rather than reconstructed by the
	// engines. TransportBatches counts non-empty Send calls the transport
	// accepted; TransportBytes is their record payload volume
	// (records × sizeof(update)); TransportCross counts sent records whose
	// destination partition differed from the scattering partition —
	// measured after send-side combining (the records that actually
	// moved), unlike CrossPartitionUpdates, which counts before combining.
	// All three are deterministic work measures for a fixed workload.
	TransportBatches int64
	TransportBytes   int64
	TransportCross   int64
}

// WastedFraction returns the fraction of streamed edges that produced no
// update (Figure 12b's "wasted %").
func (s Stats) WastedFraction() float64 {
	if s.EdgesStreamed == 0 {
		return 0
	}
	return float64(s.WastedEdges) / float64(s.EdgesStreamed)
}

// CrossFraction returns the fraction of sent updates that crossed a
// partition boundary.
func (s Stats) CrossFraction() float64 {
	if s.UpdatesSent == 0 {
		return 0
	}
	return float64(s.CrossPartitionUpdates) / float64(s.UpdatesSent)
}

// CombinedFraction returns the fraction of sent updates the Combiner
// merged away before gather.
func (s Stats) CombinedFraction() float64 {
	if s.UpdatesSent == 0 {
		return 0
	}
	return float64(s.UpdatesCombined) / float64(s.UpdatesSent)
}

// SkippedFraction returns the fraction of the full edge workload that
// selective scheduling elided: skipped / (streamed + skipped).
func (s Stats) SkippedFraction() float64 {
	total := s.EdgesStreamed + s.EdgesSkipped
	if total == 0 {
		return 0
	}
	return float64(s.EdgesSkipped) / float64(total)
}

// StreamingTime estimates the time a pure streaming pass over the moved
// bytes would take at the given sequential bandwidth (bytes/sec). The
// paper's "ratio" column is TotalTime / StreamingTime.
func (s Stats) StreamingTime(seqBandwidth float64) time.Duration {
	if seqBandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(s.BytesStreamed) / seqBandwidth * float64(time.Second))
}

// Ratio returns TotalTime divided by the streaming-time lower bound at the
// given sequential bandwidth.
func (s Stats) Ratio(seqBandwidth float64) float64 {
	st := s.StreamingTime(seqBandwidth)
	if st == 0 {
		return 0
	}
	return float64(s.TotalTime) / float64(st)
}

// String renders the profile as the one-line summary the CLI prints:
// iteration count and the phase time split first — each phase as a
// fraction of TotalTime, the paper's Figure 12b quantity — then
// whichever optional subsystems (combining, replication, selective
// streaming, shared passes) did work.
func (s Stats) String() string {
	out := fmt.Sprintf("%s[%s]: %d iters, %d parts, %v total (scatter %v/%.0f%%, shuffle %v/%.0f%%, gather %v/%.0f%%), %d edges streamed, %d updates, %.0f%% wasted",
		s.Algorithm, s.Engine, s.Iterations, s.Partitions, s.TotalTime.Round(time.Millisecond),
		s.ScatterTime.Round(time.Millisecond), 100*s.TimeFraction(s.ScatterTime),
		s.ShuffleTime.Round(time.Millisecond), 100*s.TimeFraction(s.ShuffleTime),
		s.GatherTime.Round(time.Millisecond), 100*s.TimeFraction(s.GatherTime),
		s.EdgesStreamed, s.UpdatesSent, 100*s.WastedFraction())
	if s.UpdatesCombined > 0 {
		out += fmt.Sprintf(", %d combined (%.0f%%)", s.UpdatesCombined, 100*s.CombinedFraction())
	}
	if s.UpdateBytes > 0 {
		out += fmt.Sprintf(", %s update stream", humanBytes(s.UpdateBytes))
	}
	if s.MirroredVertices > 0 {
		out += fmt.Sprintf(", %d mirrored vertices (%d sync updates)",
			s.MirroredVertices, s.MirrorSyncUpdates)
	}
	if s.EdgesSkipped > 0 {
		out += fmt.Sprintf(", %d edges skipped (%.0f%%: %d partitions, %d tiles)",
			s.EdgesSkipped, 100*s.SkippedFraction(), s.PartitionsSkipped, s.TilesSkipped)
	}
	if s.CoJobs > 1 {
		out += fmt.Sprintf(", %d co-jobs sharing the stream (%d edge reads saved, %.0f%%)",
			s.CoJobs, s.EdgesShared, 100*s.SharedFraction())
	}
	if s.CompressedRatio > 0 {
		out += fmt.Sprintf(", compressed tiles at %.2f of raw (%d delta-coded, %s logical / %s physical read)",
			s.CompressedRatio, s.TilesCompressed, humanBytes(s.BytesReadLogical), humanBytes(s.BytesRead))
	}
	if s.BytesChecksummed > 0 {
		out += fmt.Sprintf(", %s checksum-verified", humanBytes(s.BytesChecksummed))
	}
	if s.IORetries > 0 {
		out += fmt.Sprintf(", %d I/O retries", s.IORetries)
	}
	if s.ChecksumFailures > 0 {
		out += fmt.Sprintf(", %d checksum failures", s.ChecksumFailures)
	}
	if s.ResumedIterations > 0 {
		out += fmt.Sprintf(", resumed from checkpoint at iter %d (%d executed)",
			s.ResumedIterations, s.Iterations-s.ResumedIterations)
	}
	return out
}

// TimeFraction returns d as a fraction of TotalTime (0 when TotalTime
// is zero) — the normalization behind the CLI's phase split.
func (s Stats) TimeFraction(d time.Duration) float64 {
	if s.TotalTime <= 0 {
		return 0
	}
	return float64(d) / float64(s.TotalTime)
}

// SharedFraction returns the fraction of the per-job edge demand the shared
// pass elided: shared / (streamed + shared). K perfectly co-scheduled jobs
// approach (K-1)/K.
func (s Stats) SharedFraction() float64 {
	total := s.EdgesStreamed + s.EdgesShared
	if total == 0 {
		return 0
	}
	return float64(s.EdgesShared) / float64(total)
}

// humanBytes renders a byte count with a binary unit suffix.
func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
