package core

import (
	"fmt"
	"time"
)

// Stats records the execution profile of one run. It backs the paper's
// Figure 12b (iterations, runtime-to-streaming ratio, wasted edges),
// Figure 20/22 (pre-processing split) and Figure 21 (memory-reference
// proxy).
type Stats struct {
	Algorithm   string
	Engine      string // "memory", "ssd", "disk", ...
	Partitioner string // "range", "2ps", ...
	Iterations  int
	Partitions  int
	Threads     int

	// Streaming volume.
	EdgesStreamed int64 // edge records read across all scatter phases
	UpdatesSent   int64 // updates produced across all scatter phases
	WastedEdges   int64 // edges streamed that produced no update
	// CrossPartitionUpdates counts updates whose destination lies outside
	// the partition that produced them — the shuffle traffic a
	// locality-aware partitioner exists to reduce.
	CrossPartitionUpdates int64

	// Time split.
	TotalTime      time.Duration
	PreprocessTime time.Duration // initial partitioning of the input edge list
	ScatterTime    time.Duration
	ShuffleTime    time.Duration
	GatherTime     time.Duration

	// Data volume in bytes, for computing the streaming-time lower bound.
	BytesStreamed int64 // records moved through stream buffers
	BytesRead     int64 // device reads (out-of-core only)
	BytesWritten  int64 // device writes (out-of-core only)

	// RandomRefs counts random accesses to vertex state (one per
	// scattered edge + one per gathered update); SequentialRefs counts
	// records touched sequentially. Together they are the Figure 21
	// memory-reference proxy.
	RandomRefs     int64
	SequentialRefs int64
}

// WastedFraction returns the fraction of streamed edges that produced no
// update (Figure 12b's "wasted %").
func (s Stats) WastedFraction() float64 {
	if s.EdgesStreamed == 0 {
		return 0
	}
	return float64(s.WastedEdges) / float64(s.EdgesStreamed)
}

// CrossFraction returns the fraction of sent updates that crossed a
// partition boundary.
func (s Stats) CrossFraction() float64 {
	if s.UpdatesSent == 0 {
		return 0
	}
	return float64(s.CrossPartitionUpdates) / float64(s.UpdatesSent)
}

// StreamingTime estimates the time a pure streaming pass over the moved
// bytes would take at the given sequential bandwidth (bytes/sec). The
// paper's "ratio" column is TotalTime / StreamingTime.
func (s Stats) StreamingTime(seqBandwidth float64) time.Duration {
	if seqBandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(s.BytesStreamed) / seqBandwidth * float64(time.Second))
}

// Ratio returns TotalTime divided by the streaming-time lower bound at the
// given sequential bandwidth.
func (s Stats) Ratio(seqBandwidth float64) float64 {
	st := s.StreamingTime(seqBandwidth)
	if st == 0 {
		return 0
	}
	return float64(s.TotalTime) / float64(st)
}

func (s Stats) String() string {
	return fmt.Sprintf("%s[%s]: %d iters, %d parts, %v total (scatter %v, shuffle %v, gather %v), %d edges streamed, %d updates, %.0f%% wasted",
		s.Algorithm, s.Engine, s.Iterations, s.Partitions, s.TotalTime.Round(time.Millisecond),
		s.ScatterTime.Round(time.Millisecond), s.ShuffleTime.Round(time.Millisecond), s.GatherTime.Round(time.Millisecond),
		s.EdgesStreamed, s.UpdatesSent, 100*s.WastedFraction())
}
