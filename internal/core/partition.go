package core

import (
	"fmt"
	"math"
	"math/bits"
)

// Partitioner maps vertices to streaming partitions. Vertex sets of
// partitions are equal-sized contiguous ID ranges (§2.4: "we restrict the
// vertex sets of streaming partitions to be of equal size").
type Partitioner struct {
	K   int    // number of partitions
	per uint32 // vertices per partition
}

// NewPartitioner divides n vertices into k partitions.
func NewPartitioner(n int64, k int) Partitioner {
	if k < 1 {
		k = 1
	}
	per := (n + int64(k) - 1) / int64(k)
	if per < 1 {
		per = 1
	}
	return Partitioner{K: k, per: uint32(per)}
}

// Of returns the partition owning vertex v.
func (p Partitioner) Of(v VertexID) uint32 { return uint32(v) / p.per }

// Range returns the vertex ID range [lo, hi) of partition i, clamped to n.
func (p Partitioner) Range(i int, n int64) (lo, hi int64) {
	lo = int64(i) * int64(p.per)
	hi = lo + int64(p.per)
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// PerPartition returns the number of vertex IDs per partition.
func (p Partitioner) PerPartition() int64 { return int64(p.per) }

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// MemPartitions computes the number of streaming partitions for the
// in-memory engine (§4): the vertex *footprint* — vertex state plus the
// edge and update that reference it without displacing it — of one
// partition must fit in the CPU cache share of a core. The result is
// rounded up to a power of two, as the multi-stage shuffler requires.
func MemPartitions(numVertices int64, footprintBytes int, cacheBytes int) int {
	if cacheBytes <= 0 || numVertices <= 0 {
		return 1
	}
	total := numVertices * int64(footprintBytes)
	k := int((total + int64(cacheBytes) - 1) / int64(cacheBytes))
	return NextPow2(k)
}

// MemFanout bounds the shuffler fanout by the number of cache lines in the
// cache (§4.2): each output chunk needs a resident cache line for writes to
// stay sequential. The result is a power of two >= 2.
func MemFanout(cacheBytes, cacheLineBytes int) int {
	if cacheLineBytes <= 0 {
		cacheLineBytes = 64
	}
	lines := cacheBytes / cacheLineBytes
	if lines < 2 {
		return 2
	}
	// Round down to a power of two.
	return 1 << (bits.Len(uint(lines)) - 1)
}

// DiskPartitions computes the number of streaming partitions for the
// out-of-core engine from the §3.4 inequality
//
//	N/K + 5·S·K ≤ M
//
// where N is total vertex state bytes, S the I/O unit and M the memory
// budget (five stream buffers: two input, two output, one shuffle). It
// returns the smallest viable K, preferring small K to maximize sequential
// runs. If even the optimum K = sqrt(N/(5S)) violates the budget, an error
// reports the minimum memory required, 2·sqrt(5·N·S).
func DiskPartitions(vertexBytes int64, ioUnit int, memBudget int64) (int, error) {
	if vertexBytes <= 0 {
		return 1, nil
	}
	s := int64(ioUnit)
	need := func(k int64) int64 {
		return (vertexBytes+k-1)/k + 5*s*k
	}
	// Minimum of the left-hand side is at K* = sqrt(N/5S).
	kstar := int64(math.Sqrt(float64(vertexBytes) / float64(5*s)))
	if kstar < 1 {
		kstar = 1
	}
	minMem := need(kstar)
	if m := need(kstar + 1); m < minMem {
		minMem, kstar = m, kstar+1
	}
	if minMem > memBudget {
		return 0, fmt.Errorf("core: out-of-core run needs at least %d bytes of memory (budget %d): %d bytes of vertex state with %d-byte I/O units",
			minMem, memBudget, vertexBytes, ioUnit)
	}
	// Smallest K satisfying the inequality.
	for k := int64(1); k <= kstar; k++ {
		if need(k) <= memBudget {
			return int(k), nil
		}
	}
	return int(kstar), nil
}

// Footprint returns the §4 vertex footprint used to size in-memory
// partitions: vertex state plus one edge plus one update.
func Footprint(vertexStateBytes, updateBytes int) int {
	const edgeBytes = 12 // unsafe.Sizeof(Edge{})
	return vertexStateBytes + edgeBytes + updateBytes
}
