package core

import (
	"fmt"
	"math"
	"math/bits"
	"unsafe"
)

// Split is the contiguous vertex-ID layout every engine executes over:
// n vertices divided into K equal-sized ranges (§2.4: "we restrict the
// vertex sets of streaming partitions to be of equal size"). Engines always
// run over a Split; a Partitioner may first relabel vertices so that the
// contiguous ranges correspond to a locality-aware clustering.
type Split struct {
	K   int    // number of partitions
	per uint32 // vertices per partition
}

// NewSplit divides n vertices into k contiguous equal ranges.
func NewSplit(n int64, k int) Split {
	if k < 1 {
		k = 1
	}
	per := (n + int64(k) - 1) / int64(k)
	if per < 1 {
		per = 1
	}
	return Split{K: k, per: uint32(per)}
}

// Of returns the partition owning vertex v.
func (p Split) Of(v VertexID) uint32 { return uint32(v) / p.per }

// Range returns the vertex ID range [lo, hi) of partition i, clamped to n.
func (p Split) Range(i int, n int64) (lo, hi int64) {
	lo = int64(i) * int64(p.per)
	hi = lo + int64(p.per)
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// PerPartition returns the number of vertex IDs per partition.
func (p Split) PerPartition() int64 { return int64(p.per) }

// Assignment is the output of a Partitioner: the contiguous Split the
// engine executes plus the vertex relabeling that realizes it.
//
// The relabeling contract: engines rewrite every edge endpoint through
// Relabel before partitioning, run the whole computation in relabeled ID
// space, and map results back through Inverse before returning them, so
// callers always see vertex states in original input order. A nil Relabel
// (and Inverse) means the identity — the original IDs already are the
// execution IDs.
type Assignment struct {
	// Split is the contiguous range layout over relabeled IDs. It always
	// equals NewSplit(n, k) — contiguity and equal sizing are invariants,
	// not partitioner choices.
	Split Split
	// Relabel maps original vertex ID -> relabeled ID. nil = identity.
	// When non-nil it must be a permutation of [0, n).
	Relabel []VertexID
	// Inverse maps relabeled ID -> original ID. nil = identity.
	Inverse []VertexID
	// Mirrors is the replication set: hub vertices (execution IDs) whose
	// updates the engines absorb into partition-local mirror accumulators
	// and flush as per-partition sync updates — see replication.go. nil
	// means no vertex is mirrored. Only programs with a Combiner use it;
	// others fall back to the plain update path.
	Mirrors *Replication
}

// Identity reports whether the assignment keeps original IDs.
func (a *Assignment) Identity() bool { return a.Relabel == nil }

// NewID maps an original vertex ID to its relabeled execution ID. IDs
// outside the graph map to themselves, so a nonsensical parameter (a BFS
// root beyond the vertex count) degrades exactly as it does under the
// identity assignment instead of panicking.
func (a *Assignment) NewID(v VertexID) VertexID {
	if a.Relabel == nil || int(v) >= len(a.Relabel) {
		return v
	}
	return a.Relabel[v]
}

// OldID maps a relabeled execution ID back to the original vertex ID.
// Out-of-range IDs map to themselves, mirroring NewID.
func (a *Assignment) OldID(v VertexID) VertexID {
	if a.Inverse == nil || int(v) >= len(a.Inverse) {
		return v
	}
	return a.Inverse[v]
}

// Of returns the partition owning the *original* vertex v.
func (a *Assignment) Of(v VertexID) uint32 { return a.Split.Of(a.NewID(v)) }

// Validate checks the assignment invariants for an n-vertex graph: the
// split covers [0, n), Relabel is a permutation of [0, n) and Inverse is
// its inverse (both nil counts as the identity).
func (a *Assignment) Validate(n int64) error {
	if want := NewSplit(n, a.Split.K); want != a.Split {
		return fmt.Errorf("core: assignment split %+v is not the contiguous equal split %+v", a.Split, want)
	}
	if a.Mirrors != nil {
		if err := a.Mirrors.Validate(n); err != nil {
			return err
		}
	}
	if a.Relabel == nil && a.Inverse == nil {
		return nil
	}
	if int64(len(a.Relabel)) != n || int64(len(a.Inverse)) != n {
		return fmt.Errorf("core: assignment permutation length %d/%d, want %d", len(a.Relabel), len(a.Inverse), n)
	}
	for old, nw := range a.Relabel {
		if int64(nw) >= n {
			return fmt.Errorf("core: relabel[%d] = %d out of range [0,%d)", old, nw, n)
		}
		if a.Inverse[nw] != VertexID(old) {
			return fmt.Errorf("core: inverse[relabel[%d]] = %d, not the identity", old, a.Inverse[nw])
		}
	}
	return nil
}

// CrossEdgeFraction streams src and returns the fraction of edges whose
// endpoints land in different partitions under the assignment — the
// locality metric the figlocality benchmark reports (every such edge's
// update crosses partitions in the shuffle).
func (a *Assignment) CrossEdgeFraction(src EdgeSource) (float64, error) {
	var total, cross int64
	err := src.Edges(func(batch []Edge) error {
		total += int64(len(batch))
		for _, e := range batch {
			if a.Of(e.Src) != a.Of(e.Dst) {
				cross++
			}
		}
		return nil
	})
	if err != nil || total == 0 {
		return 0, err
	}
	return float64(cross) / float64(total), nil
}

// Partitioner decides how vertices map to streaming partitions. Engines
// call Assign once during pre-processing with the edge source and the
// partition count they already sized from the memory model (§3.4, §4);
// the partitioner answers with a relabeling whose contiguous ranges are
// the partitions. Assign may stream src any number of times (EdgeSource
// is re-streamable by contract) but must be deterministic for a given
// source and k.
type Partitioner interface {
	// Name identifies the policy in stats and benchmark tables.
	Name() string
	// Assign plans the partitioning of src into k partitions.
	Assign(src EdgeSource, k int) (*Assignment, error)
}

// RangePartitioner is the paper's fixed policy: partitions are contiguous
// ranges of the *input* vertex IDs, locality entirely at the mercy of the
// input ordering. The zero value is ready to use and is what engines
// default to when Config.Partitioner is nil.
type RangePartitioner struct{}

// Name implements Partitioner.
func (RangePartitioner) Name() string { return "range" }

// Assign implements Partitioner with the identity relabeling.
func (RangePartitioner) Assign(src EdgeSource, k int) (*Assignment, error) {
	return &Assignment{Split: NewSplit(src.NumVertices(), k)}, nil
}

// PermutationPartitioner replays a previously computed relabeling
// permutation — the mechanism behind persisted assignments: an expensive
// clustering pass (2PS) is run once per dataset, its permutation is saved
// with graphio.WritePermutation, and later runs replay it here for free.
// The permutation maps original vertex ID -> relabeled ID; nil replays the
// identity. Any partition count works, because contiguous equal ranges
// over a fixed relabeling remain a valid Split for every K — and so does a
// persisted mirror set (WithMirrors), because mirror accumulators are
// per-partition runtime state, not part of the layout.
type PermutationPartitioner struct {
	name    string
	relabel []VertexID
	hubs    []VertexID
}

// NewPermutationPartitioner wraps a saved old->new relabeling as a
// Partitioner. The name identifies the policy in stats tables.
func NewPermutationPartitioner(name string, relabel []VertexID) *PermutationPartitioner {
	if name == "" {
		name = "perm"
	}
	return &PermutationPartitioner{name: name, relabel: relabel}
}

// WithMirrors attaches a saved replication set — mirrored hubs as
// execution (relabeled) IDs — so replayed assignments carry it. Returns
// the receiver for chaining; nil or empty hubs leave the partitioner
// unchanged.
func (p *PermutationPartitioner) WithMirrors(hubs []VertexID) *PermutationPartitioner {
	if len(hubs) > 0 {
		p.hubs = hubs
	}
	return p
}

// Name implements Partitioner.
func (p *PermutationPartitioner) Name() string { return p.name }

// Assign implements Partitioner by replaying the stored permutation (and
// mirror set, if one was attached).
func (p *PermutationPartitioner) Assign(src EdgeSource, k int) (*Assignment, error) {
	n := src.NumVertices()
	asg := &Assignment{Split: NewSplit(n, k)}
	if p.hubs != nil {
		asg.Mirrors = NewReplication(n, p.hubs)
	}
	if p.relabel == nil {
		return asg, nil
	}
	if int64(len(p.relabel)) != n {
		return nil, fmt.Errorf("core: saved permutation has %d entries for %d vertices", len(p.relabel), n)
	}
	inv := make([]VertexID, n)
	for old, nw := range p.relabel {
		if int64(nw) >= n {
			return nil, fmt.Errorf("core: saved permutation entry %d = %d out of range [0,%d)", old, nw, n)
		}
		inv[nw] = VertexID(old)
	}
	asg.Relabel = p.relabel
	asg.Inverse = inv
	return asg, nil
}

// RestoreOrder reorders relabeled-space vertex states back to original
// input order: out[old] = verts[relabel[old]]. A nil relabel returns verts
// unchanged.
func RestoreOrder[V any](verts []V, relabel []VertexID) []V {
	if relabel == nil {
		return verts
	}
	out := make([]V, len(verts))
	for old, nw := range relabel {
		out[old] = verts[nw]
	}
	return out
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// MemPartitions computes the number of streaming partitions for the
// in-memory engine (§4): the vertex *footprint* — vertex state plus the
// edge and update that reference it without displacing it — of one
// partition must fit in the CPU cache share of a core. The result is
// rounded up to a power of two, as the multi-stage shuffler requires.
func MemPartitions(numVertices int64, footprintBytes int, cacheBytes int) int {
	if cacheBytes <= 0 || numVertices <= 0 {
		return 1
	}
	total := numVertices * int64(footprintBytes)
	k := int((total + int64(cacheBytes) - 1) / int64(cacheBytes))
	return NextPow2(k)
}

// MemFanout bounds the shuffler fanout by the number of cache lines in the
// cache (§4.2): each output chunk needs a resident cache line for writes to
// stay sequential. The result is a power of two >= 2.
func MemFanout(cacheBytes, cacheLineBytes int) int {
	if cacheLineBytes <= 0 {
		cacheLineBytes = 64
	}
	lines := cacheBytes / cacheLineBytes
	if lines < 2 {
		return 2
	}
	// Round down to a power of two.
	return 1 << (bits.Len(uint(lines)) - 1)
}

// DiskPartitions computes the number of streaming partitions for the
// out-of-core engine from the §3.4 inequality
//
//	N/K + 5·S·K ≤ M
//
// where N is total vertex state bytes, S the I/O unit and M the memory
// budget (five stream buffers: two input, two output, one shuffle). It
// returns the smallest viable K, preferring small K to maximize sequential
// runs. If even the optimum K = sqrt(N/(5S)) violates the budget, an error
// reports the minimum memory required, 2·sqrt(5·N·S).
func DiskPartitions(vertexBytes int64, ioUnit int, memBudget int64) (int, error) {
	if vertexBytes <= 0 {
		return 1, nil
	}
	s := int64(ioUnit)
	need := func(k int64) int64 {
		return (vertexBytes+k-1)/k + 5*s*k
	}
	// Minimum of the left-hand side is at K* = sqrt(N/5S).
	kstar := int64(math.Sqrt(float64(vertexBytes) / float64(5*s)))
	if kstar < 1 {
		kstar = 1
	}
	minMem := need(kstar)
	if m := need(kstar + 1); m < minMem {
		minMem, kstar = m, kstar+1
	}
	if minMem > memBudget {
		return 0, fmt.Errorf("core: out-of-core run needs at least %d bytes of memory (budget %d): %d bytes of vertex state with %d-byte I/O units",
			minMem, memBudget, vertexBytes, ioUnit)
	}
	// Smallest K satisfying the inequality.
	for k := int64(1); k <= kstar; k++ {
		if need(k) <= memBudget {
			return int(k), nil
		}
	}
	return int(kstar), nil
}

// Footprint returns the §4 vertex footprint used to size in-memory
// partitions: vertex state plus one edge plus one update.
func Footprint(vertexStateBytes, updateBytes int) int {
	return vertexStateBytes + int(unsafe.Sizeof(Edge{})) + updateBytes
}
