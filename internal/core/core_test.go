package core

import (
	"testing"
	"testing/quick"
)

func TestSliceSourceInfersVertices(t *testing.T) {
	src := NewSliceSource([]Edge{{0, 5, 1}, {3, 2, 1}}, 0)
	if src.NumVertices() != 6 {
		t.Fatalf("NumVertices = %d, want 6", src.NumVertices())
	}
	if src.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", src.NumEdges())
	}
}

func TestSliceSourceRestreamable(t *testing.T) {
	edges := []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}}
	src := NewSliceSource(edges, 3)
	for pass := 0; pass < 3; pass++ {
		var n int
		if err := src.Edges(func(b []Edge) error { n += len(b); return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("pass %d streamed %d edges", pass, n)
		}
	}
}

func TestReverse(t *testing.T) {
	src := NewSliceSource([]Edge{{0, 1, 0.5}, {2, 3, 0.25}}, 4)
	rev, err := Materialize(Reverse(src))
	if err != nil {
		t.Fatal(err)
	}
	if rev[0] != (Edge{1, 0, 0.5}) || rev[1] != (Edge{3, 2, 0.25}) {
		t.Fatalf("reverse = %+v", rev)
	}
	if Reverse(src).NumVertices() != 4 {
		t.Fatal("reverse vertex count")
	}
}

func TestPartitionerRanges(t *testing.T) {
	const n, k = 103, 8
	p := NewSplit(n, k)
	covered := 0
	for i := 0; i < k; i++ {
		lo, hi := p.Range(i, n)
		covered += int(hi - lo)
		for v := lo; v < hi; v++ {
			if got := p.Of(VertexID(v)); got != uint32(i) {
				t.Fatalf("vertex %d in partition %d, want %d", v, got, i)
			}
		}
	}
	if covered != n {
		t.Fatalf("ranges cover %d vertices, want %d", covered, n)
	}
}

func TestPartitionerProperty(t *testing.T) {
	f := func(nRaw uint32, kRaw uint8) bool {
		n := int64(nRaw%1_000_000) + 1
		k := int(kRaw%64) + 1
		p := NewSplit(n, k)
		// Every vertex maps into [0, K); ranges are disjoint and ordered.
		for _, v := range []int64{0, n / 2, n - 1} {
			pid := p.Of(VertexID(v))
			if int(pid) >= p.K {
				return false
			}
			lo, hi := p.Range(int(pid), n)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestMemPartitions(t *testing.T) {
	// 1M vertices with a 24-byte footprint in a 2MB cache => 24MB/2MB =
	// 12 -> 16 partitions.
	if got := MemPartitions(1<<20, 24, 2<<20); got != 16 {
		t.Fatalf("MemPartitions = %d, want 16", got)
	}
	// Everything fits in cache -> 1 partition.
	if got := MemPartitions(100, 24, 2<<20); got != 1 {
		t.Fatalf("small graph MemPartitions = %d, want 1", got)
	}
	// Power-of-two invariant.
	for n := int64(1); n < 1e7; n *= 3 {
		k := MemPartitions(n, 24, 1<<20)
		if k&(k-1) != 0 {
			t.Fatalf("MemPartitions(%d) = %d not a power of two", n, k)
		}
	}
}

func TestMemFanout(t *testing.T) {
	if got := MemFanout(2<<20, 64); got != 32768 {
		t.Fatalf("fanout = %d, want 32768 (2MB/64B cache lines)", got)
	}
	if got := MemFanout(64, 64); got != 2 {
		t.Fatalf("degenerate fanout = %d, want 2", got)
	}
	if f := MemFanout(3000, 64); f&(f-1) != 0 {
		t.Fatalf("fanout %d not a power of two", f)
	}
}

func TestDiskPartitionsInequality(t *testing.T) {
	// §3.4's worked example: N = 1 TB of vertex data, S = 16 MB => the
	// minimum memory is 2*sqrt(5NS) ≈ 17 GB with under 120 partitions.
	n := int64(1) << 40
	s := 16 << 20
	k, err := DiskPartitions(n, s, 18<<30)
	if err != nil {
		t.Fatal(err)
	}
	if k > 120 {
		t.Fatalf("K = %d, paper says under 120", k)
	}
	// Inequality must hold for the returned K.
	if lhs := n/int64(k) + 5*int64(s)*int64(k); lhs > 18<<30 {
		t.Fatalf("inequality violated: %d > %d", lhs, 18<<30)
	}
	// An impossible budget errors.
	if _, err := DiskPartitions(n, s, 1<<30); err == nil {
		t.Fatal("expected error for tiny budget")
	}
}

func TestDiskPartitionsProperty(t *testing.T) {
	f := func(nRaw uint32, budgetRaw uint32) bool {
		n := int64(nRaw) + 1
		s := 1 << 20
		budget := int64(budgetRaw)%(1<<30) + 64<<20
		k, err := DiskPartitions(n, s, budget)
		if err != nil {
			// Must genuinely be infeasible at the optimum.
			kstar := int64(1)
			for need(n, s, kstar+1) < need(n, s, kstar) {
				kstar++
			}
			return need(n, s, kstar) > budget
		}
		return k >= 1 && need(n, s, int64(k)) <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func need(n int64, s int, k int64) int64 { return (n+k-1)/k + 5*int64(s)*k }

func TestFootprint(t *testing.T) {
	if got := Footprint(8, 8); got != 28 {
		t.Fatalf("Footprint = %d, want 28", got)
	}
}

func TestStats(t *testing.T) {
	s := Stats{EdgesStreamed: 100, WastedEdges: 63, TotalTime: 2e9, BytesStreamed: 1e9}
	if got := s.WastedFraction(); got != 0.63 {
		t.Fatalf("wasted = %v", got)
	}
	// 1 GB at 1 GB/s = 1 s streaming; ratio = 2.
	if got := s.Ratio(1e9); got < 1.99 || got > 2.01 {
		t.Fatalf("ratio = %v", got)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

// TestCombineBuffer: same-destination updates merge while the slot table
// remembers them, drains hand back exactly the surviving records, and the
// epoch trick keeps drains independent.
func TestCombineBuffer(t *testing.T) {
	cb := NewCombineBuffer[int64](4, func(a, b int64) int64 { return a + b })
	if full := cb.Add(7, 1); full {
		t.Fatal("full after one add")
	}
	cb.Add(7, 2) // merges
	cb.Add(9, 5)
	if cb.Combined != 1 || cb.Len() != 2 {
		t.Fatalf("combined %d, len %d", cb.Combined, cb.Len())
	}
	var got map[VertexID]int64
	cb.Drain(func(recs []Update[int64]) {
		got = map[VertexID]int64{}
		for _, r := range recs {
			got[r.Dst] += r.Val
		}
	})
	if got[7] != 3 || got[9] != 5 {
		t.Fatalf("drained %v", got)
	}
	if cb.Len() != 0 {
		t.Fatalf("len %d after drain", cb.Len())
	}
	// After a drain the table must not resurrect pre-drain records.
	cb.Add(7, 10)
	cb.Drain(func(recs []Update[int64]) {
		if len(recs) != 1 || recs[0].Val != 10 {
			t.Fatalf("second drain: %v", recs)
		}
	})
}

// TestCombineBufferTotalsPreserved: for any update stream, draining through
// a combining buffer preserves per-destination sums and never exceeds
// capacity between drains.
func TestCombineBufferTotalsPreserved(t *testing.T) {
	const cap = 8
	cb := NewCombineBuffer[int64](cap, func(a, b int64) int64 { return a + b })
	want := map[VertexID]int64{}
	got := map[VertexID]int64{}
	flush := func(recs []Update[int64]) {
		if len(recs) > cap {
			t.Fatalf("drained %d records from capacity %d", len(recs), cap)
		}
		for _, r := range recs {
			got[r.Dst] += r.Val
		}
	}
	for i := 0; i < 10000; i++ {
		// 5 destinations cycle within the 8-record window, so every pass
		// offers combining opportunities; the multiplier shuffles order.
		dst := VertexID((i * 3) % 5)
		val := int64(i%13 + 1)
		want[dst] += val
		if cb.Add(dst, val) {
			cb.Drain(flush)
		}
	}
	cb.Drain(flush)
	if cb.Combined == 0 {
		t.Fatal("no combining over a 37-destination stream")
	}
	for dst, w := range want {
		if got[dst] != w {
			t.Fatalf("dst %d: sum %d, want %d", dst, got[dst], w)
		}
	}
}

// TestPermutationPartitioner: replaying a saved permutation reproduces the
// assignment, and bad permutations surface as errors.
func TestPermutationPartitioner(t *testing.T) {
	src := NewSliceSource([]Edge{{Src: 0, Dst: 3}, {Src: 1, Dst: 2}}, 4)
	perm := []VertexID{2, 3, 0, 1}
	p := NewPermutationPartitioner("saved", perm)
	if p.Name() != "saved" {
		t.Fatalf("name %q", p.Name())
	}
	asg, err := p.Assign(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := asg.Validate(4); err != nil {
		t.Fatal(err)
	}
	if asg.NewID(0) != 2 || asg.OldID(2) != 0 {
		t.Fatalf("translation broken: %v / %v", asg.NewID(0), asg.OldID(2))
	}
	// Identity replay.
	idp := NewPermutationPartitioner("", nil)
	asg, err = idp.Assign(src, 2)
	if err != nil || !asg.Identity() {
		t.Fatalf("identity replay: %v %v", asg, err)
	}
	// Wrong length errors.
	if _, err := NewPermutationPartitioner("x", []VertexID{0, 1}).Assign(src, 2); err == nil {
		t.Fatal("short permutation accepted")
	}
	// Out-of-range entry errors.
	if _, err := NewPermutationPartitioner("x", []VertexID{0, 1, 2, 9}).Assign(src, 2); err == nil {
		t.Fatal("out-of-range permutation accepted")
	}
}
