package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/streambuf"
	"repro/internal/transport/conformance"
)

// TestShuffleTransportConformance pins the builtin in-memory shuffle —
// the transport the solo in-memory engine and the shared-pass job runner
// use — to the UpdateTransport contract.
func TestShuffleTransportConformance(t *testing.T) {
	conformance.Run(t, conformance.Maker{
		Name: "shuffle",
		New: func(t *testing.T, k int, nv int64, capacity, threads int, combine bool) core.UpdateTransport[int64] {
			split := core.NewSplit(nv, k)
			plan, err := streambuf.NewPlan(k, k)
			if err != nil {
				t.Fatalf("NewPlan: %v", err)
			}
			var folder *streambuf.Folder[core.Update[int64]]
			if combine {
				folder = core.NewUpdateFolder(split, threads, func(a, b int64) int64 { return a + b })
			}
			key := func(u core.Update[int64]) uint32 { return split.Of(u.Dst) }
			return core.NewShuffleTransport(capacity, plan, threads, key, folder)
		},
		SingleSenderFIFO: true,
	})
}
