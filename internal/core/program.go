package core

// Program is an edge-centric scatter-gather computation (paper Figure 2).
//
// V is the per-vertex state type and M the update value type; both must be
// pointer-free fixed-size types so the out-of-core engine can stream them
// to storage unchanged (internal/pod enforces this at setup).
//
// Scatter and Gather are called concurrently from multiple goroutines for
// different partitions; they must only touch the vertex/update they are
// given plus immutable or atomically-updated program state.
type Program[V, M any] interface {
	// Name identifies the algorithm in stats and benchmark tables.
	Name() string
	// Init sets the initial state of a vertex (the vertex-iteration API
	// of §2.5, used for initialization).
	Init(id VertexID, v *V)
	// Scatter inspects the state of the edge's source vertex and decides
	// whether to send an update over the edge, and with what value.
	// Returning false streams the edge with no update — a "wasted" edge
	// in the paper's terminology.
	Scatter(e Edge, src *V) (M, bool)
	// Gather applies one update to the state of its destination vertex.
	Gather(dst VertexID, v *V, m M)
}

// Combiner is implemented by programs whose update values form a
// commutative semigroup: Combine(a, b) must equal Combine(b, a), and
// Combine(Combine(a, b), c) must equal Combine(a, Combine(b, c)), so that
// Gather(dst, v, Combine(a, b)) leaves the vertex in the same state as
// Gather(dst, v, a) followed by Gather(dst, v, b) — for any order and any
// grouping of the updates addressed to dst within one iteration.
//
// When a program implements Combiner, the engines pre-aggregate the update
// stream before it is shuffled and gathered (the update stream dominates
// X-Stream's cost model, §3.2): thread-private combining buffers absorb
// same-destination updates at scatter time, and a per-partition fold merges
// the survivors after the shuffle, so fewer records cross RAM — and, in the
// out-of-core engine, fewer bytes are written to the update files.
//
// Typical combiners: sum (PageRank, SpMV), min (SSSP, BFS levels, WCC
// labels), set union (HyperANF sketches). Programs whose Gather is not a
// pure semigroup action on the update value (e.g. ones that count the
// *number* of updates received) must not implement Combiner. Floating-point
// addition is accepted as associative here, exactly as the paper's own
// PageRank tolerates reduction-order rounding differences.
//
// Combining can be disabled per run (Config.NoCombine in either engine)
// without changing results, which is how the equivalence suite proves the
// contract.
type Combiner[M any] interface {
	// Combine merges two update values addressed to the same vertex.
	Combine(a, b M) M
}

// Direction selects which edge list an iteration streams.
type Direction int

const (
	// Forward streams the input edge list as-is.
	Forward Direction = iota
	// Backward streams the transposed edge list, so information flows
	// against edge direction. The engine materializes the transpose with
	// one streaming pass the first time it is needed.
	Backward
)

// DirectedProgram is implemented by programs whose iterations may stream
// the transposed edge list (e.g. the backward closure of SCC).
type DirectedProgram interface {
	// Direction returns the edge direction for the given iteration.
	Direction(iter int) Direction
}

// IterationStarter is implemented by programs that need per-iteration setup
// before the scatter phase (phase switches, random priorities, ...). It
// runs single-threaded.
type IterationStarter interface {
	StartIteration(iter int)
}

// VertexMapper is implemented by programs whose *parameters* reference
// specific vertex IDs (a BFS root, a bipartite user/item boundary, a
// subset membership predicate). Engines call MapVertices exactly once per
// run, before Init, with the assignment's translation functions — the
// identity when the partitioner does not relabel — so the program can
// convert its parameters from input IDs into the execution ID space.
// Implementations must derive the mapped values from their original
// construction parameters each call, so a program value can be reused
// across runs with different partitioners.
//
// During a relabeled run every ID a program sees — Init and Gather ids,
// edge endpoints in Scatter, VertexView iteration order — is an execution
// (relabeled) ID. Programs that never compare IDs against parameters need
// no mapping; engines restore original vertex order in results themselves.
// Implementations on a streaming hot path (per-edge membership tests)
// should use numVertices to precompute an execution-space lookup table in
// MapVertices rather than calling the translation functions per edge:
// new2old is a random access into an O(V) array when the partitioner
// relabels, exactly the access pattern the engines exist to avoid.
type VertexMapper interface {
	// MapVertices installs the input->execution (old2new) and
	// execution->input (new2old) ID translations for the coming run over
	// numVertices vertices.
	MapVertices(numVertices int64, old2new, new2old func(VertexID) VertexID)
}

// StateRemapper is implemented by programs whose per-vertex *state* holds
// vertex IDs (WCC labels, SCC component IDs). After a relabeled run the
// engine calls RemapState on every vertex before restoring original order,
// so reported states reference input IDs. Note the representative an
// ID-valued state ends up with may legitimately differ between
// partitioners (e.g. WCC picks the minimum *execution* ID of a component);
// only its component membership is partitioner-independent.
type StateRemapper[V any] interface {
	RemapState(v *V, new2old func(VertexID) VertexID)
}

// VertexView gives phase hooks streaming access to all vertex state.
// Mutations through ForEach are persisted by the engine (for the disk
// engine this means the vertex files are rewritten).
type VertexView[V any] interface {
	// NumVertices returns the vertex count.
	NumVertices() int64
	// ForEach calls fn for every vertex in id order. fn may mutate *v.
	ForEach(fn func(id VertexID, v *V))
}

// PhasedProgram is implemented by programs with their own termination or
// cross-vertex aggregation logic. EndIteration runs single-threaded after
// the gather phase; returning true terminates the computation.
//
// Programs that do not implement PhasedProgram terminate when a scatter
// phase produces no updates.
type PhasedProgram[V, M any] interface {
	Program[V, M]
	EndIteration(iter int, updatesSent int64, view VertexView[V]) (done bool)
}

// SliceView adapts an in-memory vertex array to VertexView.
type SliceView[V any] []V

// NumVertices returns the vertex count.
func (s SliceView[V]) NumVertices() int64 { return int64(len(s)) }

// ForEach calls fn for every vertex in id order.
func (s SliceView[V]) ForEach(fn func(VertexID, *V)) {
	for i := range s {
		fn(VertexID(i), &s[i])
	}
}
