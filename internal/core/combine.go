package core

import "repro/internal/streambuf"

// MaxFoldSlots bounds the per-worker dense slot tables of the
// post-shuffle fold: beyond ~4M vertices per partition the tables stop
// being worth their footprint and engines skip the fold (scatter-side
// combining still applies).
const MaxFoldSlots = 4 << 20

// NewUpdateFolder builds the per-partition combining fold both engines
// apply to shuffled update buffers: within each partition's chunk, updates
// to the same destination merge through combine. The slot of an update is
// its destination's offset inside the partition's contiguous vertex range.
// Returns nil when the partitions are too wide for dense slot tables
// (MaxFoldSlots); the folder's tables are cached, so one folder should be
// reused for every fold of a run.
func NewUpdateFolder[M any](split Split, workers int, combine func(a, b M) M) *streambuf.Folder[Update[M]] {
	per := split.PerPartition()
	if per > MaxFoldSlots {
		return nil
	}
	return streambuf.NewFolder(workers, int(per), func(p int, u Update[M]) uint32 {
		return uint32(u.Dst) - uint32(p)*uint32(per)
	}, func(dst *Update[M], src Update[M]) {
		dst.Val = combine(dst.Val, src.Val)
	})
}

// CombineBuffer is the thread-private combining buffer the engines put in
// front of the shared update stream when the program implements Combiner.
// It replaces the plain private append buffer of §4.1: updates are staged
// in a small dense record array, and a hash slot table keyed by destination
// vertex lets a new update merge into a staged one addressed to the same
// vertex instead of occupying a second record. The slot table is
// direct-mapped — a collision between different destinations simply
// forgets the older mapping (a missed combining opportunity, never a
// correctness issue) — and is invalidated in O(1) on drain by bumping an
// epoch rather than clearing.
//
// A CombineBuffer belongs to one goroutine; it is not safe for concurrent
// use. Engines create one per scatter task, so the combining it performs is
// a deterministic function of the task's edge order, independent of thread
// scheduling.
type CombineBuffer[M any] struct {
	recs    []Update[M]
	slots   []uint64 // epoch<<32 | (record index + 1)
	mask    uint32
	epoch   uint32
	combine func(a, b M) M

	// Combined counts updates merged away since construction.
	Combined int64
}

// NewCombineBuffer returns a combining buffer staging up to capacity
// records between drains. The slot table is sized at twice the capacity to
// keep the collision rate low.
func NewCombineBuffer[M any](capacity int, combine func(a, b M) M) *CombineBuffer[M] {
	if capacity < 1 {
		capacity = 1
	}
	slots := NextPow2(2 * capacity)
	return &CombineBuffer[M]{
		recs:    make([]Update[M], 0, capacity),
		slots:   make([]uint64, slots),
		mask:    uint32(slots - 1),
		epoch:   1,
		combine: combine,
	}
}

// DegreeAwareBufRecs sizes a scatter-side combining buffer for one
// partition from its average out-degree. baseRecs is the configured
// capacity (PrivateBufBytes / record size); edges and verts describe the
// partition being scattered. A vertex of out-degree d emits up to d updates
// whose destinations repeat across the partition's edge chunk, so a window
// proportional to the average degree catches correspondingly more
// same-destination merges; dense partitions grow the buffer up to 16× the
// base, growth is capped at the partition's own edge count (a bigger
// buffer than the chunk cannot combine anything extra), and the result
// never shrinks below baseRecs. The
// result is a deterministic function of (baseRecs, edges, verts), so
// combining stays a deterministic function of the partition's edge order.
func DegreeAwareBufRecs(baseRecs int, edges, verts int64) int {
	if baseRecs < 1 {
		baseRecs = 1
	}
	if edges <= 0 || verts <= 0 {
		return baseRecs
	}
	avg := (edges + verts - 1) / verts
	if avg < 1 {
		avg = 1
	}
	recs := int64(baseRecs) * avg
	if lim := int64(baseRecs) * 16; recs > lim {
		recs = lim
	}
	if recs > edges {
		recs = edges
	}
	if recs < int64(baseRecs) {
		recs = int64(baseRecs)
	}
	return int(recs)
}

// Add stages one update, merging it into a staged update with the same
// destination when the slot table still remembers one. It returns true when
// the buffer is full and must be drained before the next Add.
func (c *CombineBuffer[M]) Add(dst VertexID, val M) bool {
	h := (uint32(dst) * 0x9E3779B1) >> 7 & c.mask
	w := c.slots[h]
	if uint32(w>>32) == c.epoch {
		if r := &c.recs[uint32(w)-1]; r.Dst == dst {
			r.Val = c.combine(r.Val, val)
			c.Combined++
			return false
		}
	}
	c.recs = append(c.recs, Update[M]{Dst: dst, Val: val})
	c.slots[h] = uint64(c.epoch)<<32 | uint64(len(c.recs))
	return len(c.recs) == cap(c.recs)
}

// Len returns the number of staged records.
func (c *CombineBuffer[M]) Len() int { return len(c.recs) }

// Drain hands the staged records to fn (the slice aliases the buffer and
// is only valid within fn) and resets the buffer. Draining an empty buffer
// skips fn.
func (c *CombineBuffer[M]) Drain(fn func([]Update[M])) {
	if len(c.recs) > 0 {
		fn(c.recs)
	}
	c.recs = c.recs[:0]
	c.epoch++
	if c.epoch == 0 { // epoch wrapped: stale slots could alias, clear them
		for i := range c.slots {
			c.slots[i] = 0
		}
		c.epoch = 1
	}
}
