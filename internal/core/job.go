package core

// job.go is the shared-pass execution layer. X-Stream's cost model says the
// sequential edge stream is the dominant, fixed cost of a computation — so
// that cost should be paid once per *pass*, not once per *job*: N concurrent
// computations over the same dataset can share a single streamed scatter
// phase. A Job type-erases one Program[V, M] behind an interface the engines
// can drive without knowing V or M; a ProgramSet collects the co-scheduled
// jobs of one shared pass. Each job owns its entire update path — vertex
// state, update stream buffers, scatter-side combining, post-shuffle fold,
// gather, frontier — while the engine owns the one thing the jobs share:
// the edge stream. RunMany in internal/memengine and internal/diskengine
// feed every job's scatter from each streamed edge chunk exactly once per
// iteration; Stats.CoJobs and Stats.EdgesShared measure the amortization.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pod"
	"repro/internal/streambuf"
)

// ProgramSet is the ordered collection of jobs one shared pass co-schedules.
type ProgramSet []*Job

// Label names the set in stats tables: the algorithm name for a uniform
// set, a multi(n) marker otherwise.
func (s ProgramSet) Label() string {
	if len(s) == 0 {
		return ""
	}
	name := s[0].Name()
	for _, j := range s[1:] {
		if j.Name() != name {
			return fmt.Sprintf("multi(%d)", len(s))
		}
	}
	if len(s) > 1 {
		return fmt.Sprintf("%s x%d", name, len(s))
	}
	return name
}

// EndAndGather shuffles, folds and gathers every live job's update stream
// — the per-job half of a shared-pass iteration, run by both engines after
// the shared scatter. Jobs are independent, so they proceed in parallel;
// each job's own shuffle and fold parallelize internally as well.
func EndAndGather(live []JobRun) error {
	if len(live) == 1 {
		if err := live[0].EndScatter(); err != nil {
			return err
		}
		live[0].Gather()
		return nil
	}
	errs := make([]error, len(live))
	var wg sync.WaitGroup
	for i, r := range live {
		wg.Add(1)
		go func(i int, r JobRun) {
			defer wg.Done()
			if err := r.EndScatter(); err != nil {
				errs[i] = err
				return
			}
			r.Gather()
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// JobResult is one job's outcome from a shared pass: the final vertex
// states (a []V in input vertex order, type-erased) and the job's own
// execution profile.
type JobResult struct {
	Vertices any
	Stats    Stats
}

// Job is a type-erased handle over one Program[V, M], created with NewJob.
// It captures the program's concrete types in closures so engines can spawn
// typed executors (JobRun) without generic plumbing. A Job describes one
// computation; each NewRun executor is single-use, but distinct runs of the
// same Job must not execute concurrently — programs are stateful.
type Job struct {
	name        string
	vertexBytes int
	updateBytes int
	check       func() error
	newRun      func() JobRun
}

// NewJob wraps prog for shared-pass execution.
func NewJob[V, M any](prog Program[V, M]) *Job {
	return &Job{
		name:        prog.Name(),
		vertexBytes: pod.Size[V](),
		updateBytes: pod.Size[Update[M]](),
		check: func() error {
			if err := pod.Check[V](); err != nil {
				return fmt.Errorf("vertex state: %w", err)
			}
			if err := pod.Check[M](); err != nil {
				return fmt.Errorf("update value: %w", err)
			}
			return nil
		},
		newRun: func() JobRun { return &jobRun[V, M]{prog: prog} },
	}
}

// Name returns the wrapped program's name.
func (j *Job) Name() string { return j.name }

// VertexBytes returns the size of one vertex state record.
func (j *Job) VertexBytes() int { return j.vertexBytes }

// UpdateBytes returns the size of one update record.
func (j *Job) UpdateBytes() int { return j.updateBytes }

// Check validates the program's pod contracts (pointer-free fixed-size
// vertex and update types).
func (j *Job) Check() error { return j.check() }

// NewRun returns a fresh single-use executor for the job.
func (j *Job) NewRun() JobRun { return j.newRun() }

// MemoryEstimate returns the bytes one run of the job holds in memory on a
// graph of nv vertices and ne edge records: the vertex state array, the two
// update stream buffers (sized to the worst-case scatter output), and the
// frontier bitsets. The jobs scheduler's admission control co-schedules
// jobs only while the sum of their estimates fits the memory budget.
func (j *Job) MemoryEstimate(nv, ne int64) int64 {
	return nv*int64(j.vertexBytes) + 2*ne*int64(j.updateBytes) + nv/4
}

// JobSetup is the shared-pass context an engine hands every job's executor:
// the dataset-wide assignment and sizes plus the engine's buffer/shuffle
// policy. All jobs of one pass receive the same setup.
type JobSetup struct {
	// Assignment is the pass's vertex->partition plan (shared: the edge
	// stream was rewritten through its relabeling once, at prepare time).
	Assignment *Assignment
	// NumVertices and NumEdges describe the prepared graph.
	NumVertices int64
	NumEdges    int64
	// Threads bounds the job's internal parallelism (shuffle, fold).
	Threads int
	// Plan is the update shuffle plan matching the assignment's split.
	Plan streambuf.Plan
	// UpdateCap is the record capacity of each update stream buffer.
	UpdateCap int
	// PrivateBufRecs sizes the scatter-side private buffers in records;
	// when 0, PrivateBufBytes/sizeof(update) is used instead.
	PrivateBufRecs  int
	PrivateBufBytes int
	// NoCombine disables update combining even for Combiner programs.
	NoCombine bool
	// Selective enables per-job frontier scheduling for FrontierPrograms.
	Selective bool
	// Exchange, when non-nil, replaces each job's builtin shuffle transport
	// with a frame-level update exchange (see core.Exchange); the factory is
	// called once per job with the partition count.
	Exchange func(k int) Exchange
}

// JobRun drives one job through the iterations of a shared pass. The engine
// owns the edge stream and the iteration loop; everything update-side is
// behind this interface. Methods are called from the engine's coordinating
// goroutine except NewScatter sinks, which run one per partition task.
type JobRun interface {
	// Name identifies the job in errors and stats.
	Name() string
	// Setup allocates and initializes vertex state under the shared
	// assignment (calling VertexMapper first, like the engines do).
	Setup(s JobSetup) error
	// Done reports the job converged in an earlier iteration; a done job
	// drops out of subsequent passes.
	Done() bool
	// StartIteration runs the program's per-iteration hook.
	StartIteration(iter int)
	// Direction returns the edge list orientation the job streams this
	// iteration (DirectedPrograms may ask for the transpose).
	Direction(iter int) Direction
	// BeginScatter resets the update stream and recomputes the frontier
	// schedule; call once per iteration before any NewScatter.
	BeginScatter()
	// Dense reports the job has no frontier and streams every partition.
	Dense() bool
	// NeedsPartition reports whether the job must see partition p's edges
	// this iteration (always true without a frontier).
	NeedsPartition(p int) bool
	// PartiallyActive reports whether partition p has active sources but
	// not all of them — the tile-granular scheduling case.
	PartiallyActive(p int) bool
	// NeedsTile reports whether an edge tile with the given source span
	// may matter to the job this iteration.
	NeedsTile(span SrcSpan) bool
	// NewScatter returns a scatter sink for partition p whose edge chunk
	// holds chunkEdges records. Sinks are single-goroutine; Flush must be
	// called when the partition's edges are exhausted.
	NewScatter(p int, chunkEdges int64) JobScatter
	// SkipPartition accounts a whole partition chunk the job's frontier
	// proved useless (the engine never handed it to a sink). Safe for
	// concurrent use from partition tasks.
	SkipPartition(chunkEdges int64)
	// SkipTiles accounts tiles the job's frontier proved useless. Safe
	// for concurrent use from partition tasks.
	SkipTiles(edges, tiles int64)
	// EndScatter shuffles and folds the iteration's update stream.
	EndScatter() error
	// Gather streams the shuffled updates into vertex state and advances
	// the frontier.
	Gather()
	// EndIteration runs phase hooks and termination for the iteration.
	EndIteration(iter int)
	// Finalize returns the final vertex states ([]V, type-erased) in
	// original input order, plus the job's accumulated stats.
	Finalize() (any, Stats, error)
}

// Snapshotter is the optional JobRun extension an engine's checkpoint path
// uses to capture and restore a run's cross-iteration state. Everything a
// resume needs between iterations is three things: the vertex bytes, the
// frontier the next iteration scatters, and whether the job already
// converged — update streams are empty at iteration boundaries by
// construction. jobRun implements it; a custom JobRun that does not is
// simply never checkpointed.
type Snapshotter interface {
	// StateBytes returns a live byte view of the run's vertex state in
	// relabeled order. A checkpoint writer serializes it; a resume reads
	// the snapshot's bytes directly back into it.
	StateBytes() []byte
	// FrontierWords returns the backing words of the frontier the next
	// iteration scatters, nil when the run is dense. The slice aliases
	// live state (see Frontier.Words).
	FrontierWords() []uint64
	// RestoreFrontier overwrites the scatter frontier from snapshot words
	// and clears the gather-side frontier.
	RestoreFrontier(words []uint64) error
	// MarkDone forces the converged flag — a restored job that had
	// already terminated must drop out of the remaining iterations
	// without executing any.
	MarkDone()
}

// StateBytes implements Snapshotter.
func (r *jobRun[V, M]) StateBytes() []byte { return pod.AsBytes(r.verts) }

// FrontierWords implements Snapshotter.
func (r *jobRun[V, M]) FrontierWords() []uint64 {
	if r.fp == nil {
		return nil
	}
	return r.cur.Words()
}

// RestoreFrontier implements Snapshotter.
func (r *jobRun[V, M]) RestoreFrontier(words []uint64) error {
	if r.fp == nil {
		return fmt.Errorf("job %s: frontier restore on a dense run", r.prog.Name())
	}
	if err := r.cur.LoadWords(words); err != nil {
		return fmt.Errorf("job %s: %w", r.prog.Name(), err)
	}
	r.nxt.Clear()
	return nil
}

// MarkDone implements Snapshotter.
func (r *jobRun[V, M]) MarkDone() { r.done = true }

// JobScatter is a per-partition scatter sink: the engine streams edge runs
// into it, the sink applies the program's Scatter and stages updates
// through a private (combining) buffer into the job's update stream.
type JobScatter interface {
	// Edges scatters one contiguous run of the partition's edge chunk.
	Edges(run []Edge)
	// Flush drains the private buffer and folds the sink's counts into
	// the job; no Edges call may follow.
	Flush()
}

// jobRun is the generic JobRun implementation: a per-job slice of the
// in-memory engine's update path, deliberately mirroring its structures
// (same combining-buffer sizing, same shuffle plan, same fold, same
// gather order) so a job's results are identical to a solo Run.
type jobRun[V, M any] struct {
	prog  Program[V, M]
	setup JobSetup
	part  Split

	combine func(a, b M) M
	folder  *streambuf.Folder[Update[M]]
	// rep is the assignment's mirror set, nil unless replication is
	// active (a planned set with no Combiner falls back to nil); mbPool
	// recycles mirror accumulators across partition sinks and iterations.
	rep    *Replication
	mbPool sync.Pool

	// Selective scheduling state (nil fp = dense): cur is scattered this
	// iteration, nxt collects gather receivers, active caches cur's
	// per-partition counts for one scatter.
	fp     FrontierProgram[V]
	cur    *Frontier
	nxt    *Frontier
	active []int64

	phased   PhasedProgram[V, M]
	starter  IterationStarter
	directed DirectedProgram
	remapper StateRemapper[V]

	verts []V
	// tp is the job's update transport (builtin shuffle unless the setup
	// carries an Exchange); sealed tracks whether the current iteration's
	// stream has been sealed by EndScatter and not yet gathered.
	tp     UpdateTransport[M]
	sealed bool

	basePriv int
	done     bool
	finished bool
	iterSent int64

	// Per-iteration profile bookkeeping: BeginScatter snapshots the
	// cumulative counters and the wall clock, EndIteration pushes the
	// delta onto stats.Iters.
	iterMark  IterMark
	iterStart time.Time

	overflow    atomic.Bool
	itSent      atomic.Int64
	itStreamed  atomic.Int64
	itCross     atomic.Int64
	itCombined  atomic.Int64
	itSynced    atomic.Int64
	itSkipEdges atomic.Int64
	itSkipParts atomic.Int64
	itSkipTiles atomic.Int64

	stats Stats
}

func (r *jobRun[V, M]) Name() string { return r.prog.Name() }

func (r *jobRun[V, M]) Setup(s JobSetup) error {
	if err := pod.Check[V](); err != nil {
		return fmt.Errorf("job %s: vertex state: %w", r.prog.Name(), err)
	}
	if err := pod.Check[M](); err != nil {
		return fmt.Errorf("job %s: update value: %w", r.prog.Name(), err)
	}
	r.setup = s
	r.part = s.Assignment.Split
	if vm, ok := any(r.prog).(VertexMapper); ok {
		vm.MapVertices(s.NumVertices, s.Assignment.NewID, s.Assignment.OldID)
	}
	r.phased, _ = any(r.prog).(PhasedProgram[V, M])
	r.starter, _ = any(r.prog).(IterationStarter)
	r.directed, _ = any(r.prog).(DirectedProgram)
	r.remapper, _ = any(r.prog).(StateRemapper[V])
	if cb, ok := any(r.prog).(Combiner[M]); ok && !s.NoCombine {
		r.combine = cb.Combine
		r.folder = NewUpdateFolder(r.part, s.Threads, cb.Combine)
	}
	// Vertex replication needs the Combiner to merge mirror accumulators;
	// without one the assignment's mirror set is ignored (the fallback).
	if r.combine != nil && s.Assignment.Mirrors.Len() > 0 {
		r.rep = s.Assignment.Mirrors
		r.stats.MirroredVertices = r.rep.Len()
		r.mbPool.New = func() any { return NewMirrorBuffer(r.rep, r.combine) }
	}
	// Same exclusion as the engines: selective scheduling needs the
	// FrontierProgram contract and refuses phased programs, whose
	// EndIteration can activate vertices the update stream never saw.
	if s.Selective {
		if fp, ok := any(r.prog).(FrontierProgram[V]); ok && r.phased == nil {
			r.fp = fp
			r.cur = NewFrontier(s.NumVertices)
			r.nxt = NewFrontier(s.NumVertices)
		}
	}
	r.basePriv = s.PrivateBufRecs
	if r.basePriv <= 0 {
		r.basePriv = s.PrivateBufBytes / pod.Size[Update[M]]()
	}
	if r.basePriv < 1 {
		r.basePriv = 1
	}
	r.verts = make([]V, s.NumVertices)
	for i := range r.verts {
		id := VertexID(i)
		r.prog.Init(id, &r.verts[i])
		if r.fp != nil && r.fp.InitiallyActive(id, &r.verts[i]) {
			r.cur.Mark(id)
		}
	}
	updCap := s.UpdateCap
	if updCap < 1 {
		updCap = 1
	}
	key := func(u Update[M]) uint32 { return r.part.Of(u.Dst) }
	if s.Exchange != nil {
		r.tp = NewExchangeTransport(s.Exchange(r.part.K), r.part.K, updCap, s.Plan, s.Threads, key, r.folder)
	} else {
		r.tp = NewShuffleTransport(updCap, s.Plan, s.Threads, key, r.folder)
	}
	r.stats.Algorithm = r.prog.Name()
	return nil
}

func (r *jobRun[V, M]) Done() bool { return r.done }

func (r *jobRun[V, M]) StartIteration(iter int) {
	if r.starter != nil {
		r.starter.StartIteration(iter)
	}
}

func (r *jobRun[V, M]) Direction(iter int) Direction {
	if r.directed != nil {
		return r.directed.Direction(iter)
	}
	return Forward
}

func (r *jobRun[V, M]) BeginScatter() {
	r.tp.EndIteration()
	r.sealed = false
	if r.fp != nil {
		r.active = r.cur.CountByPartition(r.part)
	}
	r.iterMark = r.stats.MarkIter()
	r.iterStart = time.Now()
}

func (r *jobRun[V, M]) Dense() bool { return r.fp == nil }

func (r *jobRun[V, M]) NeedsPartition(p int) bool {
	return r.fp == nil || r.active[p] > 0
}

func (r *jobRun[V, M]) PartiallyActive(p int) bool {
	if r.fp == nil {
		return false
	}
	lo, hi := r.part.Range(p, r.setup.NumVertices)
	return r.active[p] > 0 && r.active[p] < hi-lo
}

func (r *jobRun[V, M]) NeedsTile(span SrcSpan) bool {
	return r.fp == nil || span.Intersects(r.cur)
}

func (r *jobRun[V, M]) SkipPartition(chunkEdges int64) {
	if chunkEdges > 0 {
		r.itSkipEdges.Add(chunkEdges)
		r.itSkipParts.Add(1)
	}
}

func (r *jobRun[V, M]) SkipTiles(edges, tiles int64) {
	r.itSkipEdges.Add(edges)
	r.itSkipTiles.Add(tiles)
}

func (r *jobRun[V, M]) NewScatter(p int, chunkEdges int64) JobScatter {
	s := &jobScatter[V, M]{r: r, p: uint32(p)}
	if r.combine != nil {
		lo, hi := r.part.Range(p, r.setup.NumVertices)
		s.cb = NewCombineBuffer[M](DegreeAwareBufRecs(r.basePriv, chunkEdges, hi-lo), r.combine)
		if r.rep != nil {
			s.mb = r.mbPool.Get().(*MirrorBuffer[M])
		}
	} else {
		s.priv = make([]Update[M], 0, r.basePriv)
	}
	return s
}

// jobScatter stages one partition's updates; it belongs to one goroutine.
type jobScatter[V, M any] struct {
	r    *jobRun[V, M]
	p    uint32
	cb   *CombineBuffer[M]
	mb   *MirrorBuffer[M]
	priv []Update[M]

	sent, streamed, cross, synced int64
}

func (s *jobScatter[V, M]) flush(recs []Update[M]) {
	if !s.r.tp.Send(int(s.p), recs) {
		s.r.overflow.Store(true)
	}
}

func (s *jobScatter[V, M]) Edges(run []Edge) {
	r := s.r
	if r.overflow.Load() {
		return
	}
	if s.cb != nil {
		for _, ed := range run {
			s.streamed++
			if m, ok := r.prog.Scatter(ed, &r.verts[ed.Src]); ok {
				s.sent++
				if s.mb != nil && s.mb.Absorb(ed.Dst, m) {
					continue // merged into the partition-local mirror
				}
				if r.part.Of(ed.Dst) != s.p {
					s.cross++
				}
				if s.cb.Add(ed.Dst, m) {
					s.cb.Drain(s.flush)
				}
			}
		}
		return
	}
	for _, ed := range run {
		s.streamed++
		if m, ok := r.prog.Scatter(ed, &r.verts[ed.Src]); ok {
			s.sent++
			if r.part.Of(ed.Dst) != s.p {
				s.cross++
			}
			s.priv = append(s.priv, Update[M]{Dst: ed.Dst, Val: m})
			if len(s.priv) == cap(s.priv) {
				s.flush(s.priv)
				s.priv = s.priv[:0]
			}
		}
	}
}

func (s *jobScatter[V, M]) Flush() {
	if s.cb != nil {
		if s.mb != nil {
			s.r.itCombined.Add(s.mb.Merged)
			s.synced = s.mb.Flush(func(u Update[M]) {
				if s.r.part.Of(u.Dst) != s.p {
					s.cross++
				}
				if s.cb.Add(u.Dst, u.Val) {
					s.cb.Drain(s.flush)
				}
			})
			s.r.mbPool.Put(s.mb)
			s.mb = nil
		}
		s.cb.Drain(s.flush)
		s.r.itCombined.Add(s.cb.Combined)
	} else if len(s.priv) > 0 {
		s.flush(s.priv)
	}
	s.r.itSent.Add(s.sent)
	s.r.itStreamed.Add(s.streamed)
	s.r.itCross.Add(s.cross)
	s.r.itSynced.Add(s.synced)
}

func (r *jobRun[V, M]) EndScatter() error {
	if r.overflow.Load() {
		return fmt.Errorf("job %s: update buffer overflow (capacity %d)", r.prog.Name(), r.tp.Cap())
	}
	sent := r.itSent.Swap(0)
	streamed := r.itStreamed.Swap(0)
	cross := r.itCross.Swap(0)
	scatterCombined := r.itCombined.Swap(0)
	r.stats.MirrorSyncUpdates += r.itSynced.Swap(0)
	r.stats.EdgesSkipped += r.itSkipEdges.Swap(0)
	r.stats.PartitionsSkipped += r.itSkipParts.Swap(0)
	r.stats.TilesSkipped += r.itSkipTiles.Swap(0)
	appended := sent - scatterCombined

	t0 := time.Now()
	flow, err := r.tp.Seal()
	if err != nil {
		return fmt.Errorf("job %s: %w", r.prog.Name(), err)
	}
	foldCombined := flow.Combined
	r.sealed = true
	r.stats.ShuffleTime += time.Since(t0)

	gathered := appended - foldCombined
	usize := int64(pod.Size[Update[M]]())
	esize := int64(pod.Size[Edge]())
	stages := int64(r.setup.Plan.NumStages())
	r.stats.EdgesStreamed += streamed
	r.stats.UpdatesSent += sent
	r.stats.WastedEdges += streamed - sent
	r.stats.CrossPartitionUpdates += cross
	r.stats.UpdatesCombined += scatterCombined + foldCombined
	r.stats.UpdateBytes += gathered * usize
	r.stats.BytesStreamed += streamed*esize + (appended*(stages+1)+gathered)*usize
	r.stats.RandomRefs += streamed + gathered
	r.stats.SequentialRefs += streamed + appended*(stages+1) + gathered
	r.iterSent = sent
	return nil
}

func (r *jobRun[V, M]) Gather() {
	if !r.sealed {
		return
	}
	t0 := time.Now()
	for p := 0; p < r.part.K; p++ {
		r.tp.Drain(p, func(run []Update[M]) error {
			if r.fp != nil {
				for _, u := range run {
					r.prog.Gather(u.Dst, &r.verts[u.Dst], u.Val)
					r.nxt.Mark(u.Dst)
				}
				return nil
			}
			for _, u := range run {
				r.prog.Gather(u.Dst, &r.verts[u.Dst], u.Val)
			}
			return nil
		})
	}
	r.tp.EndIteration()
	r.sealed = false
	if r.fp != nil {
		r.cur, r.nxt = r.nxt, r.cur
		r.nxt.Clear()
	}
	r.stats.GatherTime += time.Since(t0)
}

func (r *jobRun[V, M]) EndIteration(iter int) {
	r.stats.Iterations++
	r.stats.PushIter(iter, r.iterMark, time.Since(r.iterStart))
	if r.phased != nil {
		if r.phased.EndIteration(iter, r.iterSent, SliceView[V](r.verts)) {
			r.done = true
		}
		return
	}
	if r.iterSent == 0 {
		r.done = true
	}
}

func (r *jobRun[V, M]) Finalize() (any, Stats, error) {
	if r.finished {
		return nil, r.stats, fmt.Errorf("job %s: finalized twice", r.prog.Name())
	}
	r.finished = true
	if r.tp != nil {
		tc := r.tp.Counters()
		r.stats.TransportBatches = tc.Batches
		r.stats.TransportBytes = tc.Bytes
		r.stats.TransportCross = tc.Cross
		r.tp.Close()
	}
	asg := r.setup.Assignment
	verts := r.verts
	if !asg.Identity() {
		if r.remapper != nil {
			for i := range verts {
				r.remapper.RemapState(&verts[i], asg.OldID)
			}
		}
		verts = RestoreOrder(verts, asg.Relabel)
	}
	r.verts = nil
	return verts, r.stats, nil
}
