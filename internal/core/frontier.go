package core

// frontier.go is the frontier subsystem behind selective scheduling.
//
// X-Stream's central trade-off (§3.2, §5.3) is streaming *every* edge each
// iteration in exchange for sequential bandwidth. Frontier algorithms —
// BFS, SSSP, the converging tail of WCC — pay for edges whose sources are
// provably inactive (Stats.WastedEdges measures exactly this). A Frontier
// is a bitset over execution vertex IDs that the engines maintain across
// iterations: a vertex is active in iteration i+1 iff it received an update
// in iteration i (Init seeds iteration 0 through FrontierProgram). Engines
// with Config.Selective enabled consult per-partition active counts to skip
// whole partition edge scans — on the out-of-core engine, whole edge-file
// reads — and per-tile source summaries to skip at sub-chunk granularity
// inside partially active partitions. Skips are pure elision: by the
// FrontierProgram contract every skipped edge would have produced no
// update, so results are bit-identical with selective on or off (the
// equivalence suite proves it across engines and partitioners).

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// FrontierProgram is the opt-in contract for selective scheduling. A
// program implementing it asserts: Scatter(e, src) returns false — sends no
// update — whenever the source vertex received no update in the previous
// iteration (and, in iteration 0, whenever InitiallyActive reported false).
// Under that assertion the engines may skip streaming any edge whose source
// is outside the frontier without changing any result.
//
// Frontier algorithms qualify because their Scatter already gates on a
// per-vertex "updated last iteration" mark: BFS, SSSP and WCC opt in.
// Dense algorithms (PageRank, SpMV, HyperANF, Conductance) scatter from
// every vertex each iteration and must not implement it; they simply run
// all-active. Programs whose phase hooks (PhasedProgram.EndIteration,
// IterationStarter) can re-activate a vertex *without* it receiving an
// update must not implement FrontierProgram either — the engines
// additionally refuse selective mode for PhasedPrograms, whose EndIteration
// may mutate arbitrary vertex state through the VertexView.
type FrontierProgram[V any] interface {
	// InitiallyActive reports whether the vertex may produce updates in
	// iteration 0, given the state Init just assigned it (a BFS/SSSP root;
	// every vertex for WCC's all-start formulation).
	InitiallyActive(id VertexID, v *V) bool
}

// Frontier is a bitset of active vertices in execution (relabeled) ID
// space. Mark is safe for concurrent use — gather phases mark destinations
// from many goroutines — while the read-side methods assume marking has
// quiesced (the engines separate phases with joins, which establishes the
// necessary happens-before).
type Frontier struct {
	n    int64
	bits []uint64
}

// NewFrontier returns an empty frontier over n vertices.
func NewFrontier(n int64) *Frontier {
	return &Frontier{n: n, bits: make([]uint64, (n+63)/64)}
}

// Len returns the number of vertices the frontier ranges over.
func (f *Frontier) Len() int64 { return f.n }

// Mark sets vertex v active. Safe for concurrent use.
func (f *Frontier) Mark(v VertexID) {
	atomic.OrUint64(&f.bits[v>>6], 1<<(v&63))
}

// Active reports whether vertex v is active.
func (f *Frontier) Active(v VertexID) bool {
	return f.bits[v>>6]>>(v&63)&1 != 0
}

// Clear deactivates every vertex.
func (f *Frontier) Clear() {
	clear(f.bits)
}

// Words exposes the frontier's backing bit words (word i holds vertices
// [64i, 64i+64), LSB first) for checkpoint serialization. The slice
// aliases live state: callers must not retain it across Mark/Clear.
func (f *Frontier) Words() []uint64 { return f.bits }

// LoadWords overwrites the frontier from checkpoint words. The word count
// must match the frontier's own.
func (f *Frontier) LoadWords(w []uint64) error {
	if len(w) != len(f.bits) {
		return fmt.Errorf("core: frontier restore: %d words, want %d", len(w), len(f.bits))
	}
	copy(f.bits, w)
	return nil
}

// MarkAll activates every vertex — the dense state a program without a
// frontier contract implicitly runs in.
func (f *Frontier) MarkAll() {
	for i := range f.bits {
		f.bits[i] = ^uint64(0)
	}
	if rem := uint(f.n) & 63; rem != 0 && len(f.bits) > 0 {
		f.bits[len(f.bits)-1] &= 1<<rem - 1
	}
}

// Count returns the number of active vertices.
func (f *Frontier) Count() int64 { return f.CountRange(0, f.n) }

// CountRange returns the number of active vertices with ID in [lo, hi).
func (f *Frontier) CountRange(lo, hi int64) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > f.n {
		hi = f.n
	}
	if lo >= hi {
		return 0
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	var n int64
	for w := wLo; w <= wHi; w++ {
		word := f.bits[w]
		if w == wLo {
			word &= ^uint64(0) << (uint(lo) & 63)
		}
		if w == wHi {
			if rem := uint(hi) & 63; rem != 0 {
				word &= 1<<rem - 1
			}
		}
		n += int64(bits.OnesCount64(word))
	}
	return n
}

// AnyInRange reports whether any vertex in [lo, hi) is active — the tile
// test of selective streaming: a tile whose [min, max] source summary
// contains no active vertex is skipped entirely.
func (f *Frontier) AnyInRange(lo, hi int64) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > f.n {
		hi = f.n
	}
	if lo >= hi {
		return false
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	for w := wLo; w <= wHi; w++ {
		word := f.bits[w]
		if w == wLo {
			word &= ^uint64(0) << (uint(lo) & 63)
		}
		if w == wHi {
			if rem := uint(hi) & 63; rem != 0 {
				word &= 1<<rem - 1
			}
		}
		if word != 0 {
			return true
		}
	}
	return false
}

// SrcSpan is the per-tile source summary of selective streaming: the
// min/max source vertex ID of one fixed-size run of edges. Both engines
// index their edge tiles with it — the in-memory engine over
// streambuf.BucketTiles runs, the out-of-core engine over the runs its
// pre-processing shuffle writes to the edge files — so the skip test lives
// in one place. Min/max is deliberately small (8 bytes per tile) and
// conservative: a scattered frontier can intersect a wide span without
// any active source actually being in the tile.
type SrcSpan struct {
	Lo, Hi VertexID
}

// NewSrcSpan starts a span at a single source.
func NewSrcSpan(v VertexID) SrcSpan { return SrcSpan{Lo: v, Hi: v} }

// Add widens the span to include source v.
func (s *SrcSpan) Add(v VertexID) {
	if v < s.Lo {
		s.Lo = v
	}
	if v > s.Hi {
		s.Hi = v
	}
}

// Intersects reports whether any vertex in the span is active — false
// means the tile the span summarizes can be skipped outright.
func (s SrcSpan) Intersects(f *Frontier) bool {
	return f.AnyInRange(int64(s.Lo), int64(s.Hi)+1)
}

// CountByPartition returns the active-vertex count of every partition of
// the split — the per-iteration schedule selective engines consult: zero
// means the partition's whole edge chunk (or edge file) is skipped, a
// partial count routes the partition through tile-granular skipping.
func (f *Frontier) CountByPartition(s Split) []int64 {
	out := make([]int64, s.K)
	for p := range out {
		lo, hi := s.Range(p, f.n)
		out[p] = f.CountRange(lo, hi)
	}
	return out
}
