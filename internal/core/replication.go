package core

// replication.go is the vertex-replication (mirror) subsystem of the
// partitioner layer.
//
// On power-law graphs the shuffle traffic X-Stream pays every iteration is
// dominated by a handful of hub vertices: a vertex of in-degree d receives
// up to d updates per iteration, and almost all of them cross streaming
// partitions. Streaming edge partitioners built for such graphs — HDRF
// ("HDRF: Stream-Based Partitioning for Power-Law Graphs", Petroni et al.)
// and the Hybrid Edge Partitioner (Mayer & Jacobsen) — win precisely by
// treating high-degree vertices specially: they *replicate* them, placing a
// mirror next to every partition that touches their edges, so per-edge
// communication becomes per-mirror communication.
//
// The adaptation to X-Stream's model: edges stay bucketed by source
// partition (scatter always reads the source vertex locally), so the only
// cross-partition traffic is the update stream. For a selected hub vertex
// each scattering partition keeps a partition-local *mirror accumulator*;
// every update addressed to the hub is merged into it with the program's
// Combiner instead of entering the update stream, and when the partition's
// edges are exhausted the accumulator is flushed as a single master-mirror
// sync update. A hub of in-degree d thus costs at most one update per
// scattering partition per iteration instead of d — the flood of
// cross-partition updates collapses to K-1 syncs. Because the merge is the
// program's own Combiner, results are unchanged (the Combiner contract);
// programs without a Combiner simply fall back to no replication.
//
// Selection is degree-based, in the HDRF/HEP spirit: one streaming pass
// counts in-degrees and the vertices above a threshold (a multiple of the
// mean, with an absolute floor and a top-k cap) become hubs. Any
// Partitioner can be wrapped with NewReplicatingPartitioner; the resulting
// Assignment carries the hub set and both engines honor it.

import (
	"fmt"
	"sort"
)

// Replication is the mirror set of a partitioning assignment: the hub
// vertices whose cross-partition updates the engines absorb into
// partition-local mirror accumulators and flush as per-partition sync
// updates. Build one with NewReplication; the zero value means "no
// vertex is mirrored".
type Replication struct {
	// Hubs lists the mirrored vertices as execution (relabeled) IDs in
	// ascending order. Mirror accumulators are indexed by position in
	// this slice.
	Hubs []VertexID
	// slot maps every execution vertex ID to its hub slot, or -1.
	slot []int32
}

// NewReplication builds the mirror set for an n-vertex graph from a list
// of hub execution IDs (order and duplicates are normalized away).
func NewReplication(n int64, hubs []VertexID) *Replication {
	sorted := make([]VertexID, 0, len(hubs))
	sorted = append(sorted, hubs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	uniq := sorted[:0]
	for i, h := range sorted {
		if i == 0 || h != sorted[i-1] {
			uniq = append(uniq, h)
		}
	}
	r := &Replication{Hubs: uniq, slot: make([]int32, n)}
	for i := range r.slot {
		r.slot[i] = -1
	}
	for i, h := range r.Hubs {
		if int64(h) < n {
			r.slot[h] = int32(i)
		}
	}
	return r
}

// Len returns the number of mirrored vertices.
func (r *Replication) Len() int {
	if r == nil {
		return 0
	}
	return len(r.Hubs)
}

// SlotOf returns the hub slot of execution vertex v, or -1 when v is not
// mirrored. This is the per-update test on the scatter hot path.
func (r *Replication) SlotOf(v VertexID) int32 {
	if int(v) >= len(r.slot) {
		return -1
	}
	return r.slot[v]
}

// Validate checks the replication invariants for an n-vertex graph: hubs
// are strictly ascending, in range, and the slot table matches.
func (r *Replication) Validate(n int64) error {
	if int64(len(r.slot)) != n {
		return fmt.Errorf("core: replication slot table has %d entries for %d vertices", len(r.slot), n)
	}
	for i, h := range r.Hubs {
		if int64(h) >= n {
			return fmt.Errorf("core: mirrored vertex %d out of range [0,%d)", h, n)
		}
		if i > 0 && h <= r.Hubs[i-1] {
			return fmt.Errorf("core: mirror hubs not strictly ascending at index %d", i)
		}
		if r.slot[h] != int32(i) {
			return fmt.Errorf("core: slot[%d] = %d, want hub slot %d", h, r.slot[h], i)
		}
	}
	hubs := 0
	for _, s := range r.slot {
		if s >= 0 {
			hubs++
		}
	}
	if hubs != len(r.Hubs) {
		return fmt.Errorf("core: slot table marks %d hubs, Hubs lists %d", hubs, len(r.Hubs))
	}
	return nil
}

// MirrorBuffer is the partition-local mirror accumulator one scatter task
// keeps over the assignment's hub set. Updates addressed to a hub are
// merged in with the program's Combiner (Absorb); when the task's edges
// are exhausted, Flush emits one sync update per touched hub — the
// master-mirror sync that replaces the hub's flood of cross-partition
// updates. A MirrorBuffer belongs to one goroutine.
type MirrorBuffer[M any] struct {
	rep     *Replication
	combine func(a, b M) M
	vals    []M
	touched []bool
	order   []int32 // touched slots in first-touch order

	// Merged counts updates merged into an already-touched mirror since
	// the last Flush — they are pre-aggregation work exactly like
	// CombineBuffer merges, and engines count them into
	// Stats.UpdatesCombined.
	Merged int64
}

// NewMirrorBuffer returns a mirror accumulator over rep using the
// program's Combiner. A flushed buffer is clean and may be reused for
// another scatter task (the out-of-core engine pools them across
// scatter ranges).
func NewMirrorBuffer[M any](rep *Replication, combine func(a, b M) M) *MirrorBuffer[M] {
	return &MirrorBuffer[M]{
		rep:     rep,
		combine: combine,
		vals:    make([]M, rep.Len()),
		touched: make([]bool, rep.Len()),
	}
}

// Absorb merges an update into the destination's mirror accumulator and
// reports whether it did; false means dst is not mirrored and the update
// must take the normal path.
func (b *MirrorBuffer[M]) Absorb(dst VertexID, m M) bool {
	s := b.rep.SlotOf(dst)
	if s < 0 {
		return false
	}
	if b.touched[s] {
		b.vals[s] = b.combine(b.vals[s], m)
		b.Merged++
		return true
	}
	b.vals[s] = m
	b.touched[s] = true
	b.order = append(b.order, s)
	return true
}

// Flush emits one sync update per touched hub, in ascending hub order,
// and resets the buffer (Merged is reset too — read it before flushing).
// Cost is proportional to the hubs actually touched, not the mirror set
// size, so sparse tasks over large hub sets flush cheaply. The number of
// emissions is what engines count into Stats.MirrorSyncUpdates.
func (b *MirrorBuffer[M]) Flush(emit func(Update[M])) (synced int64) {
	sort.Slice(b.order, func(i, j int) bool { return b.order[i] < b.order[j] })
	for _, s := range b.order {
		emit(Update[M]{Dst: b.rep.Hubs[s], Val: b.vals[s]})
		b.touched[s] = false
		synced++
	}
	b.order = b.order[:0]
	b.Merged = 0
	return synced
}

// ReplicationConfig tunes hub selection for NewReplicatingPartitioner.
// The zero value selects vertices whose in-degree is at least
// 4× the mean (and at least twice the partition count — below that a
// mirror cannot beat sending the updates directly), capped at the
// max(1024, n/64) highest-degree vertices: on power-law graphs the hub
// mass needing mirrors grows with the graph, so a fixed cap would
// silently stop paying off at scale. A mirror costs one accumulator
// slot per concurrent scatter task plus up to K-1 sync updates per
// iteration — a few bytes per hub.
type ReplicationConfig struct {
	// MaxMirrors caps the number of mirrored vertices (the highest
	// in-degree candidates win). 0 means max(1024, numVertices/64).
	MaxMirrors int
	// DegreeFactor sets the selection threshold as a multiple of the mean
	// in-degree. 0 means 4.
	DegreeFactor float64
	// MinInDegree is an absolute floor on a hub's in-degree. 0 means 2·K:
	// a hub receiving fewer updates than it would cost sync flushes is
	// not worth a mirror.
	MinInDegree int64
}

func (c ReplicationConfig) withDefaults(k int, n int64) ReplicationConfig {
	if c.MaxMirrors <= 0 {
		c.MaxMirrors = 1024
		if byShare := int(n / 64); byShare > c.MaxMirrors {
			c.MaxMirrors = byShare
		}
	}
	if c.DegreeFactor <= 0 {
		c.DegreeFactor = 4
	}
	if c.MinInDegree <= 0 {
		c.MinInDegree = 2 * int64(k)
	}
	return c
}

// ReplicatingPartitioner wraps any Partitioner with an HDRF/HEP-style hub
// selection pass: after the inner policy plans its assignment, one extra
// streaming pass counts in-degrees in execution-ID space and the vertices
// above the configured threshold become the assignment's mirror set.
// Engines then absorb updates addressed to those hubs into partition-local
// mirror accumulators (see Replication) — for programs with a Combiner;
// others run exactly as the inner policy alone would.
type ReplicatingPartitioner struct {
	inner Partitioner
	cfg   ReplicationConfig
}

// NewReplicatingPartitioner wraps inner with hub selection under cfg.
func NewReplicatingPartitioner(inner Partitioner, cfg ReplicationConfig) *ReplicatingPartitioner {
	return &ReplicatingPartitioner{inner: inner, cfg: cfg}
}

// Name implements Partitioner: the inner policy's name with a "+rep"
// suffix.
func (p *ReplicatingPartitioner) Name() string { return p.inner.Name() + "+rep" }

// Assign implements Partitioner: plan the inner assignment, then select
// hubs by in-degree and attach the replication set. A single partition
// has no cross traffic to save, so k == 1 skips selection.
func (p *ReplicatingPartitioner) Assign(src EdgeSource, k int) (*Assignment, error) {
	asg, err := p.inner.Assign(src, k)
	if err != nil {
		return nil, err
	}
	n := src.NumVertices()
	if n == 0 || k <= 1 {
		return asg, nil
	}
	cfg := p.cfg.withDefaults(k, n)

	// In-degree census in execution-ID space: the update stream is
	// addressed to relabeled IDs, so hubs must be selected there.
	indeg := make([]int64, n)
	var total int64
	err = src.Edges(func(batch []Edge) error {
		for _, e := range batch {
			d := asg.NewID(e.Dst)
			if int64(d) >= n {
				return fmt.Errorf("core: edge destination %d relabels to %d, outside [0,%d)", e.Dst, d, n)
			}
			indeg[d]++
		}
		total += int64(len(batch))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return asg, nil
	}

	threshold := int64(cfg.DegreeFactor * float64(total) / float64(n))
	if threshold < cfg.MinInDegree {
		threshold = cfg.MinInDegree
	}
	var cands []VertexID
	for v, d := range indeg {
		if d >= threshold {
			cands = append(cands, VertexID(v))
		}
	}
	if len(cands) > cfg.MaxMirrors {
		// Highest in-degree first; ties by lower ID for determinism.
		sort.Slice(cands, func(i, j int) bool {
			di, dj := indeg[cands[i]], indeg[cands[j]]
			if di != dj {
				return di > dj
			}
			return cands[i] < cands[j]
		})
		cands = cands[:cfg.MaxMirrors]
	}
	// Attach the set even when empty: "selection ran, nothing qualified"
	// must persist differently from "no selection" (a hub-less version-2
	// permutation file vs a version-1 one), or caches re-cluster forever.
	// Engines treat an empty set as no replication.
	asg.Mirrors = NewReplication(n, cands)
	return asg, nil
}
