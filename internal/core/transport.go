package core

// transport.go is the update-exchange seam between the scatter and gather
// phases. The update stream is the only cross-partition traffic in the
// engine (paper §3: edges and vertices are partition-local; only updates
// move), which makes it the natural cut for distributing execution across
// workers. UpdateTransport abstracts that cut: the engines send
// per-partition update batches during scatter and drain per-partition
// streams at gather, without knowing whether the bytes moved through an
// in-memory shuffle, partition files on disk, or a network exchange.
//
// Two implementations live here: the builtin streambuf shuffle
// (NewShuffleTransport, the in-memory engine's path) and a generic adapter
// over a frame-level Exchange (NewExchangeTransport, used by the loopback
// worker transport in internal/transport and shaped for a future network
// exchange). The out-of-core engine's update-file writeback is the third,
// in internal/diskengine.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"repro/internal/pod"
	"repro/internal/streambuf"
)

// IterFlow summarizes one iteration's traffic through a transport, returned
// by Seal. The invariant every implementation must satisfy is
// Appended - Combined == Delivered: records accepted minus records merged
// away by the transport-side combiner fold equals records available to
// gather.
type IterFlow struct {
	// Appended is the number of update records the transport accepted via
	// Send this iteration.
	Appended int64
	// Combined is the number of records the transport's combiner fold
	// merged away after routing (zero when the transport has no folder).
	Combined int64
	// Delivered is the number of records the gather phase will see across
	// all partitions: Appended - Combined.
	Delivered int64
}

// TransportCounters is the transport's own cumulative traffic accounting,
// read once per run into the Stats transport fields. All counts are
// deterministic for a fixed workload: batches are counted per non-empty
// Send, bytes as records × record size, and cross as records whose
// destination partition differs from the sending partition.
type TransportCounters struct {
	// Batches is the number of non-empty Send calls accepted.
	Batches int64
	// Bytes is the payload volume sent: records × sizeof(update record).
	Bytes int64
	// Cross is the number of sent records whose destination partition
	// differed from the (non-negative) sending partition. Counted after
	// send-side combining — the records that actually moved — unlike
	// Stats.CrossPartitionUpdates, which counts before combining.
	Cross int64
	// Retries is the number of frame sends re-issued after a transient
	// exchange error (always zero for the local transports).
	Retries int64
}

// UpdateTransport is the update-exchange interface between scatter and
// gather. One iteration's lifecycle is:
//
//	Send* (concurrent) → [Room/Flush]* → Seal → Pending*/Drain* → EndIteration
//
// Send is safe for concurrent use; Room, Flush, Seal and EndIteration are
// coordinator-only. Drain is safe for concurrent use across distinct
// partitions once Seal has returned. Close releases resources and is
// idempotent.
type UpdateTransport[M any] interface {
	// Send routes one batch of updates produced while scattering partition
	// src (src < 0 when the producer is unknown; cross accounting is then
	// skipped). The batch may mix destination partitions — routing is the
	// transport's job. It returns false only when the transport's fixed
	// capacity is exhausted (the builtin shuffle); transports that cannot
	// reject a batch report failures from Seal instead. The batch is
	// copied or consumed before Send returns; callers may reuse it.
	Send(src int, batch []Update[M]) bool
	// Room returns how many more records the current send window accepts,
	// for coordinators that chunk their scatter to bounded buffers. A
	// transport without a windowed send side returns a large constant.
	Room() int
	// Flush closes the current send window, making Room available again.
	// A no-op for transports without a windowed send side.
	Flush() error
	// Seal ends the send side of the iteration: all updates are routed to
	// their destination partitions, the combiner fold (if any) runs, and
	// the resulting per-partition streams become drainable. No Send may be
	// in flight when Seal is called.
	Seal() (IterFlow, error)
	// Pending returns the number of records sealed for partition p, so a
	// selective gather can skip empty partitions without draining them.
	Pending(p int) int64
	// Drain streams partition p's sealed records through fn in delivery
	// order. A non-nil error from fn aborts the drain and is returned.
	// Chunks are only valid during the callback.
	Drain(p int, fn func([]Update[M]) error) error
	// EndIteration releases the iteration's sealed state, readying the
	// transport for the next iteration's sends.
	EndIteration() error
	// Close releases all transport resources. Idempotent.
	Close() error
	// Cap returns the per-iteration record capacity of the send side, for
	// overflow diagnostics (0 when unbounded).
	Cap() int
	// Counters returns the cumulative traffic accounting.
	Counters() TransportCounters
}

// CounterSet is the concurrency-safe accounting every UpdateTransport
// implementation embeds (including the out-of-core file transport in
// internal/diskengine); its methods back Counters.
type CounterSet struct {
	batches atomic.Int64
	bytes   atomic.Int64
	cross   atomic.Int64
	retries atomic.Int64
}

// Count records one accepted non-empty batch of n records from partition
// src (cross of which were addressed outside src; not counted when src is
// negative), each recSize bytes.
func (c *CounterSet) Count(src int, n, cross int64, recSize int) {
	c.batches.Add(1)
	c.bytes.Add(n * int64(recSize))
	if src >= 0 {
		c.cross.Add(cross)
	}
}

// Snapshot returns the counters as a TransportCounters value.
func (c *CounterSet) Snapshot() TransportCounters {
	return TransportCounters{
		Batches: c.batches.Load(),
		Bytes:   c.bytes.Load(),
		Cross:   c.cross.Load(),
		Retries: c.retries.Load(),
	}
}

// CrossOf counts the records of batch whose destination partition (per
// key) differs from src; zero when src is negative (unknown producer).
func CrossOf[M any](batch []Update[M], src int, key func(Update[M]) uint32) int64 {
	if src < 0 {
		return 0
	}
	var cross int64
	for i := range batch {
		if key(batch[i]) != uint32(src) {
			cross++
		}
	}
	return cross
}

// ShuffleTransport is the builtin in-memory transport: sends append into a
// fixed-capacity stream buffer, Seal runs the multi-stage counting shuffle
// (paper §4.2) plus the per-partition combiner fold, and Drain walks the
// resulting buckets. This is the extracted form of the path the in-memory
// engine and the shared-pass job runner always used.
type ShuffleTransport[M any] struct {
	a, b    *streambuf.Buffer[Update[M]]
	res     *streambuf.Buffer[Update[M]]
	plan    streambuf.Plan
	threads int
	key     func(Update[M]) uint32
	folder  *streambuf.Folder[Update[M]]
	recSize int
	CounterSet
}

// NewShuffleTransport builds the builtin shuffle transport: capacity
// records per iteration, routed by key through plan with the given shuffle
// parallelism, folded by folder when non-nil.
func NewShuffleTransport[M any](capacity int, plan streambuf.Plan, threads int, key func(Update[M]) uint32, folder *streambuf.Folder[Update[M]]) *ShuffleTransport[M] {
	return &ShuffleTransport[M]{
		a:       streambuf.New[Update[M]](capacity),
		b:       streambuf.New[Update[M]](capacity),
		plan:    plan,
		threads: threads,
		key:     key,
		folder:  folder,
		recSize: pod.Size[Update[M]](),
	}
}

// Send implements UpdateTransport. It returns false when the batch does
// not fit the remaining buffer capacity.
func (t *ShuffleTransport[M]) Send(src int, batch []Update[M]) bool {
	if len(batch) == 0 {
		return true
	}
	if !t.a.Append(batch) {
		return false
	}
	t.Count(src, int64(len(batch)), CrossOf(batch, src, t.key), t.recSize)
	return true
}

// Room implements UpdateTransport: the remaining buffer capacity.
func (t *ShuffleTransport[M]) Room() int { return t.a.Cap() - t.a.Len() }

// Flush implements UpdateTransport as a no-op: the shuffle has a single
// per-iteration window.
func (t *ShuffleTransport[M]) Flush() error { return nil }

// Seal implements UpdateTransport: one shuffle pass plus one fold.
func (t *ShuffleTransport[M]) Seal() (IterFlow, error) {
	res := streambuf.Shuffle(t.a, t.b, t.plan, t.threads, t.key)
	appended := int64(res.Len())
	var combined int64
	if t.folder != nil {
		combined = t.folder.Fold(res)
	}
	t.res = res
	return IterFlow{Appended: appended, Combined: combined, Delivered: appended - combined}, nil
}

// Pending implements UpdateTransport.
func (t *ShuffleTransport[M]) Pending(p int) int64 {
	if t.res == nil {
		return 0
	}
	return int64(t.res.BucketLen(p))
}

// Drain implements UpdateTransport over the sealed buffer's bucket runs.
func (t *ShuffleTransport[M]) Drain(p int, fn func([]Update[M]) error) error {
	if t.res == nil {
		return nil
	}
	var err error
	t.res.Bucket(p, func(run []Update[M]) {
		if err == nil {
			err = fn(run)
		}
	})
	return err
}

// EndIteration implements UpdateTransport: both ping-pong buffers reset.
func (t *ShuffleTransport[M]) EndIteration() error {
	t.res = nil
	t.a.Reset()
	t.b.Reset()
	return nil
}

// Close implements UpdateTransport. The buffers are garbage-collected; no
// other resources are held.
func (t *ShuffleTransport[M]) Close() error {
	t.res = nil
	return nil
}

// Cap implements UpdateTransport.
func (t *ShuffleTransport[M]) Cap() int { return t.a.Cap() }

// Counters implements UpdateTransport.
func (t *ShuffleTransport[M]) Counters() TransportCounters { return t.Snapshot() }

// Exchange is the frame-level SPI a worker-to-worker update exchange
// implements: opaque frames addressed to destination partitions, with
// whatever loss, duplication or corruption the medium exhibits.
// NewExchangeTransport layers framing, checksums, sequence-number
// deduplication, retry and loss detection on top, so an Exchange only
// moves bytes. Send must be safe for concurrent use; Drain(dst) must
// return every frame delivered for dst this iteration and is called once
// per destination per iteration, after all sends.
type Exchange interface {
	// Send delivers one frame to destination partition dst. An error
	// wrapping ErrExchangeTransient may be retried by the caller; any
	// other error is fatal for the iteration.
	Send(dst int, frame []byte) error
	// Drain calls fn for every frame delivered to dst this iteration, in
	// delivery order, then forgets them. Frames are only valid during the
	// callback.
	Drain(dst int, fn func(frame []byte) error) error
	// Close releases the exchange's resources. Idempotent.
	Close() error
}

// ErrExchangeTransient classifies an Exchange send failure as retryable:
// the frame was not delivered, and re-sending it is safe. The exchange
// transport retries such sends (counted in TransportCounters.Retries)
// before giving up.
var ErrExchangeTransient = errors.New("transport: transient exchange fault")

// ErrExchangeLost reports that frames sent into an Exchange never arrived:
// the per-iteration reconciliation at Seal counted fewer distinct frames
// received than sent. Lost traffic always surfaces as this typed error,
// never as a silently incomplete gather.
var ErrExchangeLost = errors.New("transport: update frames lost in exchange")

// ErrExchangeCorrupt reports that a received frame failed validation —
// short header, payload length mismatch, or CRC32C mismatch. Corrupt
// traffic always surfaces as this typed error, never as wrong updates.
var ErrExchangeCorrupt = errors.New("transport: corrupt update frame")

// frameHeaderSize is the fixed exchange frame header: src, seq, count and
// CRC32C of the payload, each little-endian uint32.
const frameHeaderSize = 16

// castagnoli is the CRC32C table used for frame checksums, matching the
// storage layer's artifact checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// sendRetries is how many times a transient exchange fault is retried
// before the send is abandoned (surfacing at Seal as a lost frame or the
// final transient error).
const sendRetries = 8

// ExchangeTransport adapts a frame-level Exchange to UpdateTransport. The
// send side groups each batch by destination partition, frames each group
// with a (src, seq, count, crc32c) header and hands it to the exchange,
// retrying transient faults. Seal performs the receive: every partition's
// frames are drained, validated, deduplicated by (src, seq), and the
// surviving records are routed through the same counting shuffle and
// combiner fold as the builtin transport — so out-of-order partition
// arrival and duplicated frames never change the result, and lost or
// corrupt frames surface as typed errors.
type ExchangeTransport[M any] struct {
	ex       Exchange
	k        int
	capacity int
	plan     streambuf.Plan
	threads  int
	key      func(Update[M]) uint32
	folder   *streambuf.Folder[Update[M]]
	recSize  int

	seqs      []atomic.Uint32 // k*k per-(src,dst) frame sequence numbers
	iterSent  atomic.Int64    // frames sent this iteration
	iterRecs  atomic.Int64    // records sent this iteration
	sendErrMu sync.Mutex
	sendErr   error // first fatal send error, surfaced at Seal

	res *streambuf.Buffer[Update[M]]
	CounterSet
}

// NewExchangeTransport wraps ex as an UpdateTransport for k partitions.
// capacity is the expected per-iteration record volume (diagnostic only —
// the receive side sizes itself to what actually arrives); plan, threads,
// key and folder configure the receive-side routing exactly as for the
// builtin shuffle.
func NewExchangeTransport[M any](ex Exchange, k, capacity int, plan streambuf.Plan, threads int, key func(Update[M]) uint32, folder *streambuf.Folder[Update[M]]) *ExchangeTransport[M] {
	return &ExchangeTransport[M]{
		ex:       ex,
		k:        k,
		capacity: capacity,
		plan:     plan,
		threads:  threads,
		key:      key,
		folder:   folder,
		recSize:  pod.Size[Update[M]](),
		seqs:     make([]atomic.Uint32, k*k),
	}
}

// Send implements UpdateTransport. The batch is grouped by destination
// partition and each group is framed and sent; failures are deferred to
// Seal, so Send always returns true.
func (t *ExchangeTransport[M]) Send(src int, batch []Update[M]) bool {
	if len(batch) == 0 {
		return true
	}
	groups := make([][]Update[M], t.k)
	for _, u := range batch {
		p := t.key(u)
		groups[p] = append(groups[p], u)
	}
	from := src
	if from < 0 {
		from = 0
	}
	for dst, g := range groups {
		if len(g) == 0 {
			continue
		}
		seq := t.seqs[from*t.k+dst].Add(1) - 1
		frame := make([]byte, frameHeaderSize+len(g)*t.recSize)
		binary.LittleEndian.PutUint32(frame[0:], uint32(from))
		binary.LittleEndian.PutUint32(frame[4:], seq)
		binary.LittleEndian.PutUint32(frame[8:], uint32(len(g)))
		payload := frame[frameHeaderSize:]
		copy(payload, pod.AsBytes(g))
		binary.LittleEndian.PutUint32(frame[12:], crc32.Checksum(payload, castagnoli))
		if err := t.sendFrame(dst, frame); err != nil {
			t.sendErrMu.Lock()
			if t.sendErr == nil {
				t.sendErr = err
			}
			t.sendErrMu.Unlock()
		}
		t.iterSent.Add(1)
	}
	t.iterRecs.Add(int64(len(batch)))
	t.Count(src, int64(len(batch)), CrossOf(batch, src, t.key), t.recSize)
	return true
}

// sendFrame delivers one frame, retrying transient exchange faults.
func (t *ExchangeTransport[M]) sendFrame(dst int, frame []byte) error {
	var err error
	for attempt := 0; attempt <= sendRetries; attempt++ {
		if attempt > 0 {
			t.retries.Add(1)
		}
		if err = t.ex.Send(dst, frame); err == nil {
			return nil
		}
		if !errors.Is(err, ErrExchangeTransient) {
			return err
		}
	}
	return err
}

// Room implements UpdateTransport. The exchange applies backpressure at
// the frame level, so the send side is effectively unwindowed.
func (t *ExchangeTransport[M]) Room() int { return 1 << 20 }

// Flush implements UpdateTransport as a no-op.
func (t *ExchangeTransport[M]) Flush() error { return nil }

// Seal implements UpdateTransport: receive, validate, deduplicate, then
// route through the counting shuffle and fold.
func (t *ExchangeTransport[M]) Seal() (IterFlow, error) {
	t.sendErrMu.Lock()
	err := t.sendErr
	t.sendErrMu.Unlock()
	if err != nil {
		return IterFlow{}, err
	}
	expected := t.iterRecs.Load()
	in := streambuf.New[Update[M]](int(expected))
	seen := make(map[uint64]struct{})
	var frames int64
	for dst := 0; dst < t.k; dst++ {
		drainErr := t.ex.Drain(dst, func(frame []byte) error {
			if len(frame) < frameHeaderSize {
				return fmt.Errorf("%w: %d-byte frame for partition %d", ErrExchangeCorrupt, len(frame), dst)
			}
			src := binary.LittleEndian.Uint32(frame[0:])
			seq := binary.LittleEndian.Uint32(frame[4:])
			count := binary.LittleEndian.Uint32(frame[8:])
			sum := binary.LittleEndian.Uint32(frame[12:])
			payload := frame[frameHeaderSize:]
			if len(payload) != int(count)*t.recSize {
				return fmt.Errorf("%w: partition %d: %d payload bytes for %d records", ErrExchangeCorrupt, dst, len(payload), count)
			}
			if crc32.Checksum(payload, castagnoli) != sum {
				return fmt.Errorf("%w: partition %d: frame checksum mismatch (src %d seq %d)", ErrExchangeCorrupt, dst, src, seq)
			}
			id := uint64(src)<<40 | uint64(dst)<<32 | uint64(seq)
			if _, dup := seen[id]; dup {
				return nil // duplicated delivery, already applied
			}
			seen[id] = struct{}{}
			frames++
			recs := make([]Update[M], count)
			copy(pod.AsBytes(recs), payload)
			if !in.Append(recs) {
				return fmt.Errorf("%w: partition %d: more records received than sent", ErrExchangeCorrupt, dst)
			}
			return nil
		})
		if drainErr != nil {
			return IterFlow{}, drainErr
		}
	}
	if sent := t.iterSent.Load(); frames != sent {
		return IterFlow{}, fmt.Errorf("%w: %d of %d frames arrived", ErrExchangeLost, frames, sent)
	}
	scratch := streambuf.New[Update[M]](int(expected))
	res := streambuf.Shuffle(in, scratch, t.plan, t.threads, t.key)
	appended := int64(res.Len())
	var combined int64
	if t.folder != nil {
		combined = t.folder.Fold(res)
	}
	t.res = res
	return IterFlow{Appended: appended, Combined: combined, Delivered: appended - combined}, nil
}

// Pending implements UpdateTransport.
func (t *ExchangeTransport[M]) Pending(p int) int64 {
	if t.res == nil {
		return 0
	}
	return int64(t.res.BucketLen(p))
}

// Drain implements UpdateTransport over the sealed buffer's bucket runs.
func (t *ExchangeTransport[M]) Drain(p int, fn func([]Update[M]) error) error {
	if t.res == nil {
		return nil
	}
	var err error
	t.res.Bucket(p, func(run []Update[M]) {
		if err == nil {
			err = fn(run)
		}
	})
	return err
}

// EndIteration implements UpdateTransport: the sealed buffer and the
// per-iteration frame accounting reset; sequence numbers keep advancing so
// stale duplicates from earlier iterations can never alias fresh frames.
func (t *ExchangeTransport[M]) EndIteration() error {
	t.res = nil
	t.iterSent.Store(0)
	t.iterRecs.Store(0)
	return nil
}

// Close implements UpdateTransport by closing the underlying exchange.
func (t *ExchangeTransport[M]) Close() error {
	t.res = nil
	return t.ex.Close()
}

// Cap implements UpdateTransport.
func (t *ExchangeTransport[M]) Cap() int { return t.capacity }

// Counters implements UpdateTransport.
func (t *ExchangeTransport[M]) Counters() TransportCounters { return t.Snapshot() }
