package core

import (
	"math/rand"
	"sync"
	"testing"
)

// TestFrontierAgainstReference drives a Frontier and a reference map with
// the same random mark sequence and checks every read-side method against
// the naive answer.
func TestFrontierAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := int64(rng.Intn(500) + 1)
		f := NewFrontier(n)
		ref := make([]bool, n)
		for marks := rng.Intn(200); marks > 0; marks-- {
			v := VertexID(rng.Int63n(n))
			f.Mark(v)
			ref[v] = true
		}

		if f.Len() != n {
			t.Fatalf("Len = %d, want %d", f.Len(), n)
		}
		var want int64
		for v := int64(0); v < n; v++ {
			if f.Active(VertexID(v)) != ref[v] {
				t.Fatalf("n=%d: Active(%d) = %v, want %v", n, v, f.Active(VertexID(v)), ref[v])
			}
			if ref[v] {
				want++
			}
		}
		if got := f.Count(); got != want {
			t.Fatalf("n=%d: Count = %d, want %d", n, got, want)
		}

		for q := 0; q < 50; q++ {
			lo := rng.Int63n(n + 1)
			hi := rng.Int63n(n + 1)
			var cnt int64
			for v := lo; v < hi && v < n; v++ {
				if ref[v] {
					cnt++
				}
			}
			if got := f.CountRange(lo, hi); got != cnt {
				t.Fatalf("n=%d: CountRange(%d,%d) = %d, want %d", n, lo, hi, got, cnt)
			}
			if got := f.AnyInRange(lo, hi); got != (cnt > 0) {
				t.Fatalf("n=%d: AnyInRange(%d,%d) = %v, want %v", n, lo, hi, got, cnt > 0)
			}
		}

		// Per-partition counts match per-range counts for any power-of-two K.
		k := 1 << rng.Intn(5)
		split := NewSplit(n, k)
		counts := f.CountByPartition(split)
		if len(counts) != k {
			t.Fatalf("CountByPartition returned %d entries, want %d", len(counts), k)
		}
		var total int64
		for p, c := range counts {
			lo, hi := split.Range(p, n)
			if want := f.CountRange(lo, hi); c != want {
				t.Fatalf("partition %d: count %d, want %d", p, c, want)
			}
			total += c
		}
		if total != want {
			t.Fatalf("partition counts sum to %d, want %d", total, want)
		}
	}
}

// TestFrontierClearMarkAll checks the bulk transitions, including the tail
// word of a non-multiple-of-64 vertex count.
func TestFrontierClearMarkAll(t *testing.T) {
	for _, n := range []int64{1, 63, 64, 65, 100, 128, 1000} {
		f := NewFrontier(n)
		f.MarkAll()
		if got := f.Count(); got != n {
			t.Fatalf("n=%d: MarkAll then Count = %d", n, got)
		}
		if f.AnyInRange(n, n+100) {
			t.Fatalf("n=%d: active vertices past Len", n)
		}
		f.Clear()
		if got := f.Count(); got != 0 {
			t.Fatalf("n=%d: Clear then Count = %d", n, got)
		}
		if f.AnyInRange(0, n) {
			t.Fatalf("n=%d: AnyInRange true after Clear", n)
		}
	}
}

// TestFrontierConcurrentMark marks from many goroutines — the gather-phase
// access pattern — and checks no mark is lost (run under -race in CI).
func TestFrontierConcurrentMark(t *testing.T) {
	const n = 10000
	f := NewFrontier(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := w; v < n; v += 8 {
				f.Mark(VertexID(v))
				// Overlapping marks with a neighbor stripe: Or must not lose
				// bits set by another goroutine in the same word.
				f.Mark(VertexID((v + 1) % n))
			}
		}(w)
	}
	wg.Wait()
	if got := f.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
}

func TestDegreeAwareBufRecs(t *testing.T) {
	cases := []struct {
		base         int
		edges, verts int64
		want         int
	}{
		{1024, 0, 0, 1024},            // empty partition: base
		{1024, 100, 100, 1024},        // avg degree 1: base
		{1024, 4096, 1024, 4096},      // avg degree 4: 4x base
		{1024, 1 << 30, 64, 16384},    // dense: clamped at 16x base
		{1024, 2000, 1, 2000},         // never beyond the partition's edges
		{0, 10, 10, 1},                // degenerate base
		{1024, 512, 1024, 1024},       // fewer edges than base: floor at base
		{8, 1 << 40, 1 << 20, 8 * 16}, // huge counts do not overflow
	}
	for _, c := range cases {
		if got := DegreeAwareBufRecs(c.base, c.edges, c.verts); got != c.want {
			t.Errorf("DegreeAwareBufRecs(%d, %d, %d) = %d, want %d", c.base, c.edges, c.verts, got, c.want)
		}
	}
}
