package core

import (
	"testing"
)

// repTestGraph builds a small graph with two obvious hubs: vertex 0 and
// vertex 1 receive an edge from every other vertex, plus a sprinkling of
// low-degree edges.
func repTestGraph(n int) EdgeSource {
	var edges []Edge
	for v := 2; v < n; v++ {
		edges = append(edges, Edge{Src: VertexID(v), Dst: 0})
		edges = append(edges, Edge{Src: VertexID(v), Dst: 1})
		edges = append(edges, Edge{Src: VertexID(v), Dst: VertexID((v + 1) % n)})
	}
	return NewSliceSource(edges, int64(n))
}

func TestReplicationSetInvariants(t *testing.T) {
	const n = 256
	rep := NewReplication(n, []VertexID{7, 3, 7, 200}) // unsorted, duplicate
	if err := rep.Validate(n); err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicate dropped)", rep.Len())
	}
	want := []VertexID{3, 7, 200}
	for i, h := range rep.Hubs {
		if h != want[i] {
			t.Fatalf("hub %d = %d, want %d", i, h, want[i])
		}
		if rep.SlotOf(h) != int32(i) {
			t.Fatalf("SlotOf(%d) = %d, want %d", h, rep.SlotOf(h), i)
		}
	}
	for _, v := range []VertexID{0, 4, 255, 1 << 20} {
		if rep.SlotOf(v) != -1 {
			t.Fatalf("SlotOf(%d) = %d for a non-hub", v, rep.SlotOf(v))
		}
	}
	if (*Replication)(nil).Len() != 0 {
		t.Fatal("nil replication must have length 0")
	}
}

func TestMirrorBufferTotalsPreserved(t *testing.T) {
	const n = 64
	rep := NewReplication(n, []VertexID{5, 10, 20})
	mb := NewMirrorBuffer(rep, func(a, b int32) int32 { return a + b })

	var absorbed, direct int64
	sums := map[VertexID]int32{}
	for i := 0; i < 1000; i++ {
		dst := VertexID(i * 7 % n)
		val := int32(i)
		if mb.Absorb(dst, val) {
			absorbed++
			sums[dst] += val
		} else {
			if rep.SlotOf(dst) >= 0 {
				t.Fatalf("hub %d not absorbed", dst)
			}
			direct++
		}
	}
	if absorbed == 0 || direct == 0 {
		t.Fatalf("degenerate mix: %d absorbed, %d direct", absorbed, direct)
	}
	var emitted int64
	prev := VertexID(0)
	synced := mb.Flush(func(u Update[int32]) {
		if emitted > 0 && u.Dst <= prev {
			t.Fatalf("flush out of order: %d after %d", u.Dst, prev)
		}
		prev = u.Dst
		if sums[u.Dst] != u.Val {
			t.Fatalf("hub %d: flushed %d, want sum %d", u.Dst, u.Val, sums[u.Dst])
		}
		emitted++
	})
	if synced != emitted {
		t.Fatalf("Flush reported %d syncs, emitted %d", synced, emitted)
	}
	// Every absorbed update is either merged away or represented by
	// exactly one sync — the accounting identity the engines rely on.
	if absorbed != mb.Merged+emitted && mb.Merged != 0 {
		t.Fatalf("absorbed %d != merged %d + emitted %d", absorbed, mb.Merged, emitted)
	}
	// After Flush the buffer is reset: nothing to emit, counters zeroed.
	if again := mb.Flush(func(Update[int32]) { t.Fatal("emit after reset") }); again != 0 {
		t.Fatalf("second flush synced %d", again)
	}
	if mb.Merged != 0 {
		t.Fatalf("Merged not reset: %d", mb.Merged)
	}
}

// TestMirrorBufferMergedIdentity pins absorbed == merged + emitted (the
// pre-Flush Merged reading the engines use for Stats.UpdatesCombined).
func TestMirrorBufferMergedIdentity(t *testing.T) {
	rep := NewReplication(8, []VertexID{1, 2})
	mb := NewMirrorBuffer(rep, func(a, b int32) int32 { return a + b })
	var absorbed int64
	for i := 0; i < 10; i++ {
		if mb.Absorb(1, 1) {
			absorbed++
		}
	}
	if mb.Absorb(2, 1) {
		absorbed++
	}
	merged := mb.Merged
	emitted := mb.Flush(func(Update[int32]) {})
	if absorbed != merged+emitted {
		t.Fatalf("absorbed %d != merged %d + emitted %d", absorbed, merged, emitted)
	}
}

func TestReplicatingPartitionerSelectsHubs(t *testing.T) {
	src := repTestGraph(256)
	p := NewReplicatingPartitioner(RangePartitioner{}, ReplicationConfig{})
	if p.Name() != "range+rep" {
		t.Fatalf("name %q", p.Name())
	}
	asg, err := p.Assign(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := asg.Validate(src.NumVertices()); err != nil {
		t.Fatal(err)
	}
	if asg.Mirrors == nil {
		t.Fatal("no mirrors selected on a hub-heavy graph")
	}
	hubs := asg.Mirrors.Hubs
	if len(hubs) != 2 || hubs[0] != 0 || hubs[1] != 1 {
		t.Fatalf("hubs = %v, want [0 1]", hubs)
	}
}

// TestReplicatingPartitionerConsistentWithAssignment: hubs are selected in
// execution-ID space, so under a relabeling partitioner the mirror set
// must name the *relabeled* IDs of the high-in-degree vertices.
func TestReplicatingPartitionerConsistentWithAssignment(t *testing.T) {
	const n = 256
	// Reverse relabeling: original v -> n-1-v.
	relabel := make([]VertexID, n)
	for i := range relabel {
		relabel[i] = VertexID(n - 1 - i)
	}
	inner := NewPermutationPartitioner("rev", relabel)
	src := repTestGraph(n)
	asg, err := NewReplicatingPartitioner(inner, ReplicationConfig{}).Assign(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := asg.Validate(n); err != nil {
		t.Fatal(err)
	}
	if asg.Mirrors == nil {
		t.Fatal("no mirrors")
	}
	hubs := asg.Mirrors.Hubs
	if len(hubs) != 2 || hubs[0] != VertexID(n-2) || hubs[1] != VertexID(n-1) {
		t.Fatalf("hubs = %v, want execution IDs [%d %d]", hubs, n-2, n-1)
	}
}

func TestReplicatingPartitionerCapAndDeterminism(t *testing.T) {
	src := repTestGraph(512)
	cfg := ReplicationConfig{MaxMirrors: 1, DegreeFactor: 0.5, MinInDegree: 1}
	a, err := NewReplicatingPartitioner(RangePartitioner{}, cfg).Assign(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mirrors.Len() != 1 {
		t.Fatalf("cap ignored: %d mirrors", a.Mirrors.Len())
	}
	// Highest in-degree wins the capped slot (vertex 0 edges out vertex 1
	// by the wrap-around edge).
	if a.Mirrors.Hubs[0] != 0 {
		t.Fatalf("capped hub = %d, want 0", a.Mirrors.Hubs[0])
	}
	b, err := NewReplicatingPartitioner(RangePartitioner{}, cfg).Assign(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mirrors.Hubs[0] != b.Mirrors.Hubs[0] {
		t.Fatal("non-deterministic hub selection")
	}
}

func TestReplicatingPartitionerSinglePartition(t *testing.T) {
	asg, err := NewReplicatingPartitioner(RangePartitioner{}, ReplicationConfig{}).Assign(repTestGraph(64), 1)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Mirrors != nil {
		t.Fatal("k=1 has no cross traffic to save; mirrors must be skipped")
	}
}
