package dataset

import (
	"context"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graphgen"
	"repro/internal/graphio"
	"repro/internal/storage"
)

func testSource() core.EdgeSource {
	return graphgen.RMAT(graphgen.RMATConfig{Scale: 9, EdgeFactor: 8, Seed: 71, Undirected: true})
}

func TestRegistryAddGetList(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Add("", testSource(), Options{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := r.Add("g", testSource(), Options{Partitioner: "bogus"}); err == nil {
		t.Fatal("bogus partitioner accepted")
	}
	d, err := r.Add("g", testSource(), Options{Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("g", testSource(), Options{}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	got, ok := r.Get("g")
	if !ok || got != d {
		t.Fatal("Get did not return the registered dataset")
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].Name != "g" || !infos[0].Undirected || infos[0].MemPrepared {
		t.Fatalf("List = %+v", infos)
	}
	if d.NumVertices() == 0 || d.NumEdges() == 0 {
		t.Fatalf("sizes not captured: %d/%d", d.NumVertices(), d.NumEdges())
	}
}

func TestMemPreparedOnceAndServes(t *testing.T) {
	r := NewRegistry()
	d, err := r.Add("g", testSource(), Options{Threads: 2, MemPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	pp1, err := d.Mem()
	if err != nil {
		t.Fatal(err)
	}
	pp2, err := d.Mem()
	if err != nil || pp1 != pp2 {
		t.Fatalf("Mem not cached: %p vs %p (%v)", pp1, pp2, err)
	}
	if !d.Info().MemPrepared {
		t.Fatal("Info does not report the prepared state")
	}
	// The handle actually serves jobs.
	inst, err := mustSpec(t, "wcc").New(algorithms.Params{})
	if err != nil {
		t.Fatal(err)
	}
	res, pass, err := pp1.RunMany(context.Background(), core.ProgramSet{inst.Job})
	if err != nil {
		t.Fatal(err)
	}
	if pass.CoJobs != 1 || len(res) != 1 {
		t.Fatalf("unexpected pass: %+v", pass)
	}
}

func mustSpec(t *testing.T, name string) algorithms.Spec {
	t.Helper()
	spec, ok := algorithms.ByName(name)
	if !ok {
		t.Fatalf("algorithm %q not registered", name)
	}
	return spec
}

func TestDiskRequiresDevice(t *testing.T) {
	r := NewRegistry()
	d, err := r.Add("g", testSource(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Disk(); err == nil {
		t.Fatal("Disk prepared without a device")
	}
}

// Test2PSPermutationLoaded: a permutation already persisted on the device
// is replayed instead of re-running the clustering passes — proven by
// planting a distinctive permutation and seeing it picked up.
func Test2PSPermutationLoaded(t *testing.T) {
	src := testSource()
	n := src.NumVertices()
	dev := storage.NewSim(storage.SSDParams("perm", 2, 0))
	planted := make([]core.VertexID, n)
	for i := range planted {
		planted[i] = core.VertexID(n) - 1 - core.VertexID(i)
	}
	r := NewRegistry()
	d, err := r.Add("g", src, Options{Partitioner: "2ps", Device: dev, Threads: 2, MemPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.WritePermutation(dev, d.permFile(), planted); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Mem(); err != nil {
		t.Fatal(err)
	}
	if d.perm == nil || d.perm[0] != planted[0] || d.perm[len(d.perm)-1] != planted[len(planted)-1] {
		t.Fatal("planted permutation was not replayed")
	}
}

// Test2PSPermutationSaved: with no file present the clustering runs once
// and persists its permutation for future processes.
func Test2PSPermutationSaved(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("perm", 2, 0))
	r := NewRegistry()
	d, err := r.Add("g", testSource(), Options{Partitioner: "2ps", Device: dev, Threads: 2, MemPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Mem(); err != nil {
		t.Fatal(err)
	}
	perm, err := graphio.ReadPermutation(dev, d.permFile())
	if err != nil {
		t.Fatalf("clustering permutation was not persisted: %v", err)
	}
	if int64(len(perm)) != d.NumVertices() {
		t.Fatalf("persisted permutation has %d entries for %d vertices", len(perm), d.NumVertices())
	}
	// Both engines share the one permutation: preparing the disk handle
	// must not re-cluster (the loaded partitioner replays it).
	if _, err := d.Disk(); err != nil {
		t.Fatal(err)
	}
	if !d.Info().DiskPrepared {
		t.Fatal("Info does not report the disk prepared state")
	}
	r.Close()
}

// TestReplicateIgnoresStaleMirrors: a non-replicating configuration must
// not inherit hubs a previous replicating process persisted on the
// device.
func TestReplicateIgnoresStaleMirrors(t *testing.T) {
	src := testSource()
	n := src.NumVertices()
	dev := storage.NewSim(storage.SSDParams("perm", 2, 0))
	planted := make([]core.VertexID, n)
	for i := range planted {
		planted[i] = core.VertexID(i)
	}
	r := NewRegistry()
	d, err := r.Add("g", src, Options{Partitioner: "2ps", Device: dev, Threads: 2, MemPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a file written by an earlier -replicate process.
	if err := graphio.WritePermutationMirrors(dev, d.permFile(), planted, []core.VertexID{1, 3}); err != nil {
		t.Fatal(err)
	}
	pr, err := d.partitioner()
	if err != nil {
		t.Fatal(err)
	}
	asg, err := pr.Assign(src, 16)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Mirrors != nil {
		t.Fatalf("Replicate=0 dataset replayed %d stale mirrors", asg.Mirrors.Len())
	}
}

// TestReplicateEmptyHubCachePersists: Replicate>0 on a graph with no hub
// above threshold must persist an explicit empty mirror set so restarts
// reuse the cached permutation instead of re-clustering forever.
func TestReplicateEmptyHubCachePersists(t *testing.T) {
	// A grid has max degree 4, far below any hub threshold: selection
	// legitimately finds nothing, exercising the empty-mirror rewrite.
	src := graphgen.Grid(24, 24, 5)
	dev := storage.NewSim(storage.SSDParams("perm", 2, 0))
	r := NewRegistry()
	d, err := r.Add("g", src, Options{Partitioner: "2ps", Replicate: 8, Device: dev, Threads: 2, MemPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.partitioner(); err != nil {
		t.Fatal(err)
	}
	perm, hubs, err := graphio.ReadPermutationMirrors(dev, d.permFile())
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(perm)) != src.NumVertices() {
		t.Fatalf("persisted permutation has %d entries", len(perm))
	}
	if hubs == nil {
		t.Fatal("no explicit hub list persisted: every restart would re-cluster")
	}
	// A second dataset over the same device must accept the cache.
	r2 := NewRegistry()
	d2, err := r2.Add("g", src, Options{Partitioner: "2ps", Replicate: 8, Device: dev, Threads: 2, MemPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.partitioner(); err != nil {
		t.Fatal(err)
	}
	if d2.perm == nil {
		t.Fatal("cached permutation not replayed")
	}
}
