package dataset

// evict_test.go covers the registry's memory cap: LRU eviction of
// prepared engine state, pinning against eviction during passes, and
// lazy rebuild afterwards.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graphgen"
)

// addN registers n small in-memory datasets d0..d{n-1}.
func addN(t *testing.T, r *Registry, n int) []*Dataset {
	t.Helper()
	out := make([]*Dataset, n)
	for i := range out {
		src := graphgen.RMAT(graphgen.RMATConfig{Scale: 9, EdgeFactor: 8, Seed: int64(90 + i), Undirected: true})
		d, err := r.Add(fmt.Sprintf("d%d", i), src, Options{Undirected: true, Threads: 2, MemPartitions: 16})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d
	}
	return out
}

// waitResidentUnder polls until the registry is back under its cap.
func waitResidentUnder(t *testing.T, r *Registry, cap int64) Metrics {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := r.Metrics()
		if m.ResidentBytes <= cap {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("residency never dropped under cap: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEvictionKeepsResidencyUnderCap: with a cap that fits roughly one
// prepared dataset, building three evicts coldest-first until back
// under — and every dataset remains loadable (and correct) afterwards.
func TestEvictionKeepsResidencyUnderCap(t *testing.T) {
	r := NewRegistry()
	defer r.Close()
	ds := addN(t, r, 3)

	// Measure one footprint, then cap at 1.5x so exactly one prepared
	// dataset fits at rest.
	if _, err := ds[0].Mem(); err != nil {
		t.Fatal(err)
	}
	one := r.Metrics().ResidentBytes
	if one <= 0 {
		t.Fatalf("prepared dataset charged %d bytes", one)
	}
	cap := one + one/2
	r.SetMemoryCap(cap)

	for _, d := range ds[1:] {
		if _, err := d.Mem(); err != nil {
			t.Fatal(err)
		}
	}
	m := waitResidentUnder(t, r, cap)
	if m.Evictions < 2 || m.EvictedBytes <= 0 {
		t.Fatalf("expected at least 2 evictions: %+v", m)
	}
	// The hottest dataset (built last) survived; the coldest went first.
	if !ds[2].Info().MemPrepared {
		t.Fatal("most recently used dataset was evicted")
	}
	if ds[0].Info().MemPrepared {
		t.Fatal("least recently used dataset survived under a one-dataset cap")
	}

	// Every dataset — evicted or not — still serves jobs.
	for i, d := range ds {
		pp, err := d.Mem()
		if err != nil {
			t.Fatalf("dataset %d not re-loadable after eviction: %v", i, err)
		}
		inst, err := mustSpec(t, "wcc").New(algorithms.Params{})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := pp.RunMany(context.Background(), core.ProgramSet{inst.Job}); err != nil {
			t.Fatalf("dataset %d failed after rebuild: %v", i, err)
		}
	}
	// And the sweeper squeezed the rebuilds back under the cap.
	waitResidentUnder(t, r, cap)
}

// TestPinnedDatasetNotEvicted: Acquire pins the engine state; even a
// 1-byte cap cannot evict it until Release.
func TestPinnedDatasetNotEvicted(t *testing.T) {
	r := NewRegistry()
	defer r.Close()
	d := addN(t, r, 1)[0]
	if _, err := d.Mem(); err != nil {
		t.Fatal(err)
	}
	d.Acquire()
	r.SetMemoryCap(1)
	// Give the sweeper ample chances to misbehave.
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		if !d.Info().MemPrepared {
			t.Fatal("pinned dataset evicted")
		}
		time.Sleep(time.Millisecond)
	}
	d.Release()
	waitResidentUnder(t, r, 1)
	if d.Info().MemPrepared {
		t.Fatal("unpinned dataset survived a 1-byte cap")
	}
	// Still re-loadable after the forced eviction.
	if _, err := d.Mem(); err != nil {
		t.Fatalf("rebuild after eviction: %v", err)
	}
}

// TestEvictClearsBuildError: a failed build is sticky until evicted,
// then the next use retries cleanly.
func TestEvictClearsBuildError(t *testing.T) {
	r := NewRegistry()
	defer r.Close()
	d := addN(t, r, 1)[0]
	if _, err := d.Disk(); err == nil {
		t.Fatal("Disk prepared without a device")
	}
	if freed, ok := d.evict(); !ok || freed != 0 {
		t.Fatalf("evicting an unbuilt dataset: freed %d bytes, ok %v", freed, ok)
	}
	// The mem path is unaffected and the dataset still serves.
	if _, err := d.Mem(); err != nil {
		t.Fatal(err)
	}
}
