// Package dataset is the serving layer's registry of ingested graphs. A
// production graph service answers many queries against few datasets, so
// everything about a dataset that is job-independent should be paid once at
// ingest and shared by every job thereafter: the parse/generation of the
// edge source, the 2PS clustering permutation (persisted on the device via
// graphio so even process restarts skip the clustering passes), the
// in-memory engine's shuffled edge chunks (memengine.Prepared), and the
// out-of-core engine's pre-processing shuffle into partition edge files
// plus tile index (diskengine.Prepared). The registry hands out cached,
// immutable handles; internal/jobs schedules shared passes over them.
//
// Engine state is built lazily, once, on first use: a dataset that only
// ever serves in-memory jobs never touches the device, and vice versa. All
// methods are safe for concurrent use.
package dataset

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphio"
	"repro/internal/memengine"
	"repro/internal/partition2ps"
	"repro/internal/storage"
)

// Options configures how a dataset is ingested.
type Options struct {
	// Partitioner is the partitioning policy: "range" (default), "2ps"
	// (locality-aware clustering, count-balanced packing) or "2psv"
	// (clustering with HEP-style volume-balanced packing — pair it with
	// Replicate). With "2ps"/"2psv" the clustering permutation is
	// computed once per dataset — and, when a Device is set, persisted
	// there so later processes replay it for free.
	Partitioner string
	// Replicate enables hub replication: up to this many high-in-degree
	// vertices are mirrored so their cross-partition updates collapse to
	// per-partition syncs (Combiner programs only). 0 disables. The hub
	// set persists alongside the clustering permutation.
	Replicate int
	// Undirected records that the source already stores both directions
	// of every edge. Algorithms that require a symmetrized input
	// (hyperanf) are admitted only on such datasets.
	Undirected bool
	// Threads bounds the engines' internal parallelism (0 = GOMAXPROCS).
	Threads int
	// MemPartitions forces the in-memory partition count (0 = auto).
	MemPartitions int
	// TileEdges is the selective-streaming tile granularity (0 = default).
	TileEdges int

	// Device holds the out-of-core partition files and the persisted 2PS
	// permutation. nil means the dataset serves the in-memory engine only.
	Device storage.Device
	// DiskPartitions forces the out-of-core partition count (0 = auto).
	DiskPartitions int
	// IOUnit is the out-of-core request size (0 = default).
	IOUnit int
	// MemoryBudget sizes the out-of-core stream buffers (0 = default).
	MemoryBudget int64
}

// Info is a dataset's JSON-encodable description, served by GET /datasets.
type Info struct {
	Name         string `json:"name"`
	Vertices     int64  `json:"vertices"`
	Edges        int64  `json:"edges"`
	Undirected   bool   `json:"undirected"`
	Partitioner  string `json:"partitioner"`
	Disk         bool   `json:"disk"`
	MemPrepared  bool   `json:"mem_prepared"`
	DiskPrepared bool   `json:"disk_prepared"`
}

// Dataset is one ingested graph and its cached engine state.
type Dataset struct {
	name   string
	src    core.EdgeSource
	opts   Options
	nv, ne int64

	permOnce sync.Once
	perm     []core.VertexID
	hubs     []core.VertexID
	permErr  error

	memOnce  sync.Once
	memReady atomic.Bool
	mem      *memengine.Prepared
	memErr   error

	diskOnce  sync.Once
	diskReady atomic.Bool
	disk      *diskengine.Prepared
	diskErr   error
}

// Name returns the registry name.
func (d *Dataset) Name() string { return d.name }

// NumVertices returns the vertex count.
func (d *Dataset) NumVertices() int64 { return d.nv }

// NumEdges returns the edge record count.
func (d *Dataset) NumEdges() int64 { return d.ne }

// Undirected reports whether the source stores both edge directions.
func (d *Dataset) Undirected() bool { return d.opts.Undirected }

// HasDevice reports whether the dataset can serve the out-of-core engine.
func (d *Dataset) HasDevice() bool { return d.opts.Device != nil }

// Info snapshots the dataset's description.
func (d *Dataset) Info() Info {
	part := d.opts.Partitioner
	if part == "" {
		part = "range"
	}
	if d.opts.Replicate > 0 {
		part += "+rep"
	}
	return Info{
		Name: d.name, Vertices: d.nv, Edges: d.ne,
		Undirected: d.opts.Undirected, Partitioner: part,
		Disk:        d.opts.Device != nil,
		MemPrepared: d.memReady.Load(), DiskPrepared: d.diskReady.Load(),
	}
}

// permFile names the persisted partitioning plan on the device. The name
// keys the *configuration* — policy and mirror cap — so changing either
// across restarts recomputes the plan instead of silently replaying a
// stale one under the new label.
func (d *Dataset) permFile() string {
	pol := d.opts.Partitioner
	if pol == "" {
		pol = "range"
	}
	if d.opts.Replicate > 0 {
		return fmt.Sprintf("xserve-%s-%s-rep%d.xsperm", d.name, pol, d.opts.Replicate)
	}
	return fmt.Sprintf("xserve-%s-%s.xsperm", d.name, pol)
}

// replicating wraps pr with hub selection when Options.Replicate asks for
// it.
func (d *Dataset) replicating(pr core.Partitioner) core.Partitioner {
	if d.opts.Replicate <= 0 {
		return pr
	}
	return core.NewReplicatingPartitioner(pr, core.ReplicationConfig{MaxMirrors: d.opts.Replicate})
}

// partitioner returns the policy engines prepare with. Anything beyond
// the plain range split — clustering passes, hub-selection census — runs
// at most once per dataset per process, and not at all when a plan
// persisted by an earlier process under the same configuration is on the
// device.
func (d *Dataset) partitioner() (core.Partitioner, error) {
	pol := d.opts.Partitioner
	if pol == "" {
		pol = "range"
	}
	switch pol {
	case "range":
		if d.opts.Replicate <= 0 {
			return core.RangePartitioner{}, nil
		}
	case "2ps", "2psv":
	default:
		return nil, fmt.Errorf("dataset %s: unknown partitioner %q", d.name, pol)
	}
	d.permOnce.Do(d.plan)
	if d.permErr != nil {
		return nil, d.permErr
	}
	return core.NewPermutationPartitioner(pol, d.perm).WithMirrors(d.hubs), nil
}

// plan computes (or reloads) the persisted partitioning plan: the
// 2PS/2psv relabeling permutation (an explicit identity for range) and,
// with Replicate set, the mirrored hub set.
func (d *Dataset) plan() {
	if d.opts.Device != nil {
		if perm, hubs, err := graphio.ReadPermutationMirrors(d.opts.Device, d.permFile()); err == nil {
			// The file name keys the configuration, but guard anyway: a
			// replicating configuration needs an explicit hub list (even
			// an empty one), and a non-replicating one must never
			// inherit mirrors.
			if d.opts.Replicate <= 0 {
				hubs = nil
			}
			if int64(len(perm)) == d.nv && (d.opts.Replicate <= 0 || hubs != nil) {
				d.perm, d.hubs = perm, hubs
				return
			}
		}
	}
	var inner core.Partitioner
	switch d.opts.Partitioner {
	case "2ps":
		inner = partition2ps.New()
	case "2psv":
		inner = partition2ps.NewVolumeBalanced()
	default:
		inner = core.RangePartitioner{}
	}
	pr := d.replicating(inner)
	if d.opts.Device != nil {
		// Persist through the same wrapper the CLI's -save-permutation
		// uses, so the file formats interoperate.
		pr = graphio.SavingPartitioner(pr, d.opts.Device, d.permFile())
	}
	k := core.NextPow2(d.opts.MemPartitions)
	if k < 64 {
		k = 64
	}
	asg, err := pr.Assign(d.src, k)
	if err != nil {
		d.permErr = fmt.Errorf("dataset %s: partition planning: %w", d.name, err)
		return
	}
	d.perm = asg.Relabel
	if asg.Mirrors != nil {
		d.hubs = asg.Mirrors.Hubs
	}
}

// Mem returns the dataset's in-memory engine handle, preparing it on first
// use: partition plan, relabeled edge stream shuffled into chunks.
func (d *Dataset) Mem() (*memengine.Prepared, error) {
	d.memOnce.Do(func() {
		pr, err := d.partitioner()
		if err != nil {
			d.memErr = err
			return
		}
		d.mem, d.memErr = memengine.Prepare(d.src, memengine.Config{
			Threads:     d.opts.Threads,
			Partitions:  d.opts.MemPartitions,
			TileEdges:   d.opts.TileEdges,
			Partitioner: pr,
			Selective:   true,
		})
		if d.memErr == nil {
			d.memReady.Store(true)
		}
	})
	return d.mem, d.memErr
}

// Disk returns the dataset's out-of-core engine handle, preparing it on
// first use: the pre-processing shuffle into partition edge files plus the
// tile index, on the configured device.
func (d *Dataset) Disk() (*diskengine.Prepared, error) {
	d.diskOnce.Do(func() {
		if d.opts.Device == nil {
			d.diskErr = fmt.Errorf("dataset %s: no device configured for the out-of-core engine", d.name)
			return
		}
		pr, err := d.partitioner()
		if err != nil {
			d.diskErr = err
			return
		}
		d.disk, d.diskErr = diskengine.Prepare(d.src, diskengine.Config{
			Device:       d.opts.Device,
			MemoryBudget: d.opts.MemoryBudget,
			IOUnit:       d.opts.IOUnit,
			Threads:      d.opts.Threads,
			Partitions:   d.opts.DiskPartitions,
			TileEdges:    d.opts.TileEdges,
			Prefix:       "xserve-" + d.name + "-",
			Partitioner:  pr,
			Selective:    true,
		})
		if d.diskErr == nil {
			d.diskReady.Store(true)
		}
	})
	return d.disk, d.diskErr
}

// close releases the dataset's device-backed state.
func (d *Dataset) close() {
	if d.diskReady.Load() && d.disk != nil {
		d.disk.Close()
	}
}

// Registry maps names to ingested datasets.
type Registry struct {
	mu    sync.RWMutex
	m     map[string]*Dataset
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: map[string]*Dataset{}}
}

// Add registers src under name. The source must be re-streamable (the
// usual EdgeSource contract); engine state is prepared lazily.
func (r *Registry) Add(name string, src core.EdgeSource, opts Options) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("dataset: empty name")
	}
	switch opts.Partitioner {
	case "", "range", "2ps", "2psv":
	default:
		return nil, fmt.Errorf("dataset %s: unknown partitioner %q", name, opts.Partitioner)
	}
	if opts.Replicate < 0 {
		return nil, fmt.Errorf("dataset %s: negative Replicate %d", name, opts.Replicate)
	}
	d := &Dataset{name: name, src: src, opts: opts, nv: src.NumVertices(), ne: src.NumEdges()}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return nil, fmt.Errorf("dataset %s: already registered", name)
	}
	r.m[name] = d
	r.order = append(r.order, name)
	return d, nil
}

// Get returns the dataset registered under name.
func (r *Registry) Get(name string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.m[name]
	return d, ok
}

// List returns every dataset's Info in registration order.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.m[name].Info())
	}
	return out
}

// Close releases device-backed state of every dataset.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, d := range r.m {
		d.close()
	}
}
