// Package dataset is the serving layer's registry of ingested graphs. A
// production graph service answers many queries against few datasets, so
// everything about a dataset that is job-independent should be paid once at
// ingest and shared by every job thereafter: the parse/generation of the
// edge source, the 2PS clustering permutation (persisted on the device via
// graphio so even process restarts skip the clustering passes), the
// in-memory engine's shuffled edge chunks (memengine.Prepared), and the
// out-of-core engine's pre-processing shuffle into partition edge files
// plus tile index (diskengine.Prepared). The registry hands out cached,
// immutable handles; internal/jobs schedules shared passes over them.
//
// Engine state is built lazily, once, on first use: a dataset that only
// ever serves in-memory jobs never touches the device, and vice versa.
//
// Unlike the immutable handles, the registry's *residency* is bounded: a
// memory cap (SetMemoryCap) turns the registry into an LRU over prepared
// engine state. Callers that stream a pass pin their dataset with
// Acquire/Release; a background sweeper evicts the least-recently-used
// unpinned datasets — dropping the in-memory chunks and closing the
// out-of-core partition files — until residency is back under the cap.
// Evicted datasets stay registered and rebuild lazily on next use, so
// admission is a memory *cap*, not a one-way admission budget that only
// ever grows. All methods are safe for concurrent use.
package dataset

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/diskengine"
	"repro/internal/graphio"
	"repro/internal/memengine"
	"repro/internal/partition2ps"
	"repro/internal/storage"
)

// Options configures how a dataset is ingested.
type Options struct {
	// Partitioner is the partitioning policy: "range" (default), "2ps"
	// (locality-aware clustering, count-balanced packing) or "2psv"
	// (clustering with HEP-style volume-balanced packing — pair it with
	// Replicate). With "2ps"/"2psv" the clustering permutation is
	// computed once per dataset — and, when a Device is set, persisted
	// there so later processes replay it for free.
	Partitioner string
	// Replicate enables hub replication: up to this many high-in-degree
	// vertices are mirrored so their cross-partition updates collapse to
	// per-partition syncs (Combiner programs only). 0 disables. The hub
	// set persists alongside the clustering permutation.
	Replicate int
	// Undirected records that the source already stores both directions
	// of every edge. Algorithms that require a symmetrized input
	// (hyperanf) are admitted only on such datasets.
	Undirected bool
	// Threads bounds the engines' internal parallelism (0 = GOMAXPROCS).
	Threads int
	// MemPartitions forces the in-memory partition count (0 = auto).
	MemPartitions int
	// TileEdges is the selective-streaming tile granularity (0 = default).
	TileEdges int

	// Device holds the out-of-core partition files and the persisted 2PS
	// permutation. nil means the dataset serves the in-memory engine only.
	Device storage.Device
	// DiskPartitions forces the out-of-core partition count (0 = auto).
	DiskPartitions int
	// IOUnit is the out-of-core request size (0 = default).
	IOUnit int
	// MemoryBudget sizes the out-of-core stream buffers (0 = default).
	MemoryBudget int64
	// CompressTiles stores the out-of-core partition edge files as
	// delta-varint compressed tiles: results are bit-identical while
	// physical edge reads shrink (see diskengine.Config.CompressTiles).
	CompressTiles bool
}

// Info is a dataset's JSON-encodable description, served by GET /datasets.
type Info struct {
	Name         string `json:"name"`
	Version      int64  `json:"version"`
	Vertices     int64  `json:"vertices"`
	Edges        int64  `json:"edges"`
	Undirected   bool   `json:"undirected"`
	Partitioner  string `json:"partitioner"`
	Disk         bool   `json:"disk"`
	MemPrepared  bool   `json:"mem_prepared"`
	DiskPrepared bool   `json:"disk_prepared"`
	// ResidentBytes is the prepared engine state currently charged
	// against the registry's memory cap (0 when evicted or never built).
	ResidentBytes int64 `json:"resident_bytes"`
}

// Dataset is one ingested graph and its cached engine state.
type Dataset struct {
	name    string
	src     core.EdgeSource
	opts    Options
	nv, ne  int64
	version int64
	reg     *Registry

	permOnce sync.Once
	perm     []core.VertexID
	hubs     []core.VertexID
	permErr  error

	// lastUse is the registry's LRU clock tick of the most recent
	// Acquire/Mem/Disk; the sweeper evicts in ascending order.
	lastUse atomic.Int64

	memReady  atomic.Bool
	diskReady atomic.Bool

	// mu guards the evictable engine state below. Builds run outside the
	// lock under a building flag (cond signals completion), so status
	// snapshots and pin operations never block behind a multi-second
	// prepare.
	mu           sync.Mutex
	cond         *sync.Cond
	pins         int
	memBuilding  bool
	mem          *memengine.Prepared
	memErr       error
	memBytes     int64
	diskBuilding bool
	disk         *diskengine.Prepared
	diskErr      error
	diskBytes    int64
}

// Name returns the registry name.
func (d *Dataset) Name() string { return d.name }

// Version identifies the dataset's contents: result caches key on it so a
// future mutation path (delta ingest) invalidates cached results by
// bumping it. Today datasets are immutable after Add, so it is constant.
func (d *Dataset) Version() int64 { return d.version }

// NumVertices returns the vertex count.
func (d *Dataset) NumVertices() int64 { return d.nv }

// NumEdges returns the edge record count.
func (d *Dataset) NumEdges() int64 { return d.ne }

// Undirected reports whether the source stores both edge directions.
func (d *Dataset) Undirected() bool { return d.opts.Undirected }

// HasDevice reports whether the dataset can serve the out-of-core engine.
func (d *Dataset) HasDevice() bool { return d.opts.Device != nil }

// Info snapshots the dataset's description.
func (d *Dataset) Info() Info {
	part := d.opts.Partitioner
	if part == "" {
		part = "range"
	}
	if d.opts.Replicate > 0 {
		part += "+rep"
	}
	d.mu.Lock()
	resident := d.memBytes + d.diskBytes
	d.mu.Unlock()
	return Info{
		Name: d.name, Version: d.version, Vertices: d.nv, Edges: d.ne,
		Undirected: d.opts.Undirected, Partitioner: part,
		Disk:        d.opts.Device != nil,
		MemPrepared: d.memReady.Load(), DiskPrepared: d.diskReady.Load(),
		ResidentBytes: resident,
	}
}

// permFile names the persisted partitioning plan on the device. The name
// keys the *configuration* — policy and mirror cap — so changing either
// across restarts recomputes the plan instead of silently replaying a
// stale one under the new label.
func (d *Dataset) permFile() string {
	pol := d.opts.Partitioner
	if pol == "" {
		pol = "range"
	}
	if d.opts.Replicate > 0 {
		return fmt.Sprintf("xserve-%s-%s-rep%d.xsperm", d.name, pol, d.opts.Replicate)
	}
	return fmt.Sprintf("xserve-%s-%s.xsperm", d.name, pol)
}

// replicating wraps pr with hub selection when Options.Replicate asks for
// it.
func (d *Dataset) replicating(pr core.Partitioner) core.Partitioner {
	if d.opts.Replicate <= 0 {
		return pr
	}
	return core.NewReplicatingPartitioner(pr, core.ReplicationConfig{MaxMirrors: d.opts.Replicate})
}

// partitioner returns the policy engines prepare with. Anything beyond
// the plain range split — clustering passes, hub-selection census — runs
// at most once per dataset per process (the plan survives eviction), and
// not at all when a plan persisted by an earlier process under the same
// configuration is on the device.
func (d *Dataset) partitioner() (core.Partitioner, error) {
	pol := d.opts.Partitioner
	if pol == "" {
		pol = "range"
	}
	switch pol {
	case "range":
		if d.opts.Replicate <= 0 {
			return core.RangePartitioner{}, nil
		}
	case "2ps", "2psv":
	default:
		return nil, fmt.Errorf("dataset %s: unknown partitioner %q", d.name, pol)
	}
	d.permOnce.Do(d.plan)
	if d.permErr != nil {
		return nil, d.permErr
	}
	return core.NewPermutationPartitioner(pol, d.perm).WithMirrors(d.hubs), nil
}

// plan computes (or reloads) the persisted partitioning plan: the
// 2PS/2psv relabeling permutation (an explicit identity for range) and,
// with Replicate set, the mirrored hub set.
func (d *Dataset) plan() {
	if d.opts.Device != nil {
		if perm, hubs, err := graphio.ReadPermutationMirrors(d.opts.Device, d.permFile()); err == nil {
			// The file name keys the configuration, but guard anyway: a
			// replicating configuration needs an explicit hub list (even
			// an empty one), and a non-replicating one must never
			// inherit mirrors.
			if d.opts.Replicate <= 0 {
				hubs = nil
			}
			if int64(len(perm)) == d.nv && (d.opts.Replicate <= 0 || hubs != nil) {
				d.perm, d.hubs = perm, hubs
				return
			}
		}
	}
	var inner core.Partitioner
	switch d.opts.Partitioner {
	case "2ps":
		inner = partition2ps.New()
	case "2psv":
		inner = partition2ps.NewVolumeBalanced()
	default:
		inner = core.RangePartitioner{}
	}
	pr := d.replicating(inner)
	if d.opts.Device != nil {
		// Persist through the same wrapper the CLI's -save-permutation
		// uses, so the file formats interoperate.
		pr = graphio.SavingPartitioner(pr, d.opts.Device, d.permFile())
	}
	k := core.NextPow2(d.opts.MemPartitions)
	if k < 64 {
		k = 64
	}
	asg, err := pr.Assign(d.src, k)
	if err != nil {
		d.permErr = fmt.Errorf("dataset %s: partition planning: %w", d.name, err)
		return
	}
	d.perm = asg.Relabel
	if asg.Mirrors != nil {
		d.hubs = asg.Mirrors.Hubs
	}
}

// touch stamps the dataset as most-recently-used.
func (d *Dataset) touch() {
	if d.reg != nil {
		d.lastUse.Store(d.reg.clock.Add(1))
	}
}

// Acquire pins the dataset's engine state against eviction; every
// in-flight pass must hold a pin so the sweeper never closes partition
// files or drops edge buffers under a running job. Pair with Release.
func (d *Dataset) Acquire() {
	d.mu.Lock()
	d.pins++
	d.mu.Unlock()
	d.touch()
}

// Release drops an Acquire pin. It also re-measures the resident
// footprint — a pass may have grown the handle (lazily built transposes,
// tile indexes) — and reports the change to the registry, which may now
// evict this or another dataset.
func (d *Dataset) Release() {
	d.mu.Lock()
	if d.pins <= 0 {
		d.mu.Unlock()
		panic("dataset: Release without Acquire")
	}
	d.pins--
	delta := d.resampleLocked()
	d.mu.Unlock()
	if d.reg != nil {
		d.reg.noteResident(delta)
	}
}

// resampleLocked re-reads the built engines' footprints and returns the
// change versus what was last charged. Caller holds d.mu.
func (d *Dataset) resampleLocked() int64 {
	var delta int64
	if d.mem != nil {
		n := d.mem.Bytes()
		delta += n - d.memBytes
		d.memBytes = n
	}
	if d.disk != nil {
		n := d.disk.Bytes()
		delta += n - d.diskBytes
		d.diskBytes = n
	}
	return delta
}

// Mem returns the dataset's in-memory engine handle, preparing it on first
// use (partition plan, relabeled edge stream shuffled into chunks) and
// rebuilding it after an eviction. Concurrent callers share one build.
func (d *Dataset) Mem() (*memengine.Prepared, error) {
	d.mu.Lock()
	for d.memBuilding {
		d.cond.Wait()
	}
	if d.mem != nil || d.memErr != nil {
		pp, err := d.mem, d.memErr
		d.mu.Unlock()
		d.touch()
		return pp, err
	}
	d.memBuilding = true
	d.mu.Unlock()

	pp, err := d.buildMem()

	d.mu.Lock()
	d.memBuilding = false
	d.mem, d.memErr = pp, err
	var grew int64
	if err == nil {
		d.memBytes = pp.Bytes()
		grew = d.memBytes
		d.memReady.Store(true)
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	d.touch()
	if grew > 0 && d.reg != nil {
		d.reg.noteResident(grew)
	}
	return pp, err
}

// buildMem runs the in-memory prepare with no dataset locks held.
func (d *Dataset) buildMem() (*memengine.Prepared, error) {
	pr, err := d.partitioner()
	if err != nil {
		return nil, err
	}
	return memengine.Prepare(d.src, memengine.Config{
		Threads:     d.opts.Threads,
		Partitions:  d.opts.MemPartitions,
		TileEdges:   d.opts.TileEdges,
		Partitioner: pr,
		Selective:   true,
	})
}

// Disk returns the dataset's out-of-core engine handle, preparing it on
// first use (the pre-processing shuffle into partition edge files plus the
// tile index, on the configured device) and rebuilding it after an
// eviction. Concurrent callers share one build.
func (d *Dataset) Disk() (*diskengine.Prepared, error) {
	if d.opts.Device == nil {
		return nil, fmt.Errorf("dataset %s: no device configured for the out-of-core engine", d.name)
	}
	d.mu.Lock()
	for d.diskBuilding {
		d.cond.Wait()
	}
	if d.disk != nil || d.diskErr != nil {
		pp, err := d.disk, d.diskErr
		d.mu.Unlock()
		d.touch()
		return pp, err
	}
	d.diskBuilding = true
	d.mu.Unlock()

	pp, err := d.buildDisk()

	d.mu.Lock()
	d.diskBuilding = false
	d.disk, d.diskErr = pp, err
	var grew int64
	if err == nil {
		d.diskBytes = pp.Bytes()
		grew = d.diskBytes
		d.diskReady.Store(true)
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	d.touch()
	if grew > 0 && d.reg != nil {
		d.reg.noteResident(grew)
	}
	return pp, err
}

// buildDisk runs the out-of-core prepare with no dataset locks held.
func (d *Dataset) buildDisk() (*diskengine.Prepared, error) {
	pr, err := d.partitioner()
	if err != nil {
		return nil, err
	}
	return diskengine.Prepare(d.src, diskengine.Config{
		Device:        d.opts.Device,
		MemoryBudget:  d.opts.MemoryBudget,
		IOUnit:        d.opts.IOUnit,
		Threads:       d.opts.Threads,
		Partitions:    d.opts.DiskPartitions,
		TileEdges:     d.opts.TileEdges,
		Prefix:        "xserve-" + d.name + "-",
		Partitioner:   pr,
		Selective:     true,
		CompressTiles: d.opts.CompressTiles,
	})
}

// evict drops the dataset's prepared engine state — the in-memory edge
// chunks are released to the collector and the out-of-core handle's
// partition files are removed via its existing close path — and returns
// the bytes freed. Pinned or mid-build datasets refuse (ok false);
// build errors are cleared so the next use retries. The dataset stays
// registered and rebuilds lazily.
func (d *Dataset) evict() (freed int64, ok bool) {
	d.mu.Lock()
	if d.pins > 0 || d.memBuilding || d.diskBuilding {
		d.mu.Unlock()
		return 0, false
	}
	freed = d.memBytes + d.diskBytes
	disk := d.disk
	d.mem, d.memErr, d.memBytes = nil, nil, 0
	d.disk, d.diskErr, d.diskBytes = nil, nil, 0
	d.memReady.Store(false)
	d.diskReady.Store(false)
	d.mu.Unlock()
	if disk != nil {
		disk.Close()
	}
	return freed, true
}

// InvalidateCorrupted drops the dataset's prepared engine state in
// response to detected on-disk corruption (a storage.ErrCorrupted from a
// pass or a prepare), so the next use rebuilds every artifact — partition
// edge files, tile index, in-memory chunks — from the original source.
// The persisted partitioning plan heals itself separately: a corrupt
// permutation file fails its checksum on read and the planner recomputes
// and rewrites it. Returns false without touching anything when the
// dataset is pinned or mid-build — a pass is still using the state, and
// whoever hits the corruption next retries the invalidation once the
// pins drain.
func (d *Dataset) InvalidateCorrupted() bool {
	freed, ok := d.evict()
	if !ok {
		return false
	}
	if d.reg != nil {
		if freed > 0 {
			d.reg.resident.Add(-freed)
		}
		d.reg.corruptions.Add(1)
	}
	return true
}

// close releases the dataset's device-backed state (registry shutdown).
func (d *Dataset) close() {
	d.mu.Lock()
	disk := d.disk
	d.disk = nil
	d.diskBytes = 0
	d.diskReady.Store(false)
	d.mu.Unlock()
	if disk != nil {
		disk.Close()
	}
}

// Metrics are the registry's cumulative residency counters.
type Metrics struct {
	// ResidentBytes is the prepared engine state currently charged.
	ResidentBytes int64 `json:"resident_bytes"`
	// MemoryCap is the configured bound (0 = uncapped).
	MemoryCap int64 `json:"memory_cap"`
	// Evictions counts datasets whose engine state was dropped.
	Evictions int64 `json:"evictions"`
	// EvictedBytes sums the footprints those evictions freed.
	EvictedBytes int64 `json:"evicted_bytes"`
	// CorruptionEvictions counts engine states dropped because a pass or
	// prepare detected on-disk corruption (InvalidateCorrupted); each one
	// triggers a lazy rebuild of just that dataset's artifacts.
	CorruptionEvictions int64 `json:"corruption_evictions"`
	// DeviceRetries sums the retry-wrapper recoveries (storage
	// Stats.Retries) across the registered datasets' distinct devices —
	// transient I/O faults absorbed without surfacing to any job.
	DeviceRetries int64 `json:"device_retries"`
}

// Registry maps names to ingested datasets and bounds their combined
// resident footprint when a memory cap is set.
type Registry struct {
	mu    sync.RWMutex
	m     map[string]*Dataset
	order []string

	clock        atomic.Int64
	resident     atomic.Int64
	memoryCap    atomic.Int64
	evictions    atomic.Int64
	evictedBytes atomic.Int64
	corruptions  atomic.Int64

	sweepOnce sync.Once
	closeOnce sync.Once
	wake      chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewRegistry returns an empty registry with no memory cap.
func NewRegistry() *Registry {
	return &Registry{
		m:    map[string]*Dataset{},
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
}

// SetMemoryCap bounds the combined resident footprint of prepared engine
// state; when residency exceeds it, a background sweeper evicts
// least-recently-used unpinned datasets until back under. 0 (the default)
// disables eviction. The first nonzero cap starts the sweeper; Close
// stops it.
func (r *Registry) SetMemoryCap(bytes int64) {
	r.memoryCap.Store(bytes)
	if bytes > 0 {
		r.sweepOnce.Do(func() {
			r.wg.Add(1)
			go r.sweeper()
		})
		r.maybeWake()
	}
}

// noteResident adjusts the charged residency and wakes the sweeper when
// over cap.
func (r *Registry) noteResident(delta int64) {
	if delta != 0 {
		r.resident.Add(delta)
	}
	r.maybeWake()
}

// maybeWake nudges the sweeper if residency exceeds the cap.
func (r *Registry) maybeWake() {
	if cap := r.memoryCap.Load(); cap > 0 && r.resident.Load() > cap {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
}

// sweeper is the background eviction worker: woken whenever residency
// crosses the cap, it evicts coldest-first until under (or until every
// remaining dataset is pinned — the next Release re-wakes it).
func (r *Registry) sweeper() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case <-r.wake:
		}
		r.sweep()
	}
}

// sweep performs one eviction round.
func (r *Registry) sweep() {
	cap := r.memoryCap.Load()
	if cap <= 0 || r.resident.Load() <= cap {
		return
	}
	r.mu.RLock()
	cands := make([]*Dataset, 0, len(r.m))
	for _, d := range r.m {
		cands = append(cands, d)
	}
	r.mu.RUnlock()
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].lastUse.Load() < cands[j].lastUse.Load()
	})
	for _, d := range cands {
		if r.resident.Load() <= cap {
			return
		}
		if freed, ok := d.evict(); ok && freed > 0 {
			r.resident.Add(-freed)
			r.evictions.Add(1)
			r.evictedBytes.Add(freed)
		}
	}
}

// Metrics snapshots the registry's residency counters plus the transient
// I/O retries absorbed by the registered datasets' devices.
func (r *Registry) Metrics() Metrics {
	var retries int64
	r.mu.RLock()
	seen := make(map[storage.Device]bool, len(r.m))
	for _, d := range r.m {
		if dev := d.opts.Device; dev != nil && !seen[dev] {
			seen[dev] = true
			retries += dev.Stats().Retries
		}
	}
	r.mu.RUnlock()
	return Metrics{
		ResidentBytes:       r.resident.Load(),
		MemoryCap:           r.memoryCap.Load(),
		Evictions:           r.evictions.Load(),
		EvictedBytes:        r.evictedBytes.Load(),
		CorruptionEvictions: r.corruptions.Load(),
		DeviceRetries:       retries,
	}
}

// Add registers src under name. The source must be re-streamable (the
// usual EdgeSource contract); engine state is prepared lazily.
func (r *Registry) Add(name string, src core.EdgeSource, opts Options) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("dataset: empty name")
	}
	switch opts.Partitioner {
	case "", "range", "2ps", "2psv":
	default:
		return nil, fmt.Errorf("dataset %s: unknown partitioner %q", name, opts.Partitioner)
	}
	if opts.Replicate < 0 {
		return nil, fmt.Errorf("dataset %s: negative Replicate %d", name, opts.Replicate)
	}
	d := &Dataset{
		name: name, src: src, opts: opts, reg: r, version: 1,
		nv: src.NumVertices(), ne: src.NumEdges(),
	}
	d.cond = sync.NewCond(&d.mu)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		return nil, fmt.Errorf("dataset %s: already registered", name)
	}
	r.m[name] = d
	r.order = append(r.order, name)
	return d, nil
}

// Get returns the dataset registered under name.
func (r *Registry) Get(name string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.m[name]
	return d, ok
}

// List returns every dataset's Info in registration order.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.m[name].Info())
	}
	return out
}

// Close stops the sweeper and releases device-backed state of every
// dataset. Callers must have drained in-flight passes first (the jobs
// scheduler's Close does).
func (r *Registry) Close() {
	r.closeOnce.Do(func() { close(r.done) })
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, d := range r.m {
		d.close()
	}
}
