// Package streambuf implements X-Stream's stream buffer (paper Figure 5)
// and the parallel multi-stage shuffler that runs over it (paper §4.2,
// Figure 7).
//
// A stream buffer is a statically sized chunk array of fixed-size records
// plus index arrays that describe, for each streaming partition, the chunk
// of records belonging to it. To allow lock-free parallel shuffling the
// buffer is divided into P disjoint slices, one per thread; each slice
// carries its own index array and a thread only ever touches its own slice.
// The chunk for a partition is the union of that partition's chunks across
// all slices, so consuming a partition costs at most P extra random
// accesses (negligible next to the records themselves).
//
// Shuffling into K partitions proceeds in ⌈log_F K⌉ stages of fanout F,
// ping-ponging between two buffers, exactly as described in the paper: a
// single-stage shuffle with huge K loses cache locality and prefetcher
// coverage, so F is bounded by the number of cache lines in the target
// cache.
package streambuf

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Chunk locates a contiguous run of records inside the chunk array.
type Chunk struct {
	Off int // absolute record offset into the chunk array
	Len int // number of records
}

// Buffer is a stream buffer of fixed-size records of type T.
//
// A Buffer is in one of two states:
//
//   - append state: records are appended (concurrently) at the shared
//     cursor; there is no partition structure yet.
//   - bucketed state: after Shuffle (or Slice for K=1), every slice has an
//     index array of K chunks and Bucket/BucketLen are meaningful.
type Buffer[T any] struct {
	data []T
	n    atomic.Int64 // shared append cursor (append state)

	// bucketed state
	buckets int     // number of buckets (0 = append state)
	slices  []slice // per-thread slices
}

type slice struct {
	base, limit int     // record region [base, limit) of data
	fill        int     // records stored (compacted from base)
	idx         []Chunk // one entry per bucket, absolute offsets
}

// New allocates a stream buffer with room for capacity records.
func New[T any](capacity int) *Buffer[T] {
	return &Buffer[T]{data: make([]T, capacity)}
}

// Cap returns the buffer capacity in records.
func (b *Buffer[T]) Cap() int { return len(b.data) }

// Len returns the number of records currently held.
func (b *Buffer[T]) Len() int {
	if b.buckets > 0 {
		total := 0
		for i := range b.slices {
			total += b.slices[i].fill
		}
		return total
	}
	return int(b.n.Load())
}

// Buckets returns the number of buckets the buffer is currently shuffled
// into, or 0 if the buffer is in append state.
func (b *Buffer[T]) Buckets() int { return b.buckets }

// Reset returns the buffer to the empty append state.
func (b *Buffer[T]) Reset() {
	b.n.Store(0)
	b.buckets = 0
	b.slices = nil
}

// Append reserves space for batch atomically and copies it in. It is safe
// for concurrent use. It returns false (appending nothing) if the buffer is
// full; the caller is expected to have sized the buffer so this is fatal.
func (b *Buffer[T]) Append(batch []T) bool {
	if len(batch) == 0 {
		return true
	}
	off := b.n.Add(int64(len(batch))) - int64(len(batch))
	if off+int64(len(batch)) > int64(len(b.data)) {
		b.n.Add(int64(-len(batch)))
		return false
	}
	copy(b.data[off:], batch)
	return true
}

// Fill replaces the buffer contents with src (append state).
func (b *Buffer[T]) Fill(src []T) {
	if len(src) > len(b.data) {
		panic(fmt.Sprintf("streambuf: Fill of %d records into capacity %d", len(src), len(b.data)))
	}
	b.Reset()
	copy(b.data, src)
	b.n.Store(int64(len(src)))
}

// Raw returns the filled prefix of the chunk array in append state. The
// slice aliases the buffer.
func (b *Buffer[T]) Raw() []T { return b.data[:b.n.Load()] }

// Bucket calls fn for each contiguous run of records in bucket p, in slice
// order. The slices passed to fn alias the buffer.
func (b *Buffer[T]) Bucket(p int, fn func([]T)) {
	for i := range b.slices {
		c := b.slices[i].idx[p]
		if c.Len > 0 {
			fn(b.data[c.Off : c.Off+c.Len])
		}
	}
}

// BucketLen returns the number of records in bucket p.
func (b *Buffer[T]) BucketLen(p int) int {
	total := 0
	for i := range b.slices {
		total += b.slices[i].idx[p].Len
	}
	return total
}

// BucketRuns returns the contiguous runs of bucket p without copying.
func (b *Buffer[T]) BucketRuns(p int) [][]T {
	var runs [][]T
	b.Bucket(p, func(r []T) { runs = append(runs, r) })
	return runs
}

// BucketTiles streams bucket p exactly as Bucket does, but in tiles of at
// most tileRecs records; tiles never span a slice-chunk boundary, so the
// tiling is a pure function of the bucketed layout and tileRecs. These are
// the tile boundaries of selective streaming: an engine walks the tiles
// once to index a per-tile source summary, and — as long as the buffer is
// not re-shuffled or reset between walks — every later walk with the same
// tileRecs sees the identical i-th tile, letting it skip tiles whose
// summary proves no record matters this iteration. tileRecs < 1 degrades
// to whole runs (one tile per run).
func (b *Buffer[T]) BucketTiles(p, tileRecs int, fn func(tile []T)) {
	b.Bucket(p, func(run []T) {
		if tileRecs < 1 || tileRecs >= len(run) {
			fn(run)
			return
		}
		for off := 0; off < len(run); off += tileRecs {
			end := off + tileRecs
			if end > len(run) {
				end = len(run)
			}
			fn(run[off:end])
		}
	})
}

// slicesFor computes P equal slices over the filled region.
func (b *Buffer[T]) sliceAppendState(p int) {
	n := int(b.n.Load())
	b.slices = make([]slice, p)
	for i := 0; i < p; i++ {
		lo := i * n / p
		hi := (i + 1) * n / p
		b.slices[i] = slice{base: lo, limit: hi, fill: hi - lo}
	}
}

// Plan describes a multi-stage shuffle: the number of buckets after each
// stage. Stage i splits every bucket of stage i-1 by the next log2(fanout)
// bits of the key, most significant first.
type Plan struct {
	K      int   // total buckets (power of two)
	Fanout int   // per-stage fanout (power of two)
	Stages []int // cumulative bucket counts after each stage
}

// NewPlan validates k and fanout and returns the stage plan.
func NewPlan(k, fanout int) (Plan, error) {
	if k <= 0 || k&(k-1) != 0 {
		return Plan{}, fmt.Errorf("streambuf: K=%d is not a positive power of two", k)
	}
	if fanout < 2 || fanout&(fanout-1) != 0 {
		return Plan{}, fmt.Errorf("streambuf: fanout=%d is not a power of two >= 2", fanout)
	}
	kb := bits.TrailingZeros(uint(k))
	fb := bits.TrailingZeros(uint(fanout))
	var stages []int
	for b := 0; b < kb; {
		b += fb
		if b > kb {
			b = kb
		}
		stages = append(stages, 1<<b)
	}
	if len(stages) == 0 { // K == 1
		stages = []int{1}
	}
	return Plan{K: k, Fanout: fanout, Stages: stages}, nil
}

// NumStages returns the number of shuffle passes the plan performs.
func (p Plan) NumStages() int {
	if p.K == 1 {
		return 0
	}
	return len(p.Stages)
}

// Shuffle partitions the records of in into plan.K buckets by the top bits
// of key(record), using p parallel slice workers and ping-ponging between
// in and out (which must have equal capacity). It returns the buffer that
// holds the final bucketed result (in or out, depending on stage parity).
//
// key must return a value in [0, plan.K).
func Shuffle[T any](in, out *Buffer[T], plan Plan, p int, key func(T) uint32) *Buffer[T] {
	if len(in.data) != len(out.data) {
		panic("streambuf: Shuffle buffers must have equal capacity")
	}
	if p < 1 {
		p = 1
	}
	if in.buckets == 0 {
		in.sliceAppendState(p)
		for i := range in.slices {
			s := &in.slices[i]
			s.idx = []Chunk{{Off: s.base, Len: s.fill}}
		}
		in.buckets = 1
	}
	if plan.K == 1 {
		return in
	}

	kb := bits.TrailingZeros(uint(plan.K))
	cur, nxt := in, out
	prevBuckets := in.buckets
	// Mirror slice boundaries onto the scratch buffer once.
	nxt.slices = make([]slice, len(cur.slices))
	for _, want := range plan.Stages {
		if want <= prevBuckets {
			continue
		}
		shift := kb - bits.TrailingZeros(uint(want))
		sub := want / prevBuckets
		stageShuffle(cur, nxt, prevBuckets, sub, shift, p, key)
		cur, nxt = nxt, cur
		prevBuckets = want
	}
	cur.buckets = prevBuckets
	nxt.Reset()
	return cur
}

// FoldBuckets merges records that share a slot within every (slice, bucket)
// chunk of a bucketed buffer, in place, and returns the number of records
// merged away. slot maps a record of the given bucket to a dense index in
// [0, slots) — for update streams, the destination vertex's offset inside
// its partition's vertex range — and merge folds a doomed record into its
// surviving twin. Chunks are compacted towards their own start, so the
// buffer's chunk index stays valid and consumers simply see shorter
// buckets; only a Reset restores the invariant that slice regions are
// densely filled.
//
// This is the shuffler's combining step: when updates form a semigroup
// (core.Combiner), folding each partition's chunk after the final shuffle
// stage shrinks the stream the gather phase random-accesses vertices for —
// and, in the out-of-core engine, the bytes written to the update files.
// Each worker touches only its own slices, so the fold is lock-free like
// the shuffle itself; records of the same destination that landed in
// different slices stay separate (the gather merges them anyway).
func (b *Buffer[T]) FoldBuckets(workers, slots int, slot func(bucket int, rec T) uint32, merge func(dst *T, src T)) int64 {
	return NewFolder(workers, slots, slot, merge).Fold(b)
}

// Folder folds buffers repeatedly with cached per-worker slot tables. The
// out-of-core engine folds every flushed update buffer, so re-allocating
// the tables (8 bytes per slot per worker) on each fold would put pure
// zeroing work on the write path; a Folder pays it once. A Folder is safe
// for sequential reuse, not for concurrent Fold calls.
type Folder[T any] struct {
	slots int
	slot  func(bucket int, rec T) uint32
	merge func(dst *T, src T)
	// Per-worker tables: pos remembers, per slot, the compacted position
	// of the slot's surviving record; gen invalidates a worker's whole
	// table in O(1) per chunk via the cur counter.
	pos [][]int32
	gen [][]uint32
	cur []uint32
}

// NewFolder prepares a fold over records mapped to [0, slots) dense slots
// per bucket, merging doomed records into their surviving twin, with at
// most workers parallel slice workers.
func NewFolder[T any](workers, slots int, slot func(bucket int, rec T) uint32, merge func(dst *T, src T)) *Folder[T] {
	if slots < 1 {
		slots = 1
	}
	if workers < 1 {
		workers = 1
	}
	f := &Folder[T]{
		slots: slots,
		slot:  slot,
		merge: merge,
		pos:   make([][]int32, workers),
		gen:   make([][]uint32, workers),
		cur:   make([]uint32, workers),
	}
	for w := range f.pos {
		f.pos[w] = make([]int32, slots)
		f.gen[w] = make([]uint32, slots)
	}
	return f
}

// Fold runs the fold over a bucketed buffer and returns the number of
// records merged away (see FoldBuckets).
func (f *Folder[T]) Fold(b *Buffer[T]) int64 {
	if b.buckets == 0 {
		panic("streambuf: fold of a buffer in append state")
	}
	workers := len(f.pos)
	if workers > len(b.slices) {
		workers = len(b.slices)
	}
	var merged atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pos, gen := f.pos[w], f.gen[w]
			cur := f.cur[w]
			var n int64
			for si := w; si < len(b.slices); si += workers {
				s := &b.slices[si]
				fill := 0
				for g := range s.idx {
					c := &s.idx[g]
					cur++
					if cur == 0 { // counter wrapped: stale gen entries could alias
						for i := range gen {
							gen[i] = 0
						}
						cur = 1
					}
					keep := 0
					recs := b.data[c.Off : c.Off+c.Len]
					for i, rec := range recs {
						k := f.slot(g, rec)
						if gen[k] == cur {
							f.merge(&recs[pos[k]], rec)
							continue
						}
						gen[k] = cur
						pos[k] = int32(keep)
						if keep != i {
							recs[keep] = rec
						}
						keep++
					}
					n += int64(c.Len - keep)
					c.Len = keep
					fill += keep
				}
				s.fill = fill
			}
			f.cur[w] = cur
			merged.Add(n)
		}(w)
	}
	wg.Wait()
	return merged.Load()
}

// stageShuffle performs one shuffle stage: every existing bucket of cur is
// split into sub sub-buckets ordered by (key >> shift) within each slice.
// Slices are processed by parallel workers; a worker touches only its own
// slice in both buffers, so no synchronization is needed until the final
// join.
func stageShuffle[T any](cur, nxt *Buffer[T], oldBuckets, sub, shift, p int, key func(T) uint32) {
	newBuckets := oldBuckets * sub
	var wg sync.WaitGroup
	for si := range cur.slices {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			src := &cur.slices[si]
			dst := &nxt.slices[si]
			*dst = slice{base: src.base, limit: src.limit, fill: src.fill}
			counts := make([]int, newBuckets)
			// Pass 1: count records per new bucket.
			for g := 0; g < oldBuckets; g++ {
				c := src.idx[g]
				for _, rec := range cur.data[c.Off : c.Off+c.Len] {
					nb := g*sub + int(key(rec))>>shift&(sub-1)
					counts[nb]++
				}
			}
			// Prefix sums -> chunk offsets within the slice region.
			idx := make([]Chunk, newBuckets)
			off := dst.base
			for nb := 0; nb < newBuckets; nb++ {
				idx[nb] = Chunk{Off: off, Len: counts[nb]}
				off += counts[nb]
			}
			// Pass 2: scatter records to their chunks.
			cursor := make([]int, newBuckets)
			for nb := range cursor {
				cursor[nb] = idx[nb].Off
			}
			for g := 0; g < oldBuckets; g++ {
				c := src.idx[g]
				for _, rec := range cur.data[c.Off : c.Off+c.Len] {
					nb := g*sub + int(key(rec))>>shift&(sub-1)
					nxt.data[cursor[nb]] = rec
					cursor[nb]++
				}
			}
			dst.idx = idx
		}(si)
	}
	wg.Wait()
}
