package streambuf

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

type rec struct {
	Key uint32
	Val uint32
}

func keyOf(r rec) uint32 { return r.Key }

func makeRecs(n int, k uint32, seed int64) []rec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]rec, n)
	for i := range out {
		out[i] = rec{Key: uint32(rng.Intn(int(k))), Val: uint32(i)}
	}
	return out
}

// collect gathers all records from the bucketed buffer in bucket order.
func collect(b *Buffer[rec], k int) []rec {
	var out []rec
	for p := 0; p < k; p++ {
		b.Bucket(p, func(run []rec) { out = append(out, run...) })
	}
	return out
}

func checkShuffled(t *testing.T, in []rec, b *Buffer[rec], k int) {
	t.Helper()
	got := collect(b, k)
	if len(got) != len(in) {
		t.Fatalf("record count %d, want %d", len(got), len(in))
	}
	// Every record in bucket p must have key p.
	for p := 0; p < k; p++ {
		b.Bucket(p, func(run []rec) {
			for _, r := range run {
				if int(r.Key) != p {
					t.Fatalf("bucket %d contains key %d", p, r.Key)
				}
			}
		})
	}
	// Multiset equality via sorted Val (Vals are unique).
	a := make([]int, len(in))
	c := make([]int, len(got))
	for i := range in {
		a[i] = int(in[i].Val)
		c[i] = int(got[i].Val)
	}
	sort.Ints(a)
	sort.Ints(c)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("multiset mismatch at %d", i)
		}
	}
}

func TestShuffleSingleStage(t *testing.T) {
	const n, k = 1000, 8
	in := makeRecs(n, k, 1)
	a, b := New[rec](n), New[rec](n)
	a.Fill(in)
	plan, err := NewPlan(k, 8)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumStages() != 1 {
		t.Fatalf("stages = %d, want 1", plan.NumStages())
	}
	res := Shuffle(a, b, plan, 4, keyOf)
	checkShuffled(t, in, res, k)
}

func TestShuffleMultiStage(t *testing.T) {
	const n = 5000
	for _, k := range []int{2, 16, 64, 256} {
		for _, fanout := range []int{2, 4, 16} {
			in := makeRecs(n, uint32(k), int64(k*fanout))
			a, b := New[rec](n), New[rec](n)
			a.Fill(in)
			plan, err := NewPlan(k, fanout)
			if err != nil {
				t.Fatal(err)
			}
			res := Shuffle(a, b, plan, 3, keyOf)
			checkShuffled(t, in, res, k)
		}
	}
}

func TestShuffleStagesEquivalent(t *testing.T) {
	// A multi-stage shuffle must produce the same per-bucket multisets as
	// a single-stage shuffle.
	const n, k = 3000, 64
	in := makeRecs(n, k, 7)

	runWith := func(fanout int) [][]rec {
		a, b := New[rec](n), New[rec](n)
		a.Fill(in)
		plan, _ := NewPlan(k, fanout)
		res := Shuffle(a, b, plan, 4, keyOf)
		out := make([][]rec, k)
		for p := 0; p < k; p++ {
			res.Bucket(p, func(run []rec) { out[p] = append(out[p], run...) })
			sort.Slice(out[p], func(i, j int) bool { return out[p][i].Val < out[p][j].Val })
		}
		return out
	}

	single := runWith(64) // 1 stage
	multi := runWith(4)   // 3 stages
	for p := 0; p < k; p++ {
		if len(single[p]) != len(multi[p]) {
			t.Fatalf("bucket %d sizes differ: %d vs %d", p, len(single[p]), len(multi[p]))
		}
		for i := range single[p] {
			if single[p][i] != multi[p][i] {
				t.Fatalf("bucket %d rec %d differs", p, i)
			}
		}
	}
}

func TestShuffleK1(t *testing.T) {
	in := makeRecs(100, 1, 3)
	a, b := New[rec](100), New[rec](100)
	a.Fill(in)
	plan, err := NewPlan(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumStages() != 0 {
		t.Fatalf("K=1 stages = %d", plan.NumStages())
	}
	res := Shuffle(a, b, plan, 2, keyOf)
	checkShuffled(t, in, res, 1)
}

func TestShuffleEmpty(t *testing.T) {
	a, b := New[rec](10), New[rec](10)
	plan, _ := NewPlan(4, 2)
	res := Shuffle(a, b, plan, 3, keyOf)
	if res.Len() != 0 {
		t.Fatalf("Len = %d", res.Len())
	}
	for p := 0; p < 4; p++ {
		if res.BucketLen(p) != 0 {
			t.Fatalf("bucket %d non-empty", p)
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed int64, kexp uint8, n uint16) bool {
		k := 1 << (kexp%8 + 1) // 2..256
		nn := int(n)%2000 + 1
		in := makeRecs(nn, uint32(k), seed)
		a, b := New[rec](nn), New[rec](nn)
		a.Fill(in)
		plan, err := NewPlan(k, 4)
		if err != nil {
			return false
		}
		res := Shuffle(a, b, plan, 4, keyOf)
		total := 0
		for p := 0; p < k; p++ {
			ok := true
			res.Bucket(p, func(run []rec) {
				for _, r := range run {
					if int(r.Key) != p {
						ok = false
					}
				}
			})
			if !ok {
				return false
			}
			total += res.BucketLen(p)
		}
		return total == nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	const workers, per = 8, 1000
	b := New[rec](workers * per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]rec, 0, 100)
			for i := 0; i < per; i++ {
				batch = append(batch, rec{Key: uint32(w), Val: uint32(w*per + i)})
				if len(batch) == cap(batch) {
					if !b.Append(batch) {
						t.Error("append overflow")
						return
					}
					batch = batch[:0]
				}
			}
			if !b.Append(batch) {
				t.Error("append overflow")
			}
		}(w)
	}
	wg.Wait()
	if b.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", b.Len(), workers*per)
	}
	// All values present exactly once.
	seen := make([]bool, workers*per)
	for _, r := range b.Raw() {
		if seen[r.Val] {
			t.Fatalf("value %d duplicated", r.Val)
		}
		seen[r.Val] = true
	}
}

func TestAppendOverflow(t *testing.T) {
	b := New[rec](5)
	if !b.Append(make([]rec, 5)) {
		t.Fatal("append within capacity failed")
	}
	if b.Append(make([]rec, 1)) {
		t.Fatal("append beyond capacity succeeded")
	}
	if b.Len() != 5 {
		t.Fatalf("Len after failed append = %d", b.Len())
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(3, 2); err == nil {
		t.Fatal("K=3 accepted")
	}
	if _, err := NewPlan(8, 3); err == nil {
		t.Fatal("fanout=3 accepted")
	}
	if _, err := NewPlan(0, 2); err == nil {
		t.Fatal("K=0 accepted")
	}
	plan, err := NewPlan(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.NumStages(); got != 5 { // log4(1024) = 5
		t.Fatalf("stages = %d, want 5", got)
	}
	if want := []int{4, 16, 64, 256, 1024}; len(plan.Stages) != len(want) {
		t.Fatalf("stages = %v", plan.Stages)
	}
}

func TestBucketRunsSliceCount(t *testing.T) {
	// With P slices, a bucket has at most P runs (paper §4.2: at most P
	// random accesses to recover a chunk).
	const n, k, p = 10000, 16, 7
	in := makeRecs(n, k, 11)
	a, b := New[rec](n), New[rec](n)
	a.Fill(in)
	plan, _ := NewPlan(k, 4)
	res := Shuffle(a, b, plan, p, keyOf)
	for pt := 0; pt < k; pt++ {
		if runs := res.BucketRuns(pt); len(runs) > p {
			t.Fatalf("bucket %d has %d runs > P=%d", pt, len(runs), p)
		}
	}
}

func TestFillReset(t *testing.T) {
	b := New[rec](10)
	b.Fill([]rec{{1, 1}, {2, 2}})
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 || b.Buckets() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestShuffleReshuffleBucketed(t *testing.T) {
	// Shuffling an already-bucketed buffer to a finer K must work (this is
	// what the layered in-memory engine does inside disk partitions).
	const n = 2000
	in := makeRecs(n, 64, 13)
	a, b := New[rec](n), New[rec](n)
	a.Fill(in)
	coarse, _ := NewPlan(8, 8)
	res := Shuffle(a, b, coarse, 4, func(r rec) uint32 { return r.Key >> 3 })
	// Refine to 64 buckets using the full key.
	fine, _ := NewPlan(64, 8)
	other := a
	if res == a {
		other = b
	}
	res2 := Shuffle(res, other, fine, 4, keyOf)
	checkShuffled(t, in, res2, 64)
}

// TestFoldBucketsMergesDuplicates: after a fold, every (slice, bucket)
// chunk holds at most one record per key, sums are preserved, and the
// buffer's Len/BucketLen reflect the compaction.
func TestFoldBucketsMergesDuplicates(t *testing.T) {
	const n, k = 5000, 16
	rng := rand.New(rand.NewSource(99))
	in := make([]rec, n)
	sums := map[uint32]uint32{}
	for i := range in {
		key := uint32(rng.Intn(k * 4)) // 4 distinct "vertices" per bucket
		in[i] = rec{Key: key, Val: uint32(1 + rng.Intn(10))}
		sums[key] += in[i].Val
	}
	a, b := New[rec](n), New[rec](n)
	a.Fill(in)
	plan, _ := NewPlan(k, 4)
	res := Shuffle(a, b, plan, 3, func(r rec) uint32 { return r.Key / 4 })

	before := res.Len()
	merged := res.FoldBuckets(3, 4, func(bucket int, r rec) uint32 { return r.Key % 4 },
		func(dst *rec, src rec) { dst.Val += src.Val })
	if merged <= 0 {
		t.Fatal("nothing merged from a duplicate-heavy stream")
	}
	if got := res.Len(); got != before-int(merged) {
		t.Fatalf("Len %d after folding %d of %d", got, merged, before)
	}

	got := map[uint32]uint32{}
	total := 0
	for p := 0; p < k; p++ {
		if bl := res.BucketLen(p); bl > 3*4 {
			t.Fatalf("bucket %d still holds %d records over 4 keys x 3 slices", p, bl)
		}
		run := 0
		res.Bucket(p, func(rs []rec) {
			seen := map[uint32]bool{}
			for _, r := range rs {
				if int(r.Key/4) != p {
					t.Fatalf("bucket %d contains key %d", p, r.Key)
				}
				if seen[r.Key] {
					t.Fatalf("bucket %d run %d holds key %d twice after fold", p, run, r.Key)
				}
				seen[r.Key] = true
				got[r.Key] += r.Val
				total++
			}
			run++
		})
	}
	if total != res.Len() {
		t.Fatalf("bucket walk saw %d records, Len says %d", total, res.Len())
	}
	for key, want := range sums {
		if got[key] != want {
			t.Fatalf("key %d: folded sum %d, want %d", key, got[key], want)
		}
	}
}

// TestFoldBucketsSingleBucket: K=1 (append state sliced, one bucket) folds
// across the whole stream.
func TestFoldBucketsSingleBucket(t *testing.T) {
	a, b := New[rec](100), New[rec](100)
	in := make([]rec, 100)
	for i := range in {
		in[i] = rec{Key: uint32(i % 5), Val: 1}
	}
	a.Fill(in)
	plan, _ := NewPlan(1, 2)
	res := Shuffle(a, b, plan, 2, keyOf)
	merged := res.FoldBuckets(2, 5, func(_ int, r rec) uint32 { return r.Key }, func(dst *rec, src rec) { dst.Val += src.Val })
	// Two slices of 50 records with 5 keys each -> at most 10 survivors.
	if res.Len() > 10 {
		t.Fatalf("Len %d after fold, want <= 10", res.Len())
	}
	if merged != int64(100-res.Len()) {
		t.Fatalf("merged %d, Len %d", merged, res.Len())
	}
	var sum uint32
	res.Bucket(0, func(rs []rec) {
		for _, r := range rs {
			sum += r.Val
		}
	})
	if sum != 100 {
		t.Fatalf("folded total %d, want 100", sum)
	}
}

// TestFoldBucketsAppendStatePanics: folding requires bucket structure.
func TestFoldBucketsAppendStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on append-state fold")
		}
	}()
	b := New[rec](10)
	b.Fill([]rec{{1, 1}})
	b.FoldBuckets(1, 1, func(int, rec) uint32 { return 0 }, func(*rec, rec) {})
}

// TestBucketTiles: tiling must concatenate to exactly the Bucket stream,
// cap every tile at tileRecs, never span a run boundary, and be stable
// across repeated walks of an unchanged buffer — the invariant selective
// engines index tile summaries against.
func TestBucketTiles(t *testing.T) {
	const k = 8
	recs := makeRecs(5000, k, 33)
	a := New[rec](len(recs))
	b := New[rec](len(recs))
	a.Append(recs)
	plan, err := NewPlan(k, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := Shuffle(a, b, plan, 3, keyOf)

	for _, tileRecs := range []int{1, 7, 64, 100000, 0, -5} {
		for p := 0; p < k; p++ {
			runEnds := map[int]bool{} // cumulative record offsets of run ends
			off := 0
			res.Bucket(p, func(run []rec) {
				off += len(run)
				runEnds[off] = true
			})

			walk := func() ([]rec, []int) {
				var flat []rec
				var sizes []int
				res.BucketTiles(p, tileRecs, func(tile []rec) {
					flat = append(flat, tile...)
					sizes = append(sizes, len(tile))
				})
				return flat, sizes
			}
			flat, sizes := walk()
			want := collectBucket(res, p)
			if len(flat) != len(want) {
				t.Fatalf("tileRecs=%d p=%d: %d records, want %d", tileRecs, p, len(flat), len(want))
			}
			for i := range flat {
				if flat[i] != want[i] {
					t.Fatalf("tileRecs=%d p=%d: record %d differs", tileRecs, p, i)
				}
			}
			pos := 0
			for _, sz := range sizes {
				if sz == 0 {
					t.Fatalf("tileRecs=%d p=%d: empty tile", tileRecs, p)
				}
				if tileRecs >= 1 && sz > tileRecs {
					t.Fatalf("tileRecs=%d p=%d: tile of %d records", tileRecs, p, sz)
				}
				pos += sz
				// A tile may end inside a run only when it is full-sized:
				// otherwise it must end exactly at a run boundary.
				if (tileRecs < 1 || sz < tileRecs) && !runEnds[pos] {
					t.Fatalf("tileRecs=%d p=%d: short tile ends at %d, not a run boundary", tileRecs, p, pos)
				}
			}
			flat2, sizes2 := walk()
			if len(sizes2) != len(sizes) || len(flat2) != len(flat) {
				t.Fatalf("tileRecs=%d p=%d: second walk differs", tileRecs, p)
			}
			for i := range sizes {
				if sizes[i] != sizes2[i] {
					t.Fatalf("tileRecs=%d p=%d: tile %d resized between walks", tileRecs, p, i)
				}
			}
		}
	}
}

func collectBucket(b *Buffer[rec], p int) []rec {
	var out []rec
	b.Bucket(p, func(run []rec) { out = append(out, run...) })
	return out
}
