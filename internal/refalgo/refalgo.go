// Package refalgo holds textbook single-threaded reference implementations
// (union-find components, Dijkstra, Kruskal, Tarjan SCC, power-iteration
// PageRank) used to validate the edge-centric X-Stream algorithms and the
// baseline engines in tests. None of this code is on any measured path.
package refalgo

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/core"
)

// Components returns, for every vertex, the smallest vertex ID in its
// weakly connected component.
func Components(n int64, edges []core.Edge) []core.VertexID {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		a, b := find(int32(e.Src)), find(int32(e.Dst))
		if a != b {
			parent[a] = b
		}
	}
	minOf := make(map[int32]core.VertexID)
	for v := int64(0); v < n; v++ {
		r := find(int32(v))
		if m, ok := minOf[r]; !ok || core.VertexID(v) < m {
			minOf[r] = core.VertexID(v)
		}
	}
	out := make([]core.VertexID, n)
	for v := int64(0); v < n; v++ {
		out[v] = minOf[find(int32(v))]
	}
	return out
}

// adjacency builds a CSR-ish adjacency list.
func adjacency(n int64, edges []core.Edge) [][]core.Edge {
	adj := make([][]core.Edge, n)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e)
	}
	return adj
}

// Dijkstra returns shortest-path distances from root (math.Inf(1) for
// unreachable vertices). Weights must be non-negative.
func Dijkstra(n int64, edges []core.Edge, root core.VertexID) []float64 {
	adj := adjacency(n, edges)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[root] = 0
	pq := &distHeap{{v: root, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, e := range adj[it.v] {
			nd := it.d + float64(e.Weight)
			if nd < dist[e.Dst] {
				dist[e.Dst] = nd
				heap.Push(pq, distItem{v: e.Dst, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v core.VertexID
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BFSLevels returns hop distances from root (-1 for unreachable).
func BFSLevels(n int64, edges []core.Edge, root core.VertexID) []int32 {
	adj := adjacency(n, edges)
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	frontier := []core.VertexID{root}
	for len(frontier) > 0 {
		var next []core.VertexID
		for _, v := range frontier {
			for _, e := range adj[v] {
				if level[e.Dst] < 0 {
					level[e.Dst] = level[v] + 1
					next = append(next, e.Dst)
				}
			}
		}
		frontier = next
	}
	return level
}

// KruskalWeight returns the total weight of a minimum spanning forest,
// treating each directed record (u,v,w) as an undirected edge.
func KruskalWeight(n int64, edges []core.Edge) float64 {
	type ue struct {
		a, b core.VertexID
		w    float32
	}
	seen := make(map[[2]core.VertexID]float32)
	for _, e := range edges {
		a, b := e.Src, e.Dst
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		k := [2]core.VertexID{a, b}
		if w, ok := seen[k]; !ok || e.Weight < w {
			seen[k] = e.Weight
		}
	}
	list := make([]ue, 0, len(seen))
	for k, w := range seen {
		list = append(list, ue{a: k[0], b: k[1], w: w})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].w < list[j].w })
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	total := 0.0
	for _, e := range list {
		ra, rb := find(int32(e.a)), find(int32(e.b))
		if ra != rb {
			parent[ra] = rb
			total += float64(e.w)
		}
	}
	return total
}

// PageRank runs damped power iteration (d=0.85) for iters rounds with the
// same "rank starts at 1, no dangling redistribution" convention as the
// X-Stream program, so results are comparable bit-for-bit in structure.
func PageRank(n int64, edges []core.Edge, iters int) []float64 {
	deg := make([]int64, n)
	for _, e := range edges {
		deg[e.Src]++
	}
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1
	}
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		for _, e := range edges {
			if deg[e.Src] > 0 {
				next[e.Dst] += rank[e.Src] / float64(deg[e.Src])
			}
		}
		for i := range rank {
			rank[i] = 0.15 + 0.85*next[i]
		}
	}
	return rank
}

// SCC returns a strongly-connected-component id per vertex (ids are
// arbitrary but consistent), via iterative Tarjan.
func SCC(n int64, edges []core.Edge) []int32 {
	adj := make([][]core.VertexID, n)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	const none = int32(-1)
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = none
		comp[i] = none
	}
	var stack []core.VertexID
	var counter, nComp int32

	type frame struct {
		v  core.VertexID
		ei int
	}
	for start := int64(0); start < n; start++ {
		if index[start] != none {
			continue
		}
		var call []frame
		call = append(call, frame{v: core.VertexID(start)})
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.ei == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if index[w] == none {
					call = append(call, frame{v: w})
					advanced = true
					break
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
			}
			if advanced {
				continue
			}
			// post-order
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp
}

// Conductance computes the conductance of subset S: cross-edges divided by
// the smaller of the two degree volumes. inS classifies vertices.
func Conductance(edges []core.Edge, inS func(core.VertexID) bool) float64 {
	var cross, volS, volNotS int64
	for _, e := range edges {
		s := inS(e.Src)
		if s != inS(e.Dst) {
			cross++
		}
		if s {
			volS++
		} else {
			volNotS++
		}
	}
	den := volS
	if volNotS < den {
		den = volNotS
	}
	if den == 0 {
		return 0
	}
	return float64(cross) / float64(den)
}
