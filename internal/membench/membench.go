// Package membench measures main-memory bandwidth the way the paper's
// §5.1 microbenchmarks do: each thread reads from or writes to a private
// buffer far larger than the last-level cache, either sequentially or one
// random cache line at a time. It produces the RAM rows of Figure 11 and
// the curve of Figure 8.
package membench

import (
	"sync"
	"sync/atomic"
	"time"
)

// sink defeats dead-code elimination of the measurement loops.
var sink atomic.Uint64

const cacheLineWords = 8 // 64-byte lines of uint64

// Result is a bandwidth measurement in bytes/second.
type Result struct {
	Threads int
	BPS     float64
}

// run spawns one goroutine per thread, each looping body over its private
// buffer until the deadline, and returns aggregate bytes/second.
func run(threads, bufWords int, minDur time.Duration, body func(buf []uint64) int64) Result {
	var wg sync.WaitGroup
	bytesDone := make([]int64, threads)
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			buf := make([]uint64, bufWords)
			for i := range buf {
				buf[i] = uint64(i)
			}
			var n int64
			for n == 0 || time.Since(start) < minDur {
				n += body(buf)
			}
			bytesDone[t] = n
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	var total int64
	for _, n := range bytesDone {
		total += n
	}
	return Result{Threads: threads, BPS: float64(total) / elapsed}
}

// SequentialRead measures streaming read bandwidth.
func SequentialRead(threads, bufBytes int, dur time.Duration) Result {
	return run(threads, bufBytes/8, dur, func(buf []uint64) int64 {
		var s uint64
		for _, v := range buf {
			s += v
		}
		sink.Add(s)
		return int64(len(buf) * 8)
	})
}

// SequentialWrite measures streaming write bandwidth.
func SequentialWrite(threads, bufBytes int, dur time.Duration) Result {
	return run(threads, bufBytes/8, dur, func(buf []uint64) int64 {
		for i := range buf {
			buf[i] = uint64(i) ^ 0xDEAD
		}
		return int64(len(buf) * 8)
	})
}

// RandomRead measures bandwidth reading one full randomly-chosen cache
// line per access.
func RandomRead(threads, bufBytes int, dur time.Duration) Result {
	return run(threads, bufBytes/8, dur, func(buf []uint64) int64 {
		lines := len(buf) / cacheLineWords
		var s uint64
		x := uint64(88172645463325252)
		const accesses = 1 << 16
		for i := 0; i < accesses; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			off := int(x%uint64(lines)) * cacheLineWords
			for w := 0; w < cacheLineWords; w++ {
				s += buf[off+w]
			}
		}
		sink.Add(s)
		return int64(accesses * cacheLineWords * 8)
	})
}

// RandomWrite measures bandwidth writing one full randomly-chosen cache
// line per access.
func RandomWrite(threads, bufBytes int, dur time.Duration) Result {
	return run(threads, bufBytes/8, dur, func(buf []uint64) int64 {
		lines := len(buf) / cacheLineWords
		x := uint64(1181783497276652981)
		const accesses = 1 << 16
		for i := 0; i < accesses; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			off := int(x%uint64(lines)) * cacheLineWords
			for w := 0; w < cacheLineWords; w++ {
				buf[off+w] = x
			}
		}
		return int64(accesses * cacheLineWords * 8)
	})
}
