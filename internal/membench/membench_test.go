package membench

import (
	"testing"
	"time"
)

const testBuf = 8 << 20 // small buffer: keep tests fast

func TestBandwidthsPositive(t *testing.T) {
	d := 30 * time.Millisecond
	for name, f := range map[string]func(int, int, time.Duration) Result{
		"seqRead":  SequentialRead,
		"seqWrite": SequentialWrite,
		"rndRead":  RandomRead,
		"rndWrite": RandomWrite,
	} {
		r := f(1, testBuf, d)
		if r.BPS <= 0 {
			t.Fatalf("%s: %f B/s", name, r.BPS)
		}
	}
}

func TestSequentialBeatsRandomRead(t *testing.T) {
	d := 80 * time.Millisecond
	seq := SequentialRead(1, 64<<20, d)
	rnd := RandomRead(1, 64<<20, d)
	// The paper measures 4.6x on one core; any honest measurement on any
	// machine shows sequential clearly ahead.
	if seq.BPS < rnd.BPS*1.5 {
		t.Fatalf("sequential %0.f only %.2fx random %0.f", seq.BPS, seq.BPS/rnd.BPS, rnd.BPS)
	}
}
