// Package obs is the observability layer: an in-memory span recorder
// implementing core.Tracer, a Chrome trace-event exporter for the recorded
// (or synthesized) spans, a reflection-driven Prometheus text-format
// renderer for the serving layer's JSON metrics structs, and a fixed-bucket
// histogram for serving latencies.
//
// The recorder is deliberately dumb: it appends fixed-size events under a
// mutex and defers all formatting to export time, so tracing perturbs the
// traced run as little as possible. It must never change what the engines
// compute — the figobs bench experiment pins that work metrics are
// bit-identical with tracing off and unchanged with tracing on.
package obs

import (
	"sync"
	"time"
)

// Event is one recorded span on one track.
type Event struct {
	// Track identifies the logical thread: 0 is the coordinator, 1+w is
	// worker w (mirroring core.Tracer's contract).
	Track int
	// Name is the span name ("run", "iteration", "scatter", "partition", ...).
	Name string
	// Start is the span's wall-clock start.
	Start time.Time
	// Dur is the span's duration.
	Dur time.Duration
	// Args are the span's integer annotations (iteration number, edge
	// counts, ...); may be nil.
	Args map[string]int64
}

// Recorder collects spans in memory. It implements core.Tracer and is safe
// for concurrent use. The zero value is ready to record.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Span records one span. The args map is copied so callers may reuse theirs.
func (r *Recorder) Span(track int, name string, start time.Time, d time.Duration, args map[string]int64) {
	var cp map[string]int64
	if len(args) > 0 {
		cp = make(map[string]int64, len(args))
		for k, v := range args {
			cp[k] = v
		}
	}
	r.mu.Lock()
	r.events = append(r.events, Event{Track: track, Name: name, Start: start, Dur: d, Args: cp})
	r.mu.Unlock()
}

// Events returns a copy of the recorded spans in recording order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len reports how many spans have been recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded spans.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}
