package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestRecorder checks span recording, arg copying and reset.
func TestRecorder(t *testing.T) {
	r := NewRecorder()
	args := map[string]int64{"iter": 3}
	start := time.Unix(100, 0)
	r.Span(0, "scatter", start, 5*time.Millisecond, args)
	args["iter"] = 99 // the recorder must have copied
	r.Span(2, "partition", start.Add(time.Millisecond), time.Millisecond, nil)

	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	ev := r.Events()
	if ev[0].Name != "scatter" || ev[0].Track != 0 || ev[0].Args["iter"] != 3 {
		t.Errorf("event 0 = %+v, want scatter on track 0 with iter=3", ev[0])
	}
	if ev[1].Track != 2 || ev[1].Args != nil {
		t.Errorf("event 1 = %+v, want track 2 with nil args", ev[1])
	}
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Len after Reset = %d", r.Len())
	}
}

// TestChromeTraceSchema validates the exported JSON against the Chrome
// trace-event format: a traceEvents array of complete ("X") events with
// microsecond ts/dur and per-track thread_name metadata ("M") entries.
func TestChromeTraceSchema(t *testing.T) {
	r := NewRecorder()
	base := time.Unix(50, 0)
	r.Span(0, "run", base, 10*time.Millisecond, map[string]int64{"iterations": 2})
	r.Span(1, "partition", base.Add(time.Millisecond), 2*time.Millisecond, map[string]int64{"p": 0, "edges": 7})
	r.Span(0, "iteration", base.Add(time.Millisecond), 4*time.Millisecond, nil)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r.Events()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	var xEvents, meta int
	tracksSeen := map[float64]bool{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		if name == "" {
			t.Errorf("event without name: %v", e)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Errorf("event without numeric pid: %v", e)
		}
		tid, ok := e["tid"].(float64)
		if !ok {
			t.Errorf("event without numeric tid: %v", e)
		}
		switch ph {
		case "X":
			xEvents++
			ts, ok := e["ts"].(float64)
			if !ok || ts < 0 {
				t.Errorf("X event %q needs ts >= 0, got %v", name, e["ts"])
			}
			tracksSeen[tid] = true
		case "M":
			meta++
			if name != "thread_name" {
				t.Errorf("metadata event named %q, want thread_name", name)
			}
			args, _ := e["args"].(map[string]any)
			if _, ok := args["name"].(string); !ok {
				t.Errorf("thread_name metadata without args.name: %v", e)
			}
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	if xEvents != 3 {
		t.Errorf("got %d X events, want 3", xEvents)
	}
	if meta != len(tracksSeen) {
		t.Errorf("got %d thread_name entries for %d tracks", meta, len(tracksSeen))
	}
	// The earliest span must anchor the timeline at ts 0.
	if !strings.Contains(buf.String(), `"ts":0`) {
		t.Errorf("no event at ts 0; export: %s", buf.String())
	}
}

// TestSynthesizeTrace rebuilds a trace from per-iteration stats and checks
// that iteration spans are laid end-to-end and the schema still validates.
func TestSynthesizeTrace(t *testing.T) {
	st := &core.Stats{
		Iterations:     2,
		EdgesStreamed:  30,
		UpdatesSent:    12,
		PreprocessTime: time.Millisecond,
		Iters: []core.IterStats{
			{Iter: 0, Time: 4 * time.Millisecond, ScatterTime: 2 * time.Millisecond, GatherTime: time.Millisecond, EdgesStreamed: 20, UpdatesSent: 10},
			{Iter: 1, Time: 2 * time.Millisecond, ScatterTime: time.Millisecond, GatherTime: time.Millisecond, EdgesStreamed: 10, UpdatesSent: 2},
		},
	}
	events := SynthesizeTrace(st)
	var iters []Event
	var run *Event
	for i := range events {
		switch events[i].Name {
		case "iteration":
			iters = append(iters, events[i])
		case "run":
			run = &events[i]
		}
	}
	if len(iters) != 2 {
		t.Fatalf("got %d iteration spans, want 2", len(iters))
	}
	if got := iters[1].Start.Sub(iters[0].Start); got != iters[0].Dur {
		t.Errorf("iteration 1 starts %v after iteration 0, want %v (end-to-end)", got, iters[0].Dur)
	}
	if iters[0].Args["edges_streamed"] != 20 || iters[1].Args["edges_streamed"] != 10 {
		t.Errorf("iteration args lost the per-iteration counters: %v, %v", iters[0].Args, iters[1].Args)
	}
	if run == nil {
		t.Fatal("no run span")
	}
	if run.Dur != 6*time.Millisecond {
		t.Errorf("run span duration = %v, want 6ms (sum of iterations)", run.Dur)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatalf("WriteChromeTrace on synthesized events: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("synthesized export is not valid JSON")
	}
}
