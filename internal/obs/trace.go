package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
)

// chromeEvent is one entry of the Chrome trace-event JSON array. Complete
// events use ph "X" with microsecond ts/dur; metadata events use ph "M".
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object Perfetto and chrome://tracing load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes events as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps are
// microseconds relative to the earliest span start; tracks become threads
// of one process, named "coordinator" (track 0) and "worker N" (track 1+N).
func WriteChromeTrace(w io.Writer, events []Event) error {
	var epoch time.Time
	for _, e := range events {
		if epoch.IsZero() || e.Start.Before(epoch) {
			epoch = e.Start
		}
	}
	tracks := map[int]bool{}
	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = make([]chromeEvent, 0, len(events)+4)
	for _, e := range events {
		tracks[e.Track] = true
		ce := chromeEvent{
			Name: e.Name, Ph: "X",
			Ts:  e.Start.Sub(epoch).Microseconds(),
			Dur: e.Dur.Microseconds(),
			Pid: 1, Tid: e.Track,
		}
		if len(e.Args) > 0 {
			ce.Args = make(map[string]any, len(e.Args))
			for k, v := range e.Args {
				ce.Args[k] = v
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	ids := make([]int, 0, len(tracks))
	for t := range tracks {
		ids = append(ids, t)
	}
	sort.Ints(ids)
	for _, t := range ids {
		name := "coordinator"
		if t > 0 {
			name = fmt.Sprintf("worker %d", t-1)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: t,
			Args: map[string]any{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// SynthesizeTrace rebuilds a span list from a finished run's per-iteration
// profile (Stats.Iters), for runs that executed without a live tracer — the
// serving path, where passes are shared and per-job tracers would observe
// each other. Iterations are laid end-to-end from a fixed epoch with their
// recorded durations; each carries scatter/shuffle/gather child spans and
// the iteration's work counters as args. A preprocess span precedes the
// first iteration when the stats record preprocessing time.
func SynthesizeTrace(stats *core.Stats) []Event {
	epoch := time.Unix(0, 0).UTC()
	at := epoch
	events := make([]Event, 0, 4*len(stats.Iters)+2)
	if stats.PreprocessTime > 0 {
		events = append(events, Event{Track: 0, Name: "preprocess", Start: at, Dur: stats.PreprocessTime})
		at = at.Add(stats.PreprocessTime)
	}
	runStart := at
	for i := range stats.Iters {
		it := &stats.Iters[i]
		iterArgs := map[string]int64{
			"iter":             int64(it.Iter),
			"edges_streamed":   it.EdgesStreamed,
			"edges_skipped":    it.EdgesSkipped,
			"updates_sent":     it.UpdatesSent,
			"updates_combined": it.UpdatesCombined,
			"bytes_read":       it.BytesRead,
		}
		events = append(events, Event{Track: 0, Name: "iteration", Start: at, Dur: it.Time, Args: iterArgs})
		phaseAt := at
		for _, ph := range []struct {
			name string
			dur  time.Duration
		}{
			{"scatter", it.ScatterTime},
			{"shuffle", it.ShuffleTime},
			{"gather", it.GatherTime},
		} {
			if ph.dur <= 0 {
				continue
			}
			events = append(events, Event{
				Track: 1, Name: ph.name, Start: phaseAt, Dur: ph.dur,
				Args: map[string]int64{"iter": int64(it.Iter)},
			})
			phaseAt = phaseAt.Add(ph.dur)
		}
		if it.Time > 0 {
			at = at.Add(it.Time)
		} else {
			at = phaseAt
		}
	}
	events = append(events, Event{
		Track: 0, Name: "run", Start: runStart, Dur: at.Sub(runStart),
		Args: map[string]int64{
			"iterations":     int64(stats.Iterations),
			"edges_streamed": stats.EdgesStreamed,
			"updates_sent":   stats.UpdatesSent,
		},
	})
	return events
}
