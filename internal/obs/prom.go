package obs

import (
	"fmt"
	"io"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format version 0.0.4, which WriteProm and Histogram.WriteProm emit.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders v — a struct whose fields carry JSON tags, like
// jobs.Metrics — in the Prometheus text exposition format. Every numeric
// field becomes a gauge named prefix_<json tag>; nested structs recurse
// with their tag appended to the prefix; a map[string]struct field becomes
// labeled series, the label named by the field's tag minus a trailing "s"
// (Tenants → tenant). Non-numeric fields are skipped. Keys are emitted in
// a deterministic order so expositions diff cleanly.
func WriteProm(w io.Writer, prefix string, v any) error {
	pw := &promWriter{w: w}
	pw.walk(prefix, reflect.ValueOf(v), "")
	return pw.err
}

// promWriter accumulates the exposition, failing sticky on the first write
// error.
type promWriter struct {
	w   io.Writer
	err error
}

func (pw *promWriter) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// walk renders one value under the given name prefix. labels is the
// already-rendered label clause ("" or `{tenant="x"}`).
func (pw *promWriter) walk(prefix string, v reflect.Value, labels string) {
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return
		}
		v = v.Elem()
	}
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := jsonName(f)
			if tag == "" {
				continue
			}
			fv := v.Field(i)
			switch fv.Kind() {
			case reflect.Map:
				pw.walkMap(prefix, tag, fv)
			default:
				pw.walk(prefix+"_"+tag, fv, labels)
			}
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		pw.gauge(prefix, labels, strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		pw.gauge(prefix, labels, strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		pw.gauge(prefix, labels, strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.Bool:
		b := "0"
		if v.Bool() {
			b = "1"
		}
		pw.gauge(prefix, labels, b)
	}
}

// walkMap renders a map[string]struct field as labeled series: the label
// name is the field's tag minus a trailing "s", and every numeric field of
// the element struct becomes prefix_<label>_<field>{<label>="key"}.
func (pw *promWriter) walkMap(prefix, tag string, m reflect.Value) {
	if m.Type().Key().Kind() != reflect.String {
		return
	}
	label := strings.TrimSuffix(tag, "s")
	keys := make([]string, 0, m.Len())
	for _, k := range m.MapKeys() {
		keys = append(keys, k.String())
	}
	sort.Strings(keys)
	for _, k := range keys {
		labels := fmt.Sprintf("{%s=%q}", label, k)
		pw.walk(prefix+"_"+label, m.MapIndex(reflect.ValueOf(k)), labels)
	}
}

func (pw *promWriter) gauge(name, labels, value string) {
	pw.printf("# TYPE %s gauge\n%s%s %s\n", name, name, labels, value)
}

// jsonName extracts the field's JSON tag name, "" for skipped fields.
func jsonName(f reflect.StructField) string {
	tag := f.Tag.Get("json")
	if tag == "-" {
		return ""
	}
	name, _, _ := strings.Cut(tag, ",")
	if name == "" {
		name = strings.ToLower(f.Name)
	}
	return name
}

// DurationBuckets are the default histogram bounds, in seconds, for
// serving-layer latencies (queue wait, run and iteration durations).
var DurationBuckets = []float64{.001, .005, .01, .05, .1, .5, 1, 5, 10, 30, 60}

// SizeBuckets are the default histogram bounds for small counts, like jobs
// per shared pass.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Histogram is a fixed-bucket Prometheus histogram. It is safe for
// concurrent use; the zero value is unusable — construct with NewHistogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // one per bound, plus the +Inf overflow at the end
	sum    float64
	total  uint64
}

// NewHistogram returns a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count reports how many samples have been observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// WriteProm renders the histogram in the Prometheus text format with
// cumulative _bucket series, _sum and _count.
func (h *Histogram) WriteProm(w io.Writer, name string) error {
	h.mu.Lock()
	bounds := h.bounds
	counts := make([]uint64, len(h.counts))
	copy(counts, h.counts)
	sum, total := h.sum, h.total
	h.mu.Unlock()

	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, total, name, strconv.FormatFloat(sum, 'g', -1, 64), name, total)
	return err
}
