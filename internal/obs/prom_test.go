package obs

import (
	"bytes"
	"strings"
	"testing"
)

type promInner struct {
	Resident int64 `json:"resident_bytes"`
}

type promTenant struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
}

type promOuter struct {
	Submitted int64                 `json:"submitted"`
	Ratio     float64               `json:"ratio"`
	Skipped   string                `json:"skipped"`
	Flag      bool                  `json:"flag"`
	Inner     promInner             `json:"datasets"`
	Tenants   map[string]promTenant `json:"tenants,omitempty"`
}

// TestWriteProm checks gauge rendering, nested-struct prefixes and
// map-to-label translation.
func TestWriteProm(t *testing.T) {
	v := promOuter{
		Submitted: 7, Ratio: 0.5, Skipped: "no", Flag: true,
		Inner:   promInner{Resident: 123},
		Tenants: map[string]promTenant{"acme": {Queued: 2, Running: 1}, "beta": {Queued: 0, Running: 3}},
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, "xserve", v); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE xserve_submitted gauge\nxserve_submitted 7\n",
		"xserve_ratio 0.5\n",
		"xserve_flag 1\n",
		"xserve_datasets_resident_bytes 123\n",
		"xserve_tenant_queued{tenant=\"acme\"} 2\n",
		"xserve_tenant_running{tenant=\"beta\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	if strings.Contains(out, "skipped") {
		t.Errorf("string field leaked into the exposition:\n%s", out)
	}
	// Deterministic ordering: the acme tenant sorts before beta.
	if strings.Index(out, `tenant="acme"`) > strings.Index(out, `tenant="beta"`) {
		t.Errorf("tenant series not sorted:\n%s", out)
	}
}

// TestHistogram checks cumulative bucket rendering and sum/count.
func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 2, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	var buf bytes.Buffer
	if err := h.WriteProm(&buf, "xserve_run_seconds"); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE xserve_run_seconds histogram\n",
		"xserve_run_seconds_bucket{le=\"1\"} 1\n",
		"xserve_run_seconds_bucket{le=\"5\"} 3\n",
		"xserve_run_seconds_bucket{le=\"10\"} 4\n",
		"xserve_run_seconds_bucket{le=\"+Inf\"} 5\n",
		"xserve_run_seconds_sum 112.5\n",
		"xserve_run_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q; got:\n%s", want, out)
		}
	}
}

// TestHistogramBoundary pins that a sample equal to a bound lands in that
// bound's bucket (le is inclusive, as Prometheus defines it).
func TestHistogramBoundary(t *testing.T) {
	h := NewHistogram([]float64{1, 5})
	h.Observe(1)
	var buf bytes.Buffer
	if err := h.WriteProm(&buf, "x"); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	if !strings.Contains(buf.String(), "x_bucket{le=\"1\"} 1\n") {
		t.Errorf("sample at bound not counted le-inclusively:\n%s", buf.String())
	}
}
