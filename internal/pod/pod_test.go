package pod

import (
	"testing"
	"testing/quick"
)

type rec struct {
	A uint32
	B float32
	C [3]uint16
}

type badPtr struct {
	P *int
}

type badNested struct {
	Inner struct {
		S []byte
	}
}

func TestSize(t *testing.T) {
	if got := Size[uint64](); got != 8 {
		t.Fatalf("Size[uint64] = %d, want 8", got)
	}
	if got := Size[rec](); got != 16 { // 4+4+6 padded to 16
		t.Fatalf("Size[rec] = %d, want 16", got)
	}
}

func TestCheck(t *testing.T) {
	if err := Check[rec](); err != nil {
		t.Fatalf("Check[rec]: %v", err)
	}
	if err := Check[float64](); err != nil {
		t.Fatalf("Check[float64]: %v", err)
	}
	if err := Check[badPtr](); err == nil {
		t.Fatal("Check[badPtr] should fail")
	}
	if err := Check[badNested](); err == nil {
		t.Fatal("Check[badNested] should fail")
	}
	if err := Check[map[int]int](); err == nil {
		t.Fatal("Check[map] should fail")
	}
}

func TestRoundTrip(t *testing.T) {
	in := []rec{{1, 2.5, [3]uint16{7, 8, 9}}, {3, -1, [3]uint16{0, 1, 2}}}
	b := AsBytes(in)
	if len(b) != 2*Size[rec]() {
		t.Fatalf("AsBytes len = %d", len(b))
	}
	out := FromBytes[rec](b)
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	// Aliasing: mutating the bytes mutates the records.
	b[0] = 42
	if out[0].A&0xff != 42 {
		t.Fatalf("expected aliasing, got %+v", out[0])
	}
}

func TestEmpty(t *testing.T) {
	if AsBytes[rec](nil) != nil {
		t.Fatal("AsBytes(nil) should be nil")
	}
	if FromBytes[rec](nil) != nil {
		t.Fatal("FromBytes(nil) should be nil")
	}
}

func TestFromBytesPanicsOnPartialRecord(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on partial record")
		}
	}()
	FromBytes[rec](make([]byte, Size[rec]()+1))
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		got := FromBytes[uint64](AsBytes(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
