// Package pod provides zero-copy reinterpretation between slices of
// fixed-size plain-old-data records and raw bytes.
//
// The out-of-core engine stores vertices, edges and updates as fixed-size
// native-endian records. Rather than forcing every algorithm to implement an
// encoder, any pointer-free struct can be written to and read from storage
// directly. This mirrors the original X-Stream, which likewise wrote raw
// structs to its partition files.
//
// Types used with this package must not contain pointers, maps, slices,
// channels, functions or interfaces: Check (or CheckType) enforces this at
// setup time so misuse fails loudly rather than corrupting files.
package pod

import (
	"fmt"
	"reflect"
	"unsafe"
)

// Size returns the in-memory size in bytes of one record of type T,
// including any compiler-inserted padding.
func Size[T any]() int {
	var v T
	return int(unsafe.Sizeof(v))
}

// Check verifies that T is a valid POD record type: fixed size and free of
// pointers. It returns an error describing the first offending field.
func Check[T any]() error {
	var v T
	return CheckType(reflect.TypeOf(v))
}

// CheckType is the non-generic form of Check.
func CheckType(t reflect.Type) error {
	if t == nil {
		return fmt.Errorf("pod: nil type")
	}
	return checkType(t, t.String())
}

func checkType(t reflect.Type, path string) error {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return nil
	case reflect.Array:
		return checkType(t.Elem(), path+"[i]")
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if err := checkType(f.Type, path+"."+f.Name); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("pod: %s has kind %s, which cannot be stored as a raw record", path, t.Kind())
	}
}

// AsBytes reinterprets a slice of records as its backing bytes without
// copying. The returned slice aliases s.
func AsBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	n := len(s) * Size[T]()
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), n)
}

// FromBytes reinterprets raw bytes as a slice of records without copying.
// len(b) must be a multiple of Size[T](); FromBytes panics otherwise, since
// a partial trailing record always indicates file corruption or a caller
// bug, never a recoverable condition.
func FromBytes[T any](b []byte) []T {
	if len(b) == 0 {
		return nil
	}
	sz := Size[T]()
	if len(b)%sz != 0 {
		panic(fmt.Sprintf("pod: byte slice length %d is not a multiple of record size %d", len(b), sz))
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/sz)
}
