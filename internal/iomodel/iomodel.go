// Package iomodel evaluates the external-memory (I/O model, Aggarwal &
// Vitter) cost bounds of the paper's Figure 26 for X-Stream, GraphChi and
// the sort-then-random-access approach, and instantiates them numerically.
// Fewer I/Os means a faster algorithm; the table shows X-Stream winning on
// low-diameter graphs and degrading with diameter.
package iomodel

import "math"

// Params instantiates the I/O model.
type Params struct {
	V int64 // vertex state size in words
	E int64 // edge list size in words
	U int64 // update list size in words (per iteration)
	M int64 // fast memory size in words
	B int64 // transfer block size in words
	D int64 // graph diameter (number of scatter phases)
}

// XStreamPartitions is K = |V|/M (§3.4 simplified).
func XStreamPartitions(p Params) int64 {
	k := (p.V + p.M - 1) / p.M
	if k < 1 {
		k = 1
	}
	return k
}

// GraphChiShards is |E|/M: shards must hold their edges in memory.
func GraphChiShards(p Params) int64 {
	k := (p.E + p.M - 1) / p.M
	if k < 1 {
		k = 1
	}
	return k
}

// logMB is log base M/B of x, clamped to >= 1 (at least one pass).
func logMB(p Params, x float64) float64 {
	base := float64(p.M) / float64(p.B)
	if base <= 1 || x <= 1 {
		return 1
	}
	l := math.Log(x) / math.Log(base)
	if l < 1 {
		return 1
	}
	return l
}

// XStreamOneIter is the paper's per-iteration bound:
// (|V|+|E|)/B + (|U|/B)·log_{M/B}(K).
func XStreamOneIter(p Params) float64 {
	k := float64(XStreamPartitions(p))
	return float64(p.V+p.E)/float64(p.B) + float64(p.U)/float64(p.B)*logMB(p, k)
}

// XStreamTotal is D iterations of the scatter-gather loop:
// D·((|V|+|E|)/B + (|E|/B)·log_{M/B}(K)), using |E| as the update bound.
func XStreamTotal(p Params) float64 {
	k := float64(XStreamPartitions(p))
	return float64(p.D) * (float64(p.V+p.E)/float64(p.B) + float64(p.E)/float64(p.B)*logMB(p, k))
}

// GraphChiOneIter is |E|/B + K² (as reported in the GraphChi paper).
func GraphChiOneIter(p Params) float64 {
	k := float64(GraphChiShards(p))
	return float64(p.E)/float64(p.B) + k*k
}

// GraphChiTotal is D iterations.
func GraphChiTotal(p Params) float64 {
	return float64(p.D) * GraphChiOneIter(p)
}

// SortPreprocess is the external-sort bound for building the sorted,
// indexed edge list: (|E|/B)·log_{M/B}(min(|V|, |E|/M)).
func SortPreprocess(p Params) float64 {
	arg := float64(p.V)
	if em := float64(p.E) / float64(p.M); em < arg {
		arg = em
	}
	return float64(p.E) / float64(p.B) * logMB(p, arg)
}

// SortTotal adds the random-access traversal: |V| + |E| I/Os (one block
// fetch per vertex and per edge in the worst case), independent of D.
func SortTotal(p Params) float64 {
	return SortPreprocess(p) + float64(p.V+p.E)
}
