package iomodel

import "testing"

// paperish mirrors a billion-edge graph: 1G edge words, 64M vertex words,
// 1M-word memory, 1K-word blocks.
func paperish(d int64) Params {
	return Params{V: 64 << 20, E: 1 << 30, U: 1 << 30, M: 1 << 27, B: 1 << 10, D: d}
}

func TestXStreamBeatsSortOnLowDiameter(t *testing.T) {
	p := paperish(16)
	if XStreamTotal(p) >= SortTotal(p) {
		t.Fatalf("low diameter: xstream %.3g should beat sort+random %.3g",
			XStreamTotal(p), SortTotal(p))
	}
}

func TestSortWinsOnHugeDiameter(t *testing.T) {
	p := paperish(1 << 20) // pathological diameter
	if XStreamTotal(p) <= SortTotal(p) {
		t.Fatalf("huge diameter: sort+random %.3g should beat xstream %.3g",
			SortTotal(p), XStreamTotal(p))
	}
}

func TestXStreamFewerPartitionsThanGraphChi(t *testing.T) {
	p := paperish(16)
	if XStreamPartitions(p) >= GraphChiShards(p) {
		t.Fatalf("partitions %d must undercut shards %d (edges >> vertices)",
			XStreamPartitions(p), GraphChiShards(p))
	}
}

func TestXStreamBeatsGraphChiWhenMemoryTight(t *testing.T) {
	// GraphChi's K² window-I/O term explodes as memory shrinks relative
	// to the edge set (K = |E|/M shards); X-Stream's K = |V|/M stays tiny
	// because partitions only hold vertex state. This is the Figure 26
	// claim that X-Stream "scales better than Graphchi on I/Os".
	p := Params{V: 64 << 20, E: 16 << 30, U: 16 << 30, M: 1 << 20, B: 1 << 10, D: 16}
	if XStreamOneIter(p) >= GraphChiOneIter(p) {
		t.Fatalf("xstream per-iter %.3g should beat graphchi %.3g",
			XStreamOneIter(p), GraphChiOneIter(p))
	}
	// And the gap grows as memory shrinks further.
	p2 := p
	p2.M = 1 << 18
	gap1 := GraphChiOneIter(p) / XStreamOneIter(p)
	gap2 := GraphChiOneIter(p2) / XStreamOneIter(p2)
	if gap2 <= gap1 {
		t.Fatalf("gap should widen with smaller memory: %.1fx -> %.1fx", gap1, gap2)
	}
}

func TestScalesWithDiameter(t *testing.T) {
	a, b := paperish(4), paperish(8)
	ra := XStreamTotal(b) / XStreamTotal(a)
	if ra < 1.9 || ra > 2.1 {
		t.Fatalf("doubling D should double X-Stream I/Os, got %.2fx", ra)
	}
	// Sort+random is diameter-independent.
	if SortTotal(a) != SortTotal(b) {
		t.Fatal("sort total should not depend on D")
	}
}

func TestDegenerateParams(t *testing.T) {
	p := Params{V: 10, E: 10, U: 10, M: 1 << 20, B: 8, D: 1}
	if XStreamPartitions(p) != 1 {
		t.Fatalf("tiny graph needs 1 partition, got %d", XStreamPartitions(p))
	}
	if XStreamTotal(p) <= 0 || SortTotal(p) <= 0 || GraphChiTotal(p) <= 0 {
		t.Fatal("costs must be positive")
	}
}
