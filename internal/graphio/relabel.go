package graphio

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pod"
	"repro/internal/storage"
)

// Relabeled returns an EdgeSource streaming src with both endpoints of
// every edge rewritten through perm (original ID -> relabeled ID). It is a
// pure streaming transformation, the remap stage engines insert between
// the input edge list and their partition shuffle when a locality-aware
// Partitioner is active. A nil perm returns src unchanged. perm must have
// exactly src.NumVertices() entries; a mismatch surfaces as an error from
// Edges rather than a panic mid-stream.
func Relabeled(src core.EdgeSource, perm []core.VertexID) core.EdgeSource {
	if perm == nil {
		return src
	}
	return &relabeledSource{inner: src, perm: perm}
}

type relabeledSource struct {
	inner core.EdgeSource
	perm  []core.VertexID
}

func (r *relabeledSource) NumVertices() int64 { return r.inner.NumVertices() }
func (r *relabeledSource) NumEdges() int64    { return r.inner.NumEdges() }

func (r *relabeledSource) Edges(fn func([]core.Edge) error) error {
	if int64(len(r.perm)) != r.inner.NumVertices() {
		return fmt.Errorf("graphio: relabel permutation has %d entries for %d vertices", len(r.perm), r.inner.NumVertices())
	}
	n := core.VertexID(len(r.perm))
	buf := make([]core.Edge, 0, 64<<10)
	return r.inner.Edges(func(batch []core.Edge) error {
		// Batches alias the inner source's buffers; rewrite into our own.
		if cap(buf) < len(batch) {
			buf = make([]core.Edge, 0, len(batch))
		}
		buf = buf[:len(batch)]
		for i, e := range batch {
			if e.Src >= n || e.Dst >= n {
				return fmt.Errorf("graphio: edge (%d,%d) references a vertex outside [0,%d)", e.Src, e.Dst, n)
			}
			buf[i] = core.Edge{Src: r.perm[e.Src], Dst: r.perm[e.Dst], Weight: e.Weight}
		}
		return fn(buf)
	})
}

// WriteRelabeledEdges rewrites src through perm and writes the result as a
// binary edge file on dev — the offline remap for graphs processed many
// times, so the relabeling pass is paid once instead of per run.
func WriteRelabeledEdges(dev storage.Device, name string, src core.EdgeSource, perm []core.VertexID) error {
	return WriteEdges(dev, name, Relabeled(src, perm))
}

// permMagic identifies binary permutation files (version 1). A permutation
// file stores the relabeled->original inverse map alongside a relabeled
// edge file, so results computed over the rewritten graph can be reported
// in the original ID space.
var permMagic = [8]byte{'X', 'S', 'P', 'E', 'R', 'M', '1', '\n'}

// permMagic2 identifies version-2 permutation files, which append the
// assignment's replication metadata after the permutation: a hub count
// followed by the mirrored vertices' execution IDs in ascending order.
// Version-1 files remain readable (they simply carry no mirrors), so
// permutations persisted before replication existed keep loading.
var permMagic2 = [8]byte{'X', 'S', 'P', 'E', 'R', 'M', '2', '\n'}

// permMagic3 identifies version-3 permutation files, the format the writer
// emits today. Version 3 widens the header to 24 bytes — magic, entry
// count, and a flags word whose low bit records whether replication
// metadata follows — and appends a CRC32C trailer covering everything
// between the magic and the trailer. A permutation steers every edge of
// every later run, so a silently corrupted file would skew results with
// no visible failure; the checksum turns that into a typed
// storage.ErrCorrupted at load time. Versions 1 and 2 keep loading
// unverified, so existing datasets need no migration.
var permMagic3 = [8]byte{'X', 'S', 'P', 'E', 'R', 'M', '3', '\n'}

const (
	permV3HeaderLen = 24
	permFlagMirrors = 1 << 0 // a mirror count + hub list follows the permutation
)

// writeFullAt writes all of b at off, retrying short writes.
func writeFullAt(f storage.File, b []byte, off int64) error {
	for len(b) > 0 {
		n, err := f.WriteAt(b, off)
		if err != nil {
			return err
		}
		if n <= 0 {
			return fmt.Errorf("write stalled at offset %d", off)
		}
		off += int64(n)
		b = b[n:]
	}
	return nil
}

// readFullAt reads len(b) bytes at off, retrying legal short reads.
func readFullAt(f storage.File, b []byte, off int64) error {
	for len(b) > 0 {
		n, err := f.ReadAt(b, off)
		if n > 0 {
			off += int64(n)
			b = b[n:]
			continue
		}
		if err == nil || err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// WritePermutation stores a vertex ID map as a binary permutation file
// with no replication metadata.
func WritePermutation(dev storage.Device, name string, perm []core.VertexID) error {
	return WritePermutationMirrors(dev, name, perm, nil)
}

// WritePermutationMirrors stores a vertex ID map plus the mirrored-hub
// list of a replication-aware assignment as a checksummed version-3 file.
// A nil hub list omits the replication section entirely (and reloads as
// nil), keeping the v1/v2 distinction between "no mirror metadata" and
// "zero mirrors".
func WritePermutationMirrors(dev storage.Device, name string, perm, hubs []core.VertexID) error {
	f, err := dev.Create(name)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		return fmt.Errorf("graphio: write %s: %w", name, err)
	}
	hdr := make([]byte, permV3HeaderLen)
	copy(hdr, permMagic3[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(perm)))
	var flags uint64
	if hubs != nil {
		flags |= permFlagMirrors
	}
	binary.LittleEndian.PutUint64(hdr[16:], flags)
	if err := writeFullAt(f, hdr, 0); err != nil {
		return fail(err)
	}
	crc := storage.ChecksumUpdate(0, hdr[8:])
	off := int64(permV3HeaderLen)
	writePart := func(b []byte) error {
		if err := writeFullAt(f, b, off); err != nil {
			return err
		}
		crc = storage.ChecksumUpdate(crc, b)
		off += int64(len(b))
		return nil
	}
	if len(perm) > 0 {
		if err := writePart(pod.AsBytes(perm)); err != nil {
			return fail(err)
		}
	}
	if hubs != nil {
		cnt := make([]byte, 8)
		binary.LittleEndian.PutUint64(cnt, uint64(len(hubs)))
		if err := writePart(cnt); err != nil {
			return fail(err)
		}
		if len(hubs) > 0 {
			if err := writePart(pod.AsBytes(hubs)); err != nil {
				return fail(err)
			}
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)
	if err := writeFullAt(f, trailer[:], off); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("graphio: write %s: %w", name, err)
	}
	return nil
}

// ReadPermutation loads a binary permutation file and validates that it is
// a permutation of [0, n). Version-2 replication metadata, if present, is
// ignored; use ReadPermutationMirrors to recover it.
func ReadPermutation(dev storage.Device, name string) ([]core.VertexID, error) {
	perm, _, err := ReadPermutationMirrors(dev, name)
	return perm, err
}

// ReadPermutationMirrors loads a binary permutation file plus its
// replication metadata: the mirrored hubs as execution (relabeled) IDs,
// strictly ascending. Version-1 files return nil hubs. Version-3 files
// are checksum-verified before a single field is trusted; a mismatch
// surfaces as an error wrapping storage.ErrCorrupted.
func ReadPermutationMirrors(dev storage.Device, name string) (perm, hubs []core.VertexID, err error) {
	f, err := dev.Open(name)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if f.Size() < 16 {
		return nil, nil, fmt.Errorf("graphio: %s: not a permutation file", name)
	}
	hdr := make([]byte, 16)
	if err := readFullAt(f, hdr, 0); err != nil {
		return nil, nil, err
	}
	if string(hdr[:8]) == string(permMagic3[:]) {
		return readPermV3(f, name)
	}
	v2 := string(hdr[:8]) == string(permMagic2[:])
	if !v2 && string(hdr[:8]) != string(permMagic[:]) {
		return nil, nil, fmt.Errorf("graphio: %s: not a permutation file", name)
	}
	n := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if want := int64(len(hdr)) + n*4; f.Size() < want {
		return nil, nil, fmt.Errorf("graphio: %s: truncated: %d bytes, want %d", name, f.Size(), want)
	}
	perm = make([]core.VertexID, n)
	if n > 0 {
		if err := readFullAt(f, pod.AsBytes(perm), int64(len(hdr))); err != nil {
			return nil, nil, err
		}
	}
	if err := validatePermEntries(name, perm); err != nil {
		return nil, nil, err
	}
	if !v2 {
		return perm, nil, nil
	}
	off := int64(len(hdr)) + n*4
	// The hub count must actually be present: a v2 file cut right after
	// the permutation would otherwise read as zero hubs and silently
	// drop the mirror set.
	if f.Size() < off+8 {
		return nil, nil, fmt.Errorf("graphio: %s: truncated mirror header: %d bytes, want %d", name, f.Size(), off+8)
	}
	cnt := make([]byte, 8)
	if err := readFullAt(f, cnt, off); err != nil {
		return nil, nil, err
	}
	h := int64(binary.LittleEndian.Uint64(cnt))
	if h < 0 || h > n {
		return nil, nil, fmt.Errorf("graphio: %s: %d mirrored hubs for %d vertices", name, h, n)
	}
	if want := off + 8 + h*4; f.Size() < want {
		return nil, nil, fmt.Errorf("graphio: %s: truncated mirror list: %d bytes, want %d", name, f.Size(), want)
	}
	hubs = make([]core.VertexID, h)
	if h > 0 {
		if err := readFullAt(f, pod.AsBytes(hubs), off+8); err != nil {
			return nil, nil, err
		}
	}
	if err := validateHubEntries(name, hubs, n); err != nil {
		return nil, nil, err
	}
	return perm, hubs, nil
}

// readPermV3 loads a version-3 permutation file. The trailer checksum is
// verified over the whole payload before any field is interpreted, so a
// flipped bit anywhere — header, permutation, mirror list — is reported
// as storage.ErrCorrupted rather than loaded.
func readPermV3(f storage.File, name string) (perm, hubs []core.VertexID, err error) {
	corrupt := func(detail string) error {
		return fmt.Errorf("graphio: %s: %s: %w", name, detail, storage.ErrCorrupted)
	}
	size := f.Size()
	if size < permV3HeaderLen+4 {
		return nil, nil, corrupt(fmt.Sprintf("truncated: %d bytes", size))
	}
	hdr := make([]byte, permV3HeaderLen)
	if err := readFullAt(f, hdr, 0); err != nil {
		return nil, nil, err
	}
	crc := storage.ChecksumUpdate(0, hdr[8:])
	buf := make([]byte, 1<<20)
	end := size - 4
	for off := int64(permV3HeaderLen); off < end; {
		n := int64(len(buf))
		if n > end-off {
			n = end - off
		}
		if err := readFullAt(f, buf[:n], off); err != nil {
			return nil, nil, err
		}
		crc = storage.ChecksumUpdate(crc, buf[:n])
		off += n
	}
	var trailer [4]byte
	if err := readFullAt(f, trailer[:], end); err != nil {
		return nil, nil, err
	}
	if binary.LittleEndian.Uint32(trailer[:]) != crc {
		return nil, nil, corrupt("checksum mismatch")
	}

	n := int64(binary.LittleEndian.Uint64(hdr[8:]))
	flags := binary.LittleEndian.Uint64(hdr[16:])
	if n < 0 || n > (size-permV3HeaderLen-4)/4 {
		return nil, nil, corrupt(fmt.Sprintf("%d entries in a %d-byte file", n, size))
	}
	off := int64(permV3HeaderLen)
	perm = make([]core.VertexID, n)
	if n > 0 {
		if err := readFullAt(f, pod.AsBytes(perm), off); err != nil {
			return nil, nil, err
		}
	}
	off += n * 4
	if flags&permFlagMirrors != 0 {
		if size < off+8+4 {
			return nil, nil, corrupt("truncated mirror header")
		}
		cnt := make([]byte, 8)
		if err := readFullAt(f, cnt, off); err != nil {
			return nil, nil, err
		}
		h := int64(binary.LittleEndian.Uint64(cnt))
		if h < 0 || h > n {
			return nil, nil, corrupt(fmt.Sprintf("%d mirrored hubs for %d vertices", h, n))
		}
		off += 8
		hubs = make([]core.VertexID, h)
		if h > 0 {
			if err := readFullAt(f, pod.AsBytes(hubs), off); err != nil {
				return nil, nil, err
			}
		}
		off += h * 4
	}
	if off+4 != size {
		return nil, nil, corrupt(fmt.Sprintf("%d bytes, sections account for %d", size, off+4))
	}
	if err := validatePermEntries(name, perm); err != nil {
		return nil, nil, err
	}
	if err := validateHubEntries(name, hubs, n); err != nil {
		return nil, nil, err
	}
	return perm, hubs, nil
}

// validatePermEntries checks that perm is a permutation of [0, len(perm)).
func validatePermEntries(name string, perm []core.VertexID) error {
	n := int64(len(perm))
	seen := make([]bool, n)
	for i, v := range perm {
		if int64(v) >= n || seen[v] {
			return fmt.Errorf("graphio: %s: entry %d = %d is not part of a permutation of [0,%d)", name, i, v, n)
		}
		seen[v] = true
	}
	return nil
}

// validateHubEntries checks that hubs is strictly ascending in [0, n).
func validateHubEntries(name string, hubs []core.VertexID, n int64) error {
	for i, hv := range hubs {
		if int64(hv) >= n || (i > 0 && hv <= hubs[i-1]) {
			return fmt.Errorf("graphio: %s: mirror entry %d = %d is not strictly ascending in [0,%d)", name, i, hv, n)
		}
	}
	return nil
}
