package graphio

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pod"
	"repro/internal/storage"
)

// Relabeled returns an EdgeSource streaming src with both endpoints of
// every edge rewritten through perm (original ID -> relabeled ID). It is a
// pure streaming transformation, the remap stage engines insert between
// the input edge list and their partition shuffle when a locality-aware
// Partitioner is active. A nil perm returns src unchanged. perm must have
// exactly src.NumVertices() entries; a mismatch surfaces as an error from
// Edges rather than a panic mid-stream.
func Relabeled(src core.EdgeSource, perm []core.VertexID) core.EdgeSource {
	if perm == nil {
		return src
	}
	return &relabeledSource{inner: src, perm: perm}
}

type relabeledSource struct {
	inner core.EdgeSource
	perm  []core.VertexID
}

func (r *relabeledSource) NumVertices() int64 { return r.inner.NumVertices() }
func (r *relabeledSource) NumEdges() int64    { return r.inner.NumEdges() }

func (r *relabeledSource) Edges(fn func([]core.Edge) error) error {
	if int64(len(r.perm)) != r.inner.NumVertices() {
		return fmt.Errorf("graphio: relabel permutation has %d entries for %d vertices", len(r.perm), r.inner.NumVertices())
	}
	n := core.VertexID(len(r.perm))
	buf := make([]core.Edge, 0, 64<<10)
	return r.inner.Edges(func(batch []core.Edge) error {
		// Batches alias the inner source's buffers; rewrite into our own.
		if cap(buf) < len(batch) {
			buf = make([]core.Edge, 0, len(batch))
		}
		buf = buf[:len(batch)]
		for i, e := range batch {
			if e.Src >= n || e.Dst >= n {
				return fmt.Errorf("graphio: edge (%d,%d) references a vertex outside [0,%d)", e.Src, e.Dst, n)
			}
			buf[i] = core.Edge{Src: r.perm[e.Src], Dst: r.perm[e.Dst], Weight: e.Weight}
		}
		return fn(buf)
	})
}

// WriteRelabeledEdges rewrites src through perm and writes the result as a
// binary edge file on dev — the offline remap for graphs processed many
// times, so the relabeling pass is paid once instead of per run.
func WriteRelabeledEdges(dev storage.Device, name string, src core.EdgeSource, perm []core.VertexID) error {
	return WriteEdges(dev, name, Relabeled(src, perm))
}

// permMagic identifies binary permutation files (version 1). A permutation
// file stores the relabeled->original inverse map alongside a relabeled
// edge file, so results computed over the rewritten graph can be reported
// in the original ID space.
var permMagic = [8]byte{'X', 'S', 'P', 'E', 'R', 'M', '1', '\n'}

// WritePermutation stores a vertex ID map as a binary permutation file.
func WritePermutation(dev storage.Device, name string, perm []core.VertexID) error {
	f, err := dev.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, 16)
	copy(hdr, permMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(perm)))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return err
	}
	_, err = f.WriteAt(pod.AsBytes(perm), int64(len(hdr)))
	return err
}

// ReadPermutation loads a binary permutation file and validates that it is
// a permutation of [0, n).
func ReadPermutation(dev storage.Device, name string) ([]core.VertexID, error) {
	f, err := dev.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, 16)
	if _, err := f.ReadAt(hdr, 0); err != nil && err != io.EOF {
		return nil, err
	}
	if string(hdr[:8]) != string(permMagic[:]) {
		return nil, fmt.Errorf("graphio: %s: not a permutation file", name)
	}
	n := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if want := int64(len(hdr)) + n*4; f.Size() < want {
		return nil, fmt.Errorf("graphio: %s: truncated: %d bytes, want %d", name, f.Size(), want)
	}
	perm := make([]core.VertexID, n)
	if n > 0 {
		if _, err := f.ReadAt(pod.AsBytes(perm), int64(len(hdr))); err != nil && err != io.EOF {
			return nil, err
		}
	}
	seen := make([]bool, n)
	for i, v := range perm {
		if int64(v) >= n || seen[v] {
			return nil, fmt.Errorf("graphio: %s: entry %d = %d is not part of a permutation of [0,%d)", name, i, v, n)
		}
		seen[v] = true
	}
	return perm, nil
}
