package graphio

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pod"
	"repro/internal/storage"
)

// Relabeled returns an EdgeSource streaming src with both endpoints of
// every edge rewritten through perm (original ID -> relabeled ID). It is a
// pure streaming transformation, the remap stage engines insert between
// the input edge list and their partition shuffle when a locality-aware
// Partitioner is active. A nil perm returns src unchanged. perm must have
// exactly src.NumVertices() entries; a mismatch surfaces as an error from
// Edges rather than a panic mid-stream.
func Relabeled(src core.EdgeSource, perm []core.VertexID) core.EdgeSource {
	if perm == nil {
		return src
	}
	return &relabeledSource{inner: src, perm: perm}
}

type relabeledSource struct {
	inner core.EdgeSource
	perm  []core.VertexID
}

func (r *relabeledSource) NumVertices() int64 { return r.inner.NumVertices() }
func (r *relabeledSource) NumEdges() int64    { return r.inner.NumEdges() }

func (r *relabeledSource) Edges(fn func([]core.Edge) error) error {
	if int64(len(r.perm)) != r.inner.NumVertices() {
		return fmt.Errorf("graphio: relabel permutation has %d entries for %d vertices", len(r.perm), r.inner.NumVertices())
	}
	n := core.VertexID(len(r.perm))
	buf := make([]core.Edge, 0, 64<<10)
	return r.inner.Edges(func(batch []core.Edge) error {
		// Batches alias the inner source's buffers; rewrite into our own.
		if cap(buf) < len(batch) {
			buf = make([]core.Edge, 0, len(batch))
		}
		buf = buf[:len(batch)]
		for i, e := range batch {
			if e.Src >= n || e.Dst >= n {
				return fmt.Errorf("graphio: edge (%d,%d) references a vertex outside [0,%d)", e.Src, e.Dst, n)
			}
			buf[i] = core.Edge{Src: r.perm[e.Src], Dst: r.perm[e.Dst], Weight: e.Weight}
		}
		return fn(buf)
	})
}

// WriteRelabeledEdges rewrites src through perm and writes the result as a
// binary edge file on dev — the offline remap for graphs processed many
// times, so the relabeling pass is paid once instead of per run.
func WriteRelabeledEdges(dev storage.Device, name string, src core.EdgeSource, perm []core.VertexID) error {
	return WriteEdges(dev, name, Relabeled(src, perm))
}

// permMagic identifies binary permutation files (version 1). A permutation
// file stores the relabeled->original inverse map alongside a relabeled
// edge file, so results computed over the rewritten graph can be reported
// in the original ID space.
var permMagic = [8]byte{'X', 'S', 'P', 'E', 'R', 'M', '1', '\n'}

// permMagic2 identifies version-2 permutation files, which append the
// assignment's replication metadata after the permutation: a hub count
// followed by the mirrored vertices' execution IDs in ascending order.
// Version-1 files remain readable (they simply carry no mirrors), so
// permutations persisted before replication existed keep loading.
var permMagic2 = [8]byte{'X', 'S', 'P', 'E', 'R', 'M', '2', '\n'}

// WritePermutation stores a vertex ID map as a binary permutation file
// (version 1, no replication metadata).
func WritePermutation(dev storage.Device, name string, perm []core.VertexID) error {
	return WritePermutationMirrors(dev, name, perm, nil)
}

// WritePermutationMirrors stores a vertex ID map plus the mirrored-hub
// list of a replication-aware assignment. A nil hub list writes a plain
// version-1 file, so files without mirrors stay byte-compatible with
// pre-replication readers.
func WritePermutationMirrors(dev storage.Device, name string, perm, hubs []core.VertexID) error {
	f, err := dev.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, 16)
	magic := permMagic
	if hubs != nil {
		magic = permMagic2
	}
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(perm)))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return err
	}
	off := int64(len(hdr))
	if _, err := f.WriteAt(pod.AsBytes(perm), off); err != nil {
		return err
	}
	if hubs == nil {
		return nil
	}
	off += int64(len(perm)) * 4
	cnt := make([]byte, 8)
	binary.LittleEndian.PutUint64(cnt, uint64(len(hubs)))
	if _, err := f.WriteAt(cnt, off); err != nil {
		return err
	}
	if len(hubs) > 0 {
		if _, err := f.WriteAt(pod.AsBytes(hubs), off+8); err != nil {
			return err
		}
	}
	return nil
}

// ReadPermutation loads a binary permutation file and validates that it is
// a permutation of [0, n). Version-2 replication metadata, if present, is
// ignored; use ReadPermutationMirrors to recover it.
func ReadPermutation(dev storage.Device, name string) ([]core.VertexID, error) {
	perm, _, err := ReadPermutationMirrors(dev, name)
	return perm, err
}

// ReadPermutationMirrors loads a binary permutation file plus its
// replication metadata: the mirrored hubs as execution (relabeled) IDs,
// strictly ascending. Version-1 files return nil hubs.
func ReadPermutationMirrors(dev storage.Device, name string) (perm, hubs []core.VertexID, err error) {
	f, err := dev.Open(name)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	hdr := make([]byte, 16)
	if _, err := f.ReadAt(hdr, 0); err != nil && err != io.EOF {
		return nil, nil, err
	}
	v2 := string(hdr[:8]) == string(permMagic2[:])
	if !v2 && string(hdr[:8]) != string(permMagic[:]) {
		return nil, nil, fmt.Errorf("graphio: %s: not a permutation file", name)
	}
	n := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if want := int64(len(hdr)) + n*4; f.Size() < want {
		return nil, nil, fmt.Errorf("graphio: %s: truncated: %d bytes, want %d", name, f.Size(), want)
	}
	perm = make([]core.VertexID, n)
	if n > 0 {
		if _, err := f.ReadAt(pod.AsBytes(perm), int64(len(hdr))); err != nil && err != io.EOF {
			return nil, nil, err
		}
	}
	seen := make([]bool, n)
	for i, v := range perm {
		if int64(v) >= n || seen[v] {
			return nil, nil, fmt.Errorf("graphio: %s: entry %d = %d is not part of a permutation of [0,%d)", name, i, v, n)
		}
		seen[v] = true
	}
	if !v2 {
		return perm, nil, nil
	}
	off := int64(len(hdr)) + n*4
	// The hub count must actually be present: a v2 file cut right after
	// the permutation would otherwise read as zero hubs and silently
	// drop the mirror set.
	if f.Size() < off+8 {
		return nil, nil, fmt.Errorf("graphio: %s: truncated mirror header: %d bytes, want %d", name, f.Size(), off+8)
	}
	cnt := make([]byte, 8)
	if _, err := f.ReadAt(cnt, off); err != nil && err != io.EOF {
		return nil, nil, err
	}
	h := int64(binary.LittleEndian.Uint64(cnt))
	if h < 0 || h > n {
		return nil, nil, fmt.Errorf("graphio: %s: %d mirrored hubs for %d vertices", name, h, n)
	}
	if want := off + 8 + h*4; f.Size() < want {
		return nil, nil, fmt.Errorf("graphio: %s: truncated mirror list: %d bytes, want %d", name, f.Size(), want)
	}
	hubs = make([]core.VertexID, h)
	if h > 0 {
		if _, err := f.ReadAt(pod.AsBytes(hubs), off+8); err != nil && err != io.EOF {
			return nil, nil, err
		}
	}
	for i, hv := range hubs {
		if int64(hv) >= n || (i > 0 && hv <= hubs[i-1]) {
			return nil, nil, fmt.Errorf("graphio: %s: mirror entry %d = %d is not strictly ascending in [0,%d)", name, i, hv, n)
		}
	}
	return perm, hubs, nil
}
