package graphio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/partition2ps"
	"repro/internal/storage"
)

// TestSaveLoadPartitionerRoundTrip: a 2PS assignment saved during Assign
// must replay identically from the permutation file, with no clustering
// pass on replay.
func TestSaveLoadPartitionerRoundTrip(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("perm", 1, 0))
	edges := []core.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
		{Src: 4, Dst: 5}, {Src: 5, Dst: 4},
		{Src: 0, Dst: 2}, {Src: 1, Dst: 3},
	}
	src := core.NewSliceSource(edges, 8)

	saving := SavingPartitioner(partition2ps.New(), dev, "g.xsperm")
	if saving.Name() != partition2ps.New().Name() {
		t.Fatalf("saving wrapper changed the policy name to %q", saving.Name())
	}
	want, err := saving.Assign(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.Validate(8); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadPartitioner(dev, "g.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Assign(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(8); err != nil {
		t.Fatal(err)
	}
	for v := core.VertexID(0); v < 8; v++ {
		if got.NewID(v) != want.NewID(v) {
			t.Fatalf("vertex %d: replayed id %d, want %d", v, got.NewID(v), want.NewID(v))
		}
	}
}

// TestSavingPartitionerIdentity: an identity assignment (range) persists
// an explicit identity permutation so later loads work uniformly.
func TestSavingPartitionerIdentity(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("perm", 1, 0))
	src := core.NewSliceSource([]core.Edge{{Src: 0, Dst: 1}}, 2)
	if _, err := SavingPartitioner(core.RangePartitioner{}, dev, "id.xsperm").Assign(src, 2); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPartitioner(dev, "id.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	asg, err := loaded.Assign(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if asg.NewID(0) != 0 || asg.NewID(1) != 1 {
		t.Fatalf("identity permutation did not replay: %v %v", asg.NewID(0), asg.NewID(1))
	}
}

// TestLoadPartitionerMissingFile: a missing permutation file errors
// instead of silently degrading to the identity.
func TestLoadPartitionerMissingFile(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("perm", 1, 0))
	if _, err := LoadPartitioner(dev, "nope.xsperm"); err == nil {
		t.Fatal("missing file accepted")
	}
}
