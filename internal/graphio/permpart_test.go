package graphio

import (
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/partition2ps"
	"repro/internal/pod"
	"repro/internal/storage"
)

// writeLegacyPerm emits a pre-checksum permutation file byte-for-byte as
// the old writer did — version 1 when hubs is nil, version 2 otherwise —
// so reader compatibility with already-persisted datasets stays pinned
// now that the writer emits checksummed version-3 files.
func writeLegacyPerm(t *testing.T, dev storage.Device, name string, perm, hubs []core.VertexID) {
	t.Helper()
	magic := "XSPERM1\n"
	if hubs != nil {
		magic = "XSPERM2\n"
	}
	buf := append([]byte(nil), magic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(perm)))
	buf = append(buf, pod.AsBytes(perm)...)
	if hubs != nil {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(hubs)))
		buf = append(buf, pod.AsBytes(hubs)...)
	}
	f, err := dev.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSaveLoadPartitionerRoundTrip: a 2PS assignment saved during Assign
// must replay identically from the permutation file, with no clustering
// pass on replay.
func TestSaveLoadPartitionerRoundTrip(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("perm", 1, 0))
	edges := []core.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
		{Src: 4, Dst: 5}, {Src: 5, Dst: 4},
		{Src: 0, Dst: 2}, {Src: 1, Dst: 3},
	}
	src := core.NewSliceSource(edges, 8)

	saving := SavingPartitioner(partition2ps.New(), dev, "g.xsperm")
	if saving.Name() != partition2ps.New().Name() {
		t.Fatalf("saving wrapper changed the policy name to %q", saving.Name())
	}
	want, err := saving.Assign(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.Validate(8); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadPartitioner(dev, "g.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Assign(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(8); err != nil {
		t.Fatal(err)
	}
	for v := core.VertexID(0); v < 8; v++ {
		if got.NewID(v) != want.NewID(v) {
			t.Fatalf("vertex %d: replayed id %d, want %d", v, got.NewID(v), want.NewID(v))
		}
	}
}

// TestSavingPartitionerIdentity: an identity assignment (range) persists
// an explicit identity permutation so later loads work uniformly.
func TestSavingPartitionerIdentity(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("perm", 1, 0))
	src := core.NewSliceSource([]core.Edge{{Src: 0, Dst: 1}}, 2)
	if _, err := SavingPartitioner(core.RangePartitioner{}, dev, "id.xsperm").Assign(src, 2); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPartitioner(dev, "id.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	asg, err := loaded.Assign(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if asg.NewID(0) != 0 || asg.NewID(1) != 1 {
		t.Fatalf("identity permutation did not replay: %v %v", asg.NewID(0), asg.NewID(1))
	}
}

// TestLoadPartitionerMissingFile: a missing permutation file errors
// instead of silently degrading to the identity.
func TestLoadPartitionerMissingFile(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("perm", 1, 0))
	if _, err := LoadPartitioner(dev, "nope.xsperm"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// hubGraph builds a graph where vertex 0 receives an edge from everyone —
// an unambiguous replication hub.
func hubGraph(n int) core.EdgeSource {
	edges := make([]core.Edge, 0, 2*n)
	for v := 1; v < n; v++ {
		edges = append(edges, core.Edge{Src: core.VertexID(v), Dst: 0})
		edges = append(edges, core.Edge{Src: core.VertexID(v), Dst: core.VertexID((v + 1) % n)})
	}
	return core.NewSliceSource(edges, int64(n))
}

// TestSaveLoadMirrorsRoundTrip: an assignment with a replication set must
// persist its hub list (version-2 file) and replay it — permutation and
// mirrors both — through LoadPartitioner.
func TestSaveLoadMirrorsRoundTrip(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("perm", 1, 0))
	src := hubGraph(64)
	inner := core.NewReplicatingPartitioner(partition2ps.NewVolumeBalanced(),
		core.ReplicationConfig{DegreeFactor: 1, MinInDegree: 4})
	saving := SavingPartitioner(inner, dev, "m.xsperm")
	want, err := saving.Assign(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want.Mirrors == nil || want.Mirrors.Len() == 0 {
		t.Fatal("no mirrors planned on a hub graph")
	}

	loaded, err := LoadPartitioner(dev, "m.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Assign(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(64); err != nil {
		t.Fatal(err)
	}
	if got.Mirrors == nil || got.Mirrors.Len() != want.Mirrors.Len() {
		t.Fatalf("replayed %d mirrors, want %d", got.Mirrors.Len(), want.Mirrors.Len())
	}
	for i, h := range want.Mirrors.Hubs {
		if got.Mirrors.Hubs[i] != h {
			t.Fatalf("mirror %d: replayed hub %d, want %d", i, got.Mirrors.Hubs[i], h)
		}
	}
	for v := core.VertexID(0); v < 64; v++ {
		if got.NewID(v) != want.NewID(v) {
			t.Fatalf("vertex %d: replayed id %d, want %d", v, got.NewID(v), want.NewID(v))
		}
	}
}

// TestPermutationVersionCompat: legacy version-1 files (no mirrors) and
// version-2 files (mirrors, no checksum) keep loading through both
// readers, and ReadPermutation ignores replication metadata.
func TestPermutationVersionCompat(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("perm", 1, 0))
	perm := []core.VertexID{2, 0, 1}
	writeLegacyPerm(t, dev, "v1.xsperm", perm, nil)
	got, hubs, err := ReadPermutationMirrors(dev, "v1.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	if hubs != nil {
		t.Fatalf("version-1 file yielded hubs %v", hubs)
	}
	for i := range perm {
		if got[i] != perm[i] {
			t.Fatalf("entry %d: %d, want %d", i, got[i], perm[i])
		}
	}

	writeLegacyPerm(t, dev, "v2.xsperm", perm, []core.VertexID{0, 2})
	got2, err := ReadPermutation(dev, "v2.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	for i := range perm {
		if got2[i] != perm[i] {
			t.Fatalf("v2 entry %d: %d, want %d", i, got2[i], perm[i])
		}
	}
	_, hubs2, err := ReadPermutationMirrors(dev, "v2.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	if len(hubs2) != 2 || hubs2[0] != 0 || hubs2[1] != 2 {
		t.Fatalf("v2 hubs = %v, want [0 2]", hubs2)
	}
}

// TestPermutationBadMirrorsRejected: corrupt mirror lists (out of range,
// unsorted) must error, not load.
func TestPermutationBadMirrorsRejected(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("perm", 1, 0))
	perm := []core.VertexID{0, 1, 2}
	if err := WritePermutationMirrors(dev, "bad1.xsperm", perm, []core.VertexID{5}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadPermutationMirrors(dev, "bad1.xsperm"); err == nil {
		t.Fatal("out-of-range hub accepted")
	}
	if err := WritePermutationMirrors(dev, "bad2.xsperm", perm, []core.VertexID{2, 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadPermutationMirrors(dev, "bad2.xsperm"); err == nil {
		t.Fatal("unsorted hub list accepted")
	}
}

// TestPermutationTruncatedMirrorHeaderRejected: a v2 file cut right after
// the permutation must error rather than silently load with no mirrors.
func TestPermutationTruncatedMirrorHeaderRejected(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("perm", 1, 0))
	perm := []core.VertexID{1, 0, 2}
	writeLegacyPerm(t, dev, "t.xsperm", perm, []core.VertexID{0, 2})
	full, err := dev.Open("t.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16+len(perm)*4) // header + permutation, no hub count
	if _, err := full.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	full.Close()
	cut, err := dev.Create("cut.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cut.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	cut.Close()
	if _, _, err := ReadPermutationMirrors(dev, "cut.xsperm"); err == nil {
		t.Fatal("truncated v2 file accepted")
	}
}
