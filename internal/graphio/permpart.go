package graphio

import (
	"repro/internal/core"
	"repro/internal/storage"
)

// SavingPartitioner wraps inner so that the relabeling permutation it plans
// is persisted as a binary permutation file on dev the first time an engine
// calls Assign. Together with LoadPartitioner this lets an expensive
// clustering pass (2PS streams the edge list twice) be paid once per
// dataset: save on the first run, replay on every later one. An identity
// assignment is saved as an explicit identity permutation, so the file
// always exists after a run and loads uniformly. Replication metadata
// round-trips too: an assignment with a mirror set (a
// core.ReplicatingPartitioner inner) is saved as a version-2 file whose
// hub list LoadPartitioner replays, so the hub-selection pass is also
// paid once per dataset.
func SavingPartitioner(inner core.Partitioner, dev storage.Device, name string) core.Partitioner {
	return &savingPartitioner{inner: inner, dev: dev, file: name}
}

type savingPartitioner struct {
	inner core.Partitioner
	dev   storage.Device
	file  string
	saved bool
}

func (s *savingPartitioner) Name() string { return s.inner.Name() }

func (s *savingPartitioner) Assign(src core.EdgeSource, k int) (*core.Assignment, error) {
	asg, err := s.inner.Assign(src, k)
	if err != nil {
		return nil, err
	}
	if s.saved { // engines call Assign once per run; guard re-use anyway
		return asg, nil
	}
	perm := asg.Relabel
	if perm == nil {
		perm = make([]core.VertexID, src.NumVertices())
		for i := range perm {
			perm[i] = core.VertexID(i)
		}
	}
	var hubs []core.VertexID
	if asg.Mirrors != nil {
		hubs = asg.Mirrors.Hubs
	}
	if err := WritePermutationMirrors(s.dev, s.file, perm, hubs); err != nil {
		return nil, err
	}
	s.saved = true
	return asg, nil
}

// LoadPartitioner reads a permutation file written by SavingPartitioner (or
// WritePermutation) and returns a partitioner that replays it — including
// any persisted replication metadata — skipping the clustering and
// hub-selection passes entirely. The partitioner reports itself as
// "perm:<file>" in stats tables.
func LoadPartitioner(dev storage.Device, name string) (core.Partitioner, error) {
	perm, hubs, err := ReadPermutationMirrors(dev, name)
	if err != nil {
		return nil, err
	}
	return core.NewPermutationPartitioner("perm:"+name, perm).WithMirrors(hubs), nil
}
