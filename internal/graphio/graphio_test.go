package graphio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graphgen"
	"repro/internal/storage"
)

func testDev(t *testing.T) storage.Device {
	t.Helper()
	return storage.NewSim(storage.SSDParams("t", 1, 0))
}

func TestBinaryRoundTrip(t *testing.T) {
	dev := testDev(t)
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 11})
	if err := WriteEdges(dev, "g.xsedge", src); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenEdges(dev, "g.xsedge")
	if err != nil {
		t.Fatal(err)
	}
	if fs.NumVertices() != src.NumVertices() || fs.NumEdges() != src.NumEdges() {
		t.Fatalf("header mismatch: %d/%d", fs.NumVertices(), fs.NumEdges())
	}
	want, _ := core.Materialize(src)
	got, err := core.Materialize(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestBinarySmallChunks(t *testing.T) {
	dev := testDev(t)
	src := core.NewSliceSource([]core.Edge{
		{Src: 0, Dst: 1, Weight: 0.5},
		{Src: 1, Dst: 2, Weight: 0.25},
		{Src: 2, Dst: 0, Weight: 0.75},
		{Src: 0, Dst: 2, Weight: 1},
	}, 3)
	if err := WriteEdges(dev, "s", src); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenEdges(dev, "s")
	if err != nil {
		t.Fatal(err)
	}
	fs.ChunkEdges = 1 // force many tiny reads
	got, err := core.Materialize(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3] != (core.Edge{Src: 0, Dst: 2, Weight: 1}) {
		t.Fatalf("got %+v", got)
	}
}

func TestBinaryRestream(t *testing.T) {
	dev := testDev(t)
	src := graphgen.Grid(5, 5, 1)
	if err := WriteEdges(dev, "grid", src); err != nil {
		t.Fatal(err)
	}
	fs, _ := OpenEdges(dev, "grid")
	for pass := 0; pass < 2; pass++ {
		n := int64(0)
		if err := fs.Edges(func(b []core.Edge) error { n += int64(len(b)); return nil }); err != nil {
			t.Fatal(err)
		}
		if n != src.NumEdges() {
			t.Fatalf("pass %d: %d edges", pass, n)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dev := testDev(t)
	f, _ := dev.Create("junk")
	f.WriteAt([]byte("this is not an edge file, not even close"), 0)
	f.Close()
	if _, err := OpenEdges(dev, "junk"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := OpenEdges(dev, "missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	dev := testDev(t)
	src := graphgen.Grid(3, 3, 1)
	if err := WriteEdges(dev, "t", src); err != nil {
		t.Fatal(err)
	}
	f, _ := dev.Open("t")
	f.Truncate(f.Size() - 5)
	f.Close()
	if _, err := OpenEdges(dev, "t"); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	in := []core.Edge{{Src: 0, Dst: 1, Weight: 0.5}, {Src: 5, Dst: 2, Weight: 0.125}}
	var buf bytes.Buffer
	if err := WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, n, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 || len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Fatalf("n=%d got=%+v", n, got)
	}
}

func TestTextParsing(t *testing.T) {
	input := `# a comment
0 1
1 2 0.5

# another
2 0 0.25
`
	edges, n, err := ParseText(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(edges) != 3 {
		t.Fatalf("n=%d len=%d", n, len(edges))
	}
	if edges[1].Weight != 0.5 {
		t.Fatalf("explicit weight lost: %+v", edges[1])
	}
	if w := edges[0].Weight; w < 0 || w >= 1 {
		t.Fatalf("assigned weight %f out of [0,1)", w)
	}

	if _, _, err := ParseText(strings.NewReader("0\n")); err == nil {
		t.Fatal("short line accepted")
	}
	if _, _, err := ParseText(strings.NewReader("a b\n")); err == nil {
		t.Fatal("non-numeric accepted")
	}
	if _, _, err := ParseText(strings.NewReader("1 2 x\n")); err == nil {
		t.Fatal("bad weight accepted")
	}
}

// streamThroughFaults writes src on dev, then streams it back and checks
// record-for-record equality with the original.
func streamThroughFaults(t *testing.T, dev storage.Device, src core.EdgeSource) {
	t.Helper()
	if err := WriteEdges(dev, "g", src); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenEdges(dev, "g")
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Materialize(fs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := core.Materialize(src)
	if len(got) != len(want) {
		t.Fatalf("streamed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestShortReadRecovery(t *testing.T) {
	// A device that returns short reads must still stream whole records.
	inner := storage.NewSim(storage.SSDParams("t", 1, 0))
	dev := storage.NewFaulty(inner, storage.FaultyOptions{ShortReads: 17}) // not a multiple of 12
	streamThroughFaults(t, dev, graphgen.Grid(4, 4, 2))
}

// TestShortReadRecoveryOneByte: the pathological device that never hands
// back more than one byte per ReadAt — every header field and every
// 12-byte edge record must be reassembled from single-byte reads.
func TestShortReadRecoveryOneByte(t *testing.T) {
	inner := storage.NewSim(storage.SSDParams("t", 1, 0))
	dev := storage.NewFaulty(inner, storage.FaultyOptions{ShortReads: 1})
	streamThroughFaults(t, dev, graphgen.Grid(3, 3, 1))
}

// TestShortReadRecoveryRandom: probabilistic short reads splitting
// requests at schedule-driven points mid-record must never change the
// streamed records, and the schedule must actually fire.
func TestShortReadRecoveryRandom(t *testing.T) {
	inner := storage.NewSim(storage.SSDParams("t", 1, 0))
	dev := storage.NewFaulty(inner, storage.FaultyOptions{Seed: 7, ShortRead: 0.5})
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 3})
	streamThroughFaults(t, dev, src)
	if n := dev.(storage.FaultInjector).Faults(); n == 0 {
		t.Fatal("short-read schedule never fired")
	}
}
