package graphio

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// FuzzParseText fuzzes the text edge-list parser: whatever the input, it
// must either return a clean error or a well-formed graph, never panic —
// and anything it accepts must survive a write/parse round trip intact.
// Seed cases below plus the checked-in corpus under
// testdata/fuzz/FuzzParseText cover the malformed shapes we know about.
func FuzzParseText(f *testing.F) {
	for _, seed := range []string{
		"",
		"# just a comment\n",
		"1 2\n",
		"1 2 0.5\n",
		"0 0 0\n",
		"1\n",                         // too few fields
		"a b\n",                       // non-numeric IDs
		"1 2 x\n",                     // non-numeric weight
		"-1 2\n",                      // negative ID
		"4294967296 1\n",              // src overflows uint32
		"1 4294967296\n",              // dst overflows uint32
		"1 2 1e400\n",                 // weight overflows float32
		"1 2 3 4 5\n",                 // extra fields are tolerated
		"1 2\r\n3 4\n",                // CRLF line endings
		"  7   9   0.25  # trail\n",   // whitespace soup
		"\x00\x01\x02",                // binary garbage
		"999999999 999999998 1.0\n",   // huge but valid IDs
		"1 2\n# mid comment\n3 4 2\n", // comment between edges
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		edges, n, err := ParseText(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs just need to fail cleanly
		}
		if n == 0 && len(edges) != 0 {
			t.Fatalf("0 vertices but %d edges", len(edges))
		}
		var max core.VertexID
		for _, e := range edges {
			if int64(e.Src) >= n || int64(e.Dst) >= n {
				t.Fatalf("edge (%d,%d) outside [0,%d)", e.Src, e.Dst, n)
			}
			if e.Src > max {
				max = e.Src
			}
			if e.Dst > max {
				max = e.Dst
			}
		}
		if len(edges) > 0 && n != int64(max)+1 {
			t.Fatalf("vertex count %d, want max id + 1 = %d", n, int64(max)+1)
		}
		// Round trip: WriteText always emits explicit weights, so a
		// reparse must reproduce the edges exactly (%g prints the
		// shortest representation that parses back to the same float32).
		var buf bytes.Buffer
		if err := WriteText(&buf, edges); err != nil {
			t.Fatalf("write: %v", err)
		}
		again, n2, err := ParseText(&buf)
		if err != nil {
			t.Fatalf("reparse of own output: %v", err)
		}
		if n2 != n || len(again) != len(edges) {
			t.Fatalf("round trip: %d vertices/%d edges, want %d/%d", n2, len(again), n, len(edges))
		}
		for i := range edges {
			a, b := again[i], edges[i]
			// The parser accepts NaN weights; NaN breaks value equality.
			sameW := a.Weight == b.Weight || (a.Weight != a.Weight && b.Weight != b.Weight)
			if a.Src != b.Src || a.Dst != b.Dst || !sameW {
				t.Fatalf("edge %d: %+v != %+v", i, a, b)
			}
		}
	})
}
