package graphio

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func testPerm() []core.VertexID { return []core.VertexID{2, 0, 3, 1} }

func TestRelabeledSource(t *testing.T) {
	edges := []core.Edge{{Src: 0, Dst: 1, Weight: 0.5}, {Src: 2, Dst: 3, Weight: 1}, {Src: 3, Dst: 0, Weight: 2}}
	src := core.NewSliceSource(edges, 4)
	rel := Relabeled(src, testPerm())
	if rel.NumVertices() != 4 || rel.NumEdges() != 3 {
		t.Fatalf("counts: %d vertices, %d edges", rel.NumVertices(), rel.NumEdges())
	}
	got, err := core.Materialize(rel)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Edge{{Src: 2, Dst: 0, Weight: 0.5}, {Src: 3, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	// Re-streamable: a second pass yields the same rewrite.
	again, err := core.Materialize(rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(got) || again[0] != got[0] {
		t.Fatal("second stream differs")
	}
	// nil perm is the identity shortcut.
	if Relabeled(src, nil) != src {
		t.Fatal("nil perm should return src unchanged")
	}
}

func TestRelabeledSourceErrors(t *testing.T) {
	src := core.NewSliceSource([]core.Edge{{Src: 0, Dst: 1}}, 2)
	// Wrong permutation length.
	err := Relabeled(src, []core.VertexID{0}).Edges(func([]core.Edge) error { return nil })
	if err == nil {
		t.Fatal("short permutation accepted")
	}
	// Edge outside the declared vertex count.
	bad := core.NewSliceSource([]core.Edge{{Src: 7, Dst: 1}}, 2)
	err = Relabeled(bad, []core.VertexID{0, 1}).Edges(func([]core.Edge) error { return nil })
	if err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestWriteRelabeledEdgesRoundTrip(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	edges := []core.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2}, {Src: 3, Dst: 3, Weight: 3}}
	src := core.NewSliceSource(edges, 4)
	perm := testPerm()
	if err := WriteRelabeledEdges(dev, "g.rel", src, perm); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenEdges(dev, "g.rel")
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Materialize(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range edges {
		want := core.Edge{Src: perm[e.Src], Dst: perm[e.Dst], Weight: e.Weight}
		if got[i] != want {
			t.Fatalf("edge %d: %+v, want %+v", i, got[i], want)
		}
	}
}

func TestPermutationFileRoundTrip(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	perm := testPerm()
	if err := WritePermutation(dev, "g.perm", perm); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPermutation(dev, "g.perm")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(perm) {
		t.Fatalf("length %d, want %d", len(got), len(perm))
	}
	for i := range perm {
		if got[i] != perm[i] {
			t.Fatalf("entry %d: %d, want %d", i, got[i], perm[i])
		}
	}
	// Empty permutation round-trips too.
	if err := WritePermutation(dev, "empty.perm", nil); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadPermutation(dev, "empty.perm"); err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
}

// TestPermutationChecksumDetectsCorruption: a single flipped bit anywhere
// in a version-3 permutation file — header count, permutation body, hub
// list, or the trailer itself — must surface as storage.ErrCorrupted,
// never as a silently different permutation.
func TestPermutationChecksumDetectsCorruption(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	n := 64
	perm := make([]core.VertexID, n)
	for i := range perm {
		perm[i] = core.VertexID(n - 1 - i)
	}
	hubs := []core.VertexID{3, 17, 41}
	if err := WritePermutationMirrors(dev, "c.xsperm", perm, hubs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadPermutationMirrors(dev, "c.xsperm"); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}
	f, err := dev.Open("c.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	size := f.Size()
	f.Close()
	offsets := []int64{
		8,                          // header: entry count
		16,                         // header: flags word
		permV3HeaderLen + 13,       // permutation body
		permV3HeaderLen + 4*64,     // mirror count
		permV3HeaderLen + 4*64 + 9, // hub list
		size - 2,                   // trailer checksum
	}
	for _, off := range offsets {
		flip := func() {
			f, err := dev.Open("c.xsperm")
			if err != nil {
				t.Fatal(err)
			}
			b := make([]byte, 1)
			if _, err := f.ReadAt(b, off); err != nil {
				t.Fatal(err)
			}
			b[0] ^= 0x04
			if _, err := f.WriteAt(b, off); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
		flip()
		if _, _, err := ReadPermutationMirrors(dev, "c.xsperm"); !errors.Is(err, storage.ErrCorrupted) {
			t.Fatalf("bit flip at offset %d: got %v, want ErrCorrupted", off, err)
		}
		flip() // restore for the next offset
		if _, _, err := ReadPermutationMirrors(dev, "c.xsperm"); err != nil {
			t.Fatalf("restored file rejected after offset %d: %v", off, err)
		}
	}
}

// TestPermutationTruncationDetected: cutting a version-3 file anywhere is
// reported as corruption, including cuts too short to hold the frame.
func TestPermutationTruncationDetected(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	perm := []core.VertexID{3, 1, 0, 2}
	if err := WritePermutationMirrors(dev, "t.xsperm", perm, []core.VertexID{1}); err != nil {
		t.Fatal(err)
	}
	f, err := dev.Open("t.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	size := f.Size()
	f.Close()
	for _, cut := range []int64{size - 3, size - 5, 30, 10} {
		f, err := dev.Open("t.xsperm")
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(cut); err != nil {
			t.Fatal(err)
		}
		f.Close()
		_, _, err = ReadPermutationMirrors(dev, "t.xsperm")
		if cut >= 16 {
			if !errors.Is(err, storage.ErrCorrupted) {
				t.Fatalf("cut to %d bytes: got %v, want ErrCorrupted", cut, err)
			}
		} else if err == nil {
			t.Fatalf("cut to %d bytes accepted", cut)
		}
		if err := WritePermutationMirrors(dev, "t.xsperm", perm, []core.VertexID{1}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPermutationShortReadRecovery: the permutation reader must survive a
// device that returns one byte per ReadAt — the pathological legal short
// read — and still verify the checksum over the reassembled stream.
func TestPermutationShortReadRecovery(t *testing.T) {
	inner := storage.NewSim(storage.SSDParams("t", 1, 0))
	dev := storage.NewFaulty(inner, storage.FaultyOptions{ShortReads: 1})
	perm := testPerm()
	if err := WritePermutationMirrors(dev, "s.xsperm", perm, []core.VertexID{0, 3}); err != nil {
		t.Fatal(err)
	}
	got, hubs, err := ReadPermutationMirrors(dev, "s.xsperm")
	if err != nil {
		t.Fatal(err)
	}
	for i := range perm {
		if got[i] != perm[i] {
			t.Fatalf("entry %d: %d, want %d", i, got[i], perm[i])
		}
	}
	if len(hubs) != 2 || hubs[0] != 0 || hubs[1] != 3 {
		t.Fatalf("hubs = %v, want [0 3]", hubs)
	}
}

func TestReadPermutationRejectsNonPermutation(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	// Duplicate entry.
	if err := WritePermutation(dev, "dup.perm", []core.VertexID{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPermutation(dev, "dup.perm"); err == nil {
		t.Fatal("duplicate entries accepted")
	}
	// Out-of-range entry.
	if err := WritePermutation(dev, "oor.perm", []core.VertexID{0, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPermutation(dev, "oor.perm"); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
	// Not a permutation file at all.
	if err := WriteEdges(dev, "edges.bin", core.NewSliceSource([]core.Edge{{Src: 0, Dst: 1}}, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPermutation(dev, "edges.bin"); err == nil {
		t.Fatal("edge file accepted as permutation")
	}
}
