package graphio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func testPerm() []core.VertexID { return []core.VertexID{2, 0, 3, 1} }

func TestRelabeledSource(t *testing.T) {
	edges := []core.Edge{{Src: 0, Dst: 1, Weight: 0.5}, {Src: 2, Dst: 3, Weight: 1}, {Src: 3, Dst: 0, Weight: 2}}
	src := core.NewSliceSource(edges, 4)
	rel := Relabeled(src, testPerm())
	if rel.NumVertices() != 4 || rel.NumEdges() != 3 {
		t.Fatalf("counts: %d vertices, %d edges", rel.NumVertices(), rel.NumEdges())
	}
	got, err := core.Materialize(rel)
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Edge{{Src: 2, Dst: 0, Weight: 0.5}, {Src: 3, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	// Re-streamable: a second pass yields the same rewrite.
	again, err := core.Materialize(rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(got) || again[0] != got[0] {
		t.Fatal("second stream differs")
	}
	// nil perm is the identity shortcut.
	if Relabeled(src, nil) != src {
		t.Fatal("nil perm should return src unchanged")
	}
}

func TestRelabeledSourceErrors(t *testing.T) {
	src := core.NewSliceSource([]core.Edge{{Src: 0, Dst: 1}}, 2)
	// Wrong permutation length.
	err := Relabeled(src, []core.VertexID{0}).Edges(func([]core.Edge) error { return nil })
	if err == nil {
		t.Fatal("short permutation accepted")
	}
	// Edge outside the declared vertex count.
	bad := core.NewSliceSource([]core.Edge{{Src: 7, Dst: 1}}, 2)
	err = Relabeled(bad, []core.VertexID{0, 1}).Edges(func([]core.Edge) error { return nil })
	if err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestWriteRelabeledEdgesRoundTrip(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	edges := []core.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2}, {Src: 3, Dst: 3, Weight: 3}}
	src := core.NewSliceSource(edges, 4)
	perm := testPerm()
	if err := WriteRelabeledEdges(dev, "g.rel", src, perm); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenEdges(dev, "g.rel")
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Materialize(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range edges {
		want := core.Edge{Src: perm[e.Src], Dst: perm[e.Dst], Weight: e.Weight}
		if got[i] != want {
			t.Fatalf("edge %d: %+v, want %+v", i, got[i], want)
		}
	}
}

func TestPermutationFileRoundTrip(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	perm := testPerm()
	if err := WritePermutation(dev, "g.perm", perm); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPermutation(dev, "g.perm")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(perm) {
		t.Fatalf("length %d, want %d", len(got), len(perm))
	}
	for i := range perm {
		if got[i] != perm[i] {
			t.Fatalf("entry %d: %d, want %d", i, got[i], perm[i])
		}
	}
	// Empty permutation round-trips too.
	if err := WritePermutation(dev, "empty.perm", nil); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadPermutation(dev, "empty.perm"); err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
}

func TestReadPermutationRejectsNonPermutation(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	// Duplicate entry.
	if err := WritePermutation(dev, "dup.perm", []core.VertexID{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPermutation(dev, "dup.perm"); err == nil {
		t.Fatal("duplicate entries accepted")
	}
	// Out-of-range entry.
	if err := WritePermutation(dev, "oor.perm", []core.VertexID{0, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPermutation(dev, "oor.perm"); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
	// Not a permutation file at all.
	if err := WriteEdges(dev, "edges.bin", core.NewSliceSource([]core.Edge{{Src: 0, Dst: 1}}, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPermutation(dev, "edges.bin"); err == nil {
		t.Fatal("edge file accepted as permutation")
	}
}
