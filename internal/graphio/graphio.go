// Package graphio reads and writes edge lists.
//
// The binary format is exactly what X-Stream consumes: a small header
// followed by unordered fixed-size edge records — no sorting, no index.
// Binary files live on a storage.Device so that reading them during
// out-of-core runs is charged to the device like any other stream.
//
// A whitespace text format ("src dst [weight]" lines, # comments) is
// provided for interoperability with SNAP-style downloads.
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/pod"
	"repro/internal/storage"
)

// magic identifies binary edge files (version 1).
var magic = [8]byte{'X', 'S', 'E', 'D', 'G', 'E', '1', '\n'}

const headerSize = 8 + 8 + 8 // magic + numVertices + numEdges

// edgeSize is the on-disk record size.
var edgeSize = pod.Size[core.Edge]()

// WriteEdges streams src into the named binary edge file on dev.
func WriteEdges(dev storage.Device, name string, src core.EdgeSource) error {
	f, err := dev.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()

	hdr := make([]byte, headerSize)
	copy(hdr, magic[:])
	binary.LittleEndian.PutUint64(hdr[8:], uint64(src.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(src.NumEdges()))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return err
	}
	off := int64(headerSize)
	err = src.Edges(func(batch []core.Edge) error {
		b := pod.AsBytes(batch)
		if _, err := f.WriteAt(b, off); err != nil {
			return err
		}
		off += int64(len(b))
		return nil
	})
	return err
}

// FileSource is a re-streamable EdgeSource backed by a binary edge file.
type FileSource struct {
	dev      storage.Device
	name     string
	vertices int64
	edges    int64
	// ChunkEdges is the number of edge records read per I/O request
	// while streaming. The default keeps requests in the multi-megabyte
	// range the paper's Figure 9 identifies as bandwidth-saturating.
	ChunkEdges int
}

// OpenEdges opens a binary edge file for streaming.
func OpenEdges(dev storage.Device, name string) (*FileSource, error) {
	f, err := dev.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if f.Size() < int64(headerSize) {
		return nil, fmt.Errorf("graphio: %s: not a binary edge file", name)
	}
	hdr := make([]byte, headerSize)
	if err := readFullAt(f, hdr, 0); err != nil {
		return nil, err
	}
	if string(hdr[:8]) != string(magic[:]) {
		return nil, fmt.Errorf("graphio: %s: not a binary edge file", name)
	}
	s := &FileSource{
		dev:        dev,
		name:       name,
		vertices:   int64(binary.LittleEndian.Uint64(hdr[8:])),
		edges:      int64(binary.LittleEndian.Uint64(hdr[16:])),
		ChunkEdges: (4 << 20) / edgeSize,
	}
	want := int64(headerSize) + s.edges*int64(edgeSize)
	if got := f.Size(); got < want {
		return nil, fmt.Errorf("graphio: %s: truncated: %d bytes, want %d", name, got, want)
	}
	return s, nil
}

// NumVertices returns the vertex count recorded in the header.
func (s *FileSource) NumVertices() int64 { return s.vertices }

// NumEdges returns the edge record count recorded in the header.
func (s *FileSource) NumEdges() int64 { return s.edges }

// Edges streams the file in ChunkEdges-sized batches.
func (s *FileSource) Edges(fn func([]core.Edge) error) error {
	f, err := s.dev.Open(s.name)
	if err != nil {
		return err
	}
	defer f.Close()
	batch := make([]core.Edge, s.ChunkEdges)
	raw := pod.AsBytes(batch)
	off := int64(headerSize)
	remaining := s.edges
	for remaining > 0 {
		n := int64(len(batch))
		if n > remaining {
			n = remaining
		}
		want := raw[:n*int64(edgeSize)]
		got, err := f.ReadAt(want, off)
		if err != nil && err != io.EOF {
			return err
		}
		if got%edgeSize != 0 {
			// Short read mid-record: retry the tail.
			for got%edgeSize != 0 {
				m, err := f.ReadAt(want[got:], off+int64(got))
				if m == 0 {
					return fmt.Errorf("graphio: %s: short read at %d: %v", s.name, off, err)
				}
				got += m
				if err != nil && err != io.EOF {
					return err
				}
			}
		}
		recs := got / edgeSize
		if recs == 0 {
			return fmt.Errorf("graphio: %s: unexpected EOF at offset %d", s.name, off)
		}
		if err := fn(batch[:recs]); err != nil {
			return err
		}
		off += int64(got)
		remaining -= int64(recs)
	}
	return nil
}

// ParseText parses a whitespace-separated text edge list: one "src dst"
// or "src dst weight" per line, '#' starting comments. Edges without
// weights are assigned deterministic pseudo-random weights in [0,1) keyed
// on their position, following the paper's procedure for unweighted inputs
// (§5.2). It returns the edges and the vertex count (max id + 1).
func ParseText(r io.Reader) ([]core.Edge, int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []core.Edge
	var maxID core.VertexID
	lineNo := 0
	rng := newSplitMix(0x9E3779B97F4A7C15)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graphio: line %d: want 'src dst [weight]', got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graphio: line %d: bad src: %v", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graphio: line %d: bad dst: %v", lineNo, err)
		}
		w := rng.float32()
		if len(fields) >= 3 {
			w64, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, 0, fmt.Errorf("graphio: line %d: bad weight: %v", lineNo, err)
			}
			w = float32(w64)
		}
		e := core.Edge{Src: core.VertexID(src), Dst: core.VertexID(dst), Weight: w}
		edges = append(edges, e)
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	n := int64(0)
	if len(edges) > 0 {
		n = int64(maxID) + 1
	}
	return edges, n, nil
}

// WriteText writes edges in the text format.
func WriteText(w io.Writer, edges []core.Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.Src, e.Dst, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// splitMix is a tiny deterministic PRNG for assigning weights to
// unweighted inputs without importing math/rand state here.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *splitMix) float32() float32 {
	return float32(r.next()>>40) / float32(1<<24)
}
