// Package xstreamtest holds the engine-config and test-graph scaffolding
// the repo-root suites share. The equivalence, chaos, iteration-stats and
// shared-pass suites all drive the same public API over the same simulated
// devices and RMAT inputs; keeping the standard configurations and the
// canonical result assertions here stops each suite from drifting its own
// copy.
package xstreamtest

import (
	"fmt"
	"testing"

	xstream "repro"
)

// RMAT returns the suites' standard directed scale-free test graph: RMAT
// at the given scale with edge factor 8 and the given seed.
func RMAT(scale int, seed int64) xstream.EdgeSource {
	return xstream.RMAT(xstream.RMATConfig{Scale: scale, EdgeFactor: 8, Seed: seed})
}

// RMATUndirected is RMAT with each edge mirrored at generation time.
func RMATUndirected(scale int, seed int64) xstream.EdgeSource {
	return xstream.RMAT(xstream.RMATConfig{Scale: scale, EdgeFactor: 8, Seed: seed, Undirected: true})
}

// Materialize reads src fully into memory, failing the test on error.
func Materialize(t *testing.T, src xstream.EdgeSource) []xstream.Edge {
	t.Helper()
	edges, err := xstream.Materialize(src)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return edges
}

// MemConfig returns the suites' standard in-memory configuration: 3 worker
// threads, everything else per-suite.
func MemConfig() xstream.MemConfig {
	return xstream.MemConfig{Threads: 3}
}

// DiskConfig returns the suites' standard out-of-core configuration on a
// fresh zero-latency simulated SSD pair named name: 3 worker threads,
// 32 KiB I/O unit, 8 partitions.
func DiskConfig(name string) xstream.DiskConfig {
	return DiskConfigOn(xstream.NewSimDevice(xstream.SimSSD(name, 2, 0)))
}

// DiskConfigOn is DiskConfig over a caller-supplied device — the chaos
// suite wraps its devices in fault injectors and retry layers first.
func DiskConfigOn(dev xstream.Device) xstream.DiskConfig {
	return xstream.DiskConfig{Device: dev, Threads: 3, IOUnit: 32 << 10, Partitions: 8}
}

// AssertBitIdentical compares two canonicalized result vectors bit by bit.
func AssertBitIdentical(t *testing.T, got, want []uint32, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vertices, want %d", context, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: vertex %d: %#x, want %#x", context, v, got[v], want[v])
		}
	}
}

// SameComponents compares a computed WCC labeling against the reference
// component partition canonically: same label ⇔ same reference component,
// every label names a member of its own component, and no reference
// component splits across labels. Representatives may legitimately differ
// between partitioners.
func SameComponents(got, want []xstream.VertexID) error {
	repOf := map[xstream.VertexID]xstream.VertexID{}
	labelOf := map[xstream.VertexID]xstream.VertexID{}
	for v := range got {
		ref := want[v]
		if seen, ok := repOf[got[v]]; ok && seen != ref {
			return fmt.Errorf("label %d spans reference components %d and %d", got[v], seen, ref)
		}
		repOf[got[v]] = ref
		if want[got[v]] != ref {
			return fmt.Errorf("vertex %d: label %d is not a member of its component", v, got[v])
		}
		if seen, ok := labelOf[ref]; ok && seen != got[v] {
			return fmt.Errorf("reference component %d split into labels %d and %d", ref, seen, got[v])
		}
		labelOf[ref] = got[v]
	}
	return nil
}
