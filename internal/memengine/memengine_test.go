package memengine

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graphgen"
)

// wccState is min-label-propagation state: the component label and the
// iteration in which it last improved (so scatter only fires for changed
// vertices, the standard X-Stream WCC formulation).
type wccState struct {
	Label   core.VertexID
	Updated int32
}

type wccProg struct{ iter int32 }

func (w *wccProg) Name() string { return "wcc-test" }

func (w *wccProg) Init(id core.VertexID, v *wccState) {
	v.Label = id
	v.Updated = 0
}

func (w *wccProg) StartIteration(iter int) { w.iter = int32(iter) }

func (w *wccProg) Scatter(e core.Edge, src *wccState) (core.VertexID, bool) {
	if src.Updated == w.iter {
		return src.Label, true
	}
	return 0, false
}

func (w *wccProg) Gather(dst core.VertexID, v *wccState, m core.VertexID) {
	if m < v.Label {
		v.Label = m
		v.Updated = w.iter + 1
	}
}

// unionFind is the reference WCC.
type unionFind []int

func newUF(n int) unionFind {
	uf := make(unionFind, n)
	for i := range uf {
		uf[i] = i
	}
	return uf
}

func (u unionFind) find(x int) int {
	for u[x] != x {
		u[x] = u[u[x]]
		x = u[x]
	}
	return x
}

func (u unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u[ra] = rb
	}
}

func checkWCC(t *testing.T, edges []core.Edge, n int64, verts []wccState) {
	t.Helper()
	uf := newUF(int(n))
	for _, e := range edges {
		uf.union(int(e.Src), int(e.Dst))
	}
	// min id per component
	minOf := make(map[int]core.VertexID)
	for v := 0; v < int(n); v++ {
		r := uf.find(v)
		if m, ok := minOf[r]; !ok || core.VertexID(v) < m {
			minOf[r] = core.VertexID(v)
		}
	}
	for v := 0; v < int(n); v++ {
		want := minOf[uf.find(v)]
		if verts[v].Label != want {
			t.Fatalf("vertex %d: label %d, want %d", v, verts[v].Label, want)
		}
	}
}

func TestWCCAgainstUnionFind(t *testing.T) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 77, Undirected: true})
	edges, _ := core.Materialize(src)
	for _, cfg := range []Config{
		{Threads: 1},
		{Threads: 4},
		{Threads: 4, Partitions: 16},
		{Threads: 3, Partitions: 64, Fanout: 4},
		{Threads: 4, NoWorkStealing: true},
		{Threads: 2, Partitions: 1},
	} {
		res, err := Run(src, &wccProg{}, cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		checkWCC(t, edges, src.NumVertices(), res.Vertices)
		if res.Stats.Iterations < 2 {
			t.Fatalf("suspiciously few iterations: %d", res.Stats.Iterations)
		}
		if res.Stats.EdgesStreamed != src.NumEdges()*int64(res.Stats.Iterations) {
			t.Fatalf("edges streamed %d, want %d*%d", res.Stats.EdgesStreamed, src.NumEdges(), res.Stats.Iterations)
		}
	}
}

func TestWCCRandomGraphsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := int64(rng.Intn(200) + 2)
		m := rng.Intn(400)
		edges := make([]core.Edge, 0, 2*m)
		for i := 0; i < m; i++ {
			a := core.VertexID(rng.Int63n(n))
			b := core.VertexID(rng.Int63n(n))
			edges = append(edges, core.Edge{Src: a, Dst: b, Weight: 1}, core.Edge{Src: b, Dst: a, Weight: 1})
		}
		src := core.NewSliceSource(edges, n)
		res, err := Run(src, &wccProg{}, Config{Threads: 2, Partitions: 4})
		if err != nil {
			t.Fatal(err)
		}
		checkWCC(t, edges, n, res.Vertices)
	}
}

// degProg counts in-degree (Forward) or out-degree (Backward) in one
// iteration; exercises the phased-termination and direction paths.
type degProg struct {
	backward bool
}

func (d *degProg) Name() string                                  { return "degree-test" }
func (d *degProg) Init(id core.VertexID, v *int32)               { *v = 0 }
func (d *degProg) Scatter(e core.Edge, src *int32) (int32, bool) { return 1, true }
func (d *degProg) Gather(dst core.VertexID, v *int32, m int32)   { *v += m }

func (d *degProg) EndIteration(iter int, sent int64, view core.VertexView[int32]) bool {
	return true // single iteration
}

func (d *degProg) Direction(iter int) core.Direction {
	if d.backward {
		return core.Backward
	}
	return core.Forward
}

func TestDegreeForwardBackward(t *testing.T) {
	edges := []core.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 2, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 2, Weight: 1}, // self loop
	}
	src := core.NewSliceSource(edges, 3)

	res, err := Run(src, &degProg{}, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Vertices; got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("in-degrees = %v", got)
	}

	res, err = Run(src, &degProg{backward: true}, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Vertices; got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("out-degrees = %v", got)
	}
	if res.Stats.UpdatesSent != 4 {
		t.Fatalf("updates = %d", res.Stats.UpdatesSent)
	}
}

func TestWastedEdgeAccounting(t *testing.T) {
	// After convergence iterations, WCC wastes edges; the counters must
	// reconcile: streamed = sent + wasted.
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 1, Undirected: true})
	res, err := Run(src, &wccProg{}, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.EdgesStreamed != s.UpdatesSent+s.WastedEdges {
		t.Fatalf("streamed %d != sent %d + wasted %d", s.EdgesStreamed, s.UpdatesSent, s.WastedEdges)
	}
	if s.WastedFraction() <= 0 {
		t.Fatal("expected some wasted edges")
	}
}

// neverDone scatters forever; the engine must stop at MaxIterations.
type neverDone struct{}

func (neverDone) Name() string                                  { return "never" }
func (neverDone) Init(id core.VertexID, v *int32)               { *v = 0 }
func (neverDone) Scatter(e core.Edge, src *int32) (int32, bool) { return 1, true }
func (neverDone) Gather(dst core.VertexID, v *int32, m int32)   {}

func TestMaxIterations(t *testing.T) {
	src := core.NewSliceSource([]core.Edge{{Src: 0, Dst: 1, Weight: 1}}, 2)
	res, err := Run(src, neverDone{}, Config{Threads: 1, MaxIterations: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != 7 {
		t.Fatalf("iterations = %d, want 7", res.Stats.Iterations)
	}
}

func TestEmptyGraph(t *testing.T) {
	src := core.NewSliceSource(nil, 0)
	res, err := Run(src, &wccProg{}, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) != 0 || res.Stats.Iterations != 1 {
		t.Fatalf("empty graph: %+v", res.Stats)
	}
}

func TestLyingEdgeSource(t *testing.T) {
	src := &liar{core.NewSliceSource(make([]core.Edge, 10), 4)}
	if _, err := Run(src, &wccProg{}, Config{Threads: 1}); err == nil {
		t.Fatal("expected error for undersized edge declaration")
	}
}

type liar struct{ core.EdgeSource }

func (l *liar) NumEdges() int64 { return 5 } // claims 5, streams 10

func TestInvalidConfig(t *testing.T) {
	src := core.NewSliceSource([]core.Edge{{Src: 0, Dst: 1, Weight: 1}}, 2)
	if _, err := Run(src, &wccProg{}, Config{Partitions: 3}); err == nil {
		t.Fatal("non-power-of-two partitions accepted")
	}
}

// ptrState is rejected by the pod check.
type ptrProg struct{}

func (ptrProg) Name() string                                   { return "ptr" }
func (ptrProg) Init(id core.VertexID, v **int32)               {}
func (ptrProg) Scatter(e core.Edge, src **int32) (int32, bool) { return 0, false }
func (ptrProg) Gather(dst core.VertexID, v **int32, m int32)   {}

func TestPointerStateRejected(t *testing.T) {
	src := core.NewSliceSource([]core.Edge{{Src: 0, Dst: 1, Weight: 1}}, 2)
	if _, err := Run(src, ptrProg{}, Config{}); err == nil {
		t.Fatal("pointer vertex state accepted")
	}
}

func TestStatsTiming(t *testing.T) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 3, Undirected: true})
	res, err := Run(src, &wccProg{}, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.TotalTime <= 0 || s.ScatterTime <= 0 || s.GatherTime <= 0 {
		t.Fatalf("missing timings: %+v", s)
	}
	if s.BytesStreamed <= 0 || s.RandomRefs <= 0 {
		t.Fatalf("missing volume stats: %+v", s)
	}
}

// ---- selective (frontier-aware) streaming ----

type bfsState struct {
	Dist    int32
	Updated int32
}

// bfsProg is a frontier BFS: scatter fires only for vertices discovered in
// the previous iteration, which is exactly the core.FrontierProgram
// contract.
type bfsProg struct {
	root core.VertexID
	iter int32
}

func (b *bfsProg) Name() string { return "bfs-test" }

func (b *bfsProg) Init(id core.VertexID, v *bfsState) {
	if id == b.root {
		*v = bfsState{Dist: 0, Updated: 0}
	} else {
		*v = bfsState{Dist: -1, Updated: -1}
	}
}

func (b *bfsProg) StartIteration(iter int) { b.iter = int32(iter) }

func (b *bfsProg) Scatter(e core.Edge, src *bfsState) (int32, bool) {
	if src.Updated == b.iter {
		return src.Dist + 1, true
	}
	return 0, false
}

func (b *bfsProg) Gather(dst core.VertexID, v *bfsState, m int32) {
	if v.Dist < 0 {
		v.Dist = m
		v.Updated = b.iter + 1
	}
}

func (b *bfsProg) InitiallyActive(id core.VertexID, v *bfsState) bool { return id == b.root }

// combiningBFS additionally pre-aggregates updates (min), to prove the
// frontier is insensitive to combining.
type combiningBFS struct{ bfsProg }

func (c *combiningBFS) Combine(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// TestSelectiveBFSChain: on a path graph the BFS frontier is a single
// vertex per iteration, so selective streaming must skip almost every
// partition scan while producing bit-identical results.
func TestSelectiveBFSChain(t *testing.T) {
	src := graphgen.Chain(4096, 9)
	base := Config{Threads: 3, Partitions: 16}
	off, err := Run(src, &bfsProg{root: 0}, base)
	if err != nil {
		t.Fatal(err)
	}
	selCfg := base
	selCfg.Selective = true
	selCfg.TileEdges = 64
	on, err := Run(src, &bfsProg{root: 0}, selCfg)
	if err != nil {
		t.Fatal(err)
	}

	for v := range off.Vertices {
		if on.Vertices[v] != off.Vertices[v] {
			t.Fatalf("vertex %d: selective %+v, dense %+v", v, on.Vertices[v], off.Vertices[v])
		}
	}
	if off.Stats.EdgesSkipped != 0 || off.Stats.PartitionsSkipped != 0 || off.Stats.TilesSkipped != 0 {
		t.Fatalf("dense run reported skips: %+v", off.Stats)
	}
	s := on.Stats
	if s.Iterations != off.Stats.Iterations {
		t.Fatalf("iterations %d, dense %d", s.Iterations, off.Stats.Iterations)
	}
	if s.EdgesStreamed+s.EdgesSkipped != off.Stats.EdgesStreamed {
		t.Fatalf("streamed %d + skipped %d != dense streamed %d",
			s.EdgesStreamed, s.EdgesSkipped, off.Stats.EdgesStreamed)
	}
	if s.UpdatesSent != off.Stats.UpdatesSent {
		t.Fatalf("updates %d, dense %d", s.UpdatesSent, off.Stats.UpdatesSent)
	}
	if s.PartitionsSkipped == 0 || s.TilesSkipped == 0 {
		t.Fatalf("expected partition and tile skips, got %+v", s)
	}
	// The frontier is one vertex wide: the reduction must be large, not
	// marginal (the chain's dense cost is quadratic in the vertex count).
	if s.EdgesStreamed*4 > off.Stats.EdgesStreamed {
		t.Fatalf("weak reduction: %d of %d edges streamed", s.EdgesStreamed, off.Stats.EdgesStreamed)
	}
}

// TestSelectiveCombineParity: combining merges update records but must not
// change which vertices the frontier activates, so selective x combining
// agree bit-for-bit with the plain run.
func TestSelectiveCombineParity(t *testing.T) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 91, Undirected: true})
	want, err := Run(src, &combiningBFS{bfsProg{root: 5}}, Config{Threads: 2, NoCombine: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []bool{false, true} {
		for _, noCombine := range []bool{false, true} {
			res, err := Run(src, &combiningBFS{bfsProg{root: 5}}, Config{
				Threads: 3, Selective: sel, NoCombine: noCombine,
			})
			if err != nil {
				t.Fatal(err)
			}
			for v := range want.Vertices {
				if res.Vertices[v] != want.Vertices[v] {
					t.Fatalf("sel=%v nocombine=%v: vertex %d: %+v, want %+v",
						sel, noCombine, v, res.Vertices[v], want.Vertices[v])
				}
			}
			if res.Stats.EdgesStreamed+res.Stats.EdgesSkipped != want.Stats.EdgesStreamed {
				t.Fatalf("sel=%v nocombine=%v: workload does not reconcile: %+v", sel, noCombine, res.Stats)
			}
		}
	}
}

// TestSelectiveIgnoredWithoutContract: a program without FrontierProgram
// must stream densely even when Selective is requested.
func TestSelectiveIgnoredWithoutContract(t *testing.T) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 8, EdgeFactor: 8, Seed: 92, Undirected: true})
	res, err := Run(src, &wccProg{}, Config{Threads: 2, Selective: true})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.EdgesSkipped != 0 || s.PartitionsSkipped != 0 || s.TilesSkipped != 0 {
		t.Fatalf("selective fired without contract: %+v", s)
	}
	if s.EdgesStreamed != src.NumEdges()*int64(s.Iterations) {
		t.Fatalf("streamed %d, want dense %d", s.EdgesStreamed, src.NumEdges()*int64(s.Iterations))
	}
}

// TestSelectiveRandomProperty: random graphs, random configs — selective
// and dense runs must agree exactly, and the edge accounting must always
// reconcile to the dense workload.
func TestSelectiveRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		n := int64(rng.Intn(300) + 2)
		m := rng.Intn(600)
		edges := make([]core.Edge, 0, 2*m)
		for i := 0; i < m; i++ {
			a := core.VertexID(rng.Int63n(n))
			b := core.VertexID(rng.Int63n(n))
			edges = append(edges, core.Edge{Src: a, Dst: b, Weight: 1}, core.Edge{Src: b, Dst: a, Weight: 1})
		}
		src := core.NewSliceSource(edges, n)
		root := core.VertexID(rng.Int63n(n))
		cfg := Config{Threads: 1 + rng.Intn(4), Partitions: 1 << rng.Intn(4), TileEdges: 1 + rng.Intn(100)}
		dense, err := Run(src, &bfsProg{root: root}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Selective = true
		sel, err := Run(src, &bfsProg{root: root}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for v := range dense.Vertices {
			if sel.Vertices[v] != dense.Vertices[v] {
				t.Fatalf("trial %d vertex %d: %+v, want %+v", trial, v, sel.Vertices[v], dense.Vertices[v])
			}
		}
		if sel.Stats.EdgesStreamed+sel.Stats.EdgesSkipped != dense.Stats.EdgesStreamed {
			t.Fatalf("trial %d: workload does not reconcile: %+v vs dense %d",
				trial, sel.Stats, dense.Stats.EdgesStreamed)
		}
	}
}
