package memengine

// runmany.go is the in-memory engine's shared-pass execution path: a
// Prepared caches everything about a dataset that is job-independent — the
// edge list shuffled into partition chunks, the lazily built transpose, the
// tile source index — and RunMany drives any number of co-scheduled jobs
// (core.ProgramSet) from one edge stream per iteration. Each streamed run
// or tile is handed to every subscribing job's scatter sink, so the
// sequential edge stream — the dominant, fixed cost of X-Stream's model —
// is paid once per pass instead of once per job. Jobs with a frontier
// (core.FrontierProgram, Config.Selective) subscribe per partition and per
// tile: a chunk is skipped only when *no* job needs it (the frontier
// union), and a streamed tile is still withheld from jobs whose own
// frontier misses it, so every job's results and skip stats match its solo
// run. Jobs drop out as they converge; the pass ends when all are done.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/pod"
	"repro/internal/streambuf"
)

// Prepare sizes partitions for jobs of unknown state size using a nominal
// footprint (Config.Partitions overrides): a Prepared layout is shared by
// every algorithm run against the dataset.
const (
	sharedVertexBytes = 16
	sharedUpdateBytes = 12
)

// Prepared is a dataset's cached in-memory execution state, built once by
// Prepare and shared — read-only — by any number of RunMany passes. The
// transposed edge buffer and the selective-streaming tile indexes are built
// lazily, at most once. Safe for concurrent RunMany calls.
type Prepared struct {
	cfg      Config
	plan     streambuf.Plan
	asg      *core.Assignment
	part     core.Split
	partName string
	nv, ne   int64
	prepTime time.Duration

	mu       sync.Mutex
	fwd, bwd *streambuf.Buffer[core.Edge]
	tilesFwd [][]core.SrcSpan
	tilesBwd [][]core.SrcSpan
}

// Prepare ingests a graph once for shared-pass execution: it plans the
// partitioning (paying any locality-aware clustering passes now), rewrites
// the edge stream through the relabeling, and shuffles it into partition
// chunks. The returned handle is immutable from the caller's perspective
// and serves any number of jobs.
func Prepare(g core.EdgeSource, cfg Config) (*Prepared, error) {
	return prepare(g, cfg, core.Footprint(sharedVertexBytes, sharedUpdateBytes))
}

// prepare is Prepare with an explicit §4 vertex footprint for partition
// auto-sizing — the direct RunMany/RunJob paths size from their jobs'
// actual record widths, like the solo engine does.
func prepare(g core.EdgeSource, cfg Config, footprint int) (*Prepared, error) {
	cfg = cfg.withDefaults()
	t0 := time.Now()
	nv, ne := g.NumVertices(), g.NumEdges()

	k := cfg.Partitions
	if k == 0 {
		k = core.MemPartitions(nv, footprint, cfg.CacheBytes)
	}
	if k&(k-1) != 0 {
		return nil, fmt.Errorf("memengine: partition count %d is not a power of two", k)
	}
	fanout := cfg.Fanout
	if fanout == 0 {
		fanout = core.MemFanout(cfg.CacheBytes, cfg.CacheLineBytes)
	}
	if fanout > k && k > 1 {
		fanout = k
	}
	plan, err := streambuf.NewPlan(k, fanout)
	if err != nil {
		return nil, fmt.Errorf("memengine: %w", err)
	}

	pr := cfg.Partitioner
	if pr == nil {
		pr = core.RangePartitioner{}
	}
	asg, err := pr.Assign(g, k)
	if err != nil {
		return nil, fmt.Errorf("memengine: partitioner %s: %w", pr.Name(), err)
	}
	if err := asg.Validate(nv); err != nil {
		return nil, fmt.Errorf("memengine: partitioner %s: %w", pr.Name(), err)
	}
	if !asg.Identity() {
		g = graphio.Relabeled(g, asg.Relabel)
	}
	fwd, err := loadShuffled(g, plan, asg.Split, cfg.Threads)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		cfg: cfg, plan: plan, asg: asg, part: asg.Split, partName: pr.Name(),
		nv: nv, ne: ne, fwd: fwd, prepTime: time.Since(t0),
	}, nil
}

// NumVertices returns the prepared graph's vertex count.
func (pp *Prepared) NumVertices() int64 { return pp.nv }

// NumEdges returns the prepared graph's edge record count.
func (pp *Prepared) NumEdges() int64 { return pp.ne }

// Partitions returns the shared partition count.
func (pp *Prepared) Partitions() int { return pp.part.K }

// Bytes returns the handle's resident memory footprint: the shuffled edge
// buffer, the transposed buffer when it has been built, and the tile
// indexes. The serving layer's dataset registry charges this against its
// memory cap when deciding what to evict.
func (pp *Prepared) Bytes() int64 {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	edgeBytes := int64(pod.Size[core.Edge]())
	spanBytes := int64(pod.Size[core.SrcSpan]())
	n := int64(pp.fwd.Cap()) * edgeBytes
	if pp.bwd != nil {
		n += int64(pp.bwd.Cap()) * edgeBytes
	}
	for _, tiles := range [][][]core.SrcSpan{pp.tilesFwd, pp.tilesBwd} {
		for _, t := range tiles {
			n += int64(len(t)) * spanBytes
		}
	}
	return n
}

// edges returns the edge buffer (and, when wanted, tile index) for a
// direction, building the transpose and index lazily, at most once.
func (pp *Prepared) edges(dir core.Direction, needTiles bool) (*streambuf.Buffer[core.Edge], [][]core.SrcSpan, error) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	buf, tiles := pp.fwd, &pp.tilesFwd
	if dir == core.Backward {
		if pp.bwd == nil {
			rev, err := reverseShuffled(pp.fwd, pp.plan, pp.part, pp.cfg.Threads)
			if err != nil {
				return nil, nil, err
			}
			pp.bwd = rev
		}
		buf, tiles = pp.bwd, &pp.tilesBwd
	}
	if needTiles && *tiles == nil {
		*tiles = buildTileIndex(buf, pp.part.K, pp.cfg.TileEdges)
	}
	return buf, *tiles, nil
}

// RunMany executes every job of set against g with the in-memory engine,
// sharing one edge stream per iteration. See Prepared.RunMany.
func RunMany(ctx context.Context, g core.EdgeSource, set core.ProgramSet, cfg Config) ([]core.JobResult, core.Stats, error) {
	foot := 0
	for _, j := range set {
		if f := core.Footprint(j.VertexBytes(), j.UpdateBytes()); f > foot {
			foot = f
		}
	}
	if foot == 0 {
		foot = core.Footprint(sharedVertexBytes, sharedUpdateBytes)
	}
	pp, err := prepare(g, cfg, foot)
	if err != nil {
		return nil, core.Stats{}, err
	}
	return pp.RunMany(ctx, set)
}

// RunJob executes a single type-erased job — the registry-driven
// counterpart of Run, used by cmd/xstream and single-job serving paths.
func RunJob(ctx context.Context, g core.EdgeSource, job *core.Job, cfg Config) (*core.JobResult, error) {
	res, pass, err := RunMany(ctx, g, core.ProgramSet{job}, cfg)
	if err != nil {
		return nil, err
	}
	out := res[0]
	// A solo pass's shared-side accounting is the job's own.
	out.Stats.PreprocessTime = pass.PreprocessTime
	out.Stats.ScatterTime = pass.ScatterTime
	core.GraftPassIters(out.Stats.Iters, pass.Iters)
	return &out, nil
}

// RunMany drives all jobs of set from one edge stream per iteration. It
// returns each job's result (final vertex states in input order plus the
// job's own stats) and the pass-level stats, whose EdgesStreamed counts
// every edge record once however many jobs consumed it and whose
// EdgesShared counts the reads the sharing avoided. ctx cancels the pass
// between iterations and between partition chunks; nil means Background.
func (pp *Prepared) RunMany(ctx context.Context, set core.ProgramSet) ([]core.JobResult, core.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(set) == 0 {
		return nil, core.Stats{}, fmt.Errorf("memengine: RunMany of an empty program set")
	}
	cfg := pp.cfg
	start := time.Now()
	pass := core.Stats{
		Algorithm: set.Label(), Engine: "memory", Partitioner: pp.partName,
		Partitions: pp.part.K, Threads: cfg.Threads, CoJobs: len(set),
		PreprocessTime: pp.prepTime,
	}

	runs := make([]core.JobRun, len(set))
	for i, j := range set {
		if err := j.Check(); err != nil {
			return nil, pass, fmt.Errorf("memengine: job %s: %w", j.Name(), err)
		}
		runs[i] = j.NewRun()
		err := runs[i].Setup(core.JobSetup{
			Assignment: pp.asg, NumVertices: pp.nv, NumEdges: pp.ne,
			Threads: cfg.Threads, Plan: pp.plan, UpdateCap: int(pp.ne),
			PrivateBufBytes: cfg.PrivateBufBytes,
			NoCombine:       cfg.NoCombine, Selective: cfg.Selective,
			Exchange: cfg.Exchange,
		})
		if err != nil {
			return nil, pass, fmt.Errorf("memengine: %w", err)
		}
	}

	live := make([]core.JobRun, 0, len(runs))
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		live = live[:0]
		for _, r := range runs {
			if !r.Done() {
				live = append(live, r)
			}
		}
		if len(live) == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, pass, err
		}
		iterStart := time.Now()
		iterMark := pass.MarkIter()
		for _, r := range live {
			r.StartIteration(iter)
			r.BeginScatter()
		}

		// One shared scatter per direction a live job asked for: jobs that
		// agree on orientation (the common same-algorithm batch) share the
		// stream; disagreeing jobs cost one extra stream, never one per job.
		t0 := time.Now()
		for _, dir := range []core.Direction{core.Forward, core.Backward} {
			var subs []core.JobRun
			needTiles := false
			for _, r := range live {
				if r.Direction(iter) == dir {
					subs = append(subs, r)
					if !r.Dense() {
						needTiles = true
					}
				}
			}
			if len(subs) == 0 {
				continue
			}
			edges, tiles, err := pp.edges(dir, needTiles)
			if err != nil {
				return nil, pass, err
			}
			if err := pp.scatterShared(ctx, &pass, subs, edges, tiles); err != nil {
				return nil, pass, err
			}
		}
		scatterDur := time.Since(t0)
		pass.ScatterTime += scatterDur

		t1 := time.Now()
		if err := core.EndAndGather(live); err != nil {
			return nil, pass, err
		}
		gatherDur := time.Since(t1)
		pass.GatherTime += gatherDur
		for _, r := range live {
			r.EndIteration(iter)
		}
		pass.Iterations = iter + 1
		pass.PushIter(iter, iterMark, time.Since(iterStart))
		if tr := cfg.Tracer; tr != nil {
			it := int64(iter)
			tr.Span(0, "scatter", t0, scatterDur, map[string]int64{"iter": it, "jobs": int64(len(live))})
			tr.Span(0, "gather", t1, gatherDur, map[string]int64{"iter": it, "jobs": int64(len(live))})
			tr.Span(0, "iteration", iterStart, time.Since(iterStart), map[string]int64{"iter": it})
		}
	}

	results := make([]core.JobResult, len(runs))
	for i, r := range runs {
		verts, js, err := r.Finalize()
		if err != nil {
			return nil, pass, err
		}
		js.Engine, js.Partitioner = pass.Engine, pass.Partitioner
		js.Partitions, js.Threads, js.CoJobs = pass.Partitions, pass.Threads, pass.CoJobs
		js.TotalTime = time.Since(start)
		results[i] = core.JobResult{Vertices: verts, Stats: js}
		pass.UpdatesSent += js.UpdatesSent
		pass.WastedEdges += js.WastedEdges
		pass.CrossPartitionUpdates += js.CrossPartitionUpdates
		pass.UpdatesCombined += js.UpdatesCombined
		pass.UpdateBytes += js.UpdateBytes
		pass.RandomRefs += js.RandomRefs
		pass.TransportBatches += js.TransportBatches
		pass.TransportBytes += js.TransportBytes
		pass.TransportCross += js.TransportCross
		pass.EdgesShared += js.EdgesStreamed
	}
	pass.EdgesShared -= pass.EdgesStreamed
	if pass.EdgesShared < 0 {
		pass.EdgesShared = 0
	}
	pass.TotalTime = time.Since(start)
	if tr := cfg.Tracer; tr != nil {
		tr.Span(0, "run", start, pass.TotalTime, map[string]int64{
			"iterations": int64(pass.Iterations), "jobs": int64(len(set)),
		})
	}
	return results, pass, nil
}

// scatterShared streams every partition's edge chunk once, feeding each run
// or tile to every subscribing job. Partitions are claimed by worker
// threads from a shared cursor (work stealing, §4.1), exactly as in the
// solo engine.
func (pp *Prepared) scatterShared(ctx context.Context, pass *core.Stats, subs []core.JobRun, edges *streambuf.Buffer[core.Edge], tiles [][]core.SrcSpan) error {
	var streamed, skippedEdges, skippedParts, skippedTiles atomic.Int64
	var cancelled atomic.Bool
	tr := pp.cfg.Tracer

	forEachPartition(pp.part.K, pp.cfg.Threads, pp.cfg.NoWorkStealing, func(w, p int) {
		if cancelled.Load() {
			return
		}
		if ctx.Err() != nil {
			cancelled.Store(true)
			return
		}
		var pStart time.Time
		if tr != nil {
			pStart = time.Now()
		}
		var pEdges int64
		chunkLen := int64(edges.BucketLen(p))
		needing := make([]core.JobRun, 0, len(subs))
		partial := false
		for _, r := range subs {
			if r.NeedsPartition(p) {
				needing = append(needing, r)
				if r.PartiallyActive(p) {
					partial = true
				}
			} else {
				r.SkipPartition(chunkLen)
			}
		}
		if len(needing) == 0 {
			// No job needs the chunk: the pass skips it whole. An edgeless
			// partition elides nothing, so it is not counted.
			if chunkLen > 0 {
				skippedEdges.Add(chunkLen)
				skippedParts.Add(1)
			}
			return
		}
		scatters := make([]core.JobScatter, len(needing))
		for i, r := range needing {
			scatters[i] = r.NewScatter(p, chunkLen)
		}
		if partial && tiles != nil {
			// Tile-granular scheduling: a tile is streamed when any job's
			// frontier intersects its source span, and still withheld from
			// the jobs whose own frontier misses it — per-job results and
			// skip accounting match a solo selective run.
			spans := tiles[p]
			ti := 0
			edges.BucketTiles(p, pp.cfg.TileEdges, func(tile []core.Edge) {
				span := spans[ti]
				ti++
				took := false
				for i, r := range needing {
					if r.NeedsTile(span) {
						scatters[i].Edges(tile)
						took = true
					} else {
						r.SkipTiles(int64(len(tile)), 1)
					}
				}
				if took {
					streamed.Add(int64(len(tile)))
					pEdges += int64(len(tile))
				} else {
					skippedEdges.Add(int64(len(tile)))
					skippedTiles.Add(1)
				}
			})
		} else {
			edges.Bucket(p, func(run []core.Edge) {
				for _, sc := range scatters {
					sc.Edges(run)
				}
				streamed.Add(int64(len(run)))
				pEdges += int64(len(run))
			})
		}
		for _, sc := range scatters {
			sc.Flush()
		}
		if tr != nil {
			tr.Span(1+w, "partition", pStart, time.Since(pStart),
				map[string]int64{"p": int64(p), "edges": pEdges, "jobs": int64(len(needing))})
		}
	})
	if cancelled.Load() {
		return ctx.Err()
	}
	n := streamed.Load()
	pass.EdgesStreamed += n
	pass.EdgesSkipped += skippedEdges.Load()
	pass.PartitionsSkipped += skippedParts.Load()
	pass.TilesSkipped += skippedTiles.Load()
	pass.BytesStreamed += n * int64(pod.Size[core.Edge]())
	pass.SequentialRefs += n
	return nil
}

// forEachPartition runs fn over all partitions, passing the worker index
// (0-based; tracers key per-worker span tracks off it) alongside the
// partition: by default workers claim the next unprocessed partition
// from a shared cursor (work stealing, §4.1); noSteal switches to the
// static round-robin assignment of the solo engine's NoWorkStealing
// ablation.
func forEachPartition(k, workers int, noSteal bool, fn func(w, p int)) {
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		for p := 0; p < k; p++ {
			fn(0, p)
		}
		return
	}
	var wg sync.WaitGroup
	if noSteal {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for p := w; p < k; p += workers {
					fn(w, p)
				}
			}(w)
		}
		wg.Wait()
		return
	}
	var cursor atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				p := int(cursor.Add(1)) - 1
				if p >= k {
					return
				}
				fn(w, p)
			}
		}(w)
	}
	wg.Wait()
}

// loadShuffled streams src into a buffer and shuffles it by source
// partition — the engine's entire pre-processing (one pass, no sort).
func loadShuffled(src core.EdgeSource, plan streambuf.Plan, part core.Split, threads int) (*streambuf.Buffer[core.Edge], error) {
	a := streambuf.New[core.Edge](int(src.NumEdges()))
	err := src.Edges(func(batch []core.Edge) error {
		if !a.Append(batch) {
			return fmt.Errorf("memengine: edge source produced more than its declared %d edges", src.NumEdges())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	b := streambuf.New[core.Edge](a.Cap())
	return streambuf.Shuffle(a, b, plan, threads, func(ed core.Edge) uint32 {
		return part.Of(ed.Src)
	}), nil
}

// reverseShuffled builds the transposed, re-partitioned edge buffer with one
// streaming pass over the forward buffer. A failed append means the
// transpose would silently truncate, so it is fatal.
func reverseShuffled(fwd *streambuf.Buffer[core.Edge], plan streambuf.Plan, part core.Split, threads int) (*streambuf.Buffer[core.Edge], error) {
	a := streambuf.New[core.Edge](fwd.Cap())
	batch := make([]core.Edge, 0, 64<<10)
	overflowed := false
	for p := 0; p < part.K; p++ {
		fwd.Bucket(p, func(run []core.Edge) {
			for _, ed := range run {
				batch = append(batch, core.Edge{Src: ed.Dst, Dst: ed.Src, Weight: ed.Weight})
				if len(batch) == cap(batch) {
					if !a.Append(batch) {
						overflowed = true
					}
					batch = batch[:0]
				}
			}
		})
	}
	if !a.Append(batch) {
		overflowed = true
	}
	if overflowed {
		return nil, fmt.Errorf("memengine: transpose overflow: more than %d edges in the forward buffer", a.Cap())
	}
	b := streambuf.New[core.Edge](a.Cap())
	return streambuf.Shuffle(a, b, plan, threads, func(ed core.Edge) uint32 {
		return part.Of(ed.Src)
	}), nil
}
