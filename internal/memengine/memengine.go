// Package memengine is X-Stream's in-memory streaming engine (paper §4).
//
// The engine processes graphs whose vertices, edges and updates fit in
// memory. Fast Storage is the CPU cache, Slow Storage is RAM: the number of
// streaming partitions is chosen so the vertex *footprint* of one partition
// fits in a core's cache share, edges and updates are streamed sequentially
// through stream buffers, and updates are routed to partitions with the
// parallel multi-stage shuffler of internal/streambuf.
//
// Parallelism follows the paper: partitions are the unit of work for
// scatter and gather, claimed by threads from a shared cursor (work
// stealing, §4.1); threads append updates through small private buffers
// flushed into the shared output buffer by atomic reservation; the shuffle
// runs lock-free on per-thread slices (§4.2).
//
// When the program implements core.Combiner the private buffers become
// combining buffers and the shuffled result is folded per partition, so
// the stream the gather phase random-accesses vertices for is
// pre-aggregated (see Config.NoCombine and the figcombine experiment).
//
// When the program additionally implements core.FrontierProgram and
// Config.Selective is set, the engine keeps an active-vertex frontier
// across iterations and skips the edge chunks of partitions with no active
// source — and, via a per-tile source index built once at setup, skips
// fixed-size tiles inside partially active partitions. This closes the
// paper's §5.3 loss case (frontier algorithms re-streaming edges whose
// sources cannot scatter) while preserving the streaming-partition
// architecture; see the figfrontier experiment.
package memengine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/pod"
	"repro/internal/streambuf"
)

// Config tunes the in-memory engine. The zero value auto-sizes everything
// the way the paper describes: partitions from the cache size and vertex
// footprint (§4), shuffler fanout from the cache line count (§4.2).
type Config struct {
	// Threads is the number of worker threads. 0 means GOMAXPROCS.
	Threads int
	// CacheBytes is the per-core cache share used to size partitions.
	// 0 means 2 MiB (the testbed's L2 share, §5.1).
	CacheBytes int
	// CacheLineBytes sizes the shuffler fanout bound. 0 means 64.
	CacheLineBytes int
	// Partitions forces the partition count (must be a power of two).
	// 0 means automatic.
	Partitions int
	// Fanout forces the shuffler fanout (power of two >= 2). 0 means
	// automatic.
	Fanout int
	// MaxIterations bounds the scatter-gather loop as a safety net.
	// 0 means 1<<20.
	MaxIterations int
	// NoWorkStealing statically assigns partitions to threads instead of
	// letting idle threads claim the next unprocessed partition. Only
	// used by the work-stealing ablation benchmark.
	NoWorkStealing bool
	// PrivateBufBytes is the size of each thread's private append buffer
	// (§4.1). 0 means 8 KiB, the paper's value.
	PrivateBufBytes int
	// Partitioner chooses how vertices map to streaming partitions. nil
	// means core.RangePartitioner (the paper's fixed contiguous split).
	// Locality-aware partitioners relabel vertices during pre-processing;
	// the engine still returns vertex states in original input order.
	Partitioner core.Partitioner
	// NoCombine disables update combining even when the program
	// implements core.Combiner; used by ablation benchmarks and the
	// combiner-equivalence tests.
	NoCombine bool
	// Selective enables frontier-aware selective scatter for programs
	// implementing core.FrontierProgram: the engine maintains an active-
	// vertex bitset across iterations (a vertex is active iff it received
	// an update last iteration) and skips the edge chunk of any partition
	// with no active source — and, inside partially active partitions,
	// any fixed-size edge tile whose source summary holds no active
	// vertex. By the FrontierProgram contract every skipped edge would
	// have produced no update, so results are identical with Selective on
	// or off; Stats.EdgesSkipped / PartitionsSkipped / TilesSkipped
	// measure the elided work. Ignored for programs without the contract
	// (and for PhasedPrograms, whose EndIteration hook can activate
	// vertices the update stream never saw).
	Selective bool
	// TileEdges is the tile granularity (edge records) of selective
	// skipping inside partially active partitions. 0 means 4096.
	TileEdges int
	// Context cancels the run: it is checked between iterations and
	// between partition chunks inside the scatter phase, so server jobs
	// honor cancelation and deadlines promptly. nil means
	// context.Background(), keeping batch callers unchanged.
	Context context.Context
	// Tracer receives run → iteration → phase → partition spans. nil
	// (the default) disables tracing; a Tracer never changes any work
	// metric, only observes timing (the figobs experiment gates this).
	Tracer core.Tracer
	// Exchange, when non-nil, replaces the builtin in-memory shuffle
	// transport with a frame-level update exchange (see core.Exchange):
	// the factory is called once with the partition count and the run's
	// update stream moves through core.NewExchangeTransport over it. Used
	// by the loopback worker transport in internal/transport and, later,
	// by a network exchange. nil (the default) keeps the builtin shuffle.
	Exchange func(k int) core.Exchange
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 2 << 20
	}
	if c.CacheLineBytes <= 0 {
		c.CacheLineBytes = 64
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 1 << 20
	}
	if c.PrivateBufBytes <= 0 {
		c.PrivateBufBytes = 8 << 10
	}
	if c.TileEdges <= 0 {
		c.TileEdges = 4096
	}
	if c.Context == nil {
		c.Context = context.Background()
	}
	return c
}

// Result carries the final vertex states and execution statistics.
type Result[V any] struct {
	Vertices []V
	Stats    core.Stats
}

// Run executes prog on g with the in-memory engine and returns the final
// vertex states.
func Run[V, M any](g core.EdgeSource, prog core.Program[V, M], cfg Config) (*Result[V], error) {
	cfg = cfg.withDefaults()
	if err := pod.Check[V](); err != nil {
		return nil, fmt.Errorf("memengine: vertex state: %w", err)
	}
	if err := pod.Check[M](); err != nil {
		return nil, fmt.Errorf("memengine: update value: %w", err)
	}

	start := time.Now()
	nv := g.NumVertices()
	ne := g.NumEdges()

	// Partition count from the §4 footprint rule; fanout from §4.2.
	k := cfg.Partitions
	if k == 0 {
		foot := core.Footprint(pod.Size[V](), pod.Size[core.Update[M]]())
		k = core.MemPartitions(nv, foot, cfg.CacheBytes)
	}
	if k&(k-1) != 0 {
		return nil, fmt.Errorf("memengine: partition count %d is not a power of two", k)
	}
	fanout := cfg.Fanout
	if fanout == 0 {
		fanout = core.MemFanout(cfg.CacheBytes, cfg.CacheLineBytes)
	}
	if fanout > k && k > 1 {
		fanout = k
	}
	plan, err := streambuf.NewPlan(k, fanout)
	if err != nil {
		return nil, fmt.Errorf("memengine: %w", err)
	}

	// Partitioning policy: plan the vertex->partition assignment, rewrite
	// the edge stream through the relabeling if there is one, and let the
	// program translate any ID-valued parameters.
	pr := cfg.Partitioner
	if pr == nil {
		pr = core.RangePartitioner{}
	}
	t0 := time.Now()
	asg, err := pr.Assign(g, k)
	if err != nil {
		return nil, fmt.Errorf("memengine: partitioner %s: %w", pr.Name(), err)
	}
	if err := asg.Validate(nv); err != nil {
		return nil, fmt.Errorf("memengine: partitioner %s: %w", pr.Name(), err)
	}
	if vm, ok := any(prog).(core.VertexMapper); ok {
		vm.MapVertices(nv, asg.NewID, asg.OldID)
	}
	if !asg.Identity() {
		g = graphio.Relabeled(g, asg.Relabel)
	}

	e := &engine[V, M]{
		cfg:  cfg,
		ctx:  cfg.Context,
		prog: prog,
		part: asg.Split,
		asg:  asg,
		plan: plan,
		nv:   nv,
		ne:   ne,
	}
	if cb, ok := any(prog).(core.Combiner[M]); ok && !cfg.NoCombine {
		e.combine = cb.Combine
		e.folder = core.NewUpdateFolder(asg.Split, cfg.Threads, cb.Combine)
	}
	// Vertex replication needs the Combiner to merge mirror accumulators;
	// without one the assignment's mirror set is ignored (the fallback).
	if e.combine != nil && asg.Mirrors.Len() > 0 {
		e.rep = asg.Mirrors
		e.stats.MirroredVertices = asg.Mirrors.Len()
		e.mbPool.New = func() any { return core.NewMirrorBuffer(e.rep, e.combine) }
	}
	// Selective scheduling requires the FrontierProgram contract; phased
	// programs are excluded because EndIteration may activate vertices
	// through the VertexView without any update the frontier could see.
	if cfg.Selective {
		if fp, ok := any(prog).(core.FrontierProgram[V]); ok {
			if _, phased := any(prog).(core.PhasedProgram[V, M]); !phased {
				e.fp = fp
				e.cur = core.NewFrontier(nv)
				e.nxt = core.NewFrontier(nv)
			}
		}
	}
	e.stats.Algorithm = prog.Name()
	e.stats.Engine = "memory"
	e.stats.Partitioner = pr.Name()
	e.stats.Partitions = k
	e.stats.Threads = cfg.Threads

	if err := e.setup(g); err != nil {
		return nil, err
	}
	defer e.tp.Close()
	e.stats.PreprocessTime = time.Since(t0)
	if tr := cfg.Tracer; tr != nil {
		tr.Span(0, "preprocess", t0, e.stats.PreprocessTime, nil)
	}
	if err := e.loop(); err != nil {
		return nil, err
	}
	tc := e.tp.Counters()
	e.stats.TransportBatches = tc.Batches
	e.stats.TransportBytes = tc.Bytes
	e.stats.TransportCross = tc.Cross

	// Report results in original input order: remap ID-valued state, then
	// undo the relabeling permutation.
	if !asg.Identity() {
		if rm, ok := any(prog).(core.StateRemapper[V]); ok {
			for i := range e.verts {
				rm.RemapState(&e.verts[i], asg.OldID)
			}
		}
		e.verts = core.RestoreOrder(e.verts, asg.Relabel)
	}
	e.stats.TotalTime = time.Since(start)
	if tr := cfg.Tracer; tr != nil {
		tr.Span(0, "run", start, e.stats.TotalTime, map[string]int64{
			"iterations": int64(e.stats.Iterations),
			"partitions": int64(e.stats.Partitions),
		})
	}
	return &Result[V]{Vertices: e.verts, Stats: e.stats}, nil
}

type engine[V, M any] struct {
	cfg  Config
	ctx  context.Context
	prog core.Program[V, M]
	part core.Split
	asg  *core.Assignment
	plan streambuf.Plan
	nv   int64
	ne   int64
	// combine is the program's update semigroup, nil when the program has
	// none (or Config.NoCombine disabled it); folder is the reusable
	// post-shuffle fold over it (nil when partitions are too wide); rep is
	// the assignment's mirror set, nil unless replication is active (a
	// planned set with no Combiner falls back to nil).
	combine func(a, b M) M
	folder  *streambuf.Folder[core.Update[M]]
	rep     *core.Replication
	// mbPool recycles mirror accumulators across partition tasks and
	// iterations: a flushed buffer is clean, and with the default hub
	// cap scaling as n/64 a fresh allocation per task would churn.
	mbPool sync.Pool
	// Selective scheduling state (nil fp = dense streaming): cur is the
	// frontier scattered this iteration, nxt collects gather receivers for
	// the next, active caches cur's per-partition counts for one scatter.
	fp       core.FrontierProgram[V]
	cur, nxt *core.Frontier
	active   []int64

	verts []V
	// Edge stream buffers, bucketed by partition of the source vertex.
	// edgesBwd is built lazily the first time a DirectedProgram asks for
	// a Backward iteration (§2: transposes are a streaming pass).
	// tilesFwd/tilesBwd are the matching per-partition tile source
	// summaries (min/max source ID per BucketTiles tile), indexed only
	// when selective scheduling is on.
	edgesFwd *streambuf.Buffer[core.Edge]
	edgesBwd *streambuf.Buffer[core.Edge]
	tilesFwd [][]core.SrcSpan
	tilesBwd [][]core.SrcSpan
	// tp is the update transport between scatter and gather: the builtin
	// counting shuffle by default (the engine's three stream buffers, §4),
	// or an exchange adapter when Config.Exchange is set.
	tp core.UpdateTransport[M]

	stats core.Stats
}

// setup initializes vertex state and shuffles the unordered edge list into
// per-partition chunks (this is the engine's only pre-processing; no sort).
func (e *engine[V, M]) setup(g core.EdgeSource) error {
	e.verts = make([]V, e.nv)
	e.parallelVertices(func(id core.VertexID, v *V) {
		e.prog.Init(id, v)
		if e.fp != nil && e.fp.InitiallyActive(id, v) {
			e.cur.Mark(id)
		}
	})

	buf, err := e.loadEdges(g)
	if err != nil {
		return err
	}
	e.edgesFwd = buf
	if e.fp != nil {
		e.tilesFwd = buildTileIndex(buf, e.part.K, e.cfg.TileEdges)
	}

	updCap := int(e.ne)
	key := func(u core.Update[M]) uint32 { return e.part.Of(u.Dst) }
	if e.cfg.Exchange != nil {
		e.tp = core.NewExchangeTransport(e.cfg.Exchange(e.part.K), e.part.K, updCap, e.plan, e.cfg.Threads, key, e.folder)
	} else {
		e.tp = core.NewShuffleTransport(updCap, e.plan, e.cfg.Threads, key, e.folder)
	}
	return nil
}

// buildTileIndex walks every partition's edge chunk in BucketTiles order
// and records each tile's source span. The buffer is shuffled once at
// setup and never changes, so a scatter walking BucketTiles with the same
// tile size sees exactly the indexed tiles.
func buildTileIndex(buf *streambuf.Buffer[core.Edge], k, tileRecs int) [][]core.SrcSpan {
	idx := make([][]core.SrcSpan, k)
	for p := 0; p < k; p++ {
		buf.BucketTiles(p, tileRecs, func(tile []core.Edge) {
			span := core.NewSrcSpan(tile[0].Src)
			for _, ed := range tile[1:] {
				span.Add(ed.Src)
			}
			idx[p] = append(idx[p], span)
		})
	}
	return idx
}

// loadEdges streams src into a buffer and shuffles it by source partition.
func (e *engine[V, M]) loadEdges(src core.EdgeSource) (*streambuf.Buffer[core.Edge], error) {
	return loadShuffled(src, e.plan, e.part, e.cfg.Threads)
}

// loop runs the synchronous scatter-shuffle-gather iterations.
func (e *engine[V, M]) loop() error {
	directed, isDirected := any(e.prog).(core.DirectedProgram)
	phased, isPhased := any(e.prog).(core.PhasedProgram[V, M])
	usize := pod.Size[core.Update[M]]()
	esize := pod.Size[core.Edge]()
	tr := e.cfg.Tracer

	for iter := 0; iter < e.cfg.MaxIterations; iter++ {
		if err := e.ctx.Err(); err != nil {
			return err
		}
		iterStart := time.Now()
		iterMark := e.stats.MarkIter()
		if s, ok := any(e.prog).(core.IterationStarter); ok {
			s.StartIteration(iter)
		}

		edges, tiles := e.edgesFwd, e.tilesFwd
		if isDirected && directed.Direction(iter) == core.Backward {
			if e.edgesBwd == nil {
				rev, err := e.reverseEdges()
				if err != nil {
					return err
				}
				e.edgesBwd = rev
				if e.fp != nil {
					e.tilesBwd = buildTileIndex(rev, e.part.K, e.cfg.TileEdges)
				}
			}
			edges, tiles = e.edgesBwd, e.tilesBwd
		}

		// Scatter phase. With a Combiner, thread-private combining buffers
		// absorb same-destination updates before they reach the shared
		// stream, so appended ≤ sent. With selective scheduling, the
		// frontier's per-partition counts decide which chunks and tiles
		// are streamed at all.
		t0 := time.Now()
		if e.fp != nil {
			e.active = e.cur.CountByPartition(e.part)
		}
		sc, err := e.scatter(edges, tiles)
		if err != nil {
			return err
		}
		sent, streamed := sc.sent, sc.streamed
		appended := sent - sc.combined
		scatterDur := time.Since(t0)
		e.stats.ScatterTime += scatterDur
		e.stats.CrossPartitionUpdates += sc.cross
		e.stats.MirrorSyncUpdates += sc.synced
		e.stats.EdgesStreamed += streamed
		e.stats.UpdatesSent += sent
		e.stats.WastedEdges += streamed - sent
		e.stats.EdgesSkipped += sc.skippedEdges
		e.stats.PartitionsSkipped += sc.skippedParts
		e.stats.TilesSkipped += sc.skippedTiles
		e.stats.RandomRefs += streamed // one vertex load per edge
		e.stats.SequentialRefs += streamed
		e.stats.BytesStreamed += streamed * int64(esize)

		// Shuffle phase — now the transport's Seal: updates are routed to
		// their destination partitions and, with a Combiner, the
		// per-partition fold merges surviving same-destination records
		// before gather.
		t1 := time.Now()
		flow, err := e.tp.Seal()
		if err != nil {
			return err
		}
		foldCombined := flow.Combined
		gathered := appended - foldCombined
		shuffleDur := time.Since(t1)
		e.stats.ShuffleTime += shuffleDur
		e.stats.UpdatesCombined += sc.combined + foldCombined
		e.stats.UpdateBytes += gathered * int64(usize)
		e.stats.BytesStreamed += (appended*int64(e.plan.NumStages()+1) + gathered) * int64(usize)
		e.stats.SequentialRefs += appended*int64(e.plan.NumStages()+1) + gathered

		// Gather phase; with selective scheduling it doubles as the census
		// for the next frontier (receivers become active).
		t2 := time.Now()
		if err := e.gather(); err != nil {
			return err
		}
		gatherDur := time.Since(t2)
		e.stats.GatherTime += gatherDur
		e.stats.RandomRefs += gathered
		if err := e.tp.EndIteration(); err != nil {
			return err
		}
		if e.fp != nil {
			e.cur, e.nxt = e.nxt, e.cur
			e.nxt.Clear()
		}

		e.stats.Iterations = iter + 1
		e.stats.PushIter(iter, iterMark, time.Since(iterStart))
		if tr != nil {
			it := int64(iter)
			tr.Span(0, "scatter", t0, scatterDur, map[string]int64{"iter": it, "edges": streamed, "updates": sent})
			tr.Span(0, "shuffle", t1, shuffleDur, map[string]int64{"iter": it, "records": appended})
			tr.Span(0, "gather", t2, gatherDur, map[string]int64{"iter": it, "updates": gathered})
			tr.Span(0, "iteration", iterStart, time.Since(iterStart), map[string]int64{"iter": it})
		}
		if isPhased {
			if phased.EndIteration(iter, sent, core.SliceView[V](e.verts)) {
				return nil
			}
		} else if sent == 0 {
			return nil
		}
	}
	return nil
}

// reverseEdges builds the transposed, re-partitioned edge buffer. A failed
// append means the transpose would silently truncate, so it is fatal.
func (e *engine[V, M]) reverseEdges() (*streambuf.Buffer[core.Edge], error) {
	return reverseShuffled(e.edgesFwd, e.plan, e.part, e.cfg.Threads)
}

// scatterCounts aggregates one scatter phase's accounting.
type scatterCounts struct {
	sent     int64 // updates produced by Scatter (pre-combining)
	streamed int64 // edge records streamed
	cross    int64 // updates addressed outside their source partition
	combined int64 // updates merged away by scatter-side combining
	synced   int64 // master-mirror sync updates flushed (replication)
	// selective-scheduling elisions
	skippedEdges int64 // edges not streamed (inactive partition or tile)
	skippedParts int64 // whole partition chunks skipped
	skippedTiles int64 // tiles skipped inside partially active partitions
}

// scatter streams every partition's edge chunk, appending updates through
// thread-private buffers (§4.1) — plain append buffers normally, combining
// buffers when the program has a Combiner. With selective scheduling,
// partitions with no active source are skipped whole, and inside partially
// active partitions each fixed-size tile is streamed only when its source
// span intersects the frontier.
func (e *engine[V, M]) scatter(edges *streambuf.Buffer[core.Edge], tiles [][]core.SrcSpan) (scatterCounts, error) {
	var sentTotal, streamedTotal, crossTotal, combinedTotal, syncTotal atomic.Int64
	var skippedEdges, skippedParts, skippedTiles atomic.Int64
	var overflow atomic.Bool
	basePriv := e.cfg.PrivateBufBytes / pod.Size[core.Update[M]]()
	if basePriv < 1 {
		basePriv = 1
	}
	tr := e.cfg.Tracer

	e.forEachPartition(func(w, p int) {
		if e.ctx.Err() != nil {
			return // cancelation between partition chunks
		}
		var pStart time.Time
		if tr != nil {
			pStart = time.Now()
		}
		chunkLen := int64(edges.BucketLen(p))
		lo, hi := e.part.Range(p, e.nv)
		if e.fp != nil && e.active[p] == 0 {
			// No active source anywhere in the partition: by the
			// FrontierProgram contract the whole chunk is a no-op. An
			// edgeless partition elides nothing, so it is not counted.
			if chunkLen > 0 {
				skippedEdges.Add(chunkLen)
				skippedParts.Add(1)
			}
			return
		}

		var nSent, nStreamed, nCross int64
		flush := func(recs []core.Update[M]) {
			if !e.tp.Send(p, recs) {
				overflow.Store(true)
			}
		}
		// scan processes one run (or tile) of the chunk; finish drains the
		// task-private buffer once all runs are done.
		var scan func(run []core.Edge)
		var finish func()
		if e.combine != nil {
			// One combining buffer per partition task: merging is a
			// deterministic function of the partition's edge order,
			// independent of which thread claims it. Its capacity scales
			// with the partition's average out-degree — denser partitions
			// repeat destinations more, so a wider window combines more.
			cb := core.NewCombineBuffer[M](core.DegreeAwareBufRecs(basePriv, chunkLen, hi-lo), e.combine)
			// With replication, updates addressed to mirrored hubs are
			// merged into the partition-local mirror accumulator instead
			// of entering the update stream; the accumulator flushes one
			// sync update per touched hub when the partition is done.
			var mb *core.MirrorBuffer[M]
			if e.rep != nil {
				mb = e.mbPool.Get().(*core.MirrorBuffer[M])
			}
			scan = func(run []core.Edge) {
				if overflow.Load() {
					return
				}
				for _, ed := range run {
					nStreamed++
					if m, ok := e.prog.Scatter(ed, &e.verts[ed.Src]); ok {
						nSent++
						if mb != nil && mb.Absorb(ed.Dst, m) {
							continue
						}
						if e.part.Of(ed.Dst) != uint32(p) {
							nCross++
						}
						if cb.Add(ed.Dst, m) {
							cb.Drain(flush)
						}
					}
				}
			}
			finish = func() {
				if mb != nil {
					combinedTotal.Add(mb.Merged)
					syncTotal.Add(mb.Flush(func(u core.Update[M]) {
						if e.part.Of(u.Dst) != uint32(p) {
							nCross++
						}
						if cb.Add(u.Dst, u.Val) {
							cb.Drain(flush)
						}
					}))
					e.mbPool.Put(mb)
				}
				cb.Drain(flush)
				combinedTotal.Add(cb.Combined)
			}
		} else {
			priv := make([]core.Update[M], 0, basePriv)
			scan = func(run []core.Edge) {
				if overflow.Load() {
					return
				}
				for _, ed := range run {
					nStreamed++
					if m, ok := e.prog.Scatter(ed, &e.verts[ed.Src]); ok {
						nSent++
						if e.part.Of(ed.Dst) != uint32(p) {
							nCross++
						}
						priv = append(priv, core.Update[M]{Dst: ed.Dst, Val: m})
						if len(priv) == cap(priv) {
							flush(priv)
							priv = priv[:0]
						}
					}
				}
			}
			finish = func() {
				if len(priv) > 0 {
					flush(priv)
				}
			}
		}

		if e.fp != nil && e.active[p] < hi-lo && tiles != nil {
			// Partially active partition: walk the chunk tile by tile and
			// skip every tile whose source span misses the frontier. The
			// walk mirrors buildTileIndex exactly (same buffer, same tile
			// size), so index i always describes the i-th tile seen.
			spans := tiles[p]
			ti := 0
			edges.BucketTiles(p, e.cfg.TileEdges, func(tile []core.Edge) {
				span := spans[ti]
				ti++
				if !span.Intersects(e.cur) {
					skippedEdges.Add(int64(len(tile)))
					skippedTiles.Add(1)
					return
				}
				scan(tile)
			})
		} else {
			edges.Bucket(p, scan)
		}
		finish()
		sentTotal.Add(nSent)
		streamedTotal.Add(nStreamed)
		crossTotal.Add(nCross)
		if tr != nil {
			tr.Span(1+w, "partition", pStart, time.Since(pStart),
				map[string]int64{"p": int64(p), "edges": nStreamed, "updates": nSent})
		}
	})

	if err := e.ctx.Err(); err != nil {
		return scatterCounts{}, err
	}
	if overflow.Load() {
		return scatterCounts{}, fmt.Errorf("memengine: update buffer overflow (capacity %d)", e.tp.Cap())
	}
	return scatterCounts{
		sent:         sentTotal.Load(),
		streamed:     streamedTotal.Load(),
		cross:        crossTotal.Load(),
		combined:     combinedTotal.Load(),
		synced:       syncTotal.Load(),
		skippedEdges: skippedEdges.Load(),
		skippedParts: skippedParts.Load(),
		skippedTiles: skippedTiles.Load(),
	}, nil
}

// gather drains every partition's sealed update stream into its vertices.
// With selective scheduling every receiver is marked into the next
// frontier — receipt of an update, not a state change, is what
// (conservatively) activates a vertex, so the frontier is identical
// whether or not the update stream was pre-combined.
func (e *engine[V, M]) gather() error {
	var mu sync.Mutex
	var firstErr error
	e.forEachPartition(func(_, p int) {
		err := e.tp.Drain(p, func(run []core.Update[M]) error {
			if e.fp != nil {
				for _, u := range run {
					e.prog.Gather(u.Dst, &e.verts[u.Dst], u.Val)
					e.nxt.Mark(u.Dst)
				}
				return nil
			}
			for _, u := range run {
				e.prog.Gather(u.Dst, &e.verts[u.Dst], u.Val)
			}
			return nil
		})
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	})
	return firstErr
}

// forEachPartition runs fn over all partitions on the configured worker
// count, passing the worker index (0-based; tracers key per-worker span
// tracks off it) alongside the partition. By default threads claim
// partitions from a shared cursor so an unlucky thread stuck with a
// dense partition does not idle the rest (work stealing, §4.1);
// NoWorkStealing switches to a static round-robin assignment for the
// ablation.
func (e *engine[V, M]) forEachPartition(fn func(w, p int)) {
	workers := e.cfg.Threads
	if workers > e.part.K {
		workers = e.part.K
	}
	if workers <= 1 {
		for p := 0; p < e.part.K; p++ {
			fn(0, p)
		}
		return
	}
	var wg sync.WaitGroup
	if e.cfg.NoWorkStealing {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for p := w; p < e.part.K; p += workers {
					fn(w, p)
				}
			}(w)
		}
	} else {
		var cursor atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					p := int(cursor.Add(1)) - 1
					if p >= e.part.K {
						return
					}
					fn(w, p)
				}
			}(w)
		}
	}
	wg.Wait()
}

// parallelVertices applies fn to every vertex using all workers.
func (e *engine[V, M]) parallelVertices(fn func(core.VertexID, *V)) {
	workers := e.cfg.Threads
	n := len(e.verts)
	if workers <= 1 || n < 4096 {
		for i := range e.verts {
			fn(core.VertexID(i), &e.verts[i])
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(core.VertexID(i), &e.verts[i])
			}
		}(lo, hi)
	}
	wg.Wait()
}
