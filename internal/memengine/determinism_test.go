package memengine

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graphgen"
)

// TestDeterministicAcrossConfigs: integer-state programs must produce
// identical results whatever the parallelism or partitioning, because the
// synchronous scatter-gather model is order-insensitive for commutative
// gathers.
func TestDeterministicAcrossConfigs(t *testing.T) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 11, EdgeFactor: 8, Seed: 31, Undirected: true})
	var want []wccState
	for i, cfg := range []Config{
		{Threads: 1, Partitions: 1},
		{Threads: 1, Partitions: 256, Fanout: 4},
		{Threads: 4, Partitions: 16},
		{Threads: 3, Partitions: 64, Fanout: 8},
		{Threads: 4, Partitions: 16, NoWorkStealing: true},
		{Threads: 2, PrivateBufBytes: 64}, // tiny private buffers: many flushes
	} {
		res, err := Run(src, &wccProg{}, cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		if want == nil {
			want = res.Vertices
			continue
		}
		for v := range want {
			if res.Vertices[v].Label != want[v].Label {
				t.Fatalf("cfg %d: vertex %d: %d vs %d", i, v, res.Vertices[v].Label, want[v].Label)
			}
		}
	}
}

// TestConcurrentIndependentRuns: engine instances must not share state.
func TestConcurrentIndependentRuns(t *testing.T) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 32, Undirected: true})
	ref, err := Run(src, &wccProg{}, Config{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Run(src, &wccProg{}, Config{Threads: 2, Partitions: 8})
			if err != nil {
				errs[i] = err
				return
			}
			for v := range ref.Vertices {
				if res.Vertices[v].Label != ref.Vertices[v].Label {
					errs[i] = &mismatchError{v}
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

type mismatchError struct{ v int }

func (e *mismatchError) Error() string { return "vertex mismatch" }

// TestHugePartitionCount: more partitions than vertices must still work
// (empty partitions are the common case in the tail).
func TestHugePartitionCount(t *testing.T) {
	edges := []core.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 0, Weight: 1}}
	src := core.NewSliceSource(edges, 2)
	res, err := Run(src, &wccProg{}, Config{Threads: 2, Partitions: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vertices[0].Label != 0 || res.Vertices[1].Label != 0 {
		t.Fatalf("labels: %+v", res.Vertices)
	}
}
