package partition2ps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graphgen"
)

// partitioners under test: every implementation must satisfy the same
// Assignment invariants, whatever its policy.
func partitioners() map[string]core.Partitioner {
	return map[string]core.Partitioner{
		"range":      core.RangePartitioner{},
		"2ps":        New(),
		"2psv":       NewVolumeBalanced(),
		"2ps-tight":  NewWithConfig(Config{VolumeCapFactor: 0.25, Passes: 1}),
		"2ps-loose":  NewWithConfig(Config{VolumeCapFactor: 4, Passes: 3}),
		"2psv-tight": NewWithConfig(Config{VolumeCapFactor: 0.25, Passes: 1, VolumeBalance: true}),
	}
}

// TestAssignmentInvariants property-checks every Partitioner over random
// R-MAT graphs: the assignment is total (the relabeling is a permutation),
// partitions stay contiguous equal ranges after relabeling, every
// partition holds at most ceil(n/k) vertices, and relabel∘inverse is the
// identity in both directions.
func TestAssignmentInvariants(t *testing.T) {
	for name, p := range partitioners() {
		for _, scale := range []int{4, 7, 10} {
			for _, seed := range []int64{1, 99} {
				src := graphgen.RMAT(graphgen.RMATConfig{Scale: scale, EdgeFactor: 8, Seed: seed})
				n := src.NumVertices()
				for _, k := range []int{1, 2, 4, 7, 8, 64, int(2 * n)} {
					asg, err := p.Assign(src, k)
					if err != nil {
						t.Fatalf("%s scale=%d k=%d: %v", name, scale, k, err)
					}
					checkInvariants(t, name, asg, n, k)
				}
			}
		}
	}
}

func checkInvariants(t *testing.T, name string, asg *core.Assignment, n int64, k int) {
	t.Helper()
	// Validate proves totality (permutation of [0,n)), the contiguous
	// equal split, and one direction of the inverse identity.
	if err := asg.Validate(n); err != nil {
		t.Fatalf("%s n=%d k=%d: %v", name, n, k, err)
	}
	if !asg.Identity() {
		// The other direction of the identity.
		for nw := range asg.Inverse {
			if asg.Relabel[asg.Inverse[nw]] != core.VertexID(nw) {
				t.Fatalf("%s n=%d k=%d: relabel[inverse[%d]] != %d", name, n, k, nw, nw)
			}
		}
	}
	// Balance within cap: partition i owns exactly the new IDs in
	// Range(i), which by the split is at most ceil(n/k) vertices; check
	// the per-original-vertex view agrees.
	counts := make([]int64, asg.Split.K)
	for v := int64(0); v < n; v++ {
		pid := asg.Of(core.VertexID(v))
		if int(pid) >= asg.Split.K {
			t.Fatalf("%s n=%d k=%d: vertex %d in partition %d of %d", name, n, k, v, pid, asg.Split.K)
		}
		counts[pid]++
	}
	cap := asg.Split.PerPartition()
	var total int64
	for pid, c := range counts {
		if c > cap {
			t.Fatalf("%s n=%d k=%d: partition %d holds %d vertices, cap %d", name, n, k, pid, c, cap)
		}
		lo, hi := asg.Split.Range(pid, n)
		if c != hi-lo {
			t.Fatalf("%s n=%d k=%d: partition %d holds %d vertices, range is [%d,%d)", name, n, k, pid, c, lo, hi)
		}
		total += c
	}
	if total != n {
		t.Fatalf("%s n=%d k=%d: assignment covers %d of %d vertices", name, n, k, total, n)
	}
}

// TestDeterminism: Assign must be a pure function of (source, k) — two
// fresh partitioner values over the same stream produce identical
// permutations.
func TestDeterminism(t *testing.T) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 5, Undirected: true})
	a, err := New().Assign(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().Assign(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Relabel) != len(b.Relabel) {
		t.Fatalf("permutation lengths differ: %d vs %d", len(a.Relabel), len(b.Relabel))
	}
	for v := range a.Relabel {
		if a.Relabel[v] != b.Relabel[v] {
			t.Fatalf("non-deterministic at vertex %d: %d vs %d", v, a.Relabel[v], b.Relabel[v])
		}
	}
}

// TestLocalityImprovement: on a scale-free graph whose vertex IDs carry no
// locality (random permutation of an R-MAT), clustering must beat the raw
// range split on cross-partition edge fraction.
func TestLocalityImprovement(t *testing.T) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 12, EdgeFactor: 16, Seed: 3})
	const k = 16
	rangeAsg, err := core.RangePartitioner{}.Assign(src, k)
	if err != nil {
		t.Fatal(err)
	}
	twopsAsg, err := New().Assign(src, k)
	if err != nil {
		t.Fatal(err)
	}
	rangeCross, err := rangeAsg.CrossEdgeFraction(src)
	if err != nil {
		t.Fatal(err)
	}
	twopsCross, err := twopsAsg.CrossEdgeFraction(src)
	if err != nil {
		t.Fatal(err)
	}
	if twopsCross >= rangeCross {
		t.Fatalf("2PS cross fraction %.3f not below range %.3f", twopsCross, rangeCross)
	}
	t.Logf("cross-partition edges: range %.1f%%, 2ps %.1f%%", 100*rangeCross, 100*twopsCross)
}

// TestIsolatedVertices: vertices that appear on no edge must still be
// assigned exactly once.
func TestIsolatedVertices(t *testing.T) {
	edges := []core.Edge{{Src: 0, Dst: 2}, {Src: 2, Dst: 4}, {Src: 4, Dst: 0}}
	src := core.NewSliceSource(edges, 100) // 95 isolated vertices
	asg, err := New().Assign(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, "2ps", asg, 100, 8)
}

// TestSingletonAndEmpty: degenerate shapes must not panic or violate
// invariants.
func TestSingletonAndEmpty(t *testing.T) {
	empty := core.NewSliceSource(nil, 0)
	if asg, err := New().Assign(empty, 4); err != nil || !asg.Identity() {
		t.Fatalf("empty graph: asg=%+v err=%v", asg, err)
	}
	one := core.NewSliceSource([]core.Edge{{Src: 0, Dst: 0}}, 1)
	asg, err := New().Assign(one, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, "2ps", asg, 1, 4)
}

// TestBadEdgeRejected: an edge referencing a vertex outside the declared
// count must surface as an error, not a panic.
func TestBadEdgeRejected(t *testing.T) {
	src := core.NewSliceSource([]core.Edge{{Src: 5, Dst: 6}}, 2)
	if _, err := New().Assign(src, 2); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

// partitionVolumes computes each partition's degree volume (sum of
// undirected degrees of its vertices) under an assignment.
func partitionVolumes(t *testing.T, src core.EdgeSource, asg *core.Assignment) []int64 {
	t.Helper()
	n := src.NumVertices()
	deg := make([]int64, n)
	err := src.Edges(func(batch []core.Edge) error {
		for _, e := range batch {
			deg[e.Src]++
			deg[e.Dst]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	vols := make([]int64, asg.Split.K)
	for v := int64(0); v < n; v++ {
		vols[asg.Of(core.VertexID(v))] += deg[v]
	}
	return vols
}

// TestVolumeBalancedPacking property-checks the 2psv packer's balance
// bound over random power-law graphs: no partition's degree volume may
// exceed the mean by more than one maximal cluster (the LPT guarantee; a
// cluster is capped at one partition's mean volume, but a single vertex
// can exceed the cap, so the slack term is max(mean, maxDeg)). The same
// graphs under count-balanced "2ps" routinely reach 3-4x the mean — the
// imbalance this packer exists to remove.
func TestVolumeBalancedPacking(t *testing.T) {
	for _, tc := range []struct {
		scale int
		ef    int
		seed  int64
	}{
		{10, 16, 3}, {10, 16, 7}, {11, 8, 1}, {9, 32, 5},
	} {
		src := graphgen.RMAT(graphgen.RMATConfig{Scale: tc.scale, EdgeFactor: tc.ef, Seed: tc.seed})
		for _, k := range []int{8, 16} {
			asg, err := NewVolumeBalanced().Assign(src, k)
			if err != nil {
				t.Fatal(err)
			}
			vols := partitionVolumes(t, src, asg)
			var total, max, maxDeg int64
			for _, v := range vols {
				total += v
				if v > max {
					max = v
				}
			}
			deg := make([]int64, src.NumVertices())
			src.Edges(func(batch []core.Edge) error {
				for _, e := range batch {
					deg[e.Src]++
					deg[e.Dst]++
				}
				return nil
			})
			for _, d := range deg {
				if d > maxDeg {
					maxDeg = d
				}
			}
			mean := total / int64(k)
			slack := mean
			if maxDeg > slack {
				slack = maxDeg
			}
			bound := mean + slack
			if max > bound {
				t.Errorf("scale %d ef %d seed %d k %d: max partition volume %d exceeds bound %d (mean %d, maxDeg %d)",
					tc.scale, tc.ef, tc.seed, k, max, bound, mean, maxDeg)
			}
		}
	}
}

// TestVolumeBalancedBeatsCountBalance pins the headline: on a hub-heavy
// graph the volume packer's worst partition carries no more volume than
// the count packer's.
func TestVolumeBalancedBeatsCountBalance(t *testing.T) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 12, EdgeFactor: 16, Seed: 3})
	const k = 16
	maxOf := func(p core.Partitioner) int64 {
		asg, err := p.Assign(src, k)
		if err != nil {
			t.Fatal(err)
		}
		var max int64
		for _, v := range partitionVolumes(t, src, asg) {
			if v > max {
				max = v
			}
		}
		return max
	}
	count, vol := maxOf(New()), maxOf(NewVolumeBalanced())
	if vol > count {
		t.Fatalf("volume packing max %d worse than count packing %d", vol, count)
	}
	t.Logf("max partition volume: count-balanced %d, volume-balanced %d", count, vol)
}

// TestVolumeBalancedDeterminism: 2psv must emit the same permutation for
// the same input, like 2ps.
func TestVolumeBalancedDeterminism(t *testing.T) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 11})
	a, err := NewVolumeBalanced().Assign(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewVolumeBalanced().Assign(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Relabel {
		if a.Relabel[v] != b.Relabel[v] {
			t.Fatalf("non-deterministic at vertex %d", v)
		}
	}
	if New().Name() != "2ps" || NewVolumeBalanced().Name() != "2psv" {
		t.Fatal("partitioner names changed")
	}
}
