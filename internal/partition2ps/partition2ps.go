// Package partition2ps is a locality-aware streaming partitioner in the
// style of 2PS ("2PS: High-Quality Edge Partitioning with Two-Phase
// Streaming", Mayer et al.) adapted to X-Stream's contiguous-range
// constraint.
//
// X-Stream fixes streaming partitions as equal contiguous vertex-ID
// ranges, so shuffle traffic — the updates that must hop between
// partitions — is entirely determined by the input's vertex ordering. Two
// cheap streaming passes over the unordered edge list recover most of the
// locality a heavyweight offline partitioner would find:
//
//   - Phase 1 (clustering) re-streams the edge list once and greedily
//     grows degree-weighted vertex clusters under a per-cluster volume
//     cap: the endpoints of each edge join or merge clusters whenever the
//     cap allows, so clusters trace the graph's community structure in
//     stream order. Degrees come from one prior counting pass (EdgeSource
//     is re-streamable by contract; no sorting, no index, O(V) state).
//
//   - Phase 2 (packing) never touches the edge list: clusters are packed
//     whole into the K equal-sized partitions, and the packing is emitted
//     as a vertex *relabeling permutation*. Two packing policies exist:
//     the default best-fit decreasing on vertex count ("2ps"), which on
//     core-periphery graphs concentrates the dense core into few
//     partitions and wins the most cross-partition traffic, and HEP-style
//     volume-balanced packing ("2psv", Config.VolumeBalance), which evens
//     partitions out by degree sum instead — the policy to pair with hub
//     replication (core.ReplicatingPartitioner), since mirrors make hub
//     placement irrelevant to update traffic and so make the balance
//     affordable. Either way the partitions stay contiguous ID ranges —
//     X-Stream's sequential vertex-state access, partition files and
//     shuffle plans are all untouched — but now a range boundary is a
//     cluster boundary, not an accident of input order.
//
// The result plugs into engines through core.Partitioner; preprocessing
// cost is two edge streams plus an O(V log V) sort, and the engines remap
// results back so callers never see relabeled IDs.
package partition2ps

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Config tunes the clustering phase.
type Config struct {
	// VolumeCapFactor scales the per-cluster volume cap relative to the
	// average partition volume 2·E/K. Smaller caps give the packer more,
	// smaller clusters to balance with; larger caps chase bigger
	// communities at the risk of fragmenting the packing. 0 means 1.0,
	// i.e. a cluster may grow to one partition's worth of edge volume.
	VolumeCapFactor float64
	// Passes is the number of clustering passes over the edge list.
	// Later passes revisit every edge with the cluster structure of the
	// previous pass in place, letting early edges join clusters that did
	// not exist yet when they first streamed by. 0 means 2.
	Passes int
	// VolumeBalance switches phase 2 to HEP-style volume-balanced packing:
	// partitions are evened out by degree sum (the work a partition
	// causes) instead of best-fit on vertex count. On power-law graphs
	// this spreads the dense core and *raises* the cross-edge fraction, so
	// it is meant to be paired with hub replication
	// (core.ReplicatingPartitioner), which collapses the spread hubs'
	// cross updates into per-partition syncs. The partitioner reports
	// itself as "2psv" in this mode.
	VolumeBalance bool
}

// Partitioner implements core.Partitioner with two-phase streaming
// clustering. The zero value uses default tuning; values are safe to reuse
// across Assign calls but not concurrently.
type Partitioner struct {
	cfg Config
}

// New returns a 2PS partitioner with default tuning.
func New() *Partitioner { return &Partitioner{} }

// NewVolumeBalanced returns a 2PS partitioner with volume-balanced
// packing ("2psv") — pair it with core.NewReplicatingPartitioner, which
// is what makes spreading the hubs affordable.
func NewVolumeBalanced() *Partitioner {
	return &Partitioner{cfg: Config{VolumeBalance: true}}
}

// NewWithConfig returns a 2PS partitioner with explicit tuning.
func NewWithConfig(cfg Config) *Partitioner { return &Partitioner{cfg: cfg} }

// Name implements core.Partitioner.
func (p *Partitioner) Name() string {
	if p.cfg.VolumeBalance {
		return "2psv"
	}
	return "2ps"
}

// noCluster marks a vertex not yet claimed by any cluster.
const noCluster = int32(-1)

// Assign implements core.Partitioner: degree pass, clustering pass(es),
// pack, emit permutation.
func (p *Partitioner) Assign(src core.EdgeSource, k int) (*core.Assignment, error) {
	n := src.NumVertices()
	if k < 1 {
		k = 1
	}
	split := core.NewSplit(n, k)
	if n == 0 || k == 1 {
		// Nothing to rearrange: a single partition holds everything.
		return &core.Assignment{Split: split}, nil
	}
	if n > math.MaxUint32 {
		return nil, fmt.Errorf("partition2ps: %d vertices exceed the 32-bit ID space", n)
	}

	// Pass 1: per-vertex degrees (undirected degree: each record counts
	// at both endpoints, matching the volume an edge contributes to the
	// partitions of its two vertices).
	deg := make([]uint32, n)
	var totalVol int64
	err := src.Edges(func(batch []core.Edge) error {
		for _, e := range batch {
			if int64(e.Src) >= n || int64(e.Dst) >= n {
				return fmt.Errorf("partition2ps: edge (%d,%d) references a vertex outside [0,%d)", e.Src, e.Dst, n)
			}
			deg[e.Src]++
			deg[e.Dst]++
		}
		totalVol += 2 * int64(len(batch))
		return nil
	})
	if err != nil {
		return nil, err
	}

	capFactor := p.cfg.VolumeCapFactor
	if capFactor <= 0 {
		capFactor = 1.0
	}
	capVol := int64(float64(totalVol) / float64(k) * capFactor)
	if capVol < 2 {
		capVol = 2
	}
	capCnt := split.PerPartition()

	c := &clustering{
		cluster: make([]int32, n),
		deg:     deg,
		capVol:  capVol,
		capCnt:  capCnt,
	}
	for i := range c.cluster {
		c.cluster[i] = noCluster
	}

	// Phase 1: grow clusters along the edge stream. Re-streaming is free
	// of any ordering assumptions: whatever order the source yields,
	// endpoints sharing many edges tend to end up sharing a cluster.
	passes := p.cfg.Passes
	if passes <= 0 {
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		err = src.Edges(func(batch []core.Edge) error {
			for _, e := range batch {
				c.observe(e.Src, e.Dst)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	relabel, inverse := pack(c, split, n, p.cfg.VolumeBalance)
	return &core.Assignment{Split: split, Relabel: relabel, Inverse: inverse}, nil
}

// clustering is the O(V) phase-1 state: a union-find forest over cluster
// slots plus per-root volume (sum of member degrees) and member counts.
type clustering struct {
	cluster []int32 // vertex -> cluster slot, or noCluster
	deg     []uint32
	parent  []int32 // cluster slot -> parent slot (union-find)
	vol     []int64 // root slot -> volume
	cnt     []int64 // root slot -> member count
	capVol  int64
	capCnt  int64
}

func (c *clustering) find(x int32) int32 {
	for c.parent[x] != x {
		c.parent[x] = c.parent[c.parent[x]] // path halving
		x = c.parent[x]
	}
	return x
}

func (c *clustering) newCluster(vol int64, cnt int64) int32 {
	id := int32(len(c.parent))
	c.parent = append(c.parent, id)
	c.vol = append(c.vol, vol)
	c.cnt = append(c.cnt, cnt)
	return id
}

// observe processes one edge: join unassigned endpoints to the other
// endpoint's cluster, start a fresh cluster for a fresh pair, or merge two
// clusters — always subject to the volume and member-count caps.
func (c *clustering) observe(u, v core.VertexID) {
	du, dv := int64(c.deg[u]), int64(c.deg[v])
	cu, cv := c.cluster[u], c.cluster[v]
	if cu != noCluster {
		cu = c.find(cu)
	}
	if cv != noCluster {
		cv = c.find(cv)
	}
	switch {
	case u == v:
		if cu == noCluster {
			c.cluster[u] = c.newCluster(du, 1)
		}
	case cu == noCluster && cv == noCluster:
		if du+dv <= c.capVol && c.capCnt >= 2 {
			id := c.newCluster(du+dv, 2)
			c.cluster[u], c.cluster[v] = id, id
		} else {
			c.cluster[u] = c.newCluster(du, 1)
			c.cluster[v] = c.newCluster(dv, 1)
		}
	case cu == noCluster:
		if c.vol[cv]+du <= c.capVol && c.cnt[cv] < c.capCnt {
			c.cluster[u] = cv
			c.vol[cv] += du
			c.cnt[cv]++
		} else {
			c.cluster[u] = c.newCluster(du, 1)
		}
	case cv == noCluster:
		if c.vol[cu]+dv <= c.capVol && c.cnt[cu] < c.capCnt {
			c.cluster[v] = cu
			c.vol[cu] += dv
			c.cnt[cu]++
		} else {
			c.cluster[v] = c.newCluster(dv, 1)
		}
	case cu != cv:
		if c.vol[cu]+c.vol[cv] <= c.capVol && c.cnt[cu]+c.cnt[cv] <= c.capCnt {
			// Merge the smaller cluster into the larger; ties by lower
			// slot for determinism.
			if c.cnt[cu] < c.cnt[cv] || (c.cnt[cu] == c.cnt[cv] && cv < cu) {
				cu, cv = cv, cu
			}
			c.parent[cv] = cu
			c.vol[cu] += c.vol[cv]
			c.cnt[cu] += c.cnt[cv]
		}
	}
}

// pack lays clusters out into the K contiguous ranges and returns the
// relabeling permutation. Two policies share the machinery:
//
//   - Count packing (the default): best-fit decreasing on member count.
//     Bins fill snuggest-first, which keeps scan-order-adjacent clusters
//     together and — on core-periphery graphs like R-MAT — piles the
//     cap-sized fragments of the dense core back into few partitions.
//     That concentration is where most of 2PS's cross-traffic win comes
//     from, at the price of heavily skewed per-partition edge volume
//     (4x the mean is common).
//
//   - Volume packing (HEP-style, volumeBalance=true): heavy clusters go
//     largest-degree-sum first into the least-volume bin with ID room
//     (LPT scheduling); the light tail then pours sequentially, hopping
//     bins only toward under-target volume, so partitions end up even in
//     the work they cause — edges streamed, updates received — not
//     merely in vertex count. Spreading the dense core this way raises
//     the cross-*edge* fraction on power-law graphs; it is designed to
//     be paired with hub replication (core.ReplicatingPartitioner),
//     which makes hub placement irrelevant to update traffic and so
//     makes the balance affordable.
//
// In both policies the hard constraint is the ID room — every bin holds
// exactly one partition's worth of vertex IDs. Clusters that fit nowhere
// whole are split across the bins with remaining room — the correctness
// fallback that makes the packing total — and isolated vertices (degree
// 0, never seen on an edge) pad the remaining room.
func pack(c *clustering, split core.Split, n int64, volumeBalance bool) (relabel, inverse []core.VertexID) {
	// Dense cluster indices in vertex-scan order (deterministic).
	denseOf := make(map[int32]int32, 64)
	var counts []int64
	var vols []int64              // degree sum of each dense cluster
	clusterOf := make([]int32, n) // vertex -> dense cluster index, -1 isolated
	var isolated int64
	for v := int64(0); v < n; v++ {
		slot := c.cluster[v]
		if slot == noCluster {
			clusterOf[v] = -1
			isolated++
			continue
		}
		root := c.find(slot)
		idx, ok := denseOf[root]
		if !ok {
			idx = int32(len(counts))
			denseOf[root] = idx
			counts = append(counts, 0)
			vols = append(vols, 0)
		}
		clusterOf[v] = idx
		counts[idx]++
		vols[idx] += int64(c.deg[v])
	}

	// Bucket members by cluster, ascending vertex ID within each.
	starts := make([]int64, len(counts)+1)
	for i, cnt := range counts {
		starts[i+1] = starts[i] + cnt
	}
	members := make([]core.VertexID, n-isolated)
	fill := append([]int64(nil), starts[:len(counts)]...)
	isolatedVerts := make([]core.VertexID, 0, isolated)
	for v := int64(0); v < n; v++ {
		if idx := clusterOf[v]; idx >= 0 {
			members[fill[idx]] = core.VertexID(v)
			fill[idx]++
		} else {
			isolatedVerts = append(isolatedVerts, core.VertexID(v))
		}
	}

	k := split.K
	room := make([]int64, k)
	for i := 0; i < k; i++ {
		lo, hi := split.Range(i, n)
		room[i] = hi - lo
	}
	binVol := make([]int64, k) // accumulated degree volume per bin
	next := make([]int64, k)   // next relabeled ID to hand out per bin
	for i := 0; i < k; i++ {
		next[i], _ = split.Range(i, n)
	}
	relabel = make([]core.VertexID, n)
	place := func(bin int, verts []core.VertexID) {
		for _, v := range verts {
			relabel[v] = core.VertexID(next[bin])
			next[bin]++
			binVol[bin] += int64(c.deg[v])
		}
		room[bin] -= int64(len(verts))
	}
	// emptiest returns the least-volume bin with ID room for cnt more
	// vertices (ties to the lower index, for determinism), or -1.
	emptiest := func(cnt int64) int {
		best := -1
		for i := 0; i < k; i++ {
			if room[i] >= cnt && (best < 0 || binVol[i] < binVol[best]) {
				best = i
			}
		}
		return best
	}
	// fragment splits a cluster that fits nowhere whole over the bins
	// with remaining room — the correctness fallback. The volume policy
	// spreads emptiest-volume-first; the count policy keeps its historic
	// bin-index order, so default "2ps" permutations are unchanged by
	// the volume-balancing refactor.
	fragment := func(verts []core.VertexID) {
		if !volumeBalance {
			for i := 0; i < k && len(verts) > 0; i++ {
				take := room[i]
				if take > int64(len(verts)) {
					take = int64(len(verts))
				}
				if take > 0 {
					place(i, verts[:take])
					verts = verts[take:]
				}
			}
			return
		}
		for len(verts) > 0 {
			bin := -1
			for i := 0; i < k; i++ {
				if room[i] > 0 && (bin < 0 || binVol[i] < binVol[bin]) {
					bin = i
				}
			}
			if bin < 0 {
				return // cannot happen: total room always covers all vertices
			}
			take := room[bin]
			if take > int64(len(verts)) {
				take = int64(len(verts))
			}
			place(bin, verts[:take])
			verts = verts[take:]
		}
	}

	if volumeBalance {
		// Volume packing in two tiers. Heavy clusters — the ones whose
		// placement decides the volume balance, or whose member count
		// makes them a fragmentation risk — go first, largest volume
		// first, each into the least-volume bin with ID room (LPT). The
		// light tail then pours sequentially: consecutive clusters in
		// vertex-scan order share the community adjacency of the input,
		// so the packer keeps pouring into one bin until it reaches the
		// per-bin volume target (or runs out of ID room) before hopping
		// to the then-emptiest bin.
		var totalVol int64
		for _, v := range vols {
			totalVol += v
		}
		targetVol := (totalVol + int64(k) - 1) / int64(k)
		heavy := make([]int32, 0, k)
		light := make([]int32, 0, len(counts))
		for i := range counts {
			if vols[i] >= targetVol/2 || counts[i] >= split.PerPartition()/2 {
				heavy = append(heavy, int32(i))
			} else {
				light = append(light, int32(i))
			}
		}
		sort.SliceStable(heavy, func(a, b int) bool {
			va, vb := vols[heavy[a]], vols[heavy[b]]
			if va != vb {
				return va > vb
			}
			ca, cb := counts[heavy[a]], counts[heavy[b]]
			if ca != cb {
				return ca > cb
			}
			return heavy[a] < heavy[b]
		})
		for _, idx := range heavy {
			verts := members[starts[idx]:starts[idx+1]]
			if bin := emptiest(counts[idx]); bin >= 0 {
				place(bin, verts)
			} else {
				fragment(verts)
			}
		}
		cur := -1
		for _, idx := range light {
			cnt := counts[idx]
			verts := members[starts[idx]:starts[idx+1]]
			switch {
			case cur < 0 || room[cur] < cnt:
				cur = emptiest(cnt)
			case binVol[cur] >= targetVol:
				// Hop only when an under-target bin can take the cluster;
				// bouncing between over-target bins would shred the scan-
				// order adjacency of the tail for no balance gain.
				if cand := emptiest(cnt); cand >= 0 && binVol[cand] < targetVol {
					cur = cand
				}
			}
			if cur >= 0 {
				place(cur, verts)
			} else {
				fragment(verts)
			}
		}
	} else {
		// Count packing: best-fit decreasing — biggest clusters claim the
		// snuggest bins.
		order := make([]int32, len(counts))
		for i := range order {
			order[i] = int32(i)
		}
		sort.SliceStable(order, func(a, b int) bool {
			ca, cb := counts[order[a]], counts[order[b]]
			if ca != cb {
				return ca > cb
			}
			return order[a] < order[b]
		})
		for _, idx := range order {
			cnt := counts[idx]
			verts := members[starts[idx]:starts[idx+1]]
			best := -1
			for i := 0; i < k; i++ {
				if room[i] >= cnt && (best < 0 || room[i] < room[best]) {
					best = i
				}
			}
			if best >= 0 {
				place(best, verts)
			} else {
				fragment(verts)
			}
		}
	}
	// Isolated vertices pad the remaining room in bin order.
	vi := 0
	for i := 0; i < k && vi < len(isolatedVerts); i++ {
		for room[i] > 0 && vi < len(isolatedVerts) {
			place(i, isolatedVerts[vi:vi+1])
			vi++
		}
	}

	inverse = make([]core.VertexID, n)
	for old, nw := range relabel {
		inverse[nw] = core.VertexID(old)
	}
	return relabel, inverse
}
