package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrClass
	}{
		{nil, ClassPermanent},
		{ErrInjected, ClassTransient},
		{fmt.Errorf("read p0: %w", ErrInjected), ClassTransient},
		{ErrCorrupted, ClassCorrupted},
		{fmt.Errorf("tile 3: %w", ErrCorrupted), ClassCorrupted},
		// Corruption dominates even when the chain also carries a
		// transient marker.
		{fmt.Errorf("%w after %w", ErrCorrupted, ErrInjected), ClassCorrupted},
		{ErrNotExist, ClassPermanent},
		{io.ErrUnexpectedEOF, ClassPermanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestChecksumIncremental(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	whole := Checksum(data)
	for i := 0; i <= len(data); i++ {
		got := ChecksumUpdate(ChecksumUpdate(0, data[:i]), data[i:])
		if got != whole {
			t.Fatalf("split at %d: %08x != %08x", i, got, whole)
		}
	}
	if Checksum(data) == Checksum(data[:len(data)-1]) {
		t.Fatal("checksum insensitive to truncation")
	}
}

// writeRead round-trips a payload through a file on dev.
func writeRead(t *testing.T, dev Device, name string, payload []byte) ([]byte, error) {
	t.Helper()
	f, err := dev.Create(name)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteAt(payload, 0); err != nil {
		return nil, err
	}
	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return got, nil
}

func TestFaultySeededDeterminism(t *testing.T) {
	run := func(seed int64) (faults int64, errs string) {
		dev := NewFaulty(NewSim(SSDParams("s", 1, 0)), FaultyOptions{
			Seed: seed, ReadErr: 0.3, WriteErr: 0.3, TruncateErr: 0.3,
		})
		f, _ := dev.Create("x")
		buf := make([]byte, 64)
		for i := 0; i < 50; i++ {
			if _, err := f.WriteAt(buf, 0); err != nil {
				errs += "w"
			}
			if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
				errs += "r"
			}
			if err := f.Truncate(0); err != nil {
				errs += "t"
			}
		}
		return dev.(FaultInjector).Faults(), errs
	}
	f1, e1 := run(7)
	f2, e2 := run(7)
	f3, e3 := run(8)
	if f1 != f2 || e1 != e2 {
		t.Fatalf("same seed diverged: %d %q vs %d %q", f1, e1, f2, e2)
	}
	if f1 == 0 {
		t.Fatal("seeded schedule injected no faults")
	}
	if e1 == e3 && f1 == f3 {
		t.Fatalf("different seeds produced identical schedules: %q", e1)
	}
}

func TestFaultyTruncateAndCloseFaults(t *testing.T) {
	dev := NewFaulty(NewSim(SSDParams("s", 1, 0)), FaultyOptions{
		Seed: 1, TruncateErr: 1, CloseErr: 1,
	})
	f, err := dev.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrInjected) {
		t.Fatalf("Truncate error = %v, want ErrInjected", err)
	}
	if err := f.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close error = %v, want ErrInjected", err)
	}
}

func TestFaultyCorruptReadFlipsOneBit(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 256)
	dev := NewFaulty(NewSim(SSDParams("s", 1, 0)), FaultyOptions{
		Seed: 3, CorruptRead: 1, MaxFaults: 1,
	})
	got, err := writeRead(t, dev, "x", payload)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		for b := got[i] ^ payload[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt read flipped %d bits, want exactly 1", diff)
	}
	// MaxFaults=1 exhausted: the next read is clean.
	got2, err := writeRead(t, dev, "y", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, payload) {
		t.Fatal("fault budget exhausted but read still corrupted")
	}
}

func TestFaultyTornWriteDropsTail(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5F}, 128)
	inner := NewSim(SSDParams("s", 1, 0))
	dev := NewFaulty(inner, FaultyOptions{Seed: 5, TornWrite: 1, MaxFaults: 1})
	f, err := dev.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.WriteAt(payload, 0)
	if err != nil || n != len(payload) {
		t.Fatalf("torn write must report success, got n=%d err=%v", n, err)
	}
	if sz := f.Size(); sz >= int64(len(payload)) || sz < 1 {
		t.Fatalf("torn write persisted %d bytes, want strict non-empty prefix of %d", sz, len(payload))
	}
}

func TestRetryHealsTransientFaults(t *testing.T) {
	payload := bytes.Repeat([]byte{7}, 4096)
	faulty := NewFaulty(NewSim(SSDParams("s", 1, 0)), FaultyOptions{
		Seed: 11, ReadErr: 0.4, WriteErr: 0.4, TruncateErr: 0.4,
	})
	dev := NewRetry(faulty, RetryOptions{MaxAttempts: 25, Sleep: func(time.Duration) {}})
	for i := 0; i < 20; i++ {
		got, err := writeRead(t, dev, fmt.Sprintf("f%d", i), payload)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round %d: data mismatch through retry layer", i)
		}
	}
	if faulty.(FaultInjector).Faults() == 0 {
		t.Fatal("schedule injected no faults; test proves nothing")
	}
	if dev.Stats().Retries == 0 {
		t.Fatal("retry layer reports zero retries despite injected faults")
	}
	dev.ResetStats()
	if dev.Stats().Retries != 0 {
		t.Fatal("ResetStats did not clear Retries")
	}
}

func TestRetryGivesUpAfterBudget(t *testing.T) {
	faulty := NewFaulty(NewSim(SSDParams("s", 1, 0)), FaultyOptions{Seed: 1, ReadErr: 1})
	slept := 0
	dev := NewRetry(faulty, RetryOptions{MaxAttempts: 3, Sleep: func(time.Duration) { slept++ }})
	f, err := dev.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected after budget, got %v", err)
	}
	if slept != 2 {
		t.Fatalf("3 attempts should back off twice, slept %d times", slept)
	}
	if got := dev.Stats().Retries; got != 2 {
		t.Fatalf("Stats.Retries = %d, want 2", got)
	}
}

func TestRetryDoesNotRetryPermanentOrCorrupted(t *testing.T) {
	tries := 0
	d := &retryDevice{inner: nil, opts: RetryOptions{MaxAttempts: 5, Sleep: func(time.Duration) {}}.withDefaults()}
	err := d.retry(func() error { tries++; return ErrCorrupted })
	if !errors.Is(err, ErrCorrupted) || tries != 1 {
		t.Fatalf("corrupted retried: tries=%d err=%v", tries, err)
	}
	tries = 0
	err = d.retry(func() error { tries++; return ErrNotExist })
	if !errors.Is(err, ErrNotExist) || tries != 1 {
		t.Fatalf("permanent retried: tries=%d err=%v", tries, err)
	}
}

func TestRetryOpenMissingFileFailsFast(t *testing.T) {
	dev := NewRetry(NewSim(SSDParams("s", 1, 0)), RetryOptions{Sleep: func(time.Duration) {}})
	if _, err := dev.Open("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}
