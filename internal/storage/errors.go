package storage

// errors.go is the error taxonomy of the fault-tolerance layer. Every I/O
// failure in the system falls into one of three classes, and the class —
// not the error string — decides the response:
//
//   - transient:  the operation may succeed if repeated (EINTR, injected
//     chaos faults, timeouts). The retry wrapper (NewRetry) absorbs these
//     with bounded exponential backoff; the jobs scheduler re-runs jobs
//     that still fail after the device-level budget is exhausted.
//   - corrupted:  the bytes came back, but they are not the bytes that
//     were written (checksum mismatch, torn frame, impossible header).
//     Retrying the read is useless; the artifact must be invalidated and
//     rebuilt from its source. Detection sites wrap ErrCorrupted so
//     callers can dispatch with errors.Is.
//   - permanent:  everything else (ENOSPC, ErrNotExist, closed device).
//     Fail fast, surface to the caller.

import (
	"errors"
	"hash/crc32"
)

// ErrCorrupted reports that data read back from a device failed checksum
// or structural validation: the artifact is damaged and must be rebuilt,
// not re-read. Wrap it with fmt.Errorf("...: %w", ErrCorrupted) at
// detection sites; test with errors.Is.
var ErrCorrupted = errors.New("storage: data corrupted")

// ErrClass is the retry-relevant classification of an I/O error.
type ErrClass int

// The three classes of I/O failure. See the package comment in errors.go.
const (
	// ClassPermanent errors fail fast: retrying cannot help and the data
	// is not suspected damaged (ENOSPC, missing file, closed device).
	ClassPermanent ErrClass = iota
	// ClassTransient errors may clear on retry (injected faults, EINTR,
	// network-ish timeouts). The retry device absorbs these.
	ClassTransient
	// ClassCorrupted errors mean the bytes are wrong, not the operation:
	// invalidate and rebuild the artifact instead of retrying.
	ClassCorrupted
)

// String names the class for logs and metrics.
func (c ErrClass) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassCorrupted:
		return "corrupted"
	default:
		return "permanent"
	}
}

// Classify maps an I/O error to its retry class. Corruption dominates:
// an error that is both wrapped ErrCorrupted and something else is
// corruption. ErrInjected (the chaos device's transient fault) and
// timeout-ish OS errors classify transient; everything else, including
// nil, is permanent (retrying a success is as useless as retrying
// ENOSPC).
func Classify(err error) ErrClass {
	if err == nil {
		return ClassPermanent
	}
	if errors.Is(err, ErrCorrupted) {
		return ClassCorrupted
	}
	if errors.Is(err, ErrInjected) {
		return ClassTransient
	}
	var t interface{ Timeout() bool }
	if errors.As(err, &t) && t.Timeout() {
		return ClassTransient
	}
	var tmp interface{ Temporary() bool }
	if errors.As(err, &tmp) && tmp.Temporary() {
		return ClassTransient
	}
	return ClassPermanent
}

// castagnoli is the CRC32C polynomial table every checksum in the system
// shares (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of b — the one checksum function used for
// every on-disk artifact (edge tiles, update streams, spill files,
// permutation files, checkpoints).
func Checksum(b []byte) uint32 { return crc32.Update(0, castagnoli, b) }

// ChecksumUpdate extends a running CRC32C with b, for artifacts written
// or verified in chunks. Start from 0; Checksum(x) ==
// ChecksumUpdate(ChecksumUpdate(0, x[:i]), x[i:]).
func ChecksumUpdate(crc uint32, b []byte) uint32 { return crc32.Update(crc, castagnoli, b) }
