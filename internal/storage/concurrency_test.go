package storage

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentFileAccess hammers one simulated device from many
// goroutines; counters must balance and data must be intact.
func TestConcurrentFileAccess(t *testing.T) {
	dev := NewSim(SSDParams("c", 2, 0))
	const workers = 8
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f, err := dev.Create(string(rune('a' + w)))
			if err != nil {
				t.Error(err)
				return
			}
			payload := make([]byte, 1024)
			for i := range payload {
				payload[i] = byte(w)
			}
			for i := 0; i < per; i++ {
				if _, err := f.WriteAt(payload, int64(i)*1024); err != nil {
					t.Error(err)
					return
				}
			}
			buf := make([]byte, 1024)
			for i := 0; i < per; i++ {
				if _, err := f.ReadAt(buf, int64(i)*1024); err != nil && err != io.EOF {
					t.Error(err)
					return
				}
				if buf[0] != byte(w) || buf[1023] != byte(w) {
					t.Errorf("worker %d: corrupted read at %d", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := dev.Stats()
	if s.BytesWritten != workers*per*1024 || s.BytesRead != workers*per*1024 {
		t.Fatalf("counters off: %+v", s)
	}
}

// TestSharedFileConcurrentAppendRegions: disjoint regions written
// concurrently must all persist (the disk engine's writer and readers
// share files).
func TestSharedFileConcurrentAppendRegions(t *testing.T) {
	dev := NewSim(HDDParams("c", 2, 0))
	f, _ := dev.Create("shared")
	const workers = 4
	const chunk = 4096
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := make([]byte, chunk)
			for i := range payload {
				payload[i] = byte(w + 1)
			}
			if _, err := f.WriteAt(payload, int64(w)*chunk); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	if f.Size() != workers*chunk {
		t.Fatalf("size %d", f.Size())
	}
	buf := make([]byte, chunk)
	for w := 0; w < workers; w++ {
		if _, err := f.ReadAt(buf, int64(w)*chunk); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if buf[0] != byte(w+1) || buf[chunk-1] != byte(w+1) {
			t.Fatalf("region %d corrupted", w)
		}
	}
}

func TestResetStatsClearsTimeline(t *testing.T) {
	dev := NewSim(SSDParams("c", 1, 0))
	f, _ := dev.Create("a")
	f.WriteAt(make([]byte, 4096), 0)
	if len(dev.Timeline()) == 0 {
		t.Fatal("no timeline recorded")
	}
	dev.ResetStats()
	if len(dev.Timeline()) != 0 {
		t.Fatal("timeline survived reset")
	}
	f.WriteAt(make([]byte, 4096), 4096)
	if len(dev.Timeline()) == 0 {
		t.Fatal("timeline not re-recorded after reset")
	}
}

// TestSimSleepPacing: with TimeScale > 0, requests take real time
// proportional to modelled cost.
func TestSimSleepPacing(t *testing.T) {
	slow := NewSim(SimParams{
		Name: "slow", NumDisks: 1, StripeUnit: 1 << 20,
		SeekRead: 0, SeekWrite: 0, PerRequest: 0,
		ReadBW: 1e6, WriteBW: 1e6, // 1 MB/s
		TimeScale: 1.0,
	})
	f, _ := slow.Create("a")
	start := nowMono()
	f.WriteAt(make([]byte, 100_000), 0) // 0.1s at 1 MB/s
	elapsed := nowMono() - start
	if elapsed < 80_000_000 { // 80ms in ns, generous slack
		t.Fatalf("pacing too fast: %dns for a 100ms write", elapsed)
	}
}
