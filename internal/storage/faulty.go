package storage

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the error produced by a faulty device when its fault
// trigger fires.
var ErrInjected = errors.New("storage: injected fault")

// FaultyOptions configures fault injection.
type FaultyOptions struct {
	// FailAfterOps injects ErrInjected on every read/write once this many
	// operations have succeeded. Zero disables error injection.
	FailAfterOps int64
	// ShortReads truncates every read to at most this many bytes (still a
	// legal ReaderAt short read with io.EOF semantics preserved by the
	// retry layer above). Zero disables.
	ShortReads int
}

// NewFaulty wraps a Device with fault injection for failure testing.
func NewFaulty(inner Device, opts FaultyOptions) Device {
	return &faultyDevice{inner: inner, opts: opts}
}

type faultyDevice struct {
	inner Device
	opts  FaultyOptions
	ops   atomic.Int64
}

func (d *faultyDevice) Name() string { return d.inner.Name() + "+faulty" }

func (d *faultyDevice) Create(name string) (File, error) {
	f, err := d.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{dev: d, inner: f}, nil
}

func (d *faultyDevice) Open(name string) (File, error) {
	f, err := d.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{dev: d, inner: f}, nil
}

func (d *faultyDevice) Remove(name string) error  { return d.inner.Remove(name) }
func (d *faultyDevice) Stats() Stats              { return d.inner.Stats() }
func (d *faultyDevice) ResetStats()               { d.inner.ResetStats() }
func (d *faultyDevice) Timeline() []TimelinePoint { return d.inner.Timeline() }

func (d *faultyDevice) shouldFail() bool {
	n := d.ops.Add(1)
	return d.opts.FailAfterOps > 0 && n > d.opts.FailAfterOps
}

type faultyFile struct {
	dev   *faultyDevice
	inner File
}

func (f *faultyFile) ReadAt(p []byte, off int64) (int, error) {
	if f.dev.shouldFail() {
		return 0, ErrInjected
	}
	if s := f.dev.opts.ShortReads; s > 0 && len(p) > s {
		p = p[:s]
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultyFile) WriteAt(p []byte, off int64) (int, error) {
	if f.dev.shouldFail() {
		return 0, ErrInjected
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultyFile) Size() int64               { return f.inner.Size() }
func (f *faultyFile) Truncate(size int64) error { return f.inner.Truncate(size) }
func (f *faultyFile) Close() error              { return f.inner.Close() }
