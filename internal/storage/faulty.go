package storage

// faulty.go is the chaos harness's fault scheduler: a Device wrapper that
// injects the failure modes long disk-bound runs actually see, driven by a
// seeded deterministic PRNG so a failing schedule replays exactly from its
// seed. Two families of fault:
//
//   - transient (heal under retry): ErrInjected on read/write/truncate/
//     close, legal short reads, and torn writes that persist a prefix and
//     report the error — the retry layer re-issues the full WriteAt at the
//     same offset, overwriting the torn tail.
//   - corruptions (must be *detected*, never healed): bit flips on read
//     and silent torn writes that drop the tail but report success. The
//     checksum layer above must turn every one of these into ErrCorrupted;
//     the chaos equivalence suite proves none ever reaches a result.

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrInjected is the transient error produced by a faulty device when a
// fault trigger fires. Classify reports it ClassTransient, so the retry
// layer absorbs it.
var ErrInjected = errors.New("storage: injected fault")

// FaultyOptions configures fault injection. The probabilistic fields are
// per-operation probabilities in [0, 1], drawn from a deterministic PRNG
// seeded by Seed; the legacy deterministic triggers (FailAfterOps,
// ShortReads) are kept for tests that need an exact trip point.
type FaultyOptions struct {
	// FailAfterOps injects ErrInjected on every read/write once this many
	// operations have succeeded. Zero disables error injection.
	FailAfterOps int64
	// ShortReads truncates every read to at most this many bytes (still a
	// legal ReaderAt short read with io.EOF semantics preserved by the
	// retry layer above). Zero disables.
	ShortReads int

	// Seed fixes the fault schedule; the same seed over the same
	// operation sequence injects the same faults.
	Seed int64
	// ReadErr is the probability a ReadAt fails with ErrInjected before
	// touching the device.
	ReadErr float64
	// WriteErr is the probability a WriteAt is torn: a random prefix is
	// persisted and ErrInjected returned (transient — a retried full
	// write at the same offset overwrites the torn tail).
	WriteErr float64
	// TruncateErr is the probability a Truncate fails with ErrInjected.
	TruncateErr float64
	// CloseErr is the probability a Close fails with ErrInjected (the
	// handle still closes — retrying a close is not required).
	CloseErr float64
	// ShortRead is the probability a ReadAt returns a legal short count:
	// a random non-empty prefix of the request.
	ShortRead float64
	// CorruptRead is the probability a ReadAt silently flips one random
	// bit of the returned data — the corruption the checksum layer must
	// catch.
	CorruptRead float64
	// TornWrite is the probability a WriteAt silently persists only a
	// random prefix but reports full success — the crash-shaped
	// corruption the checksum layer must catch on the next read.
	TornWrite float64
	// MaxFaults bounds the total number of injected faults (all kinds);
	// zero means unlimited. Chaos runs that must terminate bound this.
	MaxFaults int64
}

// FaultInjector is implemented by faulty devices so tests can assert the
// schedule actually fired.
type FaultInjector interface {
	// Faults returns the number of faults injected so far.
	Faults() int64
}

// NewFaulty wraps a Device with fault injection for failure testing. The
// returned Device also implements FaultInjector.
func NewFaulty(inner Device, opts FaultyOptions) Device {
	d := &faultyDevice{inner: inner, opts: opts}
	d.rngState = uint64(opts.Seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	return d
}

type faultyDevice struct {
	inner Device
	opts  FaultyOptions
	ops   atomic.Int64

	mu       sync.Mutex
	rngState uint64
	faults   int64
}

func (d *faultyDevice) Name() string { return d.inner.Name() + "+faulty" }

func (d *faultyDevice) Create(name string) (File, error) {
	f, err := d.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{dev: d, inner: f}, nil
}

func (d *faultyDevice) Open(name string) (File, error) {
	f, err := d.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{dev: d, inner: f}, nil
}

func (d *faultyDevice) Remove(name string) error  { return d.inner.Remove(name) }
func (d *faultyDevice) Stats() Stats              { return d.inner.Stats() }
func (d *faultyDevice) ResetStats()               { d.inner.ResetStats() }
func (d *faultyDevice) Timeline() []TimelinePoint { return d.inner.Timeline() }

// Faults implements FaultInjector.
func (d *faultyDevice) Faults() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults + d.legacyFaults()
}

// legacyFaults counts FailAfterOps trips (every op past the threshold).
func (d *faultyDevice) legacyFaults() int64 {
	if d.opts.FailAfterOps <= 0 {
		return 0
	}
	if n := d.ops.Load() - d.opts.FailAfterOps; n > 0 {
		return n
	}
	return 0
}

func (d *faultyDevice) shouldFail() bool {
	n := d.ops.Add(1)
	return d.opts.FailAfterOps > 0 && n > d.opts.FailAfterOps
}

// next advances the splitmix64 schedule. Callers hold d.mu.
func (d *faultyDevice) next() uint64 {
	d.rngState += 0x9e3779b97f4a7c15
	z := d.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// decide rolls the schedule against probability p and, on a hit, charges
// one fault against MaxFaults. The PRNG always advances on a non-zero p so
// the schedule stays aligned even after the fault budget is exhausted.
func (d *faultyDevice) decide(p float64) bool {
	if p <= 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	roll := float64(d.next()>>11) / (1 << 53)
	if roll >= p {
		return false
	}
	if d.opts.MaxFaults > 0 && d.faults >= d.opts.MaxFaults {
		return false
	}
	d.faults++
	return true
}

// intn returns a schedule-driven value in [0, n).
func (d *faultyDevice) intn(n int) int {
	if n <= 1 {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.next() % uint64(n))
}

type faultyFile struct {
	dev   *faultyDevice
	inner File
}

func (f *faultyFile) ReadAt(p []byte, off int64) (int, error) {
	d := f.dev
	if d.shouldFail() || d.decide(d.opts.ReadErr) {
		return 0, ErrInjected
	}
	if s := d.opts.ShortReads; s > 0 && len(p) > s {
		p = p[:s]
	}
	if len(p) > 1 && d.decide(d.opts.ShortRead) {
		p = p[:1+d.intn(len(p)-1)]
	}
	n, err := f.inner.ReadAt(p, off)
	if n > 0 && d.decide(d.opts.CorruptRead) {
		bit := d.intn(n * 8)
		p[bit>>3] ^= 1 << (bit & 7)
	}
	return n, err
}

func (f *faultyFile) WriteAt(p []byte, off int64) (int, error) {
	d := f.dev
	if d.shouldFail() {
		return 0, ErrInjected
	}
	if len(p) > 0 && d.decide(d.opts.WriteErr) {
		// Torn write, reported: persist a strict prefix, return the
		// transient error. A full retry at the same offset heals it.
		n := d.intn(len(p))
		if n > 0 {
			if m, err := f.inner.WriteAt(p[:n], off); err != nil {
				return m, err
			}
		}
		return n, ErrInjected
	}
	if len(p) > 1 && d.decide(d.opts.TornWrite) {
		// Torn write, silent: persist a strict prefix, report success.
		// Only a checksum on the next read can catch this.
		n := 1 + d.intn(len(p)-1)
		if _, err := f.inner.WriteAt(p[:n], off); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultyFile) Size() int64 { return f.inner.Size() }

func (f *faultyFile) Truncate(size int64) error {
	if f.dev.decide(f.dev.opts.TruncateErr) {
		return ErrInjected
	}
	return f.inner.Truncate(size)
}

func (f *faultyFile) Close() error {
	// The injected close error still closes the handle: callers must
	// treat a failed close as "state unknown", and leaking the inner
	// handle would turn every injected close fault into a resource leak.
	err := f.inner.Close()
	if f.dev.decide(f.dev.opts.CloseErr) {
		return ErrInjected
	}
	return err
}
