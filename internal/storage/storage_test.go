package storage

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

// devices under test: both backends must behave identically functionally.
func testDevices(t *testing.T) map[string]Device {
	t.Helper()
	osd, err := NewOS("osd", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Device{
		"os":  osd,
		"sim": NewSim(SSDParams("sim", 2, 0)),
	}
}

func TestDeviceBasics(t *testing.T) {
	for name, dev := range testDevices(t) {
		t.Run(name, func(t *testing.T) {
			f, err := dev.Create("a")
			if err != nil {
				t.Fatal(err)
			}
			data := []byte("hello, streaming partitions")
			if _, err := f.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
			if got := f.Size(); got != int64(len(data)) {
				t.Fatalf("Size = %d, want %d", got, len(data))
			}
			buf := make([]byte, len(data))
			if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, data) {
				t.Fatalf("read back %q", buf)
			}
			// Read past EOF.
			n, err := f.ReadAt(buf, int64(len(data))+10)
			if err != io.EOF || n != 0 {
				t.Fatalf("past-EOF read: n=%d err=%v", n, err)
			}
			// Short read at the tail.
			n, err = f.ReadAt(buf, int64(len(data))-3)
			if n != 3 || err != io.EOF {
				t.Fatalf("tail read: n=%d err=%v", n, err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopen and check persistence within the device.
			g, err := dev.Open("a")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g.ReadAt(buf[:5], 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if string(buf[:5]) != "hello" {
				t.Fatalf("reopen read %q", buf[:5])
			}

			// Truncate releases blocks and is counted as a TRIM.
			before := dev.Stats()
			if err := g.Truncate(5); err != nil {
				t.Fatal(err)
			}
			after := dev.Stats()
			if after.Trims != before.Trims+1 {
				t.Fatalf("Trims: %d -> %d", before.Trims, after.Trims)
			}
			if after.TrimmedBytes-before.TrimmedBytes != int64(len(data)-5) {
				t.Fatalf("TrimmedBytes delta = %d", after.TrimmedBytes-before.TrimmedBytes)
			}
			if g.Size() != 5 {
				t.Fatalf("post-truncate size %d", g.Size())
			}
			g.Close()

			if err := dev.Remove("a"); err != nil {
				t.Fatal(err)
			}
			if _, err := dev.Open("a"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Open after Remove: %v", err)
			}
			if err := dev.Remove("a"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("double Remove: %v", err)
			}
		})
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	for name, dev := range testDevices(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := dev.Create("x")
			f.WriteAt([]byte("0123456789"), 0)
			f.Close()
			g, _ := dev.Create("x")
			if g.Size() != 0 {
				t.Fatalf("Create did not truncate: size %d", g.Size())
			}
			g.Close()
		})
	}
}

func TestStatsCounting(t *testing.T) {
	dev := NewSim(SSDParams("s", 1, 0))
	f, _ := dev.Create("a")
	f.WriteAt(make([]byte, 1000), 0)    // sequential write from 0 (fresh head: counted random)
	f.WriteAt(make([]byte, 1000), 1000) // sequential continuation
	f.ReadAt(make([]byte, 500), 0)      // seek back: random
	f.ReadAt(make([]byte, 500), 500)    // sequential continuation
	s := dev.Stats()
	if s.BytesWritten != 2000 || s.BytesRead != 1000 {
		t.Fatalf("bytes: %+v", s)
	}
	if s.Writes != 2 || s.Reads != 2 {
		t.Fatalf("requests: %+v", s)
	}
	if s.SeqWrites != 1 || s.SeqReads != 1 {
		t.Fatalf("sequentiality: %+v", s)
	}
	dev.ResetStats()
	if s := dev.Stats(); s.BytesWritten != 0 || s.Reads != 0 {
		t.Fatalf("reset: %+v", s)
	}
}

func TestWriteAtSparseGrow(t *testing.T) {
	for name, dev := range testDevices(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := dev.Create("sparse")
			if _, err := f.WriteAt([]byte("xy"), 100); err != nil {
				t.Fatal(err)
			}
			if f.Size() != 102 {
				t.Fatalf("size %d", f.Size())
			}
			buf := make([]byte, 102)
			if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if buf[0] != 0 || buf[100] != 'x' || buf[101] != 'y' {
				t.Fatalf("sparse contents wrong: %v", buf[98:])
			}
		})
	}
}

func TestSimRoundTripProperty(t *testing.T) {
	dev := NewSim(HDDParams("h", 2, 0))
	f, _ := dev.Create("p")
	// Property: WriteAt then ReadAt returns the written bytes for random
	// offsets/sizes.
	check := func(off uint16, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		if _, err := f.WriteAt(payload, int64(off)); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if _, err := f.ReadAt(got, int64(off)); err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCoversRequest(t *testing.T) {
	dev := NewSim(SimParams{Name: "x", NumDisks: 3, StripeUnit: 4096}).(*simDevice)
	check := func(off uint32, n uint16) bool {
		if n == 0 {
			return true
		}
		segs := dev.split(int64(off), int(n))
		total := 0
		for _, s := range segs {
			if s.disk < 0 || s.disk >= 3 || s.bytes <= 0 {
				return false
			}
			total += s.bytes
		}
		return total == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitStriping(t *testing.T) {
	dev := NewSim(SimParams{Name: "x", NumDisks: 2, StripeUnit: 1024}).(*simDevice)
	// A 4 KiB request at offset 0 covers stripes 0..3 -> disks 0,1,0,1.
	// Each member's stripes are LBA-contiguous, so it receives one
	// coalesced 2 KiB segment starting at member LBA 0.
	segs := dev.split(0, 4096)
	if len(segs) != 2 {
		t.Fatalf("segments: %+v", segs)
	}
	for i, s := range segs {
		if s.disk != i || s.lba != 0 || s.bytes != 2048 {
			t.Fatalf("seg %d = %+v", i, s)
		}
	}
	// An unaligned request: [512,2560) puts 512B of stripe 0 and 512B of
	// stripe 2 on disk 0 (LBA-contiguous at 512..1536) and stripe 1 on
	// disk 1.
	segs = dev.split(512, 2048)
	if len(segs) != 2 || segs[0].disk != 0 || segs[0].lba != 512 || segs[0].bytes != 1024 ||
		segs[1].disk != 1 || segs[1].lba != 0 || segs[1].bytes != 1024 {
		t.Fatalf("unaligned segments: %+v", segs)
	}
}

func TestCostModelShape(t *testing.T) {
	// The calibrated model must reproduce the paper's Figure 11 ordering:
	// sequential beats random on every medium, with a much larger gap on
	// HDD than SSD, and the gap must grow as media get slower.
	hdd := NewSim(HDDParams("hdd", 2, 0)).(*simDevice)
	ssd := NewSim(SSDParams("ssd", 2, 0)).(*simDevice)

	bw := func(d *simDevice, n int, write, seq bool) float64 {
		c := d.Cost(0, n, write, seq)
		return float64(n) / c.Seconds()
	}

	const rq = 4096
	hddSeqR, hddRndR := bw(hdd, 16<<20, false, true), bw(hdd, rq, false, false)
	ssdSeqR, ssdRndR := bw(ssd, 16<<20, false, true), bw(ssd, rq, false, false)

	if hddSeqR <= hddRndR || ssdSeqR <= ssdRndR {
		t.Fatalf("sequential must beat random: hdd %g/%g ssd %g/%g", hddSeqR, hddRndR, ssdSeqR, ssdRndR)
	}
	hddGap := hddSeqR / hddRndR
	ssdGap := ssdSeqR / ssdRndR
	if hddGap < 100 {
		t.Fatalf("paper reports ~500x HDD gap; model gives %.0fx", hddGap)
	}
	if ssdGap < 10 || ssdGap > 100 {
		t.Fatalf("paper reports ~30x SSD gap; model gives %.0fx", ssdGap)
	}
	if hddGap <= ssdGap {
		t.Fatalf("gap must widen on slower media: hdd %.0fx <= ssd %.0fx", hddGap, ssdGap)
	}

	// Figure 11 absolute calibration, loose tolerances (MB/s).
	approx := func(got, want, tol float64) bool { return got > want*(1-tol) && got < want*(1+tol) }
	if got := hddSeqR / 1e6; !approx(got, 328, 0.15) {
		t.Errorf("hdd seq read %.0f MB/s, want ~328", got)
	}
	if got := hddRndR / 1e6; !approx(got, 0.6, 0.3) {
		t.Errorf("hdd rnd read %.2f MB/s, want ~0.6", got)
	}
	if got := ssdSeqR / 1e6; !approx(got, 667, 0.15) {
		t.Errorf("ssd seq read %.0f MB/s, want ~667", got)
	}
	if got := ssdRndR / 1e6; !approx(got, 22.5, 0.3) {
		t.Errorf("ssd rnd read %.1f MB/s, want ~22.5", got)
	}
}

func TestCostRAIDSpeedup(t *testing.T) {
	// Figure 15: RAID-0 roughly doubles large-request bandwidth.
	one := NewSim(HDDParams("h1", 1, 0)).(*simDevice)
	two := NewSim(HDDParams("h2", 2, 0)).(*simDevice)
	n := 16 << 20
	c1 := one.Cost(0, n, false, true)
	c2 := two.Cost(0, n, false, true)
	ratio := c1.Seconds() / c2.Seconds()
	if ratio < 1.7 || ratio > 2.2 {
		t.Fatalf("RAID-0 speedup %.2f, want ~2", ratio)
	}
}

func TestCostRequestSizeRamp(t *testing.T) {
	// Figure 9: bandwidth rises with request size and saturates by 16 MiB.
	dev := NewSim(SSDParams("s", 2, 0)).(*simDevice)
	var prev float64
	for _, n := range []int{4 << 10, 64 << 10, 1 << 20, 16 << 20} {
		c := dev.Cost(0, n, false, true)
		bw := float64(n) / c.Seconds()
		if bw < prev {
			t.Fatalf("bandwidth decreased at %d bytes: %.0f < %.0f", n, bw, prev)
		}
		prev = bw
	}
}

func TestSimBusyTimeAccounting(t *testing.T) {
	dev := NewSim(HDDParams("h", 2, 0))
	f, _ := dev.Create("a")
	f.WriteAt(make([]byte, 1<<20), 0)
	s := dev.Stats()
	if s.Busy <= 0 {
		t.Fatal("busy time not accounted")
	}
}

func TestFaultyDevice(t *testing.T) {
	inner := NewSim(SSDParams("s", 1, 0))
	dev := NewFaulty(inner, FaultyOptions{FailAfterOps: 2})
	f, _ := dev.Create("a")
	if _, err := f.WriteAt([]byte("ab"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 2), 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("cd"), 2); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
}

func TestFaultyShortReads(t *testing.T) {
	inner := NewSim(SSDParams("s", 1, 0))
	dev := NewFaulty(inner, FaultyOptions{ShortReads: 3})
	f, _ := dev.Create("a")
	f.WriteAt([]byte("0123456789"), 0)
	n, _ := f.ReadAt(make([]byte, 10), 0)
	if n != 3 {
		t.Fatalf("short read n=%d, want 3", n)
	}
}

func TestTimelineRecording(t *testing.T) {
	dev := NewSim(SSDParams("s", 1, 0))
	f, _ := dev.Create("a")
	for i := 0; i < 10; i++ {
		f.WriteAt(make([]byte, 4096), int64(i)*4096)
	}
	tl := dev.Timeline()
	if len(tl) == 0 {
		t.Fatal("empty timeline")
	}
	var total int64
	for _, p := range tl {
		total += p.BytesWritten
	}
	if total != 10*4096 {
		t.Fatalf("timeline bytes %d, want %d", total, 10*4096)
	}
}
