package storage

import (
	"io"
	"os"
	"path/filepath"
	"sync"
)

// osDevice is a Device backed by real files in a directory. It is the
// backend for actual out-of-core use of the library; the simulated device is
// used when reproducing the paper's SSD/HDD experiments.
type osDevice struct {
	counters
	name string
	dir  string

	mu      sync.Mutex
	lastOff map[string]int64 // per-file next sequential offset, for metrics
}

// NewOS returns a Device storing files under dir, creating it if necessary.
func NewOS(name, dir string) (Device, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &osDevice{name: name, dir: dir, lastOff: make(map[string]int64)}
	d.counters.init()
	return d, nil
}

func (d *osDevice) Name() string { return d.name }

func (d *osDevice) path(name string) string { return filepath.Join(d.dir, name) }

func (d *osDevice) Create(name string) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{dev: d, name: name, f: f}, nil
}

func (d *osDevice) Open(name string) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotExist
		}
		return nil, err
	}
	return &osFile{dev: d, name: name, f: f}, nil
}

func (d *osDevice) Remove(name string) error {
	err := os.Remove(d.path(name))
	if os.IsNotExist(err) {
		return ErrNotExist
	}
	return err
}

func (d *osDevice) Stats() Stats              { return d.counters.snapshot() }
func (d *osDevice) ResetStats()               { d.counters.reset() }
func (d *osDevice) Timeline() []TimelinePoint { return d.counters.timelineCopy() }

// noteAccess updates the per-file sequential-run tracking and returns
// whether this request continued a sequential run.
func (d *osDevice) noteAccess(name string, off int64, n int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	seq := d.lastOff[name] == off
	d.lastOff[name] = off + int64(n)
	return seq
}

type osFile struct {
	dev  *osDevice
	name string
	f    *os.File
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error) {
	seq := f.dev.noteAccess(f.name, off, len(p))
	n, err := f.f.ReadAt(p, off)
	f.dev.record(n, false, seq)
	return n, err
}

func (f *osFile) WriteAt(p []byte, off int64) (int, error) {
	seq := f.dev.noteAccess(f.name, off, len(p))
	n, err := f.f.WriteAt(p, off)
	f.dev.record(n, true, seq)
	return n, err
}

func (f *osFile) Size() int64 {
	info, err := f.f.Stat()
	if err != nil {
		return 0
	}
	return info.Size()
}

func (f *osFile) Truncate(size int64) error {
	old := f.Size()
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	if size < old {
		f.dev.trims.Add(1)
		f.dev.trimmedBytes.Add(old - size)
	}
	return nil
}

func (f *osFile) Close() error { return f.f.Close() }

var _ io.ReaderAt = (*osFile)(nil)
