// Package storage abstracts the secondary-storage devices the out-of-core
// engine streams from.
//
// X-Stream's evaluation (§5.1 of the paper) depends on the bandwidth
// characteristics of three media: main memory, SSD and magnetic disk. This
// package provides the Device/File abstraction that the engine performs all
// I/O through, plus two backends:
//
//   - OS-backed files in a directory (NewOS), for real use, and
//   - a simulated device (NewSim) with a calibrated cost model — per-request
//     overhead, seek latency for non-sequential access, request-size
//     dependent bandwidth, RAID-0 striping, and TRIM-on-truncate — used to
//     reproduce the paper's SSD/HDD experiments on hardware that has
//     neither. The model is calibrated against the paper's own Figure 9 and
//     Figure 11 measurements.
//
// All devices record metrics (bytes moved, request counts, sequential vs
// random split, busy time) that the benchmark harness reports.
package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNotExist is returned when opening or removing a file that does not
// exist on the device.
var ErrNotExist = errors.New("storage: file does not exist")

// File is a random-access file on a Device. Implementations are safe for
// concurrent use by multiple goroutines.
type File interface {
	// ReadAt reads len(p) bytes starting at offset off. It returns
	// io.EOF (possibly with a short count) when reading past the end.
	ReadAt(p []byte, off int64) (int, error)
	// WriteAt writes len(p) bytes at offset off, growing the file as
	// needed.
	WriteAt(p []byte, off int64) (int, error)
	// Size returns the current file size in bytes.
	Size() int64
	// Truncate resizes the file. Shrinking a file releases its blocks;
	// on the simulated device this models the TRIM the paper relies on
	// (§3.3), and on SSD-class devices it is counted in Stats.
	Truncate(size int64) error
	// Close releases the handle. The file remains on the device.
	Close() error
}

// Device is a named storage device holding a flat namespace of files.
type Device interface {
	// Name identifies the device in logs and benchmark tables.
	Name() string
	// Create creates (or truncates) a file.
	Create(name string) (File, error)
	// Open opens an existing file.
	Open(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Stats returns a snapshot of the device counters.
	Stats() Stats
	// ResetStats zeroes the counters and the bandwidth timeline.
	ResetStats()
	// Timeline returns the recorded bandwidth-over-time samples since
	// the last ResetStats (used to regenerate the paper's Figure 23).
	Timeline() []TimelinePoint
}

// Stats is a snapshot of device activity counters.
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	Reads        int64 // read requests
	Writes       int64 // write requests
	SeqReads     int64 // read requests that continued a sequential run
	SeqWrites    int64
	Trims        int64 // truncations that released blocks
	TrimmedBytes int64
	// Retries counts operations the retry layer (NewRetry) re-issued
	// after a transient failure. Zero for unwrapped devices.
	Retries int64
	// Busy is the simulated device busy time (the wall time the busiest
	// RAID member spent servicing requests). Zero for OS devices.
	Busy time.Duration
}

// RandomReads returns the number of read requests that required a seek.
func (s Stats) RandomReads() int64 { return s.Reads - s.SeqReads }

// RandomWrites returns the number of write requests that required a seek.
func (s Stats) RandomWrites() int64 { return s.Writes - s.SeqWrites }

// TimelinePoint is one bucket of the bandwidth-over-time recording.
type TimelinePoint struct {
	At           time.Duration // bucket start, relative to ResetStats
	BytesRead    int64
	BytesWritten int64
}

// counters is the shared metrics implementation embedded by backends.
type counters struct {
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	reads        atomic.Int64
	writes       atomic.Int64
	seqReads     atomic.Int64
	seqWrites    atomic.Int64
	trims        atomic.Int64
	trimmedBytes atomic.Int64

	mu       sync.Mutex
	start    time.Time
	timeline []TimelinePoint
	bucket   time.Duration // timeline resolution
}

const defaultTimelineBucket = 50 * time.Millisecond

func (c *counters) init() {
	c.start = time.Now()
	c.bucket = defaultTimelineBucket
}

func (c *counters) snapshot() Stats {
	return Stats{
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		Reads:        c.reads.Load(),
		Writes:       c.writes.Load(),
		SeqReads:     c.seqReads.Load(),
		SeqWrites:    c.seqWrites.Load(),
		Trims:        c.trims.Load(),
		TrimmedBytes: c.trimmedBytes.Load(),
	}
}

func (c *counters) reset() {
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.reads.Store(0)
	c.writes.Store(0)
	c.seqReads.Store(0)
	c.seqWrites.Store(0)
	c.trims.Store(0)
	c.trimmedBytes.Store(0)
	c.mu.Lock()
	c.start = time.Now()
	c.timeline = nil
	c.mu.Unlock()
}

// record accounts one request of n bytes and samples the timeline.
func (c *counters) record(n int, write, seq bool) {
	if write {
		c.bytesWritten.Add(int64(n))
		c.writes.Add(1)
		if seq {
			c.seqWrites.Add(1)
		}
	} else {
		c.bytesRead.Add(int64(n))
		c.reads.Add(1)
		if seq {
			c.seqReads.Add(1)
		}
	}
	c.sample(n, write)
}

func (c *counters) sample(n int, write bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	at := time.Since(c.start)
	bucketStart := at - at%c.bucket
	if len(c.timeline) == 0 || c.timeline[len(c.timeline)-1].At != bucketStart {
		c.timeline = append(c.timeline, TimelinePoint{At: bucketStart})
	}
	p := &c.timeline[len(c.timeline)-1]
	if write {
		p.BytesWritten += int64(n)
	} else {
		p.BytesRead += int64(n)
	}
}

func (c *counters) timelineCopy() []TimelinePoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TimelinePoint, len(c.timeline))
	copy(out, c.timeline)
	return out
}
