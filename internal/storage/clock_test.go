package storage

import "time"

// nowMono returns a monotonic nanosecond timestamp for pacing tests.
func nowMono() int64 { return int64(time.Since(startEpoch)) }

var startEpoch = time.Now()
