package storage

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SimParams describes the cost model of a simulated device. A device is a
// RAID-0 array of NumDisks identical members with StripeUnit-byte striping
// (NumDisks=1 models a single disk).
//
// The cost charged to a member disk for the portion of a request it serves
// is
//
//	cost = PerRequest + seek (if not sequential on that member) + bytes/BW
//
// where seek is SeekRead or SeekWrite, and sequentiality is tracked per
// member in terms of the member's own LBA space (stripes of one file are
// compacted per member exactly as RAID-0 lays them out). Members serve
// their portions in parallel; each member serves one request at a time, so
// concurrent callers queue — the same first-order behaviour as a real disk.
//
// With TimeScale > 0 every request really sleeps cost*TimeScale while
// holding its member locks, so prefetching, read/write overlap across
// separate devices, and RAID parallelism all behave as they would on real
// hardware, just TimeScale× faster. With TimeScale == 0 no sleeping occurs
// and only the busy-time accounting is kept.
type SimParams struct {
	Name       string
	NumDisks   int           // RAID-0 members, >= 1
	StripeUnit int           // bytes per stripe, power of two
	SeekRead   time.Duration // latency of a non-sequential read, per member
	SeekWrite  time.Duration // latency of a non-sequential write, per member
	PerRequest time.Duration // fixed per-request overhead, per member
	ReadBW     float64       // bytes/second streaming read, per member
	WriteBW    float64       // bytes/second streaming write, per member
	TimeScale  float64       // 0 disables sleeping; 0.01 = 100x faster than real
}

// Calibration constants: per-member numbers derived from the paper's
// Figure 9 / Figure 11 RAID-0 pair measurements (§5.1).
const simStripeUnit = 512 << 10

// HDDParams models one half of the paper's RAID-0 pair of 3 TB 7200 RPM
// SATA disks. The pair streams ~328 MB/s reads / 316 MB/s writes and manages
// only 0.6 MB/s random 4 KiB reads (≈7 ms per seek); random writes are
// absorbed by the write cache (2 MB/s ≈ 2 ms effective).
func HDDParams(name string, disks int, timeScale float64) SimParams {
	return SimParams{
		Name:       name,
		NumDisks:   disks,
		StripeUnit: simStripeUnit,
		SeekRead:   6800 * time.Microsecond,
		SeekWrite:  2 * time.Millisecond,
		PerRequest: 50 * time.Microsecond,
		ReadBW:     164e6,
		WriteBW:    158e6,
		TimeScale:  timeScale,
	}
}

// SSDParams models one half of the paper's RAID-0 pair of 200 GB PCIe SSDs:
// pair bandwidth 667 MB/s read / 576 MB/s write; 4 KiB random reads at
// 22.5 MB/s (≈170 µs per request) and random writes at 48.6 MB/s.
func SSDParams(name string, disks int, timeScale float64) SimParams {
	return SimParams{
		Name:       name,
		NumDisks:   disks,
		StripeUnit: simStripeUnit,
		SeekRead:   170 * time.Microsecond,
		SeekWrite:  65 * time.Microsecond,
		PerRequest: 20 * time.Microsecond,
		ReadBW:     333e6,
		WriteBW:    288e6,
		TimeScale:  timeScale,
	}
}

// simDevice is the simulated Device.
type simDevice struct {
	counters
	p     SimParams
	disks []simDisk

	mu    sync.Mutex
	files map[string]*simFile
}

// simDisk is one RAID member: its own lock (serialized service), head
// position for sequentiality, and accumulated busy time.
type simDisk struct {
	mu       sync.Mutex
	lastFile *simFile
	lastLBA  int64
	busy     time.Duration
}

// NewSim returns a simulated Device with the given cost model.
func NewSim(p SimParams) Device {
	if p.NumDisks < 1 {
		p.NumDisks = 1
	}
	if p.StripeUnit <= 0 {
		p.StripeUnit = simStripeUnit
	}
	d := &simDevice{p: p, files: make(map[string]*simFile)}
	d.disks = make([]simDisk, p.NumDisks)
	d.counters.init()
	return d
}

func (d *simDevice) Name() string { return d.p.Name }

func (d *simDevice) Create(name string) (File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		f = &simFile{dev: d, name: name}
		d.files[name] = f
	}
	f.mu.Lock()
	f.data = f.data[:0]
	f.mu.Unlock()
	return f, nil
}

func (d *simDevice) Open(name string) (File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, ErrNotExist
	}
	return f, nil
}

func (d *simDevice) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return ErrNotExist
	}
	f.mu.Lock()
	d.trimmedBytes.Add(int64(len(f.data)))
	d.trims.Add(1)
	f.data = nil
	f.mu.Unlock()
	delete(d.files, name)
	return nil
}

func (d *simDevice) Stats() Stats {
	s := d.counters.snapshot()
	for i := range d.disks {
		d.disks[i].mu.Lock()
		if d.disks[i].busy > s.Busy {
			s.Busy = d.disks[i].busy
		}
		d.disks[i].mu.Unlock()
	}
	return s
}

func (d *simDevice) ResetStats() {
	d.counters.reset()
	for i := range d.disks {
		d.disks[i].mu.Lock()
		d.disks[i].busy = 0
		d.disks[i].mu.Unlock()
	}
}

func (d *simDevice) Timeline() []TimelinePoint { return d.counters.timelineCopy() }

// segment is the portion of one request served by one member disk.
type segment struct {
	disk  int
	lba   int64 // member-local logical block address
	bytes int
}

// split maps a (file offset, length) request onto member-disk segments.
// The stripes a contiguous request places on one member are contiguous in
// that member's LBA space, so each member receives exactly one coalesced
// segment — a RAID controller issues one transfer per member, not one per
// stripe.
func (d *simDevice) split(off int64, n int) []segment {
	su := int64(d.p.StripeUnit)
	nd := int64(d.p.NumDisks)
	var segs []segment
	byDisk := make([]int, d.p.NumDisks) // index+1 into segs, 0 = absent
	for n > 0 {
		stripe := off / su
		disk := int(stripe % nd)
		within := off % su
		take := int(su - within)
		if take > n {
			take = n
		}
		if i := byDisk[disk]; i > 0 {
			segs[i-1].bytes += take
		} else {
			lba := (stripe/nd)*su + within
			segs = append(segs, segment{disk: disk, lba: lba, bytes: take})
			byDisk[disk] = len(segs)
		}
		off += int64(take)
		n -= take
	}
	return segs
}

// serve charges the cost of a request against its member disks, sleeping if
// TimeScale > 0. It reports whether the request as a whole continued a
// sequential run (true iff every member segment did).
func (d *simDevice) serve(f *simFile, off int64, n int, write bool) bool {
	segs := d.split(off, n)
	if len(segs) == 1 {
		return d.serveSegment(f, segs[0], write)
	}
	var notSeq atomic.Bool
	var wg sync.WaitGroup
	for _, s := range segs {
		wg.Add(1)
		go func(s segment) {
			defer wg.Done()
			if !d.serveSegment(f, s, write) {
				notSeq.Store(true)
			}
		}(s)
	}
	wg.Wait()
	return !notSeq.Load()
}

// serveSegment charges one member disk for its portion of a request,
// holding the member lock for the (scaled) service duration so concurrent
// requests queue like they would on a real spindle.
func (d *simDevice) serveSegment(f *simFile, s segment, write bool) bool {
	disk := &d.disks[s.disk]
	disk.mu.Lock()
	seq := disk.lastFile == f && disk.lastLBA == s.lba
	disk.lastFile = f
	disk.lastLBA = s.lba + int64(s.bytes)
	cost := d.p.PerRequest
	if write {
		if !seq {
			cost += d.p.SeekWrite
		}
		cost += time.Duration(float64(s.bytes) / d.p.WriteBW * float64(time.Second))
	} else {
		if !seq {
			cost += d.p.SeekRead
		}
		cost += time.Duration(float64(s.bytes) / d.p.ReadBW * float64(time.Second))
	}
	disk.busy += cost
	if d.p.TimeScale > 0 {
		time.Sleep(time.Duration(float64(cost) * d.p.TimeScale))
	}
	disk.mu.Unlock()
	return seq
}

// Cost returns the modelled service time of a single request without
// performing it: the maximum over member disks of the per-member cost.
// Used to regenerate the paper's Figure 9 bandwidth-vs-request-size curves
// and the Figure 11 random/sequential table analytically.
func (d *simDevice) Cost(off int64, n int, write, sequential bool) time.Duration {
	segs := d.split(off, n)
	perDisk := make(map[int]time.Duration)
	for _, s := range segs {
		cost := d.p.PerRequest
		if !sequential {
			if write {
				cost += d.p.SeekWrite
			} else {
				cost += d.p.SeekRead
			}
		}
		bw := d.p.ReadBW
		if write {
			bw = d.p.WriteBW
		}
		cost += time.Duration(float64(s.bytes) / bw * float64(time.Second))
		perDisk[s.disk] += cost
	}
	var max time.Duration
	for _, c := range perDisk {
		if c > max {
			max = c
		}
	}
	return max
}

// CostModel exposes the analytic Cost function of simulated devices.
type CostModel interface {
	Cost(off int64, n int, write, sequential bool) time.Duration
}

var _ CostModel = (*simDevice)(nil)

type simFile struct {
	dev  *simDevice
	name string

	mu   sync.RWMutex
	data []byte
}

func (f *simFile) ReadAt(p []byte, off int64) (int, error) {
	seq := f.dev.serve(f, off, len(p), false)
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off >= int64(len(f.data)) {
		f.dev.record(0, false, seq)
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	f.dev.record(n, false, seq)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *simFile) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	seq := f.dev.serve(f, off, len(p), true)
	f.mu.Lock()
	end := off + int64(len(p))
	if end > int64(len(f.data)) {
		if end > int64(cap(f.data)) {
			grown := make([]byte, end, end+end/2)
			copy(grown, f.data)
			f.data = grown
		} else {
			f.data = f.data[:end]
		}
	}
	n := copy(f.data[off:end], p)
	f.mu.Unlock()
	f.dev.record(n, true, seq)
	return n, nil
}

func (f *simFile) Size() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data))
}

func (f *simFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	old := int64(len(f.data))
	switch {
	case size < old:
		f.data = f.data[:size]
		f.dev.trims.Add(1)
		f.dev.trimmedBytes.Add(old - size)
	case size > old:
		for int64(len(f.data)) < size {
			f.data = append(f.data, 0)
		}
	}
	return nil
}

func (f *simFile) Close() error { return nil }
