package storage

// retry.go is the transient-fault absorber: a Device wrapper that
// re-issues failed operations with bounded exponential backoff and
// jitter. Only ClassTransient errors are retried — corruption must go to
// the rebuild path and permanent errors must fail fast — and only
// positional operations are wrapped, which makes every retry idempotent:
// a ReadAt re-reads the same range, a WriteAt at the same offset
// overwrites whatever prefix a torn attempt persisted.

import (
	"sync/atomic"
	"time"
)

// RetryOptions tunes the retrying device wrapper. The zero value retries
// transient failures up to 3 times (4 attempts total) with 1ms..50ms
// jittered exponential backoff.
type RetryOptions struct {
	// MaxAttempts is the total number of tries per operation (first
	// attempt included). Zero means 4; one disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt up to MaxDelay. Zero means 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means 50ms.
	MaxDelay time.Duration
	// Seed fixes the jitter schedule (tests); zero is a valid seed.
	Seed int64
	// Sleep is called to wait out the backoff; nil means time.Sleep.
	// Tests inject a no-op to run fault schedules at full speed.
	Sleep func(time.Duration)
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 50 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// NewRetry wraps a Device so transient failures (see Classify) of file
// operations — ReadAt, WriteAt, Truncate, and Open/Create — are retried
// with jittered exponential backoff. Retry counts are surfaced through
// Stats().Retries; ResetStats zeroes them with the rest of the counters.
func NewRetry(inner Device, opts RetryOptions) Device {
	d := &retryDevice{inner: inner, opts: opts.withDefaults()}
	d.jitter.Store(uint64(opts.Seed)*0x9e3779b97f4a7c15 + 1)
	return d
}

type retryDevice struct {
	inner   Device
	opts    RetryOptions
	retries atomic.Int64
	jitter  atomic.Uint64
}

func (d *retryDevice) Name() string { return d.inner.Name() + "+retry" }

// backoff sleeps out attempt a (0-based retry index) with equal jitter:
// half the exponential step fixed, half drawn from the seeded schedule.
func (d *retryDevice) backoff(a int) {
	d.retries.Add(1)
	delay := d.opts.BaseDelay << uint(a)
	if delay <= 0 || delay > d.opts.MaxDelay {
		delay = d.opts.MaxDelay
	}
	// splitmix64 step; atomic so concurrent retriers never block each
	// other just to pick a jitter.
	z := d.jitter.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	frac := float64(z>>11) / (1 << 53)
	d.opts.Sleep(delay/2 + time.Duration(float64(delay/2)*frac))
}

// retry runs op up to MaxAttempts times, backing off between transient
// failures. Non-transient errors return immediately.
func (d *retryDevice) retry(op func() error) error {
	for a := 0; ; a++ {
		err := op()
		if err == nil || Classify(err) != ClassTransient || a+1 >= d.opts.MaxAttempts {
			return err
		}
		d.backoff(a)
	}
}

func (d *retryDevice) Create(name string) (File, error) {
	var f File
	err := d.retry(func() error {
		var err error
		f, err = d.inner.Create(name)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &retryFile{dev: d, inner: f}, nil
}

func (d *retryDevice) Open(name string) (File, error) {
	var f File
	err := d.retry(func() error {
		var err error
		f, err = d.inner.Open(name)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &retryFile{dev: d, inner: f}, nil
}

func (d *retryDevice) Remove(name string) error {
	return d.retry(func() error { return d.inner.Remove(name) })
}

func (d *retryDevice) Stats() Stats {
	s := d.inner.Stats()
	s.Retries = d.retries.Load()
	return s
}

func (d *retryDevice) ResetStats() {
	d.inner.ResetStats()
	d.retries.Store(0)
}

func (d *retryDevice) Timeline() []TimelinePoint { return d.inner.Timeline() }

type retryFile struct {
	dev   *retryDevice
	inner File
}

func (f *retryFile) ReadAt(p []byte, off int64) (int, error) {
	var n int
	err := f.dev.retry(func() error {
		var err error
		n, err = f.inner.ReadAt(p, off)
		return err
	})
	return n, err
}

func (f *retryFile) WriteAt(p []byte, off int64) (int, error) {
	var n int
	err := f.dev.retry(func() error {
		var err error
		// Always rewrite the full range: a torn earlier attempt left an
		// unknown prefix, and offset writes are idempotent.
		n, err = f.inner.WriteAt(p, off)
		return err
	})
	return n, err
}

func (f *retryFile) Size() int64 { return f.inner.Size() }

func (f *retryFile) Truncate(size int64) error {
	return f.dev.retry(func() error { return f.inner.Truncate(size) })
}

func (f *retryFile) Close() error {
	// No retry: a failed close may or may not have closed the handle, and
	// double-close on an OS file is an error. Surface it once.
	return f.inner.Close()
}
