package diskengine

// checkpoint.go is the iteration-level checkpoint of the out-of-core
// engine (Config.Checkpoint). After every completed iteration that does
// not terminate the run, the engine snapshots the whole execution state a
// resume needs — per-partition vertex windows (post-EndIteration, so any
// phase fold is already applied), the frontier to scatter next, and the
// iteration number — into one framed, checksummed file next to the
// partition files. Snapshots double-buffer across two slots (iter&1), so
// a crash mid-write can tear at most the slot being replaced while the
// previous iteration's snapshot stays whole. The frame is
//
//	[8B magic "XSCKPT1\n"][8B iteration][8B nv][8B vsize]
//	[8B identity][8B flags][vertex bytes][frontier words?][4B crc32c]
//
// with the CRC covering everything after the magic and before itself, and
// the magic written last: a snapshot is visible only once its body and
// trailer are durable, so a torn write is indistinguishable from no
// snapshot. identity fingerprints the run shape (program, partitioner,
// partition count, graph size, vertex record size) so a stale snapshot
// from a different job can never be loaded. Resume picks the valid
// candidate with the highest iteration, verifies its checksum end to end
// before loading a byte of it, and falls back to a fresh start when no
// candidate survives — a corrupt checkpoint costs the resume, never the
// result.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pod"
	"repro/internal/storage"
)

const (
	ckptMagic     = "XSCKPT1\n"
	ckptHeaderLen = 48
	ckptFlagFront = 1 << 0 // snapshot carries frontier words
)

func (e *engine[V, M]) ckptName(slot int) string {
	return fmt.Sprintf("%scheckpoint-%d.xsck", e.cfg.Prefix, slot)
}

// ckptIdentity fingerprints the run shape a snapshot is only valid for.
func (e *engine[V, M]) ckptIdentity() uint32 {
	return storage.Checksum([]byte(fmt.Sprintf("%s|%s|%d|%d|%d|%d",
		e.prog.Name(), e.stats.Partitioner, e.k, e.nv, e.ne, pod.Size[V]())))
}

// ckptFrontWords is the frontier word count a snapshot carries (0 when the
// run is not selective).
func (e *engine[V, M]) ckptFrontWords() int64 {
	if e.fp == nil {
		return 0
	}
	return (e.nv + 63) / 64
}

// writeFull writes all of b at off, retrying short writes.
func writeFull(f storage.File, b []byte, off int64) error {
	for len(b) > 0 {
		n, err := f.WriteAt(b, off)
		if err != nil {
			return err
		}
		if n <= 0 {
			return fmt.Errorf("diskengine: write stalled at offset %d", off)
		}
		off += int64(n)
		b = b[n:]
	}
	return nil
}

// writeCheckpoint snapshots the state iteration iter+1 starts from. Called
// after EndIteration, so phase folds (e.g. PageRank's rank update) are in
// the vertex bytes, and after the frontier swap, so e.cur is the frontier
// the next iteration scatters.
func (e *engine[V, M]) writeCheckpoint(iter int) error {
	name := e.ckptName(iter & 1)
	f, err := e.cfg.Device.Create(name)
	if err != nil {
		return fmt.Errorf("diskengine: checkpoint %s: %w", name, err)
	}
	fail := func(err error) error {
		f.Close()
		return fmt.Errorf("diskengine: checkpoint %s: %w", name, err)
	}

	hdr := make([]byte, ckptHeaderLen) // magic stays zero until the end
	binary.LittleEndian.PutUint64(hdr[8:], uint64(iter))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(e.nv))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(pod.Size[V]()))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(e.ckptIdentity()))
	var flags uint64
	if e.fp != nil {
		flags |= ckptFlagFront
	}
	binary.LittleEndian.PutUint64(hdr[40:], flags)
	if err := writeFull(f, hdr, 0); err != nil {
		return fail(err)
	}
	crc := storage.ChecksumUpdate(0, hdr[8:])
	off := int64(ckptHeaderLen)

	writeBody := func(raw []byte) error {
		if err := writeFull(f, raw, off); err != nil {
			return err
		}
		crc = storage.ChecksumUpdate(crc, raw)
		off += int64(len(raw))
		return nil
	}
	if e.allVerts != nil {
		if err := writeBody(pod.AsBytes(e.allVerts)); err != nil {
			return fail(err)
		}
	} else {
		for p := 0; p < e.k; p++ {
			verts, _, err := e.loadVerts(p, false)
			if err != nil {
				return fail(err)
			}
			if err := writeBody(pod.AsBytes(verts)); err != nil {
				return fail(err)
			}
		}
	}
	if e.fp != nil {
		if err := writeBody(pod.AsBytes(e.cur.Words())); err != nil {
			return fail(err)
		}
	}

	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc)
	if err := writeFull(f, trailer[:], off); err != nil {
		return fail(err)
	}
	// Body and trailer are in place: publish the snapshot by writing the
	// magic last.
	if err := writeFull(f, []byte(ckptMagic), 0); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("diskengine: checkpoint %s: %w", name, err)
	}
	return nil
}

// ckptInspect fully validates slot's snapshot — magic, identity, size and
// the end-to-end checksum — without loading any of it, and returns the
// iteration it captured. Any defect just disqualifies the candidate.
func (e *engine[V, M]) ckptInspect(slot int) (int, bool) {
	f, err := e.cfg.Device.Open(e.ckptName(slot))
	if err != nil {
		return 0, false
	}
	defer f.Close()
	hdr := make([]byte, ckptHeaderLen)
	if readBytes(f, hdr, 0) != nil || string(hdr[:8]) != ckptMagic {
		return 0, false
	}
	iter := binary.LittleEndian.Uint64(hdr[8:])
	nv := binary.LittleEndian.Uint64(hdr[16:])
	vsize := binary.LittleEndian.Uint64(hdr[24:])
	ident := binary.LittleEndian.Uint64(hdr[32:])
	flags := binary.LittleEndian.Uint64(hdr[40:])
	if nv != uint64(e.nv) || vsize != uint64(pod.Size[V]()) || uint32(ident) != e.ckptIdentity() {
		return 0, false
	}
	if (flags&ckptFlagFront != 0) != (e.fp != nil) || iter > uint64(e.cfg.MaxIterations) {
		return 0, false
	}
	want := int64(ckptHeaderLen) + e.nv*int64(vsize) + e.ckptFrontWords()*8 + 4
	if f.Size() != want {
		return 0, false
	}
	crc := storage.ChecksumUpdate(0, hdr[8:])
	buf := make([]byte, 1<<20)
	end := want - 4
	for off := int64(ckptHeaderLen); off < end; {
		n := int64(len(buf))
		if n > end-off {
			n = end - off
		}
		if readBytes(f, buf[:n], off) != nil {
			return 0, false
		}
		crc = storage.ChecksumUpdate(crc, buf[:n])
		off += n
	}
	var trailer [4]byte
	if readBytes(f, trailer[:], end) != nil {
		return 0, false
	}
	if binary.LittleEndian.Uint32(trailer[:]) != crc {
		return 0, false
	}
	return int(iter), true
}

// ckptLoad restores vertex state and frontier from slot's already-verified
// snapshot.
func (e *engine[V, M]) ckptLoad(slot int) bool {
	f, err := e.cfg.Device.Open(e.ckptName(slot))
	if err != nil {
		return false
	}
	defer f.Close()
	off := int64(ckptHeaderLen)
	if e.allVerts != nil {
		raw := pod.AsBytes(e.allVerts)
		if readBytes(f, raw, off) != nil {
			return false
		}
		off += int64(len(raw))
	} else {
		for p := 0; p < e.k; p++ {
			lo, hi := e.part.Range(p, e.nv)
			raw := pod.AsBytes(e.vertsBuf[:hi-lo])
			if readBytes(f, raw, off) != nil {
				return false
			}
			off += int64(len(raw))
			if e.vertFiles[p].writeAllAt(raw) != nil {
				return false
			}
		}
	}
	if e.fp != nil {
		words := make([]uint64, e.ckptFrontWords())
		if readBytes(f, pod.AsBytes(words), off) != nil {
			return false
		}
		if e.cur.LoadWords(words) != nil {
			return false
		}
		e.nxt.Clear()
	}
	return true
}

// tryResume restores the newest valid checkpoint and returns the iteration
// the loop should start from (0 when nothing usable was found). When a
// verified candidate still fails to load — device trouble between the two
// passes — the just-initialized state is re-established before falling
// back, so a failed resume can never leave half-restored vertices behind.
func (e *engine[V, M]) tryResume() int {
	type cand struct{ slot, iter int }
	var cands []cand
	for slot := 0; slot < 2; slot++ {
		if it, ok := e.ckptInspect(slot); ok {
			cands = append(cands, cand{slot, it})
		}
	}
	if len(cands) == 2 && cands[1].iter > cands[0].iter {
		cands[0], cands[1] = cands[1], cands[0]
	}
	for _, c := range cands {
		if e.ckptLoad(c.slot) {
			return c.iter + 1
		}
		if e.initVertexState() != nil {
			return 0
		}
	}
	return 0
}

// removeCheckpoints deletes both snapshot slots — the run completed, so
// there is nothing left to resume.
func (e *engine[V, M]) removeCheckpoints() {
	if !e.cfg.Checkpoint {
		return
	}
	for slot := 0; slot < 2; slot++ {
		e.cfg.Device.Remove(e.ckptName(slot))
	}
}
