package diskengine

// fault_test.go covers the engine's fault-tolerance plumbing at the unit
// level: error propagation out of the prefetch goroutines (a fault on the
// distance-1 chunk must surface through Next, and the goroutine must exit,
// not leak), stream termination on silently truncated files (the shape a
// torn write leaves behind), and the checkpoint lifecycle — resume after a
// crash, corrupt snapshots ignored, identity mismatches ignored, snapshots
// removed on success.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/memengine"
	"repro/internal/pod"
	"repro/internal/storage"
	"repro/internal/tilecodec"
)

// testEdges returns n distinct edge records.
func testEdges(n int) []core.Edge {
	edges := make([]core.Edge, n)
	for i := range edges {
		edges[i] = core.Edge{Src: core.VertexID(i), Dst: core.VertexID(i + 1), Weight: float32(i)}
	}
	return edges
}

// writeRaw writes the raw record bytes of edges as file name on dev.
func writeRaw(t *testing.T, dev storage.Device, name string, edges []core.Edge) int64 {
	t.Helper()
	f, err := dev.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	raw := pod.AsBytes(edges)
	if err := writeFull(f, raw, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return int64(len(raw))
}

// drainClosed requires ch to be closed (after at most one pending result),
// proving the reader goroutine exited rather than leaking.
func drainClosed[T any](t *testing.T, ch <-chan T, what string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for i := 0; ; i++ {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
			if i > 4 {
				t.Fatalf("%s: still producing results after exit was expected", what)
			}
		case <-deadline:
			t.Fatalf("%s: goroutine did not exit (channel never closed)", what)
		}
	}
}

// TestChunkReaderPrefetchFaultSurfaces: a fault injected on the prefetched
// (distance-1) chunk read must surface through the following Next call,
// and the reader goroutine must exit.
func TestChunkReaderPrefetchFaultSurfaces(t *testing.T) {
	inner := storage.NewSim(storage.SSDParams("t", 1, 0))
	const chunkRecs = 16
	size := writeRaw(t, inner, "edges", testEdges(4*chunkRecs))

	// Read ops through the faulty wrapper: chunk 0 succeeds (op 1), the
	// prefetch of chunk 1 fails (op 2).
	dev := storage.NewFaulty(inner, storage.FaultyOptions{FailAfterOps: 1})
	f, err := dev.Open("edges")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rd := newChunkReader[core.Edge](f, size, chunkRecs, true)
	defer rd.Close()
	chunk, err := rd.Next()
	if err != nil || len(chunk) != chunkRecs {
		t.Fatalf("first chunk: %d records, err %v", len(chunk), err)
	}
	if _, err := rd.Next(); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("prefetched-chunk fault surfaced as %v, want ErrInjected", err)
	}
	drainClosed(t, rd.ready, "chunkReader after fault")
}

// TestChunkReaderCloseReleasesReader: abandoning a stream mid-way (the
// engine does this when another partition errors first) must terminate the
// reader goroutine even though it is blocked handing over results.
func TestChunkReaderCloseReleasesReader(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	const chunkRecs = 8
	size := writeRaw(t, dev, "edges", testEdges(8*chunkRecs))
	f, err := dev.Open("edges")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rd := newChunkReader[core.Edge](f, size, chunkRecs, true)
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	rd.Close()
	drainClosed(t, rd.ready, "chunkReader after Close")
}

// TestChunkReaderTruncatedFileEndsStream: a file shorter than the caller's
// bookkeeping — a silently torn write that still ends on a record boundary
// — must end the stream instead of spinning forever on empty reads, in
// both prefetch and synchronous modes. (Regression: the chaos suite caught
// the prefetch goroutine livelocking on exactly this.)
func TestChunkReaderTruncatedFileEndsStream(t *testing.T) {
	dev := storage.NewSim(storage.SSDParams("t", 1, 0))
	const chunkRecs = 16
	written := 2*chunkRecs + chunkRecs/2 // 2.5 chunks on disk
	writeRaw(t, dev, "edges", testEdges(written))
	claimed := int64(3*chunkRecs) * int64(pod.Size[core.Edge]())
	for _, prefetch := range []bool{true, false} {
		f, err := dev.Open("edges")
		if err != nil {
			t.Fatal(err)
		}
		rd := newChunkReader[core.Edge](f, claimed, chunkRecs, prefetch)
		got := 0
		for {
			chunk, err := rd.Next()
			if err != nil {
				t.Fatalf("prefetch=%v: %v", prefetch, err)
			}
			if chunk == nil {
				break
			}
			got += len(chunk)
		}
		rd.Close()
		f.Close()
		if got != written {
			t.Fatalf("prefetch=%v: delivered %d records, disk holds %d", prefetch, got, written)
		}
	}
}

// TestTileReaderPrefetchFaultSurfaces: same contract for the compressed
// layout's decode goroutine — a fault on the prefetched batch surfaces
// through Next and the goroutine exits.
func TestTileReaderPrefetchFaultSurfaces(t *testing.T) {
	inner := storage.NewSim(storage.SSDParams("t", 1, 0))
	const tileRecs = 50
	edges := testEdges(2 * tileRecs)
	var enc tilecodec.Encoder
	buf, _, err := enc.Encode(nil, edges[:tileRecs])
	if err != nil {
		t.Fatal(err)
	}
	b1 := int64(len(buf))
	buf, _, err = enc.Encode(buf, edges[tileRecs:])
	if err != nil {
		t.Fatal(err)
	}
	f0, err := inner.Create("tiles")
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFull(f0, buf, 0); err != nil {
		t.Fatal(err)
	}
	f0.Close()
	spans := []tileSpan{
		{recs: tileRecs, off: 0, bytes: b1},
		{recs: tileRecs, off: b1, bytes: int64(len(buf)) - b1},
	}

	dev := storage.NewFaulty(inner, storage.FaultyOptions{FailAfterOps: 1})
	f, err := dev.Open("tiles")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd := newTileReader(f, spans, tileRecs, true, true)
	defer rd.Close()
	chunk, err := rd.Next()
	if err != nil || len(chunk) != tileRecs {
		t.Fatalf("first batch: %d records, err %v", len(chunk), err)
	}
	for i, e := range edges[:tileRecs] {
		if chunk[i] != e {
			t.Fatalf("record %d decoded as %+v, want %+v", i, chunk[i], e)
		}
	}
	if _, err := rd.Next(); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("prefetched-batch fault surfaced as %v, want ErrInjected", err)
	}
	drainClosed(t, rd.ready, "tileReader after fault")
}

// wccLabelsOf runs the reference in-memory engine for the crash tests.
func wccLabelsOf(t *testing.T, src core.EdgeSource) []core.VertexID {
	t.Helper()
	res, err := memengine.Run(src, &wccProg{}, memengine.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]core.VertexID, len(res.Vertices))
	for i, v := range res.Vertices {
		labels[i] = v.Label
	}
	return labels
}

func requireLabels(t *testing.T, got []wccState, want []core.VertexID, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vertices, want %d", context, len(got), len(want))
	}
	for i := range want {
		if got[i].Label != want[i] {
			t.Fatalf("%s: vertex %d label %d, want %d", context, i, got[i].Label, want[i])
		}
	}
}

// crashRun fails every device operation past budget and requires the run
// to die; the checkpoints written before the crash survive on inner.
func crashRun(t *testing.T, src core.EdgeSource, inner storage.Device, budget int64, cfg Config) bool {
	t.Helper()
	cfg.Device = storage.NewFaulty(inner, storage.FaultyOptions{FailAfterOps: budget})
	_, err := Run(src, &wccProg{}, cfg)
	return err != nil
}

// TestCheckpointResumeAfterCrash: kill a checkpointed run mid-stream, run
// again on the clean device with the same prefix — the engine resumes past
// the iterations the snapshot restored (Stats.ResumedIterations) and the
// final labels still match the in-memory reference.
func TestCheckpointResumeAfterCrash(t *testing.T) {
	src, _ := smallGraph(31)
	want := wccLabelsOf(t, src)
	base := Config{Threads: 2, IOUnit: 8 << 10, Partitions: 4, Checkpoint: true}

	clean := ssd(0)
	cfg := base
	cfg.Device = clean
	res, err := Run(src, &wccProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireLabels(t, res.Vertices, want, "fault-free checkpointed run")
	ds := clean.Stats()
	totalOps := ds.Reads + ds.Writes

	inner := ssd(0)
	for _, frac := range []float64{0.6, 0.45, 0.75, 0.3, 0.9} {
		budget := int64(float64(totalOps) * frac)
		if budget < 1 {
			budget = 1
		}
		if !crashRun(t, src, inner, budget, base) {
			continue // budget outlasted the run
		}
		cfg := base
		cfg.Device = inner
		res, err := Run(src, &wccProg{}, cfg)
		if err != nil {
			t.Fatalf("resume after crash at %d ops: %v", budget, err)
		}
		if res.Stats.ResumedIterations == 0 {
			continue // crashed before the first checkpoint
		}
		if res.Stats.ResumedIterations >= res.Stats.Iterations {
			t.Fatalf("resumed %d of %d iterations: nothing was left to execute, yet the crashed run did not finish",
				res.Stats.ResumedIterations, res.Stats.Iterations)
		}
		requireLabels(t, res.Vertices, want, "resumed run")
		return
	}
	t.Fatal("no crash window produced a resumable checkpoint")
}

// TestCheckpointCorruptIgnored: flip one bit in every surviving snapshot —
// the resume must reject them (never trust a corrupt checkpoint), start
// from scratch, and still converge to the right labels.
func TestCheckpointCorruptIgnored(t *testing.T) {
	src, _ := smallGraph(31)
	want := wccLabelsOf(t, src)
	base := Config{Threads: 2, IOUnit: 8 << 10, Partitions: 4, Checkpoint: true}

	clean := ssd(0)
	cfg := base
	cfg.Device = clean
	if _, err := Run(src, &wccProg{}, cfg); err != nil {
		t.Fatal(err)
	}
	ds := clean.Stats()
	totalOps := ds.Reads + ds.Writes

	for _, frac := range []float64{0.6, 0.45, 0.75, 0.3, 0.9} {
		inner := ssd(0)
		budget := int64(float64(totalOps) * frac)
		if budget < 1 {
			budget = 1
		}
		if !crashRun(t, src, inner, budget, base) {
			continue
		}
		corrupted := 0
		for slot := 0; slot < 2; slot++ {
			f, err := inner.Open(fmt.Sprintf("checkpoint-%d.xsck", slot))
			if err != nil {
				continue
			}
			if f.Size() > ckptHeaderLen+8 {
				b := make([]byte, 1)
				if _, err := f.ReadAt(b, ckptHeaderLen+5); err != nil {
					t.Fatal(err)
				}
				b[0] ^= 0x10
				if _, err := f.WriteAt(b, ckptHeaderLen+5); err != nil {
					t.Fatal(err)
				}
				corrupted++
			}
			f.Close()
		}
		if corrupted == 0 {
			continue // crash predates any snapshot
		}
		cfg := base
		cfg.Device = inner
		res, err := Run(src, &wccProg{}, cfg)
		if err != nil {
			t.Fatalf("rerun over corrupt checkpoints: %v", err)
		}
		if res.Stats.ResumedIterations != 0 {
			t.Fatalf("resumed %d iterations from corrupt snapshots", res.Stats.ResumedIterations)
		}
		requireLabels(t, res.Vertices, want, "run after rejecting corrupt checkpoints")
		return
	}
	t.Fatal("no crash window left a checkpoint to corrupt")
}

// TestCheckpointIdentityMismatchIgnored: a snapshot from a different run
// shape (here: another partition count) is never loaded.
func TestCheckpointIdentityMismatchIgnored(t *testing.T) {
	src, _ := smallGraph(31)
	want := wccLabelsOf(t, src)
	base := Config{Threads: 2, IOUnit: 8 << 10, Partitions: 4, Checkpoint: true}

	clean := ssd(0)
	cfg := base
	cfg.Device = clean
	if _, err := Run(src, &wccProg{}, cfg); err != nil {
		t.Fatal(err)
	}
	ds := clean.Stats()
	totalOps := ds.Reads + ds.Writes

	for _, frac := range []float64{0.6, 0.75, 0.9} {
		inner := ssd(0)
		if !crashRun(t, src, inner, int64(float64(totalOps)*frac), base) {
			continue
		}
		if _, err := inner.Open("checkpoint-0.xsck"); err != nil {
			if _, err := inner.Open("checkpoint-1.xsck"); err != nil {
				continue // nothing snapshotted before the crash
			}
		}
		cfg := base
		cfg.Device = inner
		cfg.Partitions = 8 // different identity: k is in the fingerprint
		res, err := Run(src, &wccProg{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ResumedIterations != 0 {
			t.Fatalf("resumed %d iterations from a foreign run's checkpoint", res.Stats.ResumedIterations)
		}
		requireLabels(t, res.Vertices, want, "run after rejecting foreign checkpoint")
		return
	}
	t.Fatal("no crash window left a checkpoint to test against")
}

// TestCheckpointRemovedOnSuccess: a completed run leaves no snapshots.
func TestCheckpointRemovedOnSuccess(t *testing.T) {
	src, _ := smallGraph(31)
	dev := ssd(0)
	if _, err := Run(src, &wccProg{}, Config{Device: dev, Threads: 2, IOUnit: 8 << 10, Partitions: 4, Checkpoint: true}); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 2; slot++ {
		name := fmt.Sprintf("checkpoint-%d.xsck", slot)
		if f, err := dev.Open(name); err == nil {
			f.Close()
			t.Fatalf("%s survived a successful run", name)
		}
	}
}
