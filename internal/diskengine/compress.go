package diskengine

// compress.go is the compressed edge-tile layout (Config.CompressTiles).
// The write side is a bucketWriter sink that encodes whole tiles with
// internal/tilecodec during the pre-processing shuffle; the read side is a
// tileReader that decodes batches of tiles with the same prefetch
// discipline as chunkReader. Both hide behind the edgeStream interface and
// the streamSegments driver, so every scatter path — solo Run, shared-pass
// RunMany, selective range reads, the backward-file rebuild — is untouched
// above the reader.

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pod"
	"repro/internal/storage"
	"repro/internal/tilecodec"
)

// tileCompressor is the shuffle sink of the compressed layout: it
// accumulates each partition's appended runs into fixed-size tiles,
// encodes every full tile and appends the encoded blob to the partition
// file, recording the tile's source span and physical placement in the
// index. It replaces both the bucketWriter's raw append and the diskTiles
// observer, and runs on the single writer goroutine; finish (called after
// the writer drains) flushes each partition's trailing short tile.
type tileCompressor struct {
	files    []*partFile
	tiles    *diskTiles
	tileRecs int
	pending  [][]core.Edge
	enc      tilecodec.Encoder
	buf      []byte
}

func newTileCompressor(files []*partFile, tiles *diskTiles) *tileCompressor {
	return &tileCompressor{
		files:    files,
		tiles:    tiles,
		tileRecs: int(tiles.tileRecs),
		pending:  make([][]core.Edge, len(files)),
	}
}

// append folds one shuffled run into partition p, encoding tiles as they
// fill. Record order is preserved exactly, so a decoded file replays the
// same stream the raw layout would have.
func (c *tileCompressor) append(p int, run []core.Edge) error {
	pend := c.pending[p]
	for len(run) > 0 {
		if cap(pend) == 0 {
			pend = make([]core.Edge, 0, c.tileRecs)
		}
		take := c.tileRecs - len(pend)
		if take > len(run) {
			take = len(run)
		}
		pend = append(pend, run[:take]...)
		run = run[take:]
		if len(pend) == c.tileRecs {
			if err := c.flushTile(p, pend); err != nil {
				c.pending[p] = pend[:0]
				return err
			}
			pend = pend[:0]
		}
	}
	c.pending[p] = pend
	return nil
}

func (c *tileCompressor) flushTile(p int, edges []core.Edge) error {
	var compressed bool
	var err error
	c.buf, compressed, err = c.enc.Encode(c.buf[:0], edges)
	if err != nil {
		return err
	}
	f := c.files[p]
	off := f.size
	if err := f.appendBytes(c.buf); err != nil {
		return err
	}
	span := core.NewSrcSpan(edges[0].Src)
	for _, ed := range edges[1:] {
		span.Add(ed.Src)
	}
	t := c.tiles
	t.parts[p] = append(t.parts[p], tileSpan{
		recs: int64(len(edges)), span: span, off: off, bytes: int64(len(c.buf)),
	})
	t.logicalBytes += int64(len(edges)) * edgeRecSize
	t.physBytes += int64(len(c.buf))
	if compressed {
		t.tilesCompressed++
	}
	return nil
}

// finish encodes every partition's trailing short tile. Call after the
// bucketWriter's Finish, when no more runs will arrive.
func (c *tileCompressor) finish() error {
	for p, pend := range c.pending {
		if len(pend) > 0 {
			if err := c.flushTile(p, pend); err != nil {
				return err
			}
			c.pending[p] = pend[:0]
		}
	}
	return nil
}

// edgeStream is the chunked record stream the scatter paths consume — a
// raw chunkReader or a decoding tileReader behind one contract. PhysBytes
// is the device byte volume behind the records delivered so far: equal to
// the record bytes for the raw layout, smaller for compressed tiles.
type edgeStream interface {
	Next() ([]core.Edge, error)
	Close()
	PhysBytes() int64
}

// openSegment opens the stream for one planned segment of an edge file.
// verify only matters for compressed segments, whose tilecodec frames are
// checksum-checked as they decode; raw segments are verified above the
// reader by streamSegments' rawTileVerifier.
func openSegment(f storage.File, seg edgeSegment, chunkRecs int, prefetch, verify bool) edgeStream {
	if seg.tiles == nil {
		return newChunkReaderRange[core.Edge](f, seg.lo*edgeRecSize, seg.hi*edgeRecSize, chunkRecs, prefetch)
	}
	return newTileReader(f, seg.tiles, chunkRecs, prefetch, verify)
}

// rawTileVerifier re-checksums a raw edge file's streamed records against
// the per-tile CRCs the pre-processing shuffle recorded. Segments planned
// from the tile index always start on tile boundaries, so the verifier
// tracks which tile each delivered record falls in and compares at every
// tile edge — corruption in a tile surfaces before more than one tile's
// worth of records past it has been scattered, and always before the run
// can return results.
type rawTileVerifier struct {
	name     string
	tiles    []tileSpan
	tileRecs int64
	idx      int   // tile the next record falls in
	within   int64 // records of tiles[idx] already fed
	crc      uint32
	checked  int64 // record bytes verified so far
}

// newRawTileVerifier returns a verifier for partition p of a raw layout,
// or nil when the index cannot vouch for the file (the whole-file safety
// net of activeSegments, where index and file disagree on the record
// count — planSegments then streams the whole file unverified).
func newRawTileVerifier(pf *partFile, t *diskTiles, p int) *rawTileVerifier {
	if t == nil || t.compressed || t.tileRecs <= 0 {
		return nil
	}
	if t.totalRecs(p)*edgeRecSize != pf.size {
		return nil
	}
	return &rawTileVerifier{name: pf.name, tiles: t.parts[p], tileRecs: t.tileRecs}
}

// startSegment positions the verifier at the tile containing record lo.
// Raw tiles are fixed-size except the trailing one, so the tile index is
// lo/tileRecs; a misaligned segment (never planned, defended anyway)
// reports false and the caller streams it unverified.
func (v *rawTileVerifier) startSegment(lo int64) bool {
	if lo%v.tileRecs != 0 {
		return false
	}
	idx := int(lo / v.tileRecs)
	if idx > len(v.tiles) {
		return false
	}
	v.idx, v.within, v.crc = idx, 0, 0
	return true
}

// feed folds one delivered chunk into the running per-tile checksums.
func (v *rawTileVerifier) feed(chunk []core.Edge) error {
	for len(chunk) > 0 {
		if v.idx >= len(v.tiles) {
			return fmt.Errorf("diskengine: edge file %s: records past the tile index: %w", v.name, storage.ErrCorrupted)
		}
		tl := &v.tiles[v.idx]
		take := tl.recs - v.within
		if take > int64(len(chunk)) {
			take = int64(len(chunk))
		}
		seg := chunk[:take]
		v.crc = storage.ChecksumUpdate(v.crc, pod.AsBytes(seg))
		v.within += take
		chunk = chunk[take:]
		if v.within == tl.recs {
			v.checked += tl.recs * edgeRecSize
			if v.crc != tl.crc {
				return fmt.Errorf("diskengine: edge file %s: tile %d checksum %08x, want %08x: %w",
					v.name, v.idx, v.crc, tl.crc, storage.ErrCorrupted)
			}
			v.idx++
			v.within, v.crc = 0, 0
		}
	}
	return nil
}

// streamSegments streams the planned segments of partition p's edge file
// through fn in order, checking ctx between chunks (nil ctx skips the
// check). With verify set, every delivered record is covered by a CRC32C
// comparison: raw tiles against the shuffle-recorded index (or, for an
// unindexed file streamed whole, against the file's running append
// checksum), compressed tiles inside the tilecodec frames; a segment that
// delivers fewer records than planned — a silently torn file — is also
// corruption. It returns the physical and logical byte volume delivered
// (equal for the raw layout, phys < logical when tiles decoded to more
// than was read) plus the byte volume checksum-verified.
func streamSegments(ctx context.Context, pf *partFile, p int, tiles *diskTiles, verify bool, segs []edgeSegment, chunkRecs int, prefetch bool, fn func([]core.Edge) error) (phys, logical, checked int64, err error) {
	var ver *rawTileVerifier
	if verify {
		ver = newRawTileVerifier(pf, tiles, p)
	}
	// An unindexed raw file is always planned as one whole-file segment:
	// verify its stream against the file's running append checksum.
	var wholeCRC uint32
	wholeOK := verify && ver == nil && tiles == nil &&
		len(segs) == 1 && segs[0].lo == 0 && segs[0].hi*edgeRecSize == pf.size
	for _, seg := range segs {
		verSeg := ver != nil && ver.startSegment(seg.lo)
		var segRecs int64
		rd := openSegment(pf.f, seg, chunkRecs, prefetch, verify)
		for err == nil {
			var chunk []core.Edge
			chunk, err = rd.Next()
			if err != nil || chunk == nil {
				break
			}
			if ctx != nil {
				if err = ctx.Err(); err != nil {
					break
				}
			}
			logical += int64(len(chunk)) * edgeRecSize
			segRecs += int64(len(chunk))
			if verSeg {
				if err = ver.feed(chunk); err != nil {
					break
				}
			} else if wholeOK {
				wholeCRC = storage.ChecksumUpdate(wholeCRC, pod.AsBytes(chunk))
			}
			err = fn(chunk)
		}
		phys += rd.PhysBytes()
		rd.Close()
		if err == nil && verify && segRecs != seg.hi-seg.lo {
			err = fmt.Errorf("diskengine: edge file %s: segment [%d,%d) delivered %d of %d records: %w",
				pf.name, seg.lo, seg.hi, segRecs, seg.hi-seg.lo, storage.ErrCorrupted)
		}
		if err != nil {
			if ver != nil {
				checked = ver.checked
			}
			return phys, logical, checked, err
		}
	}
	switch {
	case ver != nil:
		checked = ver.checked
	case wholeOK:
		checked = pf.size
		if wholeCRC != pf.crc {
			return phys, logical, checked, fmt.Errorf("diskengine: edge file %s: stream checksum %08x, want %08x: %w",
				pf.name, wholeCRC, pf.crc, storage.ErrCorrupted)
		}
	case verify && tiles != nil && tiles.compressed:
		// Compressed tiles verify inside the codec frames; the bytes the
		// device actually moved are what the CRCs covered.
		checked = phys
	}
	return phys, logical, checked, nil
}

// tileReader streams one planned run of encoded tiles, decoding batches of
// consecutive tiles into edge records with the same prefetch-distance-1
// discipline as chunkReader: a dedicated goroutine reads and decodes the
// next batch into a second buffer while the caller scatters the current
// one. Consecutive tiles are physically adjacent, so one ReadAt covers
// each batch and the I/O stays sequential at the configured request size.
type tileReader struct {
	f         storage.File
	tiles     []tileSpan
	chunkRecs int
	verify    bool
	phys      int64
	cur       []core.Edge

	// async mode
	ready chan tileRes
	free  chan []core.Edge
	done  chan struct{}

	// sync mode (prefetch disabled, used by the ablation)
	idx int
	buf []core.Edge

	raw []byte // encoded-byte scratch, owned by whichever side decodes
}

type tileRes struct {
	recs []core.Edge
	phys int64
	err  error
}

func newTileReader(f storage.File, tiles []tileSpan, chunkRecs int, prefetch, verify bool) *tileReader {
	// A decode buffer must hold the largest batch: consecutive tiles up to
	// chunkRecs records, or any single oversized tile whole.
	capRecs := chunkRecs
	for _, tl := range tiles {
		if tl.recs > int64(capRecs) {
			capRecs = int(tl.recs)
		}
	}
	r := &tileReader{f: f, tiles: tiles, chunkRecs: chunkRecs, verify: verify}
	if !prefetch {
		r.buf = make([]core.Edge, capRecs)
		return r
	}
	r.ready = make(chan tileRes, 1)
	r.free = make(chan []core.Edge, 2)
	r.done = make(chan struct{})
	r.free <- make([]core.Edge, capRecs)
	r.free <- make([]core.Edge, capRecs)
	go r.reader()
	return r
}

// batchEnd returns the end of the tile batch starting at i: at least one
// tile, extended while the batch stays within chunkRecs records.
func batchEnd(tiles []tileSpan, i, chunkRecs int) int {
	recs := tiles[i].recs
	j := i + 1
	for j < len(tiles) && recs+tiles[j].recs <= int64(chunkRecs) {
		recs += tiles[j].recs
		j++
	}
	return j
}

// decodeBatch reads tiles[i:j] with one request and decodes them into out,
// cross-checking every tile against the index — a decode that disagrees
// with the span the shuffle recorded means a torn or corrupt file, never a
// silently wrong scatter.
func (r *tileReader) decodeBatch(i, j int, out []core.Edge) ([]core.Edge, int64, error) {
	off := r.tiles[i].off
	n := r.tiles[j-1].off + r.tiles[j-1].bytes - off
	if int64(cap(r.raw)) < n {
		r.raw = make([]byte, n)
	}
	raw := r.raw[:n]
	if err := readBytes(r.f, raw, off); err != nil {
		return nil, 0, err
	}
	out = out[:cap(out)]
	used := 0
	for _, tl := range r.tiles[i:j] {
		recs, consumed, err := tilecodec.DecodeVerify(raw, out[used:used], r.verify)
		if err != nil {
			return nil, 0, fmt.Errorf("diskengine: tile at offset %d: %w", off, err)
		}
		if int64(len(recs)) != tl.recs || int64(consumed) != tl.bytes {
			return nil, 0, fmt.Errorf("diskengine: tile at offset %d decodes to %d records in %d bytes, index says %d in %d: %w",
				off, len(recs), consumed, tl.recs, tl.bytes, storage.ErrCorrupted)
		}
		used += len(recs)
		raw = raw[consumed:]
		off += int64(consumed)
	}
	return out[:used], n, nil
}

// reader is the dedicated decode goroutine (§3.3: one I/O thread per
// stream — here it also pays the decode CPU off the scatter threads).
func (r *tileReader) reader() {
	defer close(r.ready)
	for i := 0; i < len(r.tiles); {
		var buf []core.Edge
		select {
		case buf = <-r.free:
		case <-r.done:
			return
		}
		j := batchEnd(r.tiles, i, r.chunkRecs)
		recs, phys, err := r.decodeBatch(i, j, buf)
		select {
		case r.ready <- tileRes{recs: recs, phys: phys, err: err}:
		case <-r.done:
			return
		}
		if err != nil {
			return
		}
		i = j
	}
}

// Next returns the next decoded batch, or nil at end of stream. The
// returned slice is only valid until the following Next call.
func (r *tileReader) Next() ([]core.Edge, error) {
	if r.ready == nil { // synchronous mode
		if r.idx >= len(r.tiles) {
			return nil, nil
		}
		j := batchEnd(r.tiles, r.idx, r.chunkRecs)
		recs, phys, err := r.decodeBatch(r.idx, j, r.buf)
		if err != nil {
			return nil, err
		}
		r.idx = j
		r.phys += phys
		return recs, nil
	}
	if r.cur != nil {
		r.free <- r.cur[:cap(r.cur)]
		r.cur = nil
	}
	res, ok := <-r.ready
	if !ok {
		return nil, nil
	}
	if res.err != nil {
		return nil, res.err
	}
	r.cur = res.recs
	r.phys += res.phys
	return res.recs, nil
}

// Close releases the decode goroutine.
func (r *tileReader) Close() {
	if r.done != nil {
		close(r.done)
	}
}

// PhysBytes returns the encoded byte volume behind the records delivered.
func (r *tileReader) PhysBytes() int64 { return r.phys }

// readBytes reads exactly len(buf) bytes at off, retrying short reads.
func readBytes(f storage.File, buf []byte, off int64) error {
	got := 0
	for got < len(buf) {
		n, err := f.ReadAt(buf[got:], off+int64(got))
		got += n
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
	}
	if got != len(buf) {
		return fmt.Errorf("diskengine: truncated tile read: %d of %d bytes at offset %d: %w", got, len(buf), off, storage.ErrCorrupted)
	}
	return nil
}
