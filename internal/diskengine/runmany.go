package diskengine

// runmany.go is the out-of-core engine's shared-pass execution path. A
// Prepared holds a dataset's pre-processing output — the input edge list
// shuffled once into partition edge files, the tile source index built
// during that shuffle, and the lazily built transposed files — so the
// shuffle is paid once per dataset instead of once per run. RunMany then
// drives any number of co-scheduled jobs (core.ProgramSet) from one pass
// over the edge files per iteration: each chunk read from a file is handed
// to every subscribing job's scatter, so the edge-file I/O that dominates
// out-of-core runs is amortized across jobs (BytesRead drops toward 1/K of
// K sequential runs; the figshare experiment gates it).
//
// Shared-pass jobs keep their vertex state and update streams in memory —
// the §3.2 bypass optimizations applied unconditionally. That is a serving
// design choice, not a loss of generality: the jobs scheduler's admission
// control only co-schedules jobs whose combined footprint
// (core.Job.MemoryEstimate) fits the budget, which is exactly the regime
// where the bypasses are legal. Jobs too big for the budget run solo
// through Run, which still spills vertices and updates to the device.
//
// Fault tolerance composes too: under Config.Checkpoint a pass snapshots
// every job's resumable state after each completed iteration (see
// checkpoint_shared.go), so a killed or faulted pass restarted with the
// same prefix resumes from the last completed iteration — the path
// cmd/xstream's -checkpoint flag takes through RunJob.
//
// Selective streaming composes: a partition's edge file is not read at all
// when no job's frontier reaches it, and when every subscribing job is
// partially active the file is read only in the segments whose tiles some
// job needs (the frontier union). Within a streamed chunk every job
// scatters all records — extra records are wasted edges by the
// FrontierProgram contract, never wrong results.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/pod"
	"repro/internal/streambuf"
)

// sharedVertexBytes is the nominal per-vertex state size Prepare sizes
// partitions with when Config.Partitions is 0: the prepared file layout is
// shared by jobs of different state sizes.
const sharedVertexBytes = 16

// Prepared is a dataset's cached out-of-core pre-processing: partition
// edge files plus tile index, shared read-only by any number of RunMany
// passes. Close removes the files.
type Prepared struct {
	cfg         Config
	k           int
	part        core.Split
	asg         *core.Assignment
	partName    string
	shufPlan    streambuf.Plan
	nv, ne      int64
	bufEdgeRecs int
	prepTime    time.Duration

	mu        sync.Mutex
	edgeFiles []*partFile
	bwdFiles  []*partFile
	tilesFwd  *diskTiles
	tilesBwd  *diskTiles
	closed    bool
}

// Prepare ingests a graph once for shared-pass execution on cfg.Device:
// it plans the partitioning (paying any clustering passes now), rewrites
// the edge stream through the relabeling, and shuffles it into partition
// edge files, indexing tile source summaries along the way. The handle
// serves any number of jobs until Close.
func Prepare(g core.EdgeSource, cfg Config) (*Prepared, error) {
	return prepare(g, cfg, sharedVertexBytes)
}

// prepare is Prepare with an explicit per-vertex state size for the §3.4
// partition sizing — the direct RunMany/RunJob paths know their jobs'
// actual sizes and must not fail a budget the solo engine would meet.
func prepare(g core.EdgeSource, cfg Config, vertexBytes int64) (*Prepared, error) {
	cfg = cfg.withDefaults()
	if cfg.Device == nil {
		return nil, fmt.Errorf("diskengine: Config.Device is required")
	}
	t0 := time.Now()
	nv, ne := g.NumVertices(), g.NumEdges()

	k := cfg.Partitions
	if k == 0 {
		s, m := int64(cfg.IOUnit), cfg.MemoryBudget
		vb := nv * vertexBytes
		for cand := 1; cand <= 1<<20; cand <<= 1 {
			if vb/int64(cand)+5*s*int64(cand) <= m {
				k = cand
				break
			}
			if 5*s*int64(cand) > m {
				break
			}
		}
		if k == 0 {
			return nil, fmt.Errorf("diskengine: no partition count satisfies N/K + 5·S·K ≤ M with N=%d S=%d M=%d", vb, s, m)
		}
	}
	if k&(k-1) != 0 {
		return nil, fmt.Errorf("diskengine: partition count %d is not a power of two", k)
	}
	fanout := k
	if fanout < 2 {
		fanout = 2
	}
	plan, err := streambuf.NewPlan(k, fanout)
	if err != nil {
		return nil, err
	}
	bufEdgeRecs := int(int64(cfg.IOUnit) * int64(k) / edgeRecSize)
	if bufEdgeRecs < 1 {
		return nil, fmt.Errorf("diskengine: I/O unit %d too small for edge records", cfg.IOUnit)
	}

	pr := cfg.Partitioner
	if pr == nil {
		pr = core.RangePartitioner{}
	}
	asg, err := pr.Assign(g, k)
	if err != nil {
		return nil, fmt.Errorf("diskengine: partitioner %s: %w", pr.Name(), err)
	}
	if err := asg.Validate(nv); err != nil {
		return nil, fmt.Errorf("diskengine: partitioner %s: %w", pr.Name(), err)
	}
	if !asg.Identity() {
		g = graphio.Relabeled(g, asg.Relabel)
	}

	pp := &Prepared{
		cfg: cfg, k: k, part: asg.Split, asg: asg, partName: pr.Name(),
		shufPlan: plan, nv: nv, ne: ne, bufEdgeRecs: bufEdgeRecs,
	}
	pp.edgeFiles = make([]*partFile, k)
	for p := 0; p < k; p++ {
		if pp.edgeFiles[p], err = createPartFile(cfg.Device, fmt.Sprintf("%sds-p%04d.edges", cfg.Prefix, p)); err != nil {
			pp.removeFiles()
			return nil, err
		}
	}
	pp.tilesFwd = newDiskTilesFor(k, cfg.TileEdges, cfg.CompressTiles)
	if err := partitionEdgesInto(g, pp.edgeFiles, false, pp.tilesFwd, bufEdgeRecs, plan, pp.part, cfg.Threads); err != nil {
		pp.removeFiles()
		return nil, err
	}
	pp.prepTime = time.Since(t0)
	return pp, nil
}

// NumVertices returns the prepared graph's vertex count.
func (pp *Prepared) NumVertices() int64 { return pp.nv }

// NumEdges returns the prepared graph's edge record count.
func (pp *Prepared) NumEdges() int64 { return pp.ne }

// Partitions returns the shared partition count.
func (pp *Prepared) Partitions() int { return pp.k }

// Bytes returns the handle's resident in-memory footprint: the tile
// indexes plus per-file bookkeeping. The partition edge files themselves
// live on the device (BytesRead accounts their traffic), so an out-of-core
// handle is cheap to keep resident — but not free, which is what the
// dataset registry's memory cap charges.
func (pp *Prepared) Bytes() int64 {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	const fileBytes = 96 // partFile struct + device handle
	spanBytes := int64(pod.Size[tileSpan]())
	n := int64(len(pp.edgeFiles)+len(pp.bwdFiles)) * fileBytes
	for _, t := range []*diskTiles{pp.tilesFwd, pp.tilesBwd} {
		if t == nil {
			continue
		}
		for _, spans := range t.parts {
			n += int64(len(spans)) * spanBytes
		}
	}
	return n
}

// Close removes the prepared partition files from the device.
func (pp *Prepared) Close() {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.closed {
		return
	}
	pp.closed = true
	pp.removeFiles()
}

func (pp *Prepared) removeFiles() {
	for _, fs := range [][]*partFile{pp.edgeFiles, pp.bwdFiles} {
		for _, f := range fs {
			if f != nil {
				f.remove()
			}
		}
	}
}

// files returns the partition edge files and tile index for a direction,
// building the transposed files lazily, at most once. The build's own I/O
// (one read and one write of the whole edge volume) is returned so the
// triggering pass can account it — per-pass I/O is tallied from what the
// pass actually reads, never from global device counters, so concurrent
// passes on one device stay correctly attributed.
func (pp *Prepared) files(dir core.Direction) (files []*partFile, tiles *diskTiles, buildRead, buildReadLogical, buildWritten, buildChecked int64, err error) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if pp.closed {
		return nil, nil, 0, 0, 0, 0, fmt.Errorf("diskengine: prepared dataset is closed")
	}
	if dir == core.Forward {
		return pp.edgeFiles, pp.tilesFwd, 0, 0, 0, 0, nil
	}
	if pp.bwdFiles == nil {
		bwd := make([]*partFile, pp.k)
		cleanup := func() {
			for _, f := range bwd {
				if f != nil {
					f.remove()
				}
			}
		}
		for p := 0; p < pp.k; p++ {
			if bwd[p], err = createPartFile(pp.cfg.Device, fmt.Sprintf("%sds-p%04d.redges", pp.cfg.Prefix, p)); err != nil {
				cleanup()
				return nil, nil, 0, 0, 0, 0, err
			}
		}
		src := &partFilesSource{files: pp.edgeFiles, tiles: pp.tilesFwd, nv: pp.nv, chunkRecs: pp.bufEdgeRecs, prefetch: !pp.cfg.NoPrefetch, verify: !pp.cfg.NoVerify}
		t := newDiskTilesFor(pp.k, pp.cfg.TileEdges, pp.cfg.CompressTiles)
		if err := partitionEdgesInto(src, bwd, true, t, pp.bufEdgeRecs, pp.shufPlan, pp.part, pp.cfg.Threads); err != nil {
			cleanup()
			return nil, nil, 0, 0, 0, 0, err
		}
		buildRead, buildReadLogical, buildChecked = src.phys, src.logical, src.checked
		for p := 0; p < pp.k; p++ {
			buildWritten += bwd[p].size
		}
		pp.bwdFiles, pp.tilesBwd = bwd, t
	}
	return pp.bwdFiles, pp.tilesBwd, buildRead, buildReadLogical, buildWritten, buildChecked, nil
}

// RunMany executes every job of set against g out of core, sharing one
// pass over the edge files per iteration. See Prepared.RunMany.
func RunMany(ctx context.Context, g core.EdgeSource, set core.ProgramSet, cfg Config) ([]core.JobResult, core.Stats, error) {
	vb := vertexBytesOf(set)
	if vb == 0 {
		vb = sharedVertexBytes
	}
	pp, err := prepare(g, cfg, vb)
	if err != nil {
		return nil, core.Stats{}, err
	}
	defer pp.Close()
	return pp.RunMany(ctx, set)
}

// vertexBytesOf returns the widest vertex state in the set.
func vertexBytesOf(set core.ProgramSet) int64 {
	var vb int64
	for _, j := range set {
		if int64(j.VertexBytes()) > vb {
			vb = int64(j.VertexBytes())
		}
	}
	return vb
}

// RunJob executes a single type-erased job — the registry-driven
// counterpart of Run. Unlike Run it holds vertex state and updates in
// memory (see the package notes on shared-pass execution).
func RunJob(ctx context.Context, g core.EdgeSource, job *core.Job, cfg Config) (*core.JobResult, error) {
	res, pass, err := RunMany(ctx, g, core.ProgramSet{job}, cfg)
	if err != nil {
		return nil, err
	}
	out := res[0]
	// A solo pass's shared-side accounting is the job's own.
	out.Stats.PreprocessTime = pass.PreprocessTime
	out.Stats.ScatterTime = pass.ScatterTime
	out.Stats.BytesRead = pass.BytesRead
	out.Stats.BytesReadLogical = pass.BytesReadLogical
	out.Stats.BytesWritten = pass.BytesWritten
	out.Stats.TilesCompressed = pass.TilesCompressed
	out.Stats.CompressedRatio = pass.CompressedRatio
	out.Stats.BytesChecksummed = pass.BytesChecksummed
	out.Stats.ChecksumFailures = pass.ChecksumFailures
	out.Stats.IORetries = pass.IORetries
	// A resumed pass restores iterations instead of executing them; the
	// job's own tally only counts executed ones.
	out.Stats.Iterations = pass.Iterations
	out.Stats.ResumedIterations = pass.ResumedIterations
	core.GraftPassIters(out.Stats.Iters, pass.Iters)
	return &out, nil
}

// RunMany drives all jobs of set from one pass over the prepared edge
// files per iteration. It returns each job's result plus pass-level stats:
// EdgesStreamed counts every edge record read once however many jobs
// consumed it, EdgesShared the reads the sharing avoided, and
// BytesRead/BytesWritten the device traffic of this pass alone. ctx
// cancels between iterations, files and chunks; nil means Background.
func (pp *Prepared) RunMany(ctx context.Context, set core.ProgramSet) ([]core.JobResult, core.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(set) == 0 {
		return nil, core.Stats{}, fmt.Errorf("diskengine: RunMany of an empty program set")
	}
	cfg := pp.cfg
	start := time.Now()
	pass := core.Stats{
		Algorithm: set.Label(), Engine: "disk:" + cfg.Device.Name(),
		Partitioner: pp.partName, Partitions: pp.k, Threads: cfg.Threads,
		CoJobs: len(set), PreprocessTime: pp.prepTime,
	}
	retriesBefore := cfg.Device.Stats().Retries

	newRuns := func() ([]core.JobRun, error) {
		runs := make([]core.JobRun, len(set))
		for i, j := range set {
			if err := j.Check(); err != nil {
				return nil, fmt.Errorf("diskengine: job %s: %w", j.Name(), err)
			}
			runs[i] = j.NewRun()
			err := runs[i].Setup(core.JobSetup{
				Assignment: pp.asg, NumVertices: pp.nv, NumEdges: pp.ne,
				Threads: cfg.Threads, Plan: pp.shufPlan, UpdateCap: int(pp.ne),
				PrivateBufRecs: basePrivCap,
				NoCombine:      cfg.NoCombine, Selective: cfg.Selective,
				Exchange: cfg.Exchange,
			})
			if err != nil {
				return nil, fmt.Errorf("diskengine: %w", err)
			}
		}
		return runs, nil
	}
	runs, err := newRuns()
	if err != nil {
		return nil, pass, err
	}

	// Resume a checkpointed pass from the newest valid snapshot a previous
	// attempt with this prefix left behind: iterations [0, startIter) are
	// restored, not executed. Invalid or corrupt snapshots are ignored,
	// never trusted.
	startIter := 0
	var snaps []core.Snapshotter
	if cfg.Checkpoint {
		snaps = snapshotters(runs)
	}
	if snaps != nil {
		startIter, err = pp.trySharedResume(&pass, runs, snaps, func() error {
			rs, err := newRuns()
			if err != nil {
				return err
			}
			copy(runs, rs)
			copy(snaps, snapshotters(rs))
			return nil
		})
		if err != nil {
			return nil, pass, err
		}
		pass.ResumedIterations = startIter
	}

	live := make([]core.JobRun, 0, len(runs))
	// Per-iteration retry attribution: the run-level IORetries is a single
	// end-of-pass delta; the loop samples the device counter at every
	// iteration boundary so the per-iteration profile can slice it.
	lastRetries := cfg.Device.Stats().Retries
	for iter := startIter; iter < cfg.MaxIterations; iter++ {
		live = live[:0]
		for _, r := range runs {
			if !r.Done() {
				live = append(live, r)
			}
		}
		if len(live) == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, pass, err
		}
		iterStart := time.Now()
		iterMark := pass.MarkIter()
		for _, r := range live {
			r.StartIteration(iter)
			r.BeginScatter()
		}

		t0 := time.Now()
		for _, dir := range []core.Direction{core.Forward, core.Backward} {
			var subs []core.JobRun
			for _, r := range live {
				if r.Direction(iter) == dir {
					subs = append(subs, r)
				}
			}
			if len(subs) == 0 {
				continue
			}
			files, tiles, buildRead, buildReadLogical, buildWritten, buildChecked, err := pp.files(dir)
			if err != nil {
				return nil, pass, err
			}
			pass.BytesRead += buildRead
			pass.BytesReadLogical += buildReadLogical
			pass.BytesWritten += buildWritten
			pass.BytesChecksummed += buildChecked
			if err := pp.scatterShared(ctx, &pass, subs, files, tiles); err != nil {
				return nil, pass, err
			}
		}
		scatterDur := time.Since(t0)
		pass.ScatterTime += scatterDur

		t1 := time.Now()
		if err := core.EndAndGather(live); err != nil {
			return nil, pass, err
		}
		gatherDur := time.Since(t1)
		pass.GatherTime += gatherDur
		for _, r := range live {
			r.EndIteration(iter)
		}
		pass.Iterations = iter + 1
		if tr := cfg.Tracer; tr != nil {
			it := int64(iter)
			tr.Span(0, "scatter", t0, scatterDur, map[string]int64{"iter": it, "jobs": int64(len(live))})
			tr.Span(0, "gather", t1, gatherDur, map[string]int64{"iter": it, "jobs": int64(len(live))})
			tr.Span(0, "iteration", iterStart, time.Since(iterStart), map[string]int64{"iter": it})
		}

		// Snapshot only when the pass continues: EndIteration has folded
		// any phase state into the vertices and Gather swapped the
		// frontiers, so the snapshot is exactly what iteration iter+1
		// starts from. A terminating pass needs no snapshot — its
		// checkpoints are removed on success below.
		if snaps != nil {
			stillLive := false
			for _, r := range runs {
				if !r.Done() {
					stillLive = true
					break
				}
			}
			if stillLive {
				cpStart := time.Now()
				n, err := pp.writeSharedCheckpoint(iter, runs, snaps)
				if err != nil {
					// Checkpoints of earlier iterations outlive the
					// failure on purpose — they are what a retry resumes
					// from.
					return nil, pass, err
				}
				pass.BytesWritten += n
				if tr := cfg.Tracer; tr != nil {
					tr.Span(0, "checkpoint", cpStart, time.Since(cpStart), map[string]int64{"iter": int64(iter), "bytes": n})
				}
			}
		}
		// Slice the device retry counter into this iteration's window; the
		// end-of-pass assignment below overwrites the accrual with the exact
		// total, so sampling here cannot drift the run-level stat.
		retriesNow := cfg.Device.Stats().Retries
		pass.IORetries += retriesNow - lastRetries
		lastRetries = retriesNow
		pass.PushIter(iter, iterMark, time.Since(iterStart))
	}
	if snaps != nil {
		pp.removeSharedCheckpoints()
		pp.removeStaleTransposed()
	}

	results := make([]core.JobResult, len(runs))
	for i, r := range runs {
		verts, js, err := r.Finalize()
		if err != nil {
			return nil, pass, err
		}
		js.Engine, js.Partitioner = pass.Engine, pass.Partitioner
		js.Partitions, js.Threads, js.CoJobs = pass.Partitions, pass.Threads, pass.CoJobs
		js.TotalTime = time.Since(start)
		results[i] = core.JobResult{Vertices: verts, Stats: js}
		pass.UpdatesSent += js.UpdatesSent
		pass.WastedEdges += js.WastedEdges
		pass.CrossPartitionUpdates += js.CrossPartitionUpdates
		pass.UpdatesCombined += js.UpdatesCombined
		pass.UpdateBytes += js.UpdateBytes
		pass.RandomRefs += js.RandomRefs
		pass.TransportBatches += js.TransportBatches
		pass.TransportBytes += js.TransportBytes
		pass.TransportCross += js.TransportCross
		pass.EdgesShared += js.EdgesStreamed
	}
	pass.EdgesShared -= pass.EdgesStreamed
	if pass.EdgesShared < 0 {
		pass.EdgesShared = 0
	}
	pass.BytesStreamed += pass.EdgesStreamed * edgeRecSize
	var physTiles, logicalTiles int64
	pp.mu.Lock()
	for _, t := range []*diskTiles{pp.tilesFwd, pp.tilesBwd} {
		if t != nil && t.compressed {
			pass.TilesCompressed += t.tilesCompressed
			physTiles += t.physBytes
			logicalTiles += t.logicalBytes
		}
	}
	pp.mu.Unlock()
	if logicalTiles > 0 {
		pass.CompressedRatio = float64(physTiles) / float64(logicalTiles)
	}
	pass.IORetries = cfg.Device.Stats().Retries - retriesBefore
	pass.TotalTime = time.Since(start)
	if tr := cfg.Tracer; tr != nil {
		tr.Span(0, "run", start, pass.TotalTime, map[string]int64{
			"iterations": int64(pass.Iterations), "jobs": int64(len(runs)),
		})
	}
	return results, pass, nil
}

// scatterShared reads each partition's edge file (or only its needed tile
// segments) once and feeds every chunk to every subscribing job.
func (pp *Prepared) scatterShared(ctx context.Context, pass *core.Stats, subs []core.JobRun, files []*partFile, tiles *diskTiles) error {
	cfg := pp.cfg
	for p := 0; p < pp.k; p++ {
		if err := ctx.Err(); err != nil { // between partition files
			return err
		}
		fileRecs := edgeFileRecs(files[p], tiles, p)
		needing := make([]core.JobRun, 0, len(subs))
		allPartial := true
		for _, r := range subs {
			if r.NeedsPartition(p) {
				needing = append(needing, r)
				if !r.PartiallyActive(p) {
					allPartial = false
				}
			} else {
				r.SkipPartition(fileRecs)
			}
		}
		if len(needing) == 0 {
			// No job reaches the partition: its edge file is never read.
			if fileRecs > 0 {
				pass.EdgesSkipped += fileRecs
				pass.PartitionsSkipped++
			}
			continue
		}
		var need func(core.SrcSpan) bool
		if allPartial && tiles != nil {
			// Every subscriber can tile-skip: read only the segments whose
			// tiles some job's frontier reaches. A tile no job needs is a
			// byte range never read — and every subscriber would have
			// skipped at least it in a solo run.
			need = func(span core.SrcSpan) bool {
				for _, r := range needing {
					if r.NeedsTile(span) {
						return true
					}
				}
				return false
			}
		}
		segs, skippedRecs, skippedTiles := planSegments(tiles, p, need, fileRecs)
		if need != nil {
			pass.EdgesSkipped += skippedRecs
			pass.TilesSkipped += skippedTiles
			for _, r := range needing {
				r.SkipTiles(skippedRecs, skippedTiles)
			}
		}
		if len(segs) == 0 {
			continue
		}
		tr := cfg.Tracer
		var pStart time.Time
		if tr != nil {
			pStart = time.Now()
		}
		var pEdges int64
		scatters := make([]core.JobScatter, len(needing))
		for i, r := range needing {
			scatters[i] = r.NewScatter(p, fileRecs)
		}
		phys, logical, checked, err := streamSegments(ctx, files[p], p, tiles, !cfg.NoVerify, segs, pp.bufEdgeRecs, !cfg.NoPrefetch, func(chunk []core.Edge) error {
			pass.EdgesStreamed += int64(len(chunk))
			pass.SequentialRefs += int64(len(chunk))
			pEdges += int64(len(chunk))
			feedJobs(scatters, chunk)
			return nil
		})
		pass.BytesRead += phys
		pass.BytesReadLogical += logical
		pass.BytesChecksummed += checked
		if err != nil {
			return err
		}
		for _, sc := range scatters {
			sc.Flush()
		}
		if tr != nil {
			tr.Span(0, "partition", pStart, time.Since(pStart), map[string]int64{"p": int64(p), "edges": pEdges, "jobs": int64(len(needing))})
		}
	}
	return nil
}

// feedJobs scatters one read chunk for every subscribing job — the read is
// paid once, the compute proceeds in parallel across jobs.
func feedJobs(scatters []core.JobScatter, chunk []core.Edge) {
	if len(scatters) == 1 {
		scatters[0].Edges(chunk)
		return
	}
	var wg sync.WaitGroup
	for _, sc := range scatters {
		wg.Add(1)
		go func(sc core.JobScatter) {
			defer wg.Done()
			sc.Edges(chunk)
		}(sc)
	}
	wg.Wait()
}
