package diskengine

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/pod"
	"repro/internal/storage"
	"repro/internal/streambuf"
)

// fileTransport is the out-of-core implementation of core.UpdateTransport:
// the update-file writeback path of §3.2, extracted behind the interface.
// Sends append into a bucketWriter whose windowed shuffle+fold+write
// pipeline overlaps combining and file appends with the caller's next fill;
// Seal finishes the writer (or, when every update of the iteration fit one
// stream buffer, keeps the shuffled buffer in memory — the single-buffer
// bypass); Drain either walks that in-memory buffer or streams the
// partition's update file back with prefetch, verifying size and running
// CRC32C against the writer's accounting before the file is truncated.
type fileTransportConfig[M any] struct {
	files   []*partFile // one update file per partition
	plan    streambuf.Plan
	key     func(core.Update[M]) uint32
	threads int
	bufRecs int // records per shuffle window (and per read chunk)
	fold    func(*streambuf.Buffer[core.Update[M]]) int64

	bypass   bool // allow the single-buffer in-memory bypass at Seal
	prefetch bool // prefetch update-file reads at Drain
	verify   bool // verify size+CRC of drained update files

	// onVerified is called with the byte count of every update file that
	// passed verification at Drain — the engine's BytesChecksummed hook.
	onVerified func(int64)
}

type fileTransport[M any] struct {
	cfg     fileTransportConfig[M]
	recSize int

	mu    sync.Mutex                    // guards lazy writer creation
	w     *bucketWriter[core.Update[M]] // live writer, nil between iterations
	inMem *streambuf.Buffer[core.Update[M]]

	core.CounterSet
}

func newFileTransport[M any](cfg fileTransportConfig[M]) *fileTransport[M] {
	return &fileTransport[M]{cfg: cfg, recSize: pod.Size[core.Update[M]]()}
}

// writer lazily starts the iteration's bucketWriter pipeline, matching the
// pre-extraction engine which allocated one writer per scatter phase.
// Concurrent senders may race to create it, hence the lock.
func (t *fileTransport[M]) writer() *bucketWriter[core.Update[M]] {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w == nil {
		t.w = newBucketWriter(t.cfg.bufRecs, t.cfg.files, t.cfg.plan, t.cfg.key, t.cfg.threads, t.cfg.fold)
	}
	return t.w
}

// Send implements core.UpdateTransport. It returns false when the batch
// does not fit the current shuffle window; the coordinator's Room/Flush
// protocol prevents that in normal operation.
func (t *fileTransport[M]) Send(src int, batch []core.Update[M]) bool {
	if len(batch) == 0 {
		return true
	}
	if !t.writer().Buf().Append(batch) {
		return false
	}
	t.Count(src, int64(len(batch)), core.CrossOf(batch, src, t.cfg.key), t.recSize)
	return true
}

// Room implements core.UpdateTransport: remaining capacity of the current
// shuffle window.
func (t *fileTransport[M]) Room() int { return t.writer().Room() }

// Flush implements core.UpdateTransport: shuffle+fold the current window
// and hand it to the writer goroutine.
func (t *fileTransport[M]) Flush() error { return t.writer().Flush() }

// Seal implements core.UpdateTransport: finish the write pipeline. With the
// bypass enabled and everything in one window, the shuffled buffer is kept
// in memory for Drain instead of touching the update files.
func (t *fileTransport[M]) Seal() (core.IterFlow, error) {
	w := t.writer()
	var err error
	if t.cfg.bypass {
		t.inMem, err = w.FinishBypass()
	} else {
		err = w.Finish()
	}
	flow := core.IterFlow{
		Appended:  w.combined + w.written,
		Combined:  w.combined,
		Delivered: w.written,
	}
	t.w = nil
	return flow, err
}

// Pending implements core.UpdateTransport: records sealed for partition p,
// from the bypass buffer or the update file's append offset.
func (t *fileTransport[M]) Pending(p int) int64 {
	if t.inMem != nil {
		return int64(t.inMem.BucketLen(p))
	}
	return t.cfg.files[p].size / int64(t.recSize)
}

// Drain implements core.UpdateTransport. The file path verifies byte count
// and running CRC32C against what the write side appended, surfaces any
// mismatch as storage.ErrCorrupted, and truncates the file afterwards so
// the next iteration appends from zero (on SSDs the truncate is the TRIM
// hint of §3.3).
func (t *fileTransport[M]) Drain(p int, fn func([]core.Update[M]) error) error {
	if t.inMem != nil {
		var err error
		t.inMem.Bucket(p, func(run []core.Update[M]) {
			if err == nil {
				err = fn(run)
			}
		})
		return err
	}
	uf := t.cfg.files[p]
	var crc uint32
	var got int64
	rd := newChunkReader[core.Update[M]](uf.f, uf.size, t.cfg.bufRecs, t.cfg.prefetch)
	defer rd.Close()
	for {
		chunk, err := rd.Next()
		if err != nil {
			return err
		}
		if chunk == nil {
			break
		}
		if t.cfg.verify {
			crc = storage.ChecksumUpdate(crc, pod.AsBytes(chunk))
			got += int64(len(chunk)) * int64(t.recSize)
		}
		if err := fn(chunk); err != nil {
			return err
		}
	}
	if t.cfg.verify {
		if got != uf.size || crc != uf.crc {
			return fmt.Errorf("diskengine: update file %s: %d of %d bytes, checksum %08x, want %08x: %w",
				uf.name, got, uf.size, crc, uf.crc, storage.ErrCorrupted)
		}
		if t.cfg.onVerified != nil {
			t.cfg.onVerified(got)
		}
	}
	return uf.truncate()
}

// EndIteration implements core.UpdateTransport: release the bypass buffer
// (a sealed writer is already gone; the update files were truncated by
// Drain).
func (t *fileTransport[M]) EndIteration() error {
	t.inMem = nil
	return nil
}

// Close implements core.UpdateTransport: stop a live writer pipeline if an
// error path abandoned the iteration mid-scatter. The update files
// themselves belong to the engine and are removed by its cleanup.
func (t *fileTransport[M]) Close() error {
	var err error
	if t.w != nil {
		err = t.w.Finish()
		t.w = nil
	}
	t.inMem = nil
	return err
}

// Cap implements core.UpdateTransport: the per-window record capacity.
func (t *fileTransport[M]) Cap() int { return t.cfg.bufRecs }

// Counters implements core.UpdateTransport.
func (t *fileTransport[M]) Counters() core.TransportCounters { return t.Snapshot() }
