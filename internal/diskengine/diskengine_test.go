package diskengine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graphgen"
	"repro/internal/memengine"
	"repro/internal/storage"
)

// The test programs mirror the memengine test suite so the two engines can
// be checked for parity.

type wccState struct {
	Label   core.VertexID
	Updated int32
}

type wccProg struct{ iter int32 }

func (w *wccProg) Name() string { return "wcc-test" }

func (w *wccProg) Init(id core.VertexID, v *wccState) {
	v.Label = id
	v.Updated = 0
}

func (w *wccProg) StartIteration(iter int) { w.iter = int32(iter) }

func (w *wccProg) Scatter(e core.Edge, src *wccState) (core.VertexID, bool) {
	if src.Updated == w.iter {
		return src.Label, true
	}
	return 0, false
}

func (w *wccProg) Gather(dst core.VertexID, v *wccState, m core.VertexID) {
	if m < v.Label {
		v.Label = m
		v.Updated = w.iter + 1
	}
}

func ssd(scale float64) storage.Device {
	return storage.NewSim(storage.SSDParams("ssd", 2, scale))
}

func smallGraph(seed int64) (core.EdgeSource, []core.Edge) {
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 9, EdgeFactor: 8, Seed: seed, Undirected: true})
	edges, _ := core.Materialize(src)
	return src, edges
}

// runBoth executes the same program on both engines and requires identical
// vertex state.
func runBothWCC(t *testing.T, cfg Config) {
	t.Helper()
	src, _ := smallGraph(21)
	memRes, err := memengine.Run(src, &wccProg{}, memengine.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	diskRes, err := Run(src, &wccProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diskRes.Vertices) != len(memRes.Vertices) {
		t.Fatalf("vertex count %d vs %d", len(diskRes.Vertices), len(memRes.Vertices))
	}
	for i := range memRes.Vertices {
		if diskRes.Vertices[i].Label != memRes.Vertices[i].Label {
			t.Fatalf("vertex %d: disk label %d, mem label %d (cfg %+v)",
				i, diskRes.Vertices[i].Label, memRes.Vertices[i].Label, cfg)
		}
	}
	if diskRes.Stats.Iterations != memRes.Stats.Iterations {
		t.Fatalf("iterations: disk %d, mem %d", diskRes.Stats.Iterations, memRes.Stats.Iterations)
	}
}

func TestEngineParityDefault(t *testing.T) {
	runBothWCC(t, Config{Device: ssd(0), Threads: 2, IOUnit: 64 << 10})
}

func TestEngineParityManyPartitions(t *testing.T) {
	runBothWCC(t, Config{Device: ssd(0), Threads: 2, IOUnit: 8 << 10, Partitions: 8})
}

func TestEngineParityVertexSpill(t *testing.T) {
	runBothWCC(t, Config{Device: ssd(0), Threads: 2, IOUnit: 8 << 10, Partitions: 4, ForceVertexSpill: true})
}

func TestEngineParityNoBypass(t *testing.T) {
	runBothWCC(t, Config{Device: ssd(0), Threads: 2, IOUnit: 8 << 10, Partitions: 4, NoUpdateBypass: true})
}

func TestEngineParityNoPrefetch(t *testing.T) {
	runBothWCC(t, Config{Device: ssd(0), Threads: 2, IOUnit: 8 << 10, Partitions: 4, NoPrefetch: true})
}

func TestEngineParitySeparateUpdateDevice(t *testing.T) {
	upd := storage.NewSim(storage.SSDParams("upd", 1, 0))
	runBothWCC(t, Config{Device: ssd(0), UpdateDevice: upd, Threads: 2, IOUnit: 8 << 10, Partitions: 4, NoUpdateBypass: true})
}

func TestEngineParitySingleThread(t *testing.T) {
	runBothWCC(t, Config{Device: ssd(0), Threads: 1, IOUnit: 16 << 10, Partitions: 2})
}

func TestEngineParityOSDevice(t *testing.T) {
	dev, err := storage.NewOS("os", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runBothWCC(t, Config{Device: dev, Threads: 2, IOUnit: 32 << 10, Partitions: 4, ForceVertexSpill: true, NoUpdateBypass: true})
}

// Degree program exercising phased termination and backward direction.
type degProg struct{ backward bool }

func (d *degProg) Name() string                                  { return "degree-test" }
func (d *degProg) Init(id core.VertexID, v *int32)               { *v = 0 }
func (d *degProg) Scatter(e core.Edge, src *int32) (int32, bool) { return 1, true }
func (d *degProg) Gather(dst core.VertexID, v *int32, m int32)   { *v += m }

func (d *degProg) EndIteration(iter int, sent int64, view core.VertexView[int32]) bool {
	return true
}

func (d *degProg) Direction(iter int) core.Direction {
	if d.backward {
		return core.Backward
	}
	return core.Forward
}

func TestBackwardDirection(t *testing.T) {
	edges := []core.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 2, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
	}
	src := core.NewSliceSource(edges, 3)
	res, err := Run(src, &degProg{backward: true}, Config{Device: ssd(0), Threads: 2, IOUnit: 8 << 10, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Vertices; got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("out-degrees = %v", got)
	}
}

// sumProg mutates vertex state through the phase hook's view to verify
// spill-mode write-back.
type sumProg struct{ rounds int }

func (s *sumProg) Name() string                                  { return "sum-test" }
func (s *sumProg) Init(id core.VertexID, v *int32)               { *v = 0 }
func (s *sumProg) Scatter(e core.Edge, src *int32) (int32, bool) { return 1, true }
func (s *sumProg) Gather(dst core.VertexID, v *int32, m int32)   { *v += m }

func (s *sumProg) EndIteration(iter int, sent int64, view core.VertexView[int32]) bool {
	view.ForEach(func(id core.VertexID, v *int32) { *v += 100 })
	s.rounds++
	return s.rounds >= 2
}

func TestSpillViewWriteBack(t *testing.T) {
	edges := []core.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 0, Weight: 1}}
	src := core.NewSliceSource(edges, 2)
	res, err := Run(src, &sumProg{}, Config{
		Device: ssd(0), Threads: 1, IOUnit: 8 << 10, Partitions: 2, ForceVertexSpill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two iterations: each gathers +1 per vertex, each EndIteration adds
	// +100 -> final state 202.
	for i, v := range res.Vertices {
		if v != 202 {
			t.Fatalf("vertex %d = %d, want 202", i, v)
		}
	}
}

func TestFilesCleanedUp(t *testing.T) {
	dev := ssd(0)
	src, _ := smallGraph(3)
	if _, err := Run(src, &wccProg{}, Config{Device: dev, Threads: 2, IOUnit: 16 << 10, Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Open("p0000.edges"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("edge file survived cleanup: %v", err)
	}
}

func TestKeepFiles(t *testing.T) {
	dev := ssd(0)
	src, _ := smallGraph(3)
	if _, err := Run(src, &wccProg{}, Config{Device: dev, Threads: 2, IOUnit: 16 << 10, Partitions: 4, KeepFiles: true, Prefix: "run1-"}); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Open("run1-p0000.edges"); err != nil {
		t.Fatalf("edge file missing with KeepFiles: %v", err)
	}
}

func TestUpdateFilesTrimmed(t *testing.T) {
	dev := ssd(0)
	src, _ := smallGraph(4)
	_, err := Run(src, &wccProg{}, Config{Device: dev, Threads: 2, IOUnit: 8 << 10, Partitions: 4, NoUpdateBypass: true, KeepFiles: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := dev.Stats(); s.Trims == 0 {
		t.Fatal("update files were never truncated (TRIM, §3.3)")
	}
}

func TestInjectedFaultSurfaces(t *testing.T) {
	inner := ssd(0)
	dev := storage.NewFaulty(inner, storage.FaultyOptions{FailAfterOps: 30})
	src, _ := smallGraph(5)
	_, err := Run(src, &wccProg{}, Config{Device: dev, Threads: 2, IOUnit: 8 << 10, Partitions: 4, NoUpdateBypass: true})
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
}

func TestPartitionPlanning(t *testing.T) {
	// A graph whose vertices cannot fit with tiny memory must error.
	src := graphgen.RMAT(graphgen.RMATConfig{Scale: 14, EdgeFactor: 4, Seed: 1})
	_, err := Run(src, &wccProg{}, Config{Device: ssd(0), MemoryBudget: 4 << 10, IOUnit: 4 << 10})
	if err == nil || !strings.Contains(err.Error(), "N/K") {
		t.Fatalf("want §3.4 infeasibility error, got %v", err)
	}
	// Forced non-power-of-two partitions error.
	if _, err := Run(src, &wccProg{}, Config{Device: ssd(0), Partitions: 3}); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	// Missing device errors.
	if _, err := Run(src, &wccProg{}, Config{}); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestAutoPartitionsRespectBudget(t *testing.T) {
	// With a small budget the engine must pick K > 1 and still be right.
	src, _ := smallGraph(6)
	res, err := Run(src, &wccProg{}, Config{
		Device:       ssd(0),
		MemoryBudget: 512 << 10,
		IOUnit:       8 << 10,
		Threads:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Partitions < 1 {
		t.Fatalf("partitions = %d", res.Stats.Partitions)
	}
	if res.Stats.BytesRead == 0 || res.Stats.BytesWritten == 0 {
		t.Fatalf("device bytes not accounted: %+v", res.Stats)
	}
}

func TestStatsAccounting(t *testing.T) {
	src, _ := smallGraph(7)
	res, err := Run(src, &wccProg{}, Config{Device: ssd(0), Threads: 2, IOUnit: 16 << 10, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.EdgesStreamed != src.NumEdges()*int64(s.Iterations) {
		t.Fatalf("edges streamed %d, want %d × %d", s.EdgesStreamed, src.NumEdges(), s.Iterations)
	}
	if s.EdgesStreamed != s.UpdatesSent+s.WastedEdges {
		t.Fatalf("accounting: %d != %d + %d", s.EdgesStreamed, s.UpdatesSent, s.WastedEdges)
	}
	if s.PreprocessTime <= 0 {
		t.Fatal("missing preprocess time")
	}
}

// ---- selective (frontier-aware) streaming ----

type bfsState struct {
	Dist    int32
	Updated int32
}

type bfsProg struct {
	root core.VertexID
	iter int32
}

func (b *bfsProg) Name() string { return "bfs-test" }

func (b *bfsProg) Init(id core.VertexID, v *bfsState) {
	if id == b.root {
		*v = bfsState{Dist: 0, Updated: 0}
	} else {
		*v = bfsState{Dist: -1, Updated: -1}
	}
}

func (b *bfsProg) StartIteration(iter int) { b.iter = int32(iter) }

func (b *bfsProg) Scatter(e core.Edge, src *bfsState) (int32, bool) {
	if src.Updated == b.iter {
		return src.Dist + 1, true
	}
	return 0, false
}

func (b *bfsProg) Gather(dst core.VertexID, v *bfsState, m int32) {
	if v.Dist < 0 {
		v.Dist = m
		v.Updated = b.iter + 1
	}
}

func (b *bfsProg) InitiallyActive(id core.VertexID, v *bfsState) bool { return id == b.root }

// TestSelectiveBFSDisk: a path graph keeps the BFS frontier one vertex
// wide, so the selective disk engine must skip whole edge files, skip
// tiles inside the frontier's own partition, read far fewer bytes — and
// still produce bit-identical state, across the bypass, no-bypass and
// vertex-spill configurations.
func TestSelectiveBFSDisk(t *testing.T) {
	src := graphgen.Chain(2048, 13)
	for _, variant := range []struct {
		name string
		mod  func(*Config)
	}{
		{"bypass", func(c *Config) {}},
		{"nobypass", func(c *Config) { c.NoUpdateBypass = true }},
		{"spill", func(c *Config) { c.ForceVertexSpill = true }},
		{"noprefetch", func(c *Config) { c.NoPrefetch = true }},
	} {
		t.Run(variant.name, func(t *testing.T) {
			base := Config{Threads: 2, IOUnit: 16 << 10, Partitions: 8, TileEdges: 64}
			variant.mod(&base)
			offCfg := base
			offCfg.Device = ssd(0)
			off, err := Run(src, &bfsProg{root: 0}, offCfg)
			if err != nil {
				t.Fatal(err)
			}
			onCfg := base
			onCfg.Device = ssd(0)
			onCfg.Selective = true
			on, err := Run(src, &bfsProg{root: 0}, onCfg)
			if err != nil {
				t.Fatal(err)
			}

			for v := range off.Vertices {
				if on.Vertices[v] != off.Vertices[v] {
					t.Fatalf("vertex %d: selective %+v, dense %+v", v, on.Vertices[v], off.Vertices[v])
				}
			}
			s := on.Stats
			if s.EdgesStreamed+s.EdgesSkipped != off.Stats.EdgesStreamed {
				t.Fatalf("streamed %d + skipped %d != dense streamed %d",
					s.EdgesStreamed, s.EdgesSkipped, off.Stats.EdgesStreamed)
			}
			if s.PartitionsSkipped == 0 || s.TilesSkipped == 0 {
				t.Fatalf("expected partition and tile skips: %+v", s)
			}
			if s.EdgesStreamed*4 > off.Stats.EdgesStreamed {
				t.Fatalf("weak reduction: %d of %d edges streamed", s.EdgesStreamed, off.Stats.EdgesStreamed)
			}
			// Skipped edges are bytes never read from the device.
			if s.BytesRead*2 > off.Stats.BytesRead {
				t.Fatalf("expected <=half the device reads, got %d vs dense %d", s.BytesRead, off.Stats.BytesRead)
			}
			if off.Stats.EdgesSkipped != 0 || off.Stats.PartitionsSkipped != 0 {
				t.Fatalf("dense run reported skips: %+v", off.Stats)
			}
		})
	}
}

// TestSelectiveDiskMemParity: both engines under selective scheduling must
// agree with each other and with their dense selves on a scale-free graph.
func TestSelectiveDiskMemParity(t *testing.T) {
	src, _ := smallGraph(31)
	memRes, err := memengine.Run(src, &bfsProg{root: 3}, memengine.Config{Threads: 2, Selective: true})
	if err != nil {
		t.Fatal(err)
	}
	diskRes, err := Run(src, &bfsProg{root: 3}, Config{
		Device: ssd(0), Threads: 2, IOUnit: 32 << 10, Partitions: 8, Selective: true, TileEdges: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Run(src, &bfsProg{root: 3}, Config{
		Device: ssd(0), Threads: 2, IOUnit: 32 << 10, Partitions: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range memRes.Vertices {
		if diskRes.Vertices[v] != memRes.Vertices[v] {
			t.Fatalf("vertex %d: disk %+v, mem %+v", v, diskRes.Vertices[v], memRes.Vertices[v])
		}
		if diskRes.Vertices[v] != dense.Vertices[v] {
			t.Fatalf("vertex %d: selective %+v, dense %+v", v, diskRes.Vertices[v], dense.Vertices[v])
		}
	}
	if diskRes.Stats.EdgesStreamed+diskRes.Stats.EdgesSkipped != dense.Stats.EdgesStreamed {
		t.Fatalf("disk workload does not reconcile: %+v vs %d", diskRes.Stats, dense.Stats.EdgesStreamed)
	}
	if memRes.Stats.UpdatesSent != diskRes.Stats.UpdatesSent {
		t.Fatalf("updates sent: mem %d, disk %d", memRes.Stats.UpdatesSent, diskRes.Stats.UpdatesSent)
	}
}

// TestSelectiveIgnoredWithoutContractDisk mirrors the mem-engine test: no
// FrontierProgram, no skips.
func TestSelectiveIgnoredWithoutContractDisk(t *testing.T) {
	src, _ := smallGraph(32)
	res, err := Run(src, &wccProg{}, Config{
		Device: ssd(0), Threads: 2, IOUnit: 32 << 10, Partitions: 8, Selective: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.EdgesSkipped != 0 || s.PartitionsSkipped != 0 || s.TilesSkipped != 0 {
		t.Fatalf("selective fired without contract: %+v", s)
	}
	if s.EdgesStreamed != src.NumEdges()*int64(s.Iterations) {
		t.Fatalf("streamed %d, want dense %d", s.EdgesStreamed, src.NumEdges()*int64(s.Iterations))
	}
}

// TestDiskTilesSegments exercises the tile index directly: coverage
// mismatch falls back to a full scan, active tiles coalesce into maximal
// segments, and skipped record counts reconcile.
func TestDiskTilesSegments(t *testing.T) {
	dt := newDiskTiles(1, 4)
	edges := make([]core.Edge, 10)
	for i := range edges {
		edges[i].Src = core.VertexID(i * 10) // tiles span [0,30],[40,70],[80,90]
	}
	dt.observe(0, edges)
	dt.finish()
	if got := len(dt.parts[0]); got != 3 {
		t.Fatalf("tile count %d, want 3", got)
	}

	front := core.NewFrontier(100)
	front.Mark(45) // activates only the middle tile
	segs, skipRecs, skipTiles := dt.activeSegments(0, front, 10)
	if len(segs) != 1 || segs[0] != (recRange{4, 8}) {
		t.Fatalf("segments %+v, want [{4 8}]", segs)
	}
	if skipRecs != 6 || skipTiles != 2 {
		t.Fatalf("skipped %d recs / %d tiles, want 6 / 2", skipRecs, skipTiles)
	}

	// Adjacent active tiles coalesce.
	front.Mark(0)
	segs, skipRecs, skipTiles = dt.activeSegments(0, front, 10)
	if len(segs) != 1 || segs[0] != (recRange{0, 8}) {
		t.Fatalf("segments %+v, want [{0 8}]", segs)
	}
	if skipRecs != 2 || skipTiles != 1 {
		t.Fatalf("skipped %d recs / %d tiles, want 2 / 1", skipRecs, skipTiles)
	}

	// Coverage mismatch (index says 10 records, file has 12): full scan.
	segs, skipRecs, skipTiles = dt.activeSegments(0, front, 12)
	if len(segs) != 1 || segs[0] != (recRange{0, 12}) || skipRecs != 0 || skipTiles != 0 {
		t.Fatalf("fallback segments %+v (skip %d/%d), want full scan", segs, skipRecs, skipTiles)
	}
}
