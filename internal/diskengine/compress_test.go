package diskengine

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/streambuf"
)

// shuffleLayout runs the pre-processing shuffle of a small RMAT graph into
// partition edge files in the given layout and returns the files plus the
// tile index. Single-threaded so the two layouts see identical run order.
func shuffleLayout(t *testing.T, compressed bool, tileRecs int) ([]*partFile, *diskTiles) {
	t.Helper()
	src, _ := smallGraph(33)
	dev := ssd(0)
	const k = 4
	part := core.NewSplit(src.NumVertices(), k)
	plan, err := streambuf.NewPlan(k, k)
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*partFile, k)
	for p := range files {
		name := fmt.Sprintf("lay%v-p%02d.edges", compressed, p)
		if files[p], err = createPartFile(dev, name); err != nil {
			t.Fatal(err)
		}
	}
	tiles := newDiskTilesFor(k, tileRecs, compressed)
	if err := partitionEdgesInto(src, files, false, tiles, 1024, plan, part, 1); err != nil {
		t.Fatal(err)
	}
	return files, tiles
}

// partitionRecords reads one partition's full edge stream back through the
// planned-segment path, decoding if the layout is compressed.
func partitionRecords(t *testing.T, f *partFile, tiles *diskTiles, p int, prefetch bool) []core.Edge {
	t.Helper()
	var out []core.Edge
	segs, _, _ := planSegments(tiles, p, nil, edgeFileRecs(f, tiles, p))
	_, _, _, err := streamSegments(nil, f, p, tiles, true, segs, 512, prefetch, func(chunk []core.Edge) error {
		out = append(out, append([]core.Edge(nil), chunk...)...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCompressedShuffleRoundTrip shuffles the same graph into both layouts
// and requires the decoded compressed streams to be record-identical to the
// raw ones — order included — while the files themselves shrink.
func TestCompressedShuffleRoundTrip(t *testing.T) {
	rawFiles, rawTiles := shuffleLayout(t, false, 128)
	cmpFiles, cmpTiles := shuffleLayout(t, true, 128)
	var rawSize, cmpSize int64
	for p := range rawFiles {
		want := partitionRecords(t, rawFiles[p], rawTiles, p, true)
		for _, prefetch := range []bool{true, false} {
			got := partitionRecords(t, cmpFiles[p], cmpTiles, p, prefetch)
			if len(got) != len(want) {
				t.Fatalf("partition %d (prefetch=%v): %d records decoded, want %d", p, prefetch, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("partition %d record %d: %+v != %+v", p, i, got[i], want[i])
				}
			}
		}
		rawSize += rawFiles[p].size
		cmpSize += cmpFiles[p].size
	}
	if cmpSize >= rawSize {
		t.Fatalf("compressed layout is %d bytes, raw is %d", cmpSize, rawSize)
	}
	if cmpTiles.tilesCompressed == 0 {
		t.Fatal("no tile was delta-encoded")
	}
	if cmpTiles.physBytes != cmpSize || cmpTiles.logicalBytes != rawSize {
		t.Fatalf("codec accounting: phys %d (files %d), logical %d (raw files %d)",
			cmpTiles.physBytes, cmpSize, cmpTiles.logicalBytes, rawSize)
	}
}

// TestCompressedTileSpansMatchRaw pins that compression leaves the
// selective-streaming index untouched: tile record counts and [min,max]
// source summaries are identical between layouts, so skip decisions — and
// therefore results — cannot differ.
func TestCompressedTileSpansMatchRaw(t *testing.T) {
	_, rawTiles := shuffleLayout(t, false, 64)
	cmpFiles, cmpTiles := shuffleLayout(t, true, 64)
	for p := range rawTiles.parts {
		rt, ct := rawTiles.parts[p], cmpTiles.parts[p]
		if len(rt) != len(ct) {
			t.Fatalf("partition %d: %d tiles compressed, %d raw", p, len(ct), len(rt))
		}
		var off int64
		for i := range rt {
			if rt[i].recs != ct[i].recs || rt[i].span != ct[i].span {
				t.Fatalf("partition %d tile %d: compressed {recs %d span %+v}, raw {recs %d span %+v}",
					p, i, ct[i].recs, ct[i].span, rt[i].recs, rt[i].span)
			}
			if ct[i].off != off {
				t.Fatalf("partition %d tile %d: physical offset %d, tiles before it end at %d", p, i, ct[i].off, off)
			}
			off = ct[i].off + ct[i].bytes
		}
		if off != cmpFiles[p].size {
			t.Fatalf("partition %d: tiles cover %d physical bytes, file has %d", p, off, cmpFiles[p].size)
		}
	}
}

func TestEngineParityCompressed(t *testing.T) {
	runBothWCC(t, Config{Device: ssd(0), Threads: 2, IOUnit: 8 << 10, Partitions: 4, CompressTiles: true})
}

func TestEngineParityCompressedSpillNoPrefetch(t *testing.T) {
	runBothWCC(t, Config{Device: ssd(0), Threads: 2, IOUnit: 8 << 10, Partitions: 4,
		CompressTiles: true, ForceVertexSpill: true, NoPrefetch: true})
}

// TestCompressedStats runs the same job raw and compressed and checks the
// new accounting: identical results are covered by the parity tests, here
// the physical reads must shrink while the logical volume matches the raw
// run's, and the layout metrics must be populated.
func TestCompressedStats(t *testing.T) {
	src, _ := smallGraph(21)
	base := Config{Device: ssd(0), Threads: 2, IOUnit: 8 << 10, Partitions: 4, NoUpdateBypass: true}
	rawRes, err := Run(src, &wccProg{}, base)
	if err != nil {
		t.Fatal(err)
	}
	cmp := base
	cmp.Device = ssd(0)
	cmp.CompressTiles = true
	cmpRes, err := Run(src, &wccProg{}, cmp)
	if err != nil {
		t.Fatal(err)
	}
	rs, cs := rawRes.Stats, cmpRes.Stats
	if rs.BytesReadLogical != rs.BytesRead {
		t.Fatalf("raw run: logical %d != physical %d", rs.BytesReadLogical, rs.BytesRead)
	}
	if rs.TilesCompressed != 0 || rs.CompressedRatio != 0 {
		t.Fatalf("raw run reports compression: %d tiles, ratio %v", rs.TilesCompressed, rs.CompressedRatio)
	}
	if cs.BytesRead >= rs.BytesRead {
		t.Fatalf("compressed run read %d physical bytes, raw read %d", cs.BytesRead, rs.BytesRead)
	}
	if cs.BytesReadLogical != rs.BytesReadLogical {
		t.Fatalf("compressed run's logical volume %d, raw run's %d", cs.BytesReadLogical, rs.BytesReadLogical)
	}
	if cs.TilesCompressed == 0 {
		t.Fatal("compressed run delta-encoded no tiles")
	}
	if cs.CompressedRatio <= 0 || cs.CompressedRatio >= 1 {
		t.Fatalf("compressed ratio %v outside (0, 1)", cs.CompressedRatio)
	}
}
